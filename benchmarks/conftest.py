"""Benchmark fixtures: the can_1072 stand-in, triangular parts, and a
session-wide compiled-kernel cache (compilation is excluded from timing).

Set REPRO_BENCH_N to shrink the matrix for quick runs (default 1072, the
paper's size).
"""

from __future__ import annotations

import datetime
import json
import os
from contextlib import contextmanager

import numpy as np
import pytest

from repro.core import compile_kernel
from repro.formats import as_format
from repro.formats.generate import can_1072_like, lower_triangular_of
from repro.ir.kernels import ALL_KERNELS

BENCH_N = int(os.environ.get("REPRO_BENCH_N", "1072"))

_cache = {}


def bench_matrix():
    if "matrix" not in _cache:
        target = int(12444 * (BENCH_N / 1072) ** 1.15)
        _cache["matrix"] = can_1072_like(n=BENCH_N, target_nnz=target)
    return _cache["matrix"]


def bench_lower():
    if "lower" not in _cache:
        _cache["lower"] = lower_triangular_of(bench_matrix())
    return _cache["lower"]


def fmt_instance(kind, fmt_name):
    key = ("fmt", kind, fmt_name)
    if key not in _cache:
        src = bench_lower() if kind == "lower" else bench_matrix()
        kwargs = {"block_size": 2} if fmt_name == "bsr" else {}
        _cache[key] = as_format(src, fmt_name, **kwargs)
    return _cache[key]


def compiled(kernel_name, fmt_name, kind, array_name, **kwargs):
    key = ("kern", kernel_name, fmt_name, kind, tuple(sorted(kwargs.items())))
    if key not in _cache:
        prog = ALL_KERNELS[kernel_name]()
        _cache[key] = compile_kernel(prog, {array_name: fmt_instance(kind, fmt_name)},
                                     **kwargs)
    return _cache[key]


@contextmanager
def reference_data_plane():
    """Swap the whole data plane back to the pre-vectorization loop
    oracles for the duration of the block: every format's ``from_coo`` /
    ``_from_canonical_coo`` / ``to_coo_arrays`` / ``to_dense`` becomes
    its retained ``_reference_*`` implementation, the direct conversion
    routes in :mod:`repro.formats.convert` are disabled, and the
    SolverContext triangular split runs the element-wise baseline.
    Benchmarks time the status quo against the vectorized plane through
    one code path with this switch."""
    from repro.formats.convert import FORMATS, fast_paths
    from repro.solvers import context as solver_context

    saved = []

    def swap(obj, name, impl):
        saved.append((obj, name, name in vars(obj), vars(obj).get(name)))
        setattr(obj, name, impl)

    with fast_paths(False):
        for cls in sorted(set(FORMATS.values()), key=lambda c: c.__name__):
            # raw descriptors (classmethod objects / functions) so the
            # swapped attributes bind exactly like the originals
            swap(cls, "from_coo", vars(cls)["_reference_from_coo"])
            swap(cls, "_from_canonical_coo", vars(cls)["_reference_from_coo"])
            swap(cls, "to_coo_arrays", vars(cls)["_reference_to_coo_arrays"])
            swap(cls, "to_dense",
                 vars(cls).get("_reference_to_dense",
                               cls._reference_to_dense))
        swap(solver_context, "_triangular_split",
             solver_context._reference_triangular_split)
        try:
            yield
        finally:
            for obj, name, had, old in reversed(saved):
                if had:
                    setattr(obj, name, old)
                else:
                    delattr(obj, name)


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(1072)


#: repo root — BENCH_*.json trajectory files live next to README.md
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

_toolchain_info = None


def toolchain_info() -> dict:
    """Identity and capabilities of the native toolchain, probed once per
    process (the probes are memoized in :mod:`repro.core.backend`):
    ``{"cc", "cc_identity", "openmp", "simd"}`` — None/False throughout
    when no compiler is available."""
    global _toolchain_info
    if _toolchain_info is None:
        from repro.core import backend as be

        cc = be.find_compiler()
        _toolchain_info = {
            "cc": cc,
            "cc_identity": be.compiler_identity(cc) if cc else None,
            "openmp": be.openmp_supported(cc) if cc else False,
            "simd": be.simd_supported(cc) if cc else False,
        }
    return _toolchain_info


def record_bench(bench_file: str, label: str, seconds: float,
                 flops: int = 0, **extra) -> None:
    """Append one timing entry to a ``BENCH_*.json`` trajectory file.

    The file holds a JSON list of run records; each benchmark run appends
    so the perf trajectory accumulates across sessions.  Every record is
    stamped with :func:`toolchain_info`, so a timing row stays
    interpretable (native or not? which compiler?) off the original
    machine.  A missing or corrupt file restarts the list rather than
    failing the benchmark.
    """
    path = os.path.join(_REPO_ROOT, bench_file)
    entries = []
    try:
        with open(path) as f:
            entries = json.load(f)
        if not isinstance(entries, list):
            entries = []
    except (OSError, ValueError):
        entries = []
    rec = {
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "label": label,
        "seconds": seconds,
        "n": BENCH_N,
        "toolchain": toolchain_info(),
    }
    if flops:
        rec["flops"] = flops
        rec["mflops"] = flops / seconds / 1e6 if seconds > 0 else None
    rec.update(extra)
    entries.append(rec)
    tmp = path + ".tmp"
    with open(tmp, "w") as f:
        json.dump(entries, f, indent=1)
        f.write("\n")
    os.replace(tmp, path)


def report(label: str, seconds: float, flops: int,
           bench_file: str = "BENCH_kernels.json", **extra) -> None:
    mflops = flops / seconds / 1e6 if seconds > 0 else float("inf")
    print(f"\n    [{label}] {seconds * 1e3:9.2f} ms   {mflops:8.2f} MFLOPS")
    record_bench(bench_file, label, seconds, flops, **extra)

"""Ablation A4: guard simplification.

The plan builder initially guards every statement with its full iteration
domain; implication against the stored structure (plus enumerated ranges)
prunes the guards a hand-written kernel would not write.  This bench runs
the same chosen plan with and without the pruning pass.
"""

import numpy as np
import pytest

from repro.core import ExecNode, LoopNode, VarLoopNode, compile_kernel
from repro.ir.kernels import mvm, ts_lower
from repro.util.timing import best_of
from benchmarks.conftest import BENCH_N, bench_lower, bench_matrix, fmt_instance


def _guard_count(plan):
    total = 0

    def walk(nodes):
        nonlocal total
        for n in nodes:
            if isinstance(n, ExecNode):
                total += len(n.guards)
            elif isinstance(n, LoopNode):
                walk(n.before)
                walk(n.body)
                walk(n.after)
            elif isinstance(n, VarLoopNode):
                walk(n.body)

    walk(plan.nodes)
    return total


@pytest.mark.parametrize("kernel_name,fmt,kind,arr", [
    ("ts_lower", "csr", "lower", "L"),
    ("mvm", "csr", "full", "A"),
])
def test_guard_pruning_pays(kernel_name, fmt, kind, arr, capsys):
    from repro.ir.kernels import ALL_KERNELS

    inst = fmt_instance(kind, fmt)
    prog_on = ALL_KERNELS[kernel_name]()
    prog_off = ALL_KERNELS[kernel_name]()
    k_on = compile_kernel(prog_on, {arr: inst})
    k_off = compile_kernel(prog_off, {arr: inst}, simplify_guards=False)
    g_on, g_off = _guard_count(k_on.plan), _guard_count(k_off.plan)
    assert g_on < g_off

    b0 = np.random.default_rng(7).random(BENCH_N)
    x = np.random.default_rng(8).random(BENCH_N)
    y = np.zeros(BENCH_N)

    if kernel_name == "ts_lower":
        args_on = lambda: ({arr: inst, "b": b0.copy()}, {"n": BENCH_N})  # noqa: E731
    else:
        args_on = lambda: ({arr: inst, "x": x, "y": y},                  # noqa: E731
                           {"m": BENCH_N, "n": BENCH_N})

    fn_on, fn_off = k_on.callable(), k_off.callable()
    # identical results
    a1, p1 = args_on()
    fn_on(a1, p1)
    r_on = dict(a1)
    a2, p2 = args_on()
    fn_off(a2, p2)
    for name in a2:
        if name == arr:
            continue
        v1 = r_on[name] if kernel_name == "mvm" else a1[name]
        assert np.allclose(np.asarray(a2[name], dtype=float),
                           np.asarray(v1, dtype=float))

    t_on = best_of(lambda: fn_on(*args_on()), repeats=3)
    t_off = best_of(lambda: fn_off(*args_on()), repeats=3)
    with capsys.disabled():
        print(f"\n    [{kernel_name}/{fmt}] guards {g_off} -> {g_on}; "
              f"time {t_off*1e3:.2f} ms -> {t_on*1e3:.2f} ms "
              f"({t_off/t_on:.2f}x)")
    assert t_on <= t_off * 1.15  # pruning never hurts


@pytest.mark.parametrize("mode", ["simplified", "unsimplified"])
def test_ts_guard_modes(benchmark, mode):
    inst = fmt_instance("lower", "csr")
    k = compile_kernel(ts_lower(), {"L": inst},
                       simplify_guards=(mode == "simplified"))
    fn = k.callable()
    b0 = np.random.default_rng(7).random(BENCH_N)
    benchmark(lambda: fn({"L": inst, "b": b0.copy()}, {"n": BENCH_N}))
    benchmark.extra_info["series"] = mode

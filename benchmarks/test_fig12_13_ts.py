"""Figures 12 and 13 of the paper: triangular solve on CSR, CSC and JAD,
three code versions per format.

Paper setup: TS on the Harwell–Boeing matrix can_1072, comparing
 (a) compiler-generated code (the Bernoulli series),
 (b) the specialized hand-written library (NIST C series),
 (c) the generic, less-specialized library (NIST Fortran series),
on an SGI R12K (Fig 12) and an Intel PII (Fig 13).

Reproduction: a deterministic can_1072-like matrix (same order and non-zero
budget), same three code versions — generated Python vs hand-written Python
(raw array loops) vs generic Python (abstract enumeration) — on whatever
machine runs the suite.  The claim being reproduced is relative: generated
is within a small factor of hand-written (structural equivalence) and the
generic version is clearly slower.  EXPERIMENTS.md records the measured
ratios.
"""

import numpy as np
import pytest

from repro.blas import generic_, specialized
from repro.blas.dense_ref import flops_ts
from benchmarks.conftest import BENCH_N, bench_lower, compiled, fmt_instance

FORMATS = ["csr", "csc", "jad"]


def _flops():
    L = bench_lower()
    return flops_ts(L.nnz, BENCH_N)


def _b():
    return np.random.default_rng(7).random(BENCH_N)


@pytest.mark.parametrize("fmt", FORMATS)
def test_ts_generated(benchmark, fmt):
    """Bernoulli series: compiler-generated specialized code."""
    k = compiled("ts_lower", fmt, "lower", "L")
    fn = k.callable()
    L = fmt_instance("lower", fmt)
    b0 = _b()

    def run():
        b = b0.copy()
        fn({"L": L, "b": b}, {"n": BENCH_N})
        return b

    out = run()
    assert np.allclose(bench_lower().to_dense() @ out, b0, atol=1e-8)
    benchmark(run)
    benchmark.extra_info["series"] = "generated"
    if benchmark.stats:
        benchmark.extra_info["mflops"] = _flops() / benchmark.stats["mean"] / 1e6


@pytest.mark.parametrize("fmt", FORMATS)
def test_ts_specialized(benchmark, fmt):
    """NIST C analog: hand-written per-format kernel."""
    L = fmt_instance("lower", fmt)
    b0 = _b()
    kern = specialized.TS_LOWER[fmt]

    def run():
        b = b0.copy()
        kern(L, b)
        return b

    out = run()
    assert np.allclose(bench_lower().to_dense() @ out, b0, atol=1e-8)
    benchmark(run)
    benchmark.extra_info["series"] = "specialized"
    if benchmark.stats:
        benchmark.extra_info["mflops"] = _flops() / benchmark.stats["mean"] / 1e6


@pytest.mark.parametrize("fmt", FORMATS)
def test_ts_generic(benchmark, fmt):
    """NIST Fortran analog: one generic code through the abstract
    enumeration interface."""
    L = fmt_instance("lower", fmt)
    b0 = _b()

    def run():
        b = b0.copy()
        generic_.ts_lower_enum(L, b)
        return b

    out = run()
    assert np.allclose(bench_lower().to_dense() @ out, b0, atol=1e-8)
    benchmark(run)
    benchmark.extra_info["series"] = "generic"
    if benchmark.stats:
        benchmark.extra_info["mflops"] = _flops() / benchmark.stats["mean"] / 1e6


def test_shape_of_figure(capsys):
    """The figure's qualitative content, asserted: generated within 3x of
    hand-written for every format; generic slower than both."""
    import time

    from repro.util.timing import best_of

    b0 = _b()
    rows = []
    for fmt in FORMATS:
        L = fmt_instance("lower", fmt)
        k = compiled("ts_lower", fmt, "lower", "L")
        fn = k.callable()
        t_gen = best_of(lambda: fn({"L": L, "b": b0.copy()}, {"n": BENCH_N}),
                        repeats=3)
        kern = specialized.TS_LOWER[fmt]
        t_spec = best_of(lambda: kern(L, b0.copy()), repeats=3)
        t_generic = best_of(lambda: generic_.ts_lower_enum(L, b0.copy()),
                            repeats=3)
        rows.append((fmt, t_gen, t_spec, t_generic))

    flops = _flops()
    with capsys.disabled():
        print("\n== Fig 12/13 reproduction: TS on can_1072-like "
              f"(n={BENCH_N}, nnz={bench_lower().nnz}) ==")
        print(f"{'format':8s} {'generated':>12s} {'specialized':>12s} "
              f"{'generic':>12s}   (MFLOPS)")
        for fmt, tg, ts_, tgn in rows:
            print(f"{fmt:8s} {flops/tg/1e6:12.2f} {flops/ts_/1e6:12.2f} "
                  f"{flops/tgn/1e6:12.2f}")
    for fmt, tg, ts_, tgn in rows:
        assert tg < 3.0 * ts_, f"{fmt}: generated should be near hand-written"
        assert tgn > ts_, f"{fmt}: generic should be slower than specialized"

"""Python vs C vs C+OpenMP on MVM and triangular solve (CSR and JAD).

The acceptance bar: the C backend is >= 10x faster than the specialized
Python kernel on CSR MVM at n ~ 10k, and the OpenMP strict-DOALL variant
is no slower than single-threaded C (modulo runtime startup noise).
Results append to BENCH_native.json at the repo root.

Set REPRO_NATIVE_BENCH_N to shrink the operand for quick runs.
"""

from __future__ import annotations

import os
import time
import warnings

import numpy as np
import pytest

from benchmarks.conftest import record_bench
from repro.core import NativeBackendWarning, compile_kernel
from repro.core import backend as be
from repro.formats import as_format
from repro.formats.generate import can_1072_like, lower_triangular_of
from repro.ir.kernels import ALL_KERNELS

NATIVE_N = int(os.environ.get("REPRO_NATIVE_BENCH_N", "10000"))

pytestmark = pytest.mark.skipif(
    be.find_compiler() is None,
    reason="native benchmark needs a C compiler")

_cache = {}


def _matrix(kind):
    if kind not in _cache:
        target = int(12444 * (NATIVE_N / 1072) ** 1.15)
        m = can_1072_like(n=NATIVE_N, target_nnz=target)
        _cache["square"] = m
        _cache["lower"] = lower_triangular_of(m)
    return _cache[kind]


def _compiled(kernel_name, fmt_name, kind, array_name, **kwargs):
    key = (kernel_name, fmt_name, kind, tuple(sorted(kwargs.items())))
    if key not in _cache:
        fmt = as_format(_matrix(kind), fmt_name)
        prog = ALL_KERNELS[kernel_name]()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", NativeBackendWarning)
            k = compile_kernel(prog, {array_name: fmt}, **kwargs)
        _cache[key] = (k, fmt)
    return _cache[key]


def _best_of(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _time_variants(kernel_name, fmt_name, kind, array_name, arrays_of,
                   py_repeats=3, c_repeats=10):
    """Best-of timings {variant: seconds} for python / c / c+openmp."""
    out = {}
    variants = [("python", {}),
                ("c", {"backend": "c"}),
                ("c+openmp", {"backend": "c", "parallel": "strict"})]
    for label, kw in variants:
        k, fmt = _compiled(kernel_name, fmt_name, kind, array_name, **kw)
        if kw and k.backend_used == "python":
            pytest.skip(f"native path unavailable: {k.fallback_reason}")
        arrays = arrays_of(fmt)
        params = {"m": NATIVE_N, "n": NATIVE_N}
        k(arrays, params)  # warm up: triggers codegen / cc outside timing
        repeats = py_repeats if label == "python" else c_repeats
        out[label] = _best_of(lambda: k(arrays, params), repeats)
        record_bench("BENCH_native.json", f"{kernel_name}/{fmt_name}",
                     out[label], n=NATIVE_N, backend=label,
                     backend_used=k.backend_used)
    return out


def _report(name, t):
    speed = t["python"] / t["c"] if t["c"] > 0 else float("inf")
    print(f"\n  [{name}] python {t['python'] * 1e3:9.2f} ms"
          f"   c {t['c'] * 1e3:7.3f} ms"
          f"   c+omp {t['c+openmp'] * 1e3:7.3f} ms"
          f"   ({speed:6.1f}x)")


def _omp_no_slower(t):
    # identical code modulo pragmas; allow scheduling noise + an
    # absolute floor so sub-ms kernels don't flake
    assert t["c+openmp"] <= t["c"] * 1.5 + 5e-4


class TestMVM:
    @staticmethod
    def _arrays(fmt):
        x = np.random.default_rng(3).random(NATIVE_N)
        return lambda f: {"A": f, "x": x, "y": np.zeros(NATIVE_N)}

    def test_csr(self):
        t = _time_variants("mvm", "csr", "square", "A", self._arrays(None))
        _report("mvm/csr", t)
        # the acceptance bar: >= 10x over the Python kernel at n ~ 10k
        if NATIVE_N >= 5000:
            assert t["python"] >= 10 * t["c"]
        _omp_no_slower(t)

    def test_jad(self):
        t = _time_variants("mvm", "jad", "square", "A", self._arrays(None))
        _report("mvm/jad", t)
        assert t["c"] < t["python"]
        _omp_no_slower(t)


class TestTriangularSolve:
    @staticmethod
    def _arrays(fmt):
        b = np.random.default_rng(5).random(NATIVE_N)
        return lambda f: {"L": f, "b": b.copy()}

    def test_csr(self):
        t = _time_variants("ts_lower", "csr", "lower", "L", self._arrays(None))
        _report("ts/csr", t)
        assert t["c"] < t["python"]
        _omp_no_slower(t)

    def test_jad(self):
        t = _time_variants("ts_lower", "jad", "lower", "L", self._arrays(None))
        _report("ts/jad", t)
        assert t["c"] < t["python"]
        _omp_no_slower(t)

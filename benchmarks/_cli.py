"""Shared benchmark-script plumbing: argparse boilerplate, the best-of
timer, trajectory-file validation, and toolchain-stamped recording.

Every ``bench_*.py`` script repeats the same skeleton — a parser with
``--n`` / ``--backend`` / ``--repeats`` / ``--check``, a best-of-N timing
loop, a :func:`benchmarks.conftest.record_bench` append, and a JSON
sanity pass over the trajectory file.  This module is that skeleton,
factored once.  Every recorded entry is stamped (in ``record_bench``)
with :func:`benchmarks.conftest.toolchain_info` — compiler identity plus
the OpenMP and SIMD probe results — so a BENCH_*.json row is
interpretable after the fact ("was this timing native? which gcc? did
-fopenmp-simd exist?") without re-running the probe on the original
machine.

Scripts still bootstrap ``sys.path`` themselves (they run as
``__main__`` from anywhere, so the repo root must be importable *before*
``benchmarks._cli`` can be), then::

    from benchmarks._cli import base_parser, best_of, check_json, record

    def main(argv=None):
        ap = base_parser(__doc__, n=10000)
        ap.add_argument("--fmt", default="csr")
        args = ap.parse_args(argv)
        ...
        record(BENCH_FILE, "family/case", seconds, flops=..., n=...)
"""

from __future__ import annotations

import argparse
import json
import math
import os
import time
from typing import Optional

from benchmarks.conftest import record_bench, toolchain_info  # noqa: F401

#: repo root — BENCH_*.json trajectory files live next to README.md
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def base_parser(doc: Optional[str], n: int = 10000, repeats: int = 5,
                backend: bool = True) -> argparse.ArgumentParser:
    """The common benchmark CLI: ``--n``, ``--repeats``, ``--check``, and
    (unless ``backend=False``) ``--backend``.  ``doc`` is the calling
    module's docstring; its first line becomes the description.  Scripts
    add their own flags on the returned parser."""
    ap = argparse.ArgumentParser(
        description=(doc or "").strip().splitlines()[0] if doc else None)
    ap.add_argument("--n", type=int, default=n,
                    help=f"problem-size knob (default {n})")
    ap.add_argument("--repeats", type=int, default=repeats,
                    help="best-of repeats per timing")
    if backend:
        ap.add_argument("--backend", default="c", choices=("c", "python"))
    ap.add_argument("--check", action="store_true",
                    help="CI smoke: validate the trajectory file and fail "
                         "unless the script's perf floor holds")
    return ap


def best_of(fn, repeats: int) -> float:
    """Best wall-clock seconds of ``repeats`` calls."""
    best = math.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


#: every entry is toolchain-stamped inside record_bench itself; the alias
#: keeps bench scripts on one import
record = record_bench


def check_json(bench_file: str) -> int:
    """The trajectory file parses, is a non-empty list, and every record
    carries the minimal shape.  Returns the record count."""
    path = os.path.join(REPO_ROOT, bench_file)
    with open(path) as f:
        entries = json.load(f)
    assert isinstance(entries, list) and entries, "empty trajectory"
    for e in entries:
        assert {"timestamp", "label", "seconds"} <= set(e), f"malformed: {e}"
    return len(entries)

"""Data-plane benchmark: vectorized O(nnz) construction, conversion, and
triangular split vs the retained ``_reference_*`` loop oracles.

Three sections per matrix (uniform random and banded, plus a symmetrized
variant for SYM):

- ``from_coo``      — canonicalize-and-pack into each format;
- ``to_coo_arrays`` — triple extraction back out of each format;
- ``convert``       — full conversions out of CSR (direct fast paths and
  the ``_from_canonical_coo`` routes) against the status-quo loop
  interchange, plus the SolverContext triangular split.

Both legs run the same public entry points; the baseline leg swaps the
data plane to the loop oracles with
:func:`benchmarks.conftest.reference_data_plane` (which also disables the
direct conversion routes), so the comparison is exactly "this PR off" vs
"this PR on".  Results append to ``BENCH_convert.json`` at the repo root.

Usage::

    python benchmarks/bench_convert.py --n 10000
    python benchmarks/bench_convert.py --n 2000 --check

``--check`` (the CI smoke mode) exits non-zero unless every comparison
speeds up, the headline speedup clears the floor (20x at n >= 10000, 5x
below), and the JSON trajectory is a well-formed list of records.
"""

from __future__ import annotations

import os
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(_HERE)
for p in (_ROOT, os.path.join(_ROOT, "src")):
    if p not in sys.path:
        sys.path.insert(0, p)

import numpy as np  # noqa: E402

from benchmarks._cli import base_parser, best_of, check_json, record  # noqa: E402
from benchmarks.conftest import reference_data_plane  # noqa: E402
from repro.formats import convert  # noqa: E402
from repro.formats.base import coo_dedup_sort  # noqa: E402
from repro.formats.convert import FORMATS  # noqa: E402
from repro.formats.csr import CsrMatrix  # noqa: E402
from repro.formats.generate import banded, random_sparse  # noqa: E402
from repro.solvers.context import (  # noqa: E402
    _reference_triangular_split,
    _triangular_split,
)

BENCH_FILE = "BENCH_convert.json"


def _matrices(n):
    """[(case name, COO triples + shape)] — random, banded, and a
    symmetric random pattern for SYM."""
    rnd = random_sparse(n, n, density=10.0 / n, seed=7, ensure_diag=True)
    band = banded(n, bandwidth=4, seed=7)
    cases = {"random": rnd, "banded": band}

    # symmetric variant: mirror the random pattern and give each (r, c)
    # a value that only depends on the unordered pair
    r, c, _v = rnd.to_coo_arrays()
    rows = np.concatenate([r, c])
    cols = np.concatenate([c, r])
    vals = 0.5 + ((np.minimum(rows, cols) * 31 + np.maximum(rows, cols) * 17)
                  % 97) / 97.0
    cases["symmetric"] = (rows, cols, vals, rnd.shape)

    out = {}
    for name, m in cases.items():
        if isinstance(m, tuple):
            out[name] = m
        else:
            rr, cc, vv = m.to_coo_arrays()
            out[name] = (rr, cc, vv, m.shape)
    return out


def _format_plan(case, n):
    """Which formats make sense for this matrix (DIA explodes on random
    patterns, DENSE on large n, SYM needs the symmetric case)."""
    if case == "symmetric":
        return ["sym"]
    fmts = ["csr", "csc", "coo", "ell", "jad", "msr", "bsr"]
    if case == "banded":
        fmts.append("dia")
    if n <= 2000:
        fmts.append("dense")
    return fmts


def _kwargs_for(fmt):
    return {"block_size": 2} if fmt == "bsr" else {}


def run(n, repeats):
    """Returns [(label, t_reference, t_vectorized)]."""
    comparisons = []

    def compare(label, vec_fn, ref_fn, nnz):
        t_vec = best_of(vec_fn, repeats)
        t0 = time.perf_counter()
        ref_fn()
        t_ref = time.perf_counter() - t0
        speedup = t_ref / t_vec if t_vec > 0 else float("inf")
        record(BENCH_FILE, label, t_vec, n=n, nnz=int(nnz),
                     reference_seconds=t_ref, speedup=speedup)
        print(f"  {label:34s} loops {t_ref * 1e3:9.2f} ms   "
              f"vectorized {t_vec * 1e3:9.2f} ms   {speedup:8.1f}x")
        comparisons.append((label, t_ref, t_vec))

    for case, (rows, cols, vals, shape) in _matrices(n).items():
        crows, ccols, cvals = coo_dedup_sort(rows, cols, vals, shape,
                                             order="row")
        nnz = crows.size
        print(f"{case}: n={shape[0]}, nnz={nnz}")
        for fmt in _format_plan(case, n):
            cls = FORMATS[fmt]
            kw = _kwargs_for(fmt)
            compare(f"from_coo/{fmt}/{case}",
                    lambda: cls.from_coo(rows, cols, vals, shape, **kw),
                    lambda: cls._reference_from_coo(rows, cols, vals, shape,
                                                    **kw),
                    nnz)
            inst = cls.from_coo(rows, cols, vals, shape, **kw)
            compare(f"to_coo_arrays/{fmt}/{case}",
                    inst.to_coo_arrays, inst._reference_to_coo_arrays, nnz)

        if case == "symmetric":
            continue
        csr = CsrMatrix._from_canonical_coo(crows, ccols, cvals, shape)
        for fmt in _format_plan(case, n):
            if fmt == "csr":
                continue
            kw = _kwargs_for(fmt)

            def via_reference(fmt=fmt, kw=kw):
                with reference_data_plane():
                    return convert(csr, fmt, **kw)

            compare(f"convert/csr->{fmt}/{case}",
                    lambda: convert(csr, fmt, **kw), via_reference, nnz)
        compare(f"triangular_split/{case}",
                lambda: _triangular_split(csr),
                lambda: _reference_triangular_split(csr), nnz)
    return comparisons


def main(argv=None):
    ap = base_parser(__doc__, n=10000, repeats=3, backend=False)
    args = ap.parse_args(argv)

    print(f"data-plane benchmark: n={args.n}")
    comparisons = run(args.n, args.repeats)
    n_entries = check_json(BENCH_FILE)
    print(f"  {BENCH_FILE}: {n_entries} records")

    if args.check:
        floor = 20.0 if args.n >= 10000 else 5.0
        speedups = {lbl: t_ref / t_vec if t_vec > 0 else float("inf")
                    for lbl, t_ref, t_vec in comparisons}
        slower = [lbl for lbl, s in speedups.items() if s < 1.0]
        best = max(speedups.values())
        if slower:
            print(f"FAIL: vectorized path slower for {slower}",
                  file=sys.stderr)
            return 1
        if best < floor:
            print(f"FAIL: headline speedup {best:.1f}x below the "
                  f"{floor:.0f}x floor", file=sys.stderr)
            return 1
        print(f"check ok: every path sped up; headline {best:.1f}x "
              f"(floor {floor:.0f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Extension bench (paper Section 6): automatic format selection, model vs
ATLAS-style empirical, on the can_1072-like matrix and a pure band."""

import numpy as np
import pytest

from repro.formats.generate import banded
from repro.ir.kernels import mvm
from repro.search import select_format
from benchmarks.conftest import BENCH_N, bench_matrix


def test_selection_table(capsys):
    m = bench_matrix()
    n = BENCH_N
    x = np.random.default_rng(2).random(n)

    def workload(fmt):
        return ({"A": fmt, "x": x, "y": np.zeros(n)}, {"m": n, "n": n})

    cands = ("csr", "csc", "coo", "ell", "jad", "msr")
    res_model = select_format(mvm(), "A", m, candidates=cands)
    res_emp = select_format(mvm(), "A", m, candidates=cands,
                            mode="empirical", workload=workload, repeats=2)
    with capsys.disabled():
        print(f"\n== format selection for MVM on can_1072-like (n={n}) ==")
        print(res_model.table())
        print(res_emp.table())
    name, inst, kernel = res_emp.best
    y = np.zeros(n)
    kernel({"A": inst, "x": x, "y": y}, {"m": n, "n": n})
    assert np.allclose(y, m.to_dense() @ x, atol=1e-8)


def test_band_matrix_selection(capsys):
    n = min(BENCH_N, 512)
    m = banded(n, bandwidth=2, seed=3)
    res = select_format(mvm(), "A", m,
                        candidates=("csr", "coo", "dia", "ell"))
    with capsys.disabled():
        print(f"\n== format selection for MVM on a band matrix (n={n}) ==")
        print(res.table())
    # the model must rank the diagonal structure first for a pure band
    assert res.best[0] == "dia"


def test_selection_compile_cost(benchmark):
    """Selection compiles one kernel per candidate; time the whole loop."""
    m = banded(64, bandwidth=1, seed=4)
    benchmark.pedantic(
        lambda: select_format(mvm(), "A", m, candidates=("csr", "coo", "dia")),
        rounds=1, iterations=1)

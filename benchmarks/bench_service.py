"""Load generator for the compilation daemon (:mod:`repro.core.daemon`).

Measures the service under concurrent clients at several fan-out levels,
cold (every request is a new program/matrix pair, so the full pipeline
runs) and warm (the same requests repeated, so the daemon answers off
its handle LRU).  Each level gets a fresh in-process server and cleared
compile caches, so levels don't warm each other; requests still travel
the real socket + length-prefixed JSON protocol.

Per level the run records throughput (requests/s) and per-request
latency p50/p99 into ``BENCH_service.json`` at the repo root via the
shared :func:`benchmarks.conftest.record_bench` appender.

Usage::

    python benchmarks/bench_service.py
    python benchmarks/bench_service.py --clients 1,8,64 --requests 4
    python benchmarks/bench_service.py --clients 1,8 --requests 2 --check

``--check`` (the CI smoke mode) exits non-zero unless every request
succeeded, the warm pass ran zero additional toolchain/pipeline
invocations (``service.items`` and ``native.compiles`` deltas are
both 0 — repeats are served entirely off the handle layer), warm p50
beats cold p50, and the JSON file is a well-formed list of records.
"""

from __future__ import annotations

import os
import sys
import threading
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(_HERE)
for p in (_ROOT, os.path.join(_ROOT, "src")):
    if p not in sys.path:
        sys.path.insert(0, p)

from benchmarks._cli import base_parser, check_json, record  # noqa: E402
from repro.core import backend as be  # noqa: E402
from repro.core.cache import clear_compile_cache  # noqa: E402
from repro.core.client import ServiceClient  # noqa: E402
from repro.core.daemon import CompileServer  # noqa: E402
from repro.formats import as_format  # noqa: E402
from repro.formats.generate import random_sparse  # noqa: E402
from repro.instrument import INSTR  # noqa: E402
from repro.ir.kernels import ALL_KERNELS  # noqa: E402
from repro.ir.printer import program_to_text  # noqa: E402

BENCH_FILE = "BENCH_service.json"

#: kernels cycled through to generate distinct requests
_KERNELS = ["mvm", "row_sums", "mvm_t"]


def _make_requests(n_clients: int, per_client: int, base_n: int):
    """One request list per client: (source, {"A": fmt}) pairs, every
    pair unique across the whole level (distinct matrix sizes force
    distinct structural signatures, so a cold pass can't cache-hit)."""
    out = []
    serial = 0
    for _c in range(n_clients):
        reqs = []
        for _r in range(per_client):
            name = _KERNELS[serial % len(_KERNELS)]
            n = base_n + serial
            fmt = as_format(
                random_sparse(n, n, density=0.3, seed=serial).to_dense(),
                "csr")
            reqs.append((program_to_text(ALL_KERNELS[name]()), {"A": fmt}))
            serial += 1
        out.append(reqs)
    return out


def _drive(address, request_lists, options):
    """Every client in its own thread on its own connection; returns
    (wall_seconds, latencies, errors)."""
    lats, errors = [], []
    lock = threading.Lock()
    barrier = threading.Barrier(len(request_lists))

    def client_main(reqs):
        mine, bad = [], []
        try:
            with ServiceClient(address, timeout=300.0) as svc:
                barrier.wait()
                for src, bindings in reqs:
                    t0 = time.perf_counter()
                    try:
                        svc.compile(src, bindings, options=options)
                    except Exception as e:  # recorded; fails --check mode
                        bad.append(f"{type(e).__name__}: {e}")
                    mine.append(time.perf_counter() - t0)
        except Exception as e:  # recorded; fails --check mode
            bad.append(f"{type(e).__name__}: {e}")
        with lock:
            lats.extend(mine)
            errors.extend(bad)

    threads = [threading.Thread(target=client_main, args=(reqs,))
               for reqs in request_lists]
    t0 = time.perf_counter()
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return time.perf_counter() - t0, lats, errors


def _pct(sorted_vals, q):
    if not sorted_vals:
        return None
    return sorted_vals[min(len(sorted_vals) - 1, int(len(sorted_vals) * q))]


def run_level(n_clients: int, per_client: int, base_n: int, backend: str):
    """Fresh server + cold caches; cold pass then warm pass."""
    clear_compile_cache()
    be.reset_toolchain_cache()
    options = {"backend": backend} if backend != "auto" else {}
    request_lists = _make_requests(n_clients, per_client, base_n)
    out = {"clients": n_clients, "requests": n_clients * per_client}
    with CompileServer(host="127.0.0.1",
                       queue_depth=max(64, 2 * n_clients)) as srv:
        for pass_name in ("cold", "warm"):
            compiles0 = (INSTR.get("service.items"),
                         INSTR.get("native.compiles"))
            wall, lats, errors = _drive(srv.address, request_lists, options)
            lats.sort()
            out[pass_name] = {
                "wall_seconds": wall,
                "throughput_rps": len(lats) / wall if wall > 0 else None,
                "p50_ms": (_pct(lats, 0.50) or 0) * 1e3,
                "p99_ms": (_pct(lats, 0.99) or 0) * 1e3,
                "errors": errors,
                "pipeline_compiles": INSTR.get("service.items")
                - compiles0[0],
                "native_compiles": INSTR.get("native.compiles")
                - compiles0[1],
            }
        out["stats"] = {"handles": None}
        with ServiceClient(srv.address) as svc:
            st = svc.stats()
            out["stats"] = {
                "handles": st["handles"],
                "payloads": st["payloads"],
                "handle_hits":
                    st["counters"].get("daemon.handle.hits", 0),
                "coalesced": st["counters"].get("daemon.coalesced", 0),
            }
            svc.shutdown()
        srv.wait_stopped(30)
    return out


def main(argv=None) -> int:
    ap = base_parser(__doc__, n=12, repeats=1, backend=False)
    ap.add_argument("--clients", default="1,8,64",
                    help="comma-separated concurrency levels (default 1,8,64)")
    ap.add_argument("--requests", type=int, default=4,
                    help="requests per client per pass (default 4)")
    ap.add_argument("--backend", default="auto",
                    choices=["auto", "python", "c"],
                    help="backend option sent with every request")
    args = ap.parse_args(argv)

    levels = [int(c) for c in args.clients.split(",") if c.strip()]
    failures = []
    for n_clients in levels:
        res = run_level(n_clients, args.requests, args.n, args.backend)
        for pass_name in ("cold", "warm"):
            p = res[pass_name]
            record(
                BENCH_FILE,
                f"service-{pass_name}-c{n_clients}",
                p["wall_seconds"],
                clients=n_clients,
                requests=res["requests"],
                throughput_rps=p["throughput_rps"],
                p50_ms=p["p50_ms"],
                p99_ms=p["p99_ms"],
                pipeline_compiles=p["pipeline_compiles"],
                native_compiles=p["native_compiles"],
                backend=args.backend,
                errors=len(p["errors"]),
            )
            print(f"[bench_service] {pass_name:4s} c={n_clients:<3d} "
                  f"{p['throughput_rps']:8.1f} req/s  "
                  f"p50={p['p50_ms']:7.2f}ms  p99={p['p99_ms']:7.2f}ms  "
                  f"pipeline={p['pipeline_compiles']} "
                  f"native={p['native_compiles']} "
                  f"errors={len(p['errors'])}")
        if args.check:
            cold, warm = res["cold"], res["warm"]
            for pass_name in ("cold", "warm"):
                for e in res[pass_name]["errors"]:
                    failures.append(f"c={n_clients} {pass_name}: {e}")
            if warm["pipeline_compiles"] != 0:
                failures.append(
                    f"c={n_clients}: warm pass ran "
                    f"{warm['pipeline_compiles']} pipeline compiles "
                    "(want 0: repeats must be served off the handle layer)")
            if warm["native_compiles"] != 0:
                failures.append(
                    f"c={n_clients}: warm pass invoked the toolchain "
                    f"{warm['native_compiles']} times (want 0)")
            if warm["p50_ms"] >= cold["p50_ms"]:
                failures.append(
                    f"c={n_clients}: warm p50 {warm['p50_ms']:.2f}ms not "
                    f"below cold p50 {cold['p50_ms']:.2f}ms")

    if args.check:
        try:
            check_json(BENCH_FILE)
        except (OSError, ValueError, AssertionError) as e:
            failures.append(f"{BENCH_FILE} invalid: {e}")
        if failures:
            print("[bench_service] CHECK FAILED", file=sys.stderr)
            for f_ in failures:
                print(f"  - {f_}", file=sys.stderr)
            return 1
        print("[bench_service] check ok: warm passes were pipeline-free "
              "and faster")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

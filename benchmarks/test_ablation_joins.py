"""Ablation A2: common enumerations (paper Section 4.1).

``y = A x + A x`` with two references to A compiles to a *single* shared
enumeration (the join).  The ablated version runs the one-reference MVM
twice — two full walks of the structure.  The shared enumeration must win.
"""

import numpy as np
import pytest

from repro.core import LoopNode
from repro.util.timing import best_of
from benchmarks.conftest import BENCH_N, compiled, fmt_instance


def _count_shared_roles(plan):
    shared = 0

    def walk(nodes):
        nonlocal shared
        for n in nodes:
            if isinstance(n, LoopNode):
                shared += sum(1 for r in n.roles if r.role == "shared")
                walk(n.before)
                walk(n.body)
                walk(n.after)

    walk(plan.nodes)
    return shared


@pytest.mark.parametrize("fmt", ["csr", "jad"])
def test_two_references_share_one_enumeration(fmt, capsys):
    A = fmt_instance("full", fmt)
    x = np.random.default_rng(5).random(BENCH_N)
    y = np.zeros(BENCH_N)

    k2 = compiled("smvm_two", fmt, "full", "A")
    assert _count_shared_roles(k2.plan) >= 1  # the join exists
    fn2 = k2.callable()
    k1 = compiled("mvm", fmt, "full", "A")
    fn1 = k1.callable()

    def joined():
        fn2({"A": A, "x": x, "y": y}, {"m": BENCH_N, "n": BENCH_N})
        return y

    y_twice = np.zeros(BENCH_N)
    tmp = np.zeros(BENCH_N)

    def twice():
        fn1({"A": A, "x": x, "y": y_twice}, {"m": BENCH_N, "n": BENCH_N})
        fn1({"A": A, "x": x, "y": tmp}, {"m": BENCH_N, "n": BENCH_N})
        np.add(y_twice, tmp, out=y_twice)
        return y_twice

    a = joined()
    b = twice()
    assert np.allclose(a, b, atol=1e-8)

    t_joined = best_of(joined, repeats=3)
    t_twice = best_of(twice, repeats=3)
    with capsys.disabled():
        print(f"\n    [{fmt}] shared enumeration {t_joined*1e3:.2f} ms, "
              f"two enumerations {t_twice*1e3:.2f} ms "
              f"({t_twice/t_joined:.2f}x)")
    assert t_joined < t_twice


@pytest.mark.parametrize("fmt", ["csr"])
def test_joined_execution(benchmark, fmt):
    A = fmt_instance("full", fmt)
    x = np.random.default_rng(5).random(BENCH_N)
    y = np.zeros(BENCH_N)
    fn = compiled("smvm_two", fmt, "full", "A").callable()
    benchmark(lambda: fn({"A": A, "x": x, "y": y},
                         {"m": BENCH_N, "n": BENCH_N}))
    benchmark.extra_info["series"] = "shared-enumeration"

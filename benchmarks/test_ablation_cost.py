"""Ablation A1: does the cost model matter?

Compile the same kernel picking the best-estimated plan vs. the
worst-estimated legal plan, and execute both (paper Section 4.2: the search
"estimates the cost of each code and selects the best one")."""

import numpy as np
import pytest

from repro.util.timing import best_of
from benchmarks.conftest import BENCH_N, bench_lower, compiled, fmt_instance


@pytest.mark.parametrize("fmt", ["jad", "csc"])
def test_cost_model_picks_faster_plan(fmt, capsys):
    L = fmt_instance("lower", fmt)
    b0 = np.random.default_rng(7).random(BENCH_N)
    k_best = compiled("ts_lower", fmt, "lower", "L", pick="best")
    k_worst = compiled("ts_lower", fmt, "lower", "L", pick="worst")
    fn_best = k_best.callable()
    fn_worst = k_worst.callable()

    out_b = b0.copy()
    fn_best({"L": L, "b": out_b}, {"n": BENCH_N})
    out_w = b0.copy()
    fn_worst({"L": L, "b": out_w}, {"n": BENCH_N})
    assert np.allclose(out_b, out_w, atol=1e-8)  # both correct

    t_best = best_of(lambda: fn_best({"L": L, "b": b0.copy()}, {"n": BENCH_N}),
                     repeats=3)
    t_worst = best_of(lambda: fn_worst({"L": L, "b": b0.copy()}, {"n": BENCH_N}),
                      repeats=3)
    with capsys.disabled():
        print(f"\n    [{fmt}] best-plan {t_best*1e3:.2f} ms "
              f"(est {k_best.cost:.0f}), worst-plan {t_worst*1e3:.2f} ms "
              f"(est {k_worst.cost:.0f}), speedup {t_worst/t_best:.2f}x")
    # estimated ordering must hold in reality (allowing ties)
    assert t_best <= t_worst * 1.2


@pytest.mark.parametrize("fmt", ["jad"])
def test_best_plan_execution(benchmark, fmt):
    L = fmt_instance("lower", fmt)
    b0 = np.random.default_rng(7).random(BENCH_N)
    fn = compiled("ts_lower", fmt, "lower", "L", pick="best").callable()
    benchmark(lambda: fn({"L": L, "b": b0.copy()}, {"n": BENCH_N}))
    benchmark.extra_info["series"] = "best-plan"


@pytest.mark.parametrize("fmt", ["jad"])
def test_worst_plan_execution(benchmark, fmt):
    L = fmt_instance("lower", fmt)
    b0 = np.random.default_rng(7).random(BENCH_N)
    fn = compiled("ts_lower", fmt, "lower", "L", pick="worst").callable()
    benchmark(lambda: fn({"L": L, "b": b0.copy()}, {"n": BENCH_N}))
    benchmark.extra_info["series"] = "worst-plan"

"""Ablation A3: specialization levels of the backend.

Three executions of the *same plan*: the reference interpreter (fully
dynamic), the generated specialized Python (the product), and the
hand-written kernel (the target).  Quantifies what inlining the format
operations buys — the paper's reason for resolving all method invocations
at compile time (Section 5, Barton–Nackman discussion)."""

import numpy as np
import pytest

from repro.blas import specialized
from repro.util.timing import best_of
from benchmarks.conftest import BENCH_N, compiled, fmt_instance


def test_backend_ladder(capsys):
    rows = []
    b0 = np.random.default_rng(7).random(BENCH_N)
    for fmt in ["csr", "jad"]:
        L = fmt_instance("lower", fmt)
        k = compiled("ts_lower", fmt, "lower", "L")
        fn = k.callable()
        t_interp = best_of(lambda: k.run({"L": L, "b": b0.copy()},
                                         {"n": BENCH_N}), repeats=2)
        t_gen = best_of(lambda: fn({"L": L, "b": b0.copy()}, {"n": BENCH_N}),
                        repeats=3)
        kern = specialized.TS_LOWER[fmt]
        t_hand = best_of(lambda: kern(L, b0.copy()), repeats=3)
        rows.append((fmt, t_interp, t_gen, t_hand))
    with capsys.disabled():
        print("\n== backend ladder (TS) ==")
        print(f"{'format':8s} {'interpreter':>12s} {'generated':>12s} "
              f"{'hand-written':>13s}   (ms)")
        for fmt, ti, tg, th in rows:
            print(f"{fmt:8s} {ti*1e3:12.2f} {tg*1e3:12.2f} {th*1e3:13.2f}")
    for fmt, ti, tg, th in rows:
        assert tg < ti, "generated code must beat the interpreter"
        assert tg < 3.0 * th, "generated code must stay near hand-written"


@pytest.mark.parametrize("backend", ["interpreter", "generated"])
def test_mvm_backends(benchmark, backend):
    A = fmt_instance("full", "csr")
    x = np.random.default_rng(5).random(BENCH_N)
    y = np.zeros(BENCH_N)
    k = compiled("mvm", "csr", "full", "A")
    if backend == "interpreter":
        benchmark.pedantic(
            lambda: k.run({"A": A, "x": x, "y": y}, {"m": BENCH_N, "n": BENCH_N}),
            rounds=2, iterations=1)
    else:
        fn = k.callable()
        benchmark(lambda: fn({"A": A, "x": x, "y": y},
                             {"m": BENCH_N, "n": BENCH_N}))
    benchmark.extra_info["series"] = backend

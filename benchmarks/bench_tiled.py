"""Tiled-tier benchmark: cache-blocked native codegen vs the naive tier.

Three families, each timing the *same lowered IR* compiled at
``opt="none"`` and ``opt="tiled"``:

- banded matvec (DIA): strip-mined rows + absorbed band guards + SIMD;
- SpMM over a banded CSR matrix: register-tiled dense panels;
- SpGEMM on a 2-D Laplacian: the handwritten native Gustavson kernel vs
  the vectorized NumPy tier (a tier comparison, not a codegen one).

Methodology for this box: timings are noisy, so the two variants are
*interleaved* trial by trial and compared by median, and the generated
kernels are dispatched directly through their bound
:class:`repro.core.backend.NativeKernel` — the ``run()`` wrapper's
validation would otherwise compress microsecond-scale ratios.  Every
record lands in ``BENCH_tiled.json`` with the toolchain stamp, and both
variants' outputs are asserted byte-identical before anything is timed.

Usage::

    python benchmarks/bench_tiled.py --n 10000
    python benchmarks/bench_tiled.py --n 2000 --check

``--check`` (the CI smoke mode) exits non-zero if the tiled tier is more
than 10% slower than naive on any banded-family case, or if the
trajectory file is malformed.
"""

from __future__ import annotations

import math
import os
import statistics
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(_HERE)
for p in (_ROOT, os.path.join(_ROOT, "src")):
    if p not in sys.path:
        sys.path.insert(0, p)

import numpy as np  # noqa: E402

from benchmarks._cli import base_parser, check_json, record, toolchain_info  # noqa: E402
from repro.core import compile_kernel  # noqa: E402
from repro.core.compiler import infer_param_values  # noqa: E402
from repro.formats import as_format  # noqa: E402
from repro.formats.generate import banded, laplacian_2d  # noqa: E402
from repro.ir.kernels import ALL_KERNELS  # noqa: E402

BENCH_FILE = "BENCH_tiled.json"

#: tiled/naive floor every banded-family case must clear in --check
CHECK_FLOOR = 0.9


def interleaved_medians(fn_a, fn_b, trials):
    """Median seconds of ``trials`` alternating a/b runs — interleaving
    spreads machine noise over both variants instead of one."""
    ta, tb = [], []
    for _ in range(trials):
        t0 = time.perf_counter()
        fn_a()
        ta.append(time.perf_counter() - t0)
        t0 = time.perf_counter()
        fn_b()
        tb.append(time.perf_counter() - t0)
    return statistics.median(ta), statistics.median(tb)


def _bound_native(program, inst, opt, arrays, params):
    """Compile at ``opt`` and return a zero-arg closure dispatching the
    bound NativeKernel directly (None when the native bind fell back)."""
    kernel = compile_kernel(program, {"A": inst}, backend="c", opt=opt)
    nk = kernel.native()
    if nk is None or kernel.opt_used != opt:
        return None, kernel
    return (lambda: nk(arrays, params)), kernel


def _one_pair(label, program, inst, arrays, params, out_name, trials):
    """Time naive vs tiled on one case; returns the ratio or None when
    the native tier is unavailable.  Asserts byte-identity first."""
    out = arrays[out_name]
    f_naive, k_naive = _bound_native(program, inst, "none", arrays, params)
    f_tiled, k_tiled = _bound_native(program, inst, "tiled", arrays, params)
    if f_naive is None or f_tiled is None:
        print(f"  {label}: native tier unavailable "
              f"({k_naive.fallback_reason or k_tiled.fallback_reason}) — skipped")
        return None

    out[:] = 0.0
    f_naive()
    ref = out.copy()
    out[:] = 0.0
    f_tiled()
    if out.tobytes() != ref.tobytes():
        raise AssertionError(f"{label}: tiled output not byte-identical")

    t_naive, t_tiled = interleaved_medians(f_naive, f_tiled, trials)
    ratio = t_naive / t_tiled if t_tiled > 0 else float("inf")
    record(BENCH_FILE, f"{label}/naive", t_naive, n=inst.nrows,
           nnz=inst.nnz, opt="none", transforms=k_naive.native().spec.transforms)
    record(BENCH_FILE, f"{label}/tiled", t_tiled, n=inst.nrows,
           nnz=inst.nnz, opt="tiled", speedup=ratio,
           transforms=k_tiled.native().spec.transforms)
    print(f"  {label:28s} naive {t_naive * 1e6:9.1f} us   "
          f"tiled {t_tiled * 1e6:9.1f} us   {ratio:5.2f}x "
          f"{k_tiled.native().spec.transforms}")
    return ratio


def run_mvm(n, trials, rng):
    """Banded matvec through DIA: the strip-mine + guard-absorb + SIMD
    showcase.  Returns {case: ratio}."""
    program = ALL_KERNELS["mvm"]()
    ratios = {}
    for size, bw in ((n, 8), (2 * n, 16)):
        inst = as_format(banded(size, bandwidth=bw, seed=7), "dia")
        params = {k: int(v) for k, v in
                  infer_param_values(program, {"A": inst}).items()}
        arrays = {"A": inst, "x": rng.random(inst.ncols),
                  "y": np.zeros(inst.nrows)}
        r = _one_pair(f"mvm/dia/banded-n{size}-bw{bw}", program, inst,
                      arrays, params, "y", trials)
        if r is not None:
            ratios[f"mvm-n{size}"] = r
    return ratios


def run_spmm(n, trials, rng):
    """Banded SpMM through CSR: the register-tiled panel showcase."""
    program = ALL_KERNELS["spmm"]()
    ratios = {}
    inst = as_format(banded(n, bandwidth=4, seed=7), "csr")
    for k in (16, 64):
        params = {p: int(v) for p, v in
                  infer_param_values(program, {"A": inst}).items()}
        params["k"] = k
        arrays = {"A": inst, "X": rng.random((inst.ncols, k)),
                  "Y": np.zeros((inst.nrows, k))}
        r = _one_pair(f"spmm/csr/banded-n{n}-k{k}", program, inst,
                      arrays, params, "Y", trials)
        if r is not None:
            ratios[f"spmm-k{k}"] = r
    return ratios


def run_spgemm(n, trials):
    """Native Gustavson SpGEMM vs the vectorized NumPy tier on a 2-D
    Laplacian, byte-identity enforced on the canonical triples."""
    from repro.blas import api as blas_api
    from repro.blas import spgemm_native

    side = max(2, int(round(math.sqrt(n))))
    A = as_format(laplacian_2d(side), "csr")
    try:
        native = spgemm_native.spgemm_csr_csr_native(A, A)
    except Exception as e:
        print(f"  spgemm: native tier unavailable ({e}) — skipped")
        return None
    vec = blas_api.spgemm_triples(A, A, tier="vectorized")
    for got, want, what in zip(native[:3], vec[:3],
                               ("rows", "cols", "vals")):
        if got.tobytes() != np.ascontiguousarray(want).tobytes():
            raise AssertionError(f"spgemm {what} not byte-identical")

    t_nat, t_vec = interleaved_medians(
        lambda: spgemm_native.spgemm_csr_csr_native(A, A),
        lambda: blas_api.spgemm_triples(A, A, tier="vectorized"), trials)
    ratio = t_vec / t_nat if t_nat > 0 else float("inf")
    label = f"spgemm/laplacian2d-{side}"
    record(BENCH_FILE, f"{label}/vectorized", t_vec, n=A.nrows, nnz=A.nnz)
    record(BENCH_FILE, f"{label}/native", t_nat, n=A.nrows, nnz=A.nnz,
           speedup=ratio)
    print(f"  {label:28s} vec   {t_vec * 1e3:9.2f} ms   "
          f"native {t_nat * 1e3:8.2f} ms   {ratio:5.2f}x")
    return ratio


def main(argv=None):
    ap = base_parser(__doc__, n=10000, repeats=9, backend=False)
    args = ap.parse_args(argv)

    info = toolchain_info()
    print(f"tiled-tier benchmark: n~{args.n}, {args.repeats} interleaved "
          f"trials, cc={info['cc_identity']}, simd={info['simd']}")
    rng = np.random.default_rng(1072)
    banded_ratios = {}
    banded_ratios.update(run_mvm(args.n, args.repeats, rng))
    banded_ratios.update(run_spmm(args.n, args.repeats, rng))
    spgemm_ratio = run_spgemm(args.n, args.repeats)
    n_entries = check_json(BENCH_FILE)
    print(f"  {BENCH_FILE}: {n_entries} records")

    if args.check:
        bad = {case: r for case, r in banded_ratios.items()
               if r < CHECK_FLOOR}
        if bad:
            print(f"FAIL: tiled more than 10% slower than naive: {bad}",
                  file=sys.stderr)
            return 1
        checked = ", ".join(f"{c}={r:.2f}x"
                            for c, r in sorted(banded_ratios.items()))
        print(f"check ok: tiled/naive floor {CHECK_FLOOR} holds "
              f"({checked or 'no native cases'})")
        if spgemm_ratio is not None:
            print(f"check ok: spgemm native {spgemm_ratio:.2f}x vectorized")
    return 0


if __name__ == "__main__":
    sys.exit(main())

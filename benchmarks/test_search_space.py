"""Search-space statistics (paper Sections 4.2-4.3).

The paper counts the raw space for the running example — four groups of 7!
product spaces — and argues the heuristics make the search manageable.
This bench reports, per kernel/format: candidates generated, legal,
lowered, with the Section 4.3 same-path heuristic on and off, and times
the whole compilation."""

import pytest

from repro.analysis import dependences
from repro.core import compile_kernel
from repro.formats import as_format
from repro.formats.generate import lower_triangular_of, random_sparse
from repro.ir.kernels import mvm, ts_lower
from repro.search import generate_candidates


def _lower():
    return lower_triangular_of(random_sparse(16, 16, 0.3, seed=3))


def test_search_space_table(capsys):
    lower = _lower()
    rect = random_sparse(12, 14, 0.3, seed=4)
    rows = []
    cases = [
        ("ts_lower", ts_lower(), "L", as_format(lower, "jad")),
        ("ts_lower", ts_lower(), "L", as_format(lower, "csr")),
        ("ts_lower", ts_lower(), "L", as_format(lower, "msr")),
        ("mvm", mvm(), "A", as_format(rect, "csr")),
        ("mvm", mvm(), "A", as_format(rect, "msr")),
    ]
    for name, prog, arr, fmt in cases:
        deps = dependences(prog)
        pruned = sum(1 for _ in generate_candidates(prog, {arr: fmt}, deps))
        full = sum(1 for _ in generate_candidates(
            prog, {arr: fmt}, deps, same_matrix_same_path=False))
        k = compile_kernel(prog, {arr: fmt})
        s = k.result.stats
        rows.append((name, fmt.format_name, full, pruned, s.legal, s.lowered))
    with capsys.disabled():
        print("\n== search space (paper Sections 4.2-4.3) ==")
        print(f"{'kernel':10s} {'format':7s} {'full':>6s} {'heuristic':>10s} "
              f"{'legal':>6s} {'lowered':>8s}")
        for r in rows:
            print(f"{r[0]:10s} {r[1]:7s} {r[2]:6d} {r[3]:10d} {r[4]:6d} {r[5]:8d}")
    for name, fmtn, full, pruned, legal, lowered in rows:
        assert pruned <= full
        assert lowered >= 1


@pytest.mark.parametrize("fmt_name", ["csr", "jad", "msr"])
def test_compile_time(benchmark, fmt_name):
    """Wall-clock compilation cost per format (search + legality + lowering
    + cost + codegen)."""
    lower = _lower()

    def compile_once():
        fmt = as_format(lower, fmt_name)
        k = compile_kernel(ts_lower(), {"L": fmt})
        k.callable()
        return k

    k = benchmark.pedantic(compile_once, rounds=1, iterations=1)
    benchmark.extra_info["candidates"] = k.result.stats.generated

"""End-to-end solver benchmark: status-quo per-call BLAS dispatch vs the
SolverContext fast path (bound native kernels + reused workspaces).

Both paths run the same solver with ``tol=0`` and a fixed iteration budget,
so they execute identical iteration counts and the comparison is pure
dispatch + kernel cost.  Results append to ``BENCH_solvers.json`` at the
repo root via the shared :func:`benchmarks.conftest.record_bench` appender.

Usage::

    python benchmarks/bench_solvers.py --n 10000 --iters 100
    python benchmarks/bench_solvers.py --n 2500 --iters 30 --check

``--check`` (the CI smoke mode) exits non-zero unless the context path is
no slower than the status quo for every measured solver, the vectorized
setup phase (format conversion + triangular split, compile cache warm)
clears its speedup floor against the loop-oracle data plane, and the JSON
file is a well-formed list of records.
"""

from __future__ import annotations

import math
import os
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(_HERE)
for p in (_ROOT, os.path.join(_ROOT, "src")):
    if p not in sys.path:
        sys.path.insert(0, p)

import numpy as np  # noqa: E402

from benchmarks._cli import base_parser, best_of, check_json, record  # noqa: E402
from benchmarks.conftest import reference_data_plane  # noqa: E402
from repro.formats import as_format  # noqa: E402
from repro.formats.generate import laplacian_2d  # noqa: E402
from repro.solvers import SolverContext, bicgstab, cg, jacobi  # noqa: E402

BENCH_FILE = "BENCH_solvers.json"

SOLVERS = {
    "cg": cg,
    "bicgstab": bicgstab,
    "jacobi": jacobi,
}


def measure_setup(m, fmt, backend, repeats):
    """Time SolverContext construction — format conversion, triangular
    split, compile-cache lookups — vectorized vs the loop-oracle data
    plane.  The triangular ops force the split; a throwaway warm-up
    construction fills the compile cache so both timings measure the data
    plane rather than the (identical) first compile."""
    ops = ("mvm", "ts_lower", "ts_upper")

    def build():
        return SolverContext(as_format(m, fmt), ops=ops, backend=backend,
                             register=False)

    build()  # warm the compile cache
    t_vec = best_of(build, repeats)
    with reference_data_plane():
        t0 = time.perf_counter()
        build()
        t_ref = time.perf_counter() - t0
    return t_vec, t_ref


def run(n, iters, backend, fmt, repeats):
    """Returns ([(solver, t_status_quo, t_context)], setup_speedup)."""
    k = max(2, int(round(math.sqrt(n))))
    m = laplacian_2d(k)
    n_actual = m.nrows
    b = np.random.default_rng(1072).random(n_actual)

    A_plain = as_format(m, fmt)
    t0 = time.perf_counter()
    ctx = SolverContext(as_format(m, fmt), ops=("mvm",), backend=backend)
    setup = time.perf_counter() - t0

    setup_vec, setup_ref = measure_setup(m, fmt, backend, repeats)
    setup_speedup = setup_ref / setup_vec if setup_vec > 0 else float("inf")
    record(BENCH_FILE, f"solver/setup/{fmt}", setup_vec, n=n_actual,
                 reference_seconds=setup_ref, speedup=setup_speedup,
                 backend=backend)
    print(f"  setup (conv + split, warm cache): loops "
          f"{setup_ref * 1e3:9.2f} ms   vectorized "
          f"{setup_vec * 1e3:9.2f} ms   speedup {setup_speedup:6.1f}x")

    results = []
    for name, solver in SOLVERS.items():
        kw = dict(tol=0.0, max_iter=iters)
        x_sq = solver(A_plain, b, **kw)[0]
        x_cx = solver(ctx, b, **kw)[0]
        if not np.allclose(x_sq, x_cx, atol=1e-8, rtol=1e-8):
            raise AssertionError(f"{name}: context iterates diverged "
                                 f"from the status-quo path")
        t_sq = best_of(lambda: solver(A_plain, b, **kw), repeats)
        t_cx = best_of(lambda: solver(ctx, b, **kw), repeats)
        results.append((name, t_sq, t_cx))
        for label, secs, extra in (
            (f"solver/{name}/{fmt}/status-quo", t_sq, {}),
            (f"solver/{name}/{fmt}/context", t_cx,
             {"backend": ctx.backends["mvm"], "speedup": t_sq / t_cx,
              "setup_seconds": setup}),
        ):
            record(BENCH_FILE, label, secs, n=n_actual,
                         iters=iters, **extra)
        print(f"  {name:9s} status-quo {t_sq * 1e3:9.2f} ms   "
              f"context {t_cx * 1e3:9.2f} ms   "
              f"speedup {t_sq / t_cx:6.2f}x   "
              f"[{ctx.backends['mvm']}]")
    print(f"  (context setup: {setup * 1e3:.1f} ms, amortized across solves)")
    return results, setup_speedup


def main(argv=None):
    ap = base_parser(__doc__, n=10000, repeats=3)
    ap.add_argument("--iters", type=int, default=100,
                    help="fixed iteration budget per solve")
    ap.add_argument("--fmt", default="csr")
    args = ap.parse_args(argv)

    print(f"solver benchmark: n~{args.n}, {args.iters} iters, "
          f"backend={args.backend}, fmt={args.fmt}")
    results, setup_speedup = run(args.n, args.iters, args.backend, args.fmt,
                                 args.repeats)
    n_entries = check_json(BENCH_FILE)
    print(f"  {BENCH_FILE}: {n_entries} records")

    if args.check:
        slower = [name for name, t_sq, t_cx in results if t_cx > t_sq]
        if slower:
            print(f"FAIL: context path slower for {slower}", file=sys.stderr)
            return 1
        floor = 10.0 if args.n >= 10000 else 2.0
        if setup_speedup < floor:
            print(f"FAIL: setup speedup {setup_speedup:.1f}x below the "
                  f"{floor:.0f}x floor", file=sys.stderr)
            return 1
        print(f"check ok: context path no slower for every solver; "
              f"setup speedup {setup_speedup:.1f}x (floor {floor:.0f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

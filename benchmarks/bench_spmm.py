"""SpMM benchmark: one blocked multiply vs k independent matvecs.

The multi-RHS question: given k right-hand sides, is one SpMM through the
bound kernel (``ctx.matmat``) faster than looping k matvecs through the
same context?  The SpMM traverses the matrix structure once for all k
columns and streams the dense panel rows contiguously; the matvec loop
re-reads the index arrays k times and pays k dispatches.  Both paths run
the same bound-kernel machinery, so the ratio isolates the blocking win.

Results append to ``BENCH_spmm.json`` at the repo root via the shared
:func:`benchmarks.conftest.record_bench` appender.

Usage::

    python benchmarks/bench_spmm.py --n 10000
    python benchmarks/bench_spmm.py --n 2500 --check

``--check`` (the CI smoke mode) exits non-zero unless native SpMM beats
the k-matvec loop by the floor at the reference width k=16 (2x at
n >= 10000; at smoke sizes merely no slower) and the JSON file is a
well-formed list of records.
"""

from __future__ import annotations

import math
import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(_HERE)
for p in (_ROOT, os.path.join(_ROOT, "src")):
    if p not in sys.path:
        sys.path.insert(0, p)

import numpy as np  # noqa: E402

from benchmarks._cli import base_parser, best_of, check_json, record  # noqa: E402
from repro.blas import dense_ref  # noqa: E402
from repro.formats import as_format  # noqa: E402
from repro.formats.generate import laplacian_2d  # noqa: E402
from repro.solvers import SolverContext  # noqa: E402

BENCH_FILE = "BENCH_spmm.json"
WIDTHS = (1, 4, 16, 64)
CHECK_WIDTH = 16


def run(n, backend, fmt, repeats):
    """Returns {k: (t_spmm, t_matvec_loop)} plus the context backends."""
    side = max(2, int(round(math.sqrt(n))))
    m = laplacian_2d(side)
    n_actual = m.nrows
    nnz = m.nnz
    ctx = SolverContext(as_format(m, fmt), ops=("mvm", "spmm"),
                        backend=backend)
    rng = np.random.default_rng(1072)
    dense = m.to_dense() if n_actual <= 4000 else None

    results = {}
    for k in WIDTHS:
        X = rng.random((n_actual, k))
        Y = np.zeros((n_actual, k))
        col = np.zeros(n_actual)

        def spmm_once():
            ctx.matmat(X, Y)

        def matvec_loop():
            for j in range(k):
                Y[:, j] = ctx.matvec(X[:, j].copy(), col)

        spmm_once()
        if dense is not None and not np.allclose(Y, dense_ref.mm(dense, X)):
            raise AssertionError(f"k={k}: SpMM diverged from the oracle")
        matvec_loop()
        if dense is not None and not np.allclose(Y, dense_ref.mm(dense, X)):
            raise AssertionError(f"k={k}: matvec loop diverged from the oracle")

        t_mm = best_of(spmm_once, repeats)
        t_mv = best_of(matvec_loop, repeats)
        results[k] = (t_mm, t_mv)
        flops = dense_ref.flops_mm(nnz, k)
        record(BENCH_FILE, f"spmm/{fmt}/k{k}/spmm", t_mm, flops=flops,
                     n=n_actual, k=k, nnz=nnz,
                     backend=ctx.backends["spmm"])
        record(BENCH_FILE, f"spmm/{fmt}/k{k}/matvec-loop", t_mv,
                     flops=flops, n=n_actual, k=k, nnz=nnz,
                     backend=ctx.backends["mvm"],
                     speedup=t_mv / t_mm if t_mm > 0 else float("inf"))
        print(f"  k={k:3d}  spmm {t_mm * 1e3:9.3f} ms   "
              f"{k}x matvec {t_mv * 1e3:9.3f} ms   "
              f"speedup {t_mv / t_mm:6.2f}x   "
              f"[{ctx.backends['spmm']}]")
    return results, ctx.backends


def main(argv=None):
    ap = base_parser(__doc__, n=10000, repeats=5)
    ap.add_argument("--fmt", default="csr")
    args = ap.parse_args(argv)

    print(f"spmm benchmark: n~{args.n}, k in {WIDTHS}, "
          f"backend={args.backend}, fmt={args.fmt}")
    results, backends = run(args.n, args.backend, args.fmt, args.repeats)
    n_entries = check_json(BENCH_FILE)
    print(f"  {BENCH_FILE}: {n_entries} records")

    if args.check:
        t_mm, t_mv = results[CHECK_WIDTH]
        speedup = t_mv / t_mm if t_mm > 0 else float("inf")
        # the 2x claim is a native large-operand property; tiny smoke
        # operands only assert the blocked path is no slower
        floor = 2.0 if (args.n >= 10000 and backends["spmm"] != "python") \
            else 1.0
        if speedup < floor:
            print(f"FAIL: spmm speedup {speedup:.2f}x at k={CHECK_WIDTH} "
                  f"below the {floor:.1f}x floor", file=sys.stderr)
            return 1
        print(f"check ok: spmm {speedup:.2f}x vs {CHECK_WIDTH} matvecs "
              f"(floor {floor:.1f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Structure-adaptive autotuning benchmark: learned vs analytical format
selection across five structure families, plus the winner-cache warm path.

For each family the benchmark takes the analytical (Figure 11) pick and
the ``mode="auto"`` pick, measures both chosen kernels on the same matvec
workload, and reports the win (auto matching or beating the model) and
the speedup.  It then repeats the auto selection on a *second* matrix of
the same structure class and reports the warm-path selection time — the
winner cache must serve it with zero micro-benchmark runs.

Results append to ``BENCH_autotune.json`` at the repo root via the shared
:func:`benchmarks.conftest.record_bench` appender.

Usage::

    python benchmarks/bench_autotune.py --n 10000
    python benchmarks/bench_autotune.py --n 2000 --check

``--check`` (the CI smoke mode) exits non-zero unless auto matches or
beats the analytical pick on at least 4 of the 5 families, the warm
selection clears its speedup floor over the cold tune, the warm path
performed **zero** micro-benchmark runs (asserted through the
``autotune.microbench.runs`` counter), and the JSON file is a well-formed
list of records.
"""

from __future__ import annotations

import os
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(_HERE)
for p in (_ROOT, os.path.join(_ROOT, "src")):
    if p not in sys.path:
        sys.path.insert(0, p)

import numpy as np  # noqa: E402

from benchmarks._cli import base_parser, check_json, record  # noqa: E402
from repro.core.cache import clear_compile_cache  # noqa: E402
from repro.core.compiler import infer_param_values  # noqa: E402
from repro.formats.generate import (  # noqa: E402
    banded,
    block_structured,
    power_law_rows,
    random_sparse,
)
from repro.instrument import INSTR  # noqa: E402
from repro.ir.kernels import mvm  # noqa: E402
from repro.search.autotune import clear_winner_cache  # noqa: E402
from repro.search.format_select import select_format  # noqa: E402
from repro.util.timing import best_of  # noqa: E402

BENCH_FILE = "BENCH_autotune.json"

#: auto "wins" when its pick is within this factor of the model pick (the
#: two are often the same format; the slack absorbs timer noise — at the
#: micro-kernel scale two formats within ~20% are a measurement tie, and
#: what the benchmark must catch is auto committing to a clearly *bad*
#: format)
WIN_TOLERANCE = 1.25


def families(n):
    """The five structure classes, each a ``seed -> matrix`` generator."""
    density = min(0.05, 5.0 / n)   # ~5 nnz per row at scale
    return {
        "uniform": lambda seed: random_sparse(n, n, density, seed=seed),
        "banded": lambda seed: banded(n, bandwidth=2, seed=seed),
        "powerlaw": lambda seed: power_law_rows(n, n, seed=seed),
        "block": lambda seed: block_structured(n, block_size=4, seed=seed),
        "diagdom": lambda seed: random_sparse(n, n, density, seed=seed,
                                              ensure_diag=True),
    }


def measure_pick(program, inst, kernel, repeats):
    """Measured seconds of one chosen kernel on the shared matvec
    workload (kernel materialized outside the timing)."""
    params = {k: int(v) for k, v in
              infer_param_values(program, {"A": inst}).items()}
    rng = np.random.default_rng(0)
    size = max(inst.nrows, inst.ncols, 1)
    x = rng.random(size)
    y = np.zeros(size)
    if kernel.native() is None:
        kernel.callable()
    return best_of(lambda: kernel({"A": inst, "x": x, "y": y}, params),
                   repeats=max(5, repeats), min_time=0.05)


def run_family(name, gen, program, backend, repeats):
    """Returns a result dict for one structure family."""
    A = gen(0)
    B = gen(1)   # same structure class, different sample

    # cold tune FIRST, with a cleared compile cache, so t_cold is what a
    # first-time selection actually pays (candidate compiles + top-k
    # micro-benchmarks); families would otherwise share compiled kernels
    clear_compile_cache()
    t0 = time.perf_counter()
    res_cold = select_format(program, "A", A, mode="auto", backend=backend,
                             repeats=max(5, repeats))
    t_cold = time.perf_counter() - t0
    auto_fmt, auto_inst, auto_kernel = res_cold.best

    res_model = select_format(program, "A", A, mode="model", backend=backend)
    model_fmt, model_inst, model_kernel = res_model.best
    t_model = measure_pick(program, model_inst, model_kernel, repeats)
    t_auto = measure_pick(program, auto_inst, auto_kernel, repeats)

    runs_before = INSTR.get("autotune.microbench.runs")
    t0 = time.perf_counter()
    res_warm = select_format(program, "A", B, mode="auto", backend=backend)
    t_warm = time.perf_counter() - t0
    warm_runs = INSTR.get("autotune.microbench.runs") - runs_before

    win = t_auto <= t_model * WIN_TOLERANCE
    warm_speedup = t_cold / t_warm if t_warm > 0 else float("inf")
    record(BENCH_FILE, f"autotune/{name}/model-pick", t_model,
                 fmt=model_fmt, backend=backend)
    record(BENCH_FILE, f"autotune/{name}/auto-pick", t_auto,
                 fmt=auto_fmt, backend=backend, win=bool(win),
                 speedup=t_model / t_auto if t_auto > 0 else float("inf"))
    record(BENCH_FILE, f"autotune/{name}/cold-select", t_cold,
                 backend=backend)
    record(BENCH_FILE, f"autotune/{name}/warm-select", t_warm,
                 backend=backend, cached=bool(res_warm.cached),
                 microbench_runs=warm_runs, speedup=warm_speedup)
    print(f"  {name:9s} model {model_fmt:4s} {t_model * 1e3:8.3f} ms   "
          f"auto {auto_fmt:4s} {t_auto * 1e3:8.3f} ms   "
          f"{'WIN ' if win else 'LOSS'}  "
          f"warm {t_warm * 1e3:7.2f} ms ({warm_speedup:6.0f}x, "
          f"{warm_runs} runs, cached={res_warm.cached})")
    return {"family": name, "win": win, "warm_speedup": warm_speedup,
            "warm_runs": warm_runs, "warm_cached": bool(res_warm.cached)}


def main(argv=None):
    ap = base_parser(__doc__, n=10000, repeats=3)
    args = ap.parse_args(argv)

    program = mvm()
    print(f"autotune benchmark: n={args.n}, backend={args.backend}")
    clear_winner_cache()
    results = [run_family(name, gen, program, args.backend, args.repeats)
               for name, gen in families(args.n).items()]
    n_entries = check_json(BENCH_FILE)
    print(f"  {BENCH_FILE}: {n_entries} records")

    wins = sum(1 for r in results if r["win"])
    worst_warm = min(r["warm_speedup"] for r in results)
    stray_runs = [(r["family"], r["warm_runs"]) for r in results
                  if r["warm_runs"] or not r["warm_cached"]]
    print(f"  auto wins {wins}/{len(results)} families; "
          f"worst warm speedup {worst_warm:.0f}x")

    if args.check:
        fail = []
        if wins < len(results) - 1:
            fail.append(f"auto won only {wins}/{len(results)} families")
        # at full scale the cold tune dwarfs the O(nnz) warm replay; at
        # CI-smoke sizes both shrink and the ratio compresses
        floor = 50.0 if args.n >= 10000 else 15.0
        if worst_warm < floor:
            fail.append(f"warm selection speedup {worst_warm:.1f}x below "
                        f"the {floor:.0f}x floor")
        if stray_runs:
            fail.append(f"warm path was not a pure cache replay: "
                        f"{stray_runs}")
        if fail:
            for msg in fail:
                print(f"FAIL: {msg}", file=sys.stderr)
            return 1
        print("check ok: learned selection matches or beats the model, "
              "warm path replays the cached winner with zero measurements")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""MVM across formats: the extension of the Figure 12/13 harness to the
rest of the Figure 3 BLAS (the paper states the TS relative differences
"are representative for other inputs and benchmarks")."""

import numpy as np
import pytest

from repro.blas import generic_, specialized
from repro.blas.dense_ref import flops_mvm
from benchmarks.conftest import BENCH_N, bench_matrix, compiled, fmt_instance

FORMATS = ["csr", "csc", "coo", "ell", "dia", "jad", "msr", "bsr"]


def _x():
    return np.random.default_rng(3).random(BENCH_N)


@pytest.mark.parametrize("fmt", FORMATS)
def test_mvm_generated(benchmark, fmt):
    k = compiled("mvm", fmt, "full", "A")
    fn = k.callable()
    A = fmt_instance("full", fmt)
    x = _x()
    y = np.zeros(BENCH_N)

    def run():
        fn({"A": A, "x": x, "y": y}, {"m": BENCH_N, "n": BENCH_N})
        return y

    out = run()
    assert np.allclose(out, bench_matrix().to_dense() @ x, atol=1e-8)
    benchmark(run)
    benchmark.extra_info["series"] = "generated"
    if benchmark.stats:
        benchmark.extra_info["mflops"] = flops_mvm(A.nnz) / benchmark.stats["mean"] / 1e6


@pytest.mark.parametrize("fmt", FORMATS)
def test_mvm_specialized(benchmark, fmt):
    A = fmt_instance("full", fmt)
    x = _x()
    y = np.zeros(BENCH_N)
    kern = specialized.MVM[fmt]

    def run():
        kern(A, x, y)
        return y

    out = run()
    assert np.allclose(out, bench_matrix().to_dense() @ x, atol=1e-8)
    benchmark(run)
    benchmark.extra_info["series"] = "specialized"
    if benchmark.stats:
        benchmark.extra_info["mflops"] = flops_mvm(A.nnz) / benchmark.stats["mean"] / 1e6


@pytest.mark.parametrize("fmt", ["csr", "coo", "jad"])
def test_mvm_generic(benchmark, fmt):
    A = fmt_instance("full", fmt)
    x = _x()
    y = np.zeros(BENCH_N)

    def run():
        generic_.mvm(A, x, y)
        return y

    out = run()
    assert np.allclose(out, bench_matrix().to_dense() @ x, atol=1e-8)
    benchmark(run)
    benchmark.extra_info["series"] = "generic"
    if benchmark.stats:
        benchmark.extra_info["mflops"] = flops_mvm(A.nnz) / benchmark.stats["mean"] / 1e6


def test_shape_of_mvm_table(capsys):
    from repro.util.timing import best_of

    x = _x()
    flops = None
    rows = []
    # the shape table additionally covers symmetric storage (Union + Map);
    # its exhaustive search is too slow for the per-series timing tests
    for fmt in FORMATS + ["sym"]:
        A = fmt_instance("full", fmt)
        flops = flops_mvm(A.nnz)
        k = compiled("mvm", fmt, "full", "A")
        fn = k.callable()
        y = np.zeros(BENCH_N)
        t_gen = best_of(lambda: fn({"A": A, "x": x, "y": y},
                                   {"m": BENCH_N, "n": BENCH_N}), repeats=3)
        kern = specialized.MVM[fmt]
        t_spec = best_of(lambda: kern(A, x, y), repeats=3)
        rows.append((fmt, flops, t_gen, t_spec))
    with capsys.disabled():
        print(f"\n== MVM on can_1072-like (n={BENCH_N}) ==")
        print(f"{'format':8s} {'generated':>12s} {'specialized':>12s}   (MFLOPS)")
        for fmt, fl, tg, ts_ in rows:
            print(f"{fmt:8s} {fl/tg/1e6:12.2f} {fl/ts_/1e6:12.2f}")
    for fmt, fl, tg, ts_ in rows:
        assert tg < 4.0 * ts_, f"{fmt}: generated must stay near hand-written"

"""SpGEMM benchmark: the three dispatch tiers on a 2-D Laplacian squared.

``C = A A`` with A the 5-point Laplacian — the canonical computed-output
product (tridiagonal-block squared is pentadiagonal-block).  Timed tiers:

- ``native``: the compiled two-pass Gustavson kernel
  (:mod:`repro.blas.spgemm_native`; silently absent without a toolchain);
- ``vectorized``: the scipy-free NumPy expand-sort-reduce CSR×CSR path;
- ``specialized-dense`` / ``specialized-hash``: the two-pass row-wise
  kernel with dense-marker and hash accumulators;
- ``generic``: the any-format-pair enumeration through ``iter_nonzeros``.

All tiers are byte-identical by contract (the differential wall pins it);
this benchmark cross-checks that on every run, then times them.

Results append to ``BENCH_spgemm.json`` at the repo root via the shared
:func:`benchmarks.conftest.record_bench` appender.

Usage::

    python benchmarks/bench_spgemm.py --n 10000
    python benchmarks/bench_spgemm.py --n 2500 --check

``--check`` (the CI smoke mode) exits non-zero unless the vectorized tier
beats the generic one by the floor (5x at n >= 10000, 2x at smoke sizes)
and the JSON file is a well-formed list of records.
"""

from __future__ import annotations

import math
import os
import sys

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(_HERE)
for p in (_ROOT, os.path.join(_ROOT, "src")):
    if p not in sys.path:
        sys.path.insert(0, p)

import numpy as np  # noqa: E402

from benchmarks._cli import base_parser, best_of, check_json, record  # noqa: E402
from repro.blas import dense_ref, specialized  # noqa: E402
from repro.blas.api import spgemm  # noqa: E402
from repro.formats import as_format  # noqa: E402
from repro.formats.generate import laplacian_2d  # noqa: E402

BENCH_FILE = "BENCH_spgemm.json"


def run(n, repeats):
    """Returns {tier: seconds} for C = A A on the ~n-row Laplacian."""
    side = max(2, int(round(math.sqrt(n))))
    A = as_format(laplacian_2d(side), "csr")
    n_actual, nnz = A.nrows, A.nnz

    tiers = {
        "native": lambda: spgemm(A, A, tier="native"),
        "vectorized": lambda: spgemm(A, A, tier="vectorized"),
        "specialized-dense":
            lambda: specialized.spgemm_csr_csr(A, A, accumulator="dense"),
        "specialized-hash":
            lambda: specialized.spgemm_csr_csr(A, A, accumulator="hash"),
        "generic": lambda: spgemm(A, A, tier="generic"),
    }
    times = {}
    products = {}
    for tier, fn in tiers.items():
        products[tier] = fn()
        times[tier] = best_of(fn, repeats)

    # byte-identity cross-check across all tiers (and, at small sizes,
    # against the dense oracle)
    Cref = products["vectorized"]
    for tier, C in products.items():
        for field in ("rowptr", "colind", "values"):
            if not np.array_equal(getattr(C, field), getattr(Cref, field)):
                raise AssertionError(f"{tier}: {field} diverged from the "
                                     f"vectorized tier")
    if n_actual <= 2000:
        d = A.to_dense()
        if not np.array_equal(Cref.to_dense(), dense_ref.spgemm(d, d)):
            raise AssertionError("vectorized tier diverged from the oracle")

    nmults = int((A.rowptr[A.colind + 1] - A.rowptr[A.colind]).sum())
    flops = dense_ref.flops_spgemm(nmults)
    for tier, secs in times.items():
        record(BENCH_FILE, f"spgemm/laplacian2d/{tier}", secs,
                     flops=flops, n=n_actual, nnz=nnz, nnz_out=Cref.nnz,
                     nmults=nmults,
                     speedup=times["generic"] / secs if secs > 0
                     else float("inf"))
        print(f"  {tier:18s} {secs * 1e3:9.3f} ms   "
              f"vs generic {times['generic'] / secs:6.2f}x")
    print(f"  (n={n_actual}, nnz(A)={nnz}, nnz(C)={Cref.nnz}, "
          f"nmults={nmults})")
    return times


def main(argv=None):
    ap = base_parser(__doc__, n=10000, repeats=5, backend=False)
    args = ap.parse_args(argv)

    print(f"spgemm benchmark: n~{args.n}, C = A A on the 2-D Laplacian")
    times = run(args.n, args.repeats)
    n_entries = check_json(BENCH_FILE)
    print(f"  {BENCH_FILE}: {n_entries} records")

    if args.check:
        speedup = (times["generic"] / times["vectorized"]
                   if times["vectorized"] > 0 else float("inf"))
        # the 5x claim needs array ops to amortize; smoke sizes get 2x
        floor = 5.0 if args.n >= 10000 else 2.0
        if speedup < floor:
            print(f"FAIL: vectorized spgemm {speedup:.2f}x vs generic, "
                  f"below the {floor:.1f}x floor", file=sys.stderr)
            return 1
        print(f"check ok: vectorized {speedup:.2f}x vs generic "
              f"(floor {floor:.1f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

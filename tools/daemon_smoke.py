"""CI smoke for the compilation daemon, end to end as real processes.

Starts ``python -m repro.core.daemon`` as a subprocess on a unix socket
with a fresh disk cache, hammers it with concurrent client threads all
requesting native compiles of the same (program, matrix) pairs, then
asserts the daemon did the minimum possible work and died cleanly:

- every request succeeded;
- ``native.compiles`` == the number of unique artifact digests (one
  ``cc`` invocation per digest, no matter how many clients race);
- the disk artifacts landed sharded (``cache_dir/ab/abcd....so``) with
  no stale ``.lock`` files;
- SIGTERM drains: the process exits 0 and prints its goodbye line.

Usage: ``python tools/daemon_smoke.py [--clients 8] [--requests 5]``
Exits non-zero on any violation.
"""

from __future__ import annotations

import argparse
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import threading
import time

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(_ROOT, "src"))

from repro.core.client import ServiceClient  # noqa: E402
from repro.formats import as_format  # noqa: E402
from repro.formats.generate import random_sparse  # noqa: E402
from repro.ir.kernels import ALL_KERNELS  # noqa: E402
from repro.ir.printer import program_to_text  # noqa: E402


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--clients", type=int, default=8)
    ap.add_argument("--requests", type=int, default=5)
    ap.add_argument("--n", type=int, default=16)
    args = ap.parse_args(argv)

    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        sock = os.path.join(tmp, "repro.sock")
        cache_dir = os.path.join(tmp, "cache")
        env = dict(os.environ,
                   PYTHONPATH=os.path.join(_ROOT, "src"),
                   REPRO_CACHE_DIR=cache_dir)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.core.daemon", "--socket", sock],
            env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True)
        try:
            # two unique (program, matrix) pairs shared by every client
            A = as_format(
                random_sparse(args.n, args.n, density=0.3, seed=1)
                .to_dense(), "csr")
            pairs = [(program_to_text(ALL_KERNELS[k]()), {"A": A})
                     for k in ("mvm", "row_sums")]
            options = {"backend": "c", "cache": "disk"}
            errors, oks = [], []
            lock = threading.Lock()

            def client_main():
                try:
                    # retry-on-connect rides out daemon startup
                    with ServiceClient(sock, timeout=300.0,
                                       connect_retries=100) as svc:
                        for _ in range(args.requests):
                            for src, bindings in pairs:
                                h = svc.compile(src, bindings,
                                                options=options)
                                with lock:
                                    oks.append(h)
                except Exception as e:  # recorded; fails the smoke
                    with lock:
                        errors.append(f"{type(e).__name__}: {e}")

            threads = [threading.Thread(target=client_main)
                       for _ in range(args.clients)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=300)

            want = args.clients * args.requests * len(pairs)
            if errors:
                failures.append(f"client errors: {errors[:5]}")
            if len(oks) != want:
                failures.append(f"got {len(oks)}/{want} responses")
            if not all(h.backend_used and h.backend_used.startswith("c")
                       for h in oks):
                reasons = {h.fallback_reason for h in oks
                           if not (h.backend_used or "").startswith("c")}
                failures.append(f"non-native responses: {reasons}")

            with ServiceClient(sock) as svc:
                st = svc.stats()
                compiles = st["counters"].get("native.compiles", 0)
                digests = len({h.raw.get("handle") for h in oks})
                # one cc invocation per unique artifact digest
                if compiles > digests:
                    failures.append(
                        f"native.compiles={compiles} for {digests} "
                        "unique requests (single-flight broken?)")
                if compiles == 0:
                    failures.append("native.compiles=0 — nothing "
                                    "actually hit the toolchain")
                print(f"[daemon_smoke] {len(oks)} responses, "
                      f"native.compiles={compiles}, "
                      f"handle_hits="
                      f"{st['counters'].get('daemon.handle.hits', 0)}, "
                      f"coalesced="
                      f"{st['counters'].get('daemon.coalesced', 0)}")

            root = pathlib.Path(cache_dir)
            sos = list(root.rglob("*.so"))
            if not sos:
                failures.append("no .so artifacts on disk")
            for so in sos:
                if so.parent.name != so.name[:2]:
                    failures.append(f"artifact not sharded: {so}")
            locks = list(root.rglob("*.lock"))
            if locks:
                failures.append(f"stale lock files: {locks}")

            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=60)
            if proc.returncode != 0:
                failures.append(f"daemon exit code {proc.returncode}")
            if "drained, bye" not in out:
                failures.append(f"no drain goodbye in output: {out[-500:]}")
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

    if failures:
        print("[daemon_smoke] FAILED", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("[daemon_smoke] ok: one cc per digest, sharded artifacts, "
          "clean drain")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""The paper's running example, end to end: triangular solve on JAD.

The dense program (paper Figure 4) walks L by columns; JAD storage offers
fast diagonal-major enumeration or row access through a permutation.  The
compiler must discover the row-centric restructuring (paper Figure 8) and
realize the row access through the inverse permutation (paper Figure 9).

Run:  python examples/triangular_solve_jad.py
"""

import time

import numpy as np

from repro import as_format, compile_kernel, kernels, program_to_text
from repro.blas import specialized
from repro.codegen.csource import python_to_c_like
from repro.formats.generate import can_1072_like, lower_triangular_of


def main():
    program = kernels.ts_lower()
    print("the dense program (paper Figure 4):")
    print(program_to_text(program))

    # the paper's matrix: can_1072 (synthetic stand-in, same profile)
    L_coo = lower_triangular_of(can_1072_like())
    n = L_coo.nrows

    L = as_format(L_coo, "jad")
    print(f"\nL: {n}x{n} lower triangular, nnz={L.nnz}, stored as JAD "
          f"({L.ndiags} jagged diagonals)")
    print("JAD index structure:", L.view())

    kernel = compile_kernel(program, {"L": L})
    stats = kernel.result.stats
    print(f"\nsearch: {stats.generated} candidates, {stats.legal} legal, "
          f"{stats.lowered} lowered")
    chosen = {r.path.path_id for c in kernel.plan.space.copies for r in c.refs}
    print(f"chosen perspective: {chosen} "
          f"(the flat perspective cannot honour the solve's ordering)")

    print("\ndata-centric plan:")
    print(kernel.pseudocode())

    print("\ngenerated code (C-like rendering, the paper's Figure 9 analog):")
    print(python_to_c_like(kernel.source))

    # run it against the hand-written kernels
    rng = np.random.default_rng(1)
    b = rng.random(n)

    out_gen = b.copy()
    fn = kernel.callable()
    t0 = time.perf_counter()
    fn({"L": L, "b": out_gen}, {"n": n})
    t_gen = time.perf_counter() - t0

    out_hand = b.copy()
    t0 = time.perf_counter()
    specialized.ts_lower_jad(L, out_hand)
    t_hand = time.perf_counter() - t0

    assert np.allclose(out_gen, out_hand)
    assert np.allclose(L_coo.to_dense() @ out_gen, b, atol=1e-8)
    print(f"\ngenerated: {t_gen*1e3:.2f} ms, hand-written: {t_hand*1e3:.2f} ms "
          f"-> solution verified against L x = b")


if __name__ == "__main__":
    main()

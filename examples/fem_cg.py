"""FEM-style workload (paper Section 1: "the finite-element method ...
requires the solution of large linear systems Ax = b where A is a large
sparse matrix").

Solves the 2-D Poisson problem with conjugate gradients, with the MVM
kernel synthesized by the compiler plugged in as the matvec, and a
symmetric Gauss–Seidel preconditioner built on the TS kernels.

Run:  python examples/fem_cg.py
"""

import time

import numpy as np

from repro import as_format, compile_kernel, kernels
from repro.formats.generate import laplacian_2d
from repro.solvers import TriangularPreconditioner, cg


def main():
    k_grid = 24
    A_coo = laplacian_2d(k_grid)
    n = A_coo.nrows
    print(f"2-D Laplacian on a {k_grid}x{k_grid} grid: n={n}, nnz={A_coo.nnz}")

    rng = np.random.default_rng(9)
    b = rng.random(n)

    for fmt_name in ["csr", "dia", "msr"]:
        A = as_format(A_coo, fmt_name)
        kernel = compile_kernel(kernels.mvm(), {"A": A})
        fn = kernel.callable()

        def matvec(v):
            y = np.zeros(n)
            fn({"A": A, "x": v, "y": y}, {"m": n, "n": n})
            return y

        t0 = time.perf_counter()
        x, iters, res = cg(A, b, tol=1e-10, matvec=matvec)
        dt = time.perf_counter() - t0
        err = float(np.linalg.norm(A.to_dense() @ x - b))
        print(f"  CG with compiled {fmt_name:4s} MVM: {iters:4d} iterations, "
              f"{dt*1e3:7.1f} ms, ||Ax-b|| = {err:.2e}")
        assert err < 1e-6

    # preconditioning: symmetric Gauss–Seidel via the TS kernels
    A = as_format(A_coo, "csr")
    t0 = time.perf_counter()
    x0, it0, _ = cg(A, b, tol=1e-10)
    t_plain = time.perf_counter() - t0
    t0 = time.perf_counter()
    x1, it1, _ = cg(A, b, tol=1e-10, precond=TriangularPreconditioner(A))
    t_prec = time.perf_counter() - t0
    print(f"\n  plain CG          : {it0:4d} iterations ({t_plain*1e3:7.1f} ms)")
    print(f"  SGS-preconditioned: {it1:4d} iterations ({t_prec*1e3:7.1f} ms)")
    assert it1 < it0
    assert np.allclose(x0, x1, atol=1e-6)


if __name__ == "__main__":
    main()

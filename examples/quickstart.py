"""Quickstart: compile one dense kernel for several sparse formats.

The generic-programming workflow of the paper (Figure 4): write matrix-
vector multiplication once, as though A were dense; bind A to any format;
the compiler synthesizes data-centric sparse code for that format.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import as_format, compile_kernel, kernels

def main():
    rng = np.random.default_rng(0)

    # a small sparse matrix
    dense = rng.random((8, 10))
    dense[dense < 0.7] = 0.0

    # the dense program — written once (see repro/ir/kernels.py; you can
    # also parse your own with repro.parse_program)
    program = kernels.mvm()
    print("high-level (dense) program:")
    from repro import program_to_text

    print(program_to_text(program))

    x = rng.random(10)
    expected = dense @ x

    for fmt_name in ["csr", "csc", "coo", "dia", "ell", "jad", "msr"]:
        A = as_format(dense, fmt_name)
        kernel = compile_kernel(program, {"A": A})
        y = np.zeros(8)
        kernel({"A": A, "x": x, "y": y}, {"m": 8, "n": 10})
        ok = np.allclose(y, expected)
        print(f"  {fmt_name:5s}: compiled "
              f"(searched {kernel.result.stats.generated} candidates, "
              f"estimated cost {kernel.cost:9.1f})  result "
              f"{'matches numpy' if ok else 'WRONG'}")
        assert ok

    # look at what was generated for CSR
    A = as_format(dense, "csr")
    kernel = compile_kernel(program, {"A": A})
    print("\ndata-centric plan (paper Figures 5/8 style):")
    print(kernel.pseudocode())
    print("\ngenerated specialized Python (kernel body):")
    body = kernel.source.split("def kernel", 1)[1]
    print("def kernel" + body)

    # annotate_c_source only *renders* C-like text with OpenMP pragmas on
    # the provably parallel loops — no toolchain needed
    from repro.core import annotate_c_source
    print("\nC-like rendering with OpenMP annotations (strict DOALL):")
    print(annotate_c_source(kernel, flavour="strict"))

    # backend="c" compiles and *executes* the real thing (falling back to
    # the Python kernel, with a warning, when no C compiler is installed)
    import warnings
    from repro.core import NativeBackendWarning
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", NativeBackendWarning)
        native = compile_kernel(program, {"A": A}, backend="c",
                                parallel="strict")
    y = np.zeros(8)
    native({"A": A, "x": x, "y": y}, {"m": 8, "n": 10})
    assert np.array_equal(y, dense @ x) or np.allclose(y, dense @ x)
    print(f"\nnative backend: {native!r}")
    if native.c_source is not None:
        print("compiled C translation unit (first lines):")
        print("\n".join(native.c_source.splitlines()[:12]))


if __name__ == "__main__":
    main()

"""The format-designer story (paper Section 2): define a brand-new format
with the view grammar and a small runtime, and compile existing kernels for
it without touching them.

The format: "banded skyline by rows" — each row stores a contiguous column
segment [first[r], first[r]+len[r]), the profile storage used by skyline
solvers.  Its index structure is

    r -> c -> v     with r an interval and c an interval per row

which the grammar expresses directly; the columns being an *interval* (not
a compressed list) is what distinguishes it from CSR.

Run:  python examples/custom_format.py
"""

import numpy as np

from repro import compile_kernel, kernels
from repro.formats.base import PathRuntime, SparseFormat, coo_dedup_sort
from repro.formats.views import Nest, Term, Value, interval_axis


class SkylineMatrix(SparseFormat):
    """Row-profile storage: per row a dense segment of columns."""

    format_name = "sky"

    def __init__(self, first, length, data, shape):
        super().__init__(shape)
        self.first = np.asarray(first, dtype=np.int64)    # (m,)
        self.length = np.asarray(length, dtype=np.int64)  # (m,)
        self.data = data                                  # list of row arrays

    @property
    def nnz(self):
        return int(self.length.sum())

    def get(self, r, c):
        o = c - self.first[r]
        if 0 <= o < self.length[r]:
            return float(self.data[r][o])
        return 0.0

    def set(self, r, c, v):
        o = c - self.first[r]
        if 0 <= o < self.length[r]:
            self.data[r][o] = v
            return
        raise KeyError((r, c))

    def to_coo_arrays(self):
        rows, cols, vals = [], [], []
        for r in range(self.nrows):
            for o in range(self.length[r]):
                rows.append(r)
                cols.append(self.first[r] + o)
                vals.append(self.data[r][o])
        return (np.array(rows, dtype=np.int64), np.array(cols, dtype=np.int64),
                np.array(vals, dtype=np.float64))

    @classmethod
    def from_coo(cls, rows, cols, vals, shape):
        rows, cols, vals = coo_dedup_sort(rows, cols, vals, shape, order="row")
        m, n = shape
        first = np.zeros(m, dtype=np.int64)
        length = np.zeros(m, dtype=np.int64)
        data = []
        for r in range(m):
            mask = rows == r
            if mask.any():
                lo = int(cols[mask].min())
                hi = int(cols[mask].max()) + 1
            else:
                lo = hi = 0
            first[r] = lo
            length[r] = hi - lo
            row = np.zeros(hi - lo)
            row[cols[mask] - lo] = vals[mask]
            data.append(row)
        return cls(first, length, data, shape)

    # -- the low-level API the compiler consumes -----------------------
    def view(self) -> Term:
        # r -> c -> v, both intervals: rows are random access, each row's
        # columns are a contiguous, searchable segment
        return Nest(interval_axis("r"), Nest(interval_axis("c"), Value()))

    def path_ids(self):
        return ["rows"]

    def axis_total(self, axis_name):
        return (0, self.nrows) if axis_name == "r" else None

    def runtime(self, path_id):
        fmt = self

        class Rt(PathRuntime):
            path = fmt.path(path_id)

            def enumerate(self, step, prefix):
                if step == 0:
                    for r in range(fmt.nrows):
                        yield (r,), r
                else:
                    (r,) = prefix
                    for o in range(int(fmt.length[r])):
                        yield (int(fmt.first[r]) + o, ), o

            def search(self, step, prefix, keys):
                if step == 0:
                    (r,) = keys
                    return r if 0 <= r < fmt.nrows else None
                (r,) = prefix
                (c,) = keys
                o = c - int(fmt.first[r])
                return o if 0 <= o < fmt.length[r] else None

            def interval(self, step, prefix):
                if step == 0:
                    return (0, fmt.nrows)
                (r,) = prefix
                lo = int(fmt.first[r])
                return (lo, lo + int(fmt.length[r]))

            def get(self, prefix):
                r, o = prefix
                return float(fmt.data[r][o])

            def set(self, prefix, value):
                r, o = prefix
                fmt.data[r][o] = value

        return Rt()


def main():
    rng = np.random.default_rng(4)
    # a banded-profile matrix
    n = 40
    dense = np.zeros((n, n))
    for r in range(n):
        lo = max(0, r - rng.integers(1, 4))
        hi = min(n, r + rng.integers(1, 4))
        dense[r, lo:hi] = rng.random(hi - lo) + 0.5

    A = SkylineMatrix.from_dense(dense)
    print(f"skyline matrix: {n}x{n}, nnz={A.nnz}")
    print("index structure:", A.view())

    x = rng.random(n)
    for kname in ["mvm", "row_sums", "frobenius"]:
        program = getattr(kernels, kname)()
        kernel = compile_kernel(program, {"A": A})
        if kname == "mvm":
            y = np.zeros(n)
            kernel({"A": A, "x": x, "y": y}, {"m": n, "n": n})
            assert np.allclose(y, dense @ x)
        elif kname == "row_sums":
            s = np.zeros(n)
            kernel({"A": A, "s": s}, {"m": n, "n": n})
            assert np.allclose(s, dense.sum(axis=1))
        else:
            acc = np.array(0.0)
            kernel({"A": A, "acc": acc}, {"m": n, "n": n})
            assert np.allclose(acc, (dense * dense).sum())
        print(f"  {kname:10s} compiled and verified "
              f"({kernel.result.stats.generated} candidates searched)")

    k = compile_kernel(kernels.mvm(), {"A": A})
    print("\nMVM plan for the new format:")
    print(k.pseudocode())


if __name__ == "__main__":
    main()

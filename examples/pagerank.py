"""Web-graph eigenvector workload (paper Section 1: "some web-search
engines and data-mining codes compute eigenvectors of large sparse
matrices").

Builds a synthetic scale-free-ish link graph, compiles the transposed MVM
for COO (the format a crawler naturally produces), and runs power-iteration
PageRank on it.

Run:  python examples/pagerank.py
"""

import numpy as np

from repro import as_format, compile_kernel, kernels
from repro.solvers import pagerank, power_method


def make_web(n: int, seed: int = 0):
    """Preferential-attachment-flavoured link matrix: A[i][j] = 1 when page
    j links to page i."""
    rng = np.random.default_rng(seed)
    rows, cols = [], []
    popularity = np.ones(n)
    for j in range(n):
        k = int(rng.integers(1, 4))
        p = popularity / popularity.sum()
        targets = rng.choice(n, size=k, replace=False, p=p)
        for i in targets:
            if i != j:
                rows.append(int(i))
                cols.append(j)
                popularity[int(i)] += 1.0
    vals = np.ones(len(rows))
    from repro.formats.coo import CooMatrix

    return CooMatrix.from_coo(np.array(rows), np.array(cols), vals, (n, n))


def main():
    n = 300
    web = make_web(n)
    print(f"synthetic web graph: {n} pages, {web.nnz} links")

    # compiled MVM on the raw COO data
    A = as_format(web, "coo")
    kernel = compile_kernel(kernels.mvm(), {"A": A})
    fn = kernel.callable()

    def matvec(v):
        y = np.zeros(n)
        fn({"A": A, "x": v, "y": y}, {"m": n, "n": n})
        return y

    lam, v, iters = power_method(A, v0=np.ones(n), matvec=matvec,
                                 tol=1e-10, max_iter=5000)
    print(f"dominant eigenvalue of the link matrix: {lam:.4f} "
          f"({iters} iterations, compiled COO MVM)")

    ranks, it = pagerank(as_format(web, "csr"))
    top = np.argsort(ranks)[::-1][:5]
    print(f"PageRank converged in {it} iterations; top pages:")
    in_deg = np.zeros(n)
    r, c, _ = web.to_coo_arrays()
    np.add.at(in_deg, r, 1)
    for p in top:
        print(f"  page {p:4d}: rank {ranks[p]:.5f} (in-degree {int(in_deg[p])})")
    assert abs(ranks.sum() - 1.0) < 1e-8


if __name__ == "__main__":
    main()

"""Differential test wall around SpGEMM (the tentpole): the sparse×sparse
product with *computed* output structure must match the dense
``blas/dense_ref.spgemm`` oracle over every format pair through the
generic tier, and all three dispatch tiers (vectorized / specialized
dense-accumulator / specialized hash-accumulator / generic) must be
byte-for-byte identical on CSR×CSR — rowptr, colind and values arrays,
not just the reconstructed dense matrix.

Exactness: entries are integer-valued floats, so every product/sum is
exact in binary floating point regardless of accumulation order — the
oracle comparison is bitwise, not ``allclose``.

The canonical-output contract the wall pins: rows sorted, columns sorted
within rows, duplicates summed, and *numerically cancelled* entries kept
as stored zeros (the computed pattern is structural — a slot two products
sum to zero in is still a slot, in every tier).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, seed, settings
from hypothesis import strategies as st

from repro.blas import api as blas_api
from repro.blas import dense_ref, specialized
from repro.blas.api import spgemm, spgemm_triples
from repro.formats import FORMATS
from repro.formats.coo import CooMatrix
from repro.formats.csr import CsrMatrix

ALL_FORMATS = list(FORMATS)  # all 10: dense ... sym

N = 6  # square and even: every format (sym, bsr block_size=2) applies

FAST = settings(max_examples=20, deadline=None, derandomize=True)


def _fmt_kwargs(fmt_name):
    return {"block_size": 2} if fmt_name == "bsr" else {}


def build(fmt_name, dense):
    rows, cols = np.nonzero(dense)
    return FORMATS[fmt_name].from_coo(rows, cols, dense[rows, cols],
                                      dense.shape, **_fmt_kwargs(fmt_name))


def _to_dense(entries, m, n, symmetric=False):
    a = np.zeros((m, n))
    for r, c, v in entries:
        a[r, c] = float(v)
    if symmetric:
        low = np.tril(a)
        a = low + low.T - np.diag(np.diag(a))
    return a


def dense_matrices(m, n, symmetric=False):
    """Sparse m-by-n ndarrays with integer-valued float entries."""
    entry = st.tuples(st.integers(0, m - 1), st.integers(0, n - 1),
                      st.integers(-4, 4))
    return st.lists(entry, min_size=0, max_size=3 * max(m, n)).map(
        lambda es: _to_dense(es, m, n, symmetric))


def _fixture_pair():
    """Two deterministic symmetric integer matrices every format admits
    (sym needs value symmetry; everything else doesn't care)."""
    rng = np.random.default_rng(42)
    def sym_sparse():
        a = np.where(rng.random((N, N)) < 0.4,
                     rng.integers(-3, 4, (N, N)), 0).astype(float)
        low = np.tril(a)
        return low + low.T - np.diag(np.diag(a))
    return sym_sparse(), sym_sparse()


# ---------------------------------------------------------------------------
# every format pair through the generic tier vs the dense oracle
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("fmt_a", ALL_FORMATS)
@pytest.mark.parametrize("fmt_b", ALL_FORMATS)
def test_spgemm_all_pairs_match_dense_ref(fmt_a, fmt_b):
    """All 10x10 ordered format pairs: the generic enumeration tier is one
    code for every pair, and its packed CSR output must equal the dense
    oracle bitwise on integer data."""
    da, db = _fixture_pair()
    A = build(fmt_a, da)
    B = build(fmt_b, db)
    C = spgemm(A, B, tier="generic")
    assert type(C) is CsrMatrix
    assert np.array_equal(C.to_dense(), dense_ref.spgemm(da, db))


@pytest.mark.parametrize("fmt_a", ["csc", "ell", "coo"])
@FAST
@given(st.data())
def test_spgemm_mixed_pairs_property(fmt_a, data):
    """Property leg over representative mixed pairs (auto tier: these
    pairs have no specialized kernel, so the generic route serves them)."""
    da = data.draw(dense_matrices(N, N))
    db = data.draw(dense_matrices(N, N))
    A = build(fmt_a, da)
    B = build("dia", db)
    C = spgemm(A, B)
    assert np.array_equal(C.to_dense(), dense_ref.spgemm(da, db))


# ---------------------------------------------------------------------------
# tier byte-identity on CSR×CSR: same arrays, not just same matrix
# ---------------------------------------------------------------------------

def _csr_pair(da, db):
    return CsrMatrix.from_dense(da), CsrMatrix.from_dense(db)


@FAST
@given(st.data())
def test_spgemm_tiers_byte_identical(data):
    """vectorized, specialized (dense and hash accumulator) and generic
    produce identical canonical triples — and the same nmults where the
    tier counts them."""
    da = data.draw(dense_matrices(N, N))
    db = data.draw(dense_matrices(N, N))
    A, B = _csr_pair(da, db)
    rv, cv, vv, nv = spgemm_triples(A, B, tier="vectorized")
    rs, cs, vs, ns = spgemm_triples(A, B, tier="specialized")
    rg, cg, vg, ng = spgemm_triples(A, B, tier="generic")
    for r, c, v in ((rs, cs, vs), (rg, cg, vg)):
        assert np.array_equal(rv, r)
        assert np.array_equal(cv, c)
        assert np.array_equal(vv, v)
    assert nv == ns == ng
    # the hash accumulator is a forced variant of the specialized kernel
    Cd = specialized.spgemm_csr_csr(A, B, accumulator="dense")
    Ch = specialized.spgemm_csr_csr(A, B, accumulator="hash")
    assert np.array_equal(Cd.rowptr, Ch.rowptr)
    assert np.array_equal(Cd.colind, Ch.colind)
    assert np.array_equal(Cd.values, Ch.values)
    # and the packed product equals the oracle bitwise
    C = spgemm(A, B)
    assert np.array_equal(C.to_dense(), dense_ref.spgemm(da, db))


@pytest.mark.parametrize("tier", ["vectorized", "specialized", "generic"])
@FAST
@given(st.data())
def test_spgemm_each_tier_matches_oracle(tier, data):
    da = data.draw(dense_matrices(N, N))
    db = data.draw(dense_matrices(N, N))
    A, B = _csr_pair(da, db)
    C = spgemm(A, B, tier=tier)
    assert np.array_equal(C.to_dense(), dense_ref.spgemm(da, db))


# ---------------------------------------------------------------------------
# deterministic edge cases
# ---------------------------------------------------------------------------

def test_spgemm_rectangular_chain():
    """(4x7)·(7x3): non-square shapes through every tier, and a chained
    product through the packed intermediate."""
    rng = np.random.default_rng(5)
    da = np.where(rng.random((4, 7)) < 0.5,
                  rng.integers(-3, 4, (4, 7)), 0).astype(float)
    db = np.where(rng.random((7, 3)) < 0.5,
                  rng.integers(-3, 4, (7, 3)), 0).astype(float)
    A, B = _csr_pair(da, db)
    for tier in ("vectorized", "specialized", "generic"):
        C = spgemm(A, B, tier=tier)
        assert C.shape == (4, 3)
        assert np.array_equal(C.to_dense(), dense_ref.spgemm(da, db))
    # chain: (A B) B2 with B2 = B^T as a second sparse operand
    Bt = CsrMatrix.from_dense(db.T)
    D = spgemm(spgemm(A, B), Bt)
    assert np.array_equal(D.to_dense(), da @ db @ db.T)


def test_spgemm_duplicate_coo_inputs():
    """Duplicate triples in a COO operand are summed on construction; the
    product sees the summed values (generic tier reads through the
    abstract enumeration of the deduplicated store)."""
    rows = np.array([0, 0, 2, 2, 3])
    cols = np.array([1, 1, 0, 0, 2])
    vals = np.array([1.0, 2.0, 4.0, -1.0, 5.0])
    A = CooMatrix.from_coo(rows, cols, vals, (4, 4))
    da = np.zeros((4, 4))
    np.add.at(da, (rows, cols), vals)
    db = np.diag([1.0, 2.0, 3.0, 4.0])
    B = CooMatrix.from_dense(db)
    C = spgemm(A, B)
    assert np.array_equal(C.to_dense(), dense_ref.spgemm(da, db))


def test_spgemm_all_zero_rows_and_empty():
    """Empty operands and interior all-zero rows: empty output rows stay
    empty, the shape is still right."""
    da = np.zeros((5, 4))
    da[0, 1] = 2.0
    da[3, 0] = -1.0  # rows 1, 2, 4 empty
    db = np.zeros((4, 6))
    db[1, 5] = 3.0
    A, B = _csr_pair(da, db)
    for tier in ("vectorized", "specialized", "generic"):
        C = spgemm(A, B, tier=tier)
        assert np.array_equal(C.to_dense(), da @ db)
    # entirely empty operand: zero stored entries, correct (5, 6) shape
    Z = spgemm(CsrMatrix.from_dense(np.zeros((5, 4))), B)
    assert Z.shape == (5, 6) and Z.nnz == 0
    # degenerate inner dimension: (3, 0) · (0, 2) = zeros((3, 2))
    A0 = CsrMatrix.from_coo([], [], [], (3, 0))
    B0 = CsrMatrix.from_coo([], [], [], (0, 2))
    Z2 = spgemm(A0, B0)
    assert Z2.shape == (3, 2) and Z2.nnz == 0


def test_spgemm_cancellation_keeps_stored_zero():
    """Two products landing on one slot and summing to zero stay a stored
    entry in every tier — the computed pattern is structural."""
    da = np.array([[1.0, 1.0], [0.0, 0.0]])
    db = np.array([[3.0, 0.0], [-3.0, 0.0]])
    A, B = _csr_pair(da, db)
    for tier in ("vectorized", "specialized", "generic"):
        C = spgemm(A, B, tier=tier)
        assert C.nnz == 1                      # the cancelled slot
        assert C.values[0] == 0.0
        assert (C.colind[0], C.rowptr.tolist()) == (0, [0, 1, 1])
    Ch = specialized.spgemm_csr_csr(A, B, accumulator="hash")
    assert Ch.nnz == 1 and Ch.values[0] == 0.0


@pytest.mark.parametrize("backend", ["python", "c"])
def test_spgemm_compiled_same_instance_aliasing(backend):
    """Regression: binding one matrix instance to both operand names of the
    compiled spgemm kernel must enumerate A and B independently.  Candidate
    generation used to fuse any two references to the same matrix object
    into one common enumeration regardless of their index functions, which
    conjoined ``A[i][j]`` and ``B[j][p2]`` onto a single stored entry and
    collapsed the product to its diagonal."""
    import warnings

    from repro.core import NativeBackendWarning, compile_kernel
    from repro.core import backend as be
    from repro.formats import as_format
    from repro.formats.generate import laplacian_2d
    from repro.ir import kernels

    if backend == "c" and be.find_compiler() is None:
        pytest.skip("no C compiler on PATH")
    A = as_format(laplacian_2d(3), "csr")
    d = A.to_dense()
    n = A.nrows
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", NativeBackendWarning)
        kern = compile_kernel(kernels.spgemm(), {"A": A, "B": A},
                              backend=backend)
    C = np.full((n, n), 123.0)
    kern({"A": A, "B": A, "C": C}, {"m": n, "n": n, "k": n})
    assert np.array_equal(C, d @ d)


def test_smvm_two_still_shares_one_enumeration():
    """The aliasing fix must not undo the legitimate common enumeration:
    smvm_two's twin ``A[i][j]`` references have identical index functions
    and still fuse into a single traversal of A."""
    from repro.core import compile_kernel
    from repro.formats import as_format
    from repro.formats.generate import laplacian_2d
    from repro.ir import kernels

    A = as_format(laplacian_2d(3), "csr")
    d = A.to_dense()
    n = A.nrows
    kern = compile_kernel(kernels.smvm_two(), {"A": A}, backend="python")
    x = np.arange(n, dtype=float)
    y = np.full(n, 123.0)
    kern({"A": A, "x": x, "y": y}, {"m": n, "n": n})
    assert np.array_equal(y, 2 * (d @ x))
    # one enumeration of A: a second matrix copy would surface as M1_*
    assert "M1_" not in kern.source


def test_spgemm_conformability_and_type_guards():
    A = CsrMatrix.from_dense(np.ones((3, 4)))
    B = CsrMatrix.from_dense(np.ones((5, 2)))
    with pytest.raises(ValueError, match=r"3x4.*5x2"):
        spgemm(A, B)
    with pytest.raises(ValueError, match="sparse format instances"):
        spgemm(A, np.ones((4, 2)))
    with pytest.raises(ValueError, match="vectorized tier needs CSR"):
        spgemm_triples(CooMatrix.from_dense(np.ones((3, 3))),
                       CsrMatrix.from_dense(np.ones((3, 3))),
                       tier="vectorized")
    with pytest.raises(ValueError, match="no specialized kernel"):
        spgemm_triples(CooMatrix.from_dense(np.ones((3, 3))),
                       CsrMatrix.from_dense(np.ones((3, 3))),
                       tier="specialized")
    with pytest.raises(ValueError, match="tier must be"):
        spgemm_triples(A, CsrMatrix.from_dense(np.ones((4, 2))), tier="bogus")


# ---------------------------------------------------------------------------
# output-format packing: explicit names, auto selection, observable fallback
# ---------------------------------------------------------------------------

class TestOutputFormat:
    def _product_operands(self):
        da, db = _fixture_pair()
        return _csr_pair(da, db) + (da @ db,)

    @pytest.mark.parametrize("name", ["csr", "csc", "coo", "ell", "jad"])
    def test_explicit_output_format(self, name):
        A, B, ref = self._product_operands()
        C = spgemm(A, B, out_format=name)
        assert C.format_name == name
        assert np.array_equal(C.to_dense(), ref)

    def test_auto_output_format(self):
        A, B, ref = self._product_operands()
        C = spgemm(A, B, out_format="auto")
        assert np.array_equal(C.to_dense(), ref)

    def test_auto_picks_dia_for_banded_product(self):
        # tridiagonal squared is pentadiagonal: a dense band, dia wins
        n = 24
        d = (np.diag(np.full(n, 2.0)) + np.diag(np.full(n - 1, -1.0), 1)
             + np.diag(np.full(n - 1, -1.0), -1))
        A = CsrMatrix.from_dense(d)
        C = spgemm(A, A, out_format="auto")
        assert C.format_name == "dia"
        assert np.array_equal(C.to_dense(), d @ d)

    def test_inadmissible_output_falls_back_to_csr(self):
        # bsr on an odd-dimensioned product cannot tile: observable CSR
        # fallback instead of a crash
        from repro.instrument import INSTR

        da = np.ones((3, 3))
        A = CsrMatrix.from_dense(da)
        before = INSTR.get("spgemm.output_fallbacks")
        C = spgemm(A, A, out_format="bsr", block_size=2)
        assert C.format_name == "csr"
        assert np.array_equal(C.to_dense(), da @ da)
        assert INSTR.get("spgemm.output_fallbacks") == before + 1

    def test_unknown_output_format_raises(self):
        A = CsrMatrix.from_dense(np.ones((2, 2)))
        with pytest.raises(ValueError, match="unknown output format"):
            spgemm(A, A, out_format="nope")


class TestOutputFormatSelection:
    """Unit tests of the structure-driven output-format chooser."""

    def _select(self, dense):
        from repro.formats.base import coo_dedup_sort
        from repro.search.format_select import select_output_format

        rows, cols = np.nonzero(dense)
        vals = dense[rows, cols]
        rows, cols, vals = coo_dedup_sort(
            rows.astype(np.int64), cols.astype(np.int64),
            vals.astype(np.float64), dense.shape, order="row")
        return select_output_format(rows, cols, dense.shape)

    def test_empty_pattern_short_circuits_to_csr(self):
        from repro.search.format_select import select_output_format

        e = np.array([], dtype=np.int64)
        ch = select_output_format(e, e, (5, 5))
        assert ch.format_name == "csr" and ch.format_kwargs == {}

    def test_banded_pattern_picks_dia(self):
        # a full tridiagonal band: the band is ~98% full so DIA beats the
        # row-regularity win ELL gets (first/last rows break regularity)
        n = 30
        d = (np.diag(np.ones(n)) + np.diag(np.ones(n - 1), 1)
             + np.diag(np.ones(n - 1), -1))
        ch = self._select(d)
        assert ch.format_name == "dia"
        assert "dia" in ch.table()

    def test_scattered_pattern_stays_row_major(self):
        rng = np.random.default_rng(11)
        d = (rng.random((20, 20)) < 0.08).astype(float)
        ch = self._select(d)
        # irregular scattered structure: dia/ell/bsr all pay padding, so a
        # row-major compressed layout must win
        assert ch.format_name in ("csr", "msr")

    def test_bsr_kwargs_forwarded(self):
        # fully-dense 2x2 tiles on even dims: bsr wins and carries its
        # construction kwargs
        d = np.kron((np.arange(36).reshape(6, 6) % 7 == 0).astype(float),
                    np.ones((2, 2)))
        ch = self._select(d)
        assert ch.format_name == "bsr"
        assert ch.format_kwargs == {"block_size": 2}


# ---------------------------------------------------------------------------
# SolverContext integration: cached normal-equation products
# ---------------------------------------------------------------------------

def test_solver_context_normal_products():
    from repro.solvers.context import SolverContext

    rng = np.random.default_rng(9)
    da = np.where(rng.random((8, 5)) < 0.4,
                  rng.integers(-3, 4, (8, 5)), 0).astype(float)
    ctx = SolverContext(CsrMatrix.from_dense(da), ops=("mvm",),
                        backend="python", register=False)
    ata = ctx.normal("ata")
    assert ata.shape == (5, 5)
    assert np.array_equal(ata.to_dense(), da.T @ da)
    aat = ctx.normal("aat")
    assert aat.shape == (8, 8)
    assert np.array_equal(aat.to_dense(), da @ da.T)
    assert ctx.normal("ata") is ata           # cached, not recomputed
    with pytest.raises(ValueError, match="'ata' or 'aat'"):
        ctx.normal("atb")


# ---------------------------------------------------------------------------
# slow leg: 10x example budget, fixed seed
# ---------------------------------------------------------------------------

@pytest.mark.slow
@seed(20260808)
@settings(max_examples=200, deadline=None)
@given(st.data())
def test_spgemm_deep_budget(data):
    """Slow leg: 200 random CSR×CSR products, all tiers vs the oracle and
    each other, fixed seed for reproducible failures."""
    da = data.draw(dense_matrices(N, N))
    db = data.draw(dense_matrices(N, N))
    A, B = _csr_pair(da, db)
    ref = dense_ref.spgemm(da, db)
    rv, cv, vv, _ = spgemm_triples(A, B, tier="vectorized")
    for tier in ("specialized", "generic"):
        r, c, v, _ = spgemm_triples(A, B, tier=tier)
        assert np.array_equal(rv, r)
        assert np.array_equal(cv, c)
        assert np.array_equal(vv, v)
    assert np.array_equal(spgemm(A, B).to_dense(), ref)

"""Differential test wall around the SpMM workload family (satellite):
compiled ``spmm`` must match the dense ``blas/dense_ref.mm`` oracle over
all 10 formats x {python, c} backends, bitwise.

Exactness: matrix and panel entries are integer-valued floats, so every
product/sum is exact in binary floating point regardless of accumulation
order — the oracle comparison is bitwise, not ``allclose``.  Because both
backends equal the oracle bitwise, they are also byte-identical to each
other; an explicit cross-backend test asserts that directly.

The deterministic edge cases cover what hypothesis rarely draws: the
all-zero matrix, empty rows, duplicate COO triples (summed on
construction), and Fortran-ordered / non-contiguous panels exercising the
native 2-D contiguity-coercion path (copy in, write back out).
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest
from hypothesis import given, seed, settings
from hypothesis import strategies as st

from repro.blas import dense_ref
from repro.core import NativeBackendWarning, compile_kernel
from repro.core import backend as be
from repro.formats import FORMATS
from repro.formats.csr import CsrMatrix
from repro.ir.kernels import spmm, spmm_t

ALL_FORMATS = list(FORMATS)  # all 10: dense ... sym

M, N = 6, 8  # even on both axes so bsr block_size=2 tiles exactly
WIDTHS = (1, 3, 8)

FAST = settings(max_examples=20, deadline=None, derandomize=True)


def _fmt_kwargs(fmt_name):
    return {"block_size": 2} if fmt_name == "bsr" else {}


def _shape(fmt_name):
    # sym stores one triangle of a symmetric matrix: square input only
    return (M, M) if fmt_name == "sym" else (M, N)


def build(fmt_name, dense):
    rows, cols = np.nonzero(dense)
    return FORMATS[fmt_name].from_coo(rows, cols, dense[rows, cols],
                                      dense.shape, **_fmt_kwargs(fmt_name))


def _to_dense(entries, m, n, symmetric):
    a = np.zeros((m, n))
    for r, c, v in entries:
        a[r, c] = float(v)
    if symmetric:
        low = np.tril(a)
        a = low + low.T - np.diag(np.diag(a))
    return a


def dense_matrices(m, n, symmetric=False):
    """Sparse m-by-n ndarrays with integer-valued float entries."""
    entry = st.tuples(st.integers(0, m - 1), st.integers(0, n - 1),
                      st.integers(-4, 4))
    return st.lists(entry, min_size=0, max_size=3 * max(m, n)).map(
        lambda es: _to_dense(es, m, n, symmetric))


def int_panels(n):
    """Dense n-by-k panels (k drawn from WIDTHS) with integer-valued
    float entries."""
    def panel(k):
        return st.lists(st.integers(-3, 3), min_size=n * k,
                        max_size=n * k).map(
            lambda xs: np.array(xs, dtype=float).reshape(n, k))
    return st.sampled_from(WIDTHS).flatmap(panel)


_kernels = {}


def kernel_for(fmt_name, which, backend):
    """Compile once per (format, kernel, backend); hypothesis varies data."""
    key = (fmt_name, which, backend)
    if key not in _kernels:
        m, n = _shape(fmt_name)
        probe = FORMATS[fmt_name].from_coo(
            [0], [0], [1.0], (m, n), **_fmt_kwargs(fmt_name))
        prog = spmm() if which == "spmm" else spmm_t()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", NativeBackendWarning)
            _kernels[key] = compile_kernel(prog, {"A": probe},
                                           backend=backend)
    return _kernels[key]


def backends():
    marks = [pytest.param("python")]
    marks.append(pytest.param(
        "c", marks=pytest.mark.skipif(be.find_compiler() is None,
                                      reason="no C compiler on PATH")))
    return marks


# ---------------------------------------------------------------------------
# differential oracle: compiled spmm vs blas/dense_ref.mm, both backends
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend", backends())
@pytest.mark.parametrize("fmt_name", ALL_FORMATS)
@FAST
@given(st.data())
def test_spmm_matches_dense_ref(fmt_name, backend, data):
    m, n = _shape(fmt_name)
    dense = data.draw(dense_matrices(m, n, symmetric=(fmt_name == "sym")))
    X = data.draw(int_panels(n))
    k = X.shape[1]
    f = build(fmt_name, dense)
    Y = np.full((m, k), 123.0)  # poison: kernel must overwrite
    kernel_for(fmt_name, "spmm", backend)(
        {"A": f, "X": X, "Y": Y}, {"m": m, "n": n, "k": k})
    assert np.array_equal(Y, dense_ref.mm(dense, X))


@pytest.mark.parametrize("backend", backends())
@pytest.mark.parametrize("fmt_name", ["csr", "csc", "coo"])
@FAST
@given(st.data())
def test_spmm_t_matches_dense_ref(fmt_name, backend, data):
    m, n = _shape(fmt_name)
    dense = data.draw(dense_matrices(m, n))
    X = data.draw(int_panels(m))
    k = X.shape[1]
    f = build(fmt_name, dense)
    Y = np.full((n, k), 123.0)
    kernel_for(fmt_name, "spmm_t", backend)(
        {"A": f, "X": X, "Y": Y}, {"m": m, "n": n, "k": k})
    assert np.array_equal(Y, dense_ref.mm_t(dense, X))


@pytest.mark.skipif(be.find_compiler() is None,
                    reason="no C compiler on PATH")
@pytest.mark.parametrize("fmt_name", ALL_FORMATS)
@FAST
@given(st.data())
def test_spmm_backends_byte_identical(fmt_name, data):
    """python and c kernel outputs for the same inputs are bitwise equal
    (both are exact on integer data, hence equal to each other)."""
    m, n = _shape(fmt_name)
    dense = data.draw(dense_matrices(m, n, symmetric=(fmt_name == "sym")))
    X = data.draw(int_panels(n))
    k = X.shape[1]
    f = build(fmt_name, dense)
    Yp = np.full((m, k), 123.0)
    Yc = np.full((m, k), 321.0)
    kernel_for(fmt_name, "spmm", "python")(
        {"A": f, "X": X, "Y": Yp}, {"m": m, "n": n, "k": k})
    kernel_for(fmt_name, "spmm", "c")(
        {"A": f, "X": X, "Y": Yc}, {"m": m, "n": n, "k": k})
    assert np.array_equal(Yp, Yc)


# ---------------------------------------------------------------------------
# deterministic edge cases
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("backend", backends())
def test_spmm_empty_matrix(backend):
    """nnz = 0: the kernel must still zero the poisoned output."""
    f = CsrMatrix.from_dense(np.zeros((M, N)))
    X = np.ones((N, 3))
    Y = np.full((M, 3), 123.0)
    kernel_for("csr", "spmm", backend)(
        {"A": f, "X": X, "Y": Y}, {"m": M, "n": N, "k": 3})
    assert np.array_equal(Y, np.zeros((M, 3)))


@pytest.mark.parametrize("backend", backends())
@pytest.mark.parametrize("fmt_name", ["csr", "jad", "ell"])
def test_spmm_empty_rows(fmt_name, backend):
    """Interior and trailing empty rows produce zero output rows."""
    dense = np.zeros((M, N))
    dense[0, 1] = 2.0
    dense[3, 0] = -1.0
    dense[3, 7] = 4.0  # rows 1, 2, 4, 5 empty
    X = np.arange(N * 3, dtype=float).reshape(N, 3)
    f = build(fmt_name, dense)
    Y = np.full((M, 3), 123.0)
    kernel_for(fmt_name, "spmm", backend)(
        {"A": f, "X": X, "Y": Y}, {"m": M, "n": N, "k": 3})
    assert np.array_equal(Y, dense_ref.mm(dense, X))


@pytest.mark.parametrize("backend", backends())
def test_spmm_duplicate_coo_triples(backend):
    """from_coo sums duplicate coordinates; SpMM sees the summed value."""
    rows = np.array([0, 0, 2, 2, 2, 5])
    cols = np.array([1, 1, 3, 3, 3, 0])
    vals = np.array([1.0, 2.0, 4.0, -1.0, 1.0, 3.0])
    f = CsrMatrix.from_coo(rows, cols, vals, (M, N))
    dense = np.zeros((M, N))
    np.add.at(dense, (rows, cols), vals)
    X = np.arange(N * 2, dtype=float).reshape(N, 2)
    Y = np.full((M, 2), 123.0)
    kernel_for("csr", "spmm", backend)(
        {"A": f, "X": X, "Y": Y}, {"m": M, "n": N, "k": 2})
    assert np.array_equal(Y, dense_ref.mm(dense, X))


def test_spmm_empty_panel_k0():
    """k = 0 through the functional API: a (n, 0) panel yields a (m, 0)
    result from every tier (regression: the kernel path was invoked with
    a zero-width panel and a degenerate workspace could be cached)."""
    from repro.blas import api as blas_api

    dense = np.zeros((M, N))
    dense[2, 3] = 5.0
    f = build("csr", dense)
    Y = blas_api.mm(f, np.zeros((N, 0)))
    assert Y.shape == (M, 0)
    Yt = blas_api.mm_t(f, np.zeros((M, 0)))
    assert Yt.shape == (N, 0)
    # caller-provided (m, 0) buffer is returned as-is
    buf = np.zeros((M, 0))
    assert blas_api.mm(f, np.zeros((N, 0)), buf) is buf


@pytest.mark.skipif(be.find_compiler() is None,
                    reason="no C compiler on PATH")
@pytest.mark.parametrize("order", ["fortran", "strided"])
def test_spmm_noncontiguous_panels_native(order):
    """Fortran-ordered and strided panels exercise the native 2-D
    contiguity coercion: X is copied in, the written Y copied back out."""
    rng = np.random.default_rng(7)
    dense = np.round(rng.random((M, N)) * 4)
    dense[dense < 2] = 0.0
    f = build("csr", dense)
    kern = kernel_for("csr", "spmm", "c")
    if order == "fortran":
        X = np.asfortranarray(np.round(rng.random((N, 4)) * 3))
        Y = np.asfortranarray(np.full((M, 4), 123.0))
    else:
        Xw = np.round(rng.random((N, 8)) * 3)
        X = Xw[:, ::2]                       # non-contiguous view
        Y = np.full((M, 8), 123.0)[:, ::2]
    assert not X.flags.c_contiguous
    kern({"A": f, "X": X, "Y": Y}, {"m": M, "n": N, "k": 4})
    assert np.array_equal(np.ascontiguousarray(Y), dense_ref.mm(dense, X))


# ---------------------------------------------------------------------------
# slow leg: 10x example budget, fixed seed
# ---------------------------------------------------------------------------

@pytest.mark.slow
@pytest.mark.parametrize("fmt_name", ALL_FORMATS)
@seed(20260808)
@settings(max_examples=200, deadline=None)
@given(st.data())
def test_spmm_deep_budget(fmt_name, data):
    """Slow leg: 200 examples per format, fixed seed for reproducible
    failures."""
    m, n = _shape(fmt_name)
    dense = data.draw(dense_matrices(m, n, symmetric=(fmt_name == "sym")))
    X = data.draw(int_panels(n))
    k = X.shape[1]
    f = build(fmt_name, dense)
    Y = np.full((m, k), 123.0)
    kernel_for(fmt_name, "spmm", "python")(
        {"A": f, "X": X, "Y": Y}, {"m": m, "n": n, "k": k})
    assert np.array_equal(Y, dense_ref.mm(dense, X))

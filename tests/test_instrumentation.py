"""Instrumentation registry, pipeline counters, and report rendering."""

from __future__ import annotations

import subprocess
import sys

import numpy as np
import pytest

from repro import instrument
from repro.instrument import INSTR, Instrumentation
from repro.instrument.reporting import compare_snapshots, render_report


class TestRegistry:
    def test_counters_accumulate(self):
        reg = Instrumentation()
        reg.count("a.x")
        reg.count("a.x", 4)
        assert reg.get("a.x") == 5
        assert reg.get("missing") == 0

    def test_timers_accumulate(self):
        reg = Instrumentation()
        reg.add_time("p", 0.25)
        reg.add_time("p", 0.5)
        assert reg.time("p") == pytest.approx(0.75)

    def test_phase_context_manager(self):
        reg = Instrumentation()
        with reg.phase("work"):
            pass
        with reg.phase("work"):
            pass
        assert reg.time("work") > 0.0

    def test_phase_records_on_exception(self):
        reg = Instrumentation()
        with pytest.raises(RuntimeError):
            with reg.phase("boom"):
                raise RuntimeError("x")
        assert reg.time("boom") > 0.0

    def test_snapshot_is_a_copy(self):
        reg = Instrumentation()
        reg.count("c")
        snap = reg.snapshot()
        reg.count("c")
        assert snap["counters"]["c"] == 1
        assert reg.get("c") == 2

    def test_reset(self):
        reg = Instrumentation()
        reg.count("c")
        reg.add_time("t", 1.0)
        reg.reset()
        assert reg.snapshot() == {"counters": {}, "timers": {}}


class TestPipelineCounters:
    def test_search_populates_counters_and_stats(self):
        from repro.core.embedding import clear_pair_memo
        from repro.formats import as_format
        from repro.formats.generate import random_sparse
        from repro.ir.kernels import mvm
        from repro.polyhedra.fm import clear_memos
        from repro.search.driver import search

        # cold-start the process-wide memos: warm FM/pair memos (from other
        # tests in the same process) would satisfy the legality queries with
        # zero fresh eliminations
        clear_memos()
        clear_pair_memo()
        A = as_format(random_sparse(8, 6, 0.3, seed=3).to_dense(), "csr")
        before = instrument.snapshot()
        result = search(mvm(), {"A": A}, param_values={"m": 8, "n": 6})
        after = instrument.snapshot()
        delta = compare_snapshots(before, after)

        assert delta["counters"]["search.candidates.generated"] == result.stats.generated
        assert delta["counters"]["search.candidates.legal"] == result.stats.legal
        assert delta["counters"]["search.candidates.lowered"] == result.stats.lowered
        assert delta["counters"]["fm.eliminations"] > 0
        assert delta["counters"]["plan.build_calls"] >= result.stats.lowered
        assert delta["timers"]["search.total"] > 0.0
        # per-search stats carry the same movement
        assert result.stats.fm_eliminations == delta["counters"]["fm.eliminations"]
        assert result.stats.timings["search.total"] > 0.0
        assert "search.legality" in result.stats.timings
        assert not result.stats.from_cache

    def test_codegen_counters(self):
        from repro.codegen.pysource import compile_plan_to_python
        from repro.core.cache import clear_compile_cache
        from repro.core.compiler import compile_kernel
        from repro.formats import as_format
        from repro.formats.generate import random_sparse
        from repro.ir.kernels import mvm

        clear_compile_cache()
        A = as_format(random_sparse(8, 6, 0.3, seed=3).to_dense(), "csr")
        kernel = compile_kernel(mvm(), {"A": A}, cache="off")
        before = instrument.snapshot()
        compile_plan_to_python(kernel.plan)
        after = instrument.snapshot()
        delta = compare_snapshots(before, after)
        assert delta["counters"]["codegen.compiles"] == 1
        assert delta["timers"]["codegen.total"] > 0.0

    def test_fm_memo_hits_counted(self):
        from repro.polyhedra import fm
        from repro.polyhedra.linexpr import LinExpr
        from repro.polyhedra.system import Constraint, GE, System

        fm.clear_memos()
        x = LinExpr.variable("x")
        sys_ = System([Constraint(x - 1, GE), Constraint(LinExpr.constant(10) - x, GE)])
        before = INSTR.get("fm.feasible.memo_hits")
        assert fm.is_feasible(sys_)
        assert fm.is_feasible(System(list(sys_.constraints)))  # same content
        assert INSTR.get("fm.feasible.memo_hits") == before + 1


class TestReport:
    def test_render_empty(self):
        assert "no activity" in render_report(Instrumentation())

    def test_render_sections(self):
        reg = Instrumentation()
        reg.count("search.candidates.generated", 12)
        reg.count("cache.hits.exact", 3)
        reg.add_time("search.total", 1.5)
        text = render_report(reg)
        assert "phase timers" in text
        assert "counters" in text
        assert "search.candidates.generated" in text
        assert "1.500 s" in text

    def test_compare_snapshots_drops_zero_deltas(self):
        reg = Instrumentation()
        reg.count("a")
        before = reg.snapshot()
        reg.count("b", 2)
        delta = compare_snapshots(before, reg.snapshot())
        assert delta["counters"] == {"b": 2}

    def test_module_report_helper(self):
        assert isinstance(instrument.report(), str)


class TestTraceEnv:
    def test_trace_enabled_parsing(self, monkeypatch):
        for off in ("", "0", "false", "off", "no", "  OFF "):
            monkeypatch.setenv("REPRO_TRACE", off)
            assert not instrument.trace_enabled()
        for on in ("1", "true", "yes", "full"):
            monkeypatch.setenv("REPRO_TRACE", on)
            assert instrument.trace_enabled()

    def test_atexit_report_emitted(self):
        """REPRO_TRACE=1 prints the report on interpreter exit."""
        code = (
            "from repro.instrument import INSTR\n"
            "INSTR.count('search.candidates.generated', 7)\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True,
            env={"PYTHONPATH": "src", "REPRO_TRACE": "1", "PATH": "/usr/bin:/bin"},
            cwd=".",
        )
        assert proc.returncode == 0
        assert "repro pipeline instrumentation" in proc.stderr
        assert "search.candidates.generated" in proc.stderr

    def test_no_report_without_trace(self):
        code = "from repro.instrument import INSTR\nINSTR.count('x', 1)\n"
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            cwd=".",
        )
        assert proc.returncode == 0
        assert "instrumentation" not in proc.stderr

"""Warn-and-default env parsing (satellite: no bare ValueError from
``REPRO_*`` config typos).

A garbage numeric environment variable must never escape as a raw
``ValueError`` from deep inside the pipeline: :func:`repro.util.env_int`
/ :func:`env_float` warn once (:class:`~repro.util.EnvVarWarning`), count
``env.parse_errors``, and return the documented default — and the two
call sites the bug report named (``compile_many`` worker sizing, the
single-flight follower timeout) behave as if the variable were unset.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core import backend as be
from repro.core.service import compile_many
from repro.formats import as_format
from repro.instrument import INSTR
from repro.ir.kernels import ALL_KERNELS
from repro.util import EnvVarWarning, env_float, env_int


class TestEnvInt:
    def test_unset_returns_default_silently(self, monkeypatch):
        monkeypatch.delenv("REPRO_TEST_KNOB", raising=False)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert env_int("REPRO_TEST_KNOB", 7) == 7

    def test_empty_returns_default_silently(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "   ")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert env_int("REPRO_TEST_KNOB", 7) == 7

    def test_valid_value_parses(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", " 12 ")
        assert env_int("REPRO_TEST_KNOB", 7) == 12

    @pytest.mark.parametrize("raw", ["eight", "3.5", "1e3", "0x10", "true"])
    def test_garbage_warns_and_defaults(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_TEST_KNOB", raw)
        before = INSTR.get("env.parse_errors")
        with pytest.warns(EnvVarWarning, match="REPRO_TEST_KNOB"):
            assert env_int("REPRO_TEST_KNOB", 7) == 7
        assert INSTR.get("env.parse_errors") == before + 1

    def test_below_minimum_warns_and_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "-3")
        with pytest.warns(EnvVarWarning, match=">= 0"):
            assert env_int("REPRO_TEST_KNOB", 7, minimum=0) == 7

    def test_minimum_is_inclusive(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "0")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert env_int("REPRO_TEST_KNOB", 7, minimum=0) == 0


class TestEnvFloat:
    @pytest.mark.parametrize("raw", ["soon", "1..5", "five", "nan"])
    def test_garbage_warns_and_defaults(self, monkeypatch, raw):
        monkeypatch.setenv("REPRO_TEST_KNOB", raw)
        with pytest.warns(EnvVarWarning, match="REPRO_TEST_KNOB"):
            assert env_float("REPRO_TEST_KNOB", 2.5) == 2.5

    def test_valid_value_parses(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "0.25")
        assert env_float("REPRO_TEST_KNOB", 2.5) == 0.25

    def test_negative_rejected_with_minimum(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "-1.0")
        with pytest.warns(EnvVarWarning):
            assert env_float("REPRO_TEST_KNOB", 2.5, minimum=0.0) == 2.5


class TestCallSites:
    """The original bug: garbage values raised bare ValueError."""

    def test_compile_many_with_garbage_workers(self, monkeypatch, small_square):
        monkeypatch.setenv("REPRO_COMPILE_WORKERS", "eight")
        A = as_format(small_square, "csr")
        with pytest.warns(EnvVarWarning, match="REPRO_COMPILE_WORKERS"):
            batch = compile_many([ALL_KERNELS["mvm"]()], {"A": A})
        assert batch.ok
        x = np.ones(A.ncols)
        y = np.zeros(A.nrows)
        batch.kernels[0]({"A": A, "x": x, "y": y},
                         {"m": A.nrows, "n": A.ncols})
        assert np.allclose(y, small_square @ x)

    def test_singleflight_timeout_with_garbage_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_SINGLEFLIGHT_TIMEOUT", "soon")
        with pytest.warns(EnvVarWarning, match="REPRO_SINGLEFLIGHT_TIMEOUT"):
            assert be.singleflight_timeout() == 300.0

    def test_singleflight_timeout_valid(self, monkeypatch):
        monkeypatch.setenv("REPRO_SINGLEFLIGHT_TIMEOUT", "17.5")
        assert be.singleflight_timeout() == 17.5

"""Blocked-CG trajectory tests (satellite): ``block_cg(ctx, B)`` must be
column-wise byte-identical to k independent ``cg`` runs on the Python
backend (the batched SpMM changes the memory traffic, not the math),
converge on both backends against the dense reference, and demote
gracefully to the BLAS dispatch when the ``spmm`` compile fails."""

from __future__ import annotations

import numpy as np
import pytest

from repro.blas import api as blas_api
from repro.core import backend as be
from repro.formats import as_format
from repro.formats.generate import laplacian_2d
from repro.instrument import INSTR
from repro.solvers import SolverContext, block_cg, cg

BACKENDS = ["python"] + (["c"] if be.find_compiler() else [])

N_SIDE = 5  # 25x25 SPD laplacian
K = 4


@pytest.fixture(scope="module")
def spd():
    return laplacian_2d(N_SIDE)


@pytest.fixture(scope="module")
def spd_dense(spd):
    return spd.to_dense()


@pytest.fixture(scope="module")
def B(spd):
    return np.random.default_rng(31).random((spd.nrows, K))


def _ctx(spd, ops=("mvm", "spmm"), backend="python", **kw):
    return SolverContext(as_format(spd, "csr"), ops=ops, backend=backend,
                         **kw)


class TestByteIdentity:
    """Column j of block_cg's every output is bitwise what an independent
    cg run on the same context produces — same update order, same
    stopping rules, same final residual."""

    def test_columns_match_independent_cg(self, spd, B):
        ctx = _ctx(spd)
        X, iters, res = block_cg(ctx, B, tol=1e-12)
        for j in range(K):
            xj, itj, rj = cg(ctx, B[:, j], tol=1e-12)
            assert np.array_equal(X[:, j], xj), f"column {j} diverged"
            assert iters[j] == itj
            assert res[j] == rj

    def test_columns_match_under_iteration_cap(self, spd, B):
        """A fixed budget freezes nothing early: trajectories still match
        bitwise at every column."""
        ctx = _ctx(spd)
        X, iters, _ = block_cg(ctx, B, tol=0.0, max_iter=7)
        for j in range(K):
            xj, itj, _ = cg(ctx, B[:, j], tol=0.0, max_iter=7)
            assert np.array_equal(X[:, j], xj)
            assert iters[j] == itj == 7

    def test_single_rhs_vector_matches_cg(self, spd, B):
        """A 1-D b goes through the k=1 panel path and returns 1-D."""
        ctx = _ctx(spd)
        b = B[:, 0]
        x_blk, it_blk, r_blk = block_cg(ctx, b, tol=1e-12)
        x, it, r = cg(ctx, b, tol=1e-12)
        assert x_blk.shape == x.shape
        assert np.array_equal(x_blk, x)
        assert it_blk == it and r_blk == r

    def test_x0_block(self, spd, B):
        ctx = _ctx(spd)
        X0 = np.random.default_rng(7).random(B.shape)
        X, _, _ = block_cg(ctx, B, X0=X0, tol=1e-12)
        for j in range(K):
            xj, _, _ = cg(ctx, B[:, j], x0=X0[:, j].copy(), tol=1e-12)
            assert np.array_equal(X[:, j], xj)


class TestConvergence:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_solves_vs_dense_reference(self, backend, spd, spd_dense, B):
        ctx = _ctx(spd, backend=backend)
        X, iters, res = block_cg(ctx, B, tol=1e-12)
        assert np.allclose(X, np.linalg.solve(spd_dense, B), atol=1e-8)
        assert (iters > 0).all()
        assert (res <= 1e-12 * np.linalg.norm(B, axis=0)).all()

    def test_plain_format_dispatch(self, spd, spd_dense, B):
        """No context at all: block_cg rides blas.api.mm per call."""
        X, _, _ = block_cg(as_format(spd, "csr"), B, tol=1e-12)
        assert np.allclose(X, np.linalg.solve(spd_dense, B), atol=1e-8)

    def test_explicit_matmat_callable(self, spd, spd_dense, B):
        calls = []

        def matmat(X):
            calls.append(X.shape)
            return spd_dense @ X

        X, _, _ = block_cg(spd, B, matmat=matmat, tol=1e-12)
        assert np.allclose(X, np.linalg.solve(spd_dense, B), atol=1e-8)
        assert calls and all(s == B.shape for s in calls)


class TestFallback:
    def test_spmm_compile_failure_demotes_observably(self, spd, spd_dense, B):
        """A backend no compiler accepts fails every op's compile: the
        counters tick, the reasons are recorded, and block_cg still
        converges through the per-call BLAS dispatch."""
        before = INSTR.get("solver.fallback.compile")
        ctx = _ctx(spd, backend="fortran")
        assert INSTR.get("solver.fallback.compile") == before + 2
        assert set(ctx.fallbacks) == {"mvm", "spmm"}
        assert ctx.backends == {"mvm": "blas", "spmm": "blas"}
        assert ctx.bound("spmm") is None
        X, _, _ = block_cg(ctx, B, tol=1e-12)
        assert np.allclose(X, np.linalg.solve(spd_dense, B), atol=1e-8)


class TestMatmat:
    def test_matmat_workspace_reuse(self, spd, spd_dense, B):
        ctx = _ctx(spd)
        Y1 = ctx.matmat(B)
        Y2 = ctx.matmat(B)
        assert Y1 is Y2  # same (n, k) workspace while k is stable
        assert np.allclose(Y2, spd_dense @ B)
        Y3 = ctx.matmat(B[:, :2].copy())  # width change reallocates
        assert Y3.shape == (spd.nrows, 2)

    def test_matmat_t(self, spd, spd_dense, B):
        ctx = _ctx(spd, ops=("spmm_t",))
        assert np.allclose(ctx.matmat_t(B), spd_dense.T @ B)

    def test_handle_rides_functional_api(self, spd, spd_dense):
        """A context-bound spmm kernel serves plain blas.api.mm calls for
        the same instance through the handle cache."""
        inst = as_format(spd, "csr")
        SolverContext(inst, ops=("spmm",), backend="python")
        X = np.random.default_rng(3).random((spd.ncols, 3))
        before = INSTR.get("blas.handle.hits")
        Y = blas_api.mm(inst, X)
        assert INSTR.get("blas.handle.hits") == before + 1
        assert np.allclose(Y, spd_dense @ X)

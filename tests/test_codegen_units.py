"""Unit tests for the code-generation internals: expression rendering,
per-format emitters, and the C-like renderer's expression coverage."""

from fractions import Fraction

import numpy as np
import pytest

from repro.codegen.csource import _CRenderer, python_to_c_like
from repro.codegen.emitters import SourceWriter, make_emitter
from repro.codegen.pysource import guard_str, render_pv
from repro.core.spaces import build_copies
from repro.formats import as_format
from repro.ir.kernels import mvm
from repro.polyhedra.linexpr import LinExpr


class TestRenderPv:
    def test_constant(self):
        assert render_pv(LinExpr({}, 5)) == "5"
        assert render_pv(LinExpr({}, 0)) == "0"
        assert render_pv(LinExpr({}, -3)) == "-3"

    def test_single_var(self):
        assert render_pv(LinExpr({"x": 1})) == "x"
        assert render_pv(LinExpr({"x": -1})) == "-x"
        assert render_pv(LinExpr({"x": 2})) == "2*x"

    def test_combination(self):
        s = render_pv(LinExpr({"a": 1, "b": -2}, 3))
        assert s == "a - 2*b + 3"

    def test_fractional_becomes_floordiv(self):
        s = render_pv(LinExpr({"x": Fraction(1, 2)}))
        assert s == "(x) // 2"
        # evaluates exactly when divisible
        assert eval(s, {"x": 6}) == 3

    def test_guard_str_scales(self):
        g = guard_str(LinExpr({"x": Fraction(1, 3)}, Fraction(-2, 3)), ">=")
        assert g == "x - 2 >= 0"

    def test_guard_str_eq(self):
        g = guard_str(LinExpr({"x": 1, "y": -1}), "==")
        assert g == "x - y == 0"


class TestSourceWriter:
    def test_indent_and_fresh(self):
        w = SourceWriter()
        w.emit("a = 1")
        w.push()
        w.emit("b = 2")
        w.pop()
        assert w.text() == "a = 1\n    b = 2"
        assert w.fresh("x") != w.fresh("x")


def _ref_for(fmt):
    copies = build_copies(mvm(), {"A": fmt}, {})
    for c in copies:
        if c.refs:
            return c.refs[0]
    raise AssertionError("no ref")


class TestEmitters:
    @pytest.mark.parametrize("fmt_name", ["csr", "csc", "coo", "dense",
                                          "ell", "dia", "jad", "bsr"])
    def test_loop_emits_compilable_fragment(self, fmt_name, small_rect):
        kwargs = {"block_size": 2} if fmt_name == "bsr" else {}
        fmt = as_format(small_rect, fmt_name, **kwargs)
        ref = _ref_for(fmt)
        em = make_emitter(ref, "M0")
        w = SourceWriter()
        w.emit("def frag(_src_M0):")
        w.push()
        em.prologue(w, "_src_M0")
        w.emit("total = 0.0")
        states = []
        for step in range(len(ref.path.steps)):
            keys, new_states = em.loop(w, step, states, reverse=False)
            states = states + list(new_states)
        w.emit(f"total += {em.get(states)}")
        while w.indent > 1:
            w.pop()
        w.emit("return total")
        src = ("def _bisect(a,k,lo,hi):\n"
               "    import bisect\n"
               "    i = bisect.bisect_left(a, k, lo, hi)\n"
               "    return i if i < hi and a[i] == k else -1\n" + w.text())
        ns = {}
        exec(src, ns)
        total = ns["frag"](fmt)
        # sum of all stored values (dense includes zeros, same sum)
        rows, cols, vals = fmt.to_coo_arrays()
        assert total == pytest.approx(float(np.sum(vals)))

    @pytest.mark.parametrize("fmt_name", ["csr", "csc", "ell", "dia", "jad"])
    def test_search_finds_stored_entry(self, fmt_name, small_rect):
        fmt = as_format(small_rect, fmt_name)
        ref = _ref_for(fmt)
        em = make_emitter(ref, "M0")
        # exercise through the full generated kernel instead of fragments:
        # searching is covered by the compiler tests; here just check the
        # emitter produces syntactically valid code
        w = SourceWriter()
        w.emit("def frag(_src_M0, k0, k1):")
        w.push()
        em.prologue(w, "_src_M0")
        nkeys = len(ref.path.steps[0].names)
        states, found = em.search(w, 0, [], ["k0", "k1"][:nkeys])
        w.emit(f"return {found}")
        import ast

        ast.parse(w.text())


class TestCRenderer:
    def test_expressions(self):
        import ast as _ast

        r = _CRenderer()
        assert r.expr(_ast.parse("a + b * 2", mode="eval").body) == \
            "(a + (b * 2))"
        # floor division must not render as truncating C "/"
        assert r.expr(_ast.parse("x // 3", mode="eval").body) == "_fdiv(x, 3)"
        assert r.expr(_ast.parse("a[i, j]", mode="eval").body) == "a[i][j]"
        assert r.expr(_ast.parse("x if c else y", mode="eval").body) == \
            "(c ? x : y)"
        assert "&&" in r.expr(_ast.parse("0 <= x < n", mode="eval").body)

    def test_statements(self):
        src = (
            "def kernel(arrays, params):\n"
            "    t = 0\n"
            "    for i in range(3):\n"
            "        while t < 2:\n"
            "            t = t + 1\n"
            "        if t >= 2:\n"
            "            t = 0\n"
            "        else:\n"
            "            t = 1\n"
            "    return None\n"
        )
        c = python_to_c_like(src)
        assert "for (int i = 0; i < 3; i++)" in c
        assert "while" in c and "else" in c
        assert c.count("{") == c.count("}")

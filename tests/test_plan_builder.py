"""Plan construction: node structure, methods, error cases."""

import numpy as np
import pytest

from repro.core import (
    IntervalEnum,
    LoopNode,
    PlanError,
    SearchEnum,
    SortedEnum,
    StoredEnum,
    VarLoopNode,
    ExecNode,
    compile_kernel,
)
from repro.formats import as_format
from repro.ir.kernels import mvm, ts_lower, ts_upper
from tests.conftest import compile_cached


def _loops(nodes):
    """Flatten to (depth, node) pairs."""
    out = []

    def walk(ns, d):
        for n in ns:
            out.append((d, n))
            if isinstance(n, LoopNode):
                walk(n.before, d + 1)
                walk(n.body, d + 1)
                walk(n.after, d + 1)
            elif isinstance(n, VarLoopNode):
                walk(n.body, d + 1)

    walk(nodes, 0)
    return out


class TestTsPlans:
    def test_csr_is_single_shared_nest(self, lower_tri):
        k = compile_cached("ts_lower", "csr", as_format(lower_tri, "csr"), "L")
        nodes = _loops(k.plan.nodes)
        loops = [n for _, n in nodes if isinstance(n, LoopNode)]
        assert len(loops) == 2  # rows, cols — one shared nest, Figure 8
        assert all(isinstance(l.method, StoredEnum) for l in loops)
        # both references share the single enumeration
        roles0 = {r.role for r in loops[0].roles}
        assert roles0 == {"driver", "shared"}
        execs = [n for _, n in nodes if isinstance(n, ExecNode)]
        assert {e.copy.label for e in execs} == {"S1", "S2"}

    def test_jad_uses_interval_search(self, lower_tri):
        """The JAD TS plan must count logical rows through the inverse
        permutation — paper Figure 9."""
        k = compile_cached("ts_lower", "jad", as_format(lower_tri, "jad"), "L")
        loops = [n for _, n in _loops(k.plan.nodes) if isinstance(n, LoopNode)]
        assert isinstance(loops[0].method, IntervalEnum)
        assert loops[0].method.driver.path.path_id == "rows"

    def test_upper_solve_reversed(self, upper_tri):
        k = compile_cached("ts_upper", "csr", as_format(upper_tri, "csr"), "U")
        loops = [n for _, n in _loops(k.plan.nodes) if isinstance(n, LoopNode)]
        m0 = loops[0].method
        assert (isinstance(m0, IntervalEnum) and m0.reverse) or (
            isinstance(m0, StoredEnum) and m0.reverse)

    def test_coo_sorts(self, lower_tri):
        k = compile_cached("ts_lower", "coo", as_format(lower_tri, "coo"), "L")
        loops = [n for _, n in _loops(k.plan.nodes) if isinstance(n, LoopNode)]
        assert isinstance(loops[0].method, SortedEnum)

    def test_dia_has_no_legal_plan(self, lower_tri):
        """Row-order substitution cannot be realized over (d, o) dims: the
        row index is a linear combination of dimensions, not a dimension.
        The compiler must refuse rather than produce wrong code (NIST
        likewise has no DIA TS in the C library)."""
        with pytest.raises(PlanError):
            compile_kernel(ts_lower(), {"L": as_format(lower_tri, "dia")})


class TestMvmPlans:
    def test_csr_init_before_inner_loop(self, small_rect):
        k = compile_cached("mvm", "csr", as_format(small_rect, "csr"), "A")
        pairs = _loops(k.plan.nodes)
        loops = [n for _, n in pairs if isinstance(n, LoopNode)]
        inner = loops[1]
        # y[i] = 0 sits in the before-segment of the column loop
        before_exec = [n for n in inner.before if isinstance(n, ExecNode)]
        assert [e.copy.label for e in before_exec] == ["S1"]

    def test_csc_init_is_separate_varloop(self, small_rect):
        k = compile_cached("mvm", "csc", as_format(small_rect, "csc"), "A")
        pairs = _loops(k.plan.nodes)
        # at top level: the initialization loop must precede the column
        # enumeration (placement BEFORE the whole CSC walk)
        kinds = [type(n).__name__ for d, n in pairs if d == 0]
        assert "VarLoopNode" in kinds or "LoopNode" in kinds
        execs = [n for _, n in pairs if isinstance(n, ExecNode)]
        assert {e.copy.label for e in execs} == {"S1", "S2"}

    @pytest.mark.slow
    def test_msr_search_for_determined_dim(self, small_square):
        """The diagonal branch of MSR MVM looks its element up instead of
        scanning — the paper's redundant-dimension search."""
        k = compile_cached("mvm", "msr", as_format(small_square, "msr"), "A")
        loops = [n for _, n in _loops(k.plan.nodes) if isinstance(n, LoopNode)]
        assert any(isinstance(l.method, SearchEnum) for l in loops) or \
            len(loops) >= 2  # alternative legal shapes exist; at least split

    def test_guard_simplification_minimal(self, lower_tri):
        """After simplification the CSR TS plan carries exactly the guards
        of paper Figure 8: the diagonal test (an equality, via unification)
        and the strict-lower test on the update."""
        k = compile_cached("ts_lower", "csr", as_format(lower_tri, "csr"), "L")
        execs = [n for _, n in _loops(k.plan.nodes) if isinstance(n, ExecNode)]
        by_label = {e.copy.label: e for e in execs}
        assert len(by_label["S1"].guards) == 0   # handled by unification
        assert len(by_label["S2"].guards) == 1   # col < row


class TestPrettyPrinter:
    def test_pseudocode_mentions_enumerations(self, lower_tri):
        k = compile_cached("ts_lower", "csr", as_format(lower_tri, "csr"), "L")
        text = k.pseudocode()
        assert "enumerate" in text
        assert "execute S1" in text and "execute S2" in text

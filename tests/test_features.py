"""Structure features and quantized signatures (autotuning front half)."""

import numpy as np
import pytest

from repro.formats.coo import CooMatrix
from repro.formats.generate import (
    banded,
    block_structured,
    power_law_rows,
    random_sparse,
)
from repro.search.features import (
    N_HIST_BUCKETS,
    StructureFeatures,
    extract_features,
    features_from_pattern,
    structure_signature,
)


class TestDegenerateMatrices:
    def test_empty_matrix(self):
        m = CooMatrix(np.array([], dtype=np.int64), np.array([], dtype=np.int64),
                      np.array([], dtype=np.float64), (4, 4))
        f = extract_features(m)
        assert f.nnz == 0
        assert f.density == 0.0
        assert f.row_hist[0] == 1.0          # every row is empty
        assert sum(f.row_hist) == 1.0
        assert isinstance(structure_signature(f), str)

    def test_zero_dimension(self):
        f = features_from_pattern(np.array([], dtype=np.int64),
                                  np.array([], dtype=np.int64), (0, 0))
        assert f.nnz == 0
        assert f.row_hist == (0.0,) * N_HIST_BUCKETS
        structure_signature(f)               # must not crash

    def test_single_row(self):
        m = CooMatrix.from_coo(np.zeros(5, dtype=np.int64),
                               np.arange(5, dtype=np.int64),
                               np.ones(5), (1, 8))
        f = extract_features(m)
        assert f.nrows == 1 and f.nnz == 5
        assert f.row_cv == 0.0               # one row: no spread
        assert f.row_max_ratio == pytest.approx(1.0)

    def test_fully_dense(self):
        f = extract_features(np.ones((6, 6)))
        assert f.density == pytest.approx(1.0)
        assert f.block_fill == pytest.approx(1.0)
        assert f.symmetry == pytest.approx(1.0)
        assert f.diag_fill == pytest.approx(1.0)

    def test_duplicate_entries_do_not_shift_features(self):
        """A raw COO with every entry duplicated describes the same stored
        pattern; the extractor must dedupe before aggregating."""
        clean = random_sparse(10, 10, density=0.2, seed=3)
        rows, cols, vals = clean.to_coo_arrays()
        dup = CooMatrix(np.concatenate([rows, rows]),
                        np.concatenate([cols, cols]),
                        np.concatenate([vals, vals]), clean.shape)
        assert structure_signature(dup) == structure_signature(clean)
        fd, fc = extract_features(dup), extract_features(clean)
        assert fd.nnz == fc.nnz
        assert fd.row_hist == fc.row_hist

    def test_assume_canonical_matches_default(self):
        m = random_sparse(20, 20, density=0.15, seed=4)
        rows, cols, _ = m.to_coo_arrays()
        a = features_from_pattern(rows, cols, m.shape)
        b = features_from_pattern(rows, cols, m.shape, assume_canonical=True)
        assert a.quantized() == b.quantized()


class TestSignatureStability:
    @pytest.mark.parametrize("gen", [
        lambda seed: random_sparse(400, 400, density=0.03, seed=seed),
        lambda seed: banded(400, bandwidth=2, seed=seed),
        lambda seed: power_law_rows(400, 400, seed=seed),
        lambda seed: block_structured(400, block_size=4, seed=seed),
    ], ids=["uniform", "banded", "powerlaw", "block"])
    def test_same_class_same_signature(self, gen):
        """At the sizes autotuning targets (thousands of entries), class
        statistics concentrate and same-class samples share a signature;
        tiny matrices differ materially sample-to-sample and are cheap
        enough that a re-tune costs nothing."""
        sigs = {structure_signature(gen(seed)) for seed in (0, 1, 2)}
        assert len(sigs) == 1

    def test_value_perturbation_same_signature(self):
        m = random_sparse(50, 50, density=0.1, seed=7)
        rows, cols, vals = m.to_coo_arrays()
        perturbed = CooMatrix.from_coo(rows, cols, vals * 17.5 + 3.0, m.shape)
        assert structure_signature(perturbed) == structure_signature(m)

    def test_structure_change_different_signature(self):
        classes = [random_sparse(400, 400, density=0.03, seed=0),
                   banded(400, bandwidth=2, seed=0),
                   power_law_rows(400, 400, seed=0),
                   block_structured(400, block_size=4, seed=0)]
        sigs = [structure_signature(m) for m in classes]
        assert len(set(sigs)) == len(sigs)

    def test_size_change_different_signature(self):
        a = random_sparse(100, 100, density=0.05, seed=0)
        b = random_sparse(800, 800, density=0.05, seed=0)
        assert structure_signature(a) != structure_signature(b)


class TestFeatureValues:
    def test_banded_bandwidth(self):
        f = extract_features(banded(64, bandwidth=2, seed=0))
        assert f.bandwidth_ratio == pytest.approx(2 / 63)
        assert f.band_avg_ratio < 0.05
        assert f.band_fill > 0.9             # the band is fully stored
        assert f.diag_fill == pytest.approx(1.0)
        assert f.symmetry == pytest.approx(1.0)   # pattern, not values

    def test_uniform_is_unbanded(self):
        f = extract_features(random_sparse(400, 400, density=0.03, seed=0))
        # mean |r - c| of uniform coordinates concentrates near span/3
        assert 0.25 < f.band_avg_ratio < 0.42

    def test_power_law_has_high_row_spread(self):
        fp = extract_features(power_law_rows(400, 400, seed=0))
        fu = extract_features(random_sparse(400, 400, density=0.03, seed=0))
        assert fp.row_cv > fu.row_cv
        assert fp.row_max_ratio > fu.row_max_ratio

    def test_block_structured_fills_blocks(self):
        fb = extract_features(block_structured(200, block_size=4, seed=0))
        fu = extract_features(random_sparse(200, 200, density=0.03, seed=0))
        assert fb.block_fill > fu.block_fill

    def test_as_dict_covers_all_slots(self):
        f = extract_features(random_sparse(20, 20, density=0.1, seed=1))
        d = f.as_dict()
        assert set(d) == set(StructureFeatures.__slots__)

    def test_accepts_dense_ndarray(self):
        a = random_sparse(10, 10, density=0.3, seed=2).to_dense()
        assert isinstance(structure_signature(a), str)

"""Shared fixtures: compiled-kernel cache (compilation is the expensive
part; tests share kernels per (kernel, format) pair) and standard matrices."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import compile_kernel
from repro.formats import as_format
from repro.formats.generate import (
    lower_triangular_of,
    random_sparse,
    upper_triangular_of,
)
from repro.ir.kernels import ALL_KERNELS

_KERNEL_CACHE = {}


def compile_cached(kernel_name: str, fmt_name: str, matrix, array_name: str,
                   **kwargs):
    """Compile (kernel, format) once per test session; the format instance
    is rebuilt per call (kernels are instance-independent for same-format
    matrices of compatible shape)."""
    key = (kernel_name, fmt_name, matrix.shape, kwargs.get("pick", "best"))
    if key not in _KERNEL_CACHE:
        prog = ALL_KERNELS[kernel_name]()
        _KERNEL_CACHE[key] = compile_kernel(prog, {array_name: matrix},
                                            **kwargs)
    return _KERNEL_CACHE[key]


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(20260705)


@pytest.fixture(scope="session")
def small_rect():
    """6x8 random sparse matrix with an empty row (totality edge case)."""
    a = random_sparse(6, 8, density=0.3, seed=11).to_dense()
    a[3, :] = 0.0
    return a


@pytest.fixture(scope="session")
def small_square():
    return random_sparse(7, 7, density=0.3, seed=5).to_dense()


@pytest.fixture(scope="session")
def lower_tri():
    """8x8 lower-triangular matrix with full diagonal, annotated."""
    return lower_triangular_of(random_sparse(8, 8, 0.3, seed=3))


@pytest.fixture(scope="session")
def upper_tri():
    return upper_triangular_of(random_sparse(8, 8, 0.3, seed=4))

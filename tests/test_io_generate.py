"""Matrix I/O and synthetic generators."""

import io

import numpy as np
import pytest

from repro.formats import as_format
from repro.formats.generate import (
    banded,
    can_1072_like,
    laplacian_2d,
    lower_triangular_of,
    random_sparse,
    tridiagonal,
    upper_triangular_of,
)
from repro.formats.io import (
    read_coo_text,
    read_matrix_market,
    write_matrix_market,
)


class TestMatrixMarket:
    def test_roundtrip(self, tmp_path, small_rect):
        f = as_format(small_rect, "coo")
        p = tmp_path / "m.mtx"
        write_matrix_market(f, p)
        g = read_matrix_market(p)
        assert np.allclose(g.to_dense(), small_rect)

    def test_symmetric_expansion(self):
        text = io.StringIO("""%%MatrixMarket matrix coordinate real symmetric
3 3 4
1 1 2.0
2 1 1.5
3 2 -1.0
3 3 5.0
""")
        m = read_matrix_market(text)
        d = m.to_dense()
        assert np.allclose(d, d.T)
        assert d[1, 0] == 1.5 and d[0, 1] == 1.5

    def test_skew_symmetric(self):
        text = io.StringIO("""%%MatrixMarket matrix coordinate real skew-symmetric
2 2 1
2 1 3.0
""")
        d = read_matrix_market(text).to_dense()
        assert d[1, 0] == 3.0 and d[0, 1] == -3.0

    def test_pattern(self):
        text = io.StringIO("""%%MatrixMarket matrix coordinate pattern general
2 3 2
1 2
2 1
""")
        d = read_matrix_market(text).to_dense()
        assert d[0, 1] == 1.0 and d[1, 0] == 1.0

    def test_comments_skipped(self):
        text = io.StringIO("""%%MatrixMarket matrix coordinate real general
% a comment
2 2 1
1 1 4.0
""")
        assert read_matrix_market(text).get(0, 0) == 4.0

    def test_bad_header(self):
        with pytest.raises(ValueError):
            read_matrix_market(io.StringIO("%%NotMM\n1 1 0\n"))

    def test_wrong_count(self):
        text = io.StringIO("""%%MatrixMarket matrix coordinate real general
2 2 3
1 1 4.0
""")
        with pytest.raises(ValueError):
            read_matrix_market(text)

    def test_unsupported_storage(self):
        with pytest.raises(ValueError):
            read_matrix_market(io.StringIO(
                "%%MatrixMarket matrix array real general\n1 1\n1.0\n"))

    def test_coo_text(self, tmp_path):
        p = tmp_path / "t.coo"
        p.write_text("# fixture\n0 1 2.5\n2 0 1.0\n")
        m = read_coo_text(p, (3, 3))
        assert m.get(0, 1) == 2.5 and m.get(2, 0) == 1.0


class TestGenerators:
    def test_random_sparse_density(self):
        m = random_sparse(50, 40, density=0.1, seed=1)
        assert m.shape == (50, 40)
        assert 0 < m.nnz <= 0.2 * 50 * 40

    def test_random_values_bounded_away_from_zero(self):
        m = random_sparse(20, 20, 0.2, seed=2)
        _, _, vals = m.to_coo_arrays()
        assert np.all(np.abs(vals) >= 0.5)

    def test_banded_structure(self):
        m = banded(10, bandwidth=2, seed=0)
        d = m.to_dense()
        r, c = np.nonzero(d)
        assert np.all(np.abs(r - c) <= 2)
        assert np.all(np.diag(d) != 0)

    def test_tridiagonal(self):
        d = tridiagonal(6).to_dense()
        r, c = np.nonzero(d)
        assert np.all(np.abs(r - c) <= 1)

    def test_laplacian_spd(self):
        d = laplacian_2d(4).to_dense()
        assert np.allclose(d, d.T)
        w = np.linalg.eigvalsh(d)
        assert w[0] > 0

    def test_laplacian_row_structure(self):
        d = laplacian_2d(3).to_dense()
        assert d[4, 4] == 4.0  # interior node
        assert d[4, 1] == -1.0 and d[4, 3] == -1.0

    def test_can_1072_like_profile(self):
        m = can_1072_like()
        assert m.shape == (1072, 1072)
        assert abs(m.nnz - 12444) < 800
        d = m.to_dense()
        assert np.allclose(d, d.T)       # symmetric like the original
        assert np.all(np.diag(d) != 0)   # full diagonal

    def test_can_like_deterministic(self):
        a = can_1072_like(n=64, target_nnz=400)
        b = can_1072_like(n=64, target_nnz=400)
        assert np.allclose(a.to_dense(), b.to_dense())

    def test_lower_triangular_of(self):
        m = random_sparse(10, 10, 0.3, seed=5)
        L = lower_triangular_of(m)
        d = L.to_dense()
        assert np.allclose(d, np.tril(d))
        assert np.all(np.diag(d) != 0)
        assert L.bounds() is not None

    def test_upper_triangular_of(self):
        m = random_sparse(10, 10, 0.3, seed=6)
        U = upper_triangular_of(m)
        d = U.to_dense()
        assert np.allclose(d, np.triu(d))
        assert U.bounds() is not None

"""Cross-process artifact-cache race (satellite: concurrent writers).

N forked processes share one ``REPRO_CACHE_DIR`` and simultaneously
request the same native digest with ``cache="disk"``.  The flock +
atomic-rename guard in :mod:`repro.core.backend` must serialize them:
exactly one toolchain invocation total, everyone else loads the winner's
artifact, and no temp files survive.
"""

from __future__ import annotations

import multiprocessing as mp
import os

import pytest

from repro.core import backend as be

pytestmark = [
    pytest.mark.skipif(be.find_compiler() is None,
                       reason="no C compiler on PATH"),
    pytest.mark.skipif(not hasattr(os, "fork"), reason="needs fork"),
    pytest.mark.skipif(be.fcntl is None, reason="needs fcntl.flock"),
]

NPROC = 4
N = 10


def _worker(cache_dir, barrier, q):
    """Runs in a forked child: scrub every fork-inherited process-local
    cache, sync on the barrier, then compile the shared digest."""
    try:
        os.environ["REPRO_CACHE_DIR"] = cache_dir

        import numpy as np

        from repro.core import backend as child_be
        from repro.core import compile_kernel
        from repro.core.cache import clear_compile_cache
        from repro.formats import as_format
        from repro.formats.generate import random_sparse
        from repro.instrument import INSTR
        from repro.ir.kernels import ALL_KERNELS

        child_be.reset_toolchain_cache(scratch=True)
        clear_compile_cache()
        INSTR.reset()

        A = as_format(random_sparse(N, N, density=0.4, seed=77).to_dense(),
                      "csr")
        barrier.wait(timeout=120)
        k = compile_kernel(ALL_KERNELS["mvm"](), {"A": A},
                           backend="c", cache="disk")
        x = np.linspace(-1.0, 1.0, N)
        y = np.zeros(N)
        k({"A": A, "x": x, "y": y}, {"m": N, "n": N})
        q.put({
            "ok": True,
            "compiles": INSTR.get("native.compiles"),
            "disk_hits": INSTR.get("native.so_cache.hits.disk"),
            "backend": k.backend_used,
            "y": y.tobytes(),
        })
    except BaseException as e:  # noqa: BLE001 - shipped to the parent
        q.put({"ok": False, "error": repr(e)})


def test_concurrent_processes_one_cc_invocation(tmp_path):
    ctx = mp.get_context("fork")
    barrier = ctx.Barrier(NPROC)
    q = ctx.Queue()
    procs = [ctx.Process(target=_worker, args=(str(tmp_path), barrier, q))
             for _ in range(NPROC)]
    for p in procs:
        p.start()
    try:
        results = [q.get(timeout=300) for _ in procs]
    finally:
        for p in procs:
            p.join(timeout=60)
            if p.is_alive():
                p.terminate()

    assert all(r["ok"] for r in results), results
    # the whole point: one cc run across all processes, everyone else
    # loaded the winner's artifact through the disk layer
    assert sum(r["compiles"] for r in results) == 1, results
    assert sum(r["disk_hits"] for r in results) == NPROC - 1, results
    assert all(r["backend"].startswith("c") for r in results), results
    assert len({r["y"] for r in results}) == 1

    files = [str(p.relative_to(tmp_path)) for p in tmp_path.rglob("*")
             if p.is_file()]
    assert not [f for f in files if f.endswith((".tmp.so", ".c"))], files
    # lock files are unlinked by their holder on release: a shared cache
    # dir must not accumulate them (satellite: stale-lock cleanup)
    assert not [f for f in files if f.endswith(".lock")], files
    sos = [f for f in files if f.endswith(".so")]
    assert len(sos) == 1, files
    # artifacts shard by digest prefix: cache_dir/ab/abcd....so
    shard, name = os.path.split(sos[0])
    assert shard == name[:2], sos

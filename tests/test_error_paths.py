"""Error handling and diagnostics across the compiler: rejected
embeddings carry reasons, plan errors name the offending dimension,
the interpreter reports broken inputs."""

import numpy as np
import pytest

from repro.analysis import dependences
from repro.core import (
    AT,
    DimEmbedding,
    PlanError,
    ProductDim,
    ProductSpace,
    SpaceEmbedding,
    analyze_order,
    build_copies,
    build_plan,
    compile_kernel,
)
from repro.core.embedding import BEFORE
from repro.formats import as_format
from repro.formats.generate import lower_triangular_of, random_sparse
from repro.ir.kernels import mvm, ts_lower
from repro.polyhedra.linexpr import LinExpr
from repro.search.driver import copy_var_bounds


@pytest.fixture(scope="module")
def lower16():
    return lower_triangular_of(random_sparse(16, 16, 0.25, seed=6))


class TestOrderAnalysisDiagnostics:
    def test_illegal_reports_reason(self, lower16):
        """A column-major data order for the forward solve conflicts: the
        analysis reports a conflicting or negative component."""
        fmt = as_format(lower16, "csr")
        prog = ts_lower()
        copies = build_copies(prog, {"L": fmt}, {})
        s1, s2 = copies
        r1, r2 = s1.refs[0], s2.refs[0]
        v = LinExpr.variable
        # deliberately swap the data dims (c before r violates the CSR
        # nesting and the solve ordering cannot be repaired)
        dims = [
            ProductDim("g0.c", members=[(r1, "c"), (r2, "c")]),
            ProductDim("g0.r", members=[(r1, "r"), (r2, "r")]),
            ProductDim("it.S1.j", owner_var=s1.qual("j")),
            ProductDim("it.S2.j", owner_var=s2.qual("j")),
            ProductDim("it.S2.i", owner_var=s2.qual("i")),
        ]
        space = ProductSpace(dims, copies)
        per_copy = {
            "S1": [DimEmbedding(AT, v(r1.axis_var("c"))),
                   DimEmbedding(AT, v(r1.axis_var("r"))),
                   DimEmbedding(AT, v(s1.qual("j"))),
                   DimEmbedding(AT, v(s1.qual("j"))),
                   DimEmbedding(AT, v(s1.qual("j")))],
            "S2": [DimEmbedding(AT, v(r2.axis_var("c"))),
                   DimEmbedding(AT, v(r2.axis_var("r"))),
                   DimEmbedding(AT, v(s2.qual("j"))),
                   DimEmbedding(AT, v(s2.qual("j"))),
                   DimEmbedding(AT, v(s2.qual("i")))],
        }
        emb = SpaceEmbedding(space, per_copy)
        deps = dependences(prog)
        oa = analyze_order(emb, deps)
        # column-then-row IS legal as an order (it is Figure 5's shape);
        # but building the plan against the CSR rows path must fail: the
        # driver's inner step cannot be enumerated before its outer step
        assert oa.legal
        with pytest.raises(PlanError) as ei:
            build_plan(space, emb, oa, copy_var_bounds(copies), {"n": 16})
        assert "before its outer steps" in str(ei.value)

    def test_embedding_requires_full_coverage(self, lower16):
        fmt = as_format(lower16, "csr")
        copies = build_copies(ts_lower(), {"L": fmt}, {})
        space = ProductSpace([ProductDim("it.x", owner_var=copies[0].qual("j"))],
                             copies)
        with pytest.raises(ValueError):
            SpaceEmbedding(space, {"S1": []})

    def test_at_requires_value(self):
        with pytest.raises(ValueError):
            DimEmbedding(AT)

    def test_bad_placement(self):
        with pytest.raises(ValueError):
            DimEmbedding(7)


class TestPlanErrors:
    def test_ts_dia_error_is_planerror(self, lower16):
        with pytest.raises(PlanError) as ei:
            compile_kernel(ts_lower(), {"L": as_format(lower16, "dia")})
        assert "no legal plan" in str(ei.value)

    def test_totality_violation_rejected(self, lower16):
        """Fusing the initialization into a stored-only enumeration must be
        rejected (instances on empty rows would vanish): in the chosen COO
        MVM plan the initialization never binds into the flat enumeration —
        it runs as its own interval loop."""
        rect = random_sparse(6, 8, 0.3, seed=1)
        fmt = as_format(rect, "coo")
        k = compile_kernel(mvm(), {"A": fmt})
        from repro.core import LoopNode, VarLoopNode

        varloops = []
        fused_s1 = []

        def walk(nodes):
            for n in nodes:
                if isinstance(n, VarLoopNode):
                    varloops.append(n)
                    walk(n.body)
                elif isinstance(n, LoopNode):
                    fused_s1.extend(b for b in n.binds if b.copy_label == "S1")
                    walk(n.before)
                    walk(n.body)
                    walk(n.after)

        walk(k.plan.nodes)
        assert varloops, "initialization must get its own interval loop"
        assert not fused_s1, "initialization must not fuse into the COO walk"


class TestInterpreterDiagnostics:
    def test_params_required_when_guards_reference_them(self, lower16):
        # without guard pruning the domain tests reference n; running with
        # no parameters must fail loudly, not silently skip statements
        fmt = as_format(lower16, "csr")
        k = compile_kernel(ts_lower(), {"L": fmt}, simplify_guards=False)
        with pytest.raises(Exception):
            k.run({"L": fmt, "b": np.zeros(16)}, {})
        with pytest.raises(KeyError):
            k({"L": fmt, "b": np.zeros(16)}, {})

    def test_pruned_kernel_is_param_light(self, lower16):
        """After guard simplification the CSR TS kernel genuinely needs no
        size parameter — every remaining test is structural."""
        fmt = as_format(lower16, "csr")
        k = compile_kernel(ts_lower(), {"L": fmt})
        b = np.random.default_rng(0).random(16)
        out = b.copy()
        k({"L": fmt, "b": out}, {"n": 16})
        assert np.allclose(fmt.to_dense() @ out, b, atol=1e-9)


class TestDeterminism:
    def test_same_compile_same_source(self, lower16):
        fmt = as_format(lower16, "jad")
        k1 = compile_kernel(ts_lower(), {"L": fmt})
        k2 = compile_kernel(ts_lower(), {"L": fmt})
        assert k1.source == k2.source
        assert k1.cost == k2.cost
        assert k1.result.candidate.descr == k2.result.candidate.descr

    def test_pseudocode_stable(self, lower16):
        fmt = as_format(lower16, "csr")
        k1 = compile_kernel(ts_lower(), {"L": fmt})
        k2 = compile_kernel(ts_lower(), {"L": fmt})
        assert k1.pseudocode() == k2.pseudocode()

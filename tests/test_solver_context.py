"""Solver fast path: SolverContext setup, bound-kernel dispatch, fallback
semantics, kernel handles on the functional API, and — the acceptance
criterion — byte-identical iterate trajectories between the context-backed
and status-quo solver paths on the Python backend."""

from __future__ import annotations

import numpy as np
import pytest

from repro.blas import api as blas_api
from repro.core import backend as be
from repro.formats import as_format
from repro.formats.generate import laplacian_2d, random_sparse
from repro.instrument import INSTR
from repro.solvers import (
    ALL_OPS,
    JacobiPreconditioner,
    SolverContext,
    TriangularPreconditioner,
    bicgstab,
    cg,
    gauss_seidel,
    gmres,
    jacobi,
    pagerank,
    power_method,
    sor,
)
from repro.solvers.context import resolve_matvec

BACKENDS = ["python"] + (["c"] if be.find_compiler() else [])


@pytest.fixture(scope="module")
def spd():
    return laplacian_2d(5)  # 25x25 SPD


@pytest.fixture(scope="module")
def spd_dense(spd):
    return spd.to_dense()


@pytest.fixture(scope="module")
def b25():
    return np.random.default_rng(31).random(25)


def _ctx(spd, fmt="csr", ops=ALL_OPS, backend="python", **kw):
    return SolverContext(as_format(spd, fmt), ops=ops, backend=backend, **kw)


class TestConstruction:
    def test_binds_requested_ops(self, spd):
        ctx = _ctx(spd, ops=("mvm", "ts_lower"))
        assert ctx.bound("mvm") is not None
        assert ctx.bound("ts_lower") is not None
        assert ctx.bound("ts_upper") is None
        assert set(ctx.backends) == {"mvm", "ts_lower"}

    def test_unknown_op_rejected(self, spd):
        with pytest.raises(ValueError, match="unknown op"):
            _ctx(spd, ops=("mvm", "spqr"))

    def test_dense_input_converted(self, spd_dense, b25):
        ctx = SolverContext(spd_dense, ops=("mvm",), backend="python")
        assert ctx.format_name == "csr"
        assert np.allclose(ctx.matvec(b25), spd_dense @ b25)

    def test_counts_contexts(self, spd):
        before = INSTR.get("solver.contexts")
        _ctx(spd, ops=("mvm",))
        assert INSTR.get("solver.contexts") == before + 1

    def test_setup_phase_recorded(self, spd):
        before = INSTR.time("solver.setup")
        _ctx(spd, ops=("mvm",))
        assert INSTR.time("solver.setup") > before

    def test_repr_names_backends(self, spd):
        ctx = _ctx(spd, ops=("mvm",), backend="python")
        assert "mvm=python" in repr(ctx)


class TestBoundOps:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matvec(self, backend, spd, spd_dense, b25):
        ctx = _ctx(spd, backend=backend)
        assert np.allclose(ctx.matvec(b25), spd_dense @ b25)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_matvec_t(self, backend, spd, spd_dense, b25):
        ctx = _ctx(spd, backend=backend)
        assert np.allclose(ctx.matvec_t(b25), spd_dense.T @ b25)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_triangular_solves(self, backend, spd, spd_dense, b25):
        ctx = _ctx(spd, backend=backend)
        L = np.tril(spd_dense)
        U = np.triu(spd_dense)
        assert np.allclose(ctx.lower_solve(b25), np.linalg.solve(L, b25))
        assert np.allclose(ctx.upper_solve(b25), np.linalg.solve(U, b25))

    def test_matvec_reuses_workspace(self, spd, b25):
        ctx = _ctx(spd, ops=("mvm",))
        y1 = ctx.matvec(b25)
        y2 = ctx.matvec(2.0 * b25)
        assert y1 is y2  # same preallocated buffer

    def test_matvec_explicit_out(self, spd, spd_dense, b25):
        ctx = _ctx(spd, ops=("mvm",))
        out = np.zeros(25)
        got = ctx.matvec(b25, out)
        assert got is out
        assert np.allclose(out, spd_dense @ b25)

    def test_solve_in_place(self, spd, b25):
        ctx = _ctx(spd)
        b = b25.copy()
        got = ctx.lower_solve(b, in_place=True)
        assert got is b
        b2 = b25.copy()
        got2 = ctx.lower_solve(b2)
        assert got2 is not b2
        assert np.array_equal(b2, b25)  # input untouched
        assert np.array_equal(got, got2)

    def test_solve_without_ts_ops_raises(self, spd, b25):
        ctx = _ctx(spd, ops=("mvm",))
        with pytest.raises(ValueError, match="ts_lower"):
            ctx.lower_solve(b25)
        with pytest.raises(ValueError, match="ts_upper"):
            ctx.upper_solve(b25)

    def test_diag(self, spd, spd_dense):
        ctx = _ctx(spd, ops=("mvm",))
        assert np.array_equal(ctx.diag, np.diag(spd_dense))
        assert ctx.diag is ctx.diag  # computed once


class TestFallback:
    def test_compile_fallback_stays_correct(self, b25):
        # per-op compile failure must demote to the per-call BLAS dispatch
        # observably, and keep solving correctly
        spd = laplacian_2d(5)
        before = INSTR.get("solver.fallback.compile")
        ctx = _ctx(spd, ops=ALL_OPS, backend="fortran")
        assert INSTR.get("solver.fallback.compile") >= before + len(ALL_OPS)
        assert set(ctx.fallbacks) == set(ALL_OPS)
        assert all(b == "blas" for b in ctx.backends.values())
        D = spd.to_dense()
        assert np.allclose(ctx.lower_solve(b25),
                           np.linalg.solve(np.tril(D), b25))
        x, _, _ = cg(ctx, b25, tol=1e-12)
        assert np.allclose(D @ x, b25, atol=1e-8)

    def test_ts_ops_bind_on_csr_split_for_any_format(self, b25):
        # the triangular ops always bind to the CSR triangular split, so
        # even a DIA matrix (no legal TS plan of its own) gets compiled
        # triangular solves
        spd = laplacian_2d(5)
        ctx = _ctx(spd, fmt="dia", ops=ALL_OPS, backend="python")
        assert ctx.backends["ts_lower"] == "python"
        assert ctx.L.format_name == "csr"
        D = spd.to_dense()
        assert np.allclose(ctx.lower_solve(b25),
                           np.linalg.solve(np.tril(D), b25))

    def test_context_never_raises_for_missing_fast_path(self, spd):
        # an unknown backend string reaches compile_many and fails per-op;
        # the context must demote, not raise
        ctx = _ctx(spd, ops=("mvm",), backend="fortran")
        assert ctx.bound("mvm") is None
        assert "mvm" in ctx.fallbacks
        assert np.allclose(ctx.matvec(np.ones(25)),
                           spd.to_dense() @ np.ones(25))


class TestSelection:
    def test_select_picks_format(self):
        m = laplacian_2d(4)
        ctx = SolverContext(as_format(m, "coo"), ops=("mvm",),
                            backend="python", select=True,
                            candidates=("csr", "coo", "jad"))
        assert ctx.selection is not None
        assert ctx.format_name == ctx.selection.best[0]
        b = np.random.default_rng(7).random(16)
        assert np.allclose(ctx.matvec(b), m.to_dense() @ b)

    def test_select_failure_keeps_input(self, monkeypatch):
        from repro.core.plan import PlanError

        def boom(*a, **kw):
            raise PlanError("forced")

        import repro.search.format_select as fs
        monkeypatch.setattr(fs, "select_format", boom)
        before = INSTR.get("solver.fallback.select")
        m = laplacian_2d(3)
        ctx = SolverContext(as_format(m, "csr"), ops=("mvm",),
                            backend="python", select=True)
        assert INSTR.get("solver.fallback.select") == before + 1
        assert ctx.selection_error == "forced"
        assert ctx.format_name == "csr"


class TestKernelHandles:
    def test_registered_by_default(self, spd, spd_dense, b25):
        A = as_format(spd, "csr")
        SolverContext(A, ops=("mvm",), backend="python")
        assert blas_api.kernel_handle(A, "mvm") is not None
        before = INSTR.get("blas.handle.hits")
        y = blas_api.mvm(A, b25)
        assert INSTR.get("blas.handle.hits") == before + 1
        assert np.allclose(y, spd_dense @ b25)

    def test_handle_matches_plain_dispatch_bitwise(self, spd, b25):
        A_plain = as_format(spd, "csr")
        A_ctx = as_format(spd, "csr")
        SolverContext(A_ctx, ops=("mvm",), backend="python")
        assert np.array_equal(blas_api.mvm(A_plain, b25),
                              blas_api.mvm(A_ctx, b25))

    def test_register_false(self, spd):
        A = as_format(spd, "csr")
        SolverContext(A, ops=("mvm",), backend="python", register=False)
        assert blas_api.kernel_handle(A, "mvm") is None

    def test_clear(self, spd):
        A = as_format(spd, "csr")
        SolverContext(A, ops=("mvm",), backend="python")
        blas_api.clear_kernel_handles(A)
        assert blas_api.kernel_handle(A, "mvm") is None
        blas_api.clear_kernel_handles(A)  # idempotent

    def test_ts_handles_serve_functional_api(self, spd, b25):
        ctx = _ctx(spd)
        got = blas_api.ts_lower_solve(ctx.L, b25)
        want = np.linalg.solve(np.tril(spd.to_dense()), b25)
        assert np.allclose(got, want)


class TestTrajectoryIdentity:
    """The context-backed Python path must be byte-identical to the
    status-quo path: same kernels modulo dispatch, same float ops in the
    same order (acceptance criterion)."""

    def test_cg(self, spd, b25):
        x1, it1, r1 = cg(as_format(spd, "csr"), b25, tol=1e-12)
        x2, it2, r2 = cg(_ctx(spd, ops=("mvm",)), b25, tol=1e-12)
        assert it1 == it2 and r1 == r2
        assert np.array_equal(x1, x2)

    def test_bicgstab(self, rng):
        n = 24
        A0 = random_sparse(n, n, 0.2, seed=51, ensure_diag=True)
        b = rng.random(n)
        x1, it1, r1 = bicgstab(as_format(A0, "csr"), b, tol=1e-12)
        ctx = SolverContext(as_format(A0, "csr"), ops=("mvm",),
                            backend="python")
        x2, it2, r2 = bicgstab(ctx, b, tol=1e-12)
        assert it1 == it2 and r1 == r2
        assert np.array_equal(x1, x2)

    def test_gmres(self, rng):
        n = 20
        A0 = random_sparse(n, n, 0.2, seed=41, ensure_diag=True)
        b = rng.random(n)
        x1, it1, r1 = gmres(as_format(A0, "csr"), b, tol=1e-12)
        ctx = SolverContext(as_format(A0, "csr"), ops=("mvm",),
                            backend="python")
        x2, it2, r2 = gmres(ctx, b, tol=1e-12)
        assert it1 == it2 and r1 == r2
        assert np.array_equal(x1, x2)

    def test_jacobi(self, spd, b25):
        x1, it1, _ = jacobi(as_format(spd, "csr"), b25, tol=1e-12,
                            max_iter=5000)
        x2, it2, _ = jacobi(_ctx(spd, ops=("mvm",)), b25, tol=1e-12,
                            max_iter=5000)
        assert it1 == it2
        assert np.array_equal(x1, x2)

    def test_sor(self, spd, b25):
        x1, it1, _ = sor(as_format(spd, "csr"), b25, omega=1.5, tol=1e-12,
                         max_iter=5000)
        x2, it2, _ = sor(_ctx(spd, ops=("mvm",)), b25, omega=1.5, tol=1e-12,
                         max_iter=5000)
        assert it1 == it2
        assert np.array_equal(x1, x2)

    def test_power_method(self, spd):
        lam1, v1, it1 = power_method(as_format(spd, "csr"), tol=1e-11,
                                     max_iter=20000)
        lam2, v2, it2 = power_method(_ctx(spd, ops=("mvm",)), tol=1e-11,
                                     max_iter=20000)
        assert it1 == it2 and lam1 == lam2
        assert np.array_equal(v1, v2)


class TestSolversThroughContext:
    """Every solver against the dense reference, context in the A slot,
    both backends when the toolchain exists."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_cg(self, backend, spd, spd_dense, b25):
        x, it, _ = cg(_ctx(spd, backend=backend), b25, tol=1e-12)
        assert it > 0
        assert np.allclose(spd_dense @ x, b25, atol=1e-8)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_cg_preconditioned(self, backend, spd, spd_dense, b25):
        ctx = _ctx(spd, backend=backend)
        x, it_prec, _ = cg(ctx, b25, tol=1e-12,
                           precond=ctx.preconditioner("sgs"))
        _, it_plain, _ = cg(ctx, b25, tol=1e-12)
        assert it_prec < it_plain
        assert np.allclose(spd_dense @ x, b25, atol=1e-8)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_bicgstab(self, backend, rng):
        n = 24
        A0 = random_sparse(n, n, 0.2, seed=51, ensure_diag=True)
        b = rng.random(n)
        ctx = SolverContext(as_format(A0, "csr"), ops=("mvm",),
                            backend=backend)
        x, it, _ = bicgstab(ctx, b, tol=1e-12)
        assert np.allclose(A0.to_dense() @ x, b, atol=1e-7)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_gmres(self, backend, rng):
        n = 20
        A0 = random_sparse(n, n, 0.2, seed=41, ensure_diag=True)
        b = rng.random(n)
        ctx = SolverContext(as_format(A0, "csr"), ops=("mvm",),
                            backend=backend)
        x, it, _ = gmres(ctx, b, tol=1e-12)
        assert np.allclose(A0.to_dense() @ x, b, atol=1e-7)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_jacobi(self, backend, spd, spd_dense, b25):
        x, _, _ = jacobi(_ctx(spd, backend=backend), b25, tol=1e-12,
                         max_iter=5000)
        assert np.allclose(spd_dense @ x, b25, atol=1e-7)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_gauss_seidel(self, backend, spd, spd_dense, b25):
        x, _, _ = gauss_seidel(_ctx(spd, backend=backend), b25, tol=1e-12,
                               max_iter=5000)
        assert np.allclose(spd_dense @ x, b25, atol=1e-7)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_power_method(self, backend, spd, spd_dense):
        lam, _, _ = power_method(_ctx(spd, backend=backend), tol=1e-11,
                                 max_iter=20000)
        assert abs(lam - np.linalg.eigvalsh(spd_dense)[-1]) < 1e-5

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_pagerank(self, backend):
        link = (random_sparse(30, 30, 0.1, seed=2).to_dense() > 0)
        link = link.astype(float)
        np.fill_diagonal(link, 0.0)
        pr_ref, it_ref = pagerank(as_format(link, "csr"))
        pr, it = pagerank(as_format(link, "csr"), backend=backend)
        assert it == it_ref
        assert np.allclose(pr, pr_ref, atol=1e-12)
        assert abs(pr.sum() - 1.0) < 1e-8

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_explicit_context_kwarg(self, backend, spd, spd_dense, b25):
        A = as_format(spd, "csr")
        ctx = SolverContext(A, ops=("mvm",), backend=backend,
                            register=False)
        x, _, _ = cg(A, b25, tol=1e-12, context=ctx)
        assert np.allclose(spd_dense @ x, b25, atol=1e-8)

    def test_iterations_counted(self, spd, b25):
        before = INSTR.get("solver.iterations")
        _, it, _ = cg(_ctx(spd, ops=("mvm",)), b25, tol=1e-12)
        assert INSTR.get("solver.iterations") >= before + it

    def test_iterate_phase_recorded(self, spd, b25):
        before = INSTR.time("solver.iterate")
        cg(_ctx(spd, ops=("mvm",)), b25, tol=1e-12)
        assert INSTR.time("solver.iterate") > before


class TestNativePath:
    @pytest.mark.skipif(be.find_compiler() is None, reason="no C compiler")
    def test_c_backend_actually_native(self, spd):
        ctx = _ctx(spd, backend="c")
        assert ctx.backends["mvm"] in ("c", "c+openmp")

    def test_no_toolchain_demotes_gracefully(self, spd, b25, monkeypatch):
        monkeypatch.setenv("REPRO_CC", "none")
        be.reset_toolchain_cache()
        import warnings

        from repro.core import NativeBackendWarning

        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", NativeBackendWarning)
                ctx = _ctx(spd, ops=("mvm",), backend="c", cache="off")
        finally:
            monkeypatch.delenv("REPRO_CC", raising=False)
            be.reset_toolchain_cache()
        # generated Python still serves the fast path
        assert ctx.backends["mvm"] == "python"
        x, _, _ = cg(ctx, b25, tol=1e-12)
        assert np.allclose(spd.to_dense() @ x, b25, atol=1e-8)


class TestPreconditioners:
    def test_context_sgs_matches_plain(self, spd, b25):
        A = as_format(spd, "csr")
        ctx = _ctx(spd)
        z1 = TriangularPreconditioner(A)(b25)
        z2 = ctx.preconditioner("sgs")(b25)
        assert np.allclose(z1, z2)

    def test_context_jacobi_matches_plain(self, spd, b25):
        A = as_format(spd, "csr")
        ctx = _ctx(spd, ops=("mvm",))
        z1 = JacobiPreconditioner(A)(b25)
        z2 = ctx.preconditioner("jacobi")(b25)
        assert np.array_equal(z1, z2)

    def test_none_kind(self, spd, b25):
        ctx = _ctx(spd, ops=("mvm",))
        assert ctx.preconditioner("none")(b25) is b25

    def test_bad_kind(self, spd):
        with pytest.raises(ValueError):
            _ctx(spd, ops=("mvm",)).preconditioner("ilu")

    def test_jacobi_rejects_zero_diag_via_context(self):
        a = np.array([[0.0, 1.0], [1.0, 0.0]])
        ctx = SolverContext(a, ops=("mvm",), backend="python")
        with pytest.raises(ValueError):
            ctx.preconditioner("jacobi")


class TestResolveMatvec:
    def test_plain_matrix(self, spd, spd_dense, b25):
        A = as_format(spd, "csr")
        got_A, mv = resolve_matvec(A, None, None)
        assert got_A is A
        assert np.allclose(mv(b25), spd_dense @ b25)

    def test_explicit_matvec_wins(self, spd, b25):
        A = as_format(spd, "csr")
        calls = []

        def f(v):
            calls.append(1)
            return v

        _, mv = resolve_matvec(A, f, _ctx(spd, ops=("mvm",)))
        mv(b25)
        assert calls

    def test_context_in_matrix_slot(self, spd, b25):
        ctx = _ctx(spd, ops=("mvm",))
        got_A, mv = resolve_matvec(ctx, None, None)
        assert got_A is ctx.A
        assert mv == ctx.matvec


class TestMatmatEmptyPanel:
    """k = 0 panels: a fresh (m, 0) result, and no eviction of the
    width-keyed workspace for a degenerate width."""

    def test_matmat_k0(self, spd, spd_dense, b25):
        ctx = _ctx(spd, ops=("spmm", "spmm_t"))
        X = np.stack([b25, 2.0 * b25], axis=1)
        Y = ctx.matmat(X)                      # primes the k=2 workspace
        assert np.allclose(Y, spd_dense @ X)
        ws = ctx._Y2
        Z = ctx.matmat(np.zeros((25, 0)))
        assert Z.shape == (25, 0)
        assert ctx._Y2 is ws                   # workspace untouched
        Zt = ctx.matmat_t(np.zeros((25, 0)))
        assert Zt.shape == (25, 0)
        # caller buffer passes straight through
        buf = np.zeros((25, 0))
        assert ctx.matmat(np.zeros((25, 0)), buf) is buf


class TestNormalProducts:
    def test_normal_ata_cached(self, spd, spd_dense):
        ctx = _ctx(spd, ops=("mvm",))
        ata = ctx.normal("ata")
        assert np.allclose(ata.to_dense(), spd_dense.T @ spd_dense)
        assert ctx.normal("ata") is ata
        aat = ctx.normal("aat")
        assert np.allclose(aat.to_dense(), spd_dense @ spd_dense.T)

    def test_normal_out_format_forwarded(self, spd):
        ctx = _ctx(spd, ops=("mvm",))
        got = ctx.normal("ata", out_format="csc")
        assert got.format_name == "csc"

"""Affine expressions (repro.polyhedra.linexpr / repro.ir.expr)."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.expr import AffExpr
from repro.polyhedra.linexpr import LinExpr, const, var


class TestLinExpr:
    def test_variable_and_constant(self):
        assert var("x").coeff("x") == 1
        assert const(5).const == 5
        assert const(5).is_constant

    def test_addition(self):
        e = var("x") + var("y") + 3
        assert e.coeff("x") == 1 and e.coeff("y") == 1 and e.const == 3

    def test_cancellation_removes_entry(self):
        e = var("x") - var("x")
        assert e.is_constant and e.const == 0
        assert e.variables() == ()

    def test_scalar_multiplication(self):
        e = (var("x") + 1) * 3
        assert e.coeff("x") == 3 and e.const == 3

    def test_fraction_coefficients(self):
        e = var("x") * Fraction(1, 2)
        assert e.coeff("x") == Fraction(1, 2)

    def test_float_coefficient_rejected(self):
        with pytest.raises(TypeError):
            var("x") * 0.5

    def test_substitute(self):
        e = var("x") + 2 * var("y")
        s = e.substitute({"y": var("x") + 1})
        assert s.coeff("x") == 3 and s.const == 2

    def test_rename(self):
        e = var("x") + var("y")
        r = e.rename({"x": "z"})
        assert r.coeff("z") == 1 and r.coeff("x") == 0

    def test_evaluate(self):
        e = 2 * var("x") - var("y") + 1
        assert e.evaluate({"x": 3, "y": 2}) == 5

    def test_evaluate_missing_raises(self):
        with pytest.raises(KeyError):
            var("x").evaluate({})

    def test_hash_and_equality(self):
        assert var("x") + 1 == var("x") + 1
        assert hash(var("x") + 1) == hash(var("x") + 1)
        assert var("x") != var("y")

    def test_immutability(self):
        e = var("x")
        with pytest.raises(AttributeError):
            e.const = 5

    def test_rsub(self):
        e = 5 - var("x")
        assert e.const == 5 and e.coeff("x") == -1

    def test_repr_readable(self):
        assert repr(var("x") - var("y") + 1) in ("x - y + 1",)


class TestAffExpr:
    def test_from_string_and_int(self):
        assert AffExpr("i").coeff("i") == 1
        assert AffExpr(4).const == 4

    def test_arithmetic(self):
        e = AffExpr("i") * 2 - AffExpr("j") + 1
        assert e.coeff("i") == 2 and e.coeff("j") == -1 and e.const == 1

    def test_evaluate_integer(self):
        e = AffExpr("i") + 1
        assert e.evaluate({"i": 3}) == 4

    def test_evaluate_non_integer_raises(self):
        e = AffExpr(LinExpr({"i": Fraction(1, 2)}))
        with pytest.raises(ValueError):
            e.evaluate({"i": 1})

    def test_substitute(self):
        e = AffExpr("i") + AffExpr("j")
        s = e.substitute({"j": AffExpr("i") + 1})
        assert s.coeff("i") == 2 and s.const == 1

    def test_equality_with_int(self):
        assert AffExpr(3) == 3


@settings(max_examples=100, deadline=None)
@given(st.dictionaries(st.sampled_from("xyz"), st.integers(-9, 9), max_size=3),
       st.integers(-9, 9),
       st.dictionaries(st.sampled_from("xyz"), st.integers(-9, 9), max_size=3),
       st.integers(-9, 9))
def test_add_commutes(c1, k1, c2, k2):
    a = LinExpr(c1, k1)
    b = LinExpr(c2, k2)
    assert a + b == b + a


@settings(max_examples=100, deadline=None)
@given(st.dictionaries(st.sampled_from("xyz"), st.integers(-9, 9), max_size=3),
       st.integers(-9, 9),
       st.integers(-5, 5))
def test_scalar_distributes(coeffs, k, s):
    e = LinExpr(coeffs, k)
    assert (e + e) * s == e * s + e * s


@settings(max_examples=100, deadline=None)
@given(st.dictionaries(st.sampled_from("xy"), st.integers(-9, 9), max_size=2),
       st.integers(-9, 9),
       st.dictionaries(st.sampled_from("xy"), st.integers(0, 5), min_size=2,
                       max_size=2))
def test_evaluate_is_linear(coeffs, k, env):
    e = LinExpr(coeffs, k)
    doubled = e * 2
    assert doubled.evaluate(env) == 2 * e.evaluate(env)

"""Compilation-cache semantics: hit/miss, statistics-shift invalidation,
disk persistence, source replay, and the repeated-compile speedup."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import instrument
from repro.core.cache import (
    COMPILE_CACHE,
    CacheEntry,
    clear_compile_cache,
    resolve_mode,
    stats_signature,
    structural_signature,
)
from repro.core.compiler import compile_kernel
from repro.formats import as_format
from repro.formats.generate import random_sparse
from repro.ir.kernels import mvm, smvm_two


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_compile_cache()
    yield
    clear_compile_cache()


def _csr(m=8, n=6, density=0.3, seed=7):
    return as_format(random_sparse(m, n, density=density, seed=seed).to_dense(), "csr")


def _generated_delta(fn):
    """(result, number of candidates the search generated while running fn)."""
    before = instrument.snapshot()["counters"].get("search.candidates.generated", 0)
    out = fn()
    after = instrument.snapshot()["counters"].get("search.candidates.generated", 0)
    return out, after - before


class TestModes:
    def test_resolve_mode_explicit(self):
        assert resolve_mode("off") == "off"
        assert resolve_mode("memory") == "memory"
        assert resolve_mode("disk") == "disk"

    def test_resolve_mode_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_COMPILE_CACHE", "off")
        assert resolve_mode(None) == "off"
        monkeypatch.delenv("REPRO_COMPILE_CACHE")
        assert resolve_mode(None) == "memory"

    def test_resolve_mode_rejects_garbage(self):
        with pytest.raises(ValueError):
            resolve_mode("maybe")

    def test_off_never_populates(self):
        A = _csr()
        compile_kernel(mvm(), {"A": A}, cache="off")
        assert len(COMPILE_CACHE) == 0

    def test_off_always_searches(self):
        A = _csr()
        _, gen1 = _generated_delta(lambda: compile_kernel(mvm(), {"A": A}, cache="off"))
        _, gen2 = _generated_delta(lambda: compile_kernel(mvm(), {"A": A}, cache="off"))
        assert gen1 > 0 and gen2 == gen1


class TestHitMiss:
    def test_second_compile_skips_search(self):
        A = _csr()
        k1, gen1 = _generated_delta(lambda: compile_kernel(mvm(), {"A": A}, cache="memory"))
        k2, gen2 = _generated_delta(lambda: compile_kernel(mvm(), {"A": A}, cache="memory"))
        assert gen1 > 0
        assert gen2 == 0                       # no candidate search on the hit
        assert k2.plan is k1.plan
        assert k2.cost == k1.cost

    def test_hit_counter_and_source_replay(self):
        A = _csr()
        before = instrument.snapshot()
        k1 = compile_kernel(mvm(), {"A": A}, cache="memory")
        src1 = k1.source                       # publish generated source
        k2 = compile_kernel(mvm(), {"A": A}, cache="memory")
        after = instrument.snapshot()
        assert (after["counters"].get("cache.hits.exact", 0)
                - before["counters"].get("cache.hits.exact", 0)) == 1
        assert k2.source == src1               # byte-identical replay
        assert k2._pyfunc is k1._pyfunc        # exec'd callable shared too

    def test_different_structure_misses(self):
        A = _csr()
        B = as_format(random_sparse(8, 6, 0.3, seed=7).to_dense(), "csc")
        _, gen1 = _generated_delta(lambda: compile_kernel(mvm(), {"A": A}, cache="memory"))
        _, gen2 = _generated_delta(lambda: compile_kernel(mvm(), {"A": B}, cache="memory"))
        assert gen1 > 0 and gen2 > 0           # csc is a different structure

    def test_different_shape_misses(self):
        _, gen1 = _generated_delta(
            lambda: compile_kernel(mvm(), {"A": _csr(8, 6)}, cache="memory"))
        _, gen2 = _generated_delta(
            lambda: compile_kernel(mvm(), {"A": _csr(9, 6)}, cache="memory"))
        assert gen1 > 0 and gen2 > 0

    def test_pick_is_part_of_the_key(self):
        A = _csr()
        _, gen1 = _generated_delta(
            lambda: compile_kernel(mvm(), {"A": A}, cache="memory", pick="best"))
        _, gen2 = _generated_delta(
            lambda: compile_kernel(mvm(), {"A": A}, cache="memory", pick="first"))
        assert gen1 > 0 and gen2 > 0

    def test_cached_kernel_still_executes_correctly(self):
        A = _csr()
        dense = A.to_dense()
        compile_kernel(mvm(), {"A": A}, cache="memory")
        k = compile_kernel(mvm(), {"A": A}, cache="memory")
        x = np.arange(1.0, 7.0)
        y = np.zeros(8)
        k({"A": A, "x": x, "y": y}, {"m": 8, "n": 6})
        np.testing.assert_allclose(y, dense @ x)


class TestInvalidation:
    def test_stats_shift_reranks_not_researches(self):
        sparse = _csr(density=0.1, seed=1)
        dense_ = _csr(density=0.9, seed=2)
        assert sparse.nnz != dense_.nnz
        k1, gen1 = _generated_delta(
            lambda: compile_kernel(mvm(), {"A": sparse}, cache="memory"))
        before = instrument.snapshot()
        k2, gen2 = _generated_delta(
            lambda: compile_kernel(mvm(), {"A": dense_}, cache="memory"))
        after = instrument.snapshot()
        assert gen1 > 0 and gen2 == 0          # served from cache
        assert (after["counters"].get("cache.hits.rerank", 0)
                - before["counters"].get("cache.hits.rerank", 0)) == 1
        assert k2.result.stats.reranked

    def test_rerank_matches_fresh_search_selection(self):
        """The re-ranked selection must be the plan a from-scratch compile
        would pick for the new instance."""
        first = _csr(density=0.1, seed=1)
        second = _csr(density=0.9, seed=2)
        compile_kernel(mvm(), {"A": first}, cache="memory")
        cached = compile_kernel(mvm(), {"A": second}, cache="memory")
        fresh = compile_kernel(mvm(), {"A": second}, cache="off")
        assert cached.plan.pretty() == fresh.plan.pretty()
        assert cached.cost == pytest.approx(fresh.cost)

    def test_rerank_execution_stays_correct(self):
        first = _csr(density=0.1, seed=1)
        second = _csr(density=0.9, seed=2)
        compile_kernel(mvm(), {"A": first}, cache="memory")
        k = compile_kernel(mvm(), {"A": second}, cache="memory")
        x = np.arange(1.0, 7.0)
        y = np.zeros(8)
        k({"A": second, "x": x, "y": y}, {"m": 8, "n": 6})
        np.testing.assert_allclose(y, second.to_dense() @ x)

    def test_exact_stats_hit_does_not_rerank(self):
        A = _csr()
        B = as_format(A.to_dense(), "csr")     # same data, fresh instance
        compile_kernel(mvm(), {"A": A}, cache="memory")
        before = instrument.snapshot()
        k = compile_kernel(mvm(), {"A": B}, cache="memory")
        after = instrument.snapshot()
        assert (after["counters"].get("cache.hits.exact", 0)
                - before["counters"].get("cache.hits.exact", 0)) == 1
        assert not k.result.stats.reranked

    def test_first_pick_replays_across_stats(self):
        """pick='first' ignores costs, so its cached selection is valid for
        any statistics."""
        first = _csr(density=0.1, seed=1)
        second = _csr(density=0.9, seed=2)
        k1, gen1 = _generated_delta(
            lambda: compile_kernel(mvm(), {"A": first}, cache="memory", pick="first"))
        k2, gen2 = _generated_delta(
            lambda: compile_kernel(mvm(), {"A": second}, cache="memory", pick="first"))
        assert gen1 > 0 and gen2 == 0
        assert k2.plan is k1.plan


class TestSignatures:
    def test_structural_signature_ignores_values(self):
        A = _csr(seed=7)
        B = as_format(A.to_dense() * 3.0, "csr")   # same pattern, new values
        pv = {"m": 8, "n": 6}
        sig_a = structural_signature(mvm(), {"A": A}, pv, "best", 12, True)
        sig_b = structural_signature(mvm(), {"A": B}, pv, "best", 12, True)
        assert sig_a == sig_b

    def test_structural_signature_sees_bounds_annotations(self):
        A = _csr(8, 8)
        B = as_format(A.to_dense(), "csr").annotate_triangular("lower")
        pv = {"m": 8, "n": 8}
        assert (structural_signature(mvm(), {"A": A}, pv, "best", 12, True)
                != structural_signature(mvm(), {"A": B}, pv, "best", 12, True))

    def test_structural_signature_sees_param_values(self):
        A = _csr()
        s1 = structural_signature(mvm(), {"A": A}, {"m": 8, "n": 6}, "best", 12, True)
        s2 = structural_signature(mvm(), {"A": A}, {"m": 8, "n": 7}, "best", 12, True)
        assert s1 != s2

    def test_stats_signature_sees_nnz(self):
        assert (stats_signature({"A": _csr(density=0.1, seed=1)})
                != stats_signature({"A": _csr(density=0.9, seed=2)}))


class TestDiskLayer:
    def test_disk_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        A = _csr()
        k1 = compile_kernel(mvm(), {"A": A}, cache="disk")
        src1 = k1.source
        assert list(tmp_path.glob("*.pkl"))
        # wipe memory: the entry must come back from disk
        COMPILE_CACHE.clear()
        k2, gen = _generated_delta(lambda: compile_kernel(mvm(), {"A": A}, cache="disk"))
        assert gen == 0
        assert k2.source == src1
        x = np.arange(1.0, 7.0)
        y = np.zeros(8)
        k2({"A": A, "x": x, "y": y}, {"m": 8, "n": 6})
        np.testing.assert_allclose(y, A.to_dense() @ x)

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        A = _csr()
        compile_kernel(mvm(), {"A": A}, cache="disk")
        (pkl,) = tmp_path.glob("*.pkl")
        pkl.write_bytes(b"not a pickle")
        COMPILE_CACHE.clear()
        k, gen = _generated_delta(lambda: compile_kernel(mvm(), {"A": A}, cache="disk"))
        assert gen > 0                         # fell back to a real search
        x = np.arange(1.0, 7.0)
        y = np.zeros(8)
        k({"A": A, "x": x, "y": y}, {"m": 8, "n": 6})
        np.testing.assert_allclose(y, A.to_dense() @ x)

    def test_clear_compile_cache_disk(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        A = _csr()
        compile_kernel(mvm(), {"A": A}, cache="disk")
        assert list(tmp_path.glob("*.pkl"))
        clear_compile_cache(disk=True)
        assert not list(tmp_path.glob("*.pkl"))


class TestLru:
    def test_eviction_respects_capacity(self):
        old_cap = COMPILE_CACHE.capacity
        COMPILE_CACHE.capacity = 2
        try:
            for n in (5, 6, 7):
                compile_kernel(mvm(), {"A": _csr(8, n)}, cache="memory")
            assert len(COMPILE_CACHE) == 2
            # oldest (n=5) evicted: compiling it again searches afresh
            _, gen = _generated_delta(
                lambda: compile_kernel(mvm(), {"A": _csr(8, 5)}, cache="memory"))
            assert gen > 0
        finally:
            COMPILE_CACHE.capacity = old_cap

    def test_entry_picklability_guard(self):
        entry = CacheEntry([], 0, "best", (), None)
        entry.fns[0] = lambda a, p: None
        state = entry.__getstate__()
        assert state["fns"] == {}              # callables never pickled


class TestSpeedup:
    def test_repeated_compile_speedup(self):
        """Acceptance criterion: >= 5x on cache hits, identical source."""
        A = as_format(random_sparse(20, 20, 0.2, seed=9).to_dense(), "csr")
        prog = smvm_two()
        t0 = time.perf_counter()
        k1 = compile_kernel(prog, {"A": A}, cache="memory")
        src1 = k1.source
        cold = time.perf_counter() - t0

        best_hit = float("inf")
        for _ in range(5):
            t0 = time.perf_counter()
            k2 = compile_kernel(prog, {"A": A}, cache="memory")
            assert k2.source == src1
            best_hit = min(best_hit, time.perf_counter() - t0)
        assert cold / best_hit >= 5.0

"""Dense-program IR: parser, printer, validation, semantics."""

import numpy as np
import pytest

from repro.ir import (
    execute_dense,
    parse_program,
    program_to_text,
    validate_program,
)
from repro.ir.builder import (
    assign,
    div,
    loop,
    matrix,
    mul,
    program,
    read,
    ref,
    sub,
    vector,
)
from repro.ir.expr import AffExpr
from repro.ir.kernels import ALL_KERNELS, mvm, ts_lower
from repro.ir.parser import ParseError
from repro.ir.validate import ValidationError


class TestParser:
    def test_ts_parses(self):
        p = ts_lower()
        assert p.name == "ts"
        assert [c.name for c in p.statements()] == ["S1", "S2"]

    def test_statement_contexts(self):
        p = ts_lower()
        s1, s2 = p.statements()
        assert s1.vars == ("j",)
        assert s2.vars == ("j", "i")
        assert s1.common_depth(s2) == 1
        assert s1.precedes_syntactically(s2, 1)
        assert not s2.precedes_syntactically(s1, 1)

    def test_affine_expressions(self):
        p = parse_program("""
        k(n; A: matrix) {
            for i = 0 : n {
                for j = 2*i - 1 : n + 3 {
                    A[i][j - i] = A[2*i - j][j] * 2;
                }
            }
        }
        """)
        s = p.statements()[0]
        assert s.stmt.lhs.indices[1] == AffExpr("j") - AffExpr("i")

    def test_rejects_nonaffine_index(self):
        with pytest.raises(ParseError):
            parse_program("k(n; A: matrix) { for i = 0 : n { A[i*i][0] = 1; } }")

    def test_rejects_undeclared_array(self):
        with pytest.raises(ParseError):
            parse_program("k(n; A: matrix) { for i = 0 : n { B[i][0] = 1; } }")

    def test_rejects_unknown_name(self):
        with pytest.raises(ParseError):
            parse_program("k(n; A: matrix) { for i = 0 : n { A[i][0] = q; } }")

    def test_rejects_garbage(self):
        with pytest.raises(ParseError):
            parse_program("k(n; A: matrix) { for i = 0 : n { ??? } }")

    def test_comments_allowed(self):
        p = parse_program("""
        k(n; x: vector) {   # a comment
            for i = 0 : n { // another
                x[i] = 1;
            }
        }
        """)
        assert len(p.statements()) == 1

    def test_scalar_reads(self):
        p = parse_program("""
        k(n; A: matrix, acc: scalar) {
            for i = 0 : n { acc = acc + A[i][i]; }
        }
        """)
        assert p.statements()[0].stmt.reads()[0].array == "acc"

    def test_parameter_in_value_position(self):
        p = parse_program("""
        k(n, alpha; x: vector) {
            for i = 0 : n { x[i] = alpha * x[i]; }
        }
        """)
        arrays = {"x": np.ones(4)}
        execute_dense(p, arrays, {"n": 4, "alpha": 2.5})
        assert np.allclose(arrays["x"], 2.5)


class TestPrinterRoundtrip:
    @pytest.mark.parametrize("name", sorted(ALL_KERNELS))
    def test_roundtrip(self, name):
        p = ALL_KERNELS[name]()
        text = program_to_text(p)
        p2 = parse_program(text)
        assert program_to_text(p2) == text


class TestBuilder:
    def test_build_ts(self):
        p = program(
            "ts", params=["n"],
            arrays={"L": matrix(), "b": vector()},
            body=[
                loop("j", 0, "n", [
                    assign(ref("b", "j"), div(read("b", "j"), read("L", "j", "j"))),
                    loop("i", AffExpr("j") + 1, "n", [
                        assign(ref("b", "i"),
                               sub(read("b", "i"),
                                   mul(read("L", "i", "j"), read("b", "j")))),
                    ]),
                ]),
            ],
        )
        assert program_to_text(p) == program_to_text(ts_lower())


class TestValidation:
    def test_valid_kernels(self):
        for name, fn in ALL_KERNELS.items():
            validate_program(fn())

    def test_arity_error(self):
        p = program("k", ["n"], {"A": matrix()},
                    [loop("i", 0, "n", [assign(ref("A", "i"), 1)])])
        with pytest.raises(ValidationError):
            validate_program(p)

    def test_unknown_variable_error(self):
        p = program("k", ["n"], {"x": vector()},
                    [loop("i", 0, "n", [assign(ref("x", "q"), 1)])])
        with pytest.raises(ValidationError):
            validate_program(p)

    def test_shadowing_error(self):
        p = program("k", ["n"], {"x": vector()},
                    [loop("i", 0, "n",
                          [loop("i", 0, "n", [assign(ref("x", "i"), 1)])])])
        with pytest.raises(ValidationError):
            validate_program(p)


class TestSemantics:
    def test_mvm(self, rng):
        A = rng.random((5, 4))
        x = rng.random(4)
        y = np.zeros(5)
        execute_dense(mvm(), {"A": A, "x": x, "y": y}, {"m": 5, "n": 4})
        assert np.allclose(y, A @ x)

    def test_ts(self, rng):
        n = 7
        L = np.tril(rng.random((n, n))) + 2 * np.eye(n)
        b = rng.random(n)
        b0 = b.copy()
        execute_dense(ts_lower(), {"L": L, "b": b}, {"n": n})
        assert np.allclose(b, np.linalg.solve(L, b0))

    def test_ts_variants_agree(self, rng):
        from repro.ir.kernels import ts_lower_row

        n = 6
        L = np.tril(rng.random((n, n))) + 2 * np.eye(n)
        b = rng.random(n)
        b1, b2 = b.copy(), b.copy()
        execute_dense(ts_lower(), {"L": L.copy(), "b": b1}, {"n": n})
        execute_dense(ts_lower_row(), {"L": L.copy(), "b": b2}, {"n": n})
        assert np.allclose(b1, b2)

    def test_ts_upper(self, rng):
        from repro.ir.kernels import ts_upper

        n = 6
        U = np.triu(rng.random((n, n))) + 2 * np.eye(n)
        b = rng.random(n)
        b0 = b.copy()
        execute_dense(ts_upper(), {"U": U, "b": b}, {"n": n})
        assert np.allclose(b, np.linalg.solve(U, b0))

    def test_frobenius(self, rng):
        from repro.ir.kernels import frobenius

        A = rng.random((3, 4))
        acc = np.array(0.0)
        execute_dense(frobenius(), {"A": A, "acc": acc}, {"m": 3, "n": 4})
        assert np.allclose(acc, (A * A).sum())

    def test_row_col_sums(self, rng):
        from repro.ir.kernels import col_sums, row_sums

        A = rng.random((3, 4))
        s = np.zeros(3)
        execute_dense(row_sums(), {"A": A, "s": s}, {"m": 3, "n": 4})
        assert np.allclose(s, A.sum(axis=1))
        s = np.zeros(4)
        execute_dense(col_sums(), {"A": A, "s": s}, {"m": 3, "n": 4})
        assert np.allclose(s, A.sum(axis=0))

    def test_missing_array_raises(self):
        with pytest.raises(KeyError):
            execute_dense(mvm(), {"A": np.zeros((2, 2))}, {"m": 2, "n": 2})

"""Property-based end-to-end tests: random matrices and vectors through
compiled kernels must match NumPy, for every backend.

Kernels are compiled once per (kernel, format) and reused across examples
(shapes are fixed; data varies), so hypothesis exercises the *data* space.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import compile_kernel
from repro.formats import FORMATS, as_format
from repro.ir.kernels import mvm, ts_lower

M, N = 6, 8
_kernels = {}


def kernel_for(fmt_name, which):
    key = (fmt_name, which)
    if key not in _kernels:
        if which == "mvm":
            probe = FORMATS[fmt_name].from_coo([0], [0], [1.0], (M, N))
            _kernels[key] = compile_kernel(mvm(), {"A": probe})
        else:
            probe = FORMATS[fmt_name].from_coo(
                list(range(M)), list(range(M)), [1.0] * M, (M, M))
            probe.annotate_triangular("lower")
            _kernels[key] = compile_kernel(ts_lower(), {"L": probe})
    return _kernels[key]


entries6x8 = st.lists(
    st.tuples(st.integers(0, M - 1), st.integers(0, N - 1),
              st.floats(-5, 5, allow_nan=False).filter(lambda v: abs(v) > 1e-3)),
    min_size=0, max_size=25)


@settings(max_examples=20, deadline=None)
@given(entries6x8, st.lists(st.floats(-3, 3, allow_nan=False),
                            min_size=N, max_size=N))
@pytest.mark.parametrize("fmt_name", ["csr", "coo", "jad", "dia"])
def test_mvm_matches_numpy(fmt_name, entries, xs):
    dense = np.zeros((M, N))
    uniq = {}
    for r, c, v in entries:
        uniq[(r, c)] = v
    for (r, c), v in uniq.items():
        dense[r, c] = v
    f = FORMATS[fmt_name].from_coo(
        [k[0] for k in uniq], [k[1] for k in uniq], list(uniq.values()), (M, N))
    x = np.array(xs)
    y = np.full(M, 123.0)
    k = kernel_for(fmt_name, "mvm")
    k({"A": f, "x": x, "y": y}, {"m": M, "n": N})
    assert np.allclose(y, dense @ x, atol=1e-9)


lower_entries = st.lists(
    st.tuples(st.integers(0, M - 1), st.integers(0, M - 1),
              st.floats(0.5, 3.0)),
    min_size=0, max_size=15)


@settings(max_examples=20, deadline=None)
@given(lower_entries, st.lists(st.floats(-2, 2, allow_nan=False),
                               min_size=M, max_size=M))
@pytest.mark.parametrize("fmt_name", ["csr", "csc", "jad"])
def test_ts_matches_scipy(fmt_name, entries, bs):
    import scipy.linalg as sla

    uniq = {(max(r, c), min(r, c)): v for r, c, v in entries}
    for i in range(M):
        uniq[(i, i)] = 4.0 + i  # strong diagonal
    f = FORMATS[fmt_name].from_coo(
        [k[0] for k in uniq], [k[1] for k in uniq], list(uniq.values()), (M, M))
    f.annotate_triangular("lower")
    b = np.array(bs)
    out = b.copy()
    k = kernel_for(fmt_name, "ts")
    k({"L": f, "b": out}, {"n": M})
    dense = f.to_dense()
    expect = sla.solve_triangular(dense, b, lower=True)
    assert np.allclose(out, expect, atol=1e-8)


@settings(max_examples=15, deadline=None)
@given(entries6x8)
def test_interpreter_and_generated_agree(entries):
    """Whatever the data, both backends produce bit-identical results (same
    operations in the same order)."""
    uniq = {}
    for r, c, v in entries:
        uniq[(r, c)] = v
    f1 = FORMATS["csr"].from_coo([k[0] for k in uniq], [k[1] for k in uniq],
                                 list(uniq.values()), (M, N))
    f2 = f1.copy()
    x = np.linspace(-1, 1, N)
    y1 = np.zeros(M)
    y2 = np.zeros(M)
    k = kernel_for("csr", "mvm")
    k.run({"A": f1, "x": x, "y": y1}, {"m": M, "n": N})
    k({"A": f2, "x": x, "y": y2}, {"m": M, "n": N})
    assert np.array_equal(y1, y2)

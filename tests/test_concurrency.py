"""Race/stress suite for the concurrent compilation service.

Covers the PR's acceptance criteria directly:

- instrument counters lose no updates under 8 hammering threads;
- the compilation LRU survives concurrent hits/evictions/reranks;
- N threads requesting the same native digest pay exactly one cc
  invocation (single-flight), observable via ``native.*`` counters;
- ``compile_many`` isolates per-item failures and, at 16 workers over a
  mixed (same + distinct) batch, produces byte-identical results to the
  serial compilation with exactly one cc invocation per unique digest.
"""

from __future__ import annotations

import threading
import time
import warnings

import numpy as np
import pytest

from repro.core import NativeBackendWarning, compile_kernel, compile_many
from repro.core import backend as be
from repro.core.cache import COMPILE_CACHE, clear_compile_cache
from repro.formats import as_format
from repro.formats.generate import random_sparse
from repro.instrument import INSTR
from repro.ir.kernels import ALL_KERNELS

N = 10


@pytest.fixture()
def square():
    return random_sparse(N, N, density=0.4, seed=1234).to_dense()


def _run_threads(n, fn):
    """Run ``fn(i)`` on n threads through a start barrier; re-raise the
    first worker exception in the main thread."""
    barrier = threading.Barrier(n)
    errors = []

    def wrap(i):
        try:
            barrier.wait(timeout=60)
            fn(i)
        except BaseException as e:  # noqa: BLE001 - reported to the main thread
            errors.append(e)

    threads = [threading.Thread(target=wrap, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=300)
    assert not any(t.is_alive() for t in threads), "worker thread hung"
    if errors:
        raise errors[0]


# ---------------------------------------------------------------------------
# Instrumentation under threads (satellite: non-atomic counter increments)
# ---------------------------------------------------------------------------

class TestInstrumentationThreadSafety:
    def test_no_lost_counter_updates_8_threads(self):
        """Regression: naive dict increments lose updates under threads;
        per-thread shards must account for every single one."""
        before = INSTR.get("t.hammer")
        per_thread = 25_000

        _run_threads(8, lambda i: [INSTR.count("t.hammer")
                                   for _ in range(per_thread)])
        assert INSTR.get("t.hammer") - before == 8 * per_thread

    def test_weighted_counts_and_timers_merge(self):
        before_c = INSTR.get("t.weighted")
        before_t = INSTR.time("t.phase")

        def work(i):
            INSTR.count("t.weighted", 3)
            with INSTR.phase("t.phase"):
                pass

        _run_threads(8, work)
        assert INSTR.get("t.weighted") - before_c == 24
        assert INSTR.time("t.phase") > before_t

    def test_counts_survive_thread_exit(self):
        before = INSTR.get("t.exited")
        t = threading.Thread(target=lambda: INSTR.count("t.exited", 7))
        t.start()
        t.join()
        # the dead thread's shard must stay visible (and survive the
        # compaction a new shard registration triggers)
        t2 = threading.Thread(target=lambda: INSTR.count("t.other"))
        t2.start()
        t2.join()
        assert INSTR.get("t.exited") - before == 7

    def test_thread_snapshot_is_private(self):
        _run_threads(4, lambda i: INSTR.count("t.noise", 100))
        snap = INSTR.thread_snapshot()
        assert "t.noise" not in snap["counters"]

    def test_reset_clears_all_shards(self):
        _run_threads(4, lambda i: INSTR.count("t.reset_me"))
        INSTR.reset()
        assert INSTR.get("t.reset_me") == 0
        assert "t.reset_me" not in INSTR.snapshot()["counters"]


# ---------------------------------------------------------------------------
# Compilation cache under threads
# ---------------------------------------------------------------------------

class TestCacheConcurrency:
    def test_lru_eviction_race(self, square):
        """8 threads rotating 3 structures through a capacity-2 LRU:
        constant hit/evict/re-search churn must stay correct and never
        corrupt the OrderedDict."""
        fmts = {name: as_format(square, name) for name in ("csr", "csc", "coo")}
        x = np.linspace(-1.0, 1.0, N)
        expect = {name: f.to_dense() @ x for name, f in fmts.items()}

        clear_compile_cache()
        old_cap = COMPILE_CACHE.capacity
        COMPILE_CACHE.capacity = 2
        try:
            def work(i):
                names = list(fmts)
                for j in range(2 * len(names)):
                    name = names[(i + j) % len(names)]
                    k = compile_kernel(ALL_KERNELS["mvm"](), {"A": fmts[name]},
                                       pick="first", cache="memory")
                    y = np.zeros(N)
                    k({"A": fmts[name], "x": x, "y": y}, {"m": N, "n": N})
                    assert np.allclose(y, expect[name])

            _run_threads(8, work)
            assert len(COMPILE_CACHE) <= 2
        finally:
            COMPILE_CACHE.capacity = old_cap
            clear_compile_cache()

    def test_concurrent_searches_match_serial(self, square):
        """cache="off" forces every thread through the full search —
        concurrently shared FM/pair memos must not change the answer."""
        A = as_format(square, "csr")
        ref = compile_kernel(ALL_KERNELS["mvm"](), {"A": A}, cache="off")
        plans = [None] * 8

        def work(i):
            k = compile_kernel(ALL_KERNELS["mvm"](), {"A": A}, cache="off")
            plans[i] = (k.cost, k.pseudocode())

        _run_threads(8, work)
        assert all(p == (ref.cost, ref.pseudocode()) for p in plans)

    def test_concurrent_rerank_hits(self, square):
        """Concurrent hits whose instance statistics differ exercise the
        locked rerank path; every thread must still get a working kernel
        for its own instance."""
        clear_compile_cache()
        x = np.linspace(0.5, 1.5, N)
        variants = []
        for seed in range(6):
            dense = random_sparse(N, N, density=0.2 + 0.1 * (seed % 4),
                                  seed=seed).to_dense()
            variants.append((as_format(dense, "csr"), dense))

        def work(i):
            fmt, dense = variants[i % len(variants)]
            k = compile_kernel(ALL_KERNELS["mvm"](), {"A": fmt},
                               cache="memory")
            y = np.zeros(N)
            k({"A": fmt, "x": x, "y": y}, {"m": N, "n": N})
            assert np.allclose(y, dense @ x)

        _run_threads(12, work)
        clear_compile_cache()


# ---------------------------------------------------------------------------
# compile_many
# ---------------------------------------------------------------------------

class TestCompileMany:
    def test_error_isolation(self, square):
        """A bad item reports its error; the rest of the batch compiles."""
        A = as_format(square, "csr")
        progs = [ALL_KERNELS["mvm"](), ALL_KERNELS["mvm"](),
                 ALL_KERNELS["row_sums"]()]
        binds = [{"A": A}, {"NOPE": A}, {"A": A}]
        before = INSTR.get("service.items.error")

        batch = compile_many(progs, binds, max_workers=3)

        assert not batch.ok
        assert batch[0].ok and batch[2].ok
        assert isinstance(batch[1].error, KeyError)
        assert batch.kernels[1] is None
        assert list(batch.errors) == [1]
        assert INSTR.get("service.items.error") - before == 1
        with pytest.raises(KeyError):
            batch.raise_first()

    def test_raise_first_attaches_batch_context(self, square):
        """Regression: the re-raised exception must name the failing item
        (index + program name) while keeping the original traceback."""
        A = as_format(square, "csr")
        progs = [ALL_KERNELS["mvm"](), ALL_KERNELS["row_sums"]()]
        batch = compile_many(progs, [{"A": A}, {"NOPE": A}], max_workers=2)

        with pytest.raises(KeyError) as exc_info:
            batch.raise_first()
        err = exc_info.value
        assert err is batch[1].error            # same object, traceback intact
        assert err.__traceback__ is not None
        context = getattr(err, "__notes__", None) or [repr(err.__cause__)]
        assert any("item #1" in c and "'row_sums'" in c for c in context), context
        # the note must also render in the formatted traceback
        import traceback

        rendered = "".join(traceback.format_exception(err))
        assert "item #1" in rendered and "row_sums" in rendered

        # raising twice must not stack duplicate notes
        with pytest.raises(KeyError):
            batch.raise_first()
        context2 = getattr(err, "__notes__", None)
        if context2 is not None:
            assert len([c for c in context2 if "item #1" in c]) == 1

    def test_broadcast_and_order(self, square):
        """One shared binding mapping broadcasts; outcomes keep input order."""
        A = as_format(square, "csr")
        progs = [ALL_KERNELS["mvm"](), ALL_KERNELS["row_sums"]()]
        batch = compile_many(progs, {"A": A}, max_workers=4)
        assert batch.ok
        assert [o.index for o in batch] == [0, 1]
        assert [o.program.name for o in batch] == [p.name for p in progs]

    def test_shared_bindings_cover_heterogeneous_batch(self, square):
        """A shared map may bind arrays for the whole batch; each program
        sees only its own names (per-item sequences stay strict)."""
        A = as_format(square, "csr")
        L = as_format(np.tril(square) + 4.0 * np.eye(N), "csr")
        L.annotate_triangular("lower")
        progs = [ALL_KERNELS["mvm"](), ALL_KERNELS["ts_lower"]()]
        batch = compile_many(progs, {"A": A, "L": L}, max_workers=2)
        assert batch.ok
        # the same map as a per-item sequence is strict about names
        strict = compile_many(progs, [{"A": A, "L": L}] * 2, max_workers=2)
        assert not strict.ok

    def test_sequence_length_mismatch_rejected(self, square):
        A = as_format(square, "csr")
        with pytest.raises(ValueError, match="bindings"):
            compile_many([ALL_KERNELS["mvm"]()], [{"A": A}, {"A": A}])

    def test_invalid_workers_rejected(self, square):
        A = as_format(square, "csr")
        with pytest.raises(ValueError, match="max_workers"):
            compile_many([ALL_KERNELS["mvm"]()], {"A": A}, max_workers=0)

    def test_parallel_matches_serial_python_backend(self, square):
        """Worker-pool compilation must be a pure scheduling change."""
        fmts = [as_format(square, n) for n in ("csr", "csc", "coo", "ell")]
        progs = [ALL_KERNELS["mvm"]() for _ in fmts]
        binds = [{"A": f} for f in fmts]
        x = np.linspace(-2.0, 2.0, N)

        clear_compile_cache()
        serial = compile_many(progs, binds, max_workers=1, cache="memory")
        clear_compile_cache()
        threaded = compile_many(progs, binds, max_workers=8, cache="memory")
        assert serial.ok and threaded.ok

        for ks, kt, f in zip(serial.kernels, threaded.kernels, fmts):
            assert ks.pseudocode() == kt.pseudocode()
            ys, yt = np.zeros(N), np.zeros(N)
            ks({"A": f, "x": x, "y": ys}, {"m": N, "n": N})
            kt({"A": f, "x": x, "y": yt}, {"m": N, "n": N})
            assert ys.tobytes() == yt.tobytes()


# ---------------------------------------------------------------------------
# Native single-flight (needs a toolchain)
# ---------------------------------------------------------------------------

needs_cc = pytest.mark.skipif(be.find_compiler() is None,
                              reason="no C compiler on PATH")


def _fresh_native_state():
    be.reset_toolchain_cache(scratch=True)
    clear_compile_cache()


@needs_cc
class TestSingleFlight:
    def test_16_threads_one_cc_invocation(self, square):
        """16 threads, same digest: exactly one ``cc`` run; everyone else
        coalesces onto it or hits the in-process cache."""
        _fresh_native_state()
        A = as_format(square, "csr")
        before = INSTR.snapshot()["counters"]
        kernels = [None] * 16

        def work(i):
            kernels[i] = compile_kernel(ALL_KERNELS["mvm"](), {"A": A},
                                        backend="c", cache="memory")

        _run_threads(16, work)

        after = INSTR.snapshot()["counters"]
        delta = lambda k: after.get(k, 0) - before.get(k, 0)  # noqa: E731
        assert delta("native.compiles") == 1
        assert delta("native.fallbacks") == 0
        # every non-leader either waited on the flight or arrived after
        # completion and hit the in-process cache
        assert (delta("native.so_cache.hits.coalesced")
                + delta("native.so_cache.hits.memory")) == 15
        assert all(k.backend_used.startswith("c") for k in kernels)

        x = np.linspace(-1.0, 1.0, N)
        ys = []
        for k in kernels:
            y = np.zeros(N)
            k({"A": A, "x": x, "y": y}, {"m": N, "n": N})
            ys.append(y.tobytes())
        assert len(set(ys)) == 1

    def test_leader_failure_observable_and_retried(self, square, monkeypatch):
        """When the leader's toolchain invocation fails, the follower
        observes the failure counter and retries before giving up."""
        _fresh_native_state()
        A = as_format(square, "csc")

        real_compile_so = be._compile_so
        fail_once = {"left": 1}
        waits_before = INSTR.get("native.singleflight.waits")

        def flaky(cc, c_source, flags, out_path):
            if fail_once["left"]:
                fail_once["left"] -= 1
                # hold the flight open until the other thread is actually
                # parked in event.wait(), then fail while it watches
                deadline = time.monotonic() + 30
                while (INSTR.get("native.singleflight.waits") == waits_before
                       and time.monotonic() < deadline):
                    time.sleep(0.005)
                raise RuntimeError("injected toolchain failure")
            return real_compile_so(cc, c_source, flags, out_path)

        monkeypatch.setattr(be, "_compile_so", flaky)
        before = INSTR.snapshot()["counters"]
        outcomes = [None, None]

        def work(i):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", NativeBackendWarning)
                outcomes[i] = compile_kernel(
                    ALL_KERNELS["mvm"](), {"A": A},
                    backend="c", cache="memory")

        _run_threads(2, work)
        after = INSTR.snapshot()["counters"]
        delta = lambda k: after.get(k, 0) - before.get(k, 0)  # noqa: E731
        assert delta("native.singleflight.leader_failures") >= 1
        # the retry shipped a working kernel to the follower
        assert any(k.backend_used.startswith("c") for k in outcomes)

    def test_stress_16_threads_mixed_batch(self, square):
        """Acceptance criterion: 16 workers over a mixed (same + distinct)
        batch through compile_many — exactly one cc invocation per unique
        digest, per-item success, results byte-identical to serial."""
        fmt_names = ["csr", "csc", "coo", "dia", "ell", "jad", "msr"]
        fmts = [as_format(square, n) for n in fmt_names]
        items = [(ALL_KERNELS["mvm"](), {"A": f})
                 for f in fmts] * 4                      # 28 items, 7 digests
        progs = [p for p, _b in items]
        binds = [b for _p, b in items]
        x = np.linspace(-1.0, 1.0, N)

        def run_all(batch):
            outs = []
            for o, b in zip(batch, binds):
                y = np.zeros(N)
                o.kernel({**b, "x": x, "y": y}, {"m": N, "n": N})
                outs.append(y.tobytes())
            return outs

        _fresh_native_state()
        before = INSTR.get("native.compiles")
        serial = compile_many(progs, binds, max_workers=1,
                              backend="c", cache="memory")
        serial_compiles = INSTR.get("native.compiles") - before
        assert serial.ok
        assert serial_compiles == len(fmt_names)
        serial_out = run_all(serial)

        _fresh_native_state()
        before = INSTR.get("native.compiles")
        fallbacks_before = INSTR.get("native.fallbacks")
        threaded = compile_many(progs, binds, max_workers=16,
                                backend="c", cache="memory")
        assert threaded.ok
        assert INSTR.get("native.compiles") - before == len(fmt_names)
        assert INSTR.get("native.fallbacks") - fallbacks_before == 0
        assert all(o.kernel.backend_used.startswith("c") for o in threaded)

        assert run_all(threaded) == serial_out

"""Generated-source structure, the C-like renderer, and interpreter
internals."""

import ast

import numpy as np
import pytest

from repro.codegen.csource import plan_to_c_like, python_to_c_like
from repro.codegen.interp import ExecutionError, PlanInterpreter
from repro.formats import as_format
from tests.conftest import compile_cached


class TestGeneratedSource:
    def test_csr_ts_structure(self, lower_tri):
        """The generated CSR TS must be structurally the NIST kernel:
        a row loop over rowptr, a column loop, a diagonal-equality guard
        and a strict-lower guard — and nothing else."""
        k = compile_cached("ts_lower", "csr", as_format(lower_tri, "csr"), "L")
        src = k.source
        assert "rowptr" in src and "colind" in src and "values" in src
        tree = ast.parse(src)
        kernel = next(n for n in tree.body
                      if isinstance(n, ast.FunctionDef) and n.name == "kernel")
        fors = [n for n in ast.walk(kernel) if isinstance(n, ast.For)]
        assert len(fors) == 2
        ifs = [n for n in ast.walk(kernel) if isinstance(n, ast.If)]
        assert len(ifs) == 2

    def test_jad_ts_uses_inverse_permutation(self, lower_tri):
        k = compile_cached("ts_lower", "jad", as_format(lower_tri, "jad"), "L")
        assert "ipermi" in k.source  # Figure 9's unmap(r) search

    def test_source_is_valid_python(self, small_rect):
        for fmt in ["csr", "csc", "coo", "dia", "jad", "msr"]:
            k = compile_cached("mvm", fmt, as_format(small_rect, fmt), "A")
            ast.parse(k.source)

    def test_source_cached(self, small_rect):
        k = compile_cached("mvm", "csr", as_format(small_rect, "csr"), "A")
        assert k.callable() is k.callable()

    def test_no_leftover_runtime_calls_for_builtin_formats(self, small_rect):
        """Built-in formats must be fully inlined (no dynamic dispatch in
        the hot path)."""
        for fmt in ["csr", "csc", "coo", "ell"]:
            k = compile_cached("mvm", fmt, as_format(small_rect, fmt), "A")
            assert ".enumerate(" not in k.source
            assert ".runtime(" not in k.source


class TestCLikeRendering:
    def test_renders_for_loops(self, lower_tri):
        k = compile_cached("ts_lower", "csr", as_format(lower_tri, "csr"), "L")
        c = python_to_c_like(k.source)
        assert "for (int" in c
        assert "void kernel" in c
        assert c.count("{") == c.count("}")

    def test_plan_to_c_like(self, small_rect):
        k = compile_cached("mvm", "csr", as_format(small_rect, "csr"), "A")
        c = plan_to_c_like(k.plan)
        assert "kernel" in c


class TestInterpreterInternals:
    def test_missing_format_instance(self, small_rect):
        k = compile_cached("mvm", "csr", as_format(small_rect, "csr"), "A")
        with pytest.raises(ExecutionError):
            PlanInterpreter(k.plan, {"A": small_rect, "x": np.zeros(8),
                                     "y": np.zeros(6)}, {"m": 6, "n": 8})

    def test_propagation_solves_combined_equalities(self, small_square):
        """DIA diagonal access pins d == 0 only through the combination of
        two equalities; the interpreter must solve it at startup."""
        fmt = as_format(small_square, "dia")
        k = compile_cached("diag_extract", "dia", fmt, "A")
        d = np.zeros(7)
        k.run({"A": fmt, "d": d}, {"n": 7})
        assert np.allclose(d, np.diag(small_square))

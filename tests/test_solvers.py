"""Iterative solvers over the BLAS layer."""

import numpy as np
import pytest

from repro.formats import as_format
from repro.formats.generate import laplacian_2d, random_sparse
from repro.solvers import (
    IdentityPreconditioner,
    JacobiPreconditioner,
    TriangularPreconditioner,
    cg,
    gauss_seidel,
    gmres,
    jacobi,
    pagerank,
    power_method,
    sor,
)


@pytest.fixture(scope="module")
def spd():
    return laplacian_2d(5)  # 25x25


@pytest.fixture(scope="module")
def spd_dense(spd):
    return spd.to_dense()


@pytest.fixture(scope="module")
def b25():
    return np.random.default_rng(31).random(25)


class TestCg:
    @pytest.mark.parametrize("fmt", ["csr", "csc", "coo", "jad", "msr", "dia"])
    def test_solves(self, fmt, spd, spd_dense, b25):
        A = as_format(spd, fmt)
        x, it, res = cg(A, b25, tol=1e-12)
        assert np.allclose(spd_dense @ x, b25, atol=1e-8)
        assert it > 0

    def test_preconditioning_reduces_iterations(self, spd, spd_dense, b25):
        A = as_format(spd, "csr")
        _, it_plain, _ = cg(A, b25, tol=1e-12)
        _, it_prec, _ = cg(A, b25, tol=1e-12,
                           precond=TriangularPreconditioner(A))
        assert it_prec < it_plain

    def test_jacobi_preconditioner(self, spd, spd_dense, b25):
        A = as_format(spd, "csr")
        x, _, _ = cg(A, b25, tol=1e-12, precond=JacobiPreconditioner(A))
        assert np.allclose(spd_dense @ x, b25, atol=1e-8)

    def test_custom_matvec(self, spd, spd_dense, b25):
        """The generic-programming payoff: a compiled kernel slots in as
        the CG matvec."""
        from repro.core import compile_kernel
        from repro.ir.kernels import mvm as mvm_kernel

        A = as_format(spd, "csr")
        k = compile_kernel(mvm_kernel(), {"A": A})
        fn = k.callable()

        def matvec(v):
            y = np.zeros(A.nrows)
            fn({"A": A, "x": v, "y": y}, {"m": A.nrows, "n": A.ncols})
            return y

        x, _, _ = cg(A, b25, tol=1e-12, matvec=matvec)
        assert np.allclose(spd_dense @ x, b25, atol=1e-8)

    def test_identity_preconditioner_is_noop(self, spd, b25):
        A = as_format(spd, "csr")
        x1, it1, _ = cg(A, b25, tol=1e-12)
        x2, it2, _ = cg(A, b25, tol=1e-12, precond=IdentityPreconditioner())
        assert it1 == it2
        assert np.allclose(x1, x2)


class TestStationary:
    def test_jacobi(self, spd, spd_dense, b25):
        A = as_format(spd, "csr")
        x, it, res = jacobi(A, b25, tol=1e-12, max_iter=5000)
        assert np.allclose(spd_dense @ x, b25, atol=1e-7)

    def test_gauss_seidel_faster_than_jacobi(self, spd, b25):
        A = as_format(spd, "csr")
        _, it_j, _ = jacobi(A, b25, tol=1e-10, max_iter=5000)
        _, it_gs, _ = gauss_seidel(A, b25, tol=1e-10, max_iter=5000)
        assert it_gs < it_j

    def test_sor(self, spd, spd_dense, b25):
        A = as_format(spd, "csr")
        x, it, res = sor(A, b25, omega=1.5, tol=1e-12, max_iter=5000)
        assert np.allclose(spd_dense @ x, b25, atol=1e-7)

    def test_sor_rejects_bad_omega(self, spd, b25):
        with pytest.raises(ValueError):
            sor(as_format(spd, "csr"), b25, omega=2.5)

    def test_jacobi_rejects_zero_diag(self):
        a = np.array([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(ValueError):
            jacobi(as_format(a, "csr"), np.ones(2))


class TestGmres:
    def test_nonsymmetric(self, rng):
        n = 20
        A0 = random_sparse(n, n, 0.2, seed=41, ensure_diag=True)
        A = as_format(A0, "csr")
        b = rng.random(n)
        x, it, res = gmres(A, b, tol=1e-12)
        assert np.allclose(A.to_dense() @ x, b, atol=1e-7)

    def test_restarting(self, rng):
        n = 20
        A0 = random_sparse(n, n, 0.2, seed=42, ensure_diag=True)
        A = as_format(A0, "csr")
        b = rng.random(n)
        x, it, res = gmres(A, b, tol=1e-12, restart=5)
        assert np.allclose(A.to_dense() @ x, b, atol=1e-6)


class TestEigen:
    def test_power_method(self, spd, spd_dense):
        lam, v, it = power_method(as_format(spd, "csr"), tol=1e-11,
                                  max_iter=20000)
        w = np.linalg.eigvalsh(spd_dense)
        assert abs(lam - w[-1]) < 1e-5

    def test_pagerank_sums_to_one(self):
        link = (random_sparse(30, 30, 0.1, seed=2).to_dense() > 0).astype(float)
        np.fill_diagonal(link, 0.0)
        pr, it = pagerank(as_format(link, "csr"))
        assert pr.shape == (30,)
        assert abs(pr.sum() - 1.0) < 1e-8
        assert np.all(pr > 0)

    def test_pagerank_favours_linked_page(self):
        # page 0 is linked by everyone; it must outrank a page nobody links
        n = 8
        link = np.zeros((n, n))
        for j in range(1, n):
            link[0, j] = 1.0
        link[1, 0] = 1.0  # page 0 links somewhere so it is not dangling
        pr, _ = pagerank(as_format(link, "csr"))
        assert pr[0] == max(pr)


class TestBicgstab:
    def test_nonsymmetric(self, rng):
        from repro.solvers import bicgstab
        from repro.formats.generate import random_sparse as _rs
        from repro.formats import as_format as _af

        n = 24
        A = _af(_rs(n, n, 0.2, seed=51, ensure_diag=True), "csr")
        b = rng.random(n)
        x, it, res = bicgstab(A, b, tol=1e-12)
        assert np.allclose(A.to_dense() @ x, b, atol=1e-7)
        assert it > 0

    def test_with_preconditioner(self, spd, spd_dense, b25):
        from repro.solvers import bicgstab

        A = as_format(spd, "csr")
        x, it, res = bicgstab(A, b25, tol=1e-12,
                              precond=JacobiPreconditioner(A))
        assert np.allclose(spd_dense @ x, b25, atol=1e-7)

    def test_custom_matvec(self, spd, spd_dense, b25):
        from repro.solvers import bicgstab

        A = as_format(spd, "csr")
        calls = []

        def mv(v):
            calls.append(1)
            return spd_dense @ v

        x, it, res = bicgstab(A, b25, tol=1e-12, matvec=mv)
        assert calls
        assert np.allclose(spd_dense @ x, b25, atol=1e-7)

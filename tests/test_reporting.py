"""Human-facing outputs: plan pseudocode, dependence summaries, generated
source headers, selection tables — the artifacts the examples print."""

import numpy as np
import pytest

from repro.analysis import dependence_summary
from repro.core import annotate_c_source
from repro.formats import as_format
from repro.formats.generate import lower_triangular_of, random_sparse
from repro.ir.kernels import mvm, ts_lower
from tests.conftest import compile_cached


@pytest.fixture(scope="module")
def lower8():
    return lower_triangular_of(random_sparse(8, 8, 0.3, seed=3))


class TestPseudocode:
    def test_ts_structure(self, lower8):
        k = compile_cached("ts_lower", "csr", as_format(lower8, "csr"), "L")
        text = k.pseudocode()
        assert "for (g0.r)" in text
        assert "for (g0.c)" in text
        assert text.index("execute S1") < text.index("execute S2")

    def test_before_segment_labelled(self, lower8):
        rect = as_format(random_sparse(6, 8, 0.3, seed=11), "csr")
        k = compile_cached("mvm", "csr", rect, "A")
        text = k.pseudocode()
        # the initialization is either a before-segment or a standalone loop
        assert "before the" in text or "for it." in text

    def test_jad_mentions_interval(self, lower8):
        k = compile_cached("ts_lower", "jad", as_format(lower8, "jad"), "L")
        assert "interval-enumerate" in k.pseudocode()


class TestDependenceSummary:
    def test_ts_summary(self):
        text = dependence_summary(ts_lower())
        assert "flow" in text
        assert "S1 -> S2" in text and "S2 -> S1" in text

    def test_counts_line(self):
        text = dependence_summary(mvm())
        assert text.splitlines()[0].startswith("dependences of mvm:")


class TestGeneratedSourceCosmetics:
    def test_source_has_prologue_sections(self, lower8):
        k = compile_cached("ts_lower", "csr", as_format(lower8, "csr"), "L")
        src = k.source
        assert "def kernel(arrays, params):" in src
        assert "arrays['L']" in src or 'arrays["L"]' in src

    def test_omp_annotation_balanced(self, lower8):
        k = compile_cached("ts_lower", "csr", as_format(lower8, "csr"), "L")
        c = annotate_c_source(k, flavour="atomic")
        assert c.count("{") == c.count("}")

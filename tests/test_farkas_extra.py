"""Farkas legal-coefficient spaces and custom program assumptions."""

import numpy as np
import pytest

from repro.polyhedra import (
    System,
    bounds_of,
    farkas_nonneg_system,
    is_feasible,
    sample_point,
)
from repro.polyhedra.farkas import legal_coefficient_space
from repro.polyhedra.linexpr import LinExpr, var
from repro.polyhedra.system import eq, ge, le, lt


class TestLegalCoefficientSpace:
    def test_one_dimensional_schedule(self):
        """For the dependence {i' = i + 1, 0 <= i <= N-1, N >= 1} a schedule
        theta(i) = c*i is legal (delta = c) iff c >= 0 — the Farkas system
        over the unknown c must carve out exactly that half-line."""
        i, i2, N = var("i"), var("i2"), var("N")
        dep = System([ge(i, 0), le(i, N - 1), eq(i2, i + 1), ge(N, 1)])
        # delta = c*i2 - c*i  ->  coefficient c on i2, -c on i
        c = LinExpr.variable("c")
        sys_ = legal_coefficient_space(
            dep, {"i2": c, "i": c * -1, "N": LinExpr.constant(0)},
            LinExpr.constant(0))
        lo, hi = bounds_of(sys_, var("c"))
        assert lo == 0
        assert hi == float("inf")

    def test_sample_gives_legal_coefficients(self):
        i, i2, N = var("i"), var("i2"), var("N")
        dep = System([ge(i, 0), le(i, N - 1), eq(i2, i + 1), ge(N, 1)])
        c = LinExpr.variable("c")
        sys_ = legal_coefficient_space(
            dep, {"i2": c, "i": c * -1, "N": LinExpr.constant(0)},
            LinExpr.constant(0))
        # force a strictly positive schedule and sample one
        p = sample_point(sys_.and_also(ge(var("c"), 1)))
        assert p is not None and p["c"] >= 1


class TestCustomAssumptions:
    def test_assumptions_prune_dependences(self):
        """A user assumption can make a dependence class infeasible."""
        from repro.analysis import dependences
        from repro.ir import parse_program
        from repro.ir.program import Program

        text = """
        k(n, m; x: vector) {
            for i = 0 : n { x[i + m] = x[i]; }
        }
        """
        p1 = parse_program(text)
        base = len(dependences(p1))
        # assume m >= n: the write range x[m..] cannot alias the read
        # range x[..n-1]
        p2 = parse_program(text)
        p2.assumptions = p2.assumptions.and_also(ge(var("m"), var("n")))
        pruned = len(dependences(p2))
        assert pruned <= base

    def test_default_assumption_params_nonneg(self):
        from repro.ir.kernels import mvm

        p = mvm()
        assert is_feasible(p.assumptions)
        assert not is_feasible(p.assumptions.and_also(le(var("m"), -1)))

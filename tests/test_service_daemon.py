"""Compilation daemon: protocol, caching layers, and failure modes.

Servers run in-process (threads), so instrumentation counters and the
warm caches are directly observable; the CI smoke leg additionally
exercises the subprocess CLI.  Covered failure modes (satellite):
malformed payloads, client disconnect mid-request, queue-full rejection,
per-request timeout, graceful drain, and a server restart that reuses
the warm sharded disk artifact cache with zero extra ``cc`` runs.
"""

from __future__ import annotations

import socket
import struct
import threading
import time

import numpy as np
import pytest

from repro.core import backend as be
from repro.core import daemon as daemon_mod
from repro.core import wire
from repro.core.cache import clear_compile_cache
from repro.core.client import (
    RemoteCompileError,
    ServiceClient,
    ServiceError,
)
from repro.core.daemon import CompileServer
from repro.formats import as_format
from repro.formats.generate import random_sparse
from repro.instrument import INSTR
from repro.ir.kernels import ALL_KERNELS
from repro.ir.printer import program_to_text

N = 14

MVM = program_to_text(ALL_KERNELS["mvm"]())
ROW_SUMS = program_to_text(ALL_KERNELS["row_sums"]())


@pytest.fixture()
def A():
    return as_format(random_sparse(N, N, density=0.35, seed=9).to_dense(),
                     "csr")


@pytest.fixture()
def server(tmp_path):
    """Factory for in-process servers on a unix socket (TCP fallback);
    every server started through it is stopped at teardown."""
    started = []
    counter = [0]

    def make(**kwargs):
        counter[0] += 1
        if hasattr(socket, "AF_UNIX"):
            srv = CompileServer(str(tmp_path / f"d{counter[0]}.sock"),
                                **kwargs)
        else:  # pragma: no cover - non-POSIX
            srv = CompileServer(**kwargs)
        srv.start()
        started.append(srv)
        return srv

    yield make
    for srv in started:
        srv.stop(drain=False, timeout=5)


def _raw_connect(address):
    if isinstance(address, str):
        s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    else:
        s = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    s.settimeout(10)
    s.connect(address if isinstance(address, str) else tuple(address))
    return s


# ---------------------------------------------------------------------------
# Wire framing / payloads
# ---------------------------------------------------------------------------

class TestWire:
    def test_frame_roundtrip(self):
        a, b = socket.socketpair()
        try:
            wire.send_frame(a, {"op": "ping", "x": [1, 2, 3]})
            assert wire.recv_frame(b) == {"op": "ping", "x": [1, 2, 3]}
            a.close()
            assert wire.recv_frame(b) is None        # clean EOF
        finally:
            b.close()

    def test_mid_frame_eof_is_protocol_error(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">I", 100) + b"only a little")
            a.close()
            with pytest.raises(wire.ProtocolError, match="mid-frame"):
                wire.recv_frame(b)
        finally:
            b.close()

    def test_oversize_length_prefix_rejected(self):
        a, b = socket.socketpair()
        try:
            a.sendall(struct.pack(">I", wire.MAX_FRAME + 1))
            with pytest.raises(wire.ProtocolError, match="MAX_FRAME"):
                wire.recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_non_json_body_rejected(self):
        a, b = socket.socketpair()
        try:
            body = b"\xff\xfenot json"
            a.sendall(struct.pack(">I", len(body)) + body)
            with pytest.raises(wire.ProtocolError, match="not JSON"):
                wire.recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_format_payload_roundtrip_and_digest_stability(self, A):
        payload = wire.encode_format(A)
        fmt, digest = wire.decode_format(payload)
        assert fmt.format_name == "csr"
        assert np.array_equal(fmt.to_dense(), A.to_dense())
        _fmt2, digest2 = wire.decode_format(wire.encode_format(A))
        assert digest == digest2                    # content-addressed

    def test_decode_rejects_unknown_format_and_bad_shape(self, A):
        payload = wire.encode_format(A)
        with pytest.raises(wire.ProtocolError, match="unknown format"):
            wire.decode_format({**payload, "format": "hyb"})
        with pytest.raises(wire.ProtocolError, match="bad shape"):
            wire.decode_format({**payload, "shape": [3]})
        with pytest.raises(wire.ProtocolError, match="lengths differ"):
            wire.decode_format({**payload,
                                "rows": wire.encode_array(np.arange(2))})


# ---------------------------------------------------------------------------
# Happy path: compile, handle reuse, describe, stats, batches
# ---------------------------------------------------------------------------

class TestCompileOps:
    def test_compile_and_handle_reuse(self, server, A):
        srv = server(workers=2)
        with ServiceClient(srv.address) as svc:
            assert svc.ping()
            h1 = svc.compile(MVM, {"A": A})
            assert h1.ok and not h1.cached
            assert h1.program == "mvm"
            h2 = svc.compile(MVM, {"A": A})
            assert h2.cached and h2.handle == h1.handle
            # the repeat was served off the handle map and the payload
            # travelled as a digest string, not a re-upload
            st = svc.stats()
            assert st["handles"] >= 1
            assert st["counters"].get("daemon.handle.hits", 0) >= 1
            assert st["counters"].get("daemon.payload.hits", 0) >= 1

    def test_describe_returns_metadata_and_sources(self, server, A):
        srv = server()
        with ServiceClient(srv.address) as svc:
            h = svc.compile(MVM, {"A": A})
            d = svc.describe(h.handle, source=True)
            assert d["program"] == "mvm"
            assert "def kernel" in d["pysource"]
            assert "for " in d["pseudocode"]
            with pytest.raises(ServiceError, match="unknown-handle"):
                svc.describe("deadbeef")

    def test_batch_isolates_per_item_failures(self, server, A):
        srv = server(workers=2)
        with ServiceClient(srv.address) as svc:
            outcomes = svc.compile([MVM, "mvm(m; totally", ROW_SUMS],
                                   {"A": A})
            assert [o.ok for o in outcomes] == [True, False, True]
            assert outcomes[1].error_type == "ParseError"
            assert outcomes[0].handle and outcomes[2].handle

    def test_single_item_failure_raises(self, server, A):
        srv = server()
        with ServiceClient(srv.address) as svc:
            # binding the vector x to a matrix format fails that one item
            with pytest.raises(RemoteCompileError) as exc:
                svc.compile(MVM, {"x": A})
            assert "only matrices" in str(exc.value)
            assert svc.ping()              # connection still usable after

    def test_unknown_digest_triggers_reupload(self, server, A):
        srv = server(payload_capacity=1)
        B = as_format(random_sparse(N, N, density=0.3, seed=31).to_dense(),
                      "csr")
        with ServiceClient(srv.address) as svc:
            svc.compile(MVM, {"A": A})
            svc.compile(MVM, {"A": B})   # capacity 1: evicts A's payload
            before = INSTR.get("client.digest_reuploads")
            h = svc.compile(MVM, {"A": A})  # memoized digest now stale
            assert h.ok and h.cached is True
            assert INSTR.get("client.digest_reuploads") == before + 1

    def test_params_distinguish_handles(self, server, A):
        srv = server()
        with ServiceClient(srv.address) as svc:
            h1 = svc.compile(MVM, {"A": A}, params={"m": N, "n": N})
            h2 = svc.compile(MVM, {"A": A}, params={"m": N, "n": N + 1})
            assert h1.handle != h2.handle

    def test_stats_shape(self, server, A):
        srv = server()
        with ServiceClient(srv.address) as svc:
            svc.compile(MVM, {"A": A})
            st = svc.stats()
            assert st["workers"] >= 1 and not st["draining"]
            assert st["latency"]["count"] >= 1
            assert st["latency"]["p50_ms"] > 0
            assert "daemon.requests" in st["counters"]

    def test_concurrent_identical_requests_coalesce(self, server, A):
        calls = []
        real = daemon_mod._run_compile

        def slow(*args, **kw):
            calls.append(1)
            time.sleep(0.2)
            return real(*args, **kw)

        daemon_mod._run_compile = slow
        try:
            srv = server(workers=4)
            results = []

            def one():
                with ServiceClient(srv.address) as svc:
                    results.append(svc.compile(MVM, {"A": A}))

            threads = [threading.Thread(target=one) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30)
            assert len(results) == 4 and all(r.ok for r in results)
            assert len({r.handle for r in results}) == 1
            # the daemon-level in-flight map coalesced the identical
            # requests onto one pipeline invocation
            assert len(calls) == 1
        finally:
            daemon_mod._run_compile = real


# ---------------------------------------------------------------------------
# Failure modes
# ---------------------------------------------------------------------------

class TestFailureModes:
    def test_malformed_frame_gets_error_then_close(self, server, A):
        srv = server()
        s = _raw_connect(srv.address)
        try:
            body = b"this is not json at all {"
            s.sendall(struct.pack(">I", len(body)) + body)
            resp = wire.recv_frame(s)
            assert resp == {"ok": False, "error": "malformed",
                            "detail": resp["detail"]}
            assert wire.recv_frame(s) is None      # server dropped us
        finally:
            s.close()
        # the server survived: a well-behaved client still works
        with ServiceClient(srv.address) as svc:
            assert svc.ping()

    def test_unknown_op_and_bad_requests(self, server, A):
        srv = server()
        with ServiceClient(srv.address) as svc:
            with pytest.raises(ServiceError, match="unknown-op"):
                svc.request({"op": "frobnicate"})
            with pytest.raises(ServiceError, match="bad-request"):
                svc.request({"op": "compile"})     # no program at all
            with pytest.raises(ServiceError, match="bad-request"):
                svc.request({"op": "compile", "program": MVM,
                             "params": {"m": "ten"}})
            with pytest.raises(ServiceError, match="bad-option"):
                svc.compile(MVM, {"A": A}, options={"backend": "cuda!",
                                                    "bogus": 1})
            with pytest.raises(ServiceError, match="bad-binding"):
                svc.request({"op": "compile", "program": MVM,
                             "bindings": {"A": {"format": "csr"}}})

    def test_disconnect_mid_frame_leaves_server_healthy(self, server, A):
        srv = server()
        before = INSTR.get("daemon.disconnects") + INSTR.get("daemon.malformed")
        s = _raw_connect(srv.address)
        s.sendall(struct.pack(">I", 1000) + b"partial")
        s.close()                                  # hang up mid-frame
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            if (INSTR.get("daemon.disconnects")
                    + INSTR.get("daemon.malformed")) > before:
                break
            time.sleep(0.01)
        with ServiceClient(srv.address) as svc:
            assert svc.ping()

    def test_disconnect_while_compiling_still_publishes_handle(self, server, A):
        real = daemon_mod._run_compile
        done = threading.Event()

        def slow(*args, **kw):
            time.sleep(0.3)
            try:
                return real(*args, **kw)
            finally:
                done.set()

        daemon_mod._run_compile = slow
        try:
            srv = server(workers=2)
            s = _raw_connect(srv.address)
            wire.send_frame(s, {
                "op": "compile", "program": MVM,
                "bindings": {"A": wire.encode_format(A)}})
            time.sleep(0.05)
            s.close()                              # walk away mid-compile
            assert done.wait(10), "compile never ran"
            daemon_mod._run_compile = real
            with ServiceClient(srv.address) as svc:
                h = svc.compile(MVM, {"A": A})
                assert h.cached                    # orphan work was kept
        finally:
            daemon_mod._run_compile = real

    def test_queue_full_rejection(self, server, A):
        real = daemon_mod._run_compile
        release = threading.Event()

        def slow(*args, **kw):
            release.wait(10)
            return real(*args, **kw)

        daemon_mod._run_compile = slow
        try:
            srv = server(workers=1, queue_depth=0)
            errors, oks = [], []

            def submit(src):
                try:
                    with ServiceClient(srv.address, timeout=30) as svc:
                        oks.append(svc.compile(src, {"A": A}))
                except ServiceError as e:
                    errors.append(e.code)

            t = threading.Thread(target=submit, args=(MVM,))
            t.start()
            deadline = time.monotonic() + 5
            while srv._admitted < 1 and time.monotonic() < deadline:
                time.sleep(0.01)                   # first request holds the slot
            submit(ROW_SUMS)                       # distinct request: no coalesce
            release.set()
            t.join(timeout=30)
            assert errors == ["queue-full"]
            assert len(oks) == 1 and oks[0].ok
        finally:
            release.set()
            daemon_mod._run_compile = real

    def test_per_request_timeout_then_handle_available(self, server, A):
        real = daemon_mod._run_compile

        def slow(*args, **kw):
            time.sleep(0.4)
            return real(*args, **kw)

        daemon_mod._run_compile = slow
        try:
            srv = server(request_timeout=0.05)
            before = INSTR.get("daemon.timeouts")
            with ServiceClient(srv.address) as svc:
                with pytest.raises(ServiceError, match="timeout"):
                    svc.compile(MVM, {"A": A})
                assert INSTR.get("daemon.timeouts") == before + 1
                daemon_mod._run_compile = real
                deadline = time.monotonic() + 10
                h = None
                while time.monotonic() < deadline:
                    try:
                        h = svc.compile(MVM, {"A": A})
                        break
                    except ServiceError:           # still in flight: coalesced
                        time.sleep(0.05)           # wait and retry
                # the timed-out compile finished server-side; a retry either
                # coalesced onto it (fresh record) or hit the handle LRU
                assert h is not None and h.ok
                h2 = svc.compile(MVM, {"A": A})
                assert h2.cached and h2.handle == h.handle
        finally:
            daemon_mod._run_compile = real

    def test_graceful_shutdown_drains_inflight(self, server, A):
        real = daemon_mod._run_compile

        def slow(*args, **kw):
            time.sleep(0.4)
            return real(*args, **kw)

        daemon_mod._run_compile = slow
        try:
            srv = server(workers=2)
            results = []

            def compile_slow():
                with ServiceClient(srv.address, timeout=30) as svc:
                    results.append(svc.compile(MVM, {"A": A}))

            t = threading.Thread(target=compile_slow)
            t.start()
            deadline = time.monotonic() + 5
            while srv._admitted < 1 and time.monotonic() < deadline:
                time.sleep(0.01)                   # compile is now in flight
            with ServiceClient(srv.address) as svc:
                svc.shutdown()
            t.join(timeout=30)
            # the in-flight compile was drained, not dropped
            assert len(results) == 1 and results[0].ok
            assert srv.wait_stopped(10)
            # new connections are refused after the drain
            with pytest.raises(ConnectionError):
                ServiceClient(srv.address, connect_retries=2,
                              retry_delay=0.01).connect()
        finally:
            daemon_mod._run_compile = real

    def test_compile_rejected_while_draining(self, server, A):
        srv = server()
        srv._draining.set()
        with ServiceClient(srv.address) as svc:
            assert svc.ping()                      # control ops still served
            with pytest.raises(ServiceError, match="draining"):
                svc.compile(MVM, {"A": A})


# ---------------------------------------------------------------------------
# Warm restart on the sharded disk cache
# ---------------------------------------------------------------------------

@pytest.mark.skipif(be.find_compiler() is None, reason="no C compiler")
class TestWarmRestart:
    def test_restart_reuses_sharded_disk_artifacts(self, server, A,
                                                   monkeypatch, tmp_path):
        """One cc invocation total across a server restart for the same
        digest: the second server boots cold in memory but finds the
        sharded ``.so`` on disk."""
        cache_dir = tmp_path / "shared-cache"
        monkeypatch.setenv("REPRO_CACHE_DIR", str(cache_dir))
        options = {"backend": "c", "cache": "disk"}

        def fresh_process():
            """A daemon restart from the caches' point of view."""
            clear_compile_cache()
            be.reset_toolchain_cache(scratch=True)

        fresh_process()
        compiles0 = INSTR.get("native.compiles")
        srv1 = server(workers=2)
        with ServiceClient(srv1.address) as svc:
            h = svc.compile(MVM, {"A": A}, options=options)
            assert h.backend_used.startswith("c"), h.fallback_reason
            h2 = svc.compile(MVM, {"A": A}, options=options)
            assert h2.cached
            svc.shutdown()
        assert srv1.wait_stopped(10)
        assert INSTR.get("native.compiles") == compiles0 + 1

        sos = list(cache_dir.rglob("*.so"))
        assert len(sos) == 1
        assert sos[0].parent.name == sos[0].name[:2], "sharded layout"
        assert not list(cache_dir.rglob("*.lock")), "no stale lock files"

        fresh_process()                            # "restart" the daemon
        srv2 = server(workers=2)
        with ServiceClient(srv2.address) as svc:
            disk_before = INSTR.get("native.so_cache.hits.disk")
            h = svc.compile(MVM, {"A": A}, options=options)
            assert h.ok and not h.cached           # new process: no handle map
            assert h.backend_used.startswith("c")
        # zero additional toolchain invocations across the restart
        assert INSTR.get("native.compiles") == compiles0 + 1
        assert INSTR.get("native.so_cache.hits.disk") == disk_before + 1
        fresh_process()

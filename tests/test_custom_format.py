"""The format-designer story: a user-defined format, described with the
view grammar and a runtime, compiles through the full pipeline (with the
generic code-generation fallback)."""

import numpy as np
import pytest

from repro.core import compile_kernel
from repro.formats.base import PathRuntime, SparseFormat, coo_dedup_sort
from repro.formats.views import (
    Axis,
    INCREASING,
    Joint,
    LINEAR,
    Term,
    UNORDERED,
    Value,
)
from repro.ir import execute_dense
from repro.ir.kernels import col_sums, mvm, mvm_t


class ColSortedCoo(SparseFormat):
    """Coordinate storage sorted column-major: ``<c, r> -> v`` with ``c``
    (and ``r`` within ``c``) enumerating in increasing order — the kind of
    one-off application-specific format the paper's Section 1 motivates."""

    format_name = "cscoo"

    def __init__(self, rows, cols, vals, shape):
        super().__init__(shape)
        self.rows = np.asarray(rows, dtype=np.int64)
        self.cols = np.asarray(cols, dtype=np.int64)
        self.vals = np.asarray(vals, dtype=np.float64)

    @property
    def nnz(self):
        return int(self.vals.size)

    def get(self, r, c):
        hits = np.nonzero((self.rows == r) & (self.cols == c))[0]
        return float(self.vals[hits[0]]) if hits.size else 0.0

    def set(self, r, c, v):
        hits = np.nonzero((self.rows == r) & (self.cols == c))[0]
        if not hits.size:
            raise KeyError((r, c))
        self.vals[hits[0]] = v

    def to_coo_arrays(self):
        return self.rows.copy(), self.cols.copy(), self.vals.copy()

    @classmethod
    def from_coo(cls, rows, cols, vals, shape):
        rows, cols, vals = coo_dedup_sort(rows, cols, vals, shape, order="col")
        return cls(rows, cols, vals, shape)

    def view(self) -> Term:
        return Joint(
            [Axis("c", INCREASING, LINEAR), Axis("r", UNORDERED, LINEAR)],
            Value(),
        )

    def path_ids(self):
        return ["flat"]

    def runtime(self, path_id):
        fmt = self

        class Rt(PathRuntime):
            path = fmt.path(path_id)

            def enumerate(self, step, prefix):
                for k in range(fmt.nnz):
                    yield (int(fmt.cols[k]), int(fmt.rows[k])), k

            def search(self, step, prefix, keys):
                c, r = keys
                hits = np.nonzero((fmt.rows == r) & (fmt.cols == c))[0]
                return int(hits[0]) if hits.size else None

            def get(self, prefix):
                return float(fmt.vals[prefix[0]])

            def set(self, prefix, value):
                fmt.vals[prefix[0]] = value

        return Rt()


@pytest.fixture(scope="module")
def custom(small_rect_module):
    return ColSortedCoo.from_dense(small_rect_module)


@pytest.fixture(scope="module")
def small_rect_module():
    from repro.formats.generate import random_sparse

    return random_sparse(6, 8, 0.3, seed=77).to_dense()


class TestCustomFormat:
    def test_roundtrip(self, custom, small_rect_module):
        assert np.allclose(custom.to_dense(), small_rect_module)

    def test_column_major_order(self, custom):
        assert np.all(np.diff(custom.cols) >= 0)

    def test_compiled_mvm(self, custom, small_rect_module, rng):
        k = compile_kernel(mvm(), {"A": custom})
        x = rng.random(8)
        y = rng.random(6)
        yd = y.copy()
        execute_dense(mvm(), {"A": small_rect_module.copy(), "x": x, "y": yd},
                      {"m": 6, "n": 8})
        k.run({"A": custom, "x": x, "y": y}, {"m": 6, "n": 8})
        assert np.allclose(y, yd)

    def test_generated_code_falls_back_to_runtime(self, custom, rng):
        k = compile_kernel(mvm(), {"A": custom})
        assert ".enumerate(" in k.source  # generic fallback, still compiled
        x = rng.random(8)
        y = np.zeros(6)
        k({"A": custom, "x": x, "y": y}, {"m": 6, "n": 8})
        assert np.allclose(y, custom.to_dense() @ x)

    def test_col_sums_exploits_column_order(self, custom, small_rect_module):
        k = compile_kernel(col_sums(), {"A": custom})
        s = np.zeros(8)
        sd = np.zeros(8)
        execute_dense(col_sums(), {"A": small_rect_module.copy(), "s": sd},
                      {"m": 6, "n": 8})
        k.run({"A": custom, "s": s}, {"m": 6, "n": 8})
        assert np.allclose(s, sd)

    def test_mvm_t(self, custom, small_rect_module, rng):
        k = compile_kernel(mvm_t(), {"A": custom})
        x = rng.random(6)
        y = np.zeros(8)
        k({"A": custom, "x": x, "y": y}, {"m": 6, "n": 8})
        assert np.allclose(y, small_rect_module.T @ x)

"""Exact linear algebra (repro.util.fractions_linalg)."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.util.fractions_linalg import (
    FractionMatrix,
    IncrementalRank,
    nullspace,
    rank,
    row_reduce,
    solve_exact,
)


class TestFractionMatrix:
    def test_shape_and_access(self):
        m = FractionMatrix([[1, 2], [3, 4]])
        assert m.shape == (2, 2)
        assert m[1, 0] == 3

    def test_ragged_rejected(self):
        with pytest.raises(ValueError):
            FractionMatrix([[1, 2], [3]])

    def test_float_rejected(self):
        with pytest.raises(TypeError):
            FractionMatrix([[1.5]])

    def test_fraction_entries(self):
        m = FractionMatrix([[Fraction(1, 3)]])
        assert m[0, 0] == Fraction(1, 3)

    def test_transpose(self):
        m = FractionMatrix([[1, 2, 3], [4, 5, 6]])
        t = m.transpose()
        assert t.shape == (3, 2)
        assert t[2, 1] == 6

    def test_matvec(self):
        m = FractionMatrix([[1, 2], [3, 4]])
        assert m.matvec([1, 1]) == [Fraction(3), Fraction(7)]

    def test_matvec_dim_mismatch(self):
        with pytest.raises(ValueError):
            FractionMatrix([[1, 2]]).matvec([1])

    def test_append_row(self):
        m = FractionMatrix([[1, 2]])
        m.append_row([3, 4])
        assert m.shape == (2, 2)
        with pytest.raises(ValueError):
            m.append_row([1])

    def test_equality_and_copy(self):
        m = FractionMatrix([[1, 2]])
        c = m.copy()
        assert m == c
        c.rows[0][0] = Fraction(9)
        assert m != c


class TestRowReduce:
    def test_identity(self):
        m = FractionMatrix([[1, 0], [0, 1]])
        red, pivots = row_reduce(m)
        assert pivots == [0, 1]
        assert red == m

    def test_rank_deficient(self):
        m = FractionMatrix([[1, 2], [2, 4]])
        assert rank(m) == 1

    def test_rank_full(self):
        m = FractionMatrix([[2, 1], [1, 2]])
        assert rank(m) == 2

    def test_rank_zero(self):
        assert rank(FractionMatrix([[0, 0], [0, 0]])) == 0

    def test_exactness_vs_float_trap(self):
        # a matrix that is exactly singular but would be borderline in
        # floating point
        big = 10 ** 20
        m = FractionMatrix([[big, big + 1], [big * 2, 2 * big + 2]])
        assert rank(m) == 1


class TestSolve:
    def test_unique_solution(self):
        A = FractionMatrix([[2, 1], [1, 3]])
        x = solve_exact(A, [5, 10])
        assert A.matvec(x) == [Fraction(5), Fraction(10)]

    def test_inconsistent(self):
        A = FractionMatrix([[1, 1], [1, 1]])
        assert solve_exact(A, [1, 2]) is None

    def test_underdetermined_gives_some_solution(self):
        A = FractionMatrix([[1, 1]])
        x = solve_exact(A, [3])
        assert A.matvec(x) == [Fraction(3)]

    def test_nullspace_dimension(self):
        A = FractionMatrix([[1, 2, 3]])
        basis = nullspace(A)
        assert len(basis) == 2
        for v in basis:
            assert A.matvec(v) == [Fraction(0)]

    def test_nullspace_trivial(self):
        A = FractionMatrix([[1, 0], [0, 1]])
        assert nullspace(A) == []


class TestIncrementalRank:
    def test_detects_dependence(self):
        inc = IncrementalRank(3)
        dep, _ = inc.add([1, 0, 0])
        assert not dep
        dep, _ = inc.add([0, 1, 0])
        assert not dep
        dep, combo = inc.add([2, 3, 0])
        assert dep
        assert combo == {0: Fraction(2), 1: Fraction(3)}

    def test_zero_row_dependent(self):
        inc = IncrementalRank(2)
        dep, combo = inc.add([0, 0])
        assert dep and combo == {}

    def test_paper_figure7(self):
        """The G matrix of paper Figure 7: rows l1r,l2r,l1c,l2c,j1,j2,i2
        over columns (j1, j2, i2); only the first and third are
        independent."""
        rows = [
            [1, 0, 0],  # l1r = j1
            [0, 0, 1],  # l2r = i2
            [1, 0, 0],  # l1c = j1
            [0, 1, 0],  # l2c = j2
            [1, 0, 0],  # j1
            [0, 1, 0],  # j2
            [0, 0, 1],  # i2
        ]
        # paper order: l1r, l2r, l1c, l2c, j1, j2, i2 with embeddings
        # F1=(j1,j1,j1,j1,j1,j1,j1), F2=(i2,i2,j2,j2,j2,j2,i2); the combined
        # G has rows [1,0,1], [1,0,1], [1,1,0], [1,1,0], [1,1,0], [1,1,0],
        # [1,0,1] — dims after the first occurrence of each pattern are
        # redundant
        g = [[1, 0, 1], [1, 0, 1], [1, 1, 0], [1, 1, 0], [1, 1, 0],
             [1, 1, 0], [1, 0, 1]]
        inc = IncrementalRank(3)
        verdicts = [inc.add(r)[0] for r in g]
        assert verdicts == [False, True, False, True, True, True, True]

    def test_width_mismatch(self):
        inc = IncrementalRank(2)
        with pytest.raises(ValueError):
            inc.add([1, 2, 3])


@settings(max_examples=50, deadline=None)
@given(st.lists(st.lists(st.integers(-5, 5), min_size=3, max_size=3),
                min_size=1, max_size=5))
def test_rank_matches_numpy(rows):
    m = FractionMatrix(rows)
    np_rank = np.linalg.matrix_rank(np.array(rows, dtype=float))
    assert rank(m) == np_rank


@settings(max_examples=50, deadline=None)
@given(st.lists(st.lists(st.integers(-4, 4), min_size=2, max_size=2),
                min_size=2, max_size=2),
       st.lists(st.integers(-4, 4), min_size=2, max_size=2))
def test_solve_exact_verifies(rows, b):
    A = FractionMatrix(rows)
    x = solve_exact(A, b)
    if x is not None:
        assert A.matvec(x) == [Fraction(v) for v in b]


@settings(max_examples=50, deadline=None)
@given(st.lists(st.lists(st.integers(-3, 3), min_size=4, max_size=4),
                min_size=1, max_size=6))
def test_incremental_rank_matches_batch(rows):
    inc = IncrementalRank(4)
    seen = []
    for r in rows:
        dep, _ = inc.add(r)
        seen.append(r)
        assert dep == (rank(FractionMatrix(seen)) == rank(FractionMatrix(seen[:-1])))

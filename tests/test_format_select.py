"""Automatic format selection (paper Section 6 future work, implemented)."""

import numpy as np
import pytest

from repro.core.plan import PlanError
from repro.formats import as_format
from repro.formats.generate import banded, lower_triangular_of, random_sparse
from repro.ir.kernels import mvm, ts_lower
from repro.search import select_format


class TestModelMode:
    def test_ranks_all_candidates(self):
        m = random_sparse(12, 12, 0.2, seed=8)
        res = select_format(mvm(), "A", m, candidates=("csr", "coo", "jad"))
        assert len(res.choices) == 3
        assert all(c.ok for c in res.choices)
        scores = [c.score for c in res.choices]
        assert scores == sorted(scores)

    def test_banded_matrix_prefers_dia(self):
        """For a tight band, DIA's two-level (diagonal, offset) walk is the
        cheapest structure under the Figure 11 model."""
        m = banded(64, bandwidth=1, seed=0)
        res = select_format(mvm(), "A", m,
                            candidates=("csr", "coo", "dia", "jad"))
        name, inst, kernel = res.best
        assert name == "dia"

    def test_ts_excludes_dia(self):
        """DIA has no legal TS plan; it must be reported, not crash."""
        L = lower_triangular_of(random_sparse(12, 12, 0.2, seed=9))
        res = select_format(ts_lower(), "L", L,
                            candidates=("csr", "dia", "jad"))
        dia_choice = next(c for c in res.choices if c.format_name == "dia")
        assert not dia_choice.ok
        assert res.best[0] in ("csr", "jad")

    def test_all_illegal_raises(self):
        L = lower_triangular_of(random_sparse(10, 10, 0.2, seed=10))
        with pytest.raises(PlanError):
            select_format(ts_lower(), "L", L, candidates=("dia",))

    def test_table_renders(self):
        m = random_sparse(10, 10, 0.2, seed=11)
        res = select_format(mvm(), "A", m, candidates=("csr", "coo"))
        t = res.table()
        assert "csr" in t and "coo" in t

    def test_accepts_dense_input(self):
        d = random_sparse(8, 8, 0.3, seed=12).to_dense()
        res = select_format(mvm(), "A", d, candidates=("csr", "coo"))
        assert res.best[0] in ("csr", "coo")

    def test_bad_mode(self):
        m = random_sparse(8, 8, 0.3, seed=13)
        with pytest.raises(ValueError):
            select_format(mvm(), "A", m, mode="psychic")

    def test_empirical_needs_workload(self):
        m = random_sparse(8, 8, 0.3, seed=13)
        with pytest.raises(ValueError):
            select_format(mvm(), "A", m, mode="empirical")


class TestEmpiricalMode:
    def test_measures_and_winner_runs(self):
        m = random_sparse(32, 32, 0.15, seed=14)
        n = 32
        x = np.random.default_rng(0).random(n)

        def workload(fmt):
            return ({"A": fmt, "x": x, "y": np.zeros(n)}, {"m": n, "n": n})

        res = select_format(mvm(), "A", m, candidates=("csr", "coo", "jad"),
                            mode="empirical", workload=workload, repeats=2)
        assert all(c.score > 0 for c in res.choices if c.ok)
        name, inst, kernel = res.best
        y = np.zeros(n)
        kernel({"A": inst, "x": x, "y": y}, {"m": n, "n": n})
        assert np.allclose(y, m.to_dense() @ x)

    def test_empirical_rejects_dense_for_sparse_band(self):
        """Empirically, walking 382 stored entries must beat walking all
        16384 dense positions — whatever the constant factors."""
        m = banded(128, bandwidth=1, seed=1)
        n = 128
        x = np.random.default_rng(1).random(n)

        def workload(fmt):
            return ({"A": fmt, "x": x, "y": np.zeros(n)}, {"m": n, "n": n})

        res = select_format(mvm(), "A", m, candidates=("coo", "dense"),
                            mode="empirical", workload=workload, repeats=2)
        assert res.best[0] == "coo"

    def test_model_and_measurement_can_disagree(self):
        """The Figure 11 model counts abstract enumeration steps; measured
        time includes the backend's constant factors.  For a tridiagonal
        matrix the model prefers DIA's two-level walk while the generated
        Python favours COO's single flat loop — exactly the gap the paper's
        ATLAS-style empirical mode exists to close (Section 6)."""
        m = banded(128, bandwidth=1, seed=1)
        n = 128
        x = np.random.default_rng(1).random(n)

        def workload(fmt):
            return ({"A": fmt, "x": x, "y": np.zeros(n)}, {"m": n, "n": n})

        res_m = select_format(mvm(), "A", m, candidates=("dia", "coo"))
        res_e = select_format(mvm(), "A", m, candidates=("dia", "coo"),
                              mode="empirical", workload=workload, repeats=2)
        assert res_m.best[0] == "dia"
        # both winners are correct, whichever they are
        for res in (res_m, res_e):
            name, inst, kernel = res.best
            y = np.zeros(n)
            kernel({"A": inst, "x": x, "y": y}, {"m": n, "n": n})
            assert np.allclose(y, m.to_dense() @ x)


class TestChoiceRobustness:
    """Selection-layer bugfixes: None scores must neither crash __repr__
    nor TypeError the ranking sort, and inapplicable formats (BSR with
    indivisible dims, SYM on a non-symmetric matrix) are reported as
    skip-with-reason choices instead of crashing the search."""

    def test_repr_with_none_score(self):
        from repro.search.format_select import FormatChoice

        c = FormatChoice("csr", kernel=object(), score=None)
        assert "unscored" in repr(c)
        assert "csr" in repr(c)

    def test_repr_with_error(self):
        from repro.search.format_select import FormatChoice

        c = FormatChoice("dia", None, None, "no plan here")
        assert "no plan here" in repr(c)

    def test_none_scores_sort_last(self):
        from repro.search.format_select import FormatChoice, SelectionResult

        choices = [
            FormatChoice("coo", object(), None),
            FormatChoice("csr", object(), 2.0),
            FormatChoice("jad", object(), 1.0),
        ]
        res = SelectionResult(choices, {"csr": None, "coo": None,
                                        "jad": None}, "model")
        assert [c.format_name for c in res.choices] == ["jad", "csr", "coo"]

    def test_table_renders_unscored(self):
        from repro.search.format_select import FormatChoice, SelectionResult

        res = SelectionResult(
            [FormatChoice("csr", object(), None)], {"csr": None}, "model")
        assert "unscored" in res.table()

    def test_default_candidates_include_bsr_and_sym(self):
        from repro.search.format_select import DEFAULT_CANDIDATES

        assert "bsr" in DEFAULT_CANDIDATES
        assert "sym" in DEFAULT_CANDIDATES

    def test_inapplicable_formats_skipped_with_reason(self):
        # 25x25 symmetric Laplacian: BSR (block_size=2) cannot tile 25,
        # SYM applies; a 12x12 non-symmetric: SYM inapplicable, BSR fine
        from repro.formats.generate import laplacian_2d

        res = select_format(mvm(), "A", laplacian_2d(5))
        by_name = {c.format_name: c for c in res.choices}
        assert not by_name["bsr"].ok
        assert "inapplicable" in by_name["bsr"].error
        assert by_name["sym"].ok
        assert "bsr" not in res.instances

        m = random_sparse(12, 12, 0.3, seed=3)
        res2 = select_format(mvm(), "A", m)
        by_name2 = {c.format_name: c for c in res2.choices}
        assert by_name2["bsr"].ok
        assert not by_name2["sym"].ok
        assert "inapplicable" in by_name2["sym"].error

    def test_full_default_sweep_still_ranks(self):
        m = random_sparse(16, 16, 0.25, seed=4)
        res = select_format(mvm(), "A", m)
        name, inst, kernel = res.best
        assert kernel is not None
        x = np.random.default_rng(5).random(16)
        y = np.zeros(16)
        kernel({"A": inst, "x": x, "y": y}, {"m": 16, "n": 16})
        assert np.allclose(y, m.to_dense() @ x)

    def test_bsr_convert_kwargs_forwarded(self):
        m = random_sparse(12, 12, 0.3, seed=6)
        res = select_format(mvm(), "A", m, candidates=("csr", "bsr"),
                            block_size=3)
        bsr = next(c for c in res.choices if c.format_name == "bsr")
        assert bsr.ok
        assert res.instances["bsr"].block_size == 3

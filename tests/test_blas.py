"""Baseline BLAS layers: specialized (NIST-C analog), generic
(NIST-Fortran analog), and the dispatch."""

import numpy as np
import pytest

from repro.blas import dense_ref, generic_, specialized
from repro.blas.api import mm, mm_t, mvm, mvm_t, ts_lower_solve, ts_upper_solve
from repro.formats import as_format
from repro.formats.generate import (
    lower_triangular_of,
    random_sparse,
    upper_triangular_of,
)

ALL = ["csr", "csc", "coo", "dia", "ell", "jad", "bsr", "msr"]


@pytest.fixture(scope="module")
def dense_a():
    return random_sparse(7, 9, 0.35, seed=21).to_dense()


@pytest.fixture(scope="module")
def lower():
    return lower_triangular_of(random_sparse(9, 9, 0.3, seed=22))


@pytest.fixture(scope="module")
def upper():
    return upper_triangular_of(random_sparse(9, 9, 0.3, seed=23))


class TestSpecializedMvm:
    @pytest.mark.parametrize("fmt", sorted(set(specialized.MVM) - {"sym"}))
    def test_matches_oracle(self, fmt, dense_a, rng):
        # sym needs a square symmetric input; covered in test_sym_format
        # BSR needs divisible dims: pad to 8x10
        a = np.zeros((8, 10))
        a[:7, :9] = dense_a
        kwargs = {"block_size": 2} if fmt == "bsr" else {}
        f = as_format(a, fmt, **kwargs)
        x = rng.random(10)
        y = np.zeros(8)
        specialized.MVM[fmt](f, x, y)
        assert np.allclose(y, f.to_dense() @ x)

    @pytest.mark.parametrize("fmt", sorted(specialized.MVM_T))
    def test_transposed(self, fmt, dense_a, rng):
        f = as_format(dense_a, fmt)
        x = rng.random(7)
        y = np.zeros(9)
        specialized.MVM_T[fmt](f, x, y)
        assert np.allclose(y, dense_a.T @ x)


class TestSpecializedTs:
    @pytest.mark.parametrize("fmt", sorted(specialized.TS_LOWER))
    def test_lower(self, fmt, lower, rng):
        f = as_format(lower, fmt)
        b = rng.random(9)
        x = specialized.TS_LOWER[fmt](f, b.copy())
        assert np.allclose(lower.to_dense() @ x, b, atol=1e-9)

    @pytest.mark.parametrize("fmt", sorted(specialized.TS_UPPER))
    def test_upper(self, fmt, upper, rng):
        f = as_format(upper, fmt)
        b = rng.random(9)
        x = specialized.TS_UPPER[fmt](f, b.copy())
        assert np.allclose(upper.to_dense() @ x, b, atol=1e-9)


class TestGeneric:
    @pytest.mark.parametrize("fmt", ALL)
    def test_iter_nonzeros_covers_matrix(self, fmt, dense_a):
        a = np.zeros((8, 10))
        a[:7, :9] = dense_a
        kwargs = {"block_size": 2} if fmt == "bsr" else {}
        f = as_format(a, fmt, **kwargs)
        recon = np.zeros_like(a)
        for r, c, v in generic_.iter_nonzeros(f):
            recon[r, c] += v
        assert np.allclose(recon, f.to_dense())

    @pytest.mark.parametrize("fmt", ALL)
    def test_generic_mvm(self, fmt, dense_a, rng):
        a = np.zeros((8, 10))
        a[:7, :9] = dense_a
        kwargs = {"block_size": 2} if fmt == "bsr" else {}
        f = as_format(a, fmt, **kwargs)
        x = rng.random(10)
        y = np.zeros(8)
        generic_.mvm(f, x, y)
        assert np.allclose(y, f.to_dense() @ x)

    @pytest.mark.parametrize("fmt", ["csr", "coo", "jad", "dia"])
    def test_generic_ts_variants(self, fmt, lower, rng):
        f = as_format(lower, fmt)
        b = rng.random(9)
        x1 = generic_.ts_lower(f, b.copy())
        x2 = generic_.ts_lower_enum(f, b.copy())
        assert np.allclose(lower.to_dense() @ x1, b, atol=1e-9)
        assert np.allclose(x1, x2, atol=1e-10)

    def test_generic_ts_upper(self, upper, rng):
        f = as_format(upper, "csr")
        b = rng.random(9)
        x = generic_.ts_upper(f, b.copy())
        assert np.allclose(upper.to_dense() @ x, b, atol=1e-9)


class TestDispatch:
    @pytest.mark.parametrize("fmt", ALL)
    def test_mvm_dispatch(self, fmt, dense_a, rng):
        a = np.zeros((8, 10))
        a[:7, :9] = dense_a
        kwargs = {"block_size": 2} if fmt == "bsr" else {}
        f = as_format(a, fmt, **kwargs)
        x = rng.random(10)
        assert np.allclose(mvm(f, x), f.to_dense() @ x)

    @pytest.mark.parametrize("fmt", ["csr", "csc", "jad", "msr", "coo", "ell"])
    def test_ts_dispatch(self, fmt, lower, rng):
        f = as_format(lower, fmt)
        b = rng.random(9)
        x = ts_lower_solve(f, b)
        assert np.allclose(lower.to_dense() @ x, b, atol=1e-9)
        # the input must not be modified unless in_place
        x2 = ts_lower_solve(f, b, in_place=True)
        assert x2 is b

    def test_mvm_t_dispatch(self, dense_a, rng):
        f = as_format(dense_a, "dia")
        x = rng.random(7)
        assert np.allclose(mvm_t(f, x), dense_a.T @ x)

    def test_ts_upper_dispatch(self, upper, rng):
        f = as_format(upper, "jad")
        b = rng.random(9)
        x = ts_upper_solve(f, b)
        assert np.allclose(upper.to_dense() @ x, b, atol=1e-9)


class TestMm:
    """SpMM through the dispatch: specialized kernels for csr/csc, the
    generic enumeration everywhere else, all against the dense oracle."""

    @pytest.mark.parametrize("fmt", ALL)
    def test_mm_matches_oracle(self, fmt, dense_a, rng):
        a = np.zeros((8, 10))
        a[:7, :9] = dense_a
        kwargs = {"block_size": 2} if fmt == "bsr" else {}
        f = as_format(a, fmt, **kwargs)
        X = rng.random((10, 4))
        assert np.allclose(mm(f, X), dense_ref.mm(a, X))

    @pytest.mark.parametrize("fmt", ALL)
    def test_mm_t_matches_oracle(self, fmt, dense_a, rng):
        a = np.zeros((8, 10))
        a[:7, :9] = dense_a
        kwargs = {"block_size": 2} if fmt == "bsr" else {}
        f = as_format(a, fmt, **kwargs)
        X = rng.random((8, 3))
        assert np.allclose(mm_t(f, X), dense_ref.mm_t(a, X))

    def test_mm_single_column_matches_mvm(self, dense_a, rng):
        f = as_format(dense_a, "csr")
        x = rng.random(9)
        assert np.array_equal(mm(f, x[:, None])[:, 0], mvm(f, x))

    def test_mm_into_caller_buffer(self, dense_a, rng):
        f = as_format(dense_a, "csr")
        X = rng.random((9, 2))
        Y = np.full((7, 2), 9.0)
        out = mm(f, X, Y)
        assert out is Y
        assert np.allclose(Y, dense_ref.mm(dense_a, X))


class TestFlops:
    def test_counts(self):
        assert dense_ref.flops_mvm(100) == 200
        assert dense_ref.flops_ts(100, 10) == 190
        assert dense_ref.flops_mm(100, 16) == 3200


class TestOutputDtype:
    """Allocation must promote operand dtypes, not hard-code float64
    (regression: ``np.zeros(n)`` silently widened float32 workloads)."""

    def _f32_csr(self, dense_a):
        a = as_format(dense_a, "csr")
        a.values = a.values.astype(np.float32)
        return a

    def test_mvm_preserves_float32(self, dense_a, rng):
        a = self._f32_csr(dense_a)
        x = rng.random(9).astype(np.float32)
        y = mvm(a, x)
        assert y.dtype == np.float32
        assert np.allclose(y, dense_a.astype(np.float32) @ x, atol=1e-5)

    def test_mvm_promotes_mixed(self, dense_a, rng):
        a = self._f32_csr(dense_a)
        assert mvm(a, rng.random(9)).dtype == np.float64

    def test_mvm_t_preserves_float32(self, dense_a, rng):
        a = self._f32_csr(dense_a)
        x = rng.random(7).astype(np.float32)
        assert mvm_t(a, x).dtype == np.float32

    def test_mm_preserves_float32(self, dense_a, rng):
        a = self._f32_csr(dense_a)
        X = rng.random((9, 4)).astype(np.float32)
        Y = mm(a, X)
        assert Y.dtype == np.float32
        assert Y.shape == (7, 4)
        assert np.allclose(Y, dense_a.astype(np.float32) @ X, atol=1e-5)

    def test_mm_promotes_mixed(self, dense_a, rng):
        # float32 matrix x float64 panel -> float64 (np.result_type)
        a = self._f32_csr(dense_a)
        assert mm(a, rng.random((9, 4))).dtype == np.float64

    def test_mm_t_preserves_float32(self, dense_a, rng):
        a = self._f32_csr(dense_a)
        X = rng.random((7, 2)).astype(np.float32)
        assert mm_t(a, X).dtype == np.float32

    def test_format_dtype_property(self, dense_a):
        a = as_format(dense_a, "csr")
        assert a.dtype == np.float64
        a.values = a.values.astype(np.float32)
        assert a.dtype == np.float32
        # every stock format reports a dtype (value-array probe or the
        # float64 default) without raising
        for fmt in ALL:
            kwargs = {"block_size": 1} if fmt == "bsr" else {}
            assert as_format(dense_a, fmt, **kwargs).dtype == np.float64


class TestPanelAndOutputGuards:
    """Shape/dtype hardening of the multi-matrix surface (regressions: a
    1-D X hit a raw IndexError, a mis-sized panel computed garbage
    silently, and integer/narrow caller outputs truncated products)."""

    def test_mm_rejects_1d_x(self, dense_a, rng):
        f = as_format(dense_a, "csr")
        with pytest.raises(ValueError, match=r"mm: X must be a 2-D panel"):
            mm(f, rng.random(9))

    def test_mm_t_rejects_1d_x(self, dense_a, rng):
        f = as_format(dense_a, "csr")
        with pytest.raises(ValueError, match=r"mm_t: X must be a 2-D panel"):
            mm_t(f, rng.random(7))

    def test_mm_rejects_row_mismatch(self, dense_a, rng):
        # A is 7x9 so the panel needs 9 rows; both shapes must be named
        f = as_format(dense_a, "csr")
        with pytest.raises(ValueError, match=r"7x9.*9 rows.*\(5, 2\)"):
            mm(f, rng.random((5, 2)))

    def test_mm_t_rejects_row_mismatch(self, dense_a, rng):
        f = as_format(dense_a, "csr")
        with pytest.raises(ValueError, match=r"needs 7 rows"):
            mm_t(f, rng.random((9, 2)))

    def test_mm_rejects_wrong_out_shape(self, dense_a, rng):
        f = as_format(dense_a, "csr")
        with pytest.raises(ValueError, match=r"shape \(7, 3\), expected \(7, 2\)"):
            mm(f, rng.random((9, 2)), np.zeros((7, 3)))

    def test_mvm_rejects_integer_out(self, dense_a, rng):
        # float64 products into an int64 y used to truncate silently
        f = as_format(dense_a, "csr")
        with pytest.raises(ValueError, match="would truncate"):
            mvm(f, rng.random(9), np.zeros(7, dtype=np.int64))

    def test_mm_rejects_lossy_out(self, dense_a, rng):
        f = as_format(dense_a, "csr")
        with pytest.raises(ValueError, match="would truncate"):
            mm(f, rng.random((9, 2)), np.zeros((7, 2), dtype=np.float32))
        with pytest.raises(ValueError, match="would truncate"):
            mm(f, rng.random((9, 2)), np.zeros((7, 2), dtype=np.int64))

    def test_mm_float32_out_accepted_for_float32_operands(self, dense_a, rng):
        a = as_format(dense_a, "csr")
        a.values = a.values.astype(np.float32)
        X = rng.random((9, 2)).astype(np.float32)
        Y = np.zeros((7, 2), dtype=np.float32)
        assert mm(a, X, Y) is Y

    def test_mm_empty_panel(self, dense_a):
        # k = 0: a (9, 0) panel produces a (7, 0) result, no dispatch
        f = as_format(dense_a, "csr")
        Y = mm(f, np.zeros((9, 0)))
        assert Y.shape == (7, 0)
        Yt = mm_t(f, np.zeros((7, 0)))
        assert Yt.shape == (9, 0)

    def test_ts_solve_promotes_integer_b(self, lower):
        # an int b used to floor every quotient in the copy path
        f = as_format(lower, "csr")
        b = np.arange(1, 10, dtype=np.int64)
        x = ts_lower_solve(f, b)
        assert x.dtype == np.float64
        assert np.allclose(lower.to_dense() @ x, b)
        assert b.dtype == np.int64          # caller's array untouched

    def test_ts_solve_in_place_rejects_integer_b(self, lower, upper):
        fl = as_format(lower, "csr")
        fu = as_format(upper, "csr")
        with pytest.raises(ValueError, match="in-place solve writes"):
            ts_lower_solve(fl, np.arange(1, 10, dtype=np.int64),
                           in_place=True)
        with pytest.raises(ValueError, match="in-place solve writes"):
            ts_upper_solve(fu, np.arange(1, 10, dtype=np.int64),
                           in_place=True)

    def test_ts_upper_promotes_integer_b(self, upper):
        f = as_format(upper, "csr")
        b = np.arange(1, 10, dtype=np.int64)
        x = ts_upper_solve(f, b)
        assert x.dtype == np.float64
        assert np.allclose(upper.to_dense() @ x, b)

"""Differential suite for the vectorized data plane (PR 5).

Every vectorized path — ``from_coo`` packing, ``to_coo_arrays``
extraction, ``to_dense``, the direct conversion routes, the SolverContext
triangular split — must be **byte-identical** to the retained
``_reference_*`` loop oracles: same array contents, same dtypes, on raw
triples that include duplicates, out-of-order entries, empty rows and
columns, and empty matrices.

Also pins the data-plane API contracts the vectorization must not erode:
``to_coo_arrays`` returns int64 indices and C-contiguous freshly-allocated
values for all 10 formats; ``convert`` short-circuits identity
conversions; ``as_format`` performs a single conversion from scipy.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import FORMATS, as_format, convert
from repro.formats.convert import fast_paths
from repro.formats.csr import CsrMatrix
from repro.instrument import INSTR
from repro.solvers.context import (
    SolverContext,
    _reference_triangular_split,
    _triangular_split,
)

ALL_FORMATS = list(FORMATS)

M, N = 6, 8  # even on both axes so bsr block_size=2 tiles exactly

FAST = settings(max_examples=25, deadline=None, derandomize=True)


def _fmt_kwargs(fmt_name):
    return {"block_size": 2} if fmt_name == "bsr" else {}


def _shape(fmt_name):
    return (M, M) if fmt_name == "sym" else (M, N)


def raw_triples(m, n, symmetric=False):
    """Raw (rows, cols, vals) COO input: unsorted, duplicates allowed,
    empty rows/cols common, integer-valued floats so duplicate summing is
    exact.  Symmetric variants mirror every entry."""
    entry = st.tuples(st.integers(0, m - 1), st.integers(0, n - 1),
                      st.integers(-4, 4))

    def assemble(entries):
        rows = [r for r, _c, _v in entries]
        cols = [c for _r, c, _v in entries]
        vals = [float(v) for _r, _c, v in entries]
        if symmetric:
            rows, cols = rows + cols, cols + rows
            vals = vals + vals
        return (np.array(rows, dtype=np.int64),
                np.array(cols, dtype=np.int64),
                np.array(vals, dtype=np.float64))

    return st.lists(entry, min_size=0, max_size=3 * max(m, n)).map(assemble)


def assert_same_instance(a, b):
    """Every stored array byte-identical (contents and dtype), every
    scalar attribute equal."""
    assert type(a) is type(b)
    va, vb = vars(a), vars(b)
    assert set(va) == set(vb)
    for k, x in va.items():
        y = vb[k]
        if isinstance(x, np.ndarray):
            assert x.dtype == y.dtype, (k, x.dtype, y.dtype)
            assert x.shape == y.shape, (k, x.shape, y.shape)
            assert np.array_equal(x, y), k
        else:
            assert x == y, k


def assert_same_triples(a, b):
    for x, y in zip(a, b):
        assert x.dtype == y.dtype or y.dtype == np.float64
        assert np.array_equal(x, y)


# ---------------------------------------------------------------------------
# vectorized vs loop-oracle, per format
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("fmt_name", [f for f in ALL_FORMATS if f != "sym"])
@FAST
@given(data=st.data())
def test_from_coo_matches_reference(fmt_name, data):
    shape = _shape(fmt_name)
    rows, cols, vals = data.draw(raw_triples(*shape))
    cls, kw = FORMATS[fmt_name], _fmt_kwargs(fmt_name)
    vec = cls.from_coo(rows, cols, vals, shape, **kw)
    ref = cls._reference_from_coo(rows, cols, vals, shape, **kw)
    assert_same_instance(vec, ref)


@FAST
@given(data=st.data())
def test_from_coo_matches_reference_sym(data):
    rows, cols, vals = data.draw(raw_triples(M, M, symmetric=True))
    cls = FORMATS["sym"]
    vec = cls.from_coo(rows, cols, vals, (M, M))
    ref = cls._reference_from_coo(rows, cols, vals, (M, M))
    assert_same_instance(vec, ref)


@pytest.mark.parametrize("fmt_name", ALL_FORMATS)
@FAST
@given(data=st.data())
def test_extraction_matches_reference(fmt_name, data):
    """to_coo_arrays and to_dense against their loop oracles, from an
    instance built out of raw (possibly duplicated) triples."""
    shape = _shape(fmt_name)
    rows, cols, vals = data.draw(raw_triples(*shape,
                                             symmetric=fmt_name == "sym"))
    inst = FORMATS[fmt_name].from_coo(rows, cols, vals, shape,
                                      **_fmt_kwargs(fmt_name))
    assert_same_triples(inst.to_coo_arrays(), inst._reference_to_coo_arrays())
    assert np.array_equal(inst.to_dense(), inst._reference_to_dense())


@pytest.mark.parametrize("fmt_name", [f for f in ALL_FORMATS if f != "csr"])
@FAST
@given(data=st.data())
def test_convert_fast_path_matches_generic(fmt_name, data):
    """csr -> every other format: the direct/_from_canonical_coo routes
    produce byte-identical instances to the via-COO interchange."""
    shape = _shape(fmt_name)
    rows, cols, vals = data.draw(raw_triples(*shape,
                                             symmetric=fmt_name == "sym"))
    csr = CsrMatrix.from_coo(rows, cols, vals, shape)
    kw = _fmt_kwargs(fmt_name)
    fast = convert(csr, fmt_name, **kw)
    with fast_paths(False):
        generic = convert(csr, fmt_name, **kw)
    assert_same_instance(fast, generic)


@FAST
@given(data=st.data())
def test_csc_to_csr_fast_path_matches_generic(data):
    rows, cols, vals = data.draw(raw_triples(M, N))
    csc = FORMATS["csc"].from_coo(rows, cols, vals, (M, N))
    fast = convert(csc, "csr")
    with fast_paths(False):
        generic = convert(csc, "csr")
    assert_same_instance(fast, generic)


@FAST
@given(data=st.data())
def test_triangular_split_matches_reference(data):
    rows, cols, vals = data.draw(raw_triples(M, M))
    csr = CsrMatrix.from_coo(rows, cols, vals, (M, M))
    L_vec, U_vec = _triangular_split(csr)
    L_ref, U_ref = _reference_triangular_split(csr)
    for vec, ref in ((L_vec, L_ref), (U_vec, U_ref)):
        bounds = (vec._bounds, ref._bounds)
        vec._bounds = ref._bounds = None
        assert_same_instance(vec, ref)
        vec._bounds, ref._bounds = bounds


@FAST
@given(data=st.data())
def test_triangular_split_non_csr_input(data):
    """The non-CSR branch (triples + masks) agrees with the CSR branch."""
    rows, cols, vals = data.draw(raw_triples(M, M))
    csr = CsrMatrix.from_coo(rows, cols, vals, (M, M))
    ell = convert(csr, "ell")
    for a, b in zip(_triangular_split(csr), _triangular_split(ell)):
        assert np.array_equal(a.to_dense(), b.to_dense())


def test_solver_diag_matches_elementwise():
    rng = np.random.default_rng(5)
    dense = np.zeros((9, 9))
    dense[rng.integers(0, 9, 20), rng.integers(0, 9, 20)] = 1.0 + np.arange(20)
    np.fill_diagonal(dense[:4, :4], 3.0)  # some diag present, some absent
    ctx = SolverContext(as_format(dense, "csr"), ops=("mvm",),
                        backend="python", register=False)
    expect = np.array([ctx.A.get(i, i) for i in range(9)])
    assert np.array_equal(ctx.diag, expect)


# ---------------------------------------------------------------------------
# index dtype / contiguity contract
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("fmt_name", ALL_FORMATS)
@pytest.mark.parametrize("empty", [False, True])
def test_to_coo_arrays_contract(fmt_name, empty):
    """int64 rows/cols, C-contiguous float64 vals, vals freshly allocated
    (mutating them never corrupts the instance) — including for empty
    matrices."""
    shape = _shape(fmt_name)
    if empty:
        dense = np.zeros(shape)
    else:
        dense = np.zeros(shape)
        dense[0, 1] = 2.0
        dense[1, 0] = 2.0
        dense[shape[0] - 1, shape[1] - 1] = -1.0
    inst = as_format(dense, fmt_name, **_fmt_kwargs(fmt_name))
    rows, cols, vals = inst.to_coo_arrays()
    assert rows.dtype == np.int64 and cols.dtype == np.int64
    assert vals.dtype == np.float64
    for a in (rows, cols, vals):
        assert a.flags["C_CONTIGUOUS"]
    if vals.size:
        vals[:] = 123.0
        assert np.array_equal(inst.to_dense(), dense)


def test_from_coo_does_not_alias_canonical_input():
    """Pre-sorted input (the dedup fast path) must still be copied into
    the instance, not aliased."""
    rows = np.array([0, 1], dtype=np.int64)
    cols = np.array([1, 0], dtype=np.int64)
    vals = np.array([2.0, 2.0])  # symmetric so sym accepts the input too
    for fmt_name in ALL_FORMATS:
        shape = (2, 2)
        inst = FORMATS[fmt_name].from_coo(
            rows, cols, vals, shape, **_fmt_kwargs(fmt_name))
        before = inst.to_dense()
        vals[:] = -7.0
        assert np.array_equal(inst.to_dense(), before), fmt_name
        vals[:] = 2.0


# ---------------------------------------------------------------------------
# convert() routing
# ---------------------------------------------------------------------------

def _eye_csr(n=4):
    return as_format(np.eye(n), "csr")


def test_convert_identity_short_circuit():
    m = _eye_csr().annotate_triangular("lower")
    before = INSTR.get("format.convert.identity")
    assert convert(m, "csr") is m
    assert convert(m, CsrMatrix) is m
    assert INSTR.get("format.convert.identity") == before + 2
    assert m.bounds() is not None  # annotation untouched


def test_convert_identity_with_kwargs_rebuilds():
    m = as_format(np.eye(4), "bsr", block_size=2)
    out = convert(m, "bsr", block_size=2)
    assert out is not m
    assert np.array_equal(out.to_dense(), np.eye(4))


def test_convert_preserves_bounds_on_fast_path():
    m = _eye_csr().annotate_triangular("lower")
    out = convert(m, "csc")
    assert out.bounds() is not None


def test_non_canonical_csr_falls_back_to_generic():
    """Hand-built CSR with unsorted columns inside a row must take the
    via-COO route and still convert correctly."""
    bad = CsrMatrix(np.array([0, 2], dtype=np.int64),
                    np.array([2, 0], dtype=np.int64),
                    np.array([5.0, 7.0]), (1, 3))
    before = INSTR.get("format.convert.via_coo")
    out = convert(bad, "csc")
    assert INSTR.get("format.convert.via_coo") == before + 1
    assert np.array_equal(out.to_dense(), [[7.0, 0.0, 5.0]])


def test_convert_instrumentation_counts_routes():
    m = _eye_csr()
    c0 = INSTR.get("format.convert.fastpath")
    p0 = INSTR.get("format.convert.csr->ell")
    convert(m, "ell")
    assert INSTR.get("format.convert.fastpath") == c0 + 1
    assert INSTR.get("format.convert.csr->ell") == p0 + 1


def test_as_format_scipy_single_conversion():
    scipy_sparse = pytest.importorskip("scipy.sparse")
    dense = np.zeros((4, 6))
    dense[0, 1] = 2.0
    dense[3, 5] = -1.0
    sp = scipy_sparse.csr_matrix(dense)
    before = INSTR.snapshot()["counters"]
    out = as_format(sp, "ell")
    after = INSTR.snapshot()["counters"]
    assert np.array_equal(out.to_dense(), dense)
    # from_scipy goes straight to from_coo: the convert() machinery (and
    # its scipy -> COO -> target double hop) must not run at all
    for key in ("format.convert.via_coo", "format.convert.fastpath"):
        assert after.get(key, 0) == before.get(key, 0)


def test_as_format_scipy_forwards_kwargs():
    scipy_sparse = pytest.importorskip("scipy.sparse")
    sp = scipy_sparse.csr_matrix(np.eye(4))
    out = as_format(sp, "bsr", block_size=2)
    assert out.format_name == "bsr"
    assert np.array_equal(out.to_dense(), np.eye(4))

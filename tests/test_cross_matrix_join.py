"""Cross-matrix joins: one statement referencing two different sparse
matrices at the same element — the compiler realizes the enumerate-one,
search-the-other strategy (paper Section 4.1's join strategies)."""

import numpy as np
import pytest

from repro.core import LoopNode, SearchEnum, compile_kernel
from repro.formats import as_format
from repro.formats.generate import random_sparse
from repro.ir import execute_dense, parse_program

_cache = {}


def hadamard_dot():
    """acc = sum_ij A[i][j] * B[i][j] — the sparse inner product."""
    return parse_program(
        """
        haddot(m, n; A: matrix, B: matrix, acc: scalar) {
            for i = 0 : m {
                for j = 0 : n {
                    acc = acc + A[i][j] * B[i][j];
                }
            }
        }
        """
    )


@pytest.fixture(scope="module")
def mats():
    Ad = random_sparse(7, 9, 0.3, seed=31).to_dense()
    Bd = random_sparse(7, 9, 0.35, seed=32).to_dense()
    return Ad, Bd


def _compiled(key, prog, bindings):
    if key not in _cache:
        _cache[key] = compile_kernel(prog, bindings)
    return _cache[key]


class TestHadamardDot:
    @pytest.mark.parametrize("fa,fb", [
        ("csr", "csr"), ("csr", "csc"), ("coo", "csr"), ("csr", "dia"),
    ])
    def test_correct(self, fa, fb, mats):
        Ad, Bd = mats
        A = as_format(Ad, fa)
        B = as_format(Bd, fb)
        k = _compiled(("hd", fa, fb), hadamard_dot(), {"A": A, "B": B})
        acc = np.array(0.0)
        accd = np.array(0.0)
        execute_dense(hadamard_dot(), {"A": Ad.copy(), "B": Bd.copy(),
                                       "acc": accd}, {"m": 7, "n": 9})
        k({"A": A, "B": B, "acc": acc}, {"m": 7, "n": 9})
        assert np.allclose(acc, accd)
        assert np.allclose(acc, (Ad * Bd).sum())

    def test_second_matrix_searched_not_scanned(self, mats):
        """The chosen plan drives one matrix's enumeration and resolves the
        other by search (an enumerate/search join), not by a nested full
        scan."""
        Ad, Bd = mats
        A = as_format(Ad, "csr")
        B = as_format(Bd, "csr")
        k = _compiled(("hd", "csr", "csr"), hadamard_dot(), {"A": A, "B": B})
        searches = []
        drivers = []

        def walk(nodes):
            for n in nodes:
                if isinstance(n, LoopNode):
                    drivers.append(n.method)
                    searches.extend(r for r in n.roles if r.role == "search")
                    if isinstance(n.method, SearchEnum):
                        searches.append(n.method)
                    walk(n.before)
                    walk(n.body)
                    walk(n.after)

        walk(k.plan.nodes)
        # only one matrix's structure is walked; the other is searched
        walked = {m.driver.array for m in drivers
                  if not isinstance(m, SearchEnum)}
        assert len(walked) == 1
        assert searches, "the second matrix must be searched, not re-walked"

    def test_zero_overlap(self):
        """Structures with disjoint patterns produce exactly zero."""
        a = np.zeros((4, 4))
        b = np.zeros((4, 4))
        a[0, 1] = 3.0
        b[1, 0] = 4.0
        A = as_format(a, "csr")
        B = as_format(b, "csr")
        k = compile_kernel(hadamard_dot(), {"A": A, "B": B})
        acc = np.array(1.5)
        k({"A": A, "B": B, "acc": acc}, {"m": 4, "n": 4})
        assert acc == pytest.approx(1.5)  # accumulator untouched

"""Constraint systems and Fourier–Motzkin elimination."""

from fractions import Fraction

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.polyhedra.fm import (
    NEG_INF,
    POS_INF,
    bounds_of,
    eliminate_variable,
    implied_equalities,
    implies,
    is_feasible,
    project,
    sample_point,
)
from repro.polyhedra.linexpr import LinExpr, var
from repro.polyhedra.system import Constraint, EQ, GE, System, eq, ge, gt, le, lt


class TestConstraint:
    def test_normalization_scales_to_integers(self):
        c = Constraint(var("x") * Fraction(1, 2) - Fraction(3, 2), GE)
        assert c.expr.coeff("x") == 1 and c.expr.const == -3

    def test_normalization_divides_gcd(self):
        c = Constraint(var("x") * 4 - 8, GE)
        assert c.expr.coeff("x") == 1 and c.expr.const == -2

    def test_eq_sign_canonical(self):
        a = Constraint(var("x") - var("y"), EQ)
        b = Constraint(var("y") - var("x"), EQ)
        assert a == b

    def test_trivial_and_contradiction(self):
        assert Constraint(LinExpr({}, 1), GE).is_trivial
        assert Constraint(LinExpr({}, -1), GE).is_contradiction
        assert Constraint(LinExpr({}, 0), EQ).is_trivial
        assert Constraint(LinExpr({}, 2), EQ).is_contradiction

    def test_satisfied_by(self):
        c = ge(var("x"), 3)
        assert c.satisfied_by({"x": Fraction(3)})
        assert not c.satisfied_by({"x": Fraction(2)})

    def test_bad_kind(self):
        with pytest.raises(ValueError):
            Constraint(var("x"), "LT")


class TestSystem:
    def test_dedup(self):
        s = System([ge(var("x"), 0), ge(var("x"), 0)])
        assert len(s) == 1

    def test_trivial_dropped(self):
        s = System([ge(1, 0), ge(var("x"), 0)])
        assert len(s) == 1

    def test_variables_sorted(self):
        s = System([ge(var("b"), 0), ge(var("a"), 0)])
        assert s.variables() == ("a", "b")

    def test_satisfied_by(self):
        s = System([ge(var("x"), 0), le(var("x"), 5)])
        assert s.satisfied_by({"x": Fraction(2)})
        assert not s.satisfied_by({"x": Fraction(9)})

    def test_conjoin_and_rename(self):
        s = System([ge(var("x"), 0)]).conjoin(System([le(var("x"), 1)]))
        assert len(s) == 2
        r = s.rename({"x": "y"})
        assert r.variables() == ("y",)

    def test_substitute(self):
        s = System([ge(var("x"), 2)])
        t = s.substitute({"x": var("y") + 1})
        assert t.satisfied_by({"y": Fraction(1)})
        assert not t.satisfied_by({"y": Fraction(0)})


class TestFeasibility:
    def test_empty_system_feasible(self):
        assert is_feasible(System([]))

    def test_box(self):
        s = System([ge(var("x"), 0), le(var("x"), 5)])
        assert is_feasible(s)

    def test_empty_interval(self):
        s = System([ge(var("x"), 5), le(var("x"), 0)])
        assert not is_feasible(s)

    def test_equality_substitution_path(self):
        s = System([eq(var("x"), var("y")), ge(var("x"), 3), le(var("y"), 2)])
        assert not is_feasible(s)

    def test_triangular_region(self):
        # 0 <= x <= y <= 10, x >= y + 1 is infeasible
        s = System([ge(var("x"), 0), le(var("x"), var("y")),
                    le(var("y"), 10), gt(var("x"), var("y"))])
        assert not is_feasible(s)

    def test_many_variables(self):
        cons = []
        for i in range(6):
            cons.append(ge(var(f"x{i}"), 0))
            cons.append(le(var(f"x{i}"), 10))
        for i in range(5):
            cons.append(lt(var(f"x{i}"), var(f"x{i+1}")))
        assert is_feasible(System(cons))
        cons.append(gt(var("x0"), var("x5")))
        assert not is_feasible(System(cons))


class TestProjection:
    def test_project_keeps_shadow(self):
        # x in [0,5], y == x  -> projecting onto y gives [0,5]
        s = System([ge(var("x"), 0), le(var("x"), 5), eq(var("y"), var("x"))])
        p = project(s, ["y"])
        assert p.satisfied_by({"y": Fraction(3)})
        assert not p.satisfied_by({"y": Fraction(7)})

    def test_eliminate_variable(self):
        s = System([ge(var("x"), var("y")), le(var("x"), 4)])
        e = eliminate_variable(s, "x")
        # exists x with y <= x <= 4 iff y <= 4
        assert e.satisfied_by({"y": Fraction(4)})
        assert not e.satisfied_by({"y": Fraction(5)})


class TestBounds:
    def test_closed_interval(self):
        s = System([ge(var("x"), 2), le(var("x"), 5)])
        assert bounds_of(s, var("x")) == (Fraction(2), Fraction(5))

    def test_unbounded_above(self):
        s = System([ge(var("x"), 2)])
        lo, hi = bounds_of(s, var("x"))
        assert lo == Fraction(2) and hi == POS_INF

    def test_derived_expression(self):
        s = System([ge(var("x"), 0), le(var("x"), 3),
                    ge(var("y"), 1), le(var("y"), 2)])
        lo, hi = bounds_of(s, var("x") + var("y"))
        assert (lo, hi) == (Fraction(1), Fraction(5))

    def test_infeasible_raises(self):
        s = System([ge(var("x"), 5), le(var("x"), 0)])
        with pytest.raises(ValueError):
            bounds_of(s, var("x"))

    def test_implies(self):
        s = System([ge(var("x"), 3)])
        assert implies(s, ge(var("x"), 2))
        assert not implies(s, ge(var("x"), 4))


class TestImpliedEqualities:
    def test_direct(self):
        s = System([eq(var("x"), var("y")), ge(var("x"), 0), le(var("x"), 5)])
        assert ("x", "y") in implied_equalities(s)

    def test_transitive(self):
        s = System([eq(var("x"), var("y")), eq(var("y"), var("z")),
                    ge(var("x"), 0), le(var("x"), 5)])
        pairs = implied_equalities(s)
        assert ("x", "z") in pairs

    def test_squeeze(self):
        # x <= y and y <= x forces equality without an explicit ==
        s = System([le(var("x"), var("y")), le(var("y"), var("x")),
                    ge(var("x"), 0), le(var("x"), 9)])
        assert ("x", "y") in implied_equalities(s)

    def test_not_equal(self):
        s = System([ge(var("x"), 0), le(var("x"), 5),
                    ge(var("y"), 0), le(var("y"), 5)])
        assert implied_equalities(s) == []


class TestSamplePoint:
    def test_in_box(self):
        s = System([ge(var("x"), 0), le(var("x"), 5), ge(var("y"), var("x"))])
        p = sample_point(s)
        assert s.satisfied_by(p)

    def test_infeasible_none(self):
        s = System([ge(var("x"), 5), le(var("x"), 0)])
        assert sample_point(s) is None

    def test_with_equalities(self):
        s = System([eq(var("x") + var("y"), 10), ge(var("x"), 3), ge(var("y"), 3)])
        p = sample_point(s)
        assert s.satisfied_by(p)


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.tuples(st.integers(-3, 3), st.integers(-3, 3), st.integers(-6, 6),
              st.booleans()),
    min_size=1, max_size=5))
def test_feasibility_matches_bruteforce(raw):
    """FM feasibility agrees with brute force over a small integer box for
    integral systems with bounded coefficients (plus box constraints that
    make brute force exhaustive)."""
    cons = [ge(var("x"), -4), le(var("x"), 4), ge(var("y"), -4), le(var("y"), 4)]
    for a, b, c, is_eq in raw:
        e = a * var("x") + b * var("y") + c
        cons.append(Constraint(e, EQ if is_eq else GE))
    s = System(cons)
    brute = any(
        s.satisfied_by({"x": Fraction(x), "y": Fraction(y)})
        for x in range(-4, 5)
        for y in range(-4, 5)
    )
    fm = is_feasible(s)
    # rational feasibility is implied by integer feasibility
    if brute:
        assert fm
    # and rational infeasibility implies integer infeasibility
    if not fm:
        assert not brute


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.tuples(st.integers(-3, 3), st.integers(-3, 3), st.integers(-6, 6)),
    min_size=1, max_size=4))
def test_sample_point_satisfies(raw):
    cons = [ge(var("x"), -4), le(var("x"), 4), ge(var("y"), -4), le(var("y"), 4)]
    for a, b, c in raw:
        cons.append(Constraint(a * var("x") + b * var("y") + c, GE))
    s = System(cons)
    p = sample_point(s)
    if p is not None:
        assert s.satisfied_by(p)
    else:
        assert not is_feasible(s)

"""Native C backend: parity with the Python kernels, OpenMP flavours,
artifact caching, and fallback behaviour.

Every test is toolchain-tolerant: where no C compiler exists the backend
falls back to the Python kernel (with a NativeBackendWarning), and the
numerical assertions hold either way.  Tests that specifically exercise
the *native* path first check ``find_compiler()`` and skip without one.
"""

from __future__ import annotations

import os
import warnings

import numpy as np
import pytest

from repro.core import NativeBackendWarning, PlanError, compile_kernel
from repro.core import backend as be
from repro.formats import as_format
from repro.formats.generate import lower_triangular_of, random_sparse
from repro.instrument import INSTR
from repro.ir.kernels import ALL_KERNELS

FORMATS = ["csr", "csc", "coo", "dia", "ell", "jad", "bsr", "msr"]

N = 12  # even, so bsr block_size=2 tiles exactly


def _fmt(matrix, name):
    kwargs = {"block_size": 2} if name == "bsr" else {}
    return as_format(matrix, name, **kwargs)


@pytest.fixture(scope="module")
def square():
    return random_sparse(N, N, density=0.35, seed=42).to_dense()


@pytest.fixture(scope="module")
def lower():
    return lower_triangular_of(random_sparse(N, N, 0.35, seed=7))


def _compile_pair(kernel_name, array_name, fmt, parallel="none"):
    """(python kernel, c kernel) for the same program/bindings."""
    prog = ALL_KERNELS[kernel_name]()
    kp = compile_kernel(prog, {array_name: fmt})
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", NativeBackendWarning)
        kc = compile_kernel(ALL_KERNELS[kernel_name](), {array_name: fmt},
                            backend="c", parallel=parallel)
    return kp, kc


class TestParity:
    """backend="c" must be numerically identical to backend="python"
    across the full format x kernel matrix (acceptance criterion)."""

    @pytest.mark.parametrize("fmt_name", FORMATS)
    def test_mvm(self, fmt_name, square, rng):
        A = _fmt(square, fmt_name)
        kp, kc = _compile_pair("mvm", "A", A)
        x = rng.random(N)
        yp, yc = np.zeros(N), np.zeros(N)
        params = {"m": N, "n": N}
        kp({"A": A, "x": x, "y": yp}, params)
        kc({"A": A, "x": x, "y": yc}, params)
        assert np.array_equal(yp, yc)

    @pytest.mark.parametrize("fmt_name", FORMATS)
    def test_ts_lower(self, fmt_name, lower, rng):
        try:
            L = _fmt(lower, fmt_name)
        except (ValueError, NotImplementedError) as e:
            pytest.skip(f"{fmt_name} cannot hold this operand: {e}")
        try:
            kp, kc = _compile_pair("ts_lower", "L", L)
        except PlanError as e:
            pytest.skip(f"no legal plan for ts on {fmt_name}: {e}")
        b = rng.random(N)
        bp, bc = b.copy(), b.copy()
        params = {"m": N, "n": N}
        kp({"L": L, "b": bp}, params)
        kc({"L": L, "b": bc}, params)
        assert np.array_equal(bp, bc)

    def test_run_also_dispatches_native(self, square, rng):
        A = _fmt(square, "csr")
        kp, kc = _compile_pair("mvm", "A", A)
        x = rng.random(N)
        yp, yc = np.zeros(N), np.zeros(N)
        kp.run({"A": A, "x": x, "y": yp}, {"m": N, "n": N})
        kc.run({"A": A, "x": x, "y": yc}, {"m": N, "n": N})
        assert np.array_equal(yp, yc)

    def test_int32_indices(self, square, rng):
        A = _fmt(square, "csr")
        for name in ("rowptr", "colind"):
            setattr(A, name, getattr(A, name).astype(np.int32))
        kp, kc = _compile_pair("mvm", "A", A)
        x = rng.random(N)
        yp, yc = np.zeros(N), np.zeros(N)
        kp({"A": A, "x": x, "y": yp}, {"m": N, "n": N})
        kc({"A": A, "x": x, "y": yc}, {"m": N, "n": N})
        assert np.array_equal(yp, yc)
        if kc.backend_used != "python":
            assert "int32_t *" in kc.c_source


@pytest.mark.skipif(be.find_compiler() is None, reason="no C compiler")
class TestOpenMP:
    def test_strict_parity(self, square, rng):
        A = _fmt(square, "csr")
        kp, kc = _compile_pair("mvm", "A", A, parallel="strict")
        x = rng.random(N)
        yp, yc = np.zeros(N), np.zeros(N)
        kp({"A": A, "x": x, "y": yp}, {"m": N, "n": N})
        kc({"A": A, "x": x, "y": yc}, {"m": N, "n": N})
        # strict DOALL loops reorder nothing within a reduction:
        # byte-identical results are required, not just allclose
        assert np.array_equal(yp, yc)
        if be.openmp_supported(be.find_compiler()):
            assert kc.backend_used == "c+openmp"
            assert "#pragma omp parallel for" in kc.c_source

    def test_atomic_parity(self, square, rng):
        A = _fmt(square, "csc")
        kp, kc = _compile_pair("mvm", "A", A, parallel="atomic")
        x = rng.random(N)
        yp, yc = np.zeros(N), np.zeros(N)
        kp({"A": A, "x": x, "y": yp}, {"m": N, "n": N})
        kc({"A": A, "x": x, "y": yc}, {"m": N, "n": N})
        # atomic accumulation may reassociate the reduction
        assert np.allclose(yp, yc, rtol=1e-12, atol=1e-14)
        if be.openmp_supported(be.find_compiler()):
            assert "#pragma omp atomic" in kc.c_source

    def test_sequential_kernel_has_no_pragmas(self, lower):
        L = _fmt(lower, "csr")
        _, kc = _compile_pair("ts_lower", "L", L, parallel="strict")
        if kc.backend_used == "python":
            pytest.skip("native path unavailable")
        # forward substitution has no strict DOALL loop
        assert "#pragma omp parallel for" not in kc.c_source


class TestObservability:
    def test_repr_records_backend(self, square):
        A = _fmt(square, "csr")
        _, kc = _compile_pair("mvm", "A", A)
        r = repr(kc)
        if kc.fallback_reason is None:
            assert "backend=c->c" in r
        else:
            assert "backend=c->python-fallback" in r

    def test_python_backend_repr_unchanged(self, square):
        A = _fmt(square, "csr")
        kp, _ = _compile_pair("mvm", "A", A)
        assert "backend=" not in repr(kp)

    def test_run_counters(self, square, rng):
        A = _fmt(square, "csr")
        _, kc = _compile_pair("mvm", "A", A)
        x = rng.random(N)
        before = INSTR.snapshot()["counters"]
        kc({"A": A, "x": x, "y": np.zeros(N)}, {"m": N, "n": N})
        after = INSTR.snapshot()["counters"]
        bumped = "backend.run.native" if kc.backend_used != "python" \
            else "backend.run.python"
        assert after.get(bumped, 0) == before.get(bumped, 0) + 1

    def test_lowering_fallback_is_observable(self, lower, rng):
        # COO triangular solve plans through a sorted enumeration, which
        # the lowering rejects: the kernel must fall back, record why,
        # and still compute the right answer
        L = _fmt(lower, "coo")
        prog = ALL_KERNELS["ts_lower"]()
        with pytest.warns(NativeBackendWarning):
            kc = compile_kernel(prog, {"L": L}, backend="c", cache="off")
        assert kc.backend_used == "python"
        assert kc.fallback_reason is not None
        assert kc.fallback_reason.startswith("lowering:")
        assert "python-fallback" in repr(kc)
        b = rng.random(N)
        got = b.copy()
        kc({"L": L, "b": got}, {"m": N, "n": N})
        kp = compile_kernel(ALL_KERNELS["ts_lower"](), {"L": L})
        want = b.copy()
        kp({"L": L, "b": want}, {"m": N, "n": N})
        assert np.array_equal(got, want)


class TestFallback:
    def test_no_toolchain_falls_back(self, square, rng, monkeypatch):
        """With no C compiler every kernel still works (acceptance
        criterion: no hard dependency on a toolchain)."""
        monkeypatch.setenv("REPRO_CC", "none")
        be.reset_toolchain_cache()
        try:
            A = _fmt(square, "csr")
            before = INSTR.get("native.fallback.toolchain")
            with pytest.warns(NativeBackendWarning):
                kc = compile_kernel(ALL_KERNELS["mvm"](), {"A": A},
                                    backend="c", cache="off")
            assert kc.backend_used == "python"
            assert kc.fallback_reason.startswith("toolchain:")
            assert INSTR.get("native.fallback.toolchain") == before + 1
            x = rng.random(N)
            y = np.zeros(N)
            kc({"A": A, "x": x, "y": y}, {"m": N, "n": N})
            assert np.allclose(y, square @ x)
        finally:
            monkeypatch.delenv("REPRO_CC", raising=False)
            be.reset_toolchain_cache()

    def test_invalid_backend_rejected(self, square):
        with pytest.raises(ValueError, match="backend"):
            compile_kernel(ALL_KERNELS["mvm"](), {"A": _fmt(square, "csr")},
                           backend="fortran")
        with pytest.raises(ValueError, match="parallel"):
            compile_kernel(ALL_KERNELS["mvm"](), {"A": _fmt(square, "csr")},
                           parallel="speculative")


class TestFloorDiv:
    """Satellite: Python // floors, C / truncates toward zero — both the
    C-like renderer and the native lowering must be floor-correct."""

    def test_renderer_emits_fdiv(self):
        from repro.codegen.csource import python_to_c_like

        src = "def kernel(arrays, params):\n    a = b // 2\n"
        c = python_to_c_like(src)
        assert "_fdiv(b, 2)" in c
        assert "static long _fdiv" in c  # declared, so the text stands alone
        assert "(b / 2)" not in c

    @pytest.mark.skipif(be.find_compiler() is None, reason="no C compiler")
    def test_native_fdiv_floors_negative_operands(self):
        import ctypes

        from repro.codegen import native

        src = (native._helper_fdiv() +
               "\nvoid kernel(int64_t *out, int64_t a, int64_t b)"
               " { out[0] = _fdiv(a, b); }\n")
        src = "#include <stdint.h>\n" + src
        fn, _ = be.compile_native_function(src, want_openmp=False,
                                           cache_mode="off")
        fn.argtypes = [ctypes.c_void_p, ctypes.c_int64, ctypes.c_int64]
        fn.restype = None
        out = np.zeros(1, dtype=np.int64)
        for a in (-7, -1, 0, 1, 7):
            for b in (-3, -2, 2, 3):
                fn(out.ctypes.data, a, b)
                assert out[0] == a // b, (a, b)


@pytest.mark.skipif(be.find_compiler() is None, reason="no C compiler")
class TestArtifactCache:
    def _compile_c(self, square, cache):
        A = _fmt(square, "csr")
        return compile_kernel(ALL_KERNELS["mvm"](), {"A": A}, backend="c",
                              cache=cache), A

    def test_disk_artifact_written_and_reloaded(self, square, rng,
                                                monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        be.reset_toolchain_cache()
        kc, A = self._compile_c(square, "disk")
        assert kc.backend_used != "python"
        sos = list(tmp_path.rglob("*.so"))
        assert len(sos) == 1, "exactly one .so artifact persisted"
        assert sos[0].parent.name == sos[0].name[:2], "sharded by digest prefix"

        # a fresh process would have an empty memory layer: simulate by
        # clearing it, then recompile — must be served from disk
        be.reset_toolchain_cache()
        before = INSTR.get("native.so_cache.hits.disk")
        kc2, _ = self._compile_c(square, "disk")
        assert INSTR.get("native.so_cache.hits.disk") == before + 1
        x = rng.random(N)
        y = np.zeros(N)
        kc2({"A": A, "x": x, "y": y}, {"m": N, "n": N})
        assert np.allclose(y, square @ x)
        be.reset_toolchain_cache()

    def test_corrupt_artifact_is_a_miss(self, square, rng, monkeypatch,
                                        tmp_path):
        # the artifact must come from ANOTHER process: dlopen dedups
        # already-loaded objects by path, so a .so this process compiled
        # and loaded would never be re-read from disk
        import subprocess
        import sys

        env = dict(os.environ, REPRO_CACHE_DIR=str(tmp_path),
                   PYTHONPATH="src")
        seed = (
            "import numpy as np\n"
            "from repro.core import compile_kernel\n"
            "from repro.formats import as_format\n"
            "from repro.formats.generate import random_sparse\n"
            "from repro.ir.kernels import ALL_KERNELS\n"
            f"A = as_format(random_sparse({N}, {N}, density=0.35, "
            "seed=42).to_dense(), 'csr')\n"
            "k = compile_kernel(ALL_KERNELS['mvm'](), {'A': A}, "
            "backend='c', cache='disk')\n"
            "assert k.backend_used != 'python', k.fallback_reason\n"
        )
        subprocess.run([sys.executable, "-c", seed], env=env, check=True,
                       cwd=os.path.dirname(os.path.dirname(
                           os.path.abspath(__file__))))
        [so] = tmp_path.rglob("*.so")
        so.write_bytes(b"not an ELF object")

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        be.reset_toolchain_cache()
        before = INSTR.get("native.so_cache.corrupt")
        kc, A = self._compile_c(square, "disk")
        assert INSTR.get("native.so_cache.corrupt") == before + 1
        assert kc.backend_used != "python"
        x = rng.random(N)
        y = np.zeros(N)
        kc({"A": A, "x": x, "y": y}, {"m": N, "n": N})
        assert np.allclose(y, square @ x)
        be.reset_toolchain_cache()

    def test_memory_layer_hit(self, square):
        kc, _ = self._compile_c(square, "off")
        assert kc.backend_used != "python"
        before = INSTR.get("native.so_cache.hits.memory")
        kc2, _ = self._compile_c(square, "off")
        assert INSTR.get("native.so_cache.hits.memory") == before + 1
        assert kc2.backend_used != "python"

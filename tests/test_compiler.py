"""End-to-end compiler correctness: every kernel x format x backend against
the dense reference interpreter.

This is the core acceptance suite: the compiled sparse code (both the plan
interpreter and the generated specialized Python) must compute exactly what
the dense program computes on the densified matrix.
"""

import numpy as np
import pytest

from repro.core import PlanError, compile_kernel
from repro.formats import as_format
from repro.formats.generate import (
    lower_triangular_of,
    random_sparse,
    upper_triangular_of,
)
from repro.ir import execute_dense
from repro.ir.kernels import ALL_KERNELS
from tests.conftest import compile_cached

MVM_FORMATS = ["csr", "csc", "coo", "dense", "ell", "dia", "jad", "bsr", "msr"]
TS_FORMATS = ["csr", "csc", "coo", "jad", "msr", "ell", "dense"]
LIGHT_FORMATS = ["csr", "coo", "dia", "jad", "msr"]


def run_both_backends(kernel_name, fmt_name, matrix_coo, array_name,
                      make_arrays, params):
    """Compile once; execute dense reference, interpreter, and generated
    code; all three must agree."""
    kwargs = {"block_size": 2} if fmt_name == "bsr" else {}

    def instance():
        inst = as_format(matrix_coo, fmt_name, **kwargs)
        if inst is matrix_coo:
            # identity conversions return the instance itself; the
            # in-place kernels below need independent storage per backend
            inst = type(inst).from_coo(*matrix_coo.to_coo_arrays(),
                                       matrix_coo.shape, **kwargs)
        return inst

    fmt_i = instance()
    fmt_g = instance()
    dense = fmt_i.to_dense() if fmt_name in ("dia", "msr", "bsr", "dense") \
        else as_format(matrix_coo, "dense").data
    k = compile_cached(kernel_name, fmt_name, fmt_i, array_name)

    arrays_d = make_arrays(dense.copy())
    arrays_i = make_arrays(fmt_i)
    arrays_g = make_arrays(fmt_g)
    prog = ALL_KERNELS[kernel_name]()
    execute_dense(prog, arrays_d, params)
    k.run(arrays_i, params)      # plan interpreter
    k(arrays_g, params)          # generated specialized code

    for name in arrays_d:
        if name == array_name:
            continue
        assert np.allclose(arrays_i[name], arrays_d[name]), \
            f"interp {kernel_name}/{fmt_name}/{name}"
        assert np.allclose(arrays_g[name], arrays_d[name]), \
            f"gen {kernel_name}/{fmt_name}/{name}"
    # in-place sparse writes: compare the matrices themselves
    if array_name in arrays_d:
        assert np.allclose(arrays_i[array_name].to_dense(), arrays_d[array_name]), \
            f"interp matrix {kernel_name}/{fmt_name}"
        assert np.allclose(arrays_g[array_name].to_dense(), arrays_d[array_name]), \
            f"gen matrix {kernel_name}/{fmt_name}"


@pytest.fixture(scope="module")
def rect():
    a = random_sparse(6, 8, density=0.3, seed=11)
    d = a.to_dense()
    d[3, :] = 0.0  # empty row
    d[:, 5] = 0.0  # empty column
    return as_format(d, "coo")


@pytest.fixture(scope="module")
def lower():
    return lower_triangular_of(random_sparse(8, 8, 0.3, seed=3))


@pytest.fixture(scope="module")
def upper():
    return upper_triangular_of(random_sparse(8, 8, 0.3, seed=4))


_rngs = np.random.default_rng(99)
_x8 = _rngs.random(8)
_x6 = _rngs.random(6)
_garbage6 = _rngs.random(6) * 10
_garbage8 = _rngs.random(8) * 10


class TestMvm:
    @pytest.mark.parametrize("fmt", MVM_FORMATS)
    def test_mvm(self, fmt, rect):
        run_both_backends(
            "mvm", fmt, rect, "A",
            lambda A: {"A": A, "x": _x8.copy(), "y": _garbage6.copy()},
            {"m": 6, "n": 8})

    @pytest.mark.parametrize("fmt", LIGHT_FORMATS)
    def test_mvm_acc(self, fmt, rect):
        run_both_backends(
            "mvm_acc", fmt, rect, "A",
            lambda A: {"A": A, "x": _x8.copy(), "y": _garbage6.copy()},
            {"m": 6, "n": 8})

    @pytest.mark.parametrize("fmt", MVM_FORMATS)
    def test_mvm_t(self, fmt, rect):
        run_both_backends(
            "mvm_t", fmt, rect, "A",
            lambda A: {"A": A, "x": _x6.copy(), "y": _garbage8.copy()},
            {"m": 6, "n": 8})

    @pytest.mark.parametrize("fmt", ["csr", "coo", "jad"])
    def test_two_references_share_enumeration(self, fmt, rect):
        run_both_backends(
            "smvm_two", fmt, rect, "A",
            lambda A: {"A": A, "x": _x8.copy(), "y": _garbage6.copy()},
            {"m": 6, "n": 8})


class TestTriangularSolve:
    @pytest.mark.parametrize("fmt", TS_FORMATS)
    def test_ts_lower(self, fmt, lower):
        b = np.random.default_rng(1).random(8)
        run_both_backends(
            "ts_lower", fmt, lower, "L",
            lambda L: {"L": L, "b": b.copy()},
            {"n": 8})

    @pytest.mark.parametrize("fmt", ["csr", "csc", "jad", "msr", "coo"])
    def test_ts_lower_row(self, fmt, lower):
        b = np.random.default_rng(2).random(8)
        run_both_backends(
            "ts_lower_row", fmt, lower, "L",
            lambda L: {"L": L, "b": b.copy()},
            {"n": 8})

    @pytest.mark.parametrize("fmt", ["csr", "csc", "jad", "coo"])
    def test_ts_upper(self, fmt, upper):
        b = np.random.default_rng(3).random(8)
        run_both_backends(
            "ts_upper", fmt, upper, "U",
            lambda U: {"U": U, "b": b.copy()},
            {"n": 8})

    def test_solution_actually_solves(self, lower):
        fmt = as_format(lower, "jad")
        k = compile_cached("ts_lower", "jad", fmt, "L")
        b = np.random.default_rng(4).random(8)
        bs = b.copy()
        k({"L": fmt, "b": bs}, {"n": 8})
        assert np.allclose(lower.to_dense() @ bs, b, atol=1e-10)


class TestOtherKernels:
    @pytest.mark.parametrize("fmt", LIGHT_FORMATS)
    def test_row_sums(self, fmt, rect):
        run_both_backends(
            "row_sums", fmt, rect, "A",
            lambda A: {"A": A, "s": _garbage6.copy()},
            {"m": 6, "n": 8})

    @pytest.mark.parametrize("fmt", LIGHT_FORMATS)
    def test_col_sums(self, fmt, rect):
        run_both_backends(
            "col_sums", fmt, rect, "A",
            lambda A: {"A": A, "s": _garbage8.copy()},
            {"m": 6, "n": 8})

    @pytest.mark.parametrize("fmt", LIGHT_FORMATS)
    def test_frobenius(self, fmt, rect):
        run_both_backends(
            "frobenius", fmt, rect, "A",
            lambda A: {"A": A, "acc": np.array(0.0)},
            {"m": 6, "n": 8})

    @pytest.mark.parametrize("fmt", LIGHT_FORMATS + ["ell", "csc"])
    def test_scale_in_place(self, fmt, rect):
        run_both_backends(
            "scale", fmt, rect, "A",
            lambda A: {"A": A},
            {"m": 6, "n": 8, "alpha": 3})

    @pytest.mark.parametrize("fmt", ["csr", "coo", "dia", "msr"])
    def test_diag_extract(self, fmt):
        sq = random_sparse(6, 6, density=0.4, seed=12)
        run_both_backends(
            "diag_extract", fmt, sq, "A",
            # zero-preservation contract: d is pre-initialized consistently
            lambda A: {"A": A, "d": np.zeros(6)},
            {"n": 6})


class TestCompilerApi:
    def test_unknown_binding_rejected(self, rect):
        from repro.ir.kernels import mvm

        with pytest.raises(KeyError):
            compile_kernel(mvm(), {"Z": as_format(rect, "csr")})

    def test_vector_binding_rejected(self, rect):
        from repro.ir.kernels import mvm

        with pytest.raises(ValueError):
            compile_kernel(mvm(), {"x": as_format(rect, "csr")})

    def test_non_format_binding_rejected(self, rect):
        from repro.ir.kernels import mvm

        with pytest.raises(TypeError):
            compile_kernel(mvm(), {"A": np.zeros((2, 2))})

    def test_missing_array_at_run(self, rect):
        fmt = as_format(rect, "csr")
        k = compile_cached("mvm", "csr", fmt, "A")
        with pytest.raises(KeyError):
            k.run({"A": fmt}, {"m": 6, "n": 8})

    def test_wrong_format_instance_at_run(self, rect):
        fmt = as_format(rect, "csr")
        k = compile_cached("mvm", "csr", fmt, "A")
        with pytest.raises(TypeError):
            k({"A": as_format(rect, "csc"), "x": _x8, "y": _garbage6.copy()},
              {"m": 6, "n": 8})

    def test_kernel_reusable_across_matrices(self):
        """A kernel compiled for one CSR matrix runs on another CSR matrix
        of different size (the format, not the instance, is the contract)."""
        from repro.ir.kernels import mvm

        a1 = random_sparse(6, 8, 0.3, seed=1)
        f1 = as_format(a1, "csr")
        k = compile_kernel(mvm(), {"A": f1})
        a2 = random_sparse(9, 4, 0.4, seed=2)
        f2 = as_format(a2, "csr")
        x = np.random.default_rng(0).random(4)
        y = np.zeros(9)
        k({"A": f2, "x": x, "y": y}, {"m": 9, "n": 4})
        assert np.allclose(y, a2.to_dense() @ x)

    def test_repr(self, rect):
        fmt = as_format(rect, "csr")
        k = compile_cached("mvm", "csr", fmt, "A")
        assert "mvm" in repr(k) and "csr" in repr(k)


class TestParamInference:
    """Default ``param_values`` are derived per declared array dimension
    (not from whichever binding happens to iterate first)."""

    def test_single_matrix_mvm(self):
        from repro.core.compiler import infer_param_values
        from repro.ir.kernels import mvm

        fmt = as_format(random_sparse(6, 8, 0.3, seed=1), "csr")
        pv = infer_param_values(mvm(), {"A": fmt})
        assert pv == {"m": 6, "n": 8}

    def test_transposed_access(self):
        """A program reading A[j][i] with i: 0..m, j: 0..n pins n to the
        row count and m to the column count; the legacy first-binding
        heuristic (m=rows, n=cols always) got this wrong for rectangular
        matrices."""
        from repro.core.compiler import infer_param_values
        from repro.ir.parser import parse_program

        prog = parse_program(
            """
            tmvm(m, n; A: matrix, x: vector, y: vector) {
                for i = 0 : m {
                    y[i] = 0;
                    for j = 0 : n {
                        y[i] = y[i] + A[j][i] * x[j];
                    }
                }
            }
            """
        )
        fmt = as_format(random_sparse(6, 8, 0.3, seed=1), "csr")
        pv = infer_param_values(prog, {"A": fmt})
        assert pv["n"] == 6 and pv["m"] == 8

    def test_conflicting_shapes_raise(self):
        """Two bindings implying different values for one parameter is a
        real shape mismatch and must not be guessed over silently."""
        from repro.ir.kernels import add_mvm

        A = as_format(random_sparse(6, 8, 0.3, seed=1), "csr")
        B = as_format(random_sparse(6, 5, 0.3, seed=2), "csr")
        with pytest.raises(ValueError, match="conflicting"):
            compile_kernel(add_mvm(), {"A": A, "B": B}, cache="off")

    def test_multi_matrix_consistent_shapes(self):
        from repro.core.compiler import infer_param_values
        from repro.ir.kernels import add_mvm

        A = as_format(random_sparse(6, 8, 0.3, seed=1), "csr")
        B = as_format(random_sparse(6, 8, 0.3, seed=2), "csc")
        pv = infer_param_values(add_mvm(), {"A": A, "B": B})
        assert pv == {"m": 6, "n": 8}

    def test_explicit_param_values_bypass_inference(self):
        from repro.ir.kernels import add_mvm

        A = as_format(random_sparse(6, 8, 0.3, seed=1), "csr")
        B = as_format(random_sparse(6, 5, 0.3, seed=2), "csr")
        # conflicting shapes, but explicit sizes silence the inference
        k = compile_kernel(add_mvm(), {"A": A, "B": B},
                           param_values={"m": 6, "n": 8}, cache="off")
        assert k.plan is not None

    def test_square_diag_extract_still_infers(self):
        from repro.core.compiler import infer_param_values
        from repro.ir.kernels import diag_extract

        fmt = as_format(random_sparse(6, 6, 0.4, seed=3), "csr")
        pv = infer_param_values(diag_extract(), {"A": fmt})
        assert pv["n"] == 6


class TestRunCallParity:
    def test_numpy_integer_params_accepted_by_run(self, rect):
        """run() must coerce params exactly like __call__ does."""
        fmt = as_format(rect, "csr")
        k = compile_cached("mvm", "csr", fmt, "A")
        x = np.random.default_rng(1).random(8)
        y_run = np.zeros(6)
        y_call = np.zeros(6)
        params = {"m": np.int64(6), "n": np.int64(8)}
        k.run({"A": fmt, "x": x, "y": y_run}, params)
        k({"A": fmt, "x": x, "y": y_call}, dict(params))
        assert np.allclose(y_run, fmt.to_dense() @ x)
        assert np.allclose(y_run, y_call)

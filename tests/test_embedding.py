"""Statement spaces, embeddings, legality, redundancy (paper Section 3-4)."""

import numpy as np
import pytest

from repro.analysis import dependences
from repro.core import (
    AT,
    BEFORE,
    DEC,
    INC,
    DimEmbedding,
    ProductDim,
    ProductSpace,
    SpaceEmbedding,
    analyze_order,
    build_copies,
    check_legality,
    g_matrix,
    redundant_dims,
    required_directions,
)
from repro.formats import as_format
from repro.ir.kernels import mvm, ts_lower, ts_upper
from repro.polyhedra.linexpr import LinExpr


def _ts_space(fmt_name, lower_tri, order):
    """Build the TS product space with the paper's join structure: fused
    row dim, fused column dim, then iteration dims."""
    prog = ts_lower()
    fmt = as_format(lower_tri, fmt_name)
    path_id = fmt.paths()[0].path_id if fmt_name != "jad" else "rows"
    copies = build_copies(prog, {"L": fmt}, {("S1", 2): path_id, ("S2", 2): path_id})
    s1, s2 = copies
    ref1 = s1.refs[0]
    ref2 = s2.refs[0]
    ax = ref1.path.axis_names  # ("r","c") for csr/jad, ("c","r") for csc
    dims = [
        ProductDim(f"g0.{ax[0]}", members=[(ref1, ax[0]), (ref2, ax[0])]),
        ProductDim(f"g0.{ax[1]}", members=[(ref1, ax[1]), (ref2, ax[1])]),
        ProductDim("it.S1.j", owner_var=s1.qual("j")),
        ProductDim("it.S2.j", owner_var=s2.qual("j")),
        ProductDim("it.S2.i", owner_var=s2.qual("i")),
    ]
    space = ProductSpace(dims, copies)
    v = LinExpr.variable
    per_copy = {
        "S1": [
            DimEmbedding(AT, v(ref1.axis_var(ax[0]))),
            DimEmbedding(AT, v(ref1.axis_var(ax[1]))),
            DimEmbedding(AT, v(s1.qual("j"))),
            DimEmbedding(AT, v(s1.qual("j"))),   # aligned j1 == j2
            DimEmbedding(AT, v(s1.qual("j"))),   # aligned j1 == i2
        ],
        "S2": [
            DimEmbedding(AT, v(ref2.axis_var(ax[0]))),
            DimEmbedding(AT, v(ref2.axis_var(ax[1]))),
            DimEmbedding(AT, v(s2.qual("j"))),
            DimEmbedding(AT, v(s2.qual("j"))),
            DimEmbedding(AT, v(s2.qual("i"))),
        ],
    }
    return prog, space, SpaceEmbedding(space, per_copy)


class TestCopies:
    def test_simple_binding(self, lower_tri):
        fmt = as_format(lower_tri, "csr")
        copies = build_copies(ts_lower(), {"L": fmt}, {})
        assert [c.label for c in copies] == ["S1", "S2"]
        assert len(copies[0].refs) == 1
        assert copies[0].refs[0].path.path_id == "rows"

    def test_union_splits(self, lower_tri):
        fmt = as_format(lower_tri, "msr")
        copies = build_copies(ts_lower(), {"L": fmt}, {})
        assert [c.label for c in copies] == [
            "S1[u0]", "S1[u1]", "S2[u0]", "S2[u1]"]

    def test_relation_couples_axes(self, lower_tri):
        fmt = as_format(lower_tri, "dia")
        copies = build_copies(ts_lower(), {"L": fmt}, {})
        s1 = copies[0]
        rel = s1.relation()
        # DIA relation: d + o == j and o == j force d == 0 for the L[j][j]
        # reference
        from repro.polyhedra.fm import bounds_of

        d_var = s1.refs[0].axis_var("d")
        lo, hi = bounds_of(rel, LinExpr.variable(d_var))
        assert lo == 0 and hi == 0


class TestLegality:
    def test_paper_embedding_legal(self, lower_tri):
        prog, space, emb = _ts_space("csr", lower_tri, "rows")
        deps = dependences(prog)
        assert check_legality(emb, deps)
        oa = analyze_order(emb, deps)
        assert oa.legal

    def test_csr_requires_increasing_rows_and_cols(self, lower_tri):
        prog, space, emb = _ts_space("csr", lower_tri, "rows")
        deps = dependences(prog)
        oa = analyze_order(emb, deps)
        # forward substitution: both data dims must run forward
        assert oa.directions.get(0) == INC
        assert oa.directions.get(1) == INC
        req = required_directions(emb, deps)
        assert req == {0, 1}

    def test_upper_solve_requires_decreasing(self, upper_tri):
        """Backward substitution forces decreasing enumeration — the
        all-increasing check fails but direction solving succeeds."""
        prog = ts_upper()
        fmt = as_format(upper_tri, "csr")
        copies = build_copies(prog, {"U": fmt}, {})
        s1, s2 = copies
        r1, r2 = s1.refs[0], s2.refs[0]
        dims = [
            ProductDim("g0.r", members=[(r1, "r"), (r2, "r")]),
            ProductDim("g0.c", members=[(r1, "c"), (r2, "c")]),
            ProductDim("it.S1.jr", owner_var=s1.qual("jr")),
            ProductDim("it.S2.jr", owner_var=s2.qual("jr")),
            ProductDim("it.S2.ir", owner_var=s2.qual("ir")),
        ]
        space = ProductSpace(dims, copies)
        v = LinExpr.variable
        per_copy = {
            "S1": [DimEmbedding(AT, v(r1.axis_var("r"))),
                   DimEmbedding(AT, v(r1.axis_var("c"))),
                   DimEmbedding(AT, v(s1.qual("jr"))),
                   DimEmbedding(AT, v(s1.qual("jr"))),
                   DimEmbedding(AT, v(s1.qual("jr")))],
            "S2": [DimEmbedding(AT, v(r2.axis_var("r"))),
                   DimEmbedding(AT, v(r2.axis_var("c"))),
                   DimEmbedding(AT, v(s2.qual("jr"))),
                   DimEmbedding(AT, v(s2.qual("jr"))),
                   DimEmbedding(AT, v(s2.qual("ir")))],
        }
        emb = SpaceEmbedding(space, per_copy)
        deps = dependences(prog)
        assert not check_legality(emb, deps)  # all-increasing fails
        oa = analyze_order(emb, deps)
        assert oa.legal
        assert oa.directions.get(0) == DEC

    def test_illegal_placement_rejected(self, small_rect):
        """Placing the initialization AFTER the accumulation loop breaks
        the flow dependence."""
        prog = mvm()
        fmt = as_format(small_rect, "csr")
        copies = build_copies(prog, {"A": fmt}, {})
        s1, s2 = copies
        ref = s2.refs[0]
        from repro.core import AFTER

        dims = [
            ProductDim("g0.r", members=[(ref, "r")]),
            ProductDim("g0.c", members=[(ref, "c")]),
            ProductDim("it.S1.i", owner_var=s1.qual("i")),
            ProductDim("it.S2.i", owner_var=s2.qual("i")),
            ProductDim("it.S2.j", owner_var=s2.qual("j")),
        ]
        space = ProductSpace(dims, copies)
        v = LinExpr.variable
        good = {
            "S1": [DimEmbedding(AT, v(s1.qual("i"))),
                   DimEmbedding(BEFORE),
                   DimEmbedding(AT, v(s1.qual("i"))),
                   DimEmbedding(AT, v(s1.qual("i"))),
                   DimEmbedding(BEFORE)],
            "S2": [DimEmbedding(AT, v(ref.axis_var("r"))),
                   DimEmbedding(AT, v(ref.axis_var("c"))),
                   DimEmbedding(AT, v(s2.qual("i"))),
                   DimEmbedding(AT, v(s2.qual("i"))),
                   DimEmbedding(AT, v(s2.qual("j")))],
        }
        deps = dependences(prog)
        assert analyze_order(SpaceEmbedding(space, good), deps).legal
        bad = {k: list(vv) for k, vv in good.items()}
        bad["S1"][1] = DimEmbedding(AFTER)
        assert not analyze_order(SpaceEmbedding(space, bad), deps).legal


class TestRedundancy:
    def test_paper_figure7(self, lower_tri):
        """Only the two fused data dimensions are non-redundant in the TS
        product space (paper Figure 7)."""
        prog, space, emb = _ts_space("csr", lower_tri, "rows")
        verdicts = redundant_dims(space, emb)
        assert verdicts == [False, False, True, True, True]

    def test_g_matrix_shape(self, lower_tri):
        prog, space, emb = _ts_space("csr", lower_tri, "rows")
        G, row_names, cols = g_matrix(space, emb)
        assert len(row_names) == 5
        assert G.shape[0] == 5

"""Programs with several sparse matrices, each in its own format, and
sparse-times-dense matrix multiplication."""

import numpy as np
import pytest

from repro.core import compile_kernel
from repro.formats import as_format
from repro.formats.generate import random_sparse
from repro.ir import execute_dense
from repro.ir.kernels import add_mvm, spmm

_kernel_cache = {}


def _compiled(key, prog, bindings):
    if key not in _kernel_cache:
        _kernel_cache[key] = compile_kernel(prog, bindings)
    return _kernel_cache[key]


@pytest.fixture(scope="module")
def mats():
    Ad = random_sparse(6, 8, 0.3, seed=1).to_dense()
    Bd = random_sparse(6, 8, 0.25, seed=2).to_dense()
    return Ad, Bd


@pytest.mark.slow
class TestAddMvm:
    @pytest.mark.parametrize("fa,fb", [("csr", "csc"), ("coo", "dia")])
    def test_mixed_formats(self, fa, fb, mats):
        Ad, Bd = mats
        A = as_format(Ad, fa)
        B = as_format(Bd, fb)
        k = _compiled(("add", fa, fb), add_mvm(), {"A": A, "B": B})
        x = np.random.default_rng(0).random(8)
        y = np.full(6, 9.0)
        yd = y.copy()
        execute_dense(add_mvm(), {"A": Ad.copy(), "B": Bd.copy(), "x": x,
                                  "y": yd}, {"m": 6, "n": 8})
        k({"A": A, "B": B, "x": x, "y": y}, {"m": 6, "n": 8})
        assert np.allclose(y, yd)
        assert np.allclose(y, (Ad + Bd) @ x)

    def test_each_matrix_gets_own_enumeration(self, mats):
        Ad, Bd = mats
        A = as_format(Ad, "csr")
        B = as_format(Bd, "csc")
        k = _compiled(("add", "csr", "csc"), add_mvm(), {"A": A, "B": B})
        drivers = set()

        from repro.core import LoopNode

        def walk(nodes):
            for n in nodes:
                if isinstance(n, LoopNode):
                    drivers.add(n.method.driver.array)
                    walk(n.before)
                    walk(n.body)
                    walk(n.after)

        walk(k.plan.nodes)
        assert drivers == {"A", "B"}


class TestSpmm:
    @pytest.mark.parametrize("fa", ["csr", "csc", "coo", "jad"])
    def test_sparse_times_dense(self, fa, mats):
        Ad, _ = mats
        A = as_format(Ad, fa)
        X = np.random.default_rng(1).random((8, 5))
        Y = np.full((6, 5), 7.0)
        Yd = Y.copy()
        k = _compiled(("spmm", fa), spmm(), {"A": A})
        execute_dense(spmm(), {"A": Ad.copy(), "X": X, "Y": Yd},
                      {"m": 6, "n": 8, "k": 5})
        k({"A": A, "X": X, "Y": Y}, {"m": 6, "n": 8, "k": 5})
        assert np.allclose(Y, Yd)
        assert np.allclose(Y, Ad @ X)

    def test_interpreter_agrees(self, mats):
        Ad, _ = mats
        A = as_format(Ad, "csr")
        X = np.random.default_rng(2).random((8, 5))
        Y1 = np.zeros((6, 5))
        Y2 = np.zeros((6, 5))
        k = _compiled(("spmm", "csr"), spmm(), {"A": A})
        k.run({"A": A, "X": X, "Y": Y1}, {"m": 6, "n": 8, "k": 5})
        k({"A": A, "X": X, "Y": Y2}, {"m": 6, "n": 8, "k": 5})
        assert np.allclose(Y1, Y2)

    def test_dmat_operand_cannot_be_bound(self, mats):
        Ad, _ = mats
        X = as_format(np.ones((8, 5)), "csr")
        with pytest.raises(ValueError, match="only matrices"):
            compile_kernel(spmm(), {"X": X})

"""Hypothesis property suite (satellite): format round-trips through
``convert()`` across all 10 formats, plus a differential compile oracle
— ``compile_kernel`` output must match ``blas/dense_ref`` on both
backends.

Determinism: every fast test runs with ``derandomize=True`` so a given
checkout always draws the same example sequence (seed-reproducible CI);
the slow-marked deep variant pins an explicit ``@seed`` and buys a much
larger example/shrink budget.

Exactness: matrix and vector entries are integer-valued floats (and
dyadic triangular diagonals), so every product/sum is exact in binary
floating point regardless of accumulation order — the oracle comparison
is bitwise, not ``allclose``.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest
from hypothesis import given, seed, settings
from hypothesis import strategies as st

from repro.blas import dense_ref
from repro.core import NativeBackendWarning, compile_kernel
from repro.core import backend as be
from repro.formats import FORMATS, as_format, convert
from repro.ir.kernels import mvm, ts_lower

ALL_FORMATS = list(FORMATS)  # all 10: dense ... sym

M, N = 6, 8  # even on both axes so bsr block_size=2 tiles exactly

FAST = settings(max_examples=20, deadline=None, derandomize=True)


def _fmt_kwargs(fmt_name):
    return {"block_size": 2} if fmt_name == "bsr" else {}


def build(fmt_name, dense):
    rows, cols = np.nonzero(dense)
    return FORMATS[fmt_name].from_coo(rows, cols, dense[rows, cols],
                                      dense.shape, **_fmt_kwargs(fmt_name))


def _to_dense(entries, m, n, symmetric):
    a = np.zeros((m, n))
    for r, c, v in entries:
        a[r, c] = float(v)
    if symmetric:
        low = np.tril(a)
        a = low + low.T - np.diag(np.diag(a))
    return a


def dense_matrices(m, n, symmetric=False):
    """Sparse m-by-n ndarrays with integer-valued float entries."""
    entry = st.tuples(st.integers(0, m - 1), st.integers(0, n - 1),
                      st.integers(-4, 4))
    return st.lists(entry, min_size=0, max_size=3 * max(m, n)).map(
        lambda es: _to_dense(es, m, n, symmetric))


def int_vectors(n):
    return st.lists(st.integers(-3, 3), min_size=n, max_size=n).map(
        lambda xs: np.array(xs, dtype=float))


def lower_tri_matrices(n):
    """Lower-triangular matrices whose diagonals are powers of two and
    off-diagonals are small integers: forward substitution stays exact."""
    diag = st.lists(st.sampled_from([1.0, 2.0, 4.0, -1.0, -2.0]),
                    min_size=n, max_size=n)
    off = st.lists(st.tuples(st.integers(0, n - 1), st.integers(0, n - 1),
                             st.integers(-3, 3)),
                   min_size=0, max_size=2 * n)
    def assemble(parts):
        d, entries = parts
        a = np.diag(np.array(d))
        for r, c, v in entries:
            if r != c:
                a[max(r, c), min(r, c)] = float(v)
        return a
    return st.tuples(diag, off).map(assemble)


def _shape(fmt_name):
    # sym stores one triangle of a symmetric matrix: square input only
    return (M, M) if fmt_name == "sym" else (M, N)


# ---------------------------------------------------------------------------
# convert() round trips
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("fmt_name", [f for f in ALL_FORMATS if f != "sym"])
@FAST
@given(dense_matrices(M, N))
def test_convert_round_trip(fmt_name, dense):
    """coo -> fmt -> dense and fmt -> csr -> dense preserve every value."""
    src = build("coo", dense)
    f = convert(src, fmt_name, **_fmt_kwargs(fmt_name))
    assert np.array_equal(f.to_dense(), dense)
    back = convert(f, "csr")
    assert np.array_equal(back.to_dense(), dense)


@FAST
@given(dense_matrices(M, M, symmetric=True))
def test_convert_round_trip_sym(dense):
    src = build("coo", dense)
    f = convert(src, "sym")
    assert np.array_equal(f.to_dense(), dense)
    assert np.array_equal(convert(f, "coo").to_dense(), dense)


@FAST
@given(dense_matrices(M, N))
def test_convert_chain_all_formats(dense):
    """One matrix threaded through every non-square-constrained format in
    sequence comes out intact."""
    f = as_format(dense, "dense")
    for fmt_name in ALL_FORMATS:
        if fmt_name == "sym":
            continue
        f = convert(f, fmt_name, **_fmt_kwargs(fmt_name))
        assert np.array_equal(f.to_dense(), dense), fmt_name


# ---------------------------------------------------------------------------
# differential oracle: compile_kernel vs blas/dense_ref, both backends
# ---------------------------------------------------------------------------

_kernels = {}


def kernel_for(fmt_name, which, backend):
    """Compile once per (format, kernel, backend); hypothesis varies data."""
    key = (fmt_name, which, backend)
    if key not in _kernels:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", NativeBackendWarning)
            if which == "mvm":
                m, n = _shape(fmt_name)
                probe = FORMATS[fmt_name].from_coo(
                    [0], [0], [1.0], (m, n), **_fmt_kwargs(fmt_name))
                _kernels[key] = compile_kernel(mvm(), {"A": probe},
                                               backend=backend)
            else:
                probe = FORMATS[fmt_name].from_coo(
                    list(range(M)), list(range(M)), [1.0] * M, (M, M))
                probe.annotate_triangular("lower")
                _kernels[key] = compile_kernel(ts_lower(), {"L": probe},
                                               backend=backend)
    return _kernels[key]


def backends():
    marks = [pytest.param("python")]
    marks.append(pytest.param(
        "c", marks=pytest.mark.skipif(be.find_compiler() is None,
                                      reason="no C compiler on PATH")))
    return marks


@pytest.mark.parametrize("backend", backends())
@pytest.mark.parametrize("fmt_name", ALL_FORMATS)
@FAST
@given(st.data())
def test_mvm_matches_dense_ref(fmt_name, backend, data):
    m, n = _shape(fmt_name)
    dense = data.draw(dense_matrices(m, n, symmetric=(fmt_name == "sym")))
    x = data.draw(int_vectors(n))
    f = build(fmt_name, dense)
    y = np.full(m, 123.0)  # poison: kernel must overwrite, not accumulate
    kernel_for(fmt_name, "mvm", backend)(
        {"A": f, "x": x, "y": y}, {"m": m, "n": n})
    assert np.array_equal(y, dense_ref.mvm(dense, x))


@pytest.mark.parametrize("backend", backends())
@pytest.mark.parametrize("fmt_name", ["csr", "jad"])
@FAST
@given(st.data())
def test_ts_matches_dense_ref(fmt_name, backend, data):
    dense = data.draw(lower_tri_matrices(M))
    b = data.draw(int_vectors(M))
    f = build(fmt_name, dense)
    f.annotate_triangular("lower")
    out = b.copy()
    kernel_for(fmt_name, "ts", backend)({"L": f, "b": out}, {"n": M})
    assert np.allclose(out, dense_ref.ts_lower(dense, b), rtol=0, atol=1e-12)


@pytest.mark.slow
@pytest.mark.parametrize("fmt_name", ALL_FORMATS)
@seed(20260805)
@settings(max_examples=200, deadline=None)
@given(st.data())
def test_mvm_deep_budget(fmt_name, data):
    """Slow leg: 10x the example/shrink budget, fixed seed for
    reproducible failures."""
    m, n = _shape(fmt_name)
    dense = data.draw(dense_matrices(m, n, symmetric=(fmt_name == "sym")))
    x = data.draw(int_vectors(n))
    f = build(fmt_name, dense)
    y = np.zeros(m)
    kernel_for(fmt_name, "mvm", "python")(
        {"A": f, "x": x, "y": y}, {"m": m, "n": n})
    assert np.array_equal(y, dense_ref.mvm(dense, x))

"""Utility helpers: ordering, timing, validation."""

import time

import pytest

from repro.util.ordering import interleavings, lex_compare, stable_unique
from repro.util.timing import best_of, mflops, time_and_rate
from repro.util.validation import check, require_positive, require_type


class TestOrdering:
    def test_lex_compare(self):
        assert lex_compare((1, 2), (1, 3)) == -1
        assert lex_compare((1, 3), (1, 2)) == 1
        assert lex_compare((1, 2), (1, 2)) == 0
        assert lex_compare((1,), (1, 0)) == -1
        assert lex_compare((1, 0), (1,)) == 1

    def test_interleavings_counts(self):
        out = list(interleavings([["a1", "a2"], ["b1"]]))
        # 3!/2!1! = 3 interleavings
        assert len(out) == 3
        for order in out:
            assert order.index("a1") < order.index("a2")

    def test_interleavings_empty(self):
        assert list(interleavings([])) == [()]
        assert list(interleavings([[], ["x"]])) == [("x",)]

    def test_interleavings_preserve_order(self):
        for order in interleavings([[1, 2, 3], [4, 5]]):
            assert order.index(1) < order.index(2) < order.index(3)
            assert order.index(4) < order.index(5)

    def test_stable_unique(self):
        assert stable_unique([3, 1, 3, 2, 1]) == [3, 1, 2]


class TestTiming:
    def test_best_of_returns_positive(self):
        t = best_of(lambda: sum(range(100)), repeats=2, min_time=0.001)
        assert t > 0

    def test_mflops(self):
        assert mflops(2_000_000, 1.0) == 2.0
        assert mflops(1, 0.0) == float("inf")

    def test_time_and_rate(self):
        sec, rate = time_and_rate(lambda: None, flops=1000, repeats=2)
        assert sec > 0 and rate > 0


class TestValidation:
    def test_check(self):
        check(True, "fine")
        with pytest.raises(ValueError):
            check(False, "boom")
        with pytest.raises(KeyError):
            check(False, "boom", KeyError)

    def test_require_type(self):
        assert require_type(3, int, "x") == 3
        with pytest.raises(TypeError):
            require_type("a", int, "x")
        assert require_type(3, (int, float), "x") == 3

    def test_require_positive(self):
        assert require_positive(2, "n") == 2
        with pytest.raises(ValueError):
            require_positive(0, "n")
        with pytest.raises(TypeError):
            require_positive(1.5, "n")


class TestBestOfCalibration:
    def test_cold_first_call_discarded(self):
        """The calibration pass includes the cold first call; with
        repeats > 1 that sample must not win."""
        state = {"first": True}

        def fn():
            if state["first"]:
                state["first"] = False      # cold call: instantaneous
            else:
                time.sleep(0.002)           # steady state: ~2ms

        t = best_of(fn, repeats=2, min_time=0.0001)
        assert t >= 0.0015                  # old code reported ~0 here

    def test_single_repeat_keeps_calibration_sample(self):
        calls = {"n": 0}

        def fn():
            calls["n"] += 1

        best_of(fn, repeats=1, min_time=0.0)
        assert calls["n"] == 1              # repeats=1: calibration is the sample

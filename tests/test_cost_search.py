"""Cost model (paper Figure 11) and the search driver (Sections 4.2-4.3)."""

import numpy as np
import pytest

from repro.analysis import dependences
from repro.core import compile_kernel
from repro.cost.model import plan_cost, step_totals
from repro.formats import as_format
from repro.ir.kernels import mvm, ts_lower
from repro.search import generate_candidates, search
from repro.search.candidates import _path_choices


class TestStepTotals:
    def test_csr(self, small_rect):
        f = as_format(small_rect, "csr")
        assert step_totals(f, "rows") == [6, f.nnz]

    def test_csc(self, small_rect):
        f = as_format(small_rect, "csc")
        assert step_totals(f, "cols") == [8, f.nnz]

    def test_coo(self, small_rect):
        f = as_format(small_rect, "coo")
        assert step_totals(f, "flat") == [f.nnz]

    def test_jad(self, small_rect):
        f = as_format(small_rect, "jad")
        assert step_totals(f, "flat") == [f.nnz]
        assert step_totals(f, "rows") == [6, f.nnz]

    def test_dense(self, small_rect):
        f = as_format(small_rect, "dense")
        assert step_totals(f, "rowmajor") == [6, 48]

    def test_measured_agrees_with_analytic(self, small_rect):
        from repro.cost.model import _measured_step_totals

        for name in ["csr", "csc", "coo", "dia"]:
            f = as_format(small_rect, name)
            pid = f.paths()[0].path_id
            assert _measured_step_totals(f, pid) == \
                [float(x) for x in step_totals(f, pid)]


class TestPlanCost:
    def test_cost_positive(self, small_rect):
        f = as_format(small_rect, "csr")
        k = compile_kernel(mvm(), {"A": f})
        assert k.cost > 0

    def test_best_not_worse_than_worst(self, lower_tri):
        f = as_format(lower_tri, "jad")
        best = compile_kernel(ts_lower(), {"L": f}, pick="best")
        worst = compile_kernel(ts_lower(), {"L": f}, pick="worst")
        assert best.cost <= worst.cost

    def test_cost_scales_with_nnz(self):
        from repro.formats.generate import random_sparse

        small = as_format(random_sparse(10, 10, 0.1, seed=1), "csr")
        big = as_format(random_sparse(100, 100, 0.1, seed=1), "csr")
        k_small = compile_kernel(mvm(), {"A": small})
        k_big = compile_kernel(mvm(), {"A": big})
        assert k_big.cost > k_small.cost


class TestSearch:
    def test_stats_consistent(self, lower_tri):
        f = as_format(lower_tri, "jad")
        deps = dependences(ts_lower())
        res = search(ts_lower(), {"L": f}, deps)
        s = res.stats
        assert s.generated >= s.legal >= s.lowered >= 1
        assert len(res.ranked) == s.lowered
        costs = [c for c, _, _ in res.ranked]
        assert costs == sorted(costs)

    def test_pick_first_stops_early(self, lower_tri):
        f = as_format(lower_tri, "jad")
        deps = dependences(ts_lower())
        res = search(ts_lower(), {"L": f}, deps, pick="first")
        assert res.stats.lowered == 1

    def test_heuristic_prunes_path_choices(self, lower_tri):
        """Section 4.3: one enumeration per matrix — the same-path
        heuristic collapses the per-reference path cross product."""
        f = as_format(lower_tri, "jad")
        with_h = list(_path_choices(ts_lower(), {"L": f}, True))
        without = list(_path_choices(ts_lower(), {"L": f}, False))
        assert len(with_h) == 2    # flat / rows, both references together
        assert len(without) == 4   # 2 refs x 2 paths

    def test_heuristics_shrink_candidates(self, lower_tri):
        f = as_format(lower_tri, "jad")
        deps = dependences(ts_lower())
        pruned = sum(1 for _ in generate_candidates(
            ts_lower(), {"L": f}, deps))
        full = sum(1 for _ in generate_candidates(
            ts_lower(), {"L": f}, deps, same_matrix_same_path=False))
        assert pruned < full

    def test_jad_chooses_rows_perspective_for_ts(self, lower_tri):
        """The flat perspective cannot satisfy the solve's ordering; the
        search must land on the rows perspective (the paper's conclusion
        for the running example)."""
        f = as_format(lower_tri, "jad")
        k = compile_kernel(ts_lower(), {"L": f})
        ref_paths = {r.path.path_id for c in k.plan.space.copies
                     for r in c.refs}
        assert ref_paths == {"rows"}

    def test_jad_mvm_prefers_flat(self, small_rect):
        """For an order-free accumulation the flat (fast) perspective wins
        on cost."""
        f = as_format(small_rect, "jad")
        k = compile_kernel(mvm(), {"A": f})
        ref_paths = {r.path.path_id for c in k.plan.space.copies
                     for r in c.refs}
        assert ref_paths == {"flat"}

"""Lexicographic order tests and Farkas certificates."""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.polyhedra.farkas import farkas_certificate, farkas_nonneg_system
from repro.polyhedra.fm import bounds_of, is_feasible, sample_point
from repro.polyhedra.lex import (
    can_be_first_positive,
    first_positive_dims,
    lex_nonneg,
    lex_positive,
)
from repro.polyhedra.linexpr import LinExpr, var
from repro.polyhedra.system import System, eq, ge, gt, le, lt


def ts_d1():
    """Paper dependence class D1 = {1<=j1<=N, 1<=j2<i2<=N, j1=j2}."""
    j1, j2, i2, N = var("j1"), var("j2"), var("i2"), var("N")
    return System([ge(j1, 1), le(j1, N), ge(j2, 1), lt(j2, i2), le(i2, N),
                   eq(j1, j2)])


def ts_d2():
    """Paper dependence class D2 (j1 = i2)."""
    j1, j2, i2, N = var("j1"), var("j2"), var("i2"), var("N")
    return System([ge(j1, 1), le(j1, N), ge(j2, 1), lt(j2, i2), le(i2, N),
                   eq(j1, i2)])


class TestLexNonneg:
    def test_paper_d1_deltas(self):
        """The paper's embedding yields delta = (+,+,0,0,0,0,+) on D1."""
        j1, j2, i2 = var("j1"), var("j2"), var("i2")
        d = [i2 - j1, i2 - j1, j2 - j1, j2 - j1, j2 - j1, j2 - j1, i2 - j1]
        assert lex_nonneg(ts_d1(), d)
        assert lex_positive(ts_d1(), d)

    def test_paper_d2_deltas(self):
        """delta = (0,0,+,+,+,+,0) on D2."""
        j1, j2, i2 = var("j1"), var("j2"), var("i2")
        d = [j1 - i2, j1 - i2, j1 - j2, j1 - j2, j1 - j2, j1 - j2, j1 - i2]
        assert lex_nonneg(ts_d2(), d)

    def test_violation_detected(self):
        j1, j2, i2 = var("j1"), var("j2"), var("i2")
        assert not lex_nonneg(ts_d2(), [j1 - i2, j2 - j1])

    def test_empty_polyhedron_vacuous(self):
        s = System([ge(var("x"), 5), le(var("x"), 0)])
        assert lex_nonneg(s, [var("x") * -1])

    def test_zero_vector_nonneg_but_not_positive(self):
        s = System([ge(var("x"), 0), le(var("x"), 3)])
        zero = [var("x") - var("x")]
        assert lex_nonneg(s, zero)
        assert not lex_positive(s, zero)

    def test_later_negative_masked_by_earlier_positive(self):
        # (x, -1) with x >= 1 is lexicographically positive everywhere
        s = System([ge(var("x"), 1), le(var("x"), 9)])
        assert lex_nonneg(s, [var("x"), LinExpr({}, -1)])


class TestFirstPositive:
    def test_d1_satisfied_at_dim0(self):
        j1, j2, i2 = var("j1"), var("j2"), var("i2")
        d = [i2 - j1, i2 - j1, j2 - j1, j2 - j1, j2 - j1, j2 - j1, i2 - j1]
        assert first_positive_dims(ts_d1(), d) == {0}

    def test_d2_satisfied_at_dim2(self):
        j1, j2, i2 = var("j1"), var("j2"), var("i2")
        d = [j1 - i2, j1 - i2, j1 - j2, j1 - j2, j1 - j2, j1 - j2, j1 - i2]
        assert first_positive_dims(ts_d2(), d) == {2}

    def test_can_be_first_positive(self):
        s = System([ge(var("x"), 0), le(var("x"), 3)])
        deltas = [var("x"), LinExpr({}, 1)]
        assert can_be_first_positive(s, deltas, 0)     # x can be >= 1
        assert can_be_first_positive(s, deltas, 1)     # when x == 0

    def test_multiple_possible_satisfiers(self):
        s = System([ge(var("x"), -2), le(var("x"), 2), ge(var("y"), -2),
                    le(var("y"), 2)])
        # either x > 0 satisfies at 0, or x == 0 and y > 0 satisfies at 1
        assert first_positive_dims(s, [var("x"), var("y")]) == {0, 1}


class TestFarkas:
    def test_certificate_exists(self):
        poly = System([ge(var("x"), 2), le(var("x"), 10)])
        cert = farkas_certificate(poly, var("x") - 1)
        assert cert is not None

    def test_certificate_absent(self):
        poly = System([ge(var("x"), 2), le(var("x"), 10)])
        assert farkas_certificate(poly, var("x") - 11) is None

    def test_constant_nonneg(self):
        poly = System([ge(var("x"), 0)])
        assert farkas_certificate(poly, LinExpr({}, 3)) is not None

    def test_uses_equalities(self):
        poly = System([eq(var("x"), var("y")), ge(var("y"), 5), le(var("x"), 9)])
        assert farkas_certificate(poly, var("x") - 5) is not None

    def test_symbolic_coefficient_space(self):
        """The Farkas system over an unknown coefficient c encodes:
        c*x >= 0 over {x >= 1, x <= 3} iff c >= 0."""
        poly = System([ge(var("x"), 1), le(var("x"), 3)])
        sys_ = farkas_nonneg_system(
            poly, {"x": LinExpr.variable("c")}, LinExpr.constant(0))
        lo, hi = bounds_of(sys_, var("c"))
        assert lo == 0  # c is exactly the non-negative half-line

    @settings(max_examples=30, deadline=None)
    @given(st.integers(-5, 5), st.integers(-10, 10))
    def test_certificate_agrees_with_bounds(self, a, b):
        """f = a*x + b is non-negative over {1 <= x <= 4} iff its minimum
        is >= 0; Farkas certificates must agree exactly."""
        poly = System([ge(var("x"), 1), le(var("x"), 4)])
        f = a * var("x") + b
        lo, _ = bounds_of(poly, f)
        cert = farkas_certificate(poly, f)
        assert (cert is not None) == (lo >= 0)

"""Structure-adaptive autotuning: auto mode, the winner cache, and the
single-flight tune (paper Section 6's empirical route, made cacheable)."""

import os
import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.cost.model import step_totals
from repro.formats import as_format
from repro.formats.generate import banded, random_sparse
from repro.instrument import INSTR
from repro.ir.kernels import mvm
from repro.search.autotune import (
    WINNER_CACHE,
    autotune_repeats,
    autotune_topk,
    clear_winner_cache,
    resolve_autotune_cache,
)
from repro.search.format_select import select_format
from repro.solvers import SolverContext, cg
from repro.util.env import EnvVarWarning

CANDS = ("csr", "coo", "ell")


@pytest.fixture(autouse=True)
def fresh_winner_cache():
    clear_winner_cache()
    yield
    clear_winner_cache()


def perturbed(matrix, seed=99):
    """Same pattern, different values — the same structure class by
    construction (cross-*sample* collision needs statistics to
    concentrate, i.e. larger matrices; see test_features)."""
    from repro.formats.coo import CooMatrix

    rows, cols, vals = matrix.to_coo_arrays()
    rng = np.random.default_rng(seed)
    return CooMatrix.from_coo(rows, cols, rng.random(vals.size) + 0.5,
                              matrix.shape)


def auto_select(matrix, **kw):
    kw.setdefault("candidates", CANDS)
    kw.setdefault("topk", 2)
    kw.setdefault("repeats", 1)
    return select_format(mvm(), "A", matrix, mode="auto", **kw)


class TestAutoMode:
    def test_picks_a_measured_winner(self):
        m = random_sparse(30, 30, density=0.15, seed=0)
        res = auto_select(m)
        name, inst, kernel = res.best
        assert name in CANDS
        assert res.choices[0].measured is not None
        assert res.choices[0].backend_used == "python"
        assert res.signature is not None
        assert not res.cached

        x = np.ones(30)
        y = np.zeros(30)
        kernel({"A": inst, "x": x, "y": y}, {"m": 30, "n": 30})
        assert np.allclose(y, m.to_dense() @ x)

    def test_untuned_candidates_keep_model_rank(self):
        m = random_sparse(30, 30, density=0.15, seed=0)
        res = auto_select(m, topk=1)
        measured = [c for c in res.choices if c.measured is not None]
        untuned = [c for c in res.choices if c.ok and c.measured is None]
        assert len(measured) == 1
        assert untuned and all(c.score is None and c.model_cost is not None
                               for c in untuned)
        # measured winner ranks ahead of untuned candidates
        assert res.choices[0].measured is not None

    def test_warm_path_serves_cached_winner(self):
        a = random_sparse(60, 60, density=0.1, seed=0)
        b = perturbed(a)                     # same structure class
        cold = auto_select(a)
        runs0 = INSTR.get("autotune.microbench.runs")
        warm = auto_select(b)
        assert warm.cached
        assert INSTR.get("autotune.microbench.runs") == runs0
        assert warm.best[0] == cold.best[0]
        assert warm.signature == cold.signature
        assert len(warm.choices) == 1        # only the winner is rebuilt
        assert "cached winner" in warm.table()

    def test_structure_change_is_a_miss(self):
        auto_select(random_sparse(60, 60, density=0.1, seed=0))
        tunes0 = INSTR.get("autotune.tunes")
        res = auto_select(banded(60, bandwidth=2, seed=0))
        assert not res.cached
        assert INSTR.get("autotune.tunes") == tunes0 + 1

    def test_cache_off_always_tunes(self):
        m = random_sparse(30, 30, density=0.15, seed=0)
        auto_select(m, autotune_cache="off")
        res = auto_select(m, autotune_cache="off")
        assert not res.cached
        assert len(WINNER_CACHE) == 0

    def test_bad_cache_mode_raises(self):
        m = random_sparse(10, 10, density=0.3, seed=0)
        with pytest.raises(ValueError):
            auto_select(m, autotune_cache="psychic")

    def test_table_mixes_measured_and_estimated(self):
        m = random_sparse(30, 30, density=0.15, seed=0)
        res = auto_select(m, topk=1)
        t = res.table()
        assert "seconds, python" in t
        assert "not tuned" in t


class TestReplayFallback:
    def test_stale_winner_re_tunes(self):
        m = random_sparse(30, 30, density=0.15, seed=0)
        auto_select(m)
        # poison the cached record with a format that cannot be built
        (key, rec), = WINNER_CACHE.entries.items()
        WINNER_CACHE.put(key, dict(rec, format="no-such-format"))
        fails0 = INSTR.get("autotune.replay_failures")
        res = auto_select(perturbed(m))
        assert INSTR.get("autotune.replay_failures") == fails0 + 1
        assert not res.cached
        assert res.best[0] in CANDS
        # the stale record was overwritten with a good one
        assert WINNER_CACHE.get(key)["format"] == res.best[0]


class TestSingleFlight:
    def test_concurrent_selections_tune_once(self):
        base = random_sparse(60, 60, density=0.1, seed=0)
        mats = [perturbed(base, seed=s) for s in range(6)]
        tunes0 = INSTR.get("autotune.tunes")
        barrier = threading.Barrier(len(mats))

        def work(m):
            barrier.wait()
            return auto_select(m)

        with ThreadPoolExecutor(max_workers=len(mats)) as ex:
            results = list(ex.map(work, mats))
        assert INSTR.get("autotune.tunes") == tunes0 + 1
        assert len({r.best[0] for r in results}) == 1


class TestDiskLayer:
    def test_disk_roundtrip(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        m = random_sparse(30, 30, density=0.15, seed=0)
        res = auto_select(m, autotune_cache="disk")
        files = os.listdir(tmp_path / "autotune")
        assert len(files) == 1 and files[0].endswith(".json")

        # a fresh process would start with an empty memory layer
        WINNER_CACHE.clear()
        hits0 = INSTR.get("autotune.cache.hits.disk")
        warm = auto_select(perturbed(m), autotune_cache="disk")
        assert warm.cached
        assert warm.best[0] == res.best[0]
        assert INSTR.get("autotune.cache.hits.disk") == hits0 + 1

    def test_corrupt_disk_record_is_a_miss(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        m = random_sparse(30, 30, density=0.15, seed=0)
        auto_select(m, autotune_cache="disk")
        (entry,) = (tmp_path / "autotune").iterdir()
        entry.write_text("{not json")
        WINNER_CACHE.clear()
        res = auto_select(m, autotune_cache="disk")
        assert not res.cached                 # re-tuned, not crashed


class TestKnobs:
    def test_topk_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUTOTUNE_TOPK", "1")
        assert autotune_topk() == 1
        m = random_sparse(30, 30, density=0.15, seed=0)
        runs0 = INSTR.get("autotune.microbench.runs")
        auto_select(m, topk=None)
        assert INSTR.get("autotune.microbench.runs") == runs0 + 1

    def test_malformed_env_warns_and_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUTOTUNE_TOPK", "banana")
        with pytest.warns(EnvVarWarning):
            assert autotune_topk() == 3
        monkeypatch.setenv("REPRO_AUTOTUNE_REPEATS", "-4")
        with pytest.warns(EnvVarWarning):
            assert autotune_repeats() == 3

    def test_cache_mode_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_AUTOTUNE_CACHE", "off")
        assert resolve_autotune_cache(None) == "off"
        assert resolve_autotune_cache("disk") == "disk"   # kwarg wins
        monkeypatch.setenv("REPRO_AUTOTUNE_CACHE", "psychic")
        with pytest.raises(ValueError):
            resolve_autotune_cache(None)


class TestLRU:
    def test_capacity_evicts_oldest(self):
        from repro.search.autotune import WinnerCache

        c = WinnerCache(capacity=2)
        c.put("a", {"format": "csr"})
        c.put("b", {"format": "coo"})
        c.get("a")                            # refresh a
        c.put("c", {"format": "ell"})         # evicts b
        assert c.get("a") is not None
        assert c.get("b") is None
        assert c.get("c") is not None


class TestSolverContextAuto:
    def test_select_auto_string(self):
        m = random_sparse(40, 40, density=0.15, seed=0, ensure_diag=True)
        auto0 = INSTR.get("select.auto")
        ctx = SolverContext(as_format(m, "coo"), ops=("mvm",),
                            backend="python", select="auto",
                            candidates=CANDS, register=False)
        assert INSTR.get("select.auto") == auto0 + 1
        x = cg(ctx, np.ones(40), tol=0.0, max_iter=30)[0]
        x_ref = cg(as_format(m, "csr"), np.ones(40), tol=0.0, max_iter=30)[0]
        assert np.allclose(x, x_ref, atol=1e-8)


class TestStepTotalsMemo:
    def test_concurrent_memo_converges_to_one_list(self):
        fmt = as_format(random_sparse(20, 20, density=0.2, seed=0), "csr")
        barrier = threading.Barrier(8)

        def work(_):
            barrier.wait()
            return step_totals(fmt, "rows")

        with ThreadPoolExecutor(max_workers=8) as ex:
            results = list(ex.map(work, range(8)))
        assert all(r is results[0] for r in results)

"""The view grammar and access-path extraction (paper Figure 6)."""

import pytest

from repro.formats.views import (
    AccessPath,
    Axis,
    BINARY,
    Cross,
    DECREASING,
    INCREASING,
    Joint,
    LINEAR,
    MapTerm,
    Nest,
    NOSEARCH,
    PermTerm,
    Perspective,
    Union,
    UNORDERED,
    Value,
    access_paths,
    interval_axis,
    union_branches,
)
from repro.polyhedra.linexpr import LinExpr


class TestAxis:
    def test_bad_order(self):
        with pytest.raises(ValueError):
            Axis("r", order="sideways")

    def test_bad_search(self):
        with pytest.raises(ValueError):
            Axis("r", search="psychic")

    def test_interval_axis_properties(self):
        a = interval_axis("r")
        assert a.interval and a.order == INCREASING and a.search == "direct"


class TestNestPaths:
    def test_csr_shape(self):
        term = Nest(interval_axis("r"), Nest(Axis("c", INCREASING, BINARY), Value()))
        paths = access_paths(term)
        assert len(paths) == 1
        p = paths[0]
        assert p.axis_names == ("r", "c")
        assert len(p.steps) == 2
        assert not p.steps[0].joint
        assert p.subs["r"] == LinExpr.variable("r")
        assert p.subs["c"] == LinExpr.variable("c")

    def test_step_of(self):
        term = Nest(interval_axis("r"), Nest(Axis("c", INCREASING, BINARY), Value()))
        p = access_paths(term)[0]
        assert p.step_of("r") == 0 and p.step_of("c") == 1
        with pytest.raises(KeyError):
            p.step_of("z")


class TestJointPaths:
    def test_coo_shape(self):
        term = Joint([Axis("r", UNORDERED, LINEAR), Axis("c", UNORDERED, LINEAR)],
                     Value())
        p = access_paths(term)[0]
        assert len(p.steps) == 1 and p.steps[0].joint
        assert p.axis_names == ("r", "c")


class TestCrossPaths:
    def test_dense_orderings(self):
        term = Cross([interval_axis("r"), interval_axis("c")], Value())
        paths = access_paths(term)
        orders = {p.axis_names for p in paths}
        assert orders == {("r", "c"), ("c", "r")}


class TestMapPaths:
    def test_dia_substitution(self):
        d, o = LinExpr.variable("d"), LinExpr.variable("o")
        term = MapTerm({"r": d + o, "c": o},
                       Nest(Axis("d", INCREASING, BINARY),
                            Nest(interval_axis("o"), Value())))
        p = access_paths(term)[0]
        assert p.axis_names == ("d", "o")
        assert p.subs["r"] == d + o
        assert p.subs["c"] == o

    def test_blocking_substitution(self):
        rb, ri = LinExpr.variable("rb"), LinExpr.variable("ri")
        cb, ci = LinExpr.variable("cb"), LinExpr.variable("ci")
        term = MapTerm(
            {"r": rb * 4 + ri, "c": cb * 4 + ci},
            Nest(interval_axis("rb"),
                 Nest(Axis("cb", INCREASING, BINARY),
                      Cross([interval_axis("ri"), interval_axis("ci")], Value()))))
        paths = access_paths(term)
        assert len(paths) == 2  # ri/ci orderings
        assert paths[0].subs["r"].coeff("rb") == 4

    def test_missing_logical_dim_rejected(self):
        term = MapTerm({"r": LinExpr.variable("d")},
                       Nest(Axis("d", INCREASING, BINARY), Value()))
        with pytest.raises(ValueError):
            access_paths(term)  # "c" neither axis nor mapped


class TestPermPaths:
    def test_jad_like(self):
        flat = Joint([Axis("rr", UNORDERED, NOSEARCH),
                      Axis("c", UNORDERED, NOSEARCH)], Value())
        hier = Nest(interval_axis("rr"),
                    Nest(Axis("c", INCREASING, BINARY), Value()))
        term = PermTerm("r", "rr", "iperm", Perspective(flat, hier))
        paths = access_paths(term)
        assert len(paths) == 2
        flat_p, hier_p = paths
        # the stored axis is renamed to the logical dimension
        assert flat_p.axis_names == ("r", "c")
        assert hier_p.axis_names == ("r", "c")
        # permuted: stored order means nothing for the logical values
        assert flat_p.axis("r").perm == "iperm"
        assert flat_p.axis("r").order == UNORDERED
        assert hier_p.axis("r").order == UNORDERED
        # the hier view keeps its interval/search capabilities
        assert hier_p.axis("r").interval
        assert hier_p.axis("c").order == INCREASING


class TestPerspectiveUnion:
    def test_perspective_multiplies(self):
        a = Nest(interval_axis("r"), Nest(Axis("c", INCREASING, BINARY), Value()))
        b = Nest(interval_axis("c"), Nest(Axis("r", INCREASING, BINARY), Value()))
        term = Perspective(a, b)
        paths = access_paths(term)
        assert len(paths) == 2
        assert {p.branch for p in paths} == {""}

    def test_union_branches(self):
        d = MapTerm({"r": LinExpr.variable("i"), "c": LinExpr.variable("i")},
                    Nest(interval_axis("i"), Value()))
        off = Nest(interval_axis("r"), Nest(Axis("c", INCREASING, BINARY), Value()))
        term = Union(d, off)
        paths = access_paths(term)
        assert [p.branch for p in paths] == ["u0", "u1"]
        assert union_branches(paths) == ["u0", "u1"]

    def test_nested_union_perspective(self):
        leafa = Nest(interval_axis("r"), Nest(Axis("c", INCREASING, BINARY), Value()))
        leafb = Joint([Axis("r", UNORDERED, LINEAR), Axis("c", UNORDERED, LINEAR)],
                      Value())
        term = Union(Perspective(leafa, leafb), leafa)
        paths = access_paths(term)
        assert [p.branch for p in paths] == ["u0", "u0", "u1"]


class TestFormatViews:
    """Each concrete format's declared view must produce its documented
    paths."""

    @pytest.mark.parametrize("fmt_name,expected", [
        ("csr", [("rows", ("r", "c"))]),
        ("csc", [("cols", ("c", "r"))]),
        ("coo", [("flat", ("r", "c"))]),
        ("dia", [("diags", ("d", "o"))]),
        ("ell", [("rows", ("r", "c"))]),
        ("jad", [("flat", ("r", "c")), ("rows", ("r", "c"))]),
        ("dense", [("rowmajor", ("r", "c")), ("colmajor", ("c", "r"))]),
        ("msr", [("diag", ("i",)), ("off", ("r", "c"))]),
        ("bsr", [("rows_rc", ("rb", "cb", "ri", "ci")),
                 ("rows_cr", ("rb", "cb", "ci", "ri"))]),
    ])
    def test_paths(self, fmt_name, expected, small_rect):
        from repro.formats import as_format

        kwargs = {"block_size": 2} if fmt_name == "bsr" else {}
        f = as_format(small_rect, fmt_name, **kwargs)
        got = [(p.path_id, p.axis_names) for p in f.paths()]
        assert got == expected

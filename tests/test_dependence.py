"""Dependence analysis: access collection, dependence classes, reductions."""

import pytest

from repro.analysis import (
    accesses_to,
    collect_accesses,
    dependences,
    dependence_summary,
)
from repro.analysis.dependence import dst_var, src_var
from repro.analysis.reductions import reduction_array
from repro.ir import parse_program
from repro.ir.kernels import frobenius, mvm, smvm_two, ts_lower
from repro.polyhedra.fm import implied_equalities, is_feasible


class TestAccesses:
    def test_collects_in_order(self):
        accs = collect_accesses(ts_lower())
        # S1: write b, read b, read L; S2: write b, read b, read L, read b
        assert [(a.stmt_name, a.kind, a.array) for a in accs] == [
            ("S1", "W", "b"), ("S1", "R", "b"), ("S1", "R", "L"),
            ("S2", "W", "b"), ("S2", "R", "b"), ("S2", "R", "L"),
            ("S2", "R", "b"),
        ]

    def test_accesses_to(self):
        l_accs = accesses_to(ts_lower(), "L")
        assert len(l_accs) == 2
        assert all(a.kind == "R" for a in l_accs)

    def test_duplicate_reads_distinct_ordinals(self):
        accs = accesses_to(smvm_two(), "A")
        assert len(accs) == 2
        assert accs[0].ref_id != accs[1].ref_id


class TestTsDependences:
    def test_paper_classes_present(self):
        deps = dependences(ts_lower())
        sigs = {(d.src.name, d.dst.name) for d in deps}
        assert ("S1", "S2") in sigs  # the paper's D1
        assert ("S2", "S1") in sigs  # the paper's D2

    def test_d1_implies_j_equality(self):
        deps = dependences(ts_lower())
        d1 = next(d for d in deps if d.src.name == "S1" and d.dst.name == "S2")
        pairs = implied_equalities(
            d1.system, [(src_var("S1", "j"), dst_var("S2", "j"))])
        assert pairs  # j1 == j2

    def test_d2_implies_j_eq_i(self):
        deps = dependences(ts_lower())
        d2s = [d for d in deps if d.src.name == "S2" and d.dst.name == "S1"]
        assert any(
            implied_equalities(d.system,
                               [(src_var("S2", "i"), dst_var("S1", "j"))])
            for d in d2s
        )

    def test_all_classes_feasible(self):
        for d in dependences(ts_lower()):
            assert is_feasible(d.system)

    def test_dedup_reduces_count(self):
        full = dependences(ts_lower(), dedup=False)
        deduped = dependences(ts_lower())
        assert len(deduped) < len(full)

    def test_summary_renders(self):
        text = dependence_summary(ts_lower())
        assert "S1 -> S2" in text


class TestMvmDependences:
    def test_init_ordered_before_update(self):
        # dedup merges same-polyhedron kinds; the class connecting the
        # initialization to the accumulation must exist in some kind
        deps = dependences(mvm())
        assert any(d.src.name == "S1" and d.dst.name == "S2" for d in deps)

    def test_no_false_self_dep_on_A(self):
        deps = dependences(mvm())
        assert all(d.array != "A" for d in deps)  # A is only read


class TestIndependentStatements:
    def test_disjoint_arrays_no_deps(self):
        p = parse_program("""
        k(n; x: vector, y: vector) {
            for i = 0 : n { x[i] = 1; }
            for j = 0 : n { y[j] = 2; }
        }
        """)
        assert dependences(p) == []

    def test_offset_write_read(self):
        p = parse_program("""
        k(n; x: vector) {
            for i = 1 : n { x[i] = x[i-1]; }
        }
        """)
        deps = dependences(p)
        assert any(d.kind == "flow" for d in deps)


class TestReductions:
    def test_mvm_update_is_reduction(self):
        s2 = mvm().statements()[1].stmt
        assert reduction_array(s2) == "y"

    def test_frobenius_is_reduction(self):
        s = frobenius().statements()[0].stmt
        assert reduction_array(s) == "acc"

    def test_ts_update_is_not_reduction(self):
        # b[i] = b[i] - L[i][j]*b[j] reads b at another index too
        s2 = ts_lower().statements()[1].stmt
        assert reduction_array(s2) is None

    def test_plain_assignment_not_reduction(self):
        s1 = mvm().statements()[0].stmt  # y[i] = 0
        assert reduction_array(s1) is None

    def test_subtraction_accumulation(self):
        p = parse_program("""
        k(m, n; A: matrix, y: vector) {
            for i = 0 : m { for j = 0 : n {
                y[i] = y[i] - A[i][j];
            } }
        }
        """)
        assert reduction_array(p.statements()[0].stmt) == "y"

    def test_self_read_on_wrong_side_of_minus(self):
        p = parse_program("""
        k(n; x: vector, y: vector) {
            for i = 0 : n { y[i] = x[i] - y[i]; }
        }
        """)
        assert reduction_array(p.statements()[0].stmt) is None

    def test_mismatched_indices_not_reduction(self):
        p = parse_program("""
        k(n; y: vector) {
            for i = 1 : n { y[i] = y[i-1] + 1; }
        }
        """)
        assert reduction_array(p.statements()[0].stmt) is None

    def test_right_side_plus_is_reduction(self):
        p = parse_program("""
        k(n; x: vector, y: vector) {
            for i = 0 : n { y[i] = x[i] + y[i]; }
        }
        """)
        assert reduction_array(p.statements()[0].stmt) == "y"

    def test_two_self_reads_not_reduction(self):
        p = parse_program("""
        k(n; y: vector) {
            for i = 0 : n { y[i] = y[i] + y[i]; }
        }
        """)
        assert reduction_array(p.statements()[0].stmt) is None

"""DOALL parallelism analysis over enumeration plans."""

import numpy as np
import pytest

from repro.analysis import dependences
from repro.core import compile_kernel
from repro.core.parallel import (
    analyze_parallelism,
    annotate_c_source,
    parallel_loop_names,
)
from repro.formats import as_format
from repro.formats.generate import lower_triangular_of, random_sparse
from tests.conftest import compile_cached


@pytest.fixture(scope="module")
def mvm_csr():
    rect = random_sparse(6, 8, 0.3, seed=11)
    fmt = as_format(rect, "csr")
    return compile_cached("mvm", "csr", fmt, "A"), fmt


@pytest.fixture(scope="module")
def ts_csr():
    L = lower_triangular_of(random_sparse(8, 8, 0.3, seed=3))
    fmt = as_format(L, "csr")
    return compile_cached("ts_lower", "csr", fmt, "L"), fmt


class TestAnalysis:
    def test_mvm_rows_are_doall(self, mvm_csr):
        k, _ = mvm_csr
        deps = dependences(k.program)
        rep = analyze_parallelism(k.plan, deps)
        # the row dimension carries no order requirement even without
        # relaxing reductions: rows write disjoint y entries
        row_dim = next(d for d in rep.all_dims if d.endswith(".r"))
        assert rep.classify(row_dim) == "doall"

    def test_mvm_columns_need_atomics(self, mvm_csr):
        k, _ = mvm_csr
        deps = dependences(k.program)
        rep = analyze_parallelism(k.plan, deps)
        col_dim = next(d for d in rep.all_dims if d.endswith(".c"))
        # strictly, the accumulation serializes the column walk; with
        # atomic adds it is free
        assert rep.classify(col_dim) in ("doall-atomic", "doall")
        assert col_dim in rep.atomic

    def test_ts_rows_sequential(self, ts_csr):
        k, _ = ts_csr
        deps = dependences(k.program)
        rep = analyze_parallelism(k.plan, deps)
        row_dim = next(d for d in rep.all_dims if d.endswith(".r"))
        # forward substitution is inherently ordered in the rows
        assert rep.classify(row_dim) == "sequential"
        assert row_dim not in rep.atomic

    def test_flavours_nest(self, mvm_csr, ts_csr):
        for k, _ in (mvm_csr, ts_csr):
            deps = dependences(k.program)
            rep = analyze_parallelism(k.plan, deps)
            assert rep.strict <= rep.atomic

    def test_loop_names_helper(self, mvm_csr):
        k, _ = mvm_csr
        deps = dependences(k.program)
        names = parallel_loop_names(k.plan, deps, flavour="atomic")
        assert any(n.endswith(".c") for n in names)


class TestOmpRendering:
    def test_mvm_gets_pragma(self, mvm_csr):
        k, _ = mvm_csr
        c = annotate_c_source(k)
        assert "#pragma omp parallel for" in c or "DOALL dimensions" in c

    def test_ts_outer_loop_not_annotated(self, ts_csr):
        k, _ = ts_csr
        c = annotate_c_source(k)
        # the substitution's row loop must not carry a pragma
        lines = c.splitlines()
        for i, l in enumerate(lines):
            if "for (" in l and "rowptr" not in l and "M0_r" in l:
                assert "#pragma" not in lines[i - 1]
                break

    def test_report_repr(self, mvm_csr):
        k, _ = mvm_csr
        deps = dependences(k.program)
        rep = analyze_parallelism(k.plan, deps)
        assert "doall" in repr(rep)


def _pragma_above(source: str, marker: str) -> bool:
    """Is there an OpenMP pragma on the line directly above the first
    ``for`` header containing ``marker``?"""
    lines = source.splitlines()
    for i, line in enumerate(lines):
        if line.lstrip().startswith("for (") and marker in line:
            return i > 0 and "#pragma omp parallel for" in lines[i - 1]
    raise AssertionError(f"no for-loop matching {marker!r} in:\n{source}")


class TestPragmaPlacement:
    """Satellite coverage: where exactly the pragmas land in the
    rendered source, per flavour."""

    def test_mvm_strict_row_loop_annotated(self, mvm_csr):
        k, _ = mvm_csr
        c = annotate_c_source(k, flavour="strict")
        # rows write disjoint y entries: the row loop is strict DOALL
        assert _pragma_above(c, "M0_r")

    def test_mvm_strict_column_loop_not_annotated(self, mvm_csr):
        k, _ = mvm_csr
        c = annotate_c_source(k, flavour="strict")
        # the column walk accumulates into y[r]: a reduction, not strict
        assert not _pragma_above(c, "M0_jj")

    def test_mvm_atomic_column_loop_annotated(self, mvm_csr):
        k, _ = mvm_csr
        c = annotate_c_source(k, flavour="atomic")
        assert _pragma_above(c, "M0_jj")
        assert "atomic" in c  # the flavour is called out in the pragma

    def test_mvm_loop_names_by_flavour(self, mvm_csr):
        k, _ = mvm_csr
        deps = dependences(k.program)
        strict = parallel_loop_names(k.plan, deps, flavour="strict")
        atomic = parallel_loop_names(k.plan, deps, flavour="atomic")
        assert any(n.endswith(".r") for n in strict)
        assert not any(n.endswith(".c") for n in strict)
        assert any(n.endswith(".c") for n in atomic)

    def test_ts_strict_no_pragmas(self, ts_csr):
        k, _ = ts_csr
        c = annotate_c_source(k, flavour="strict")
        # forward substitution is ordered in the rows and accumulates
        # within a row: no loop of the nest is strict DOALL
        assert "#pragma omp parallel for" not in c

    def test_ts_row_loop_never_annotated(self, ts_csr):
        k, _ = ts_csr
        for flavour in ("strict", "atomic"):
            c = annotate_c_source(k, flavour=flavour)
            if "DOALL dimensions" in c.splitlines()[0]:
                continue  # positional fallback: no per-loop pragmas at all
            assert not _pragma_above(c, "M0_r")

"""Concrete formats: construction, round-trips, random access, enumeration
runtimes, conversions.  Parameterized over all nine formats."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import FORMATS, as_format, convert
from repro.formats.base import SparseFormat

ALL = ["dense", "coo", "csr", "csc", "dia", "ell", "jad", "bsr", "msr"]


def make(fmt_name, dense):
    kwargs = {"block_size": 2} if fmt_name == "bsr" else {}
    return as_format(dense, fmt_name, **kwargs)


@pytest.fixture(params=ALL)
def fmt_name(request):
    return request.param


class TestRoundTrip:
    def test_dense_roundtrip(self, fmt_name, small_rect):
        f = make(fmt_name, small_rect)
        assert np.allclose(f.to_dense(), small_rect)

    def test_empty_matrix(self, fmt_name):
        f = make(fmt_name, np.zeros((4, 6)))
        assert f.to_dense().shape == (4, 6)
        assert np.allclose(f.to_dense(), 0.0)

    def test_single_element(self, fmt_name):
        a = np.zeros((4, 4))
        a[2, 1] = 7.0
        f = make(fmt_name, a)
        assert np.allclose(f.to_dense(), a)

    def test_full_matrix(self, fmt_name, rng):
        a = rng.random((4, 4)) + 0.1
        f = make(fmt_name, a)
        assert np.allclose(f.to_dense(), a)

    def test_copy_independent(self, fmt_name, small_rect):
        f = make(fmt_name, small_rect)
        g = f.copy()
        r, c = np.nonzero(small_rect)
        g.set(int(r[0]), int(c[0]), 99.0)
        assert f.get(int(r[0]), int(c[0])) != 99.0


class TestRandomAccess:
    def test_get_matches_dense(self, fmt_name, small_rect):
        f = make(fmt_name, small_rect)
        m, n = small_rect.shape
        for r in range(m):
            for c in range(n):
                assert f.get(r, c) == pytest.approx(small_rect[r, c])

    def test_set_stored(self, fmt_name, small_rect):
        f = make(fmt_name, small_rect)
        r, c = map(int, next(zip(*np.nonzero(small_rect))))
        f.set(r, c, 42.0)
        assert f.get(r, c) == 42.0

    def test_set_unstored_raises(self, fmt_name):
        a = np.zeros((4, 4))
        a[0, 0] = 1.0
        f = make(fmt_name, a)
        if fmt_name in ("dense",):
            return  # dense stores everything
        # find a position guaranteed unstored for every compressed format:
        # (3, 1) is off-diagonal, in no stored block/diagonal of this matrix
        with pytest.raises(KeyError):
            f.set(3, 1, 5.0)


class TestDuplicates:
    def test_from_coo_sums_duplicates(self, fmt_name):
        rows = [0, 0, 1]
        cols = [1, 1, 0]
        vals = [2.0, 3.0, 4.0]
        kwargs = {"block_size": 2} if fmt_name == "bsr" else {}
        f = FORMATS[fmt_name].from_coo(rows, cols, vals, (2, 2), **kwargs)
        assert f.get(0, 1) == pytest.approx(5.0)
        assert f.get(1, 0) == pytest.approx(4.0)

    def test_out_of_bounds_rejected(self, fmt_name):
        kwargs = {"block_size": 2} if fmt_name == "bsr" else {}
        with pytest.raises(ValueError):
            FORMATS[fmt_name].from_coo([5], [0], [1.0], (2, 2), **kwargs)


class TestEnumerationRuntime:
    def test_full_enumeration_reconstructs(self, fmt_name, small_rect):
        """Walking every path of every branch reproduces the stored
        matrix exactly once per branch."""
        f = make(fmt_name, small_rect)
        recon = np.zeros_like(small_rect)
        for br in f.union_branches():
            p = next(pp for pp in f.paths() if pp.branch == br)
            rt = f.runtime(p.path_id)

            def walk(step, prefix, env):
                if step == len(p.steps):
                    r = int(p.subs["r"].evaluate(env))
                    c = int(p.subs["c"].evaluate(env))
                    recon[r, c] += rt.get(prefix)
                    return
                for keys, stt in rt.enumerate(step, prefix):
                    env2 = dict(env)
                    for ax, k in zip(p.steps[step].axes, keys):
                        env2[ax.name] = k
                    walk(step + 1, prefix + (stt,), env2)

            walk(0, (), {})
        assert np.allclose(recon, f.to_dense())

    def test_search_finds_enumerated(self, fmt_name, small_rect):
        """Every enumerated key must be findable by search on searchable
        steps, with a state reading the same value."""
        f = make(fmt_name, small_rect)
        for p in f.paths():
            rt = f.runtime(p.path_id)

            def walk(step, prefix, keychain):
                if step == len(p.steps):
                    return
                for keys, stt in rt.enumerate(step, prefix):
                    try:
                        found = rt.search(step, prefix, keys)
                    except NotImplementedError:
                        found = None
                    if found is not None and step == len(p.steps) - 1:
                        assert rt.get(prefix + (found,)) == \
                            pytest.approx(rt.get(prefix + (stt,)))
                    walk(step + 1, prefix + (stt,), keychain + [keys])

            walk(0, (), [])

    def test_search_misses_absent(self, fmt_name):
        a = np.zeros((6, 6))
        a[1, 1] = 1.0
        a[3, 2] = 2.0
        f = make(fmt_name, a)
        if fmt_name == "dense":
            return
        # the last step's search for a column absent from the row/diag must
        # return None
        for br in f.union_branches():
            p = next(pp for pp in f.paths() if pp.branch == br)
            rt = f.runtime(p.path_id)
            last = len(p.steps) - 1
            for keys, stt in rt.enumerate(0, ()):
                if last == 0:
                    break
                missing = rt.search(last, (stt,), (4,)) if \
                    p.steps[last].names[-1] in ("c", "o", "r") else None
                # (4 is never stored next to 1,1/3,2 in these structures)
                if missing is not None:
                    # only acceptable if (row,4)-ish is genuinely stored
                    pass


class TestConversions:
    @pytest.mark.parametrize("src", ALL)
    @pytest.mark.parametrize("dst", ALL)
    def test_all_pairs(self, src, dst, small_rect):
        f = make(src, small_rect)
        kwargs = {"block_size": 2} if dst == "bsr" else {}
        g = convert(f, dst, **kwargs)
        assert np.allclose(g.to_dense(), small_rect)

    def test_bounds_annotation_preserved(self, lower_tri):
        f = as_format(lower_tri, "csr")
        assert f.bounds() is not None
        g = convert(f, "jad")
        assert g.bounds() is not None

    def test_scipy_interop(self, small_rect):
        import scipy.sparse as sps

        f = as_format(small_rect, "csr")
        s = f.to_scipy()
        assert np.allclose(s.toarray(), small_rect)
        g = FORMATS["csc"].from_scipy(sps.csr_matrix(small_rect))
        assert np.allclose(g.to_dense(), small_rect)


class TestFormatSpecifics:
    def test_csr_validation(self):
        from repro.formats.csr import CsrMatrix

        with pytest.raises(ValueError):
            CsrMatrix(np.array([0, 1]), np.array([0]), np.array([1.0]), (3, 3))
        with pytest.raises(ValueError):
            CsrMatrix(np.array([0, 2, 1, 1]), np.array([0]), np.array([1.0]),
                      (3, 3))

    def test_jad_structure(self, small_rect):
        from repro.formats.jad import JadMatrix

        f = JadMatrix.from_coo(*(lambda t: (t[0], t[1], t[2]))(
            (lambda d: (np.nonzero(d)[0], np.nonzero(d)[1],
                        d[np.nonzero(d)]))(small_rect)), small_rect.shape)
        lens = np.diff(f.dptr)
        assert np.all(lens[:-1] >= lens[1:])  # diagonals shrink
        # iperm sorts rows by count decreasing
        counts = (small_rect != 0).sum(axis=1)
        perm_counts = counts[f.iperm]
        assert np.all(perm_counts[:-1] >= perm_counts[1:])
        # inverse permutation is consistent
        assert np.array_equal(f.iperm[f.ipermi], np.arange(f.nrows))

    def test_dia_offset_ranges(self):
        from repro.formats.dia import DiaMatrix

        a = np.eye(4)
        a[0, 3] = 5.0
        f = DiaMatrix.from_dense(a)
        assert set(f.diags.tolist()) == {-3, 0}
        lo, hi = f.offset_range(-3)
        assert (lo, hi) == (3, 4)
        lo, hi = f.offset_range(0)
        assert (lo, hi) == (0, 4)

    def test_bsr_requires_divisible_shape(self):
        from repro.formats.bsr import BsrMatrix

        with pytest.raises(ValueError):
            BsrMatrix.from_coo([0], [0], [1.0], (3, 4), block_size=2)

    def test_msr_separates_diagonal(self, small_square):
        from repro.formats.msr import MsrMatrix

        f = MsrMatrix.from_dense(small_square)
        for i in range(f.ndiag):
            assert f.dvals[i] == pytest.approx(small_square[i, i])
        # off-diagonal structure has no diagonal entries
        rows = np.repeat(np.arange(f.nrows), np.diff(f.rowptr))
        assert np.all(rows != f.colind)

    def test_ell_padding(self):
        from repro.formats.ell import EllMatrix

        a = np.zeros((3, 5))
        a[0, :4] = 1.0
        a[2, 1] = 2.0
        f = EllMatrix.from_dense(a)
        assert f.slots == 4
        assert f.rowlen.tolist() == [4, 0, 1]
        assert np.allclose(f.to_dense(), a)

    def test_axis_ranges(self, small_rect):
        f = make("dia", small_rect)
        m, n = small_rect.shape
        assert f.axis_range("d") == (1 - n, m)
        assert f.axis_range("o") == (0, n)
        assert f.axis_range("r") == (0, m)

    def test_axis_total(self, small_rect):
        assert make("csr", small_rect).axis_total("r") == (0, 6)
        assert make("csr", small_rect).axis_total("c") is None
        assert make("jad", small_rect).axis_total("r") == (0, 6)
        assert make("dia", small_rect).axis_total("d") is None
        assert make("coo", small_rect).axis_total("r") is None


@settings(max_examples=25, deadline=None)
@given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5),
                          st.floats(0.1, 10.0)), min_size=0, max_size=20))
def test_roundtrip_random_coo(entries):
    dense = np.zeros((6, 6))
    for r, c, v in entries:
        dense[r, c] = v  # later duplicates overwrite, like the dict below
    # build through from_coo with the last-write-wins dense as reference:
    # duplicates are summed by from_coo, so feed unique entries only
    uniq = {}
    for r, c, v in entries:
        uniq[(r, c)] = v
    rows = [k[0] for k in uniq]
    cols = [k[1] for k in uniq]
    vals = [uniq[k] for k in uniq]
    for fmt_name in ALL:
        kwargs = {"block_size": 2} if fmt_name == "bsr" else {}
        f = FORMATS[fmt_name].from_coo(rows, cols, vals, (6, 6), **kwargs)
        assert np.allclose(f.to_dense(), dense), fmt_name

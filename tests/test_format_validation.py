"""Constructor validation and less-travelled format paths."""

import numpy as np
import pytest

from repro.formats import (
    BsrMatrix,
    CooMatrix,
    CscMatrix,
    CsrMatrix,
    DiaMatrix,
    EllMatrix,
    JadMatrix,
    MsrMatrix,
    as_format,
)
from repro.formats.base import coo_dedup_sort
from repro.formats.generate import random_sparse


class TestCooDedupSort:
    def test_row_major_order(self):
        r, c, v = coo_dedup_sort([1, 0, 0], [0, 1, 0], [1.0, 2.0, 3.0], (2, 2),
                                 order="row")
        assert list(zip(r, c)) == [(0, 0), (0, 1), (1, 0)]

    def test_col_major_order(self):
        r, c, v = coo_dedup_sort([1, 0, 0], [0, 1, 0], [1.0, 2.0, 3.0], (2, 2),
                                 order="col")
        assert list(zip(r, c)) == [(0, 0), (1, 0), (0, 1)]

    def test_duplicates_summed(self):
        r, c, v = coo_dedup_sort([0, 0], [0, 0], [1.0, 2.5], (1, 1))
        assert v.tolist() == [3.5]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            coo_dedup_sort([0], [0, 1], [1.0], (2, 2))

    def test_bad_order_keyword(self):
        with pytest.raises(ValueError):
            coo_dedup_sort([0], [0], [1.0], (1, 1), order="diag")


class TestConstructorValidation:
    def test_csc_validation(self):
        with pytest.raises(ValueError):
            CscMatrix(np.array([0, 1]), np.array([0]), np.array([1.0]), (2, 2))
        with pytest.raises(ValueError):
            CscMatrix(np.array([0, 2, 1]), np.array([0]), np.array([1.0]),
                      (2, 2))

    def test_dia_validation(self):
        with pytest.raises(ValueError):
            DiaMatrix(np.array([1, 0]), np.zeros((2, 3)), (3, 3))  # not sorted
        with pytest.raises(ValueError):
            DiaMatrix(np.array([0]), np.zeros((2, 3)), (3, 3))  # shape

    def test_ell_validation(self):
        with pytest.raises(ValueError):
            EllMatrix(np.zeros((2, 2), dtype=int), np.zeros((2, 3)),
                      np.zeros(2, dtype=int), (2, 4))
        with pytest.raises(ValueError):
            EllMatrix(np.zeros((2, 2), dtype=int), np.zeros((2, 2)),
                      np.array([3, 0]), (2, 4))  # rowlen > slots

    def test_jad_validation(self):
        with pytest.raises(ValueError):
            JadMatrix(np.array([0]), np.array([0, 1]), np.array([0]),
                      np.array([1.0]), (2, 2))  # iperm size
        # growing diagonal lengths are impossible in a JAD
        with pytest.raises(ValueError):
            JadMatrix(np.array([0, 1]), np.array([0, 1, 3]),
                      np.array([0, 0, 1]), np.array([1.0, 1.0, 1.0]), (2, 2))

    def test_msr_validation(self):
        with pytest.raises(ValueError):
            MsrMatrix(np.zeros(1), np.array([0, 1]), np.array([0]),
                      np.array([1.0]), (2, 2))  # dvals size
        with pytest.raises(ValueError):
            # off-diagonal structure must not contain diagonal entries
            MsrMatrix(np.zeros(2), np.array([0, 1, 1]), np.array([0]),
                      np.array([1.0]), (2, 2))

    def test_bsr_validation(self):
        with pytest.raises(ValueError):
            BsrMatrix(np.array([0, 1]), np.array([0]),
                      np.zeros((1, 2, 2)), 2, (3, 4))  # 3 % 2 != 0
        with pytest.raises(ValueError):
            BsrMatrix(np.array([0]), np.array([0]),
                      np.zeros((1, 2, 2)), 2, (4, 4))  # indptr size

    def test_csr_negative_shape(self):
        with pytest.raises(ValueError):
            CsrMatrix(np.array([0]), np.zeros(0, dtype=int), np.zeros(0),
                      (-1, 2))


class TestLessTravelled:
    def test_coo_get_missing(self):
        m = CooMatrix.from_coo([0], [0], [1.0], (3, 3))
        assert m.get(2, 2) == 0.0
        with pytest.raises(KeyError):
            m.set(2, 2, 1.0)

    def test_jad_get_out_of_range(self):
        m = JadMatrix.from_coo([0], [0], [1.0], (2, 2))
        assert m.get(-1, 0) == 0.0 or m.get(1, 1) == 0.0

    def test_dia_set_off_band(self):
        m = DiaMatrix.from_dense(np.eye(3))
        with pytest.raises(KeyError):
            m.set(0, 2, 1.0)

    def test_repr(self):
        m = as_format(random_sparse(4, 5, 0.3, seed=9), "csr")
        assert "csr" in repr(m) and "4x5" in repr(m)

    def test_empty_to_coo(self):
        for name in ["dia", "ell", "jad", "bsr"]:
            kwargs = {"block_size": 2} if name == "bsr" else {}
            m = as_format(np.zeros((4, 4)), name, **kwargs)
            r, c, v = m.to_coo_arrays()
            assert len(v) == 0

    def test_bsr_from_scipy_via_convert(self):
        import scipy.sparse as sps

        s = sps.random(6, 8, density=0.3, random_state=1, format="csr")
        m = as_format(s, "bsr", block_size=2)
        assert np.allclose(m.to_dense(), s.toarray())

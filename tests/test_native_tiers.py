"""Optimization tiers of the native backend: byte-identity of the tiled
tier, demotion observability, the env knobs (REPRO_OPT / REPRO_CFLAGS /
REPRO_TILE_ROWS), the native SpGEMM tier, the prepared-argument dispatch
fast path, and the autotuner's (format, tier) axis.

Tests that need the real toolchain check ``find_compiler()`` and skip
without one; the demotion tests force its absence and assert the
fallback is observable rather than silent.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core import NativeBackendWarning, compile_kernel
from repro.core import backend as be
from repro.formats import as_format
from repro.formats.generate import banded, laplacian_2d, random_sparse
from repro.instrument import INSTR
from repro.ir.kernels import ALL_KERNELS
from repro.util.env import EnvVarWarning

N = 24


def _native_or_skip():
    if be.find_compiler() is None:
        pytest.skip("no C toolchain")


def _compile(kernel_name, array_name, inst, **kwargs):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", NativeBackendWarning)
        return compile_kernel(ALL_KERNELS[kernel_name](),
                              {array_name: inst}, **kwargs)


class TestTiledByteIdentity:
    """opt="tiled" reorders nothing: outputs must be byte-identical to
    the Python backend across kernels and formats (acceptance)."""

    @pytest.mark.parametrize("fmt_name", ["csr", "dia", "ell", "msr"])
    def test_mvm(self, fmt_name, rng):
        _native_or_skip()
        A = as_format(banded(N, bandwidth=3, seed=2).to_dense(), fmt_name)
        kp = _compile("mvm", "A", A)
        kt = _compile("mvm", "A", A, backend="c", opt="tiled")
        assert kt.opt_used == "tiled"
        x = rng.random(N)
        yp, yt = np.zeros(N), np.zeros(N)
        kp({"A": A, "x": x, "y": yp}, {"m": N, "n": N})
        kt({"A": A, "x": x, "y": yt}, {"m": N, "n": N})
        assert yp.tobytes() == yt.tobytes()

    def test_spmm_register_tile(self, rng):
        _native_or_skip()
        A = as_format(banded(N, bandwidth=3, seed=2), "csr")
        kp = _compile("spmm", "A", A)
        kt = _compile("spmm", "A", A, backend="c", opt="tiled")
        spec = kt.native().spec
        assert "register_tile" in spec.transforms
        for k in (1, 7, 8, 19):     # remainder loop coverage on k % 8
            X = rng.random((N, k))
            Yp, Yt = np.zeros((N, k)), np.zeros((N, k))
            kp({"A": A, "X": X, "Y": Yp}, {"m": N, "n": N, "k": k})
            kt({"A": A, "X": X, "Y": Yt}, {"m": N, "n": N, "k": k})
            assert Yp.tobytes() == Yt.tobytes()

    def test_transforms_recorded_and_digested(self):
        _native_or_skip()
        A = as_format(banded(N, bandwidth=3, seed=2), "dia")
        kt = _compile("mvm", "A", A, backend="c", opt="tiled")
        spec = kt.native().spec
        assert spec.opt == "tiled"
        assert "strip_mine" in spec.transforms
        assert "guard_absorb" in spec.transforms
        # restrict-qualified signature is a tiled-tier property
        assert "restrict" in spec.c_source
        naive = _compile("mvm", "A", A, backend="c", opt="none").native().spec
        assert naive.transforms == []
        assert "restrict" not in naive.c_source

    def test_tier_counter_ticks(self):
        _native_or_skip()
        A = as_format(random_sparse(N, N, 0.3, seed=5), "csr")
        before = INSTR.get("native.tier.tiled")
        k = _compile("mvm", "A", A, backend="c", opt="tiled")
        assert k.native() is not None
        assert INSTR.get("native.tier.tiled") == before + 1


class TestFastTier:
    def test_fast_within_tolerance(self, rng):
        _native_or_skip()
        A = as_format(banded(N, bandwidth=3, seed=2), "csr")
        kp = _compile("mvm", "A", A)
        kf = _compile("mvm", "A", A, backend="c", opt="fast")
        assert kf.opt_used == "fast"
        x = rng.random(N)
        yp, yf = np.zeros(N), np.zeros(N)
        kp({"A": A, "x": x, "y": yp}, {"m": N, "n": N})
        kf({"A": A, "x": x, "y": yf}, {"m": N, "n": N})
        # fp-contract may re-round, so tolerance instead of byte-identity
        np.testing.assert_allclose(yf, yp, rtol=1e-13, atol=1e-13)

    def test_fast_flags_flip_contract(self):
        flags = be.tier_cflags("fast")
        assert "-ffp-contract=fast" in flags
        assert "-ffp-contract=off" not in flags
        assert "-fopenmp-simd" in flags
        naive = be.tier_cflags("none")
        assert "-ffp-contract=off" in naive
        assert "-fopenmp-simd" not in naive


class TestDemotion:
    """Requesting a tier the toolchain cannot honor demotes observably:
    counters tick, a warning names the reason, and the kernel still
    executes correctly through the next tier down."""

    def test_no_toolchain_demotes_to_python(self, rng, monkeypatch):
        monkeypatch.setenv("REPRO_CC", "none")
        be.reset_toolchain_cache()
        try:
            demotions = INSTR.get("native.tier.demotion.no_toolchain")
            A = as_format(random_sparse(N, N, 0.3, seed=5), "csr")
            with pytest.warns(NativeBackendWarning):
                k = compile_kernel(ALL_KERNELS["mvm"](), {"A": A},
                                   backend="c", opt="tiled")
            assert k.native() is None
            assert k.backend_used == "python"
            assert k.fallback_reason is not None
            assert INSTR.get("native.tier.demotion.no_toolchain") \
                == demotions + 1
            x = rng.random(N)
            y = np.zeros(N)
            k({"A": A, "x": x, "y": y}, {"m": N, "n": N})
            assert np.allclose(y, A.to_dense() @ x)
        finally:
            monkeypatch.delenv("REPRO_CC", raising=False)
            be.reset_toolchain_cache()

    def test_simd_probe_failure_demotes_to_naive_native(self, rng,
                                                        monkeypatch):
        _native_or_skip()
        monkeypatch.setattr(be, "simd_supported", lambda cc: False)
        demotions = INSTR.get("native.tier.demotion.simd_probe")
        A = as_format(random_sparse(N, N, 0.3, seed=6), "csr")
        with pytest.warns(NativeBackendWarning):
            k = compile_kernel(ALL_KERNELS["mvm"](), {"A": A},
                               backend="c", opt="tiled")
        # demoted to the naive *native* tier, not to Python
        assert k.native() is not None
        assert k.opt == "tiled" and k.opt_used == "none"
        assert INSTR.get("native.tier.demotion.simd_probe") == demotions + 1
        x = rng.random(N)
        y = np.zeros(N)
        k({"A": A, "x": x, "y": y}, {"m": N, "n": N})
        assert np.allclose(y, A.to_dense() @ x)

    def test_repr_shows_demotion(self, monkeypatch):
        _native_or_skip()
        monkeypatch.setattr(be, "simd_supported", lambda cc: False)
        A = as_format(random_sparse(N, N, 0.3, seed=6), "csr")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", NativeBackendWarning)
            k = compile_kernel(ALL_KERNELS["mvm"](), {"A": A},
                               backend="c", opt="tiled")
        assert "opt=tiled->none" in repr(k)


class TestEnvKnobs:
    def test_repro_opt_env_default(self, monkeypatch):
        _native_or_skip()
        monkeypatch.setenv("REPRO_OPT", "tiled")
        A = as_format(random_sparse(N, N, 0.3, seed=7), "csr")
        k = _compile("mvm", "A", A, backend="c")
        assert k.opt == "tiled" and k.opt_used == "tiled"

    def test_repro_opt_invalid_warns_and_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_OPT", "warp9")
        A = as_format(random_sparse(N, N, 0.3, seed=7), "csr")
        with pytest.warns(EnvVarWarning):
            k = _compile("mvm", "A", A, backend="c")
        assert k.opt == "none"

    def test_explicit_invalid_opt_raises(self):
        A = as_format(random_sparse(N, N, 0.3, seed=7), "csr")
        with pytest.raises(ValueError, match="opt"):
            compile_kernel(ALL_KERNELS["mvm"](), {"A": A}, backend="c",
                           opt="warp9")

    def test_tile_rows_env_baked_into_source(self, monkeypatch):
        from repro.codegen.native import lower_kernel

        A = as_format(random_sparse(N, N, 0.3, seed=8), "csr")
        k = _compile("mvm", "A", A)   # python kernel carries the plan
        monkeypatch.setenv("REPRO_TILE_ROWS", "64")
        spec = lower_kernel(k, opt="tiled")
        assert "+= 64" in spec.c_source
        monkeypatch.setenv("REPRO_TILE_ROWS", "128")
        spec2 = lower_kernel(k, opt="tiled")
        assert "+= 128" in spec2.c_source
        assert spec.c_source != spec2.c_source   # digest input differs

    def test_repro_cflags_appended_and_digested(self, rng, monkeypatch):
        _native_or_skip()
        src = ("#include <stdint.h>\n"
               "void kernel(int64_t n, double *y) {\n"
               "    for (int64_t i = 0; i < n; i++) y[i] = MARK;\n"
               "}\n")
        from repro.util.env import env_flags

        cc = be.find_compiler()
        monkeypatch.setenv("REPRO_CFLAGS", "-DMARK=2.0")
        d1 = be.artifact_key(src, tuple(env_flags("REPRO_CFLAGS")), cc)
        fn1, _ = be.compile_native_function(src, want_openmp=False,
                                            cache_mode="memory")
        monkeypatch.setenv("REPRO_CFLAGS", "-DMARK=3.0")
        d2 = be.artifact_key(src, tuple(env_flags("REPRO_CFLAGS")), cc)
        fn2, _ = be.compile_native_function(src, want_openmp=False,
                                            cache_mode="memory")
        assert d1 != d2          # flags are part of the artifact digest
        import ctypes
        # and the cache honored it: same source, different flags, two
        # distinct binaries — 2.0 then 3.0, never a stale .so
        for fn, want in ((fn1, 2.0), (fn2, 3.0)):
            fn.argtypes = [ctypes.c_int64, ctypes.c_void_p]
            fn.restype = None
            y = np.zeros(4)
            fn(4, ctypes.c_void_p(y.ctypes.data))
            assert np.all(y == want)

    def test_repro_cflags_malformed_warns_and_ignores(self, monkeypatch):
        from repro.util.env import env_flags

        monkeypatch.setenv("REPRO_CFLAGS", "'unterminated")
        with pytest.warns(EnvVarWarning):
            assert env_flags("REPRO_CFLAGS") == []


class TestPreparedDispatch:
    """The NativeKernel prepared-argument fast path must never serve
    stale pointers: identity-checked arrays, value-checked scalars."""

    def test_repeat_calls_use_prepared_path(self, rng):
        _native_or_skip()
        A = as_format(random_sparse(N, N, 0.3, seed=9), "csr")
        k = _compile("mvm", "A", A, backend="c")
        nk = k.native()
        x = rng.random(N)
        y = np.zeros(N)
        arrays, params = {"A": A, "x": x, "y": y}, {"m": N, "n": N}
        nk(arrays, params)
        before = INSTR.get("native.dispatch.prepared")
        nk(arrays, params)
        assert INSTR.get("native.dispatch.prepared") == before + 1
        # in-place mutation through the same buffers stays correct
        x[:] = rng.random(N)
        nk(arrays, params)
        assert np.allclose(y, A.to_dense() @ x)

    def test_swapped_array_invalidates_preparation(self, rng):
        _native_or_skip()
        A = as_format(random_sparse(N, N, 0.3, seed=9), "csr")
        k = _compile("mvm", "A", A, backend="c")
        nk = k.native()
        x1, x2 = rng.random(N), rng.random(N)
        y = np.zeros(N)
        params = {"m": N, "n": N}
        nk({"A": A, "x": x1, "y": y}, params)
        nk({"A": A, "x": x2, "y": y}, params)   # new object: must re-coerce
        assert np.allclose(y, A.to_dense() @ x2)


class TestSpgemmNativeTier:
    def test_byte_identity_and_counter(self):
        _native_or_skip()
        from repro.blas.api import spgemm_triples

        A = as_format(laplacian_2d(8), "csr")
        before = INSTR.get("spgemm.tier.native")
        rn, cn, vn, mn = spgemm_triples(A, A, tier="native")
        assert INSTR.get("spgemm.tier.native") == before + 1
        rv, cv, vv, mv = spgemm_triples(A, A, tier="vectorized")
        assert rn.tobytes() == np.ascontiguousarray(rv).tobytes()
        assert cn.tobytes() == np.ascontiguousarray(cv).tobytes()
        assert vn.tobytes() == np.ascontiguousarray(vv).tobytes()
        assert mn == mv

    def test_non_csr_operands_rejected(self):
        from repro.blas.api import spgemm_triples

        A = as_format(laplacian_2d(4), "csr")
        B = as_format(laplacian_2d(4), "coo")
        with pytest.raises(ValueError, match="CSR"):
            spgemm_triples(A, B, tier="native")

    def test_no_toolchain_falls_back_observably(self, monkeypatch):
        from repro.blas import spgemm_native
        from repro.blas.api import spgemm_triples

        monkeypatch.setenv("REPRO_CC", "none")
        be.reset_toolchain_cache()
        spgemm_native.reset_binding()
        try:
            A = as_format(laplacian_2d(6), "csr")
            fallbacks = INSTR.get("spgemm.tier.native_fallbacks")
            with pytest.warns(NativeBackendWarning):
                rows, cols, vals, nmults = spgemm_triples(A, A, tier="native")
            assert INSTR.get("spgemm.tier.native_fallbacks") == fallbacks + 1
            rv, cv, vv, mv = spgemm_triples(A, A, tier="vectorized")
            assert np.array_equal(rows, rv) and np.array_equal(vals, vv)
        finally:
            monkeypatch.delenv("REPRO_CC", raising=False)
            be.reset_toolchain_cache()
            spgemm_native.reset_binding()


class TestAutotuneTierAxis:
    def _select(self, matrix, **kwargs):
        from repro.search.format_select import select_format

        return select_format(ALL_KERNELS["mvm"](), "A", matrix,
                             mode="auto", backend="c", repeats=2,
                             autotune_cache="memory", **kwargs)

    def test_winner_records_tier_and_replays_it(self, monkeypatch):
        _native_or_skip()
        from repro.search.autotune import clear_winner_cache

        # pin the base tier: under REPRO_OPT=tiled every ranked candidate
        # is already tiled and no "none" variants would be measured
        monkeypatch.delenv("REPRO_OPT", raising=False)
        clear_winner_cache()
        A = as_format(banded(600, bandwidth=3, seed=1), "csr")
        cold = self._select(A)
        assert not cold.cached
        # both tiers of at least one format were measured
        tiers = {c.tier for c in cold.choices if c.measured is not None}
        assert "tiled" in tiers and "none" in tiers

        B = as_format(banded(600, bandwidth=3, seed=2), "csr")
        runs = INSTR.get("autotune.microbench.runs")
        warm = self._select(B)
        assert warm.cached
        assert INSTR.get("autotune.microbench.runs") == runs   # zero warm
        best_cold, best_warm = cold.choices[0], warm.choices[0]
        assert best_warm.format_name == best_cold.format_name
        assert best_warm.tier == best_cold.tier
        assert best_warm.kernel.opt == best_cold.tier

    def test_pre_tier_record_replays_as_naive(self):
        """Back-compat: a winner record without a 'tier' key (written by
        an older version) replays at opt='none'."""
        from repro.formats.base import coo_dedup_sort
        from repro.search.format_select import _replay_winner

        A = as_format(banded(40, bandwidth=2, seed=1), "csr")
        rows, cols, vals = A.to_coo_arrays()
        rows, cols, vals = coo_dedup_sort(rows, cols, vals, A.shape,
                                          order="row")
        record = {"format": "csr", "backend_used": "c",
                  "measured": {"csr": 1e-6}}
        res = _replay_winner(ALL_KERNELS["mvm"](), "A", A, record, rows,
                             cols, vals, A.bounds(), "c", {})
        choice = res.choices[0]
        assert choice.tier == "none"
        assert choice.kernel.opt == "none"
        assert choice.measured == 1e-6


class TestSolverContextTier:
    def test_explicit_opt_binds_tier(self, rng):
        _native_or_skip()
        from repro.solvers.context import SolverContext

        A = as_format(banded(200, bandwidth=3, seed=4), "csr")
        ctx = SolverContext(A, ops=("mvm",), backend="c", opt="tiled",
                            register=False)
        k = ctx.bound("mvm").kernel
        assert k.opt == "tiled" and k.opt_used == "tiled"
        x = rng.random(ctx.A.ncols)
        y = ctx.matvec(x).copy()
        assert np.allclose(y, ctx.A.to_dense() @ x)

    def test_auto_select_binds_tuned_tier(self):
        _native_or_skip()
        from repro.search.autotune import clear_winner_cache
        from repro.solvers.context import SolverContext

        clear_winner_cache()
        A = as_format(banded(600, bandwidth=3, seed=5), "csr")
        ctx = SolverContext(A, ops=("mvm",), select="auto", backend="c",
                            register=False)
        tuned = ctx.selection.choices[0].tier
        assert ctx.opt == tuned
        assert ctx.bound("mvm").kernel.opt == tuned

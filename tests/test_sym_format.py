"""Symmetric storage: Union + Map composed (the mirror image of the stored
triangle)."""

import numpy as np
import pytest

from repro.blas import specialized
from repro.core import compile_kernel
from repro.formats import SymMatrix, as_format
from repro.formats.generate import laplacian_2d, random_sparse
from repro.ir import execute_dense
from repro.ir.kernels import frobenius, mvm, row_sums

_cache = {}


def _compiled(key, prog, bindings):
    if key not in _cache:
        _cache[key] = compile_kernel(prog, bindings)
    return _cache[key]


@pytest.fixture(scope="module")
def sym_pair():
    L = laplacian_2d(4)
    return as_format(L, "sym"), L.to_dense()


class TestStorage:
    def test_roundtrip(self, sym_pair):
        S, D = sym_pair
        assert np.allclose(S.to_dense(), D)

    def test_stores_only_lower(self, sym_pair):
        S, D = sym_pair
        assert S.stored_nnz < S.nnz
        full = int(np.count_nonzero(D))
        assert S.nnz == full

    def test_random_access_both_triangles(self, sym_pair):
        S, D = sym_pair
        assert S.get(1, 0) == pytest.approx(D[1, 0])
        assert S.get(0, 1) == pytest.approx(D[0, 1])
        local = S.copy()  # don't mutate the shared fixture
        local.set(0, 1, 7.0)  # writes the stored mirror element
        assert local.get(1, 0) == 7.0

    def test_rejects_asymmetric(self):
        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        with pytest.raises(ValueError):
            SymMatrix.from_dense(a)

    def test_rejects_rectangular(self):
        with pytest.raises(ValueError):
            SymMatrix.from_coo([0], [0], [1.0], (2, 3))

    def test_branches(self, sym_pair):
        S, _ = sym_pair
        assert S.union_branches() == ["u0", "u1"]
        lower = S.path("lower")
        mirror = S.path("mirror")
        assert lower.subs["r"].variables() == ("r",)
        # the mirror swaps the roles: logical r is the stored column
        assert mirror.subs["r"].variables() == ("cc",)
        assert mirror.subs["c"].variables() == ("rr",)


@pytest.mark.slow
class TestCompiled:
    def test_mvm_both_backends(self, sym_pair, rng):
        S, D = sym_pair
        k = _compiled("mvm", mvm(), {"A": S})
        x = rng.random(16)
        for runner in (k.run, k):
            y = np.full(16, 3.0)
            runner({"A": S, "x": x, "y": y}, {"m": 16, "n": 16})
            assert np.allclose(y, D @ x)

    def test_mirror_branch_contributes(self, sym_pair, rng):
        """Zeroing the compiled kernel's mirror contribution must break the
        result — i.e. the upper triangle really flows through the Union's
        second branch."""
        S, D = sym_pair
        k = _compiled("mvm", mvm(), {"A": S})
        labels = {c.label for c in k.plan.space.copies}
        assert any("u1" in l for l in labels)

    def test_frobenius(self, sym_pair):
        S, D = sym_pair
        k = _compiled("frob", frobenius(), {"A": S})
        acc = np.array(0.0)
        k({"A": S, "acc": acc}, {"m": 16, "n": 16})
        assert np.allclose(acc, (D * D).sum())

    def test_row_sums(self, sym_pair):
        S, D = sym_pair
        k = _compiled("rs", row_sums(), {"A": S})
        s = np.full(16, 2.0)
        k({"A": S, "s": s}, {"m": 16, "n": 16})
        assert np.allclose(s, D.sum(axis=1))


class TestSpecializedBaseline:
    def test_sym_spmv(self, sym_pair, rng):
        S, D = sym_pair
        x = rng.random(16)
        y = np.zeros(16)
        specialized.mvm_sym(S, x, y)
        assert np.allclose(y, D @ x)

    def test_random_symmetric(self, rng):
        a = random_sparse(10, 10, 0.3, seed=55).to_dense()
        d = a + a.T
        S = as_format(d, "sym")
        x = rng.random(10)
        y = np.zeros(10)
        specialized.mvm_sym(S, x, y)
        assert np.allclose(y, d @ x)

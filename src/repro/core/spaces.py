"""Statement spaces and product spaces (paper Section 3.1, problem 1, and
Section 4's sparse refinement).

Each statement's *statement space* is the Cartesian product of its iteration
space (one dimension per surrounding loop) and its *sparse data space* (one
dimension per stored axis of each sparse reference, after pushing the
format's ``map`` rules through — e.g. a DIA reference contributes (d, o)
rather than (r, c)).

A *product space* is an ordered list of dimensions drawn from all statement
spaces, with join groups fusing dimensions that are enumerated together
(the paper's common enumerations).  Statements referencing aggregated
(Union) formats are split into one copy per branch before spaces are built
(paper Section 4).
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.accesses import Access, collect_accesses, READ, WRITE
from repro.formats.base import SparseFormat
from repro.formats.views import AccessPath
from repro.ir.program import Program, StatementContext
from repro.polyhedra.linexpr import LinExpr
from repro.polyhedra.system import Constraint, System, EQ, GE


class SparseRef:
    """One access to a sparse matrix inside one statement copy, resolved to
    a concrete access path of the bound format.

    Variable names are qualified by the owning *copy* label (``S2[u0]#1.d``)
    so that Union-split copies of one statement never collide.
    """

    __slots__ = ("access", "fmt", "path", "owner_label")

    def __init__(self, access: Access, fmt: SparseFormat, path: AccessPath,
                 owner_label: str = ""):
        self.access = access
        self.fmt = fmt
        self.path = path
        self.owner_label = owner_label or access.stmt_name

    @property
    def stmt_name(self) -> str:
        return self.access.stmt_name

    @property
    def array(self) -> str:
        return self.access.array

    @property
    def key(self) -> Tuple[str, int]:
        """(copy label, ref ordinal) — unique across the product space."""
        return (self.owner_label, self.access.ref_id)

    def axis_var(self, axis: str) -> str:
        """Qualified product-space variable for one stored axis of this
        reference: 'S2[u0]#1.d'."""
        return f"{self.owner_label}#{self.access.ref_id}.{axis}"

    def axis_vars(self) -> List[str]:
        return [self.axis_var(a) for a in self.path.axis_names]

    def relation(self, iter_qual) -> System:
        """Affine constraints tying this reference's axis variables to the
        copy's iteration variables:

        - access coupling: ``subs_dim(axes) == index_expr(iteration vars)``
          for each logical dimension of the matrix;
        - the format's bounds annotation, rewritten onto the axes;
        - axis value ranges known from the matrix shape.

        ``iter_qual`` maps local loop-variable names to qualified names.
        """
        amap = {a: self.axis_var(a) for a in self.path.axis_names}
        cons: List[Constraint] = []
        logical_order = ("r", "c")
        for dim_name, idx_expr in zip(logical_order, self.access.indices):
            stored = self.path.subs[dim_name].rename(amap)
            it = idx_expr.rename(iter_qual).lin
            cons.append(Constraint(stored - it, EQ))
        bounds = self.fmt.bounds()
        if bounds is not None:
            # bounds are over logical "r","c": express through the subs
            bindings = {
                d: self.path.subs[d].rename(amap) for d in logical_order
            }
            cons.extend(bounds.substitute(bindings).constraints)
        for a in self.path.axis_names:
            rng = self.fmt.axis_range(a)
            if rng is not None:
                lo, hi = rng
                v = LinExpr.variable(self.axis_var(a))
                cons.append(Constraint(v - lo, GE))
                cons.append(Constraint(LinExpr.constant(hi - 1) - v, GE))
        return System(cons)

    def __repr__(self):
        return f"<ref {self.owner_label}#{self.access.ref_id} {self.array}:{self.path.path_id}>"


class StmtCopy:
    """A statement, possibly specialized to one aggregation branch per
    Union-format reference.  Copies of the same statement share its
    dependence classes but get their own qualified variable namespace."""

    __slots__ = ("ctx", "refs", "copy_tag")

    def __init__(self, ctx: StatementContext, refs: Sequence[SparseRef], copy_tag: str):
        self.ctx = ctx
        self.copy_tag = copy_tag  # "" or like "u0", "u0|u1" for multiple unions
        self.refs = [
            SparseRef(r.access, r.fmt, r.path, self.label) for r in refs
        ]

    @property
    def name(self) -> str:
        return self.ctx.name

    @property
    def label(self) -> str:
        return self.name + (f"[{self.copy_tag}]" if self.copy_tag else "")

    def qual(self, var: str) -> str:
        """Copy-qualified name of a local loop variable."""
        return f"{self.label}.{var}"

    def qual_map(self) -> Dict[str, str]:
        return {v: self.qual(v) for v in self.ctx.vars}

    def iter_vars(self) -> List[str]:
        return [self.qual(v) for v in self.ctx.vars]

    def all_vars(self) -> List[str]:
        out = self.iter_vars()
        for ref in self.refs:
            out.extend(ref.axis_vars())
        return out

    def relation(self) -> System:
        """Domain constraints + every reference's relation, all over this
        copy's qualified variables."""
        dom = self.ctx.domain().rename({
            self.ctx.qualified(v): self.qual(v) for v in self.ctx.vars
        })
        sys_ = dom
        for ref in self.refs:
            sys_ = sys_.conjoin(ref.relation(self.qual_map()))
        return sys_

    def ref_by_ordinal(self, ref_id: int) -> Optional[SparseRef]:
        for r in self.refs:
            if r.access.ref_id == ref_id:
                return r
        return None

    def __repr__(self):
        return f"<copy {self.label} refs={self.refs}>"


def build_copies(
    program: Program,
    bindings: Mapping[str, SparseFormat],
    path_choice: Mapping[Tuple[str, int], str],
) -> List[StmtCopy]:
    """Instantiate statement copies for a given per-reference path choice.

    ``path_choice`` maps (stmt_name, ref_id) to a path id for references to
    Perspective formats; references to Union formats are expanded into one
    copy per combination of branches, with ``path_choice`` selecting among
    paths *within* each branch (key extended with the branch id is tried
    first, then the bare key).
    """
    copies: List[StmtCopy] = []
    for ctx in program.statements():
        sparse_accesses: List[Access] = []
        ordinal = 0
        acc_list = []
        acc_list.append(Access(ctx, ctx.stmt.lhs.array, WRITE, ctx.stmt.lhs.indices, 0))
        for r in ctx.stmt.reads():
            if r.array == "__var__":
                continue
            ordinal += 1
            acc_list.append(Access(ctx, r.array, READ, r.indices, ordinal))
        for acc in acc_list:
            if acc.array in bindings:
                sparse_accesses.append(acc)

        # each Union-format access picks a branch; the copy set is the
        # cross-product of branch choices
        branch_options: List[List[str]] = []
        for acc in sparse_accesses:
            fmt = bindings[acc.array]
            branch_options.append(fmt.union_branches())
        if not sparse_accesses:
            copies.append(StmtCopy(ctx, [], ""))
            continue
        for combo in itertools.product(*branch_options):
            refs: List[SparseRef] = []
            ok = True
            for acc, br in zip(sparse_accesses, combo):
                fmt = bindings[acc.array]
                cands = [p for p in fmt.paths() if p.branch == br]
                chosen = None
                key_with_branch = (acc.stmt_name, acc.ref_id, br)
                if key_with_branch in path_choice:
                    pid = path_choice[key_with_branch]
                    chosen = next((p for p in cands if p.path_id == pid), None)
                elif acc.key() in path_choice:
                    pid = path_choice[acc.key()]
                    chosen = next((p for p in cands if p.path_id == pid), None)
                if chosen is None:
                    chosen = cands[0]
                refs.append(SparseRef(acc, fmt, chosen))
            tag = "|".join(b for b in combo if b)
            copies.append(StmtCopy(ctx, refs, tag))
    return copies


class ProductDim:
    """One dimension of the product space.

    ``members`` lists the (SparseRef, axis-name) pairs fused into this
    dimension (a non-empty list makes it a *data* dimension; joined members
    are the paper's common enumerations).  ``owner_var`` names the iteration
    variable for pure iteration dimensions.
    """

    __slots__ = ("name", "members", "owner_var", "joint_with")

    def __init__(self, name: str, members: Sequence[Tuple[SparseRef, str]] = (),
                 owner_var: Optional[str] = None):
        self.name = name
        self.members = list(members)
        self.owner_var = owner_var
        # dims produced by the same joint step as this one (set by the
        # space builder for COO-style tuple steps)
        self.joint_with: List["ProductDim"] = []

    @property
    def is_data(self) -> bool:
        return bool(self.members)

    def member_vars(self) -> List[str]:
        return [ref.axis_var(axis) for ref, axis in self.members]

    def __repr__(self):
        if self.is_data:
            ms = ",".join(f"{r.stmt_name}#{r.access.ref_id}.{a}" for r, a in self.members)
            return f"Dim({self.name}:[{ms}])"
        return f"Dim({self.name}:{self.owner_var})"


class ProductSpace:
    """An ordered product space: data dimensions first (the data-centric
    heuristic of paper Section 4.3), then iteration dimensions."""

    __slots__ = ("dims", "copies")

    def __init__(self, dims: Sequence[ProductDim], copies: Sequence[StmtCopy]):
        self.dims = list(dims)
        self.copies = list(copies)

    def data_dims(self) -> List[ProductDim]:
        return [d for d in self.dims if d.is_data]

    def iter_dims(self) -> List[ProductDim]:
        return [d for d in self.dims if not d.is_data]

    def __repr__(self):
        return "ProductSpace(" + " x ".join(d.name for d in self.dims) + ")"

"""The sparse code-synthesis compiler: statement/product spaces, affine
embeddings with exact legality, redundancy analysis, enumeration plans,
and the ``compile_kernel`` entry point.
"""

from repro.core.spaces import ProductDim, ProductSpace, SparseRef, StmtCopy, build_copies
from repro.core.embedding import (
    AT,
    BEFORE,
    AFTER,
    INC,
    DEC,
    DimEmbedding,
    OrderAnalysis,
    SpaceEmbedding,
    analyze_order,
    check_legality,
    pair_deltas,
    pair_polyhedron,
    required_directions,
)
from repro.core.redundancy import DeterminacyTracker, g_matrix, redundant_dims
from repro.core.plan import (
    Bind,
    ExecNode,
    IntervalEnum,
    LoopNode,
    Plan,
    PlanError,
    RefRole,
    SearchEnum,
    SortedEnum,
    StoredEnum,
    VarLoopNode,
    build_plan,
)
from repro.core.compiler import CompiledKernel, compile_kernel
from repro.core.backend import NativeBackendWarning, NativeKernel
from repro.core.service import BatchResult, CompileOutcome, compile_many
from repro.core.parallel import ParallelReport, analyze_parallelism, annotate_c_source

# The daemon/client pair is loaded lazily (PEP 562): eagerly importing
# repro.core.daemon here would shadow `python -m repro.core.daemon`
# (runpy warns when the module is already in sys.modules) and drags
# socket plumbing into every compile-only import.
_LAZY = {
    "CompileServer": "repro.core.daemon",
    "ServiceClient": "repro.core.client",
    "ServiceError": "repro.core.client",
    "RemoteCompileError": "repro.core.client",
    "RemoteOutcome": "repro.core.client",
}


def __getattr__(name):
    modname = _LAZY.get(name)
    if modname is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(modname), name)
    globals()[name] = value
    return value

__all__ = [
    "ProductDim",
    "ProductSpace",
    "SparseRef",
    "StmtCopy",
    "build_copies",
    "AT",
    "BEFORE",
    "AFTER",
    "INC",
    "DEC",
    "DimEmbedding",
    "OrderAnalysis",
    "SpaceEmbedding",
    "analyze_order",
    "check_legality",
    "pair_deltas",
    "pair_polyhedron",
    "required_directions",
    "DeterminacyTracker",
    "g_matrix",
    "redundant_dims",
    "Bind",
    "ExecNode",
    "IntervalEnum",
    "LoopNode",
    "Plan",
    "PlanError",
    "RefRole",
    "SearchEnum",
    "SortedEnum",
    "StoredEnum",
    "VarLoopNode",
    "build_plan",
    "CompiledKernel",
    "compile_kernel",
    "NativeBackendWarning",
    "NativeKernel",
    "BatchResult",
    "CompileOutcome",
    "compile_many",
    "CompileServer",
    "ServiceClient",
    "ServiceError",
    "RemoteCompileError",
    "RemoteOutcome",
    "ParallelReport",
    "analyze_parallelism",
    "annotate_c_source",
]

"""Compilation cache: amortize the enumerate-estimate-select pipeline.

The Bernoulli model compiles one kernel per (program, format-structure)
pair and reuses it for every matrix instance with that structure.  This
module implements that amortization for :func:`repro.core.compiler.
compile_kernel`:

**Structural signature** — the cache key is a SHA-256 digest of
everything the candidate search depends on: the program text (the IR
printer is deterministic and round-trippable), the per-array format
*structure* (format class and name, view shape via access-path reprs and
index substitutions, bounds annotations, per-axis ranges/totals — all
shape-derived, none statistics-derived), the concrete ``param_values``,
and the search knobs (``pick``, ``max_orders``, ``simplify_guards``).
Two calls with equal structural signatures are guaranteed to enumerate
the identical candidate set and lower the identical plans; only the
*cost ranking* can differ, because costs read instance statistics.

**Statistics signature & invalidation** — alongside each entry we record
the instance statistics the ranking consumed (shape, nnz, per-path step
totals).  On a hit with equal statistics the memoized selection is
returned as-is.  On a hit with shifted statistics the cached ranked plans
are *re-costed* against the new instances (``plan_cost(..., fmts=...)``)
and re-selected — exactly what a fresh search would do after re-lowering
the same candidates, minus the polyhedral work.  ``pick="first"``
ignores costs entirely, so its entries replay regardless of statistics
(the first legal candidate is structure-determined).

**Layers** — an in-memory LRU (always consulted when caching is on) and
an opt-in on-disk layer (``cache="disk"``) that pickles entries under a
cache directory so separate processes share compiles.  Generated Python
source is published into the entry on first codegen and replayed
byte-identically on later hits.

Control: ``compile_kernel(..., cache="off"|"memory"|"disk")``, default
taken from ``REPRO_COMPILE_CACHE`` (default ``"memory"``).  With
``"off"`` the pipeline runs untouched — zero behavior change.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from collections import OrderedDict
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.plan import ExecNode, LoopNode, VarLoopNode
from repro.cost.model import plan_cost, step_totals
from repro.formats.base import SparseFormat
from repro.instrument import INSTR
from repro.ir.printer import program_to_text
from repro.ir.program import Program
from repro.search.driver import SearchResult, SearchStats

MODES = ("off", "memory", "disk")


def resolve_mode(cache: Optional[str]) -> str:
    """``cache`` kwarg if given, else ``REPRO_COMPILE_CACHE``, else memory."""
    mode = cache if cache is not None else os.environ.get(
        "REPRO_COMPILE_CACHE", "memory").strip().lower()
    if mode not in MODES:
        raise ValueError(f"cache mode must be one of {MODES}, got {mode!r}")
    return mode


# ---------------------------------------------------------------------------
# Signatures
# ---------------------------------------------------------------------------

def format_structure(fmt: SparseFormat) -> Tuple:
    """Everything about a format instance the candidate search can see:
    class, view/path shape, substitutions, annotations, axis geometry.
    Deliberately excludes the stored data and its statistics."""
    paths = []
    for p in fmt.paths():
        axes = []
        for a in p.axis_names:
            axes.append((a, fmt.axis_range(a), fmt.axis_total(a)))
        paths.append((
            p.path_id,
            repr(p),                          # steps + branch (subs omitted)
            repr(sorted(p.subs.items(), key=lambda kv: kv[0])),
            tuple(axes),
        ))
    return (
        type(fmt).__name__,
        fmt.format_name,
        fmt.nrows,
        fmt.ncols,
        repr(fmt.bounds()),
        tuple(paths),
    )


def structural_signature(
    program: Program,
    bindings: Mapping[str, SparseFormat],
    param_values: Mapping[str, int],
    pick: str,
    max_orders: int,
    simplify_guards: bool,
) -> str:
    """Canonical digest of everything that determines the candidate set
    and the lowered plans (not their cost ranking)."""
    parts: List[str] = [
        program_to_text(program),
        repr(sorted((k, int(v)) for k, v in param_values.items())),
        repr((pick, max_orders, bool(simplify_guards))),
    ]
    for name in sorted(bindings):
        parts.append(repr((name, format_structure(bindings[name]))))
    blob = "\x1e".join(parts)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def stats_signature(bindings: Mapping[str, SparseFormat]) -> Tuple:
    """The instance statistics the cost ranking consumed."""
    out = []
    for name in sorted(bindings):
        fmt = bindings[name]
        per_path = tuple(
            (p.path_id, tuple(step_totals(fmt, p.path_id))) for p in fmt.paths()
        )
        out.append((name, fmt.nrows, fmt.ncols, fmt.nnz, per_path))
    return tuple(out)


# ---------------------------------------------------------------------------
# Entries
# ---------------------------------------------------------------------------

class CacheEntry:
    """One memoized search: the ranked lowered plans (cost-sorted at record
    time), which index was selected, the statistics that ranking saw, and
    the generated source per selected plan (published lazily)."""

    def __init__(self, ranked, selected_index: int, pick: str,
                 stats_sig: Tuple, search_stats: SearchStats):
        self.ranked = list(ranked)            # [(cost, candidate, plan)]
        self.selected_index = selected_index
        self.pick = pick
        self.stats_sig = stats_sig
        self.search_stats = search_stats
        self.simplified = set()               # ranked indexes already guard-simplified
        self.sources: Dict[int, str] = {}     # ranked index -> generated source
        self.fns: Dict[int, object] = {}      # ranked index -> exec'd kernel (transient)
        # pristine per-exec-node guard lists, captured before any guard
        # simplification, so re-ranking can cost plans the way a fresh
        # search would (simplification mutates plans in place)
        self.guard_snapshots: Dict[int, List[List]] = {
            i: [list(n.guards) for n in _exec_nodes(plan)]
            for i, (_c, _cand, plan) in enumerate(self.ranked)
        }

    def __getstate__(self):
        state = dict(self.__dict__)
        state["fns"] = {}                     # callables don't pickle; rebuilt from source
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)


class CompileCache:
    """In-memory LRU of :class:`CacheEntry`, with an optional disk layer."""

    def __init__(self, capacity: int = 256):
        self.capacity = capacity
        self.entries: "OrderedDict[str, CacheEntry]" = OrderedDict()

    # -- memory layer ----------------------------------------------------
    def get(self, key: str) -> Optional[CacheEntry]:
        entry = self.entries.get(key)
        if entry is not None:
            self.entries.move_to_end(key)
        return entry

    def put(self, key: str, entry: CacheEntry) -> None:
        self.entries[key] = entry
        self.entries.move_to_end(key)
        while len(self.entries) > self.capacity:
            self.entries.popitem(last=False)

    def clear(self) -> None:
        self.entries.clear()

    def __len__(self) -> int:
        return len(self.entries)

    # -- disk layer ------------------------------------------------------
    def disk_dir(self) -> str:
        return os.environ.get(
            "REPRO_CACHE_DIR",
            os.path.join(tempfile.gettempdir(), "repro-compile-cache"),
        )

    def _disk_path(self, key: str) -> str:
        return os.path.join(self.disk_dir(), key + ".pkl")

    def disk_get(self, key: str) -> Optional[CacheEntry]:
        path = self._disk_path(key)
        try:
            with open(path, "rb") as f:
                entry = pickle.load(f)
        except (OSError, pickle.PickleError, EOFError, AttributeError,
                ImportError, IndexError):
            return None
        if not isinstance(entry, CacheEntry):
            return None
        return entry

    def disk_put(self, key: str, entry: CacheEntry) -> None:
        d = self.disk_dir()
        try:
            os.makedirs(d, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=d, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as f:
                    pickle.dump(entry, f, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, self._disk_path(key))
            finally:
                if os.path.exists(tmp):
                    os.unlink(tmp)
        except (OSError, pickle.PickleError, TypeError):
            # disk layer is best-effort: un-picklable or unwritable entries
            # simply stay memory-only
            INSTR.count("cache.disk.save_errors")


#: the process-wide compilation cache
COMPILE_CACHE = CompileCache(
    capacity=int(os.environ.get("REPRO_COMPILE_CACHE_SIZE", "256") or "256")
)


def clear_compile_cache(disk: bool = False) -> None:
    """Drop the in-memory cache (and the disk layer when ``disk=True``)."""
    COMPILE_CACHE.clear()
    if disk:
        d = COMPILE_CACHE.disk_dir()
        if os.path.isdir(d):
            for fn in os.listdir(d):
                if fn.endswith(".pkl"):
                    try:
                        os.unlink(os.path.join(d, fn))
                    except OSError:
                        pass


# ---------------------------------------------------------------------------
# Lookup / record
# ---------------------------------------------------------------------------

def _select(ranked, pick: str) -> int:
    return len(ranked) - 1 if pick == "worst" else 0


def _exec_nodes(plan) -> List[ExecNode]:
    out: List[ExecNode] = []

    def walk(nodes):
        for n in nodes:
            if isinstance(n, ExecNode):
                out.append(n)
            elif isinstance(n, LoopNode):
                walk(n.before)
                walk(n.body)
                walk(n.after)
            elif isinstance(n, VarLoopNode):
                walk(n.body)

    walk(plan.nodes)
    return out


def _pristine_cost(entry: CacheEntry, idx: int, plan,
                   param_values: Mapping[str, int],
                   fmts: Mapping[str, SparseFormat]) -> float:
    """Cost the plan as a fresh search would see it: guard simplification
    happens after costing, so simplified plans are re-costed with their
    recorded pre-simplification guards swapped back in."""
    snap = entry.guard_snapshots.get(idx)
    if idx not in entry.simplified or snap is None:
        return plan_cost(plan, param_values, fmts=fmts)
    nodes = _exec_nodes(plan)
    saved = [n.guards for n in nodes]
    for n, g in zip(nodes, snap):
        n.guards = list(g)
    try:
        return plan_cost(plan, param_values, fmts=fmts)
    finally:
        for n, g in zip(nodes, saved):
            n.guards = g


def lookup(
    key: str,
    mode: str,
    bindings: Mapping[str, SparseFormat],
    param_values: Mapping[str, int],
    pick: str,
) -> Optional[Tuple[SearchResult, CacheEntry, int]]:
    """Serve a memoized search for this structural key, or None.

    Returns the reconstructed :class:`SearchResult` plus the entry and the
    ranked index selected (for source replay/publication)."""
    INSTR.count("cache.lookups")
    entry = COMPILE_CACHE.get(key)
    layer = "memory"
    if entry is None and mode == "disk":
        entry = COMPILE_CACHE.disk_get(key)
        layer = "disk"
        if entry is not None:
            COMPILE_CACHE.put(key, entry)     # promote for this process
    if entry is None:
        INSTR.count("cache.misses")
        return None

    new_sig = stats_signature(bindings)
    stats = entry.search_stats.clone()
    stats.from_cache = True

    if new_sig == entry.stats_sig:
        INSTR.count(f"cache.hits.{layer}")
        INSTR.count("cache.hits.exact")
        idx = entry.selected_index
        cost, cand, plan = entry.ranked[idx]
        return SearchResult(plan, cost, cand, stats, list(entry.ranked)), entry, idx

    # Statistics shifted: re-cost the memoized plans against the new
    # instances and re-select, exactly as a fresh search would rank them.
    INSTR.count(f"cache.hits.{layer}")
    INSTR.count("cache.hits.rerank")
    stats.reranked = True
    if entry.pick == "first":
        # "first" never consulted costs; the selection is structure-determined.
        idx = entry.selected_index
        _old, cand, plan = entry.ranked[idx]
        cost = _pristine_cost(entry, idx, plan, param_values, dict(bindings))
        entry.ranked[idx] = (cost, cand, plan)
        entry.stats_sig = new_sig
        return SearchResult(plan, cost, cand, stats, list(entry.ranked)), entry, idx

    fmts = dict(bindings)
    rescored = [
        (_pristine_cost(entry, old_i, plan, param_values, fmts), old_i, cand, plan)
        for old_i, (_oc, cand, plan) in enumerate(entry.ranked)
    ]
    rescored.sort(key=lambda t: (t[0], t[1]))  # old rank breaks exact ties
    old_selected = entry.ranked[entry.selected_index][2]
    reordered = [(c, cand, plan) for c, _oi, cand, plan in rescored]

    # remap the per-plan side tables through the permutation
    perm = {old_i: new_i for new_i, (_c, old_i, _cand, _p) in enumerate(rescored)}
    entry.sources = {perm[i]: s for i, s in entry.sources.items()}
    entry.fns = {perm[i]: f for i, f in entry.fns.items()}
    entry.simplified = {perm[i] for i in entry.simplified}
    entry.guard_snapshots = {perm[i]: g for i, g in entry.guard_snapshots.items()}
    entry.ranked = reordered
    entry.stats_sig = new_sig
    entry.selected_index = _select(reordered, pick)

    cost, cand, plan = entry.ranked[entry.selected_index]
    if plan is not old_selected:
        INSTR.count("cache.rerank.changed")
    return (SearchResult(plan, cost, cand, stats, list(entry.ranked)),
            entry, entry.selected_index)


def record(
    key: str,
    mode: str,
    result: SearchResult,
    bindings: Mapping[str, SparseFormat],
    pick: str,
) -> CacheEntry:
    """Memoize a fresh search result under its structural key."""
    selected = next(
        i for i, (_c, _cand, plan) in enumerate(result.ranked)
        if plan is result.plan
    )
    entry = CacheEntry(result.ranked, selected, pick,
                       stats_signature(bindings), result.stats.clone())
    COMPILE_CACHE.put(key, entry)
    INSTR.count("cache.stores")
    if mode == "disk":
        COMPILE_CACHE.disk_put(key, entry)
    return entry

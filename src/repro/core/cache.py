"""Compilation cache: amortize the enumerate-estimate-select pipeline.

The Bernoulli model compiles one kernel per (program, format-structure)
pair and reuses it for every matrix instance with that structure.  This
module implements that amortization for :func:`repro.core.compiler.
compile_kernel`:

**Structural signature** — the cache key is a SHA-256 digest of
everything the candidate search depends on: the program text (the IR
printer is deterministic and round-trippable), the per-array format
*structure* (format class and name, view shape via access-path reprs and
index substitutions, bounds annotations, per-axis ranges/totals — all
shape-derived, none statistics-derived), the concrete ``param_values``,
and the search knobs (``pick``, ``max_orders``, ``simplify_guards``).
Two calls with equal structural signatures are guaranteed to enumerate
the identical candidate set and lower the identical plans; only the
*cost ranking* can differ, because costs read instance statistics.

**Statistics signature & invalidation** — alongside each entry we record
the instance statistics the ranking consumed (shape, nnz, per-path step
totals).  On a hit with equal statistics the memoized selection is
returned as-is.  On a hit with shifted statistics the cached ranked plans
are *re-costed* against the new instances (``plan_cost(..., fmts=...)``)
and re-selected — exactly what a fresh search would do after re-lowering
the same candidates, minus the polyhedral work.  ``pick="first"``
ignores costs entirely, so its entries replay regardless of statistics
(the first legal candidate is structure-determined).

**Layers** — an in-memory LRU (always consulted when caching is on) and
an opt-in on-disk layer (``cache="disk"``) that pickles entries under a
cache directory so separate processes share compiles.  Generated Python
source is published into the entry on first codegen and replayed
byte-identically on later hits.

**Concurrency** — the LRU bookkeeping is guarded by the cache's RLock and
every entry carries its own RLock serializing mutation (re-ranking, guard
simplification, source publication), so concurrent ``compile_kernel``
calls — e.g. through :func:`repro.core.service.compile_many` — share
entries safely.  Re-ranking never mutates plans in place (costs are
computed with a guard-count override), so a thread executing a cached
plan is never perturbed by a sibling's rerank.

Control: ``compile_kernel(..., cache="off"|"memory"|"disk")``, default
taken from ``REPRO_COMPILE_CACHE`` (default ``"memory"``).  With
``"off"`` the pipeline runs untouched — zero behavior change.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
import threading
from collections import OrderedDict
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.plan import ExecNode, LoopNode, VarLoopNode
from repro.cost.model import plan_cost, step_totals
from repro.formats.base import SparseFormat
from repro.instrument import INSTR
from repro.ir.printer import program_to_text
from repro.ir.program import Program
from repro.search.driver import SearchResult, SearchStats
from repro.util.env import env_int

MODES = ("off", "memory", "disk")


def resolve_mode(cache: Optional[str]) -> str:
    """``cache`` kwarg if given, else ``REPRO_COMPILE_CACHE``, else memory."""
    mode = cache if cache is not None else os.environ.get(
        "REPRO_COMPILE_CACHE", "memory").strip().lower()
    if mode not in MODES:
        raise ValueError(f"cache mode must be one of {MODES}, got {mode!r}")
    return mode


# ---------------------------------------------------------------------------
# Signatures
# ---------------------------------------------------------------------------

def format_structure(fmt: SparseFormat) -> Tuple:
    """Everything about a format instance the candidate search can see:
    class, view/path shape, substitutions, annotations, axis geometry.
    Deliberately excludes the stored data and its statistics."""
    paths = []
    for p in fmt.paths():
        axes = []
        for a in p.axis_names:
            axes.append((a, fmt.axis_range(a), fmt.axis_total(a)))
        paths.append((
            p.path_id,
            repr(p),                          # steps + branch (subs omitted)
            repr(sorted(p.subs.items(), key=lambda kv: kv[0])),
            tuple(axes),
        ))
    return (
        type(fmt).__name__,
        fmt.format_name,
        fmt.nrows,
        fmt.ncols,
        repr(fmt.bounds()),
        tuple(paths),
    )


def structural_signature(
    program: Program,
    bindings: Mapping[str, SparseFormat],
    param_values: Mapping[str, int],
    pick: str,
    max_orders: int,
    simplify_guards: bool,
) -> str:
    """Canonical digest of everything that determines the candidate set
    and the lowered plans (not their cost ranking)."""
    parts: List[str] = [
        program_to_text(program),
        repr(sorted((k, int(v)) for k, v in param_values.items())),
        repr((pick, max_orders, bool(simplify_guards))),
    ]
    for name in sorted(bindings):
        parts.append(repr((name, format_structure(bindings[name]))))
    blob = "\x1e".join(parts)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def stats_signature(bindings: Mapping[str, SparseFormat]) -> Tuple:
    """The instance statistics the cost ranking consumed."""
    out = []
    for name in sorted(bindings):
        fmt = bindings[name]
        per_path = tuple(
            (p.path_id, tuple(step_totals(fmt, p.path_id))) for p in fmt.paths()
        )
        out.append((name, fmt.nrows, fmt.ncols, fmt.nnz, per_path))
    return tuple(out)


# ---------------------------------------------------------------------------
# Entries
# ---------------------------------------------------------------------------

class CacheEntry:
    """One memoized search: the ranked lowered plans (cost-sorted at record
    time), which index was selected, the statistics that ranking saw, and
    the generated source per selected plan (published lazily).

    ``_lock`` serializes every mutation of the entry (re-ranking, guard
    simplification, source publication) — hits on the same structural key
    from concurrent threads share this object.  It is re-created on
    unpickling (locks don't pickle).

    The per-plan side tables (``simplified``, ``sources``, ``fns``,
    ``guard_snapshots``) are keyed by *stable ids* — each plan's position
    in the record-time ranking — not by current ranked position.  A
    statistics-shift rerank permutes ``ranked``/``ids`` only, so an id a
    caller obtained from :func:`lookup` stays valid even if a sibling
    thread reranks the entry before the caller touches the side tables."""

    def __init__(self, ranked, selected_index: int, pick: str,
                 stats_sig: Tuple, search_stats: SearchStats):
        self._lock = threading.RLock()
        self.ranked = list(ranked)            # [(cost, candidate, plan)]
        self.ids = list(range(len(self.ranked)))  # stable id per ranked slot
        self.selected_index = selected_index
        self.pick = pick
        self.stats_sig = stats_sig
        self.search_stats = search_stats
        self.simplified = set()               # stable ids already guard-simplified
        self.sources: Dict[int, str] = {}     # stable id -> generated source
        self.fns: Dict[int, object] = {}      # stable id -> exec'd kernel (transient)
        # pristine per-exec-node guard lists, captured before any guard
        # simplification, so re-ranking can cost plans the way a fresh
        # search would (simplification rewrites the live guard lists)
        self.guard_snapshots: Dict[int, List[List]] = {
            i: [list(n.guards) for n in _exec_nodes(plan)]
            for i, (_c, _cand, plan) in enumerate(self.ranked)
        }

    def selected_id(self) -> int:
        """Stable id of the currently selected ranked slot."""
        return self.ids[self.selected_index]

    def __getstate__(self):
        state = dict(self.__dict__)
        state["fns"] = {}                     # callables don't pickle; rebuilt from source
        state.pop("_lock", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.RLock()
        # entries pickled before stable ids existed kept their side tables
        # aligned with current ranked positions — identical to ids 0..n-1
        self.__dict__.setdefault("ids", list(range(len(self.ranked))))


class CompileCache:
    """In-memory LRU of :class:`CacheEntry`, with an optional disk layer.

    The LRU bookkeeping (lookup reorders, insert evicts) is guarded by an
    RLock so concurrent compilations never corrupt the OrderedDict; entry
    *contents* are guarded separately by each entry's own lock."""

    def __init__(self, capacity: int = 256):
        self.capacity = capacity
        self.entries: "OrderedDict[str, CacheEntry]" = OrderedDict()
        self._lock = threading.RLock()

    # -- memory layer ----------------------------------------------------
    def get(self, key: str) -> Optional[CacheEntry]:
        with self._lock:
            entry = self.entries.get(key)
            if entry is not None:
                self.entries.move_to_end(key)
            return entry

    def put(self, key: str, entry: CacheEntry) -> None:
        with self._lock:
            self.entries[key] = entry
            self.entries.move_to_end(key)
            while len(self.entries) > self.capacity:
                self.entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self.entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self.entries)

    # -- disk layer ------------------------------------------------------
    def disk_dir(self) -> str:
        return os.environ.get(
            "REPRO_CACHE_DIR",
            os.path.join(tempfile.gettempdir(), "repro-compile-cache"),
        )

    def _disk_path(self, key: str) -> str:
        return os.path.join(self.disk_dir(), key + ".pkl")

    def disk_get(self, key: str) -> Optional[CacheEntry]:
        path = self._disk_path(key)
        try:
            with open(path, "rb") as f:
                entry = pickle.load(f)
        except (OSError, pickle.PickleError, EOFError, AttributeError,
                ImportError, IndexError):
            return None
        if not isinstance(entry, CacheEntry):
            return None
        return entry

    def disk_put(self, key: str, entry: CacheEntry) -> None:
        d = self.disk_dir()
        try:
            os.makedirs(d, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=d, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as f:
                    pickle.dump(entry, f, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, self._disk_path(key))
            finally:
                if os.path.exists(tmp):
                    os.unlink(tmp)
        except (OSError, pickle.PickleError, TypeError):
            # disk layer is best-effort: un-picklable or unwritable entries
            # simply stay memory-only
            INSTR.count("cache.disk.save_errors")


#: the process-wide compilation cache
COMPILE_CACHE = CompileCache(
    capacity=env_int("REPRO_COMPILE_CACHE_SIZE", 256, minimum=1)
)


def clear_compile_cache(disk: bool = False) -> None:
    """Drop the in-memory cache (and the disk layer when ``disk=True``)."""
    COMPILE_CACHE.clear()
    if disk:
        d = COMPILE_CACHE.disk_dir()
        if os.path.isdir(d):
            for fn in os.listdir(d):
                if fn.endswith(".pkl"):
                    try:
                        os.unlink(os.path.join(d, fn))
                    except OSError:
                        pass


# ---------------------------------------------------------------------------
# Lookup / record
# ---------------------------------------------------------------------------

def _select(ranked, pick: str) -> int:
    return len(ranked) - 1 if pick == "worst" else 0


def _exec_nodes(plan) -> List[ExecNode]:
    out: List[ExecNode] = []

    def walk(nodes):
        for n in nodes:
            if isinstance(n, ExecNode):
                out.append(n)
            elif isinstance(n, LoopNode):
                walk(n.before)
                walk(n.body)
                walk(n.after)
            elif isinstance(n, VarLoopNode):
                walk(n.body)

    walk(plan.nodes)
    return out


def _pristine_cost(entry: CacheEntry, idx: int, plan,
                   param_values: Mapping[str, int],
                   fmts: Mapping[str, SparseFormat]) -> float:
    """Cost the plan as a fresh search would see it: guard simplification
    happens after costing, so simplified plans are re-costed with their
    recorded pre-simplification guard *counts* overriding the live ones.
    The override (rather than swapping guards in place) keeps re-ranking
    read-only on the plan — other threads may be executing it."""
    snap = entry.guard_snapshots.get(idx)
    if idx not in entry.simplified or snap is None:
        return plan_cost(plan, param_values, fmts=fmts)
    nodes = _exec_nodes(plan)
    guard_counts = {id(n): len(g) for n, g in zip(nodes, snap)}
    return plan_cost(plan, param_values, fmts=fmts, guard_counts=guard_counts)


def lookup(
    key: str,
    mode: str,
    bindings: Mapping[str, SparseFormat],
    param_values: Mapping[str, int],
    pick: str,
) -> Optional[Tuple[SearchResult, CacheEntry, int]]:
    """Serve a memoized search for this structural key, or None.

    Returns the reconstructed :class:`SearchResult` plus the entry and the
    *stable id* of the selected plan (for source replay/publication; valid
    across concurrent reranks)."""
    INSTR.count("cache.lookups")
    entry = COMPILE_CACHE.get(key)
    layer = "memory"
    if entry is None and mode == "disk":
        entry = COMPILE_CACHE.disk_get(key)
        layer = "disk"
        if entry is not None:
            COMPILE_CACHE.put(key, entry)     # promote for this process
    if entry is None:
        INSTR.count("cache.misses")
        return None

    # entry contents (stats_sig, ranked order, side tables) are shared with
    # every thread that hit this key: serialize the compare-and-rerank
    with entry._lock:
        new_sig = stats_signature(bindings)
        stats = entry.search_stats.clone()
        stats.from_cache = True

        if new_sig == entry.stats_sig:
            INSTR.count(f"cache.hits.{layer}")
            INSTR.count("cache.hits.exact")
            pos = entry.selected_index
            cost, cand, plan = entry.ranked[pos]
            return (SearchResult(plan, cost, cand, stats, list(entry.ranked)),
                    entry, entry.ids[pos])

        # Statistics shifted: re-cost the memoized plans against the new
        # instances and re-select, exactly as a fresh search would rank them.
        INSTR.count(f"cache.hits.{layer}")
        INSTR.count("cache.hits.rerank")
        stats.reranked = True
        if entry.pick == "first":
            # "first" never consulted costs; the selection is structure-determined.
            pos = entry.selected_index
            sid = entry.ids[pos]
            _old, cand, plan = entry.ranked[pos]
            cost = _pristine_cost(entry, sid, plan, param_values, dict(bindings))
            entry.ranked[pos] = (cost, cand, plan)
            entry.stats_sig = new_sig
            return (SearchResult(plan, cost, cand, stats, list(entry.ranked)),
                    entry, sid)

        fmts = dict(bindings)
        rescored = [
            (_pristine_cost(entry, entry.ids[pos], plan, param_values, fmts),
             entry.ids[pos], cand, plan)
            for pos, (_oc, cand, plan) in enumerate(entry.ranked)
        ]
        rescored.sort(key=lambda t: (t[0], t[1]))  # record-time rank breaks ties
        old_selected = entry.ranked[entry.selected_index][2]

        # permute the ranking only — the side tables are keyed by stable id
        entry.ranked = [(c, cand, plan) for c, _sid, cand, plan in rescored]
        entry.ids = [sid for _c, sid, _cand, _p in rescored]
        entry.stats_sig = new_sig
        entry.selected_index = _select(entry.ranked, pick)

        cost, cand, plan = entry.ranked[entry.selected_index]
        if plan is not old_selected:
            INSTR.count("cache.rerank.changed")
        return (SearchResult(plan, cost, cand, stats, list(entry.ranked)),
                entry, entry.selected_id())


def record(
    key: str,
    mode: str,
    result: SearchResult,
    bindings: Mapping[str, SparseFormat],
    pick: str,
) -> Tuple[CacheEntry, int]:
    """Memoize a fresh search result under its structural key.

    Returns the entry and the stable id of the selected plan (equal to its
    record-time rank; safe to use after the entry becomes visible to — and
    possibly reranked by — concurrent threads)."""
    selected = next(
        i for i, (_c, _cand, plan) in enumerate(result.ranked)
        if plan is result.plan
    )
    entry = CacheEntry(result.ranked, selected, pick,
                       stats_signature(bindings), result.stats.clone())
    COMPILE_CACHE.put(key, entry)
    INSTR.count("cache.stores")
    if mode == "disk":
        COMPILE_CACHE.disk_put(key, entry)
    return entry, selected

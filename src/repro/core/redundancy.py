"""Redundant dimensions (paper Section 4.1, Figure 7).

The paper stacks the linear parts of all embedding functions into a matrix
``G`` (one row per product dimension, one column per statement iteration
variable) and calls a dimension *redundant* when its row is a linear
combination of the preceding rows: its value is determined, so no loop is
needed — only a search (or a direct computation).

Here the statement space also contains sparse data axes tied to iteration
variables by each reference's affine *relation* (access functions and
``map`` rules), so determinedness is computed modulo those relations:

    dim d is determined for copy S after dims d1..dk  iff
    value_d(S) ∈ span( {value_di(S)} ∪ equalities(relation(S)) ∪ {1} )

:class:`DeterminacyTracker` answers this incrementally for one copy;
:func:`g_matrix` builds the paper's literal G matrix for display and tests.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.embedding import AT, SpaceEmbedding
from repro.core.spaces import ProductSpace, StmtCopy
from repro.polyhedra.linexpr import LinExpr
from repro.util.fractions_linalg import FractionMatrix, IncrementalRank


class DeterminacyTracker:
    """Incrementally tracks which affine expressions over one copy's
    variables are determined by the values pinned so far (dims processed)
    plus the copy's relation equalities."""

    def __init__(self, copy: StmtCopy):
        self.copy = copy
        self.vars = list(copy.all_vars())
        self.index = {v: i for i, v in enumerate(self.vars)}
        # width: one column per variable plus the affine constant
        self._rank = IncrementalRank(len(self.vars) + 1)
        for con in copy.relation().equalities():
            self._rank.add(self._row(con.expr))

    def _row(self, expr: LinExpr) -> List[Fraction]:
        row = [Fraction(0)] * (len(self.vars) + 1)
        for v in expr.variables():
            if v in self.index:
                row[self.index[v]] = expr.coeff(v)
            # symbolic parameters act as constants: fold into the affine
            # column (their value is fixed for a given run)
            else:
                row[-1] += expr.coeff(v)
        row[-1] += expr.const
        return row

    def is_determined(self, expr: LinExpr) -> bool:
        """Would pinning this expression add no information?"""
        probe = IncrementalRank(self._rank.width)
        # cheap copy: replay is avoided by asking the existing object —
        # IncrementalRank.add mutates, so test on a clone of its rows
        probe._rows = list(self._rank._rows)
        probe._count = self._rank._count
        dependent, _ = probe.add(self._row(expr))
        return dependent

    def pin(self, expr: LinExpr) -> bool:
        """Record that the value of ``expr`` is known; returns True if this
        was already determined."""
        dependent, _ = self._rank.add(self._row(expr))
        return dependent

    def unbound_vars(self, expr: LinExpr) -> List[str]:
        """Variables of ``expr`` (restricted to copy variables) that are not
        individually determined yet."""
        out = []
        for v in expr.variables():
            if v in self.index and not self.is_determined(LinExpr.variable(v)):
                out.append(v)
        return out


def axis_substitution(copy: StmtCopy) -> Dict[str, LinExpr]:
    """Express each data-axis variable of a copy as an affine function of
    the copy's iteration variables, where the access relation determines it
    (the paper's assumption "data coordinates are affine functions of the
    loop indices"; non-invertible maps like BSR blocking leave their axes
    unsubstituted)."""
    it_vars = set(copy.iter_vars())
    axis_vars = [v for v in copy.all_vars() if v not in it_vars]
    if not axis_vars:
        return {}
    index = {v: i for i, v in enumerate(axis_vars)}
    # rows: coefficients over axis vars; constant column: LinExpr over the
    # iteration variables (and parameters)
    rows: List[Tuple[List[Fraction], LinExpr]] = []
    for con in copy.relation().equalities():
        coeffs = [Fraction(0)] * len(axis_vars)
        rest = LinExpr.constant(con.expr.const)
        for v in con.expr.variables():
            if v in index:
                coeffs[index[v]] = con.expr.coeff(v)
            else:
                rest = rest + LinExpr({v: con.expr.coeff(v)})
        rows.append((coeffs, rest))
    # gaussian elimination with symbolic constants
    pivots: List[Tuple[List[Fraction], LinExpr, int]] = []
    for coeffs, rest in rows:
        coeffs = list(coeffs)
        for pc, pr, pl in pivots:
            f = coeffs[pl]
            if f != 0:
                coeffs = [a - f * b for a, b in zip(coeffs, pc)]
                rest = rest - pr * f
        lead = next((j for j, x in enumerate(coeffs) if x != 0), None)
        if lead is None:
            continue
        inv = Fraction(1) / coeffs[lead]
        pivots.append(([x * inv for x in coeffs], rest * inv, lead))
    out: Dict[str, LinExpr] = {}
    for coeffs, rest, lead in pivots:
        work_c = list(coeffs)
        work_r = rest
        for c2, r2, l2 in pivots:
            if l2 != lead and work_c[l2] != 0:
                f = work_c[l2]
                work_c = [a - f * b for a, b in zip(work_c, c2)]
                work_r = work_r - r2 * f
        if all(x == 0 for j, x in enumerate(work_c) if j != lead):
            # axis_var == -work_r
            out[axis_vars[lead]] = work_r * Fraction(-1)
    return out


def g_matrix(space: ProductSpace, emb: SpaceEmbedding) -> Tuple[FractionMatrix, List[str], List[str]]:
    """The paper's Figure-7 G matrix: rows are product dimensions, columns
    are the copies' *iteration* variables; embedding values are rewritten
    through the access relations so data-axis values appear as the affine
    functions of loop indices they are.  Returns (G, row names, column
    names).  Placements contribute zeros (they are constants); axes a
    non-invertible map leaves undetermined keep their own columns.
    """
    subs = {c.label: axis_substitution(c) for c in space.copies}
    columns: List[str] = []
    seen = set()
    for copy in space.copies:
        for v in copy.iter_vars():
            if v not in seen:
                seen.add(v)
                columns.append(v)
    # leftover axis columns (non-invertible maps)
    for copy in space.copies:
        for v in copy.all_vars():
            if v not in seen and v not in subs[copy.label]:
                seen.add(v)
                columns.append(v)
    col_index = {v: i for i, v in enumerate(columns)}
    rows: List[List[Fraction]] = []
    names: List[str] = []
    for k, dim in enumerate(space.dims):
        row = [Fraction(0)] * len(columns)
        for copy in space.copies:
            e = emb.of(copy, k)
            if e.placement == AT:
                value = e.value.substitute(subs[copy.label])
                for v in value.variables():
                    if v in col_index:
                        row[col_index[v]] = value.coeff(v)
        rows.append(row)
        names.append(dim.name)
    return FractionMatrix(rows), names, columns


def redundant_dims(space: ProductSpace, emb: SpaceEmbedding) -> List[bool]:
    """Paper-literal redundancy: dimension k is redundant when its G row is
    linearly dependent on the preceding rows (Figure 7's analysis)."""
    G, _, columns = g_matrix(space, emb)
    inc = IncrementalRank(len(columns))
    out: List[bool] = []
    for row in G.rows:
        dependent, _ = inc.add(row)
        out.append(dependent)
    return out

"""Top-level compiler API.

``compile_kernel`` takes a dense program (the high-level API) and a binding
of matrix names to sparse-format instances (the low-level API), and returns
a :class:`CompiledKernel` that can execute the synthesized data-centric
code — through the reference interpreter, or through specialized generated
Python source (see :mod:`repro.codegen.pysource`).

This is the analog of the paper's ``#pragma instantiate with Bernoulli``
template instantiation (Figure 4): the same dense kernel text serves every
format.

Repeated instantiations are served by the compilation cache
(:mod:`repro.core.cache`): calls whose program, format *structure*, and
parameter values match a previous compile reuse its plans (re-ranked if the
new instances' statistics shifted) instead of re-running the search.
"""

from __future__ import annotations

import threading
from typing import Dict, Mapping, Optional

from repro.core.plan import Plan
from repro.formats.base import SparseFormat
from repro.instrument import INSTR
from repro.ir.program import Program
from repro.ir.validate import validate_program
from repro.search.driver import SearchResult, search


class CompiledKernel:
    """A program lowered for specific format bindings.

    ``backend`` records the *requested* execution backend ("python" or
    "c"); ``backend_used`` what actually executes (``"c"``,
    ``"c+openmp"``, or ``"python"`` after a fallback), and
    ``fallback_reason`` why the native path was abandoned, so a silent
    fallback is always observable on the object and in the
    instrumentation report.  ``opt`` likewise records the *requested*
    optimization tier and ``opt_used`` what the bind actually honored
    (a tier the toolchain can't support demotes to ``"none"``)."""

    def __init__(self, program: Program, bindings: Mapping[str, SparseFormat],
                 result: SearchResult, backend: str = "python",
                 parallel: str = "none", cache_mode: str = "memory",
                 opt: str = "none"):
        self.program = program
        self.bindings = dict(bindings)
        self.result = result
        self.plan: Plan = result.plan
        self.cost = result.cost
        self.backend = backend
        self.parallel = parallel
        self.opt = opt
        self.opt_used: Optional[str] = None
        self.backend_used = "python"
        self.fallback_reason: Optional[str] = None
        self._cache_mode = cache_mode
        self._pyfunc = None
        self._pysource = None
        self._cache_publish = None
        self._native = None
        self._native_tried = False
        # serializes lazy materialization (generated Python, native bind)
        # when the same kernel object is driven from several threads;
        # reentrant because the native bind lowers the generated Python
        # source and so re-enters callable() on this same kernel
        self._materialize_lock = threading.RLock()

    # -- execution -----------------------------------------------------------
    def run(self, arrays: Mapping[str, object], params: Mapping[str, int]) -> None:
        """Execute the kernel.  For ``backend="python"`` this is the
        reference interpreter; for ``backend="c"`` it dispatches to the
        native function (falling back to the interpreter when no
        toolchain is available).  ``arrays`` must map every referenced
        array name to either a NumPy array (dense data) or a format
        instance compatible with the compile-time binding."""
        from repro.codegen.interp import run_plan

        self._check_arrays(arrays)
        if self.backend == "c":
            nf = self.native()
            if nf is not None:
                INSTR.count("backend.run.native")
                nf(arrays, {k: int(v) for k, v in params.items()})
                return
        INSTR.count("backend.run.interp")
        run_plan(self.plan, arrays, {k: int(v) for k, v in params.items()})

    def __call__(self, arrays: Mapping[str, object], params: Mapping[str, int]) -> None:
        """Execute through the generated specialized code (compiled once,
        cached).  With ``backend="c"`` this is the native shared-object
        kernel; otherwise (or after a fallback) the specialized Python."""
        self._check_arrays(arrays)
        if self.backend == "c":
            nf = self.native()
            if nf is not None:
                INSTR.count("backend.run.native")
                nf(arrays, {k: int(v) for k, v in params.items()})
                return
        fn = self.callable()
        INSTR.count("backend.run.python")
        fn(arrays, {k: int(v) for k, v in params.items()})

    def native(self):
        """The bound :class:`~repro.core.backend.NativeKernel`, compiling
        it on first use; None when the native path is unavailable (the
        reason is recorded in ``fallback_reason``)."""
        if self.backend != "c":
            return None
        if not self._native_tried:
            with self._materialize_lock:
                if not self._native_tried:
                    from repro.codegen.native import NativeLoweringError
                    from repro.core import backend as be

                    try:
                        self._native = be.bind_kernel(self, self.parallel,
                                                      self._cache_mode,
                                                      self.opt)
                        self.backend_used = (
                            "c+openmp" if self._native.used_openmp else "c")
                        self.opt_used = self._native.spec.opt
                    except NativeLoweringError as e:
                        self.fallback_reason = f"lowering: {e}"
                        be.native_fallback("lowering", str(e))
                    except Exception as e:
                        self.fallback_reason = f"toolchain: {e}"
                        be.native_fallback("toolchain", str(e))
                    self._native_tried = True
        return self._native

    @property
    def c_source(self) -> Optional[str]:
        """The lowered C translation unit (None unless the native backend
        compiled successfully)."""
        nf = self.native()
        return nf.c_source if nf is not None else None

    def callable(self):
        if self._pyfunc is None:
            with self._materialize_lock:
                if self._pyfunc is None:
                    from repro.codegen.pysource import compile_plan_to_python

                    src, fn = compile_plan_to_python(self.plan)
                    if self._cache_publish is not None:
                        self._cache_publish(src, fn)
                        self._cache_publish = None
                    self._pysource = src
                    self._pyfunc = fn    # publish last: readers gate on it
        return self._pyfunc

    @property
    def source(self) -> str:
        """The generated specialized Python source."""
        self.callable()
        return self._pysource

    def pseudocode(self) -> str:
        """The data-centric pseudocode (paper Figures 5/8 style)."""
        return self.plan.pretty()

    def _check_arrays(self, arrays: Mapping[str, object]) -> None:
        for name in self.program.referenced_arrays():
            if name not in arrays:
                raise KeyError(f"missing array {name!r}")
        for name, fmt in self.bindings.items():
            got = arrays.get(name)
            if got is not None and not isinstance(got, type(fmt)):
                raise TypeError(
                    f"array {name!r} was compiled for {type(fmt).__name__}, "
                    f"got {type(got).__name__}"
                )

    def __repr__(self):
        b = {k: v.format_name for k, v in self.bindings.items()}
        tail = ""
        if self.backend != "python":
            used = self.backend_used
            if self.fallback_reason is not None:
                used = "python-fallback"
            elif not self._native_tried:
                used = "pending"
            tail = f" backend={self.backend}->{used}"
            if self.parallel != "none":
                tail += f" parallel={self.parallel}"
            if self.opt != "none":
                tail += f" opt={self.opt}"
                if self.opt_used is not None and self.opt_used != self.opt:
                    tail += f"->{self.opt_used}"
        return (f"<CompiledKernel {self.program.name} {b} "
                f"cost={self.cost:.1f}{tail}>")


def infer_param_values(
    program: Program,
    bindings: Mapping[str, SparseFormat],
) -> Dict[str, int]:
    """Derive concrete sizes for symbolic parameters from the bound
    instances, per declared array dimension.

    For every reference ``A[i][j]`` to a bound matrix whose index is a bare
    loop variable running ``0 .. p`` for a single program parameter ``p``,
    the instance pins ``p`` to that dimension's extent (rows for dimension
    0, columns for dimension 1).  Conflicting pins — two bindings implying
    different values for the same parameter — raise ``ValueError``, since
    they indicate genuinely incompatible instance shapes.

    Parameters no reference pins fall back to the legacy heuristic
    (``m``/``n`` from the first binding) so exotic index expressions keep
    their historical guesses.
    """
    guesses: Dict[str, int] = {}
    origins: Dict[str, str] = {}

    def pin(param: str, value: int, why: str) -> None:
        old = guesses.get(param)
        if old is not None and old != value:
            raise ValueError(
                f"conflicting size guesses for parameter {param!r}: "
                f"{old} (from {origins[param]}) vs {value} (from {why}); "
                f"pass param_values explicitly"
            )
        guesses[param] = value
        origins[param] = why

    params = set(program.params)
    for ctx in program.statements():
        loops = {l.var: l for l in ctx.loops}
        for array, fmt in bindings.items():
            extents = (fmt.nrows, fmt.ncols)
            for _kind, indices in ctx.stmt.references(array):
                for dim, idx in enumerate(indices[:2]):
                    lin = idx.lin
                    if lin.const != 0 or len(lin.coeffs) != 1:
                        continue
                    (var, coeff), = lin.coeffs.items()
                    loop = loops.get(var)
                    if coeff != 1 or loop is None:
                        continue
                    lo, hi = loop.lower.lin, loop.upper.lin
                    if lo.const != 0 or lo.coeffs:
                        continue
                    if hi.const != 0 or len(hi.coeffs) != 1:
                        continue
                    (p, pc), = hi.coeffs.items()
                    if pc != 1 or p not in params:
                        continue
                    pin(p, extents[dim],
                        f"{array}[{'rows' if dim == 0 else 'cols'}] in {ctx.name}")

    for fmt in bindings.values():
        guesses.setdefault("m", fmt.nrows)
        guesses.setdefault("n", fmt.ncols)
        break
    return guesses


def compile_kernel(
    program: Program,
    bindings: Mapping[str, SparseFormat],
    param_values: Optional[Mapping[str, int]] = None,
    pick: str = "best",
    max_orders: int = 12,
    simplify_guards: bool = True,
    cache: Optional[str] = None,
    backend: str = "python",
    parallel: str = "none",
    opt: Optional[str] = None,
) -> CompiledKernel:
    """Compile ``program`` for the given format bindings.

    ``bindings`` maps matrix array names to format *instances*; the
    instances provide the index structure, the enumeration runtimes, and
    the statistics the cost model ranks candidates with.  ``param_values``
    optionally supplies concrete sizes for better cost estimates; when
    omitted they are inferred per declared array dimension (see
    :func:`infer_param_values`).

    ``pick`` is forwarded to the search ("best" / "first" / "worst" — the
    latter two exist for the ablation benchmarks).

    ``cache`` selects the compilation-cache mode: ``"off"`` always re-runs
    the search, ``"memory"`` memoizes per process, ``"disk"`` additionally
    persists entries across processes (including compiled ``.so``
    artifacts of the C backend).  ``None`` defers to the
    ``REPRO_COMPILE_CACHE`` environment variable (default ``"memory"``).

    ``backend`` selects execution: ``"python"`` runs the specialized
    generated Python; ``"c"`` lowers it to C99, compiles with the system
    toolchain, and dispatches through ctypes — falling back to the Python
    kernel (with a :class:`~repro.core.backend.NativeBackendWarning` and
    an ``INSTR`` counter) when no compiler is available.  ``parallel``
    adds OpenMP pragmas to order-free loops: ``"strict"`` only
    synchronization-free DOALL loops, ``"atomic"`` additionally reduction
    loops with atomic accumulation.  Both are advisory for
    ``backend="python"``.

    ``opt`` selects the native optimization tier: ``"none"`` (the naive
    loops), ``"tiled"`` (cache-blocked + SIMD-annotated, byte-identical
    to the Python backend), or ``"fast"`` (tiled plus FMA contraction,
    validated by tolerance).  ``None`` defers to the ``REPRO_OPT``
    environment variable (default ``"none"``).  A tier the toolchain
    cannot honor is demoted observably (``native.tier.demotion.*``);
    ``opt`` is ignored by ``backend="python"``.
    """
    from repro.core import cache as cc

    if backend not in ("python", "c"):
        raise ValueError(f"backend must be 'python' or 'c', got {backend!r}")
    if parallel not in ("none", "strict", "atomic"):
        raise ValueError(
            f"parallel must be 'none', 'strict' or 'atomic', got {parallel!r}")
    if opt is None:
        from repro.util.env import env_choice

        opt = env_choice("REPRO_OPT", "none", ("none", "tiled", "fast"))
    elif opt not in ("none", "tiled", "fast"):
        raise ValueError(
            f"opt must be 'none', 'tiled' or 'fast', got {opt!r}")
    validate_program(program)
    for name, fmt in bindings.items():
        decl = program.arrays.get(name)
        if decl is None:
            raise KeyError(f"binding for unknown array {name!r}")
        if decl.kind != "matrix":
            raise ValueError(f"only matrices can be bound to sparse formats ({name!r})")
        if not isinstance(fmt, SparseFormat):
            raise TypeError(f"binding for {name!r} must be a SparseFormat instance")
    if param_values is None:
        param_values = infer_param_values(program, bindings)
    param_values = {k: int(v) for k, v in param_values.items()}

    mode = cc.resolve_mode(cache)
    key = None
    if mode != "off":
        with INSTR.phase("cache.lookup"):
            key = cc.structural_signature(program, bindings, param_values,
                                          pick, max_orders, simplify_guards)
            hit = cc.lookup(key, mode, bindings, param_values, pick)
        if hit is not None:
            result, entry, idx = hit
            if simplify_guards:
                with entry._lock:
                    if idx not in entry.simplified:
                        result.plan.simplify_guards(dict(param_values))
                        entry.simplified.add(idx)
            kernel = _kernel_from_entry(program, bindings, result, entry, idx,
                                        mode, key, backend, parallel, opt)
            if backend == "c":
                kernel.native()          # compile eagerly; may fall back
            return kernel

    result = search(program, bindings, None, param_values, pick=pick,
                    max_orders=max_orders)
    entry = None
    if mode != "off":
        # record before guard simplification so the entry snapshots
        # pristine guards (simplification mutates the selected plan)
        entry, sid = cc.record(key, mode, result, bindings, pick)
    if entry is None:
        if simplify_guards:
            result.plan.simplify_guards(dict(param_values))
    kernel = CompiledKernel(program, bindings, result, backend=backend,
                            parallel=parallel, cache_mode=mode, opt=opt)
    if entry is not None:
        # under the entry lock: once record() published the entry, a
        # concurrent hit on this key may race us to simplify the same plan
        with entry._lock:
            if simplify_guards and sid not in entry.simplified:
                result.plan.simplify_guards(dict(param_values))
                entry.simplified.add(sid)
            kernel._cache_publish = _source_publisher(entry, sid, mode, key)
    if backend == "c":
        kernel.native()                  # compile eagerly; may fall back
    return kernel


def _kernel_from_entry(program, bindings, result, entry, idx, mode, key,
                       backend="python", parallel="none", opt="none"):
    """Build a kernel from a cache hit, replaying memoized source."""
    kernel = CompiledKernel(program, bindings, result, backend=backend,
                            parallel=parallel, cache_mode=mode, opt=opt)
    with entry._lock:
        src = entry.sources.get(idx)
        if src is not None:
            fn = entry.fns.get(idx)
            if fn is None:
                from repro.codegen.pysource import source_to_callable

                fn = source_to_callable(src)
                entry.fns[idx] = fn
            kernel._pysource = src
            kernel._pyfunc = fn
            INSTR.count("cache.source_replays")
        else:
            kernel._cache_publish = _source_publisher(entry, idx, mode, key)
    return kernel


def _source_publisher(entry, idx, mode, key):
    """Publish lazily-generated source back into a cache entry (and keep the
    disk layer in step, so later processes replay byte-identical source)."""
    from repro.core.cache import COMPILE_CACHE

    def publish(src: str, fn) -> None:
        with entry._lock:
            entry.sources[idx] = src
            entry.fns[idx] = fn
            if mode == "disk":
                COMPILE_CACHE.disk_put(key, entry)

    return publish

"""Top-level compiler API.

``compile_kernel`` takes a dense program (the high-level API) and a binding
of matrix names to sparse-format instances (the low-level API), and returns
a :class:`CompiledKernel` that can execute the synthesized data-centric
code — through the reference interpreter, or through specialized generated
Python source (see :mod:`repro.codegen.pysource`).

This is the analog of the paper's ``#pragma instantiate with Bernoulli``
template instantiation (Figure 4): the same dense kernel text serves every
format.

Repeated instantiations are served by the compilation cache
(:mod:`repro.core.cache`): calls whose program, format *structure*, and
parameter values match a previous compile reuse its plans (re-ranked if the
new instances' statistics shifted) instead of re-running the search.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

from repro.core.plan import Plan
from repro.formats.base import SparseFormat
from repro.instrument import INSTR
from repro.ir.program import Program
from repro.ir.validate import validate_program
from repro.search.driver import SearchResult, search


class CompiledKernel:
    """A program lowered for specific format bindings."""

    def __init__(self, program: Program, bindings: Mapping[str, SparseFormat],
                 result: SearchResult):
        self.program = program
        self.bindings = dict(bindings)
        self.result = result
        self.plan: Plan = result.plan
        self.cost = result.cost
        self._pyfunc = None
        self._pysource = None
        self._cache_publish = None

    # -- execution -----------------------------------------------------------
    def run(self, arrays: Mapping[str, object], params: Mapping[str, int]) -> None:
        """Execute through the reference interpreter.  ``arrays`` must map
        every referenced array name to either a NumPy array (dense data) or
        a format instance compatible with the compile-time binding."""
        from repro.codegen.interp import run_plan

        self._check_arrays(arrays)
        run_plan(self.plan, arrays, {k: int(v) for k, v in params.items()})

    def __call__(self, arrays: Mapping[str, object], params: Mapping[str, int]) -> None:
        """Execute through the generated specialized code (compiled once,
        cached)."""
        fn = self.callable()
        self._check_arrays(arrays)
        fn(arrays, {k: int(v) for k, v in params.items()})

    def callable(self):
        if self._pyfunc is None:
            from repro.codegen.pysource import compile_plan_to_python

            self._pysource, self._pyfunc = compile_plan_to_python(self.plan)
            if self._cache_publish is not None:
                self._cache_publish(self._pysource, self._pyfunc)
                self._cache_publish = None
        return self._pyfunc

    @property
    def source(self) -> str:
        """The generated specialized Python source."""
        self.callable()
        return self._pysource

    def pseudocode(self) -> str:
        """The data-centric pseudocode (paper Figures 5/8 style)."""
        return self.plan.pretty()

    def _check_arrays(self, arrays: Mapping[str, object]) -> None:
        for name in self.program.referenced_arrays():
            if name not in arrays:
                raise KeyError(f"missing array {name!r}")
        for name, fmt in self.bindings.items():
            got = arrays.get(name)
            if got is not None and not isinstance(got, type(fmt)):
                raise TypeError(
                    f"array {name!r} was compiled for {type(fmt).__name__}, "
                    f"got {type(got).__name__}"
                )

    def __repr__(self):
        b = {k: v.format_name for k, v in self.bindings.items()}
        return f"<CompiledKernel {self.program.name} {b} cost={self.cost:.1f}>"


def infer_param_values(
    program: Program,
    bindings: Mapping[str, SparseFormat],
) -> Dict[str, int]:
    """Derive concrete sizes for symbolic parameters from the bound
    instances, per declared array dimension.

    For every reference ``A[i][j]`` to a bound matrix whose index is a bare
    loop variable running ``0 .. p`` for a single program parameter ``p``,
    the instance pins ``p`` to that dimension's extent (rows for dimension
    0, columns for dimension 1).  Conflicting pins — two bindings implying
    different values for the same parameter — raise ``ValueError``, since
    they indicate genuinely incompatible instance shapes.

    Parameters no reference pins fall back to the legacy heuristic
    (``m``/``n`` from the first binding) so exotic index expressions keep
    their historical guesses.
    """
    guesses: Dict[str, int] = {}
    origins: Dict[str, str] = {}

    def pin(param: str, value: int, why: str) -> None:
        old = guesses.get(param)
        if old is not None and old != value:
            raise ValueError(
                f"conflicting size guesses for parameter {param!r}: "
                f"{old} (from {origins[param]}) vs {value} (from {why}); "
                f"pass param_values explicitly"
            )
        guesses[param] = value
        origins[param] = why

    params = set(program.params)
    for ctx in program.statements():
        loops = {l.var: l for l in ctx.loops}
        for array, fmt in bindings.items():
            extents = (fmt.nrows, fmt.ncols)
            for _kind, indices in ctx.stmt.references(array):
                for dim, idx in enumerate(indices[:2]):
                    lin = idx.lin
                    if lin.const != 0 or len(lin.coeffs) != 1:
                        continue
                    (var, coeff), = lin.coeffs.items()
                    loop = loops.get(var)
                    if coeff != 1 or loop is None:
                        continue
                    lo, hi = loop.lower.lin, loop.upper.lin
                    if lo.const != 0 or lo.coeffs:
                        continue
                    if hi.const != 0 or len(hi.coeffs) != 1:
                        continue
                    (p, pc), = hi.coeffs.items()
                    if pc != 1 or p not in params:
                        continue
                    pin(p, extents[dim],
                        f"{array}[{'rows' if dim == 0 else 'cols'}] in {ctx.name}")

    for fmt in bindings.values():
        guesses.setdefault("m", fmt.nrows)
        guesses.setdefault("n", fmt.ncols)
        break
    return guesses


def compile_kernel(
    program: Program,
    bindings: Mapping[str, SparseFormat],
    param_values: Optional[Mapping[str, int]] = None,
    pick: str = "best",
    max_orders: int = 12,
    simplify_guards: bool = True,
    cache: Optional[str] = None,
) -> CompiledKernel:
    """Compile ``program`` for the given format bindings.

    ``bindings`` maps matrix array names to format *instances*; the
    instances provide the index structure, the enumeration runtimes, and
    the statistics the cost model ranks candidates with.  ``param_values``
    optionally supplies concrete sizes for better cost estimates; when
    omitted they are inferred per declared array dimension (see
    :func:`infer_param_values`).

    ``pick`` is forwarded to the search ("best" / "first" / "worst" — the
    latter two exist for the ablation benchmarks).

    ``cache`` selects the compilation-cache mode: ``"off"`` always re-runs
    the search, ``"memory"`` memoizes per process, ``"disk"`` additionally
    persists entries across processes.  ``None`` defers to the
    ``REPRO_COMPILE_CACHE`` environment variable (default ``"memory"``).
    """
    from repro.core import cache as cc

    validate_program(program)
    for name, fmt in bindings.items():
        decl = program.arrays.get(name)
        if decl is None:
            raise KeyError(f"binding for unknown array {name!r}")
        if decl.kind != "matrix":
            raise ValueError(f"only matrices can be bound to sparse formats ({name!r})")
        if not isinstance(fmt, SparseFormat):
            raise TypeError(f"binding for {name!r} must be a SparseFormat instance")
    if param_values is None:
        param_values = infer_param_values(program, bindings)
    param_values = {k: int(v) for k, v in param_values.items()}

    mode = cc.resolve_mode(cache)
    key = None
    if mode != "off":
        with INSTR.phase("cache.lookup"):
            key = cc.structural_signature(program, bindings, param_values,
                                          pick, max_orders, simplify_guards)
            hit = cc.lookup(key, mode, bindings, param_values, pick)
        if hit is not None:
            result, entry, idx = hit
            if simplify_guards and idx not in entry.simplified:
                result.plan.simplify_guards(dict(param_values))
                entry.simplified.add(idx)
            return _kernel_from_entry(program, bindings, result, entry, idx,
                                      mode, key)

    result = search(program, bindings, None, param_values, pick=pick,
                    max_orders=max_orders)
    entry = None
    if mode != "off":
        # record before guard simplification so the entry snapshots
        # pristine guards (simplification mutates the selected plan)
        entry = cc.record(key, mode, result, bindings, pick)
    if simplify_guards:
        result.plan.simplify_guards(dict(param_values))
    kernel = CompiledKernel(program, bindings, result)
    if entry is not None:
        if simplify_guards:
            entry.simplified.add(entry.selected_index)
        kernel._cache_publish = _source_publisher(entry, entry.selected_index,
                                                  mode, key)
    return kernel


def _kernel_from_entry(program, bindings, result, entry, idx, mode, key):
    """Build a kernel from a cache hit, replaying memoized source."""
    kernel = CompiledKernel(program, bindings, result)
    src = entry.sources.get(idx)
    if src is not None:
        fn = entry.fns.get(idx)
        if fn is None:
            from repro.codegen.pysource import source_to_callable

            fn = source_to_callable(src)
            entry.fns[idx] = fn
        kernel._pysource = src
        kernel._pyfunc = fn
        INSTR.count("cache.source_replays")
    else:
        kernel._cache_publish = _source_publisher(entry, idx, mode, key)
    return kernel


def _source_publisher(entry, idx, mode, key):
    """Publish lazily-generated source back into a cache entry (and keep the
    disk layer in step, so later processes replay byte-identical source)."""
    from repro.core.cache import COMPILE_CACHE

    def publish(src: str, fn) -> None:
        entry.sources[idx] = src
        entry.fns[idx] = fn
        if mode == "disk":
            COMPILE_CACHE.disk_put(key, entry)

    return publish

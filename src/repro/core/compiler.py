"""Top-level compiler API.

``compile_kernel`` takes a dense program (the high-level API) and a binding
of matrix names to sparse-format instances (the low-level API), and returns
a :class:`CompiledKernel` that can execute the synthesized data-centric
code — through the reference interpreter, or through specialized generated
Python source (see :mod:`repro.codegen.pysource`).

This is the analog of the paper's ``#pragma instantiate with Bernoulli``
template instantiation (Figure 4): the same dense kernel text serves every
format.
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

import numpy as np

from repro.analysis.dependence import dependences
from repro.core.plan import Plan
from repro.formats.base import SparseFormat
from repro.ir.program import Program
from repro.ir.validate import validate_program
from repro.search.driver import SearchResult, search


class CompiledKernel:
    """A program lowered for specific format bindings."""

    def __init__(self, program: Program, bindings: Mapping[str, SparseFormat],
                 result: SearchResult):
        self.program = program
        self.bindings = dict(bindings)
        self.result = result
        self.plan: Plan = result.plan
        self.cost = result.cost
        self._pyfunc = None
        self._pysource = None

    # -- execution -----------------------------------------------------------
    def run(self, arrays: Mapping[str, object], params: Mapping[str, int]) -> None:
        """Execute through the reference interpreter.  ``arrays`` must map
        every referenced array name to either a NumPy array (dense data) or
        a format instance compatible with the compile-time binding."""
        from repro.codegen.interp import run_plan

        self._check_arrays(arrays)
        run_plan(self.plan, arrays, params)

    def __call__(self, arrays: Mapping[str, object], params: Mapping[str, int]) -> None:
        """Execute through the generated specialized code (compiled once,
        cached)."""
        fn = self.callable()
        self._check_arrays(arrays)
        fn(arrays, {k: int(v) for k, v in params.items()})

    def callable(self):
        if self._pyfunc is None:
            from repro.codegen.pysource import compile_plan_to_python

            self._pysource, self._pyfunc = compile_plan_to_python(self.plan)
        return self._pyfunc

    @property
    def source(self) -> str:
        """The generated specialized Python source."""
        self.callable()
        return self._pysource

    def pseudocode(self) -> str:
        """The data-centric pseudocode (paper Figures 5/8 style)."""
        return self.plan.pretty()

    def _check_arrays(self, arrays: Mapping[str, object]) -> None:
        for name in self.program.referenced_arrays():
            if name not in arrays:
                raise KeyError(f"missing array {name!r}")
        for name, fmt in self.bindings.items():
            got = arrays.get(name)
            if got is not None and not isinstance(got, type(fmt)):
                raise TypeError(
                    f"array {name!r} was compiled for {type(fmt).__name__}, "
                    f"got {type(got).__name__}"
                )

    def __repr__(self):
        b = {k: v.format_name for k, v in self.bindings.items()}
        return f"<CompiledKernel {self.program.name} {b} cost={self.cost:.1f}>"


def compile_kernel(
    program: Program,
    bindings: Mapping[str, SparseFormat],
    param_values: Optional[Mapping[str, int]] = None,
    pick: str = "best",
    max_orders: int = 12,
    simplify_guards: bool = True,
) -> CompiledKernel:
    """Compile ``program`` for the given format bindings.

    ``bindings`` maps matrix array names to format *instances*; the
    instances provide the index structure, the enumeration runtimes, and
    the statistics the cost model ranks candidates with.  ``param_values``
    optionally supplies concrete sizes for better cost estimates.

    ``pick`` is forwarded to the search ("best" / "first" / "worst" — the
    latter two exist for the ablation benchmarks).
    """
    validate_program(program)
    for name, fmt in bindings.items():
        decl = program.arrays.get(name)
        if decl is None:
            raise KeyError(f"binding for unknown array {name!r}")
        if decl.kind != "matrix":
            raise ValueError(f"only matrices can be bound to sparse formats ({name!r})")
        if not isinstance(fmt, SparseFormat):
            raise TypeError(f"binding for {name!r} must be a SparseFormat instance")
    if param_values is None:
        # default guesses from the bound instances: common size names
        param_values = {}
        for fmt in bindings.values():
            param_values.setdefault("m", fmt.nrows)
            param_values.setdefault("n", fmt.ncols)
    deps = dependences(program)
    result = search(program, bindings, deps, param_values, pick=pick,
                    max_orders=max_orders)
    if simplify_guards:
        result.plan.simplify_guards(param_values)
    return CompiledKernel(program, bindings, result)

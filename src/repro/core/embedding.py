"""Embedding functions and their legality (paper Section 3.1, problem 2).

Each statement copy is embedded into every product-space dimension by a
*(placement, value)* pair:

- placement AT with an affine ``value`` over the copy's variables puts the
  copy's instances inside the dimension's enumeration at that coordinate;
- placement BEFORE / AFTER puts them outside the whole enumeration of that
  dimension (this is how the imperfectly-nested ``b[j] = b[j]/L[j][j]``
  lives outside the inner loop).

Lexicographic comparison therefore works on the expanded vector

    (placement_1, value_1, placement_2, value_2, ..., copy_order)

with the trailing static dimension carrying original program order.
Legality of an embedding demands, for every dependence class and every pair
of copies it connects, that the destination-minus-source delta of this
vector is lexicographically non-negative over the dependence polyhedron
conjoined with both copies' access relations (exact Fourier–Motzkin tests).

The same machinery yields the *enumeration direction* requirements (paper
Section 4.1): a dimension whose value delta can be the first strictly
positive component must be enumerated in increasing order.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from repro.analysis.dependence import DependenceClass, DST, SRC
from repro.analysis.reductions import reduction_array
from repro.core.spaces import ProductDim, ProductSpace, StmtCopy
from repro.instrument import INSTR
from repro.polyhedra.lex import first_positive_dims, lex_nonneg
from repro.polyhedra.linexpr import LinExpr
from repro.polyhedra.system import System

BEFORE = -1
AT = 0
AFTER = 1


class DimEmbedding:
    """Embedding of one copy into one product dimension."""

    __slots__ = ("placement", "value")

    def __init__(self, placement: int, value: Optional[LinExpr] = None):
        if placement == AT and value is None:
            raise ValueError("AT placement requires a value expression")
        if placement not in (BEFORE, AT, AFTER):
            raise ValueError(f"bad placement {placement}")
        self.placement = placement
        self.value = value

    def __repr__(self):
        if self.placement == AT:
            return f"@{self.value!r}"
        return "BEFORE" if self.placement == BEFORE else "AFTER"


class SpaceEmbedding:
    """Embeddings of all copies into all dimensions of one product space."""

    def __init__(self, space: ProductSpace,
                 per_copy: Mapping[str, Sequence[DimEmbedding]]):
        self.space = space
        self.per_copy: Dict[str, List[DimEmbedding]] = {
            k: list(v) for k, v in per_copy.items()
        }
        for copy in space.copies:
            embs = self.per_copy.get(copy.label)
            if embs is None or len(embs) != len(space.dims):
                raise ValueError(f"embedding missing/short for copy {copy.label}")
        self.copy_order: Dict[str, int] = {
            c.label: i for i, c in enumerate(space.copies)
        }

    def of(self, copy: StmtCopy, dim_index: int) -> DimEmbedding:
        return self.per_copy[copy.label][dim_index]

    def __repr__(self):
        lines = []
        for c in self.space.copies:
            embs = self.per_copy[c.label]
            lines.append(f"  {c.label}: " + ", ".join(repr(e) for e in embs))
        return "SpaceEmbedding(\n" + "\n".join(lines) + "\n)"


def _prefix_all(system: System, prefix: str) -> System:
    mapping = {v: prefix + v for v in system.variables() if "." in v}
    return system.rename(mapping)


def _prefix_expr(expr: LinExpr, prefix: str) -> LinExpr:
    return expr.rename({v: prefix + v for v in expr.variables() if "." in v})


def pair_polyhedron(dep: DependenceClass, src_copy: StmtCopy, dst_copy: StmtCopy) -> System:
    """Dependence polyhedron restricted to two concrete copies: the class
    system conjoined with both copies' access relations (role-prefixed).

    The class system names instance variables by *statement* (``s$S2.i``);
    copies qualify variables by copy label (``S2[u0].i``), so the class
    variables are renamed onto the copy labels first."""
    rename = {}
    for v in dep.system.variables():
        if v.startswith(SRC + dep.src.name + "."):
            rename[v] = SRC + src_copy.label + v[len(SRC + dep.src.name):]
        elif v.startswith(DST + dep.dst.name + "."):
            rename[v] = DST + dst_copy.label + v[len(DST + dep.dst.name):]
    sys_ = dep.system.rename(rename)
    sys_ = sys_.conjoin(_prefix_all(src_copy.relation(), SRC))
    sys_ = sys_.conjoin(_prefix_all(dst_copy.relation(), DST))
    return sys_


def pair_deltas(emb: SpaceEmbedding, src_copy: StmtCopy, dst_copy: StmtCopy) -> List[LinExpr]:
    """The expanded delta vector (placement, value per dim, final static)."""
    deltas: List[LinExpr] = []
    src_embs = emb.per_copy[src_copy.label]
    dst_embs = emb.per_copy[dst_copy.label]
    for es, ed in zip(src_embs, dst_embs):
        deltas.append(LinExpr.constant(ed.placement - es.placement))
        if es.placement == AT and ed.placement == AT:
            deltas.append(_prefix_expr(ed.value, DST) - _prefix_expr(es.value, SRC))
        else:
            deltas.append(LinExpr.constant(0))
    deltas.append(LinExpr.constant(
        emb.copy_order[dst_copy.label] - emb.copy_order[src_copy.label]
    ))
    return deltas


def _relevant_pairs(space: ProductSpace, dep: DependenceClass):
    for src_copy in space.copies:
        if src_copy.name != dep.src.name:
            continue
        for dst_copy in space.copies:
            if dst_copy.name != dep.dst.name:
                continue
            yield src_copy, dst_copy


def _is_relaxed(dep: DependenceClass) -> bool:
    """Self-dependences of a reduction statement on its accumulator commute
    (see :mod:`repro.analysis.reductions`)."""
    if dep.src.stmt is not dep.dst.stmt:
        return False
    return reduction_array(dep.src.stmt) == dep.array


INC = 1
DEC = -1


class OrderAnalysis:
    """Result of :func:`analyze_order`: per-dimension direction
    requirements (``INC``/``DEC``/None = any), or illegality."""

    __slots__ = ("directions", "legal", "reason")

    def __init__(self, legal: bool, directions: Optional[Dict[int, int]] = None,
                 reason: str = ""):
        self.legal = legal
        self.directions = directions or {}
        self.reason = reason

    def __repr__(self):
        if not self.legal:
            return f"OrderAnalysis(illegal: {self.reason})"
        return f"OrderAnalysis({self.directions})"


def _emb_signature(embs: Sequence[DimEmbedding]) -> Tuple:
    return tuple(
        (e.placement, e.value) for e in embs
    )


#: process-wide memo for :func:`_analyze_pair_core`, keyed by the *content*
#: of the question (canonical polyhedron signature, delta vector, ndims) so
#: identical legality/direction queries are answered once per process even
#: across different searches/programs.  Bounded; cleared by
#: :func:`clear_pair_memo`.
_PAIR_MEMO: Dict[Tuple, Tuple] = {}
_PAIR_MEMO_CAP = 1 << 16

#: guards flush-on-overflow and clear; lookups stay lock-free ``dict.get``
_PAIR_MEMO_LOCK = threading.Lock()


def clear_pair_memo() -> None:
    with _PAIR_MEMO_LOCK:
        _PAIR_MEMO.clear()


def _analyze_pair_core(poly: System, deltas: Sequence[LinExpr], ndims: int):
    """Walk one (polyhedron, delta vector): returns (legal, need_inc,
    need_dec, reason).  Depends only on its arguments' content, so results
    are memoized process-wide under a canonical key."""
    from repro.polyhedra.fm import is_feasible, system_signature
    from repro.polyhedra.system import Constraint, EQ, GE

    INSTR.count("pair.core_calls")
    key = (system_signature(poly), tuple(deltas), ndims)
    hit = _PAIR_MEMO.get(key)
    if hit is not None:
        INSTR.count("pair.memo_hits")
        return hit

    def _memo(result):
        # freeze the direction sets: the memoized tuple is shared across
        # callers and must never be mutated through a returned reference
        result = (result[0], frozenset(result[1]), frozenset(result[2]), result[3])
        with _PAIR_MEMO_LOCK:
            if len(_PAIR_MEMO) >= _PAIR_MEMO_CAP:
                _PAIR_MEMO.clear()
            _PAIR_MEMO[key] = result
        return result

    need_inc: Set[int] = set()
    need_dec: Set[int] = set()
    prefix = poly
    if not is_feasible(prefix):
        return _memo((True, need_inc, need_dec, ""))
    satisfied = False
    for pos, d in enumerate(deltas):
        dim_idx = pos // 2
        if d.is_constant:
            if d.const > 0:
                satisfied = True
                break
            if d.const < 0:
                return _memo((False, need_inc, need_dec,
                              f"static component {pos} is negative"))
            continue
        if is_feasible(prefix.and_also(Constraint(d - 1, GE))):
            need_inc.add(dim_idx)
        if is_feasible(prefix.and_also(Constraint(-d - 1, GE))):
            need_dec.add(dim_idx)
        prefix = prefix.and_also(Constraint(d, EQ))
        if not is_feasible(prefix):
            satisfied = True
            break
    if not satisfied and is_feasible(prefix):
        return _memo((False, need_inc, need_dec,
                      "dependent instances map to the same point"))
    return _memo((True, need_inc, need_dec, ""))


def _analyze_pair(dep, src_copy, dst_copy, emb, ndims):
    """Walk one (class, copy pair): returns (legal, need_inc, need_dec,
    reason).  Independent of the other copies' embeddings, so results are
    cacheable across candidates; delegates to the content-keyed
    :func:`_analyze_pair_core` memo."""
    poly = pair_polyhedron(dep, src_copy, dst_copy)
    deltas = pair_deltas(emb, src_copy, dst_copy)
    legal, need_inc, need_dec, reason = _analyze_pair_core(poly, deltas, ndims)
    if reason:
        reason = f"{dep!r} between {src_copy.label}->{dst_copy.label}: {reason}"
    return legal, need_inc, need_dec, reason


def analyze_order(
    emb: SpaceEmbedding,
    deps: Sequence[DependenceClass],
    relax_reductions: bool = True,
    pair_cache: Optional[Dict] = None,
) -> OrderAnalysis:
    """Decide legality and per-dimension enumeration directions together.

    For each dependence class and copy pair we walk the expanded delta
    vector keeping the polyhedron of points whose earlier components are all
    zero.  At each *placement* component (a static constant) a negative
    value with a non-empty prefix kills the embedding, a positive one
    satisfies all remaining points.  At each *value* component we record
    whether the component can be the first positive (requires increasing
    enumeration of that dimension) and/or the first negative (requires
    decreasing).  A dimension required in both directions — or a
    wrong-sign static component — makes the embedding illegal (paper
    Sections 3.1 and 4.1, extended to decreasing enumerations, which
    backward substitutions like upper triangular solve need).
    """
    ndims = len(emb.space.dims)
    need_inc: Set[int] = set()
    need_dec: Set[int] = set()

    for di, dep in enumerate(deps):
        if relax_reductions and _is_relaxed(dep):
            continue
        for src_copy, dst_copy in _relevant_pairs(emb.space, dep):
            if pair_cache is not None:
                key = (
                    di, src_copy.label, dst_copy.label,
                    _emb_signature(emb.per_copy[src_copy.label]),
                    _emb_signature(emb.per_copy[dst_copy.label]),
                    emb.copy_order[dst_copy.label] - emb.copy_order[src_copy.label],
                )
                hit = pair_cache.get(key)
                if hit is None:
                    hit = _analyze_pair(dep, src_copy, dst_copy, emb, ndims)
                    pair_cache[key] = hit
                else:
                    INSTR.count("pair.local_hits")
            else:
                hit = _analyze_pair(dep, src_copy, dst_copy, emb, ndims)
            legal, inc, dec, reason = hit
            if not legal:
                return OrderAnalysis(False, reason=reason)
            need_inc |= inc
            need_dec |= dec

    conflict = need_inc & need_dec
    if conflict:
        return OrderAnalysis(
            False,
            reason=f"dimensions {sorted(conflict)} required both increasing and decreasing",
        )
    directions: Dict[int, int] = {}
    for k in need_inc:
        directions[k] = INC
    for k in need_dec:
        directions[k] = DEC
    return OrderAnalysis(True, directions)


def check_legality(
    emb: SpaceEmbedding,
    deps: Sequence[DependenceClass],
    relax_reductions: bool = True,
) -> bool:
    """Legality under all-increasing enumeration (the paper's base case);
    cross-checkable against :func:`analyze_order`."""
    for dep in deps:
        if relax_reductions and _is_relaxed(dep):
            continue
        for src_copy, dst_copy in _relevant_pairs(emb.space, dep):
            poly = pair_polyhedron(dep, src_copy, dst_copy)
            deltas = pair_deltas(emb, src_copy, dst_copy)
            if not lex_nonneg(poly, deltas):
                return False
    return True


def required_directions(
    emb: SpaceEmbedding,
    deps: Sequence[DependenceClass],
    relax_reductions: bool = True,
) -> Set[int]:
    """Dimensions that must be enumerated in increasing order, assuming
    all-increasing legality holds (paper Section 4.1)."""
    ndims = len(emb.space.dims)
    required: Set[int] = set()
    for dep in deps:
        if relax_reductions and _is_relaxed(dep):
            continue
        for src_copy, dst_copy in _relevant_pairs(emb.space, dep):
            poly = pair_polyhedron(dep, src_copy, dst_copy)
            deltas = pair_deltas(emb, src_copy, dst_copy)
            for pos in first_positive_dims(poly, deltas):
                if pos < 2 * ndims and pos % 2 == 1:
                    required.add(pos // 2)
    return required

"""Client for the compilation daemon (:mod:`repro.core.daemon`).

:class:`ServiceClient` wraps the length-prefixed JSON protocol in a
context-managed connection with retry-on-connect (daemons are typically
started moments before their first client; the connect loop rides out
the race) and payload-digest bookkeeping: the first time a format
instance is submitted it travels as a full COO payload, and the client
remembers the digest the daemon stored it under so every later request
sends the digest string instead.  If the daemon has since evicted the
payload (``unknown-digest``), the client transparently re-uploads and
retries once.

Usage::

    from repro.core.client import ServiceClient

    with ServiceClient(server.address) as svc:
        h = svc.compile("mvm(m, n; A: matrix, x: vector, y: vector) {...}",
                        {"A": A_csr}, options={"backend": "c"})
        print(h.handle, h.backend_used, h.cost)
        print(svc.stats()["latency"])

``compile`` with a list of sources returns a list of
:class:`RemoteOutcome` (per-item failure isolation, mirroring
:class:`~repro.core.service.BatchResult`); with a single source it
returns the :class:`RemoteOutcome` directly and raises
:class:`RemoteCompileError` if that one item failed.
"""

from __future__ import annotations

import socket
import time
import weakref
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core import wire
from repro.formats.base import SparseFormat
from repro.instrument import INSTR
from repro.ir.printer import program_to_text
from repro.ir.program import Program

__all__ = ["ServiceClient", "ServiceError", "RemoteCompileError",
           "RemoteOutcome"]


class ServiceError(RuntimeError):
    """The daemon answered with a request-level error (queue-full,
    timeout, malformed, draining, ...).  ``code`` is the wire error
    token; ``response`` the full response object."""

    def __init__(self, code: str, detail: str = "",
                 response: Optional[Dict] = None):
        super().__init__(f"{code}: {detail}" if detail else code)
        self.code = code
        self.detail = detail
        self.response = response or {}


class RemoteCompileError(ServiceError):
    """A single-program compile request failed on its one item."""


@dataclass
class RemoteOutcome:
    """One per-item compile result from the daemon."""

    ok: bool
    handle: Optional[str] = None
    program: Optional[str] = None
    backend_used: Optional[str] = None
    fallback_reason: Optional[str] = None
    cost: Optional[float] = None
    seconds: Optional[float] = None
    cached: bool = False
    search_cached: bool = False
    error: Optional[str] = None
    error_type: Optional[str] = None
    raw: Dict = field(default_factory=dict, repr=False)

    @classmethod
    def from_wire(cls, item: Dict) -> "RemoteOutcome":
        known = {f for f in cls.__dataclass_fields__ if f != "raw"}
        return cls(**{k: v for k, v in item.items() if k in known}, raw=item)


Address = Union[str, Tuple[str, int], Sequence]


class ServiceClient:
    """One connection to a :class:`~repro.core.daemon.CompileServer`.

    ``address`` is a unix-socket path (str) or a ``(host, port)`` tuple —
    exactly what ``CompileServer.address`` returns.  Connection is lazy:
    the first request (or ``__enter__``) dials, retrying
    ``connect_retries`` times with exponential backoff to ride out a
    daemon that is still binding its socket."""

    def __init__(self, address: Address, *, timeout: float = 120.0,
                 connect_retries: int = 20, retry_delay: float = 0.05):
        self.address = address
        self.timeout = timeout
        self.connect_retries = connect_retries
        self.retry_delay = retry_delay
        self._sock: Optional[socket.socket] = None
        #: format instance -> digest the daemon stored its payload under
        self._digests: "weakref.WeakKeyDictionary[SparseFormat, str]" = \
            weakref.WeakKeyDictionary()

    # -- lifecycle -----------------------------------------------------------

    def connect(self) -> "ServiceClient":
        """Dial the daemon, retrying on not-yet-listening errors."""
        if self._sock is not None:
            return self
        delay = self.retry_delay
        last: Optional[Exception] = None
        for attempt in range(max(1, self.connect_retries)):
            if attempt:
                time.sleep(delay)
                delay = min(delay * 1.5, 2.0)
            try:
                self._sock = self._dial()
                INSTR.count("client.connects")
                return self
            except (FileNotFoundError, ConnectionRefusedError,
                    ConnectionResetError) as e:
                INSTR.count("client.connect_retries")
                last = e
        raise ConnectionError(
            f"cannot reach compile daemon at {self.address!r} "
            f"after {self.connect_retries} attempts") from last

    def _dial(self) -> socket.socket:
        if isinstance(self.address, str):
            if not hasattr(socket, "AF_UNIX"):  # pragma: no cover - non-POSIX
                raise ConnectionError("AF_UNIX sockets unavailable")
            s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            target = self.address
        else:
            host, port = self.address[0], self.address[1]
            s = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            target = (host, int(port))
        s.settimeout(self.timeout)
        try:
            s.connect(target)
        except BaseException:
            s.close()
            raise
        return s

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- raw request ---------------------------------------------------------

    def request(self, msg: Dict) -> Dict:
        """One round-trip.  Raises :class:`ServiceError` on an error
        response, ``ConnectionError`` if the daemon hangs up."""
        self.connect()
        try:
            wire.send_frame(self._sock, msg)
            resp = wire.recv_frame(self._sock)
        except (OSError, wire.ProtocolError) as e:
            self.close()
            raise ConnectionError(f"daemon connection lost: {e}") from e
        if resp is None:
            self.close()
            raise ConnectionError("daemon closed the connection")
        if not resp.get("ok"):
            raise ServiceError(resp.get("error", "error"),
                               resp.get("detail", ""), resp)
        return resp

    # -- ops -----------------------------------------------------------------

    def ping(self) -> bool:
        return bool(self.request({"op": "ping"}).get("pong"))

    def stats(self) -> Dict:
        return self.request({"op": "stats"})["stats"]

    def describe(self, handle: str, source: bool = False) -> Dict:
        return self.request({"op": "describe", "handle": handle,
                             "source": bool(source)})

    def shutdown(self) -> None:
        """Ask the daemon to drain and exit (the daemon answers first,
        then stops accepting; in-flight requests still complete)."""
        self.request({"op": "shutdown"})

    def compile(self,
                program: Union[str, Program, Sequence[Union[str, Program]]],
                bindings: Mapping[str, Union[SparseFormat, Dict, str]],
                params: Optional[Mapping[str, int]] = None,
                *, options: Optional[Mapping] = None,
                ) -> Union[RemoteOutcome, List[RemoteOutcome]]:
        """Submit one program (or a batch) for compilation.

        ``bindings`` values may be :class:`SparseFormat` instances
        (shipped as COO payloads, digests memoized for reuse), raw wire
        payload dicts, or digest strings from an earlier response."""
        single = isinstance(program, (str, Program))
        sources = [program] if single else list(program)
        sources = [program_to_text(p) if isinstance(p, Program) else p
                   for p in sources]

        msg: Dict = {"op": "compile"}
        if single:
            msg["program"] = sources[0]
        else:
            msg["programs"] = sources
        if params:
            msg["params"] = {k: int(v) for k, v in params.items()}
        if options:
            msg["options"] = dict(options)

        for attempt in (0, 1):
            msg["bindings"] = self._encode_bindings(
                bindings, force_payload=bool(attempt))
            try:
                resp = self.request(msg)
            except ServiceError as e:
                if e.code == "unknown-digest" and attempt == 0:
                    # daemon evicted payloads we memoized: re-upload once
                    for name in e.response.get("unknown", {}):
                        fmt = bindings.get(name)
                        if isinstance(fmt, SparseFormat):
                            self._digests.pop(fmt, None)
                    INSTR.count("client.digest_reuploads")
                    continue
                raise
            break

        for name, digest in resp.get("bindings", {}).items():
            fmt = bindings.get(name)
            if isinstance(fmt, SparseFormat):
                self._digests[fmt] = digest
        outcomes = [RemoteOutcome.from_wire(i) for i in resp["results"]]
        if single:
            out = outcomes[0]
            if not out.ok:
                raise RemoteCompileError(
                    out.error_type or "compile-error", out.error or "", resp)
            return out
        return outcomes

    def _encode_bindings(self, bindings: Mapping,
                         force_payload: bool) -> Dict:
        out: Dict = {}
        for name, value in bindings.items():
            if isinstance(value, SparseFormat):
                digest = None if force_payload else self._digests.get(value)
                if digest is not None:
                    INSTR.count("client.digest_sends")
                    out[name] = digest
                else:
                    out[name] = wire.encode_format(value)
            elif isinstance(value, (dict, str)):
                out[name] = value
            else:
                raise TypeError(
                    f"binding {name!r} must be a SparseFormat, a wire "
                    f"payload dict, or a digest string, "
                    f"got {type(value).__name__}")
        return out

"""Enumeration plans: the data-centric pseudocode of paper Figures 5/8.

A plan is a tree of nodes:

- :class:`LoopNode` — enumerate one product-space dimension cluster (a
  single axis, or the axes of a joint step) through a concrete
  *enumeration method*; carries the per-copy value bindings, the roles of
  each participating sparse reference (driver / shared / searched), and
  three sub-plans: ``before`` (copies placed BEFORE this dimension's
  enumeration), ``body`` and ``after``;
- :class:`VarLoopNode` — an interval loop over a dimension none of whose
  active copies owns stored data (a pure iteration dimension that is not
  yet determined);
- :class:`ExecNode` — execute one statement copy's instances at the
  current point, guarded by its residual domain/relation inequalities.

:func:`build_plan` lowers a (product space, embedding, order analysis)
triple into a plan, deciding for each dimension how it can be enumerated
(stored order / interval-and-search / gather-and-sort) so that every
required direction is honoured, which references share one enumeration
(the paper's common enumerations), which are searched (the paper's
redundant-dimension searches), and which guards remain.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.embedding import AT, BEFORE, AFTER, DEC, INC, OrderAnalysis, SpaceEmbedding
from repro.core.redundancy import DeterminacyTracker
from repro.core.spaces import ProductDim, ProductSpace, SparseRef, StmtCopy
from repro.instrument import INSTR
from repro.polyhedra.linexpr import LinExpr
from repro.polyhedra.system import System


class PlanError(ValueError):
    """This (space, embedding) candidate cannot be lowered to a plan."""


# ---------------------------------------------------------------------------
# Enumeration methods
# ---------------------------------------------------------------------------

class EnumMethod:
    __slots__ = ()


class StoredEnum(EnumMethod):
    """Walk the driver's path step in stored order (optionally reversed:
    a DECREASING-stored axis enumerated when increasing order is needed)."""

    __slots__ = ("driver", "step", "reverse")

    def __init__(self, driver: SparseRef, step: int, reverse: bool = False):
        self.driver = driver
        self.step = step
        self.reverse = reverse

    def __repr__(self):
        r = " reversed" if self.reverse else ""
        return f"enumerate {self.driver!r} step {self.step}{r}"


class SortedEnum(EnumMethod):
    """Gather the driver's step and sort lexicographically by keys, with a
    per-axis sign (+1 ascending, -1 descending); the fallback that realizes
    any required direction on any format at O(k log k) cost."""

    __slots__ = ("driver", "step", "signs")

    def __init__(self, driver: SparseRef, step: int, signs: Tuple[int, ...] = ()):
        self.driver = driver
        self.step = step
        self.signs = tuple(signs)

    def __repr__(self):
        return f"sort-enumerate {self.driver!r} step {self.step} signs={self.signs}"


class IntervalEnum(EnumMethod):
    """Count through the dimension's value interval (from the driver's
    runtime bounds) in the required direction, searching each reference for
    every value — the paper's interval + search pattern (Figure 9's
    ``for r ... search(...)``)."""

    __slots__ = ("driver", "step", "reverse")

    def __init__(self, driver: SparseRef, step: int, reverse: bool = False):
        self.driver = driver
        self.step = step
        self.reverse = reverse

    def __repr__(self):
        r = " downward" if self.reverse else ""
        return f"interval-enumerate {self.driver!r} step {self.step}{r}"


class SearchEnum(EnumMethod):
    """The dimension's value is already determined by earlier bindings:
    compute it and *search* the driver instead of enumerating — exactly the
    paper's treatment of redundant dimensions ("we generate code to search
    for this value", Section 4.1)."""

    __slots__ = ("driver", "step", "key_exprs")

    def __init__(self, driver: SparseRef, step: int, key_exprs: Sequence[LinExpr]):
        self.driver = driver
        self.step = step
        self.key_exprs = tuple(key_exprs)

    def __repr__(self):
        ks = ", ".join(repr(e) for e in self.key_exprs)
        return f"search {self.driver!r} step {self.step} for ({ks})"


# roles of member references within a LoopNode
DRIVER = "driver"
SHARED = "shared"     # same matrix+path as the driver: reuse its state
SEARCH = "search"     # independently searched with the dimension value


class RefRole:
    __slots__ = ("ref", "role", "step")

    def __init__(self, ref: SparseRef, role: str, step: int):
        self.ref = ref
        self.role = role
        self.step = step

    def __repr__(self):
        return f"{self.role}:{self.ref!r}"


class Bind:
    """Unify one copy's affine expression with one enumerated axis value."""

    __slots__ = ("copy_label", "axis_pos", "expr")

    def __init__(self, copy_label: str, axis_pos: int, expr: LinExpr):
        self.copy_label = copy_label
        self.axis_pos = axis_pos
        self.expr = expr

    def __repr__(self):
        return f"{self.copy_label}: {self.expr!r} == key[{self.axis_pos}]"


# ---------------------------------------------------------------------------
# Plan nodes
# ---------------------------------------------------------------------------

class PlanNode:
    __slots__ = ()


class LoopNode(PlanNode):
    __slots__ = ("dim_names", "method", "roles", "binds", "before", "body", "after")

    def __init__(self, dim_names: Sequence[str], method: EnumMethod,
                 roles: Sequence[RefRole], binds: Sequence[Bind],
                 before: Sequence[PlanNode], body: Sequence[PlanNode],
                 after: Sequence[PlanNode]):
        self.dim_names = tuple(dim_names)
        self.method = method
        self.roles = list(roles)
        self.binds = list(binds)
        self.before = list(before)
        self.body = list(body)
        self.after = list(after)


class VarLoopNode(PlanNode):
    __slots__ = ("dim_name", "lo", "hi", "reverse", "binds", "body")

    def __init__(self, dim_name: str, lo: LinExpr, hi: LinExpr, reverse: bool,
                 binds: Sequence[Bind], body: Sequence[PlanNode]):
        self.dim_name = dim_name
        self.lo = lo
        self.hi = hi  # exclusive
        self.reverse = reverse
        self.binds = list(binds)
        self.body = list(body)


class ExecNode(PlanNode):
    __slots__ = ("copy", "guards")

    def __init__(self, copy: StmtCopy, guards: Sequence[LinExpr]):
        self.copy = copy
        # each guard is an affine expression required to be >= 0
        self.guards = list(guards)


class Plan:
    """A complete lowered plan plus the analyses that produced it."""

    def __init__(self, space: ProductSpace, emb: SpaceEmbedding,
                 order: OrderAnalysis, nodes: Sequence[PlanNode]):
        self.space = space
        self.emb = emb
        self.order = order
        self.nodes = list(nodes)

    def simplify_guards(self, param_values: Optional[Dict[str, int]] = None) -> None:
        """Drop execution guards that are implied by the stored structure
        (the copy's access relation with the compile-time sizes substituted)
        plus the remaining guards.  The generated code then carries exactly
        the guards a hand-written kernel would (paper Figures 5/8: the
        ``row == col`` / ``col < row`` tests and nothing else).

        Assumes runtime size parameters match the compile-time binding —
        the usual BLAS contract.
        """
        from repro.polyhedra.fm import implies
        from repro.polyhedra.system import Constraint, GE, System

        params = {k: LinExpr.constant(v) for k, v in (param_values or {}).items()}

        def context_for(copy: StmtCopy) -> System:
            """What is *known* at execution without checking: the access
            coupling equalities, the per-reference inequalities the stored
            structure guarantees (axis ranges, bounds annotations), and the
            value ranges of the enumerated dimensions the copy is fused
            into.  The copy's own loop-bound inequalities are exactly what
            the guards must test, so they are NOT part of the context."""
            from repro.polyhedra.system import GE as _GE

            cons = list(copy.relation().equalities())
            for ref in copy.refs:
                cons.extend(ref.relation(copy.qual_map()).inequalities())
            # enumerated data dimensions bound the copy's value expressions
            for di, dim in enumerate(self.space.dims):
                if not dim.is_data:
                    continue
                e = self.emb.of(copy, di)
                if e.placement != AT:
                    continue
                ref0, axis0 = dim.members[0]
                rng = ref0.fmt.axis_range(axis0)
                if rng is None:
                    continue
                lo, hi = rng
                cons.append(Constraint(e.value - lo, _GE))
                cons.append(Constraint(LinExpr.constant(hi - 1) - e.value, _GE))
            return System(cons)

        def visit(nodes: Sequence[PlanNode], extra: List[Constraint]) -> None:
            for n in nodes:
                if isinstance(n, ExecNode):
                    base = context_for(n.copy).substitute(params)
                    base = base.conjoin(System(extra)).substitute(params)
                    guards = [g.substitute(params) for g in n.guards]
                    kept_idx: List[int] = []
                    for i, g in enumerate(guards):
                        # context: guards already kept plus those still
                        # undecided (later ones) — never already-dropped ones
                        others = [guards[j] for j in kept_idx] + guards[i + 1:]
                        ctx = base.conjoin(System(Constraint(o, GE) for o in others))
                        if not implies(ctx, Constraint(g, GE)):
                            kept_idx.append(i)
                    n.guards = [n.guards[i] for i in kept_idx]
                elif isinstance(n, LoopNode):
                    visit(n.before, extra)
                    visit(n.body, extra)
                    visit(n.after, extra)
                elif isinstance(n, VarLoopNode):
                    # inside the loop every bound expression lies in
                    # [lo, hi)
                    from repro.polyhedra.system import GE as _GE

                    inner = list(extra)
                    for b in n.binds:
                        inner.append(Constraint(b.expr - n.lo, _GE))
                        inner.append(Constraint(n.hi - 1 - b.expr, _GE))
                    visit(n.body, inner)

        visit(self.nodes, [])

    def pretty(self) -> str:
        """Render as data-centric pseudocode in the style of paper
        Figures 5 and 8."""
        out: List[str] = []

        def walk(nodes: Sequence[PlanNode], depth: int):
            pad = "    " * depth
            for n in nodes:
                if isinstance(n, LoopNode):
                    if n.before:
                        out.append(f"{pad}# before the {','.join(n.dim_names)} "
                                   f"enumeration:")
                        walk(n.before, depth)
                    names = ",".join(n.dim_names)
                    out.append(f"{pad}for ({names}) = {n.method!r}:")
                    for role in n.roles:
                        if role.role != DRIVER:
                            out.append(f"{pad}    [{role.role} {role.ref!r}]")
                    walk(n.body, depth + 1)
                    if n.after:
                        out.append(f"{pad}# after the {','.join(n.dim_names)} "
                                   f"enumeration:")
                        walk(n.after, depth)
                elif isinstance(n, VarLoopNode):
                    d = " downto" if n.reverse else ""
                    out.append(f"{pad}for {n.dim_name} in [{n.lo!r}, {n.hi!r}){d}:")
                    walk(n.body, depth + 1)
                elif isinstance(n, ExecNode):
                    g = f" if {n.guards}" if n.guards else ""
                    out.append(f"{pad}execute {n.copy.label}{g}")

        walk(self.nodes, 0)
        return "\n".join(out)


# ---------------------------------------------------------------------------
# Plan construction
# ---------------------------------------------------------------------------

def _clone_tracker(t: DeterminacyTracker) -> DeterminacyTracker:
    c = object.__new__(DeterminacyTracker)
    c.copy = t.copy
    c.vars = t.vars
    c.index = t.index
    from repro.util.fractions_linalg import IncrementalRank

    r = IncrementalRank(t._rank.width)
    r._rows = list(t._rank._rows)
    r._count = t._rank._count
    c._rank = r
    return c


def _share_groups(members: Sequence[Tuple[SparseRef, str]],
                  share_sig: Dict[Tuple[str, int], Tuple]) -> List[List[Tuple[SparseRef, str]]]:
    """Group member (ref, axis) pairs that can share one enumeration: same
    matrix object, same path, and identical sharing history on all outer
    steps (so their runtime prefixes coincide)."""
    groups: Dict[Tuple, List[Tuple[SparseRef, str]]] = {}
    for ref, axis in members:
        sig = (id(ref.fmt), ref.path.path_id, share_sig.get(ref.key, ()))
        groups.setdefault(sig, []).append((ref, axis))
    return list(groups.values())


def build_plan(
    space: ProductSpace,
    emb: SpaceEmbedding,
    order: OrderAnalysis,
    var_bounds: Dict[str, Tuple[LinExpr, LinExpr]],
    param_values: Optional[Dict[str, int]] = None,
) -> Plan:
    """Lower a legal (space, embedding) into an executable plan.

    ``var_bounds`` maps copy-qualified iteration variables to their loop
    bounds (lower inclusive, upper exclusive) as expressions over outer
    qualified variables and parameters.  ``param_values`` supplies concrete
    parameter sizes for the totality checks (a statement fused into a
    stored enumeration must be guaranteed to see all of its instances).
    """
    if not order.legal:
        raise PlanError(f"illegal embedding: {order.reason}")
    INSTR.count("plan.build_calls")

    copies = {c.label: c for c in space.copies}
    trackers = {c.label: DeterminacyTracker(c) for c in space.copies}
    # sharing history per reference: tuple of group-leader ids, per step
    share_sig: Dict[Tuple[str, int], Tuple] = {}
    param_values = dict(param_values or {})

    dims = list(space.dims)

    def guards_for(copy: StmtCopy) -> List[LinExpr]:
        # only the loop-bound (domain) inequalities guard execution; axis
        # ranges are guaranteed by the enumerations themselves and bounds
        # annotations are promises about the stored structure
        dom = copy.ctx.domain().rename({
            copy.ctx.qualified(v): copy.qual(v) for v in copy.ctx.vars
        })
        return [c.expr for c in dom.inequalities()]

    # numeric value ranges each copy's expressions can take (params
    # substituted), for the totality checks
    _range_cache: Dict[Tuple[str, LinExpr], Tuple] = {}

    def expr_range(copy: StmtCopy, expr: LinExpr):
        key = (copy.label, expr)
        if key in _range_cache:
            return _range_cache[key]
        from repro.polyhedra.fm import bounds_of, is_feasible

        subs = {p: LinExpr.constant(v) for p, v in param_values.items()}
        sys_ = copy.relation().substitute(subs)
        e = expr.substitute(subs)
        if not is_feasible(sys_):
            rng = (0, -1)  # empty instance set: trivially covered
        else:
            lo, hi = bounds_of(sys_, e)
            rng = (lo, hi)
        _range_cache[key] = rng
        return rng

    def build(dim_idx: int, active: List[str],
              trackers: Dict[str, DeterminacyTracker],
              share_sig: Dict[Tuple[str, int], Tuple]) -> List[PlanNode]:
        if not active:
            return []
        if dim_idx >= len(dims):
            return [ExecNode(copies[l], guards_for(copies[l]))
                    for l in active]

        dim = dims[dim_idx]
        direction = order.directions.get(dim_idx)

        # partition by placement
        seg = {BEFORE: [], AT: [], AFTER: []}
        for label in active:
            seg[emb.of(copies[label], dim_idx).placement].append(label)

        members_at = [(ref, axis) for ref, axis in dim.members
                      if ref.owner_label in seg[AT]]

        # cluster: joint-step dims are consumed together
        cluster_dims = [dim]
        consumed = 1
        if members_at and dim.joint_with:
            for jd in dim.joint_with:
                nxt = dims[dim_idx + consumed] if dim_idx + consumed < len(dims) else None
                if nxt is not jd:
                    raise PlanError(
                        f"joint dims {dim.name}/{jd.name} are not adjacent in the order"
                    )
                cluster_dims.append(jd)
                consumed += 1

        def subtrackers():
            return {k: _clone_tracker(v) for k, v in trackers.items()}

        if members_at:
            node = _build_loop(
                space, emb, order, dims, dim_idx, cluster_dims, consumed, seg,
                members_at, copies, trackers, share_sig, subtrackers, build,
                direction, expr_range,
            )
            return [node]

        # ---- no stored member among active copies -------------------------
        at_exprs: List[Tuple[str, LinExpr]] = []
        for label in seg[AT]:
            e = emb.of(copies[label], dim_idx)
            at_exprs.append((label, e.value))

        undet = [(l, ex) for l, ex in at_exprs if not trackers[l].is_determined(ex)]
        if not undet:
            if direction is not None and len(seg[AT]) > 1:
                raise PlanError(
                    f"dimension {dim.name} needs ordered enumeration but is "
                    f"fully determined for all copies"
                )
            nodes: List[PlanNode] = []
            tr_b = subtrackers()
            nodes += build(dim_idx + 1, seg[BEFORE], tr_b, dict(share_sig))
            tr_at = subtrackers()
            for l, ex in at_exprs:
                tr_at[l].pin(ex)
            nodes += build(dim_idx + 1, seg[AT], tr_at, dict(share_sig))
            tr_a = subtrackers()
            nodes += build(dim_idx + 1, seg[AFTER], tr_a, dict(share_sig))
            return nodes

        # an undetermined pure-iteration dimension: loop over its values
        lo, hi = _var_loop_bounds(undet, trackers, var_bounds)
        binds = [Bind(l, 0, ex) for l, ex in at_exprs]
        nodes = []
        tr_b = subtrackers()
        nodes += build(dim_idx + 1, seg[BEFORE], tr_b, dict(share_sig))
        tr_at = subtrackers()
        for l, ex in at_exprs:
            tr_at[l].pin(ex)
        body = build(dim_idx + 1, seg[AT], tr_at, dict(share_sig))
        nodes.append(VarLoopNode(dim.name, lo, hi, direction == DEC, binds, body))
        tr_a = subtrackers()
        nodes += build(dim_idx + 1, seg[AFTER], tr_a, dict(share_sig))
        return nodes

    roots = build(0, [c.label for c in space.copies], trackers, share_sig)
    return Plan(space, emb, order, roots)


def _var_loop_bounds(
    undet: List[Tuple[str, LinExpr]],
    trackers: Dict[str, DeterminacyTracker],
    var_bounds: Dict[str, Tuple[LinExpr, LinExpr]],
) -> Tuple[LinExpr, LinExpr]:
    """Dimension-value bounds for a pure iteration loop.

    Every undetermined copy expression must be (var + const) with the
    variable's loop bounds known; all derived ranges must agree
    syntactically (a conservative but exact criterion)."""
    ranges: List[Tuple[LinExpr, LinExpr]] = []
    for label, ex in undet:
        unbound = trackers[label].unbound_vars(ex)
        if len(unbound) != 1:
            raise PlanError(
                f"dimension value {ex!r} of copy {label} has {len(unbound)} "
                f"unbound variables; cannot drive a loop"
            )
        v = unbound[0]
        cv = ex.coeff(v)
        if cv not in (1, -1):
            raise PlanError(f"non-unit coefficient on loop variable in {ex!r}")
        if v not in var_bounds:
            raise PlanError(f"no loop bounds known for {v}")
        vlo, vhi = var_bounds[v]
        rest = ex - LinExpr({v: cv})
        if cv == 1:
            ranges.append((vlo + rest, vhi + rest))
        else:
            # value = -v + rest, v in [vlo, vhi) -> value in (rest - vhi, rest - vlo]
            ranges.append((rest - vhi + 1, rest - vlo + 1))
    first = ranges[0]
    for r in ranges[1:]:
        if r[0] != first[0] or r[1] != first[1]:
            raise PlanError("iteration-dimension ranges of fused copies differ")
    return first


def _build_loop(space, emb, order, dims, dim_idx, cluster_dims, consumed, seg,
                members_at, copies, trackers, share_sig, subtrackers, build,
                direction, expr_range):
    """Construct the LoopNode for a data dimension (cluster)."""
    from repro.formats.views import DECREASING, INCREASING, NOSEARCH

    # members of every cluster dim, deduplicated by reference
    all_members: List[Tuple[SparseRef, str]] = []
    seen_refs: Set[Tuple[str, int]] = set()
    for cd in cluster_dims:
        for ref, axis in cd.members:
            if ref.owner_label not in seg[AT]:
                continue
            if ref.key not in seen_refs:
                seen_refs.add(ref.key)
                all_members.append((ref, axis))

    groups = _share_groups(all_members, share_sig)
    # the driver group: prefer one whose stored order matches the required
    # direction; then largest group (most sharing)
    def group_rank(g):
        ref, axis = g[0]
        av = ref.path.axis(axis)
        order_ok = (
            direction is None
            or (direction == INC and av.order == INCREASING)
            or (direction == DEC and av.order == DECREASING)
        )
        return (0 if order_ok else 1, -len(g))

    groups.sort(key=group_rank)
    driver_ref, driver_axis = groups[0][0]
    step = driver_ref.path.step_of(driver_axis)
    step_axes = driver_ref.path.steps[step].names
    if len(step_axes) != len(cluster_dims):
        raise PlanError(
            f"driver step produces axes {step_axes} but cluster has "
            f"{len(cluster_dims)} dims"
        )
    axis_views = {a.name: a for a in driver_ref.path.steps[step].axes}

    # binds: every AT copy's value expression per cluster axis (collected
    # early: the method choice depends on which are already determined)
    binds: List[Bind] = []
    member_labels = {ref.owner_label for ref, _ in all_members}
    for pos, cd in enumerate(cluster_dims):
        for label in seg[AT]:
            e = emb.of(copies[label], dim_idx + pos)
            if e.placement != AT:
                raise PlanError(
                    f"copy {label} changes placement inside joint cluster {cd.name}"
                )
            binds.append(Bind(label, pos, e.value))

    # redundant-dimension search (paper Section 4.1): if every AT copy owns
    # stored data here and every bind is already determined, look the value
    # up instead of enumerating
    all_members_only = all(label in member_labels for label in seg[AT])
    all_determined = all(
        trackers[b.copy_label].is_determined(b.expr) for b in binds
    )
    if all_members_only and all_determined and seg[AT]:
        # a single key expression per axis, from any copy (all agree by
        # determinedness through the shared dimension value)
        key_exprs: List[LinExpr] = []
        for pos in range(len(cluster_dims)):
            b = next(b for b in binds if b.axis_pos == pos)
            key_exprs.append(b.expr)
        method: EnumMethod = SearchEnum(driver_ref, step, key_exprs)
    else:
        method = _choose_method(driver_ref, step, cluster_dims, axis_views,
                                direction, order, dims, dim_idx)
        # totality: copies fused into this enumeration without stored data
        # here must be guaranteed to see every instance value
        for label in seg[AT]:
            if label in member_labels:
                continue
            total = driver_ref.fmt.axis_total(
                driver_ref.path.steps[step].names[0]
            ) if len(cluster_dims) == 1 else None
            for b in binds:
                if b.copy_label != label:
                    continue
                # NOTE: a determined value does not exempt the copy — the
                # enumeration still gates execution and must be guaranteed
                # to visit that value
                if total is None:
                    raise PlanError(
                        f"copy {label} is fused into a stored-only enumeration "
                        f"of {cluster_dims[b.axis_pos].name}; instances could "
                        f"be missed"
                    )
                lo, hi = expr_range(copies[label], b.expr)
                if hi < lo:
                    continue  # empty instance set
                if lo < total[0] or hi > total[1] - 1:
                    raise PlanError(
                        f"instances of {label} need values [{lo},{hi}] but the "
                        f"enumeration only guarantees [{total[0]},{total[1]})"
                    )

    # roles; every participating reference must have its *previous* steps
    # already processed (the enumeration prefix exists), i.e. the product
    # order must respect each path's nesting
    roles: List[RefRole] = [RefRole(driver_ref, DRIVER, step)]
    if len(share_sig.get(driver_ref.key, ())) != step:
        raise PlanError(
            f"dimension order enumerates step {step} of {driver_ref!r} "
            f"before its outer steps"
        )
    for g_i, g in enumerate(groups):
        for ref, axis in g:
            if ref is driver_ref:
                continue
            rstep = ref.path.step_of(axis)
            if len(share_sig.get(ref.key, ())) != rstep:
                raise PlanError(
                    f"dimension order enumerates step {rstep} of {ref!r} "
                    f"before its outer steps"
                )
            if g_i == 0:
                roles.append(RefRole(ref, SHARED, rstep))
            else:
                # a search needs the step's prefix; the generic runtime
                # falls back to a linear scan for unsearchable axes
                roles.append(RefRole(ref, SEARCH, rstep))

    # recurse
    tr_b = subtrackers()
    before = build(dim_idx + consumed, seg[BEFORE], tr_b, dict(share_sig))
    tr_at = subtrackers()
    for b in binds:
        tr_at[b.copy_label].pin(b.expr)
    sig_at = dict(share_sig)
    for g_i, g in enumerate(groups):
        leader = id(g[0][0])
        for ref, axis in g:
            sig_at[ref.key] = sig_at.get(ref.key, ()) + ((leader if g_i == 0 else id(ref)),)
    body = build(dim_idx + consumed, seg[AT], tr_at, sig_at)
    tr_a = subtrackers()
    after = build(dim_idx + consumed, seg[AFTER], tr_a, dict(share_sig))

    return LoopNode([cd.name for cd in cluster_dims], method, roles, binds,
                    before, body, after)


def _choose_method(driver_ref, step, cluster_dims, axis_views, direction,
                   order, dims, dim_idx) -> EnumMethod:
    """Pick the cheapest enumeration honouring the required direction.

    Preference: stored order (1 visit per entry) > reversed stored order >
    interval + search (paper Figure 9) > gather-and-sort (always possible).
    """
    from repro.formats.views import DECREASING, INCREASING

    # directions required across the cluster (joint axes may each be
    # constrained)
    required = {}
    for pos, cd in enumerate(cluster_dims):
        d = order.directions.get(dim_idx + pos)
        if d is not None:
            required[pos] = d

    if not required:
        return StoredEnum(driver_ref, step)

    axes = [axis_views[name] for name in driver_ref.path.steps[step].names]

    def stored_satisfies(reverse: bool) -> bool:
        for pos, d in required.items():
            o = axes[pos].order
            if reverse:
                o = {INCREASING: DECREASING, DECREASING: INCREASING}.get(o, o)
            want = INCREASING if d == INC else DECREASING
            if o != want:
                return False
        return True

    if stored_satisfies(False):
        return StoredEnum(driver_ref, step)
    if stored_satisfies(True):
        return StoredEnum(driver_ref, step, reverse=True)

    if len(cluster_dims) == 1 and axes[0].interval:
        return IntervalEnum(driver_ref, step, reverse=(required.get(0) == DEC))

    # gather-and-sort handles everything; per-axis sign realizes mixed
    # directions on joint clusters
    signs = tuple(
        -1 if required.get(pos) == DEC else 1 for pos in range(len(cluster_dims))
    )
    return SortedEnum(driver_ref, step, signs=signs)

"""Native execution backend: compile lowered C kernels and bind them.

This is the execution half of the C backend
(:mod:`repro.codegen.native` is the lowering half): find a system C
compiler, compile the translation unit into a shared object, and bind the
exported ``kernel`` symbol through :mod:`ctypes` with numpy-array
arguments.  ``compile_kernel(..., backend="c")`` routes every
``__call__``/``run`` through the result.

**Toolchain** — ``REPRO_CC`` names the compiler (``none`` disables the
backend outright, for testing the fallback path); otherwise ``cc``,
``gcc``, ``clang`` are probed on PATH.  OpenMP support is detected with a
one-time test compile; when absent, parallel-flavour kernels compile
single-threaded (pragmas are simply not activated).

**Artifact cache** — compiled ``.so`` files are cached in-process by
digest of (C source, flags, compiler identity), and, when the compilation
cache runs in ``disk`` mode, persisted under the same cache directory
with atomic writes (compile to a temp name, ``os.replace``).  On-disk
artifacts are sharded by digest prefix (``cache_dir/ab/abcd....so``) so a
fleet-shared ``REPRO_CACHE_DIR`` never degrades into one huge flat
directory.  A missing or unloadable artifact is a miss: the kernel is
recompiled.  The digest subsumes the structural signature — the
structural key determines the generated Python source, which determines
the C source.

**Single-flight** — when N threads request the same digest concurrently,
exactly one (the *leader*) invokes the C toolchain; the rest wait on a
per-digest event and pick the result out of the in-process cache
(``native.so_cache.hits.coalesced``).  A follower whose wait times out
(``REPRO_SINGLEFLIGHT_TIMEOUT``, default 300 s — a wedged leader) compiles
independently rather than hang; a follower whose leader *failed* retries
the compile once itself before giving up, so one transient toolchain
hiccup doesn't fail a whole batch.  Across processes the same guarantee
comes from an ``flock`` on ``<digest>.so.lock``: the winner compiles,
losers block on the lock and then find the finished artifact.  Lock
files are unlinked by their holder on release (with an inode liveness
re-check on acquire), so a long-lived shared cache directory doesn't
accumulate them.

**Fallback** — any failure (no toolchain, lowering limitation, compile
error, load error) emits a :class:`NativeBackendWarning`, bumps an
``INSTR`` counter, and falls back to the Python kernel; it never raises.

Phase timers: ``c_lower`` (AST-to-C), ``cc_compile`` (the cc
invocation), ``native_dispatch`` (argument marshalling + the native
call).  ``REPRO_TRACE=1`` renders them on exit.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
import warnings
from contextlib import contextmanager
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.instrument import INSTR
from repro.util.env import env_flags, env_float

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None

_CFLAGS = ["-O3", "-fPIC", "-shared", "-std=c11", "-ffp-contract=off"]


def tier_cflags(opt: str) -> List[str]:
    """Built-in compile flags for one optimization tier.

    ``tiled`` adds ``-fopenmp-simd`` (activates ``#pragma omp simd``
    without the OpenMP runtime); ``fast`` additionally swaps
    ``-ffp-contract=off`` for ``-ffp-contract=fast``, permitting FMA
    contraction — which is why the fast tier is validated by tolerance
    rather than byte-identity."""
    flags = list(_CFLAGS)
    if opt in ("tiled", "fast"):
        flags.append("-fopenmp-simd")
    if opt == "fast":
        flags = [f for f in flags if f != "-ffp-contract=off"]
        flags.append("-ffp-contract=fast")
    return flags


class NativeBackendWarning(UserWarning):
    """The C backend fell back to the Python kernel."""


# ---------------------------------------------------------------------------
# Toolchain discovery (memoized per process)
# ---------------------------------------------------------------------------

_toolchain: Dict[str, object] = {}

#: serializes toolchain probes (discovery, --version, the OpenMP test
#: compile) so concurrent first-compiles run each probe exactly once
_TOOLCHAIN_LOCK = threading.RLock()


def reset_toolchain_cache(scratch: bool = False) -> None:
    """Forget the memoized compiler/OpenMP probe results and the loaded
    ``.so`` cache (test hook).  ``scratch=True`` additionally abandons the
    process scratch directory so subsequent compiles re-invoke the
    toolchain instead of reusing on-disk scratch artifacts."""
    with _TOOLCHAIN_LOCK:
        _toolchain.clear()
    with _SO_LOCK:
        _SO_CACHE.clear()
        if scratch:
            _work_dir.clear()


def find_compiler() -> Optional[str]:
    """Path of the system C compiler, or None.  ``REPRO_CC`` overrides
    discovery; ``REPRO_CC=none`` disables the backend."""
    with _TOOLCHAIN_LOCK:
        if "cc" in _toolchain:
            return _toolchain["cc"]
        cc: Optional[str] = None
        env = os.environ.get("REPRO_CC", "").strip()
        if env:
            cc = None if env.lower() == "none" else shutil.which(env)
        else:
            for cand in ("cc", "gcc", "clang"):
                cc = shutil.which(cand)
                if cc:
                    break
        _toolchain["cc"] = cc
        return cc


def compiler_identity(cc: str) -> str:
    """First line of ``cc --version`` (part of the artifact-cache key)."""
    key = ("ident", cc)
    with _TOOLCHAIN_LOCK:
        if key not in _toolchain:
            try:
                out = subprocess.run([cc, "--version"], capture_output=True,
                                     text=True, timeout=30)
                _toolchain[key] = (out.stdout or out.stderr).splitlines()[0]
            except (OSError, subprocess.SubprocessError, IndexError):
                _toolchain[key] = cc
        return _toolchain[key]


def openmp_supported(cc: str) -> bool:
    """Does ``cc -fopenmp`` link a trivial parallel program?"""
    key = ("omp", cc)
    with _TOOLCHAIN_LOCK:
        if key not in _toolchain:
            probe = ("#include <omp.h>\n"
                     "int main(void) { return omp_get_max_threads() > 0 ? 0 : 1; }\n")
            with tempfile.TemporaryDirectory(prefix="repro-omp-") as d:
                src = os.path.join(d, "probe.c")
                with open(src, "w") as f:
                    f.write(probe)
                try:
                    r = subprocess.run(
                        [cc, "-fopenmp", src, "-o", os.path.join(d, "probe")],
                        capture_output=True, timeout=60)
                    _toolchain[key] = r.returncode == 0
                except (OSError, subprocess.SubprocessError):
                    _toolchain[key] = False
        return _toolchain[key]


def simd_supported(cc: str) -> bool:
    """Does ``cc -fopenmp-simd`` compile a ``#pragma omp simd`` loop?
    Gates the ``tiled``/``fast`` tiers: a compiler that rejects the flag
    or the pragma demotes the request to ``opt='none'``."""
    key = ("simd", cc)
    with _TOOLCHAIN_LOCK:
        if key not in _toolchain:
            probe = (
                "int main(void) {\n"
                "    double s[8];\n"
                "    #pragma omp simd\n"
                "    for (int i = 0; i < 8; i++) s[i] = (double)i;\n"
                "    return s[3] == 3.0 ? 0 : 1;\n"
                "}\n")
            with tempfile.TemporaryDirectory(prefix="repro-simd-") as d:
                src = os.path.join(d, "probe.c")
                with open(src, "w") as f:
                    f.write(probe)
                try:
                    r = subprocess.run(
                        [cc, "-fopenmp-simd", src,
                         "-o", os.path.join(d, "probe")],
                        capture_output=True, timeout=60)
                    _toolchain[key] = r.returncode == 0
                except (OSError, subprocess.SubprocessError):
                    _toolchain[key] = False
        return _toolchain[key]


def resolve_opt(opt: str, cc: Optional[str]) -> str:
    """Demote an optimization tier the toolchain cannot honor.

    A missing compiler or a failed SIMD probe turns ``tiled``/``fast``
    into ``"none"`` observably: ``native.tier.demotions`` plus a
    per-reason counter, and a :class:`NativeBackendWarning` naming the
    tier.  (With no compiler at all, the subsequent compile then falls
    back to the Python kernel through the usual contract.)"""
    if opt == "none":
        return opt
    if cc is None:
        reason = "no_toolchain"
    elif not simd_supported(cc):
        reason = "simd_probe"
    else:
        return opt
    INSTR.count("native.tier.demotions")
    INSTR.count(f"native.tier.demotion.{reason}")
    warnings.warn(
        f"optimization tier {opt!r} unavailable ({reason}); "
        "demoting to opt='none'",
        NativeBackendWarning,
        stacklevel=3,
    )
    return "none"


# ---------------------------------------------------------------------------
# Shared-object compilation + artifact cache
# ---------------------------------------------------------------------------

#: digest -> loaded ctypes function (process-wide); guarded by _SO_LOCK
_SO_CACHE: Dict[str, ctypes._CFuncPtr] = {}
_SO_LOCK = threading.RLock()

_work_dir: List[str] = []


def _scratch_dir() -> str:
    with _SO_LOCK:
        if not _work_dir:
            _work_dir.append(tempfile.mkdtemp(prefix="repro-native-"))
        return _work_dir[0]


# -- in-process single-flight ------------------------------------------------

class _Flight:
    """One in-progress compilation of a digest: followers wait on the
    event; the leader parks its failure (if any) in ``error``."""

    __slots__ = ("event", "error")

    def __init__(self):
        self.event = threading.Event()
        self.error: Optional[BaseException] = None


_INFLIGHT: Dict[str, _Flight] = {}
_INFLIGHT_LOCK = threading.Lock()


def singleflight_timeout() -> float:
    """Seconds a follower waits for the leader before compiling itself
    (``REPRO_SINGLEFLIGHT_TIMEOUT``, default 300; malformed values warn
    and fall back to the default)."""
    return env_float("REPRO_SINGLEFLIGHT_TIMEOUT", 300.0, minimum=0.0)


@contextmanager
def _artifact_lock(out_path: str):
    """Cross-process guard for one on-disk artifact: an exclusive flock on
    ``out_path + '.lock'``.  Processes that cannot take the lock (no fcntl,
    unwritable directory) fall through unguarded — the temp-file +
    ``os.replace`` write is still atomic, the guard only prevents the
    duplicated toolchain work.

    The lock file is unlinked by its holder *before* releasing the flock,
    so a shared cache directory never accumulates stale ``.lock`` files.
    Unlink-then-release is only safe with a liveness re-check on acquire:
    a process may flock an inode that the previous holder has since
    unlinked (a fresh file — and a fresh lock — could already exist under
    the same name), so after taking the flock we verify the fd still
    names the on-disk path and retry on a fresh open if not."""
    if fcntl is None:
        yield
        return
    lock_path = out_path + ".lock"
    f = None
    try:
        while True:
            try:
                f = open(lock_path, "a+b")
                fcntl.flock(f.fileno(), fcntl.LOCK_EX)
            except OSError:
                if f is not None:
                    f.close()
                    f = None
                yield
                return
            try:
                live = os.fstat(f.fileno()).st_ino == os.stat(lock_path).st_ino
            except OSError:
                live = False            # path unlinked: stale inode
            if live:
                break
            f.close()
            f = None
        try:
            yield
        finally:
            # still holding the exclusive lock on the live inode: no other
            # process can be inside the critical section, and any process
            # that already opened this inode will fail its liveness check
            try:
                os.unlink(lock_path)
            except OSError:
                pass
            try:
                fcntl.flock(f.fileno(), fcntl.LOCK_UN)
            except OSError:
                pass
    finally:
        if f is not None:
            f.close()


def artifact_key(c_source: str, flags: Tuple[str, ...], cc: str) -> str:
    blob = "\x1e".join([c_source, repr(flags), compiler_identity(cc)])
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _disk_so_path(digest: str) -> str:
    """Sharded on-disk artifact path: ``cache_dir/ab/abcd....so``.

    Fleet-shared cache directories hold one file per unique digest across
    every program/format/param combination ever compiled; a two-hex-char
    digest-prefix shard (256 buckets) keeps individual directories small
    on filesystems where huge flat directories degrade."""
    from repro.core.cache import COMPILE_CACHE

    return os.path.join(COMPILE_CACHE.disk_dir(), digest[:2], digest + ".so")


def _compile_so(cc: str, c_source: str, flags: Tuple[str, ...],
                out_path: str) -> bool:
    """Compile into ``out_path`` atomically (temp file + rename), under the
    cross-process artifact flock.  Returns True if this call invoked the
    toolchain, False if the artifact already existed once the lock was
    held (another process built it first).  ``native.compiles`` counts
    actual cc invocations, one-to-one."""
    d = os.path.dirname(out_path)
    os.makedirs(d, exist_ok=True)
    with _artifact_lock(out_path):
        if os.path.exists(out_path):
            return False
        fd, src = tempfile.mkstemp(dir=d, suffix=".c")
        tmp_so = src[:-2] + ".tmp.so"
        try:
            with os.fdopen(fd, "w") as f:
                f.write(c_source)
            with INSTR.phase("cc_compile"):
                r = subprocess.run([cc, *flags, src, "-o", tmp_so],
                                   capture_output=True, text=True, timeout=300)
            if r.returncode != 0:
                raise RuntimeError(f"cc failed: {r.stderr.strip()[:500]}")
            INSTR.count("native.compiles")
            os.replace(tmp_so, out_path)
        finally:
            for p in (src, tmp_so):
                if os.path.exists(p):
                    try:
                        os.unlink(p)
                    except OSError:
                        pass
        return True


def _load_symbol(path: str):
    lib = ctypes.CDLL(path)
    return lib.kernel


def _build_and_load(cc: str, c_source: str, flags: Tuple[str, ...],
                    digest: str, cache_mode: str):
    """Materialize the artifact for ``digest`` (disk layer first in disk
    mode, scratch dir otherwise) and load its ``kernel`` symbol.  Raises
    on compile/load failure."""
    if cache_mode == "disk":
        path = _disk_so_path(digest)
        if os.path.exists(path):
            try:
                fn = _load_symbol(path)
                INSTR.count("native.so_cache.hits.disk")
                return fn
            except (OSError, AttributeError):
                # corrupt artifact: treat as a miss and rebuild it
                INSTR.count("native.so_cache.corrupt")
                try:
                    os.unlink(path)
                except OSError:
                    pass
        try:
            built = _compile_so(cc, c_source, flags, path)
            fn = _load_symbol(path)
            if not built:
                # another process won the artifact flock and built it
                INSTR.count("native.so_cache.hits.disk")
            return fn
        except OSError:
            pass  # cache dir unwritable: fall through to the scratch dir
    out = os.path.join(_scratch_dir(), digest + ".so")
    if not os.path.exists(out):
        _compile_so(cc, c_source, flags, out)
    return _load_symbol(out)


def compile_native_function(c_source: str, want_openmp: bool,
                            cache_mode: str, opt: str = "none"):
    """Compile ``c_source`` and return (ctypes function, used_openmp).

    Flags are the tier's built-ins (:func:`tier_cflags`), ``-fopenmp``
    when requested and supported, then any user ``REPRO_CFLAGS`` —
    appended last so they win, and part of the artifact digest so flag
    changes never serve a stale ``.so``.

    Single-flight: concurrent requests for the same digest coalesce onto
    one toolchain invocation (see module docstring).  Raises on toolchain
    absence or compile failure — callers translate that into the Python
    fallback."""
    cc = find_compiler()
    if cc is None:
        raise RuntimeError("no C compiler on PATH (set REPRO_CC to override)")
    use_omp = want_openmp and openmp_supported(cc)
    flags = tier_cflags(opt)
    if use_omp:
        flags.append("-fopenmp")
    flags = tuple(flags + env_flags("REPRO_CFLAGS"))
    digest = artifact_key(c_source, flags, cc)

    with _SO_LOCK:
        fn = _SO_CACHE.get(digest)
    if fn is not None:
        INSTR.count("native.so_cache.hits.memory")
        return fn, use_omp

    retried = False
    while True:
        with _INFLIGHT_LOCK:
            with _SO_LOCK:
                fn = _SO_CACHE.get(digest)
            if fn is not None:
                INSTR.count("native.so_cache.hits.memory")
                return fn, use_omp
            flight = _INFLIGHT.get(digest)
            leader = flight is None
            if leader:
                flight = _Flight()
                _INFLIGHT[digest] = flight

        if leader:
            try:
                fn = _build_and_load(cc, c_source, flags, digest, cache_mode)
                with _SO_LOCK:
                    _SO_CACHE[digest] = fn
                return fn, use_omp
            except BaseException as e:
                flight.error = e
                raise
            finally:
                with _INFLIGHT_LOCK:
                    _INFLIGHT.pop(digest, None)
                flight.event.set()

        # follower: wait for the leader, then read its result
        INSTR.count("native.singleflight.waits")
        if not flight.event.wait(singleflight_timeout()):
            # leader wedged (toolchain hang): compile independently
            # rather than propagate the stall
            INSTR.count("native.singleflight.wait_timeouts")
            fn = _build_and_load(cc, c_source, flags, digest, cache_mode)
            with _SO_LOCK:
                _SO_CACHE[digest] = fn
            return fn, use_omp
        with _SO_LOCK:
            fn = _SO_CACHE.get(digest)
        if fn is not None:
            INSTR.count("native.so_cache.hits.coalesced")
            return fn, use_omp
        # the leader failed; retry the compile once ourselves before
        # giving up (observable via the counters either way)
        INSTR.count("native.singleflight.leader_failures")
        if retried:
            raise RuntimeError(
                f"native compile failed after single-flight retry: "
                f"{flight.error}")
        retried = True


# ---------------------------------------------------------------------------
# Bound native kernels
# ---------------------------------------------------------------------------

class NativeKernel:
    """A compiled-and-bound native kernel with the Python calling
    convention ``fn(arrays, params)``.

    Marshalling: every array argument is coerced to the compile-time
    dtype and C-contiguity (``np.ascontiguousarray`` — a no-op for
    already-conforming arrays); arrays the kernel writes are copied back
    when coercion had to copy.  Stride and length arguments are derived
    from the coerced array's shape.

    Prepared-argument fast path: solver loops call the same kernel with
    the same array objects thousands of times.  When a call needed no
    coercion copies and no writebacks, the marshalled ctypes argument
    vector is cached; the next call revalidates only array identity and
    scalar values (in-place mutation of a prepared array is fine — the
    cached pointer targets the same buffer) and skips the per-argument
    numpy machinery.  The cached tuple keeps the arrays alive, so an
    identity match can never be a recycled ``id``."""

    def __init__(self, fn, spec, used_openmp: bool):
        self.spec = spec
        self.used_openmp = used_openmp
        self._fn = fn
        self._prep: Optional[Tuple[tuple, tuple, tuple]] = None
        argtypes = []
        for a in spec.args:
            if a.kind == "scalar":
                argtypes.append(ctypes.c_int64)
            else:
                argtypes.append(ctypes.c_void_p)
                argtypes.extend([ctypes.c_int64] * max(a.ndim - 1, 0))
                if a.need_len:
                    argtypes.append(ctypes.c_int64)
        fn.argtypes = argtypes
        fn.restype = None

    @property
    def c_source(self) -> str:
        return self.spec.c_source

    def __call__(self, arrays: Mapping[str, object],
                 params: Mapping[str, int]) -> None:
        with INSTR.phase("native_dispatch"):
            prep = self._prep
            if prep is not None:
                objs, scalars, pcargs = prep
                oi = si = 0
                match = True
                for a in self.spec.args:
                    val = a.loader(arrays, params)
                    if a.kind == "scalar":
                        if int(val) != scalars[si]:
                            match = False
                            break
                        si += 1
                    else:
                        if val is not objs[oi]:
                            match = False
                            break
                        oi += 1
                if match:
                    INSTR.count("native.dispatch.prepared")
                    self._fn(*pcargs)
                    return
            cargs: List[object] = []
            keepalive: List[np.ndarray] = []
            writebacks: List[Tuple[np.ndarray, np.ndarray]] = []
            objs: List[object] = []
            scalars: List[int] = []
            preparable = True
            for a in self.spec.args:
                val = a.loader(arrays, params)
                if a.kind == "scalar":
                    sv = int(val)
                    scalars.append(sv)
                    cargs.append(sv)
                    continue
                arr = np.asarray(val)
                want = np.dtype(a.dtype)
                carr = np.ascontiguousarray(arr, dtype=want)
                if a.ndim == 0 and carr.ndim == 1 and carr.size == 1:
                    carr = carr.reshape(())  # ascontiguousarray promotes 0-d
                if carr.ndim != a.ndim:
                    raise ValueError(
                        f"{a.cname}: expected ndim {a.ndim}, got {carr.ndim}")
                if a.written and not np.may_share_memory(carr, arr):
                    writebacks.append((arr, carr))
                if carr is not val:
                    preparable = False
                objs.append(val)
                keepalive.append(carr)
                cargs.append(carr.ctypes.data)
                for k in range(1, a.ndim):
                    cargs.append(int(carr.shape[k]))
                if a.need_len:
                    cargs.append(int(carr.shape[0]) if a.ndim else 0)
            self._fn(*cargs)
            for orig, tmp in writebacks:
                orig[...] = tmp
            if preparable and not writebacks:
                self._prep = (tuple(objs), tuple(scalars), tuple(cargs))
            del keepalive


def bind_kernel(kernel, parallel: str = "none",
                cache_mode: str = "memory",
                opt: str = "none") -> NativeKernel:
    """Lower + compile + bind one CompiledKernel.  Raises on any failure
    (the compiler API converts that into the Python fallback).  ``opt``
    requests an optimization tier; an unsupported tier is demoted to
    ``"none"`` first (see :func:`resolve_opt`), and a successful bind
    counts ``native.tier.<opt>``."""
    from repro.codegen.native import lower_kernel

    opt = resolve_opt(opt, find_compiler())
    spec = lower_kernel(kernel, parallel, opt)
    fn, used_omp = compile_native_function(
        spec.c_source, want_openmp=(parallel != "none" and spec.uses_openmp),
        cache_mode=cache_mode, opt=opt)
    nk = NativeKernel(fn, spec, used_omp)
    INSTR.count(f"native.tier.{opt}")
    return nk


def native_fallback(reason: str, detail: str) -> None:
    """Record one backend="c" fallback: warn + count, never raise."""
    INSTR.count("native.fallbacks")
    INSTR.count(f"native.fallback.{reason}")
    warnings.warn(
        f"C backend unavailable ({reason}): {detail}; "
        "falling back to the Python kernel",
        NativeBackendWarning,
        stacklevel=3,
    )

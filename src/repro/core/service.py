"""Concurrent compilation service: batch fan-out with failure isolation.

:func:`compile_many` drives N :func:`repro.core.compiler.compile_kernel`
calls through a thread-pool and returns a :class:`BatchResult` of
per-item :class:`CompileOutcome` objects — a kernel on success, the
exception on failure — instead of raising on the first bad item.  One
malformed program or impossible binding must not abort a batch serving
many independent clients.

The underlying pipeline is safe to drive concurrently: the compilation
LRU and the FM/pair memos are locked (:mod:`repro.core.cache`,
:mod:`repro.polyhedra.fm`), identical native digests coalesce onto one
toolchain invocation (:mod:`repro.core.backend` single-flight), and the
``instrument`` registry accumulates per thread.  ``compile_many`` is
therefore a thin, deterministic driver: results come back in input
order, and a batch compiled with ``max_workers=1`` is byte-identical to
the same batch compiled with 16 workers.

Counters: ``service.batches``, ``service.items``, ``service.items.ok``,
``service.items.error``.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Union

from repro.core.compiler import CompiledKernel, compile_kernel
from repro.formats.base import SparseFormat
from repro.instrument import INSTR
from repro.ir.program import Program
from repro.util.env import env_int

Bindings = Mapping[str, SparseFormat]


class BatchItemError(Exception):
    """Batch context attached to a re-raised per-item failure on
    interpreters without ``BaseException.add_note`` (pre-3.11)."""


@dataclass
class CompileOutcome:
    """One item of a batch: either ``kernel`` (success) or ``error``."""

    index: int
    program: Program
    kernel: Optional[CompiledKernel]
    error: Optional[BaseException]
    seconds: float

    @property
    def ok(self) -> bool:
        return self.error is None

    def __repr__(self):
        status = "ok" if self.ok else f"error={type(self.error).__name__}"
        return (f"<CompileOutcome #{self.index} {self.program.name} "
                f"{status} {self.seconds * 1e3:.1f}ms>")


class BatchResult:
    """Ordered outcomes of one :func:`compile_many` batch.

    Iterable and indexable like a list of :class:`CompileOutcome`;
    ``kernels`` gives the per-item kernels (None where that item failed)
    and ``errors`` maps failed indexes to their exceptions."""

    def __init__(self, outcomes: Sequence[CompileOutcome]):
        self.outcomes = list(outcomes)

    def __len__(self) -> int:
        return len(self.outcomes)

    def __iter__(self):
        return iter(self.outcomes)

    def __getitem__(self, i):
        return self.outcomes[i]

    @property
    def kernels(self) -> List[Optional[CompiledKernel]]:
        return [o.kernel for o in self.outcomes]

    @property
    def errors(self) -> Dict[int, BaseException]:
        return {o.index: o.error for o in self.outcomes if not o.ok}

    @property
    def ok(self) -> bool:
        return all(o.ok for o in self.outcomes)

    def raise_first(self) -> None:
        """Re-raise the first per-item failure (no-op on a clean batch) —
        for callers that do want fail-fast semantics after the fact.

        The re-raised exception keeps its original traceback and gains
        batch context naming the failing item — an exception note on
        Python 3.11+, an explicit ``__cause__`` (``raise ... from``) on
        older interpreters — so "which of the 40 programs was it?" is
        answered by the traceback itself."""
        for o in self.outcomes:
            if not o.ok:
                err = o.error
                note = (f"compile_many item #{o.index} "
                        f"(program {o.program.name!r})")
                if hasattr(err, "add_note"):
                    # idempotent: raise_first may run more than once on
                    # the same stored exception
                    if note not in getattr(err, "__notes__", ()):
                        err.add_note(note)
                    raise err
                raise err from BatchItemError(note)  # pragma: no cover - py<3.11

    def __repr__(self):
        bad = len(self.errors)
        return (f"<BatchResult {len(self.outcomes)} items, "
                f"{len(self.outcomes) - bad} ok, {bad} failed>")


def _broadcast(value, n: int, what: str) -> List:
    """A per-item list from either one shared value or a sequence of n."""
    if value is None or isinstance(value, Mapping):
        return [value] * n
    items = list(value)
    if len(items) != n:
        raise ValueError(
            f"{what} must be one mapping or a sequence of {n}, "
            f"got {len(items)} entries")
    return items


def compile_many(
    programs: Sequence[Program],
    bindings: Union[Bindings, Sequence[Bindings]],
    *,
    max_workers: Optional[int] = None,
    param_values: Union[None, Mapping[str, int],
                        Sequence[Optional[Mapping[str, int]]]] = None,
    **compile_kwargs,
) -> BatchResult:
    """Compile every program in the batch, fanning out over worker threads.

    ``bindings`` (and ``param_values``) may be a single mapping shared by
    every program or a sequence zipped with ``programs``.  A shared
    mapping may cover a heterogeneous batch: each program sees only the
    entries naming its own declared arrays (per-item sequences stay
    strict — unknown names are that item's error).  All other keyword
    arguments are forwarded verbatim to ``compile_kernel`` (``pick``,
    ``cache``, ``backend``, ``parallel``, ...).

    ``max_workers`` defaults to ``REPRO_COMPILE_WORKERS`` or the CPU
    count, capped by the batch size; ``max_workers=1`` compiles serially
    on the calling thread (bitwise-identical results, useful as a
    determinism oracle).

    Never raises for a bad item: each failure is captured in its
    :class:`CompileOutcome` (``service.items.error``) and the remaining
    items still compile.
    """
    progs = list(programs)
    n = len(progs)
    binds = _broadcast(bindings, n, "bindings")
    if isinstance(bindings, Mapping):
        binds = [{k: v for k, v in b.items() if k in p.arrays}
                 for p, b in zip(progs, binds)]
    pvals = _broadcast(param_values, n, "param_values")
    if max_workers is None:
        max_workers = env_int("REPRO_COMPILE_WORKERS", 0, minimum=0) \
            or (os.cpu_count() or 1)
    if max_workers < 1:
        raise ValueError(f"max_workers must be >= 1, got {max_workers}")
    max_workers = min(max_workers, max(n, 1))

    INSTR.count("service.batches")
    INSTR.count("service.items", n)

    def one(i: int) -> CompileOutcome:
        t0 = time.perf_counter()
        try:
            kernel = compile_kernel(progs[i], binds[i],
                                    param_values=pvals[i], **compile_kwargs)
        except Exception as e:
            INSTR.count("service.items.error")
            return CompileOutcome(i, progs[i], None, e,
                                  time.perf_counter() - t0)
        INSTR.count("service.items.ok")
        return CompileOutcome(i, progs[i], kernel, None,
                              time.perf_counter() - t0)

    if max_workers == 1 or n <= 1:
        outcomes = [one(i) for i in range(n)]
    else:
        with ThreadPoolExecutor(max_workers=max_workers,
                                thread_name_prefix="repro-compile") as pool:
            outcomes = list(pool.map(one, range(n)))
    return BatchResult(outcomes)

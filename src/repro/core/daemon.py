"""Compilation-as-a-service: a long-running server in front of
:func:`repro.core.service.compile_many`.

Every process that imports this library pays its own cold pipeline —
candidate search, plan lowering, toolchain invocations.  The daemon
amortizes that across a fleet: one long-running process owns the warm
process-wide :data:`~repro.core.cache.COMPILE_CACHE`, the loaded-``.so``
cache, and the single-flight machinery, and clients submit compile
requests over a small length-prefixed JSON protocol
(:mod:`repro.core.wire`), getting back *handles* they can re-request for
the cost of one round-trip.

**Protocol** — one JSON object per frame; ``{"op": ...}`` selects:

- ``ping``      → liveness probe.
- ``compile``   → ``program`` (source text, parsed by
  :mod:`repro.ir.parser`) or ``programs`` (a batch), ``bindings``
  (array name → COO payload or a ``{"digest": ...}`` reference to a
  previously-uploaded payload), ``params`` (concrete sizes), and
  ``options`` (``backend`` / ``parallel`` / ``cache`` / ``pick`` /
  ``max_orders`` / ``simplify_guards``).  Responds with per-item results
  (handle, cost, backend actually used — failures are isolated per item,
  riding :class:`~repro.core.service.BatchResult`) plus the payload
  digests under which the daemon stored each uploaded binding.
- ``describe``  → metadata for a handle (optionally the generated
  sources).
- ``stats``     → queue depth, in-flight count, handle/payload store
  sizes, p50/p99 request latency, and the ``daemon.* / native.* /
  cache.* / service.*`` instrumentation counters.
- ``shutdown``  → graceful drain: the daemon stops accepting work,
  finishes every admitted request, writes every pending response, then
  exits.

**Caching & coalescing** — three layers, cheapest first: a
handle-addressed LRU (an identical repeat request is answered without
touching the pipeline, ``daemon.handle.hits``); a daemon-level
in-flight map coalescing concurrent identical *requests* onto one
compile (``daemon.coalesced``); and underneath, the compilation cache
plus the per-digest native single-flight from
:mod:`repro.core.backend`, which guarantees one ``cc`` invocation per
unique artifact digest no matter how many clients race.  The disk
artifact layer is sharded by digest prefix, so a warm
``REPRO_CACHE_DIR`` survives daemon restarts and can be shared by a
fleet.

**Admission control** — a bounded queue: at most ``workers +
queue_depth`` compile requests may be in flight; beyond that the daemon
answers ``queue-full`` immediately (``daemon.rejects.queue_full``)
instead of buffering unboundedly.  Each admitted request is answered
within ``request_timeout`` seconds or gets a ``timeout`` error (the
compile keeps running server-side; its handle becomes available to
later requests).

Configuration defaults come from ``REPRO_DAEMON_WORKERS`` /
``REPRO_DAEMON_QUEUE`` / ``REPRO_DAEMON_TIMEOUT`` /
``REPRO_DAEMON_HANDLES`` / ``REPRO_DAEMON_PAYLOADS`` (warn-and-default
parsing via :mod:`repro.util.env`).

Run standalone::

    python -m repro.core.daemon --socket /tmp/repro.sock
    python -m repro.core.daemon --tcp 127.0.0.1:7077
"""

from __future__ import annotations

import hashlib
import os
import socket
import threading
import time
from collections import OrderedDict, deque
from concurrent.futures import Future, ThreadPoolExecutor, TimeoutError
from typing import Dict, List, Optional, Tuple, Union

from repro.core import wire
from repro.core.service import compile_many
from repro.instrument import INSTR
from repro.ir.parser import parse_program
from repro.util.env import env_float, env_int

__all__ = ["CompileServer", "main"]

#: options a compile request may forward into the pipeline, with their
#: accepted types (validated before any slot is consumed)
_OPTION_TYPES = {
    "backend": str,
    "parallel": str,
    "cache": str,
    "pick": str,
    "opt": str,
    "max_orders": int,
    "simplify_guards": bool,
}

_STATS_PREFIXES = ("daemon.", "native.", "cache.", "service.", "env.",
                   "autotune.", "select.")


def _run_compile(programs, bindings, param_values, options):
    """The actual pipeline call, module-level so tests can wrap it
    (inject latency or failures without touching the server plumbing)."""
    return compile_many(programs, bindings, max_workers=1,
                        param_values=param_values, **options)


class _LruDict:
    """A tiny bounded LRU (thread-safe) for handles and payloads."""

    def __init__(self, capacity: int):
        self.capacity = max(1, capacity)
        self._d: "OrderedDict[str, object]" = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key: str):
        with self._lock:
            v = self._d.get(key)
            if v is not None:
                self._d.move_to_end(key)
            return v

    def put(self, key: str, value) -> None:
        with self._lock:
            self._d[key] = value
            self._d.move_to_end(key)
            while len(self._d) > self.capacity:
                self._d.popitem(last=False)

    def __len__(self) -> int:
        with self._lock:
            return len(self._d)

    def values(self) -> List:
        with self._lock:
            return list(self._d.values())


class CompileServer:
    """Threaded compilation daemon (see module docstring).

    ``socket_path`` selects an ``AF_UNIX`` listener; otherwise a TCP
    listener on ``(host, port)`` (``port=0`` binds an ephemeral port —
    read the resolved address back from :attr:`address`).  Usable as a
    context manager: ``with CompileServer(...) as srv: ...`` starts the
    acceptor and drains on exit."""

    def __init__(self, socket_path: Optional[str] = None, *,
                 host: str = "127.0.0.1", port: int = 0,
                 workers: Optional[int] = None,
                 queue_depth: Optional[int] = None,
                 request_timeout: Optional[float] = None,
                 handle_capacity: Optional[int] = None,
                 payload_capacity: Optional[int] = None):
        if workers is None:
            workers = env_int("REPRO_DAEMON_WORKERS", 0, minimum=0) \
                or (os.cpu_count() or 1)
        if queue_depth is None:
            queue_depth = env_int("REPRO_DAEMON_QUEUE", 64, minimum=0)
        if request_timeout is None:
            request_timeout = env_float("REPRO_DAEMON_TIMEOUT", 120.0,
                                        minimum=0.0)
        if handle_capacity is None:
            handle_capacity = env_int("REPRO_DAEMON_HANDLES", 512, minimum=1)
        if payload_capacity is None:
            payload_capacity = env_int("REPRO_DAEMON_PAYLOADS", 256, minimum=1)
        self.socket_path = socket_path
        self._host, self._port = host, port
        self.workers = max(1, workers)
        self.queue_depth = queue_depth
        self.request_timeout = request_timeout

        self._handles = _LruDict(handle_capacity)      # handle -> record
        self._payloads = _LruDict(payload_capacity)    # digest -> SparseFormat
        self._inflight: Dict[str, Future] = {}         # request key -> future
        self._inflight_lock = threading.Lock()
        self._admitted = 0                             # slots in use
        self._admit_lock = threading.Lock()

        self._latencies = deque(maxlen=2048)           # recent compile seconds
        self._lat_lock = threading.Lock()

        self._pool: Optional[ThreadPoolExecutor] = None
        self._listener: Optional[socket.socket] = None
        self._acceptor: Optional[threading.Thread] = None
        self._conns: set = set()
        self._conns_lock = threading.Lock()
        self._draining = threading.Event()
        self._stopped = threading.Event()
        self._active = 0                               # requests being answered
        self._active_cv = threading.Condition()
        self._t0 = time.monotonic()

    # -- lifecycle -----------------------------------------------------------

    @property
    def address(self) -> Union[str, Tuple[str, int]]:
        """What to hand :class:`repro.core.client.ServiceClient`: the
        socket path (unix) or the resolved ``(host, port)`` (TCP)."""
        if self.socket_path is not None:
            return self.socket_path
        assert self._listener is not None, "server not started"
        return self._listener.getsockname()[:2]

    def start(self) -> "CompileServer":
        if self._listener is not None:
            raise RuntimeError("server already started")
        if self.socket_path is not None:
            if not hasattr(socket, "AF_UNIX"):  # pragma: no cover - non-POSIX
                raise RuntimeError("AF_UNIX sockets unavailable; use TCP")
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
            lst = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            lst.bind(self.socket_path)
        else:
            lst = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            lst.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            lst.bind((self._host, self._port))
        lst.listen(128)
        self._listener = lst
        self._pool = ThreadPoolExecutor(max_workers=self.workers,
                                        thread_name_prefix="repro-daemon")
        self._acceptor = threading.Thread(target=self._accept_loop,
                                          name="repro-daemon-accept",
                                          daemon=True)
        self._acceptor.start()
        return self

    def __enter__(self) -> "CompileServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    def stop(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Shut down: close the listener, optionally wait for every
        admitted request to finish *and its response to be written*, then
        tear down the pool and lingering connections."""
        if self._stopped.is_set():
            return
        self._draining.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if drain:
            deadline = time.monotonic() + timeout
            with self._active_cv:
                while self._active > 0:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._active_cv.wait(remaining)
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        with self._conns_lock:
            conns = list(self._conns)
        for c in conns:
            try:
                c.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                c.close()
            except OSError:
                pass
        if self.socket_path is not None:
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass
        self._stopped.set()

    def wait_stopped(self, timeout: Optional[float] = None) -> bool:
        """Block until :meth:`stop` has completed (e.g. after a client
        sent the ``shutdown`` op).  Returns False on timeout."""
        return self._stopped.wait(timeout)

    # -- accept / per-connection loop ---------------------------------------

    def _accept_loop(self) -> None:
        while not self._draining.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return                      # listener closed: shutting down
            INSTR.count("daemon.connections")
            with self._conns_lock:
                self._conns.add(conn)
            threading.Thread(target=self._serve_conn, args=(conn,),
                             name="repro-daemon-conn", daemon=True).start()

    def _serve_conn(self, conn: socket.socket) -> None:
        shutdown_after = False
        try:
            while True:
                try:
                    msg = wire.recv_frame(conn)
                except wire.ProtocolError as e:
                    # a malformed frame may leave the stream misaligned:
                    # answer if possible, then drop the connection
                    INSTR.count("daemon.malformed")
                    try:
                        wire.send_frame(conn, {
                            "ok": False, "error": "malformed",
                            "detail": str(e)})
                    except OSError:
                        pass
                    return
                if msg is None:
                    return                  # clean EOF
                self._begin_request()
                try:
                    try:
                        resp = self._handle(msg)
                    except Exception as e:   # a handler bug must not kill
                        INSTR.count("daemon.requests.error")
                        resp = {"ok": False, "error": "internal",
                                "detail": f"{type(e).__name__}: {e}"}
                    wire.send_frame(conn, resp)
                finally:
                    self._end_request()
                if msg.get("op") == "shutdown" and resp.get("ok"):
                    shutdown_after = True
                    return
        except (ConnectionError, BrokenPipeError, OSError):
            INSTR.count("daemon.disconnects")
        finally:
            with self._conns_lock:
                self._conns.discard(conn)
            try:
                conn.close()
            except OSError:
                pass
            if shutdown_after:
                self.stop(drain=True)

    def _begin_request(self) -> None:
        with self._active_cv:
            self._active += 1

    def _end_request(self) -> None:
        with self._active_cv:
            self._active -= 1
            if self._active == 0:
                self._active_cv.notify_all()

    # -- request dispatch ----------------------------------------------------

    def _handle(self, msg: Dict) -> Dict:
        op = msg.get("op")
        INSTR.count("daemon.requests")
        INSTR.count(f"daemon.requests.{op}" if isinstance(op, str)
                    else "daemon.requests.invalid")
        if op == "ping":
            return {"ok": True, "pong": True, "pid": os.getpid()}
        if op == "stats":
            return {"ok": True, "stats": self._stats()}
        if op == "describe":
            return self._describe(msg)
        if op == "shutdown":
            return {"ok": True, "draining": True}
        if op == "compile":
            if self._draining.is_set():
                INSTR.count("daemon.rejects.draining")
                return {"ok": False, "error": "draining",
                        "detail": "server is shutting down"}
            t0 = time.perf_counter()
            resp = self._compile_op(msg)
            dt = time.perf_counter() - t0
            with self._lat_lock:
                self._latencies.append(dt)
            INSTR.add_time("daemon.compile", dt)
            return resp
        INSTR.count("daemon.requests.error")
        return {"ok": False, "error": "unknown-op", "detail": repr(op)}

    # -- compile path --------------------------------------------------------

    def _compile_op(self, msg: Dict) -> Dict:
        # 1. validate shape of the request (cheap, before any admission)
        if "programs" in msg:
            sources = msg["programs"]
            single = False
        else:
            sources = [msg.get("program")]
            single = True
        if (not isinstance(sources, list) or not sources
                or not all(isinstance(s, str) for s in sources)):
            INSTR.count("daemon.requests.error")
            return {"ok": False, "error": "bad-request",
                    "detail": "program/programs must be non-empty source text"}
        params = msg.get("params") or {}
        if (not isinstance(params, dict)
                or not all(isinstance(k, str) and isinstance(v, int)
                           and not isinstance(v, bool)
                           for k, v in params.items())):
            INSTR.count("daemon.requests.error")
            return {"ok": False, "error": "bad-request",
                    "detail": "params must map names to integers"}
        options = msg.get("options") or {}
        if not isinstance(options, dict):
            INSTR.count("daemon.requests.error")
            return {"ok": False, "error": "bad-request",
                    "detail": "options must be an object"}
        for k, v in options.items():
            want = _OPTION_TYPES.get(k)
            if want is None or not isinstance(v, want) \
                    or (want is int and isinstance(v, bool)):
                INSTR.count("daemon.requests.error")
                return {"ok": False, "error": "bad-option",
                        "detail": f"{k}={v!r} (known: {sorted(_OPTION_TYPES)})"}

        # 2. resolve bindings: decode payloads (storing them by digest),
        #    look up digest references in the warm payload store
        raw_bindings = msg.get("bindings") or {}
        if not isinstance(raw_bindings, dict):
            INSTR.count("daemon.requests.error")
            return {"ok": False, "error": "bad-request",
                    "detail": "bindings must be an object"}
        bindings: Dict[str, object] = {}
        digests: Dict[str, str] = {}
        unknown: Dict[str, str] = {}
        for name, payload in raw_bindings.items():
            if isinstance(payload, str):
                fmt = self._payloads.get(payload)
                if fmt is None:
                    unknown[name] = payload
                    continue
                INSTR.count("daemon.payload.hits")
                bindings[name] = fmt
                digests[name] = payload
                continue
            if isinstance(payload, dict) and set(payload) == {"digest"}:
                # explicit reference form {"digest": "..."}
                return self._compile_op({**msg, "bindings": {
                    **raw_bindings, name: payload["digest"]}})
            try:
                fmt, digest = wire.decode_format(payload)
            except wire.ProtocolError as e:
                INSTR.count("daemon.requests.error")
                return {"ok": False, "error": "bad-binding",
                        "detail": f"{name}: {e}"}
            self._payloads.put(digest, fmt)
            INSTR.count("daemon.payload.stores")
            bindings[name] = fmt
            digests[name] = digest
        if unknown:
            # the client must re-send these payloads in full; answering
            # with the unknown set lets it retry in one round-trip
            INSTR.count("daemon.payload.unknown")
            return {"ok": False, "error": "unknown-digest",
                    "unknown": unknown}

        # 3. handle-layer lookup: an identical repeat request is answered
        #    without touching the pipeline at all
        item_keys = [self._handle_key(src, digests, params, options)
                     for src in sources]
        records = [self._handles.get(k) for k in item_keys]
        if all(r is not None for r in records):
            INSTR.count("daemon.handle.hits", len(records))
            INSTR.count("daemon.requests.ok")
            return self._compile_response(
                [dict(r, cached=True) for r in records], digests, single)

        # 4. admission control + daemon-level request coalescing
        request_key = hashlib.sha256(
            "\x1e".join(item_keys).encode("ascii")).hexdigest()
        coalesced = False
        submitted = None
        with self._inflight_lock:
            future = self._inflight.get(request_key)
            if future is not None:
                coalesced = True
                INSTR.count("daemon.coalesced")
            else:
                if not self._try_admit():
                    INSTR.count("daemon.rejects.queue_full")
                    return {"ok": False, "error": "queue-full",
                            "detail": f"{self.workers} workers + "
                                      f"{self.queue_depth} queued"}
                future = submitted = self._pool.submit(
                    self._compile_batch, sources, bindings, params, options,
                    item_keys)
                self._inflight[request_key] = future
        if submitted is not None:
            # registered OUTSIDE the lock: a fast compile runs the callback
            # inline, and _retire re-takes _inflight_lock (not reentrant)
            submitted.add_done_callback(
                lambda _f, k=request_key: self._retire(k))
        try:
            results = future.result(self.request_timeout or None)
        except TimeoutError:
            INSTR.count("daemon.timeouts")
            return {"ok": False, "error": "timeout",
                    "detail": f"request exceeded {self.request_timeout}s; "
                              "the compile continues server-side",
                    "coalesced": coalesced}
        except Exception as e:          # cancelled during shutdown, etc.
            INSTR.count("daemon.requests.error")
            return {"ok": False, "error": "internal",
                    "detail": f"{type(e).__name__}: {e}"}
        INSTR.count("daemon.requests.ok")
        return self._compile_response(results, digests, single)

    def _try_admit(self) -> bool:
        with self._admit_lock:
            if self._admitted >= self.workers + self.queue_depth:
                return False
            self._admitted += 1
            return True

    def _retire(self, request_key: str) -> None:
        with self._inflight_lock:
            self._inflight.pop(request_key, None)
        with self._admit_lock:
            self._admitted -= 1

    @staticmethod
    def _handle_key(source: str, digests: Dict[str, str],
                    params: Dict[str, int], options: Dict) -> str:
        blob = "\x1e".join([
            source,
            repr(sorted(digests.items())),
            repr(sorted(params.items())),
            repr(sorted(options.items())),
        ])
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    @staticmethod
    def _op_family(program_name: str, opt: str = "none") -> str:
        """Coarse per-op bucket for handle accounting: which workload
        family a cached kernel serves (``describe``/``stats`` report these
        so service benchmarks can confirm SpMM requests ride the same
        handle-addressed LRU as matvec and solve).  A non-default
        optimization tier suffixes the bucket (``mvm+tiled``), so
        ``kernels_by_op`` shows naive and tiled artifacts of one workload
        as distinct populations."""
        if program_name.startswith("spgemm"):
            fam = "spgemm"
        elif program_name.startswith("spmm"):
            fam = "spmm"
        elif "mvm" in program_name:
            fam = "mvm"
        elif program_name.startswith("ts"):
            fam = "ts"
        else:
            fam = "other"
        return fam if opt in (None, "none") else f"{fam}+{opt}"

    def _compile_batch(self, sources: List[str], bindings: Dict,
                       params: Dict[str, int], options: Dict,
                       item_keys: List[str]) -> List[Dict]:
        """Runs on the worker pool: parse every source, drive the good
        ones through ``compile_many`` (per-item failure isolation), store
        fresh handles, and return per-item result records."""
        results: List[Optional[Dict]] = [None] * len(sources)
        programs, positions = [], []
        for i, src in enumerate(sources):
            record = self._handles.get(item_keys[i])
            if record is not None:          # raced with a sibling compile
                INSTR.count("daemon.handle.hits")
                results[i] = dict(record, cached=True)
                continue
            try:
                programs.append(parse_program(src))
                positions.append(i)
            except Exception as e:
                INSTR.count("daemon.items.parse_error")
                results[i] = {"ok": False, "error": str(e),
                              "error_type": type(e).__name__}
        if programs:
            batch = _run_compile(programs, bindings, params or None, options)
            for outcome, i in zip(batch, positions):
                if not outcome.ok:
                    results[i] = {"ok": False, "error": str(outcome.error),
                                  "error_type": type(outcome.error).__name__}
                    continue
                k = outcome.kernel
                record = {
                    "ok": True,
                    "handle": item_keys[i],
                    "program": k.program.name,
                    "op": self._op_family(k.program.name,
                                          getattr(k, "opt", "none")),
                    "backend": k.backend,
                    "backend_used": k.backend_used,
                    "fallback_reason": k.fallback_reason,
                    "opt": getattr(k, "opt", "none"),
                    "opt_used": getattr(k, "opt_used", None),
                    "parallel": k.parallel,
                    "cost": float(k.cost),
                    "seconds": outcome.seconds,
                    "search_cached": bool(k.result.stats.from_cache),
                    "cached": False,
                }
                self._handles.put(item_keys[i], {**record, "_kernel": k})
                results[i] = record
        return results

    @staticmethod
    def _compile_response(results: List[Dict], digests: Dict[str, str],
                          single: bool) -> Dict:
        items = [{k: v for k, v in r.items() if not k.startswith("_")}
                 for r in results]
        resp = {"ok": True, "results": items, "bindings": digests}
        if single:
            # convenience flattening — but the envelope "ok" means "the
            # request was served", which holds even when the one item
            # failed; the item's own ok lives in results[0]
            resp.update({k: v for k, v in items[0].items() if k != "ok"})
        return resp

    # -- describe / stats ----------------------------------------------------

    def _describe(self, msg: Dict) -> Dict:
        record = self._handles.get(msg.get("handle"))
        if record is None:
            INSTR.count("daemon.requests.error")
            return {"ok": False, "error": "unknown-handle"}
        out = {k: v for k, v in record.items() if not k.startswith("_")}
        kernel = record.get("_kernel")
        if msg.get("source") and kernel is not None:
            out["pysource"] = kernel.source
            out["c_source"] = kernel.c_source
            out["pseudocode"] = kernel.pseudocode()
        return {"ok": True, **out}

    def _stats(self) -> Dict:
        with self._lat_lock:
            lats = sorted(self._latencies)
        lat = {"count": len(lats)}
        if lats:
            lat["p50_ms"] = lats[len(lats) // 2] * 1e3
            lat["p99_ms"] = lats[min(len(lats) - 1,
                                     int(len(lats) * 0.99))] * 1e3
        counters = {k: v for k, v in INSTR.counters.items()
                    if k.startswith(_STATS_PREFIXES)}
        hits = (counters.get("autotune.cache.hits.memory", 0)
                + counters.get("autotune.cache.hits.disk", 0))
        lookups = counters.get("autotune.cache.lookups", 0)
        autotune = {
            "tunes": counters.get("autotune.tunes", 0),
            "coalesced": counters.get("autotune.coalesced", 0),
            "winner_cache_hits": hits,
            "winner_cache_lookups": lookups,
            "winner_cache_hit_rate": (hits / lookups) if lookups else None,
        }
        with self._admit_lock:
            admitted = self._admitted
        with self._active_cv:
            active = self._active
        by_op: Dict[str, int] = {}
        for rec in self._handles.values():
            if isinstance(rec, dict) and rec.get("ok"):
                fam = rec.get("op", "other")
                by_op[fam] = by_op.get(fam, 0) + 1
        return {
            "uptime_seconds": time.monotonic() - self._t0,
            "pid": os.getpid(),
            "workers": self.workers,
            "queue_depth": self.queue_depth,
            "request_timeout": self.request_timeout,
            "admitted": admitted,
            "active_requests": active,
            "draining": self._draining.is_set(),
            "handles": len(self._handles),
            "kernels_by_op": by_op,
            "payloads": len(self._payloads),
            "latency": lat,
            "autotune": autotune,
            "counters": counters,
        }


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.core.daemon`` entry point."""
    import argparse
    import signal

    ap = argparse.ArgumentParser(
        prog="repro.core.daemon",
        description="repro compilation-as-a-service daemon")
    where = ap.add_mutually_exclusive_group(required=True)
    where.add_argument("--socket", help="unix socket path to listen on")
    where.add_argument("--tcp", metavar="HOST:PORT",
                       help="TCP address to listen on (PORT 0 = ephemeral)")
    ap.add_argument("--workers", type=int, default=None,
                    help="compile worker threads (default: cpu count)")
    ap.add_argument("--queue-depth", type=int, default=None,
                    help="admitted requests beyond the workers (default 64)")
    ap.add_argument("--timeout", type=float, default=None,
                    help="per-request timeout seconds (default 120)")
    args = ap.parse_args(argv)

    kwargs = dict(workers=args.workers, queue_depth=args.queue_depth,
                  request_timeout=args.timeout)
    if args.socket:
        server = CompileServer(args.socket, **kwargs)
    else:
        host, _, port = args.tcp.rpartition(":")
        server = CompileServer(host=host or "127.0.0.1", port=int(port),
                               **kwargs)
    server.start()
    addr = server.address
    shown = addr if isinstance(addr, str) else f"{addr[0]}:{addr[1]}"
    print(f"repro compilation daemon listening on {shown} "
          f"(workers={server.workers}, queue={server.queue_depth})",
          flush=True)

    def _sig(_signum, _frame):
        server.stop(drain=True)

    signal.signal(signal.SIGTERM, _sig)
    signal.signal(signal.SIGINT, _sig)
    try:
        while not server.wait_stopped(0.25):
            pass
    except KeyboardInterrupt:  # pragma: no cover - interactive
        server.stop(drain=True)
    print("repro compilation daemon: drained, bye", flush=True)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())

"""Wire protocol shared by the compilation daemon and its client.

**Framing** — every message is one length-prefixed JSON frame: a 4-byte
big-endian unsigned length followed by that many bytes of UTF-8 JSON.
Frames above :data:`MAX_FRAME` are rejected as malformed (a garbage
length prefix must not make the receiver allocate gigabytes).

**Array payloads** — COO triples travel as ``{"dtype", "b64"}`` objects:
the raw C-contiguous bytes, base64-encoded.  That keeps the protocol
pure JSON (no numpy pickles crossing trust boundaries) while staying a
flat memcpy at both ends.

**Binding payloads** — a format instance is shipped as its COO
decomposition plus the target format name::

    {"format": "csr", "shape": [m, n],
     "rows": {...}, "cols": {...}, "vals": {...}}

:func:`payload_digest` derives a stable content digest for such a
payload; the daemon keeps a digest-addressed store of decoded instances
so clients can re-bind a matrix they already uploaded by digest string
alone (``{"digest": "..."}``) instead of re-sending megabytes of COO.
"""

from __future__ import annotations

import base64
import hashlib
import json
import socket
import struct
from typing import Dict, Optional, Tuple

import numpy as np

__all__ = [
    "MAX_FRAME", "ProtocolError", "send_frame", "recv_frame",
    "encode_array", "decode_array", "encode_format", "decode_format",
    "payload_digest",
]

#: hard ceiling on one frame (256 MiB) — admission control for memory
MAX_FRAME = 256 * 1024 * 1024

_LEN = struct.Struct(">I")


class ProtocolError(ValueError):
    """Malformed frame or payload on the daemon wire protocol."""


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------

def send_frame(sock: socket.socket, obj: Dict) -> None:
    """Serialize ``obj`` as one length-prefixed JSON frame."""
    body = json.dumps(obj, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise ProtocolError(f"frame of {len(body)} bytes exceeds MAX_FRAME")
    sock.sendall(_LEN.pack(len(body)) + body)


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes; None on clean EOF at a frame boundary."""
    chunks = []
    got = 0
    while got < n:
        chunk = sock.recv(min(n - got, 1 << 20))
        if not chunk:
            if got == 0:
                return None
            raise ProtocolError(
                f"connection closed mid-frame ({got}/{n} bytes)")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[Dict]:
    """Read one frame; None on clean EOF before a length prefix.

    Raises :class:`ProtocolError` on a truncated frame, an oversized
    length prefix, non-JSON bytes, or a non-object top level."""
    head = _recv_exact(sock, _LEN.size)
    if head is None:
        return None
    (length,) = _LEN.unpack(head)
    if length > MAX_FRAME:
        raise ProtocolError(f"frame length {length} exceeds MAX_FRAME")
    body = _recv_exact(sock, length) if length else b""
    if body is None:
        raise ProtocolError("connection closed after length prefix")
    try:
        obj = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as e:
        raise ProtocolError(f"frame body is not JSON: {e}") from e
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(obj).__name__}")
    return obj


# ---------------------------------------------------------------------------
# Array / format payloads
# ---------------------------------------------------------------------------

def encode_array(arr: np.ndarray) -> Dict[str, str]:
    a = np.ascontiguousarray(arr)
    return {"dtype": str(a.dtype),
            "b64": base64.b64encode(a.tobytes()).decode("ascii")}


def decode_array(payload: Dict) -> np.ndarray:
    try:
        dtype = np.dtype(payload["dtype"])
        raw = base64.b64decode(payload["b64"], validate=True)
        return np.frombuffer(raw, dtype=dtype).copy()  # writable
    except (KeyError, TypeError, ValueError) as e:
        raise ProtocolError(f"bad array payload: {e}") from e


def payload_digest(format_name: str, shape: Tuple[int, int],
                   rows: np.ndarray, cols: np.ndarray,
                   vals: np.ndarray) -> str:
    """Content digest of one binding payload (format + shape + COO data).

    Computed identically on both ends, so the client can predict the
    digest the daemon will store a payload under."""
    h = hashlib.sha256()
    h.update(f"{format_name}\x1e{int(shape[0])}\x1e{int(shape[1])}"
             .encode("utf-8"))
    for a in (rows, cols, vals):
        c = np.ascontiguousarray(a)
        h.update(f"\x1e{c.dtype}\x1e".encode("utf-8"))
        h.update(c.tobytes())
    return h.hexdigest()


def encode_format(fmt) -> Dict:
    """Ship a :class:`~repro.formats.base.SparseFormat` instance as its
    COO decomposition (the daemon rebuilds the named format from it)."""
    rows, cols, vals = fmt.to_coo_arrays()
    return {
        "format": fmt.format_name,
        "shape": [int(fmt.nrows), int(fmt.ncols)],
        "rows": encode_array(rows),
        "cols": encode_array(cols),
        "vals": encode_array(vals),
    }


def decode_format(payload: Dict):
    """Rebuild a format instance from a binding payload.

    Returns ``(instance, digest)``.  Raises :class:`ProtocolError` on a
    malformed payload or an unknown format name."""
    from repro.formats.convert import FORMATS

    if not isinstance(payload, dict):
        raise ProtocolError(
            f"binding payload must be an object, got {type(payload).__name__}")
    name = payload.get("format")
    cls = FORMATS.get(name)
    if cls is None:
        raise ProtocolError(
            f"unknown format {name!r} (known: {sorted(FORMATS)})")
    shape = payload.get("shape")
    if (not isinstance(shape, (list, tuple)) or len(shape) != 2
            or not all(isinstance(s, int) and s >= 0 for s in shape)):
        raise ProtocolError(f"bad shape {shape!r}")
    try:
        rows = decode_array(payload["rows"])
        cols = decode_array(payload["cols"])
        vals = decode_array(payload["vals"])
    except KeyError as e:
        raise ProtocolError(f"binding payload missing {e}") from e
    if not (len(rows) == len(cols) == len(vals)):
        raise ProtocolError(
            f"COO triple lengths differ: {len(rows)}/{len(cols)}/{len(vals)}")
    digest = payload_digest(name, (shape[0], shape[1]), rows, cols, vals)
    try:
        fmt = cls.from_coo(rows, cols, vals, (shape[0], shape[1]))
    except (ValueError, IndexError, TypeError) as e:
        raise ProtocolError(f"cannot build {name!r} from payload: {e}") from e
    return fmt, digest

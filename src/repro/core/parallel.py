"""Parallelism analysis over enumeration plans.

A product dimension is *DOALL* when no dependence class can have a non-zero
delta there with an all-zero prefix — its iterations can run in any order,
hence concurrently.  This is the same first-nonzero machinery that decides
enumeration directions (paper Section 4.1): a dimension with no direction
requirement is exactly an order-free dimension.

Two flavours:

- ``strict`` — reductions are *not* relaxed: concurrent iterations would
  race on the accumulator, so MVM's row dimension is DOALL but its column
  dimension is not;
- ``atomic`` — reductions relaxed (each read-modify-write assumed atomic):
  what a ``#pragma omp parallel for`` with atomic/reduction clauses could
  exploit.

The analysis annotates plans; :func:`annotate_c_source` renders the
generated kernel C-like with OpenMP pragmas on the DOALL loops — the code
one would hand to a real C compiler.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.analysis.dependence import DependenceClass
from repro.core.embedding import analyze_order
from repro.core.plan import LoopNode, Plan, PlanNode, VarLoopNode


class ParallelReport:
    """Which plan dimensions are order-free."""

    def __init__(self, strict: Set[str], atomic: Set[str], all_dims: List[str]):
        #: dimensions safe to parallelize with no synchronization
        self.strict = strict
        #: dimensions safe given atomic accumulations
        self.atomic = atomic
        self.all_dims = all_dims

    def classify(self, dim_name: str) -> str:
        if dim_name in self.strict:
            return "doall"
        if dim_name in self.atomic:
            return "doall-atomic"
        return "sequential"

    def __repr__(self):
        rows = [f"  {d}: {self.classify(d)}" for d in self.all_dims]
        return "ParallelReport(\n" + "\n".join(rows) + "\n)"


def analyze_parallelism(plan: Plan, deps: Sequence[DependenceClass]) -> ParallelReport:
    """Classify every product dimension of a plan."""
    space, emb = plan.space, plan.emb
    dims = [d.name for d in space.dims]

    def free_dims(relax: bool) -> Set[str]:
        oa = analyze_order(emb, deps, relax_reductions=relax)
        if not oa.legal:
            return set()
        constrained = set(oa.directions)
        return {dims[i] for i in range(len(dims)) if i not in constrained}

    return ParallelReport(free_dims(False), free_dims(True), dims)


def parallel_loop_names(plan: Plan, deps: Sequence[DependenceClass],
                        flavour: str = "strict") -> Set[str]:
    """Names of plan dimensions whose loops may run concurrently."""
    rep = analyze_parallelism(plan, deps)
    return rep.strict if flavour == "strict" else rep.atomic


def annotate_c_source(kernel, flavour: str = "strict") -> str:
    """Render a compiled kernel's C-like source with OpenMP pragmas on the
    loops whose dimensions are DOALL.

    ``kernel`` is a :class:`~repro.core.compiler.CompiledKernel`.  Loop
    identification is positional: the generated kernel's top-to-bottom
    ``for`` statements correspond to the plan's loop nodes in emission
    order.
    """
    from repro.analysis.dependence import dependences
    from repro.codegen.csource import python_to_c_like

    deps = dependences(kernel.program)
    report = analyze_parallelism(kernel.plan, deps)
    free = report.strict if flavour == "strict" else report.atomic

    # collect the plan's loop nodes in emission order with their verdicts
    verdicts: List[bool] = []

    def walk(nodes: Sequence[PlanNode]):
        for n in nodes:
            if isinstance(n, LoopNode):
                walk(n.before)
                verdicts.append(all(d in free for d in n.dim_names))
                walk(n.body)
                walk(n.after)
            elif isinstance(n, VarLoopNode):
                verdicts.append(n.dim_name in free)
                walk(n.body)

    walk(kernel.plan.nodes)

    c = python_to_c_like(kernel.source)
    lines = c.splitlines()
    n_fors = sum(1 for l in lines if l.lstrip().startswith("for ("))
    if n_fors != len(verdicts):
        # some methods emit auxiliary loops (gather-and-sort); positional
        # matching would mislabel them, so fall back to a summary header
        doall = sorted(d for d in report.all_dims if d in free)
        header = (f"/* DOALL dimensions ({flavour}): "
                  f"{', '.join(doall) if doall else 'none'} */")
        return header + "\n" + c
    out: List[str] = []
    li = 0
    for line in lines:
        stripped = line.lstrip()
        if stripped.startswith("for ("):
            if verdicts[li]:
                indent = line[: len(line) - len(stripped)]
                pragma = "#pragma omp parallel for"
                if flavour == "atomic":
                    pragma += "   /* accumulations must be atomic */"
                out.append(indent + pragma)
            li += 1
        out.append(line)
    return "\n".join(out)

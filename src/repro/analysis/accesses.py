"""Collection of array accesses from statements.

An :class:`Access` records one read or write of one array in one statement,
with its affine index functions over the statement's loop variables.  The
dependence analysis pairs these up; the sparse-data-space construction
(paper Section 4) attaches data dimensions to the *sparse* accesses.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.ir.expr import AffExpr
from repro.ir.program import Program, StatementContext

READ = "R"
WRITE = "W"


class Access:
    """One array access: (statement, array, kind, index functions).

    ``ref_id`` distinguishes multiple accesses to the same array within one
    statement (e.g. the two reads of ``A[i][j]`` in ``smvm_two``); it is the
    ordinal of the access within the statement (write first, then reads
    left-to-right), so it is stable across reconstruction.
    """

    __slots__ = ("ctx", "array", "kind", "indices", "ref_id")

    def __init__(self, ctx: StatementContext, array: str, kind: str,
                 indices: Tuple[AffExpr, ...], ref_id: int):
        self.ctx = ctx
        self.array = array
        self.kind = kind
        self.indices = tuple(indices)
        self.ref_id = ref_id

    @property
    def stmt_name(self) -> str:
        return self.ctx.name

    @property
    def ndim(self) -> int:
        return len(self.indices)

    def key(self) -> Tuple[str, int]:
        """(statement, ordinal) — unique within the program."""
        return (self.stmt_name, self.ref_id)

    def __repr__(self):
        idx = "".join(f"[{i!r}]" for i in self.indices)
        return f"<{self.kind} {self.array}{idx} in {self.stmt_name}#{self.ref_id}>"


def collect_accesses(program: Program) -> List[Access]:
    """All accesses of the program in deterministic order: statements in
    syntactic order; within a statement the write first, then reads
    left-to-right."""
    out: List[Access] = []
    for ctx in program.statements():
        ordinal = 0
        out.append(Access(ctx, ctx.stmt.lhs.array, WRITE, ctx.stmt.lhs.indices, ordinal))
        for r in ctx.stmt.reads():
            if r.array == "__var__":
                continue
            ordinal += 1
            out.append(Access(ctx, r.array, READ, r.indices, ordinal))
    return out


def accesses_to(program: Program, array: str) -> List[Access]:
    """All accesses touching ``array``."""
    return [a for a in collect_accesses(program) if a.array == array]

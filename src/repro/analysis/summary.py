"""Human-readable dependence summaries (debugging / documentation aid)."""

from __future__ import annotations

from typing import List

from repro.analysis.dependence import DependenceClass, dependences
from repro.ir.program import Program


def dependence_summary(program: Program) -> str:
    """A text table of the program's dependence classes."""
    deps = dependences(program)
    lines: List[str] = [f"dependences of {program.name}: {len(deps)} classes"]
    for d in deps:
        lv = "loop-independent" if d.level is None else f"level {d.level}"
        lines.append(
            f"  {d.kind:<6} {d.src.name} -> {d.dst.name}  on {d.array:<4} ({lv})"
        )
        for c in d.system:
            lines.append(f"      {c!r}")
    return "\n".join(lines)

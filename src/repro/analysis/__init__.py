"""Dependence analysis: flow-, anti- and output-dependences between
statement instances, represented as *dependence classes* — systems of affine
inequalities over source and destination instance variables (paper
Section 3, ``D (i_s, i_d)^T + d >= 0``).
"""

from repro.analysis.accesses import Access, collect_accesses, accesses_to
from repro.analysis.dependence import (
    DependenceClass,
    dependences,
    SRC,
    DST,
    src_var,
    dst_var,
)
from repro.analysis.summary import dependence_summary

__all__ = [
    "Access",
    "collect_accesses",
    "accesses_to",
    "DependenceClass",
    "dependences",
    "SRC",
    "DST",
    "src_var",
    "dst_var",
    "dependence_summary",
]

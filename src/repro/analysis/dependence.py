"""Dependence classes.

For each ordered pair of accesses to the same array in which at least one is
a write, and each way the source instance can precede the destination
instance in the original execution order (strictly less at some shared-loop
level, or all shared counters equal and the source statement syntactically
first), we build the polyhedron of (source instance, destination instance)
pairs that touch the same array element.  Each non-empty polyhedron is one
*dependence class* (paper Section 3).

Source and destination instance variables are kept apart by the name
prefixes ``s$`` / ``d$``: the instance variable ``i`` of statement ``S2``
appears as ``s$S2.i`` on the source side and ``d$S2.i`` on the destination
side (even for self-dependences).  Program parameters stay unprefixed and
are shared.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.accesses import Access, collect_accesses, READ, WRITE
from repro.ir.program import Program, StatementContext
from repro.polyhedra.fm import is_feasible
from repro.polyhedra.linexpr import LinExpr
from repro.polyhedra.system import Constraint, System, EQ, GE

SRC = "s$"
DST = "d$"

FLOW = "flow"
ANTI = "anti"
OUTPUT = "output"


def src_var(stmt: str, var: str) -> str:
    return f"{SRC}{stmt}.{var}"


def dst_var(stmt: str, var: str) -> str:
    return f"{DST}{stmt}.{var}"


def _role_map(ctx: StatementContext, role: str) -> Dict[str, str]:
    """Rename local loop vars to role-qualified instance variables."""
    return {v: f"{role}{ctx.name}.{v}" for v in ctx.vars}


class DependenceClass:
    """One dependence class: kind, endpoints, and the polyhedron.

    ``level`` is the shared-loop level at which the precedence is enforced
    (``None`` for the loop-independent, syntactic-order case).
    """

    __slots__ = ("kind", "src", "dst", "src_access", "dst_access", "level", "system")

    def __init__(self, kind: str, src: StatementContext, dst: StatementContext,
                 src_access: Access, dst_access: Access,
                 level: Optional[int], system: System):
        self.kind = kind
        self.src = src
        self.dst = dst
        self.src_access = src_access
        self.dst_access = dst_access
        self.level = level
        self.system = system

    @property
    def array(self) -> str:
        return self.src_access.array

    def __repr__(self):
        lv = "syn" if self.level is None else f"L{self.level}"
        return (f"<{self.kind} {self.src.name}->{self.dst.name} on {self.array} "
                f"@{lv}: {len(self.system)} constraints>")


def _pair_system(
    src: StatementContext,
    dst: StatementContext,
    src_idx,
    dst_idx,
    level: Optional[int],
    assumptions: System,
) -> System:
    """Build the dependence polyhedron for one precedence case."""
    smap = _role_map(src, SRC)
    dmap = _role_map(dst, DST)
    cons: List[Constraint] = []
    cons.extend(src.domain().rename({f"{src.name}.{v}": smap[v] for v in src.vars}).constraints)
    cons.extend(dst.domain().rename({f"{dst.name}.{v}": dmap[v] for v in dst.vars}).constraints)
    cons.extend(assumptions.constraints)

    # same array element
    for a, b in zip(src_idx, dst_idx):
        ea = a.rename(smap).lin
        eb = b.rename(dmap).lin
        cons.append(Constraint(ea - eb, EQ))

    # execution-order precedence
    c = src.common_depth(dst)
    if level is not None:
        for l in range(level):
            va = LinExpr.variable(smap[src.vars[l]])
            vb = LinExpr.variable(dmap[dst.vars[l]])
            cons.append(Constraint(va - vb, EQ))
        va = LinExpr.variable(smap[src.vars[level]])
        vb = LinExpr.variable(dmap[dst.vars[level]])
        cons.append(Constraint(vb - va - 1, GE))  # src strictly earlier
    else:
        for l in range(c):
            va = LinExpr.variable(smap[src.vars[l]])
            vb = LinExpr.variable(dmap[dst.vars[l]])
            cons.append(Constraint(va - vb, EQ))
    return System(cons)


def dependences(program: Program, prune_infeasible: bool = True,
                dedup: bool = True) -> List[DependenceClass]:
    """All dependence classes of the program, deterministic order.

    With ``dedup`` (default), classes with identical endpoints and identical
    polyhedra are merged regardless of kind — flow/anti/output distinctions
    do not matter for ordering constraints (the paper likewise drops
    redundant dependences)."""
    accs = collect_accesses(program)
    out: List[DependenceClass] = []
    seen_sigs = set()
    assumptions = program.assumptions

    for a in accs:
        for b in accs:
            if a.array != b.array:
                continue
            if a.kind == READ and b.kind == READ:
                continue
            if a.kind == WRITE and b.kind == WRITE:
                kind = OUTPUT
            elif a.kind == WRITE:
                kind = FLOW
            else:
                kind = ANTI
            src_ctx, dst_ctx = a.ctx, b.ctx
            c = src_ctx.common_depth(dst_ctx)
            # strictly-earlier at each shared level
            for level in range(c):
                sys_ = _pair_system(src_ctx, dst_ctx, a.indices, b.indices, level, assumptions)
                if prune_infeasible and not is_feasible(sys_):
                    continue
                if dedup:
                    sig = (src_ctx.name, dst_ctx.name, a.array,
                           frozenset(sys_.constraints))
                    if sig in seen_sigs:
                        continue
                    seen_sigs.add(sig)
                out.append(DependenceClass(kind, src_ctx, dst_ctx, a, b, level, sys_))
            # loop-independent: all shared counters equal, syntactic order
            if src_ctx.stmt is dst_ctx.stmt:
                if a.ref_id == b.ref_id:
                    continue  # the same access cannot depend on itself at equal iteration
                # within one statement, reads happen before the write completes;
                # a (read, write) pair at the same instance is the ordinary
                # read-then-write of an update and imposes no extra constraint.
                continue
            if src_ctx.precedes_syntactically(dst_ctx, c):
                sys_ = _pair_system(src_ctx, dst_ctx, a.indices, b.indices, None, assumptions)
                if prune_infeasible and not is_feasible(sys_):
                    continue
                if dedup:
                    sig = (src_ctx.name, dst_ctx.name, a.array,
                           frozenset(sys_.constraints))
                    if sig in seen_sigs:
                        continue
                    seen_sigs.add(sig)
                out.append(DependenceClass(kind, src_ctx, dst_ctx, a, b, None, sys_))
    return out

"""Reduction recognition.

A statement ``X[e] = X[e] (+|-) rest`` where ``rest`` does not read ``X`` is
an associative-commutative accumulation into ``X[e]``.  Instances of such a
statement may execute in any order (each read-modify-write is atomic in the
generated code), so the self-dependence classes it induces on ``X`` do not
constrain the enumeration order.  Without this relaxation no unordered
format (COO, JAD's flat perspective) could ever legally carry an MVM-style
accumulation — hand-written sparse BLAS rely on the same commutativity.

Dependences between the reduction and *other* statements (initializations,
consumers) are kept in full.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.expr import ValExpr, VBin, VRead
from repro.ir.stmt import Statement


def reduction_array(stmt: Statement) -> Optional[str]:
    """The array a statement accumulates into, or None.

    Requires: rhs is ``lhs (+|-) rest`` (possibly left-nested further
    additions/subtractions with the self-read in the leftmost position,
    matching ``y[i] = y[i] + a + b``), with exactly one read of the lhs
    array in the whole rhs and its indices identical to the lhs indices.
    """
    target = stmt.lhs
    self_reads = [r for r in stmt.reads() if r.array == target.array]
    if len(self_reads) != 1:
        return None
    if tuple(self_reads[0].indices) != tuple(target.indices):
        return None

    # the self-read must sit in an additive position at the top of the rhs
    e: ValExpr = stmt.rhs
    while isinstance(e, VBin) and e.op in ("+", "-"):
        # the self-read must not be on the right of a subtraction
        if isinstance(e.right, VRead) and e.right == self_reads[0] and e.op == "-":
            return None
        if isinstance(e.right, VRead) and e.right == self_reads[0] and e.op == "+":
            return target.array
        e = e.left
    if isinstance(e, VRead) and e == self_reads[0]:
        return target.array
    return None


def is_reduction_pair(stmt_a: Statement, stmt_b: Statement, array: str) -> bool:
    """Are these the same reduction statement accumulating into ``array``?
    (Self-dependence classes of such statements on that array are
    relaxed.)"""
    if stmt_a is not stmt_b:
        return False
    return reduction_array(stmt_a) == array

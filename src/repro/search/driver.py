"""Search driver: generate candidates, filter by legality, lower to plans,
rank by estimated cost, keep the best (paper Section 4.2's
enumerate-estimate-select, with the Section 4.3 heuristics inside the
generator)."""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.dependence import DependenceClass, dependences
from repro.core.embedding import analyze_order
from repro.core.plan import Plan, PlanError, build_plan
from repro.core.spaces import StmtCopy
from repro.cost.model import plan_cost
from repro.formats.base import SparseFormat
from repro.instrument import INSTR
from repro.ir.program import Program
from repro.polyhedra.linexpr import LinExpr
from repro.search.candidates import Candidate, generate_candidates


class SearchStats:
    """Bookkeeping the benchmarks report (search-space table).

    Beyond the candidate funnel (generated → legal → lowered) this carries
    the per-search instrumentation deltas: phase timings (seconds) and the
    Fourier–Motzkin / pair-memo counter movement attributable to this
    search, plus cache provenance (``from_cache``/``reranked``) filled in
    by the compilation cache when it serves a memoized result."""

    def __init__(self):
        self.generated = 0
        self.legal = 0
        self.lowered = 0
        self.costs: List[float] = []
        self.timings: Dict[str, float] = {}
        self.fm_eliminations = 0
        self.pair_cache_hits = 0
        self.from_cache = False
        self.reranked = False

    def clone(self) -> "SearchStats":
        out = SearchStats()
        out.generated = self.generated
        out.legal = self.legal
        out.lowered = self.lowered
        out.costs = list(self.costs)
        out.timings = dict(self.timings)
        out.fm_eliminations = self.fm_eliminations
        out.pair_cache_hits = self.pair_cache_hits
        out.from_cache = self.from_cache
        out.reranked = self.reranked
        return out

    def __repr__(self):
        extra = ", from_cache=True" if self.from_cache else ""
        return (f"SearchStats(generated={self.generated}, legal={self.legal}, "
                f"lowered={self.lowered}{extra})")


class SearchResult:
    def __init__(self, plan: Plan, cost: float, candidate: Candidate,
                 stats: SearchStats, ranked: List[Tuple[float, Candidate, Plan]]):
        self.plan = plan
        self.cost = cost
        self.candidate = candidate
        self.stats = stats
        self.ranked = ranked  # every lowered plan, best first


def copy_var_bounds(copies: Sequence[StmtCopy]) -> Dict[str, Tuple[LinExpr, LinExpr]]:
    """Loop bounds of every copy-qualified iteration variable, as
    expressions over outer qualified variables and parameters."""
    out: Dict[str, Tuple[LinExpr, LinExpr]] = {}
    for copy in copies:
        qmap = copy.qual_map()
        for loop in copy.ctx.loops:
            lo = loop.lower.rename(qmap).lin
            hi = loop.upper.rename(qmap).lin
            out[copy.qual(loop.var)] = (lo, hi)
    return out


def search(
    program: Program,
    bindings: Mapping[str, SparseFormat],
    deps: Optional[Sequence[DependenceClass]] = None,
    param_values: Optional[Mapping[str, int]] = None,
    pick: str = "best",
    max_orders: int = 12,
) -> SearchResult:
    """Find a plan for the program under the given format bindings.

    ``pick`` selects the returned plan: "best" (lowest estimated cost),
    "worst" (highest — the cost-model ablation), or "first" (first legal,
    ignoring the cost model).
    """
    # thread-local deltas: concurrent searches in sibling threads
    # (compile_many) must not pollute this search's attribution
    before = INSTR.thread_snapshot()
    with INSTR.phase("search.total"):
        if deps is None:
            with INSTR.phase("search.dependences"):
                deps = dependences(program)
        stats = SearchStats()
        lowered: List[Tuple[float, Candidate, Plan]] = []
        pair_cache: Dict = {}

        for cand in generate_candidates(program, bindings, deps, max_orders=max_orders):
            stats.generated += 1
            INSTR.count("search.candidates.generated")
            with INSTR.phase("search.legality"):
                order = analyze_order(cand.emb, deps, pair_cache=pair_cache)
            if not order.legal:
                continue
            stats.legal += 1
            INSTR.count("search.candidates.legal")
            bounds = copy_var_bounds(cand.space.copies)
            try:
                with INSTR.phase("search.lowering"):
                    plan = build_plan(cand.space, cand.emb, order, bounds,
                                      dict(param_values or {}))
            except PlanError:
                continue
            stats.lowered += 1
            INSTR.count("search.candidates.lowered")
            with INSTR.phase("search.costing"):
                cost = plan_cost(plan, param_values)
            stats.costs.append(cost)
            lowered.append((cost, cand, plan))
            if pick == "first":
                break

        if not lowered:
            raise PlanError(
                f"no legal plan found for {program.name} with bindings "
                f"{ {k: v.format_name for k, v in bindings.items()} }"
            )
        lowered.sort(key=lambda t: t[0])
        if pick == "worst":
            cost, cand, plan = lowered[-1]
        else:
            cost, cand, plan = lowered[0]
    after = INSTR.thread_snapshot()
    delta_counts = {
        k: after["counters"].get(k, 0) - before["counters"].get(k, 0)
        for k in after["counters"]
    }
    stats.fm_eliminations = delta_counts.get("fm.eliminations", 0)
    stats.pair_cache_hits = (delta_counts.get("pair.local_hits", 0)
                             + delta_counts.get("pair.memo_hits", 0))
    stats.timings = {
        k: after["timers"].get(k, 0.0) - before["timers"].get(k, 0.0)
        for k in after["timers"]
        if k.startswith("search.")
        and after["timers"].get(k, 0.0) - before["timers"].get(k, 0.0) > 0.0
    }
    return SearchResult(plan, cost, cand, stats, lowered)

"""Search over candidate product spaces and embeddings (paper Sections
4.2-4.3)."""

from repro.search.autotune import clear_winner_cache
from repro.search.candidates import Candidate, generate_candidates
from repro.search.driver import SearchResult, SearchStats, search, copy_var_bounds
from repro.search.features import (
    StructureFeatures,
    extract_features,
    structure_signature,
)
from repro.search.format_select import (
    FormatChoice,
    SelectionResult,
    select_format,
)

__all__ = [
    "Candidate",
    "generate_candidates",
    "SearchResult",
    "SearchStats",
    "search",
    "copy_var_bounds",
    "FormatChoice",
    "SelectionResult",
    "select_format",
    "StructureFeatures",
    "extract_features",
    "structure_signature",
    "clear_winner_cache",
]

"""Automatic sparse-format selection — the paper's Section 6 extension.

The paper sketches two routes:

1. "make the compiler responsible for making this selection using cost
   estimation rules like the ones described in Section 4" — the ``model``
   mode: compile the kernel for every candidate format and rank by the
   Figure 11 cost estimate;
2. "an empirical optimization approach similar to that used in the ATLAS
   system — the system generates code for a variety of promising formats,
   and determines experimentally which one gives the best performance" —
   the ``empirical`` mode: run each generated kernel on a caller-supplied
   workload and rank by measured time.

``mode="auto"`` combines them into structure-adaptive autotuning: rank
every candidate analytically, micro-benchmark only the top-k
(``REPRO_AUTOTUNE_TOPK``) on a synthetic workload, and cache the measured
winner keyed by the matrix's quantized structure signature
(:mod:`repro.search.features`).  A later selection over any matrix of the
same structure class replays the cached winner — it builds and compiles
one format instead of nine and runs zero measurements (the compile cache
makes the one compile a lookup too).  Concurrent selections of one
structure class tune once (:mod:`repro.search.autotune` single-flight).
Over the C backend the optimization tier is a search axis too: each
natively-measured top-k candidate also gets an ``opt="tiled"`` variant,
the winner record carries a ``tier`` field, and replay rebinds the exact
(format, tier) pair.

``model`` and ``auto`` return every candidate (formats with no legal plan
are reported, not hidden), ranked best first; a cache-served ``auto``
selection reports only the winner and sets ``SelectionResult.cached``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from typing import TYPE_CHECKING

from repro.core.plan import PlanError
from repro.formats.base import SparseFormat, coo_dedup_sort
from repro.formats.convert import FORMATS, convert
from repro.instrument import INSTR
from repro.ir.program import Program
from repro.util.timing import best_of

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.compiler import CompiledKernel

DEFAULT_CANDIDATES = ("csr", "csc", "coo", "dia", "ell", "jad", "msr",
                      "bsr", "sym")

MODES = ("model", "empirical", "auto")


class FormatChoice:
    """One candidate's outcome.

    ``score`` is the ranking key (estimated cost in ``model`` mode,
    measured seconds in ``empirical`` and for tuned ``auto`` candidates);
    ``model_cost`` always carries the analytical estimate when a kernel
    exists, ``measured`` the micro-benchmark seconds when one ran, and
    ``backend_used`` what actually executed the measurement (``"c"``,
    ``"c+openmp"``, or ``"python"``) — so a timing taken through a
    Python-fallback kernel is never silently compared against native
    ones.  ``tier`` is the native optimization tier this candidate was
    compiled with (``"none"``/``"tiled"``) — auto mode over the C backend
    tunes the (format, tier) *pair*, so the same format can appear once
    per tier."""

    __slots__ = ("format_name", "kernel", "score", "error", "model_cost",
                 "measured", "backend_used", "tier")

    def __init__(self, format_name: str, kernel,
                 score: Optional[float], error: Optional[str] = None,
                 model_cost: Optional[float] = None,
                 measured: Optional[float] = None,
                 backend_used: Optional[str] = None,
                 tier: str = "none"):
        self.format_name = format_name
        self.kernel = kernel
        self.score = score
        self.error = error
        self.model_cost = model_cost
        self.measured = measured
        self.backend_used = backend_used
        self.tier = tier

    @property
    def ok(self) -> bool:
        return self.kernel is not None

    @property
    def label(self) -> str:
        """``format`` or ``format+tier`` — unique per candidate row."""
        return (self.format_name if self.tier == "none"
                else f"{self.format_name}+{self.tier}")

    def __repr__(self):
        if not self.ok:
            return f"<{self.label}: no plan ({self.error})>"
        if self.score is None:
            return f"<{self.label}: ok (unscored)>"
        tail = f" [{self.backend_used}]" if self.backend_used else ""
        return f"<{self.label}: score={self.score:.4g}{tail}>"


class SelectionResult:
    """Ranked outcomes; ``best`` is the winning (format name, instance,
    kernel) triple.

    ``auto``-mode extras: ``signature`` is the structure signature the
    winner cache was keyed on, and ``cached`` is True when the selection
    was served from the winner cache (zero micro-benchmark runs)."""

    def __init__(self, choices: List[FormatChoice],
                 instances: Dict[str, SparseFormat], mode: str):
        ok = [c for c in choices if c.ok]
        failed = [c for c in choices if not c.ok]
        # ranking tiers: scored choices first (measured seconds or model
        # cost, per mode), then model-estimated-only (auto's untuned
        # candidates), then unscored-but-legal; a None score must not
        # TypeError the sort
        def tier(c: FormatChoice) -> Tuple:
            if c.score is not None:
                return (0, c.score)
            if c.model_cost is not None:
                return (1, c.model_cost)
            return (2, 0.0)

        ok.sort(key=tier)
        self.choices = ok + failed
        self.instances = instances
        self.mode = mode
        self.signature: Optional[str] = None
        self.cached = False
        if not ok:
            raise PlanError("no candidate format admits a legal plan")

    @property
    def best(self) -> Tuple[str, SparseFormat, "CompiledKernel"]:
        c = self.choices[0]
        return c.format_name, self.instances[c.format_name], c.kernel

    def table(self) -> str:
        header = f"format selection ({self.mode}"
        if self.cached:
            header += ", cached winner"
        lines = [header + "):"]
        # the unit is per-mode, not "model or seconds": auto rows mix
        # measured seconds (tuned) with estimated cost (untuned)
        unit = {"model": "estimated cost",
                "empirical": "seconds",
                "auto": "seconds"}.get(self.mode, "score")
        for c in self.choices:
            if not c.ok:
                lines.append(f"  {c.label:10s} {'no legal plan':>14s}")
            elif c.score is not None:
                tag = unit
                if c.backend_used and self.mode != "model":
                    tag += f", {c.backend_used}"
                lines.append(f"  {c.label:10s} {c.score:14.4g}  ({tag})")
            elif self.mode == "auto" and c.model_cost is not None:
                lines.append(f"  {c.label:10s} {c.model_cost:14.4g}  "
                             f"(estimated cost, not tuned)")
            else:
                lines.append(f"  {c.label:10s} {'unscored':>14s}")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Candidate construction
# ---------------------------------------------------------------------------

def _build_instance(name: str, matrix: SparseFormat, rows, cols, vals,
                    bounds, convert_kwargs) -> SparseFormat:
    """One candidate instance from the shared canonical COO triples
    (raises ValueError/KeyError when the format does not admit the
    matrix)."""
    cls = FORMATS.get(name)
    if cls is None:
        raise KeyError(name)
    if cls is type(matrix) and (name != "bsr" or not convert_kwargs):
        return matrix  # same short-circuit convert() applies
    kw = convert_kwargs if name == "bsr" else {}
    inst = cls._from_canonical_coo(rows, cols, vals, matrix.shape, **kw)
    if bounds is not None:
        inst.annotate_bounds(bounds)
    return inst


#: panel width used for dense-panel (``dmat``) operands and for program
#: parameters no binding can pin (SpMM's ``k``) in synthetic workloads
_DEFAULT_PANEL_WIDTH = 8


def _workload_program(name: str) -> Program:
    """Resolve a workload-family name to its measurement kernel — the
    string form of the workload axis (``workload="spmm"`` ranks the
    candidates under SpMM micro-benchmarks instead of matvec)."""
    from repro.ir import kernels as _kernels

    factories = {"matvec": _kernels.mvm, "mvm": _kernels.mvm,
                 "spmm": _kernels.spmm, "spmm_t": _kernels.spmm_t,
                 "spgemm": _kernels.spgemm}
    factory = factories.get(name)
    if factory is None:
        raise ValueError(f"unknown workload {name!r}; choose from "
                         f"{tuple(sorted(factories))}")
    return factory()


def _synthetic_workload(program: Program, array_name: str,
                        inst: SparseFormat) -> Tuple[Dict, Dict]:
    """A deterministic workload for auto-mode measurement: every vector
    array gets random data long enough for any loop extent, dense panels
    (``dmat``) get ``_DEFAULT_PANEL_WIDTH`` columns, scalars get zero, and
    parameter values are inferred from the bound instance (parameters no
    binding pins — SpMM's panel width — default to the panel width too)."""
    import numpy as np

    from repro.core.compiler import infer_param_values

    params = {k: int(v) for k, v in
              infer_param_values(program, {array_name: inst}).items()}
    for p in program.params:
        params.setdefault(p, _DEFAULT_PANEL_WIDTH)
    size = max([inst.nrows, inst.ncols, 1] + list(params.values()))
    rng = np.random.default_rng(0)
    arrays: Dict[str, object] = {array_name: inst}
    for name, decl in program.arrays.items():
        if name == array_name:
            continue
        if decl.kind == "vector":
            arrays[name] = rng.random(size)
        elif decl.kind == "dmat":
            arrays[name] = rng.random((size, _DEFAULT_PANEL_WIDTH))
        elif decl.kind == "matrix":
            # an unbound matrix operand (SpGEMM's B when only A drives the
            # selection): a dense square block large enough for any extent
            arrays[name] = rng.random((size, size))
        elif decl.kind == "scalar":
            arrays[name] = np.zeros(())
    return arrays, params


def _measure_choice(choice: FormatChoice, program: Program, array_name: str,
                    inst: SparseFormat,
                    workload: Optional[Callable], repeats: int) -> None:
    """Micro-benchmark one compiled candidate and record the measured
    seconds plus the backend that actually executed (kernel ``__call__``
    dispatches native when available and falls back observably)."""
    kernel = choice.kernel
    if workload is not None:
        arrays, params = workload(inst)
    else:
        arrays, params = _synthetic_workload(program, array_name, inst)
    # materialize the execution path (native bind / lazy codegen) OUTSIDE
    # the timed region, so the first sample measures the kernel, not the
    # code generator
    if kernel.native() is None:
        kernel.callable()
    with INSTR.phase("autotune.measure"):
        secs = best_of(lambda: kernel(dict(arrays), dict(params)),
                       repeats=repeats)
    INSTR.count("autotune.microbench.runs")
    choice.measured = float(secs)
    choice.score = float(secs)
    choice.backend_used = kernel.backend_used


def _rank_candidates(program, array_name, matrix, candidates, rows, cols,
                     vals, bounds, backend, convert_kwargs):
    """Build every candidate instance, compile its kernel, and score it by
    the Figure 11 model — the shared front half of every mode."""
    from repro.core.compiler import compile_kernel

    choices: List[FormatChoice] = []
    instances: Dict[str, SparseFormat] = {}
    for name in candidates:
        INSTR.count("select.candidates")
        try:
            inst = _build_instance(name, matrix, rows, cols, vals, bounds,
                                   convert_kwargs)
        except (ValueError, KeyError) as e:
            # the format does not admit this matrix at all (BSR needs
            # divisible dimensions, SYM a square symmetric matrix, ...):
            # report a skip-with-reason choice rather than crashing
            choices.append(FormatChoice(name, None, None,
                                        f"inapplicable: {e}"))
            continue
        instances[name] = inst
        try:
            kernel = compile_kernel(program, {array_name: inst},
                                    backend=backend)
        except PlanError as e:
            choices.append(FormatChoice(name, None, None, str(e)))
            continue
        choices.append(FormatChoice(name, kernel, float(kernel.cost),
                                    model_cost=float(kernel.cost),
                                    tier=getattr(kernel, "opt", "none")))
    return choices, instances


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def select_format(
    program: Program,
    array_name: str,
    matrix,
    candidates: Sequence[str] = DEFAULT_CANDIDATES,
    mode: str = "model",
    workload: Union[None, str,
                    Callable[[SparseFormat], Tuple[Mapping, Mapping]]] = None,
    repeats: Optional[int] = None,
    backend: str = "python",
    topk: Optional[int] = None,
    autotune_cache: Optional[str] = None,
    **convert_kwargs,
) -> SelectionResult:
    """Choose the best storage format for ``matrix`` under ``program``.

    ``matrix`` is any format instance (or convertible input); each
    candidate format gets the converted matrix, a compiled kernel, and a
    score.  ``mode="model"`` scores by the compiler's cost estimate;
    ``mode="empirical"`` requires ``workload(fmt) -> (arrays, params)``
    and scores by the best-of-``repeats`` measured time of the generated
    kernel; ``mode="auto"`` micro-benchmarks the analytically top-``topk``
    candidates on a synthetic workload (or ``workload`` when given) and
    serves repeats of the same structure class from the winner cache.

    ``workload`` also accepts a workload-family *name* (``"matvec"`` /
    ``"spmm"`` / ...): the named kernel replaces ``program`` for both
    compilation and measurement, so ``workload="spmm"`` selects the
    format that wins under SpMM micro-benchmarks — the CSR-vs-CSC winner
    flips between matvec and SpMM, which is exactly why the axis exists.
    A named workload measures on the synthetic inputs (empirical mode
    included).

    ``backend`` is forwarded to the compiler; measurements execute
    through the kernel's real dispatch, and each choice records
    ``backend_used`` so a Python-fallback timing is never silently
    compared against native ones.  ``repeats`` defaults to
    ``REPRO_AUTOTUNE_REPEATS`` in auto mode and 3 otherwise;
    ``autotune_cache`` (``"off"`` / ``"memory"`` / ``"disk"``) defaults to
    ``REPRO_AUTOTUNE_CACHE``.
    """
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    named_workload = isinstance(workload, str)
    if named_workload:
        # the workload axis by name: measure (and compile) the named
        # kernel on its synthetic inputs instead of the caller's program
        program = _workload_program(workload)
        workload = None
    if mode == "empirical" and workload is None and not named_workload:
        raise ValueError("empirical mode requires a workload callable")

    from repro.formats.coo import CooMatrix

    if not isinstance(matrix, SparseFormat):
        matrix = CooMatrix.from_dense(matrix)

    # extract and canonicalize the COO triples ONCE; every candidate is
    # then built through its _from_canonical_coo construction core, so the
    # per-candidate cost is the O(nnz) packing alone — materializing all
    # ~9 formats no longer pays ~9 sorts (or 9 Python loops, pre-PR 5)
    with INSTR.phase("select.extract"):
        rows, cols, vals = matrix.to_coo_arrays()
        rows, cols, vals = coo_dedup_sort(rows, cols, vals, matrix.shape,
                                          order="row")
    bounds = matrix.bounds()

    if mode == "auto":
        return _select_auto(program, array_name, matrix, candidates,
                            workload, repeats, backend, topk, autotune_cache,
                            rows, cols, vals, bounds, convert_kwargs)

    choices, instances = _rank_candidates(program, array_name, matrix,
                                          candidates, rows, cols, vals,
                                          bounds, backend, convert_kwargs)
    if mode == "empirical":
        reps = 3 if repeats is None else repeats
        for c in choices:
            if c.ok:
                _measure_choice(c, program, array_name,
                                instances[c.format_name], workload, reps)
    return SelectionResult(choices, instances, mode)


# ---------------------------------------------------------------------------
# Auto mode
# ---------------------------------------------------------------------------

def _select_auto(program, array_name, matrix, candidates, workload, repeats,
                 backend, topk, autotune_cache, rows, cols, vals, bounds,
                 convert_kwargs) -> SelectionResult:
    from repro.search import autotune as at
    from repro.search.features import features_from_pattern, structure_signature

    cache_mode = at.resolve_autotune_cache(autotune_cache)
    k = at.autotune_topk() if topk is None else max(1, int(topk))
    reps = at.autotune_repeats() if repeats is None else repeats

    INSTR.count("select.auto")
    with INSTR.phase("autotune.features"):
        # rows/cols went through coo_dedup_sort in select_format, so the
        # dedup pass inside feature extraction can be skipped
        signature = structure_signature(
            features_from_pattern(rows, cols, matrix.shape,
                                  assume_canonical=True))
    key = at.winner_key(program, signature, candidates, backend, k)

    def tune() -> Tuple[Dict, SelectionResult]:
        from repro.core.compiler import compile_kernel

        choices, instances = _rank_candidates(program, array_name, matrix,
                                              candidates, rows, cols, vals,
                                              bounds, backend, convert_kwargs)
        ranked_ok = sorted((c for c in choices if c.ok),
                           key=lambda c: c.model_cost)
        for c in ranked_ok[:k]:
            _measure_choice(c, program, array_name,
                            instances[c.format_name], workload, reps)
        # tier axis: over the C backend each natively-measured candidate
        # also gets an ``opt="tiled"`` variant, so the winner is the best
        # (format, tier) *pair*.  A variant whose bind demoted (no SIMD
        # probe, toolchain loss) or whose measurement fell back to Python
        # would duplicate an existing timing — it is dropped, not ranked.
        if backend == "c":
            for c in list(ranked_ok[:k]):
                if c.tier != "none" or c.backend_used not in ("c", "c+openmp"):
                    continue
                try:
                    kt = compile_kernel(program,
                                        {array_name: instances[c.format_name]},
                                        backend=backend, opt="tiled")
                except PlanError:       # pragma: no cover - same plan as base
                    continue
                ct = FormatChoice(c.format_name, kt, None,
                                  model_cost=float(kt.cost), tier="tiled")
                _measure_choice(ct, program, array_name,
                                instances[c.format_name], workload, reps)
                if (ct.backend_used in ("c", "c+openmp")
                        and getattr(kt, "opt_used", "none") == "tiled"):
                    choices.append(ct)
        for c in ranked_ok[k:]:
            c.score = None              # untuned: ranked by model_cost tier
        result = SelectionResult(choices, instances, "auto")
        best = result.choices[0]
        record = {
            "format": best.format_name,
            "tier": best.tier,
            "backend_used": best.backend_used,
            "measured": {c.label: c.measured for c in result.choices
                         if c.measured is not None},
            "signature": signature,
            "topk": k,
            "repeats": reps,
        }
        return record, result

    record, payload, origin = at.winner_for(key, cache_mode, tune)
    if payload is not None:                       # we were the tuning leader
        payload.signature = signature
        return payload

    # warm path: the cached winner — build and compile ONLY that format
    try:
        result = _replay_winner(program, array_name, matrix, record, rows,
                                cols, vals, bounds, backend, convert_kwargs)
    except (PlanError, ValueError, KeyError) as e:
        # the cached winner does not admit this particular matrix (e.g. a
        # BSR divisibility change within the same signature bucket): tune
        # fresh and overwrite the stale record
        INSTR.count("autotune.replay_failures")
        record, result = tune()
        INSTR.count("autotune.tunes")
        at.store(key, record, cache_mode)
        result.signature = signature
        return result
    INSTR.count("autotune.replays")
    result.signature = signature
    result.cached = True
    return result


def _replay_winner(program, array_name, matrix, record, rows, cols, vals,
                   bounds, backend, convert_kwargs) -> SelectionResult:
    """Serve a cached winner: one instance build, one (cached) compile,
    zero measurements."""
    from repro.core.compiler import compile_kernel

    name = record["format"]
    tier = record.get("tier", "none")   # pre-tier records replay as naive
    inst = _build_instance(name, matrix, rows, cols, vals, bounds,
                           convert_kwargs)
    kernel = compile_kernel(program, {array_name: inst}, backend=backend,
                            opt=tier)
    label = name if tier == "none" else f"{name}+{tier}"
    measured = (record.get("measured") or {}).get(label)
    choice = FormatChoice(name, kernel,
                          float(measured) if measured is not None
                          else float(kernel.cost),
                          model_cost=float(kernel.cost),
                          measured=measured,
                          backend_used=record.get("backend_used"),
                          tier=tier)
    return SelectionResult([choice], {name: inst}, "auto")


# ---------------------------------------------------------------------------
# Output-format selection from a computed pattern (SpGEMM)
# ---------------------------------------------------------------------------

#: candidate *output* formats for a computed pattern.  ``sym`` is excluded
#: by construction: pattern symmetry never implies value symmetry, and an
#: SpGEMM product with a symmetric pattern is generally not value-symmetric.
OUTPUT_CANDIDATES = ("csr", "csc", "coo", "ell", "dia", "jad", "msr", "bsr")


class OutputFormatChoice:
    """The winning output format for a computed sparsity pattern, plus the
    full per-candidate score map for inspection.  ``format_kwargs`` carries
    construction keywords (BSR's ``block_size``); pass both straight to the
    winning class's ``_from_canonical_coo``."""

    __slots__ = ("format_name", "format_kwargs", "score", "scores",
                 "features")

    def __init__(self, format_name: str, format_kwargs: Dict,
                 score: float, scores: Dict[str, float], features):
        self.format_name = format_name
        self.format_kwargs = format_kwargs
        self.score = score
        self.scores = scores
        self.features = features

    def table(self) -> str:
        lines = ["output-format selection (structure-driven):"]
        for name, s in sorted(self.scores.items(), key=lambda kv: kv[1]):
            mark = " *" if name == self.format_name else ""
            lines.append(f"  {name:6s} {s:10.4g}{mark}")
        return "\n".join(lines)

    def __repr__(self):
        return (f"<OutputFormatChoice {self.format_name} "
                f"score={self.score:.4g}>")


def select_output_format(rows, cols, shape,
                         candidates: Sequence[str] = OUTPUT_CANDIDATES,
                         ) -> OutputFormatChoice:
    """Choose a storage format for a *computed* sparsity pattern — the
    SpGEMM output, whose structure exists only after the symbolic pass, so
    no input-side selection can have decided it.

    Unlike :func:`select_format` there is no kernel to compile or measure
    against (the product is about to be *packed*, not consumed by a known
    workload), so the ranking is purely structural: each candidate gets a
    relative packing-plus-storage cost from the O(nnz) pattern features
    (:func:`repro.search.features.features_from_pattern`), CSR = 1.0
    baseline.  The constants encode each format's failure mode:

    - ``csc`` (1.05) / ``coo`` (1.15) / ``jad`` (1.10): fixed re-sort or
      permutation overhead over row-major triples, structure-independent;
    - ``ell``: padding — storage is ``nrows * max_row``, so the cost
      scales with ``row_max_ratio`` (1.0 for perfectly regular rows,
      unbounded for a power-law row);
    - ``dia``: band area — cost scales with ``1 / band_fill`` (a dense
      band beats CSR, a scattered pattern spanning the matrix loses);
    - ``bsr``: tile padding — ``1 / block_fill`` at the 2x2 probe size,
      only when both dimensions divide (``block_size=2`` is forwarded in
      ``format_kwargs``);
    - ``msr``: wins only as the diagonal fills (square matrices only).

    ``rows``/``cols`` must already be canonical (deduplicated) — exactly
    what the SpGEMM symbolic pass hands over.  An empty pattern short-
    circuits to CSR.  The caller still owns packing failure: a scored
    winner can be inapplicable to the *values* side, and
    :func:`repro.blas.api.spgemm` falls back to CSR observably.
    """
    from repro.search.features import features_from_pattern

    m, n = int(shape[0]), int(shape[1])
    feats = features_from_pattern(rows, cols, (m, n), assume_canonical=True)
    if feats.nnz == 0:
        return OutputFormatChoice("csr", {}, 1.0, {"csr": 1.0}, feats)

    scores: Dict[str, float] = {}
    kwargs: Dict[str, Dict] = {}
    for name in candidates:
        if name == "csr":
            scores[name] = 1.0
        elif name == "csc":
            scores[name] = 1.05
        elif name == "coo":
            scores[name] = 1.15
        elif name == "jad":
            scores[name] = 1.10
        elif name == "ell":
            scores[name] = 0.95 * max(1.0, feats.row_max_ratio)
        elif name == "dia":
            if feats.band_fill > 0.0:
                scores[name] = 0.90 / feats.band_fill
        elif name == "bsr":
            if m % 2 == 0 and n % 2 == 0 and feats.block_fill > 0.0:
                scores[name] = 0.95 / feats.block_fill
                kwargs[name] = {"block_size": 2}
        elif name == "msr":
            if m == n:
                scores[name] = 1.08 - 0.10 * feats.diag_fill
        # unknown / excluded candidates (sym) are silently inapplicable
    if not scores:
        scores = {"csr": 1.0}
    winner = min(scores, key=lambda k: (scores[k], k))
    INSTR.count("spgemm.output_select")
    return OutputFormatChoice(winner, kwargs.get(winner, {}),
                              scores[winner], scores, feats)

"""Automatic sparse-format selection — the paper's Section 6 extension.

The paper sketches two routes:

1. "make the compiler responsible for making this selection using cost
   estimation rules like the ones described in Section 4" — the ``model``
   mode: compile the kernel for every candidate format and rank by the
   Figure 11 cost estimate;
2. "an empirical optimization approach similar to that used in the ATLAS
   system — the system generates code for a variety of promising formats,
   and determines experimentally which one gives the best performance" —
   the ``empirical`` mode: run each generated kernel on a caller-supplied
   workload and rank by measured time.

Both return every candidate (formats with no legal plan are reported, not
hidden), ranked best first.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from typing import TYPE_CHECKING

from repro.core.plan import PlanError
from repro.formats.base import SparseFormat, coo_dedup_sort
from repro.formats.convert import FORMATS, convert
from repro.instrument import INSTR
from repro.ir.program import Program
from repro.util.timing import best_of

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.compiler import CompiledKernel

DEFAULT_CANDIDATES = ("csr", "csc", "coo", "dia", "ell", "jad", "msr",
                      "bsr", "sym")


class FormatChoice:
    """One candidate's outcome."""

    __slots__ = ("format_name", "kernel", "score", "error")

    def __init__(self, format_name: str, kernel,
                 score: Optional[float], error: Optional[str] = None):
        self.format_name = format_name
        self.kernel = kernel
        self.score = score
        self.error = error

    @property
    def ok(self) -> bool:
        return self.kernel is not None

    def __repr__(self):
        if not self.ok:
            return f"<{self.format_name}: no plan ({self.error})>"
        if self.score is None:
            return f"<{self.format_name}: ok (unscored)>"
        return f"<{self.format_name}: score={self.score:.4g}>"


class SelectionResult:
    """Ranked outcomes; ``best`` is the winning (format name, instance,
    kernel) triple."""

    def __init__(self, choices: List[FormatChoice],
                 instances: Dict[str, SparseFormat], mode: str):
        ok = [c for c in choices if c.ok]
        failed = [c for c in choices if not c.ok]
        # unscored-but-legal choices rank after every scored one (a None
        # score must not TypeError the sort)
        ok.sort(key=lambda c: (c.score is None, c.score or 0.0))
        self.choices = ok + failed
        self.instances = instances
        self.mode = mode
        if not ok:
            raise PlanError("no candidate format admits a legal plan")

    @property
    def best(self) -> Tuple[str, SparseFormat, "CompiledKernel"]:
        c = self.choices[0]
        return c.format_name, self.instances[c.format_name], c.kernel

    def table(self) -> str:
        lines = [f"format selection ({self.mode}):"]
        unit = "estimated cost" if self.mode == "model" else "seconds"
        for c in self.choices:
            if c.ok and c.score is not None:
                lines.append(f"  {c.format_name:6s} {c.score:14.4g}  ({unit})")
            elif c.ok:
                lines.append(f"  {c.format_name:6s} {'unscored':>14s}")
            else:
                lines.append(f"  {c.format_name:6s} {'no legal plan':>14s}")
        return "\n".join(lines)


def select_format(
    program: Program,
    array_name: str,
    matrix,
    candidates: Sequence[str] = DEFAULT_CANDIDATES,
    mode: str = "model",
    workload: Optional[Callable[[SparseFormat], Tuple[Mapping, Mapping]]] = None,
    repeats: int = 3,
    **convert_kwargs,
) -> SelectionResult:
    """Choose the best storage format for ``matrix`` under ``program``.

    ``matrix`` is any format instance (or convertible input); each
    candidate format gets the converted matrix, a compiled kernel, and a
    score.  ``mode="model"`` scores by the compiler's cost estimate;
    ``mode="empirical"`` requires ``workload(fmt) -> (arrays, params)`` and
    scores by the best-of-``repeats`` measured time of the generated
    kernel.
    """
    if mode not in ("model", "empirical"):
        raise ValueError(f"mode must be 'model' or 'empirical', got {mode!r}")
    if mode == "empirical" and workload is None:
        raise ValueError("empirical mode requires a workload callable")

    from repro.core.compiler import compile_kernel

    from repro.formats.coo import CooMatrix

    if not isinstance(matrix, SparseFormat):
        matrix = CooMatrix.from_dense(matrix)

    # extract and canonicalize the COO triples ONCE; every candidate is
    # then built through its _from_canonical_coo construction core, so the
    # per-candidate cost is the O(nnz) packing alone — materializing all
    # ~9 formats no longer pays ~9 sorts (or 9 Python loops, pre-PR 5)
    with INSTR.phase("select.extract"):
        rows, cols, vals = matrix.to_coo_arrays()
        rows, cols, vals = coo_dedup_sort(rows, cols, vals, matrix.shape,
                                          order="row")
    bounds = matrix.bounds()

    choices: List[FormatChoice] = []
    instances: Dict[str, SparseFormat] = {}
    for name in candidates:
        INSTR.count("select.candidates")
        cls = FORMATS.get(name)
        try:
            if cls is None:
                raise KeyError(name)
            if cls is type(matrix) and (name != "bsr" or not convert_kwargs):
                inst = matrix  # same short-circuit convert() applies
            else:
                kw = convert_kwargs if name == "bsr" else {}
                inst = cls._from_canonical_coo(rows, cols, vals,
                                               matrix.shape, **kw)
                if bounds is not None:
                    inst.annotate_bounds(bounds)
        except (ValueError, KeyError) as e:
            # the format does not admit this matrix at all (BSR needs
            # divisible dimensions, SYM a square symmetric matrix, ...):
            # report a skip-with-reason choice rather than crashing
            choices.append(FormatChoice(name, None, None,
                                        f"inapplicable: {e}"))
            continue
        instances[name] = inst
        try:
            kernel = compile_kernel(program, {array_name: inst})
        except PlanError as e:
            choices.append(FormatChoice(name, None, None, str(e)))
            continue
        if mode == "model":
            score = kernel.cost
        else:
            arrays, params = workload(inst)
            fn = kernel.callable()
            score = best_of(lambda: fn(dict(arrays), dict(params)),
                            repeats=repeats)
        choices.append(FormatChoice(name, kernel, float(score)))
    return SelectionResult(choices, instances, mode)

"""O(nnz) sparsity-structure feature extraction and quantized signatures.

The analytical cost model (Figure 11) ranks formats from trip counts alone
— it cannot see the *structure* that actually decides the winner: a banded
matrix and a power-law one with the same nnz rank identically under the
model, yet favour different formats once constant factors enter.
AlphaSparse and SpComp (PAPERS.md) both drive format and schedule choice
from cheap structure features; this module extracts them with vectorized
NumPy in one O(nnz) pass over the pattern:

- row-length distribution: mean, coefficient of variation, max/mean ratio,
  and a log2-bucketed histogram;
- bandedness: the bandwidth (max ``|r - c|``) and the mean ``|r - c|``
  relative to the matrix order, and the fill of the band spanned;
- block density: how full the occupied ``s x s`` tiles are, via the same
  ``np.unique``-over-block-keys machinery the BSR constructor uses;
- pattern symmetry and diagonal fill;
- size/nnz/density magnitude buckets.

Everything is computed from the *pattern* (rows, cols, shape) — never the
stored values — so two matrices that differ only in values are the same
structure class by construction.

:func:`structure_signature` quantizes the features (half-octave log buckets
for magnitudes, eighth steps for ratios) into a hashable key: matrices of
the same structure class collide, perturbed values collide, changed
structure separates.  The autotuner (:mod:`repro.search.autotune`) keys its
winner cache on this signature, so the micro-benchmark cost is paid once
per structure class rather than once per matrix.
"""

from __future__ import annotations

import hashlib
import math
from typing import Tuple

import numpy as np

from repro.formats.base import SparseFormat
from repro.instrument import INSTR

__all__ = ["StructureFeatures", "extract_features", "structure_signature",
           "N_HIST_BUCKETS", "BLOCK_PROBE_SIZE"]

#: row-length histogram buckets: counts 0, 1, 2-3, 4-7, ..., >=64 (log2)
N_HIST_BUCKETS = 8

#: tile size of the block-density probe (the smallest BSR tiling)
BLOCK_PROBE_SIZE = 2


class StructureFeatures:
    """Pattern statistics of one matrix, all cheap O(nnz) aggregates.

    Ratios are in [0, 1]; ``row_cv`` and ``row_max_ratio`` are unbounded
    (0 for degenerate/empty matrices).  Instances are plain value holders;
    :func:`structure_signature` is the canonical way to compare them."""

    __slots__ = ("nrows", "ncols", "nnz", "density", "row_mean", "row_cv",
                 "row_max_ratio", "row_hist", "bandwidth_ratio",
                 "band_avg_ratio", "band_fill", "block_fill", "symmetry",
                 "diag_fill")

    def __init__(self, nrows: int, ncols: int, nnz: int, density: float,
                 row_mean: float, row_cv: float, row_max_ratio: float,
                 row_hist: Tuple[float, ...], bandwidth_ratio: float,
                 band_avg_ratio: float, band_fill: float, block_fill: float,
                 symmetry: float, diag_fill: float):
        self.nrows = nrows
        self.ncols = ncols
        self.nnz = nnz
        self.density = density
        self.row_mean = row_mean
        self.row_cv = row_cv
        self.row_max_ratio = row_max_ratio
        self.row_hist = tuple(row_hist)
        self.bandwidth_ratio = bandwidth_ratio
        self.band_avg_ratio = band_avg_ratio
        self.band_fill = band_fill
        self.block_fill = block_fill
        self.symmetry = symmetry
        self.diag_fill = diag_fill

    def as_dict(self) -> dict:
        return {name: getattr(self, name) for name in self.__slots__}

    def quantized(self) -> Tuple:
        """The quantized, hashable signature tuple (see module docstring).

        Extreme-value statistics (max row length, max bandwidth) vary
        across same-class samples, so the signature keys on robust
        variants: the mean-offset bandedness ratio and an octave bucket
        for the max-row ratio.  The raw maxima stay available as
        features."""
        return (
            ("m", _qlog(self.nrows)),
            ("n", _qlog(self.ncols)),
            ("nnz", _qlog(self.nnz)),
            ("density", _qlog(self.density)),
            ("row_mean", _qlog(self.row_mean)),
            ("row_cv", _qlog1p(self.row_cv)),
            ("row_max", _qlog1p_coarse(self.row_max_ratio)),
            ("hist", tuple(_qratio(f) for f in self.row_hist)),
            ("bw", _qratio_coarse(self.band_avg_ratio)),
            ("band_fill", _qratio(self.band_fill)),
            ("block_fill", _qratio(self.block_fill)),
            ("sym", _qratio(self.symmetry)),
            ("diag", _qratio(self.diag_fill)),
        )

    def __repr__(self):
        return (f"<StructureFeatures {self.nrows}x{self.ncols} "
                f"nnz={self.nnz} cv={self.row_cv:.3g} "
                f"bw={self.bandwidth_ratio:.3g} sym={self.symmetry:.3g}>")


def _qlog(x: float) -> int:
    """Half-octave magnitude bucket (-1 for zero/negative)."""
    if x <= 0:
        return -1
    return int(round(math.log2(x) * 2.0))


def _qlog1p(x: float) -> int:
    """Half-octave bucket of 1+x for unbounded non-negative ratios."""
    return int(round(math.log2(1.0 + max(0.0, x)) * 2.0))


def _qlog1p_coarse(x: float) -> int:
    """Full-octave bucket — for noisy extreme-value statistics."""
    return int(round(math.log2(1.0 + max(0.0, x))))


def _qratio(x: float) -> int:
    """A [0, 1] ratio quantized to eighth steps (0..8)."""
    return int(round(min(1.0, max(0.0, x)) * 8.0))


def _qratio_coarse(x: float) -> int:
    """Quarter steps (0..4) — the p90 bandwidth of an unbanded random
    pattern concentrates near an eighth-step boundary (~0.68), so the
    bandedness bucket needs the coarser grid to be seed-stable."""
    return int(round(min(1.0, max(0.0, x)) * 4.0))


def extract_features(matrix) -> StructureFeatures:
    """Extract :class:`StructureFeatures` from a format instance (or a
    dense ndarray).  One vectorized O(nnz) pass; duplicate entries in the
    source pattern (raw COO) are deduplicated first so duplicated input
    cannot shift the statistics."""
    from repro.formats.coo import CooMatrix

    if not isinstance(matrix, SparseFormat):
        matrix = CooMatrix.from_dense(np.asarray(matrix))
    with INSTR.phase("autotune.features"):
        rows, cols, _vals = matrix.to_coo_arrays()
        return features_from_pattern(rows, cols, matrix.shape)


def _count_distinct(keys: np.ndarray) -> int:
    """Distinct values in an integer array via sort + diff — notably
    faster than hash-based ``np.unique`` at warm-path sizes."""
    if keys.size == 0:
        return 0
    s = np.sort(keys)
    return 1 + int(np.count_nonzero(s[1:] != s[:-1]))


def features_from_pattern(rows: np.ndarray, cols: np.ndarray,
                          shape: Tuple[int, int],
                          assume_canonical: bool = False) -> StructureFeatures:
    """Features from raw (possibly duplicated) COO pattern arrays.

    ``assume_canonical=True`` promises the pattern is already
    duplicate-free (the auto-mode path extracts features right after
    ``coo_dedup_sort``) and skips the dedup pass — the dominant cost of
    a warm cache-replay selection."""
    m, n = int(shape[0]), int(shape[1])
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    if rows.size and n > 0 and not assume_canonical:
        # dedupe the pattern: duplicate triples describe one stored entry
        keys = np.sort(rows * np.int64(n) + cols)
        if keys.size > 1:
            keep = np.empty(keys.size, dtype=bool)
            keep[0] = True
            np.not_equal(keys[1:], keys[:-1], out=keep[1:])
            keys = keys[keep]
        rows = keys // n
        cols = keys % n
    nnz = int(rows.size)
    cells = m * n

    if nnz == 0 or m == 0 or n == 0:
        hist = [0.0] * N_HIST_BUCKETS
        if m > 0:
            hist[0] = 1.0                   # every row is empty
        return StructureFeatures(m, n, nnz, 0.0, 0.0, 0.0, 0.0, tuple(hist),
                                 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)

    density = nnz / cells

    # -- row-length distribution ------------------------------------------
    counts = np.bincount(rows, minlength=m)
    row_mean = float(counts.mean())
    row_std = float(counts.std())
    row_max = float(counts.max())
    row_cv = row_std / row_mean if row_mean > 0 else 0.0
    row_max_ratio = row_max / row_mean if row_mean > 0 else 0.0
    # log2 buckets: 0, 1, 2-3, 4-7, ..., >= 2^(B-2)
    edges = 2 ** np.arange(N_HIST_BUCKETS - 1)      # 1, 2, 4, ..., 64
    bucket = np.digitize(counts, edges)
    hist = np.bincount(bucket, minlength=N_HIST_BUCKETS) / m

    # -- bandedness -------------------------------------------------------
    offs = np.abs(rows - cols)
    span = max(1, max(m, n) - 1)
    bandwidth = int(offs.max())
    bandwidth_ratio = bandwidth / span
    # mean |r - c| / span: the robust bandedness statistic — a mean
    # concentrates like 1/sqrt(nnz) where the max (and even quantiles of
    # mixture distributions) jump buckets between same-class samples
    band_avg_ratio = float(offs.mean()) / span
    band_area = min(cells, m * (2 * bandwidth + 1))
    band_fill = nnz / band_area if band_area > 0 else 0.0

    # -- block density (the BSR np.unique machinery at the probe size) ----
    s = BLOCK_PROBE_SIZE
    bcols = (n + s - 1) // s
    bkeys = (rows // s) * np.int64(bcols) + (cols // s)
    nblocks = _count_distinct(bkeys)
    block_fill = nnz / (nblocks * s * s)

    # -- symmetry and diagonal --------------------------------------------
    symmetry = 0.0
    if m == n:
        keys = rows * np.int64(n) + cols
        tkeys = cols * np.int64(n) + rows
        both = np.intersect1d(keys, tkeys, assume_unique=True).size
        symmetry = both / nnz
    ndiag = min(m, n)
    diag_fill = float(np.count_nonzero(rows == cols)) / ndiag if ndiag else 0.0

    return StructureFeatures(m, n, nnz, density, row_mean, row_cv,
                             row_max_ratio, tuple(float(h) for h in hist),
                             float(bandwidth_ratio), band_avg_ratio,
                             float(band_fill), float(block_fill),
                             float(symmetry), float(diag_fill))


def structure_signature(matrix_or_features) -> str:
    """The quantized structure signature as a stable hex digest.

    Accepts a format instance, a dense ndarray, or an already-extracted
    :class:`StructureFeatures`.  Matrices of the same structure class map
    to the same digest (see module docstring for the guarantees)."""
    feats = matrix_or_features
    if not isinstance(feats, StructureFeatures):
        feats = extract_features(matrix_or_features)
    blob = repr(feats.quantized())
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()

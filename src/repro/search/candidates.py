"""Candidate generation: the search space of paper Section 4.2, pruned by
the heuristics of Section 4.3.

A candidate is a (product space, embedding) pair.  The generator branches
on exactly the choices the paper identifies:

1. the access structure (perspective) used by each sparse reference, per
   aggregation branch — the "four groups of product spaces" of the running
   example;
2. the order of the data-dimension chains (only data-centric orders, and
   only orders consistent with each path's nesting — Section 4.3's
   restrictions);
3. for each statement and each *foreign* data dimension: a common
   enumeration with a matching dimension (an alignment implied by a
   dependence class), or placement before/after the enumeration —
   Section 4.3's "just three per dimension".

Iteration dimensions always follow all data dimensions (data-centric
execution order) and take the canonical embedding (own variable /
alignment / BEFORE) without branching.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.dependence import DependenceClass, DST, SRC
from repro.core.embedding import AFTER, AT, BEFORE, DimEmbedding, SpaceEmbedding
from repro.core.spaces import ProductDim, ProductSpace, SparseRef, StmtCopy, build_copies
from repro.formats.base import SparseFormat
from repro.ir.program import Program
from repro.polyhedra.fm import bounds_of, is_feasible
from repro.polyhedra.linexpr import LinExpr
from repro.polyhedra.system import System


class Candidate:
    """One point of the search space, ready for legality analysis."""

    __slots__ = ("space", "emb", "descr")

    def __init__(self, space: ProductSpace, emb: SpaceEmbedding, descr: str):
        self.space = space
        self.emb = emb
        self.descr = descr

    def __repr__(self):
        return f"Candidate({self.descr})"


def _path_choices(program: Program, bindings: Mapping[str, SparseFormat],
                  same_matrix_same_path: bool = True):
    """All combinations of (access, branch) -> path id.

    With ``same_matrix_same_path`` (the paper's Section 4.3 heuristic —
    "use a single enumeration of a sparse matrix"), all references to the
    same matrix choose one perspective together; disabling it restores the
    full cross product (used by the search-space benchmark)."""
    from repro.analysis.accesses import collect_accesses

    slots: List[Tuple[Tuple, List[str]]] = []   # (access key, path ids)
    shared: Dict[Tuple, List[Tuple]] = {}       # (fmt id, branch) -> access keys
    for acc in collect_accesses(program):
        if acc.array not in bindings:
            continue
        fmt = bindings[acc.array]
        for br in fmt.union_branches():
            pids = [p.path_id for p in fmt.paths() if p.branch == br]
            key = (acc.stmt_name, acc.ref_id, br)
            if same_matrix_same_path:
                shared.setdefault((id(fmt), br), []).append((key, pids))
            else:
                slots.append((key, pids))
    if same_matrix_same_path:
        group_keys = list(shared)
        pid_lists = [shared[g][0][1] for g in group_keys]
        for combo in itertools.product(*pid_lists) if group_keys else [()]:
            choice = {}
            for g, pid in zip(group_keys, combo):
                for key, _pids in shared[g]:
                    choice[key] = pid
            yield choice
        return
    if not slots:
        yield {}
        return
    keys = [k for k, _ in slots]
    for combo in itertools.product(*[pids for _, pids in slots]):
        yield dict(zip(keys, combo))


def _interleave_blocks(chains: List[List[object]], cap: int) -> Iterator[Tuple[object, ...]]:
    """Interleavings of the chains' blocks preserving each chain's internal
    order, capped."""
    if not chains:
        yield ()
        return
    count = 0
    pool = [list(c) for c in chains]

    def rec(cursors: List[int], acc: List[object]):
        nonlocal count
        if count >= cap:
            return
        done = all(cursors[i] >= len(pool[i]) for i in range(len(pool)))
        if done:
            count += 1
            yield tuple(acc)
            return
        for i in range(len(pool)):
            if cursors[i] < len(pool[i]):
                cursors[i] += 1
                acc.append(pool[i][cursors[i] - 1])
                yield from rec(cursors, acc)
                acc.pop()
                cursors[i] -= 1

    yield from rec([0] * len(pool), [])


def _alignment_exprs(
    copy: StmtCopy,
    owner_copy: StmtCopy,
    canonical: str,
    deps: Sequence[DependenceClass],
    cache: Optional[Dict] = None,
) -> List[LinExpr]:
    """Variables of ``copy`` provably equal to the dimension's canonical
    variable of ``owner_copy`` in some dependence class connecting the two
    statements (in either orientation)."""
    from repro.core.embedding import pair_polyhedron

    if cache is not None:
        ck = (copy.label, owner_copy.label, canonical)
        if ck in cache:
            return cache[ck]

    out: List[LinExpr] = []
    seen = set()
    for dep in deps:
        orientations = []
        if dep.src.name == copy.name and dep.dst.name == owner_copy.name:
            orientations.append((copy, owner_copy, SRC, DST))
        if dep.src.name == owner_copy.name and dep.dst.name == copy.name:
            orientations.append((owner_copy, copy, SRC, DST))
        for a, b, pa, pb in orientations:
            poly = pair_polyhedron(dep, a, b)
            if not is_feasible(poly):
                continue
            copy_prefix = pa if a is copy else pb
            owner_prefix = pa if a is owner_copy else pb
            canon_q = owner_prefix + canonical
            for v in copy.iter_vars():
                vq = copy_prefix + v
                if v in seen:
                    continue
                try:
                    lo, hi = bounds_of(poly, LinExpr({canon_q: 1, vq: -1})
                                       if canon_q != vq else LinExpr({}))
                except ValueError:
                    continue
                if lo == 0 and hi == 0:
                    seen.add(v)
                    out.append(LinExpr.variable(v))
    if cache is not None:
        cache[ck] = out
    return out


def generate_candidates(
    program: Program,
    bindings: Mapping[str, SparseFormat],
    deps: Sequence[DependenceClass],
    max_orders: int = 12,
    max_foreign_branching: int = 4096,
    same_matrix_same_path: bool = True,
) -> Iterator[Candidate]:
    """Yield candidates in deterministic order."""
    for path_choice in _path_choices(program, bindings, same_matrix_same_path):
        copies = build_copies(program, bindings, path_choice)
        copy_by_label = {c.label: c for c in copies}
        align_cache: Dict = {}

        # fused data chains (blocks of (refs, axis)).  Fusing two members of
        # one statement copy into one dimension conjoins their coordinate
        # constraints on that copy's instances, so same-copy references may
        # only share an enumeration when their index functions coincide
        # (smvm_two's twin A[i][j]); one matrix bound to two operand names
        # with different subscripts (spgemm's A[i][j] * B[j][p2] with A and
        # B the same instance) must enumerate independently or the join
        # collapses to the diagonal.  Refs in *different* copies embed
        # separately and may fuse regardless of subscripts (ts reads
        # L[i][j] and L[i][i] from distinct statements over one traversal).
        groups: Dict[Tuple, List[SparseRef]] = {}
        for copy in copies:
            for ref in copy.refs:
                key = (id(ref.fmt), ref.path.branch, ref.path.path_id)
                groups.setdefault(key, []).append(ref)
        split: Dict[Tuple, List[SparseRef]] = {}
        for key, refs in groups.items():
            per_copy: Dict[str, set] = {}
            for ref in refs:
                per_copy.setdefault(ref.owner_label, set()).add(
                    ref.access.indices)
            if all(len(sigs) == 1 for sigs in per_copy.values()):
                split[key] = refs
            else:
                for ref in refs:
                    split[key + (ref.access.indices,)] = split.get(
                        key + (ref.access.indices,), []) + [ref]
        groups = split

        chains: List[List[List[ProductDim]]] = []  # chain -> blocks -> dims
        gi = 0
        for key in groups:
            refs = groups[key]
            path = refs[0].path
            blocks: List[List[ProductDim]] = []
            for si, step in enumerate(path.steps):
                block: List[ProductDim] = []
                for name in step.names:
                    dim = ProductDim(
                        f"g{gi}.{name}",
                        members=[(r, name) for r in refs],
                    )
                    block.append(dim)
                # joint linkage
                if len(block) > 1:
                    block[0].joint_with = block[1:]
                blocks.append(block)
            chains.append(blocks)
            gi += 1

        # iteration dims: per copy, outer-to-inner
        iter_dims: List[ProductDim] = []
        for copy in copies:
            for v in copy.iter_vars():
                iter_dims.append(ProductDim(f"it.{v}", owner_var=v))

        for order_blocks in _interleave_blocks(chains, cap=max_orders):
            data_dims: List[ProductDim] = []
            for block in order_blocks:
                data_dims.extend(block)
            dims = data_dims + iter_dims
            space = ProductSpace(dims, copies)

            # embeddings: collect choice lists per (copy, dim)
            choice_table: List[List[Tuple[str, DimEmbedding]]] = []
            copy_dim_keys: List[Tuple[str, int]] = []
            fixed: Dict[Tuple[str, int], DimEmbedding] = {}

            for di, dim in enumerate(dims):
                if dim.is_data:
                    owner_labels = {r.owner_label for r, _ in dim.members}
                    for copy in copies:
                        if copy.label in owner_labels:
                            ref = next(r for r, a in dim.members
                                       if r.owner_label == copy.label)
                            axis = next(a for r, a in dim.members
                                        if r.owner_label == copy.label)
                            fixed[(copy.label, di)] = DimEmbedding(
                                AT, LinExpr.variable(ref.axis_var(axis))
                            )
                        else:
                            # alignment may be implied through any member's
                            # owner (a dependence between the two statements)
                            aligns: List[LinExpr] = []
                            for m_ref, m_axis in dim.members:
                                owner_copy = copy_by_label[m_ref.owner_label]
                                for e in _alignment_exprs(
                                        copy, owner_copy, m_ref.axis_var(m_axis),
                                        deps, align_cache):
                                    if e not in aligns:
                                        aligns.append(e)
                            options: List[Tuple[str, DimEmbedding]] = []
                            for e in aligns[:2]:
                                options.append((f"{copy.label}@{dim.name}={e!r}",
                                                DimEmbedding(AT, e)))
                            options.append((f"{copy.label}@{dim.name}=BEFORE",
                                            DimEmbedding(BEFORE)))
                            options.append((f"{copy.label}@{dim.name}=AFTER",
                                            DimEmbedding(AFTER)))
                            choice_table.append(options)
                            copy_dim_keys.append((copy.label, di))
                else:
                    owner = dim.owner_var
                    owner_label = owner.rsplit(".", 1)[0]
                    owner_copy = copy_by_label[owner_label]
                    for copy in copies:
                        if copy.label == owner_label:
                            fixed[(copy.label, di)] = DimEmbedding(
                                AT, LinExpr.variable(owner)
                            )
                        else:
                            aligns = _alignment_exprs(copy, owner_copy, owner,
                                                      deps, align_cache)
                            if aligns:
                                fixed[(copy.label, di)] = DimEmbedding(AT, aligns[0])
                            else:
                                fixed[(copy.label, di)] = DimEmbedding(BEFORE)

            # bound the branching
            total = 1
            for options in choice_table:
                total *= len(options)
            if total > max_foreign_branching:
                choice_table = [opts[:1] if len(opts) > 2 else opts
                                for opts in choice_table]

            for combo in itertools.product(*choice_table) if choice_table else [()]:
                per_copy: Dict[str, List[Optional[DimEmbedding]]] = {
                    c.label: [None] * len(dims) for c in copies
                }
                for (label, di), emb in fixed.items():
                    per_copy[label][di] = emb
                descr_parts = [f"paths={path_choice}"] if path_choice else []
                for (label, di), (tag, emb) in zip(copy_dim_keys, combo):
                    per_copy[label][di] = emb
                    descr_parts.append(tag)
                try:
                    emb = SpaceEmbedding(space, per_copy)
                except ValueError:
                    continue
                order_tag = "|".join(d.name for d in data_dims)
                yield Candidate(space, emb, f"[{order_tag}] " + " ".join(descr_parts))

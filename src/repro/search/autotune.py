"""Structure-adaptive autotuning: the signature-keyed winner cache.

The empirical route of the paper's Section 6 (ATLAS-style measurement)
gives the right answer but pays a micro-benchmark per call; the analytical
route is instant but blind to sparsity structure.  ``mode="auto"`` in
:func:`repro.search.format_select.select_format` combines them: rank all
candidates with the Figure 11 cost model, micro-benchmark only the
analytically top-k, and record the measured winner here, keyed by the
matrix's quantized structure signature (:mod:`repro.search.features`).
Every later selection over a matrix of the same structure class is served
the cached winner without running a single measurement.

Layers and concurrency mirror the PR-1/PR-3 compile-cache design:

- an in-memory LRU (``REPRO_AUTOTUNE_CACHE_SIZE``, default 512) always
  consulted when caching is on;
- an opt-in disk layer (``autotune_cache="disk"`` or
  ``REPRO_AUTOTUNE_CACHE=disk``) storing one JSON record per key under
  ``<REPRO_CACHE_DIR>/autotune/`` — the same cache directory the compile
  cache and native artifacts use, so one warm directory serves a fleet;
- a single-flight map per key: concurrent selections of the same
  structure class elect one leader to tune while followers wait and share
  its record (``autotune.coalesced``), so a thundering herd of
  same-shaped matrices costs one tune.

Records are plain JSON-safe dicts (winner format name, measured seconds
per tuned candidate, the backend that executed the measurements) so the
disk layer never needs pickle.

Instrumentation (namespace ``autotune.*``): ``autotune.tunes``,
``autotune.cache.lookups`` / ``.hits.memory`` / ``.hits.disk`` /
``.misses``, ``autotune.coalesced``, ``autotune.microbench.runs``,
``autotune.replays`` / ``autotune.replay_failures``, and the
``autotune.features`` / ``autotune.measure`` phase timers.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
from collections import OrderedDict
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.instrument import INSTR
from repro.util.env import env_float, env_int

__all__ = ["MODES", "resolve_autotune_cache", "autotune_topk",
           "autotune_repeats", "WinnerCache", "WINNER_CACHE",
           "clear_winner_cache", "winner_key", "winner_for", "store"]

MODES = ("off", "memory", "disk")


def resolve_autotune_cache(mode: Optional[str]) -> str:
    """``autotune_cache`` kwarg if given, else ``REPRO_AUTOTUNE_CACHE``,
    else memory."""
    resolved = mode if mode is not None else os.environ.get(
        "REPRO_AUTOTUNE_CACHE", "memory").strip().lower()
    if resolved not in MODES:
        raise ValueError(
            f"autotune cache mode must be one of {MODES}, got {resolved!r}")
    return resolved


def autotune_topk() -> int:
    """How many analytically top-ranked candidates to micro-benchmark
    (``REPRO_AUTOTUNE_TOPK``, default 3; warn-and-default parsing)."""
    return env_int("REPRO_AUTOTUNE_TOPK", 3, minimum=1)


def autotune_repeats() -> int:
    """Best-of repeats per micro-benchmarked candidate
    (``REPRO_AUTOTUNE_REPEATS``, default 3)."""
    return env_int("REPRO_AUTOTUNE_REPEATS", 3, minimum=1)


def _flight_timeout() -> float:
    """Seconds a follower waits for the tuning leader before tuning
    itself (shares ``REPRO_SINGLEFLIGHT_TIMEOUT`` with the native
    backend's compile single-flight; default 300)."""
    return env_float("REPRO_SINGLEFLIGHT_TIMEOUT", 300.0, minimum=0.0)


# ---------------------------------------------------------------------------
# Winner cache
# ---------------------------------------------------------------------------

class WinnerCache:
    """Signature-keyed LRU of measured-winner records, with an optional
    JSON disk layer under the shared cache directory.

    Records are small JSON-safe dicts; the memory layer is guarded by an
    RLock (records themselves are treated as immutable once stored)."""

    def __init__(self, capacity: int = 512):
        self.capacity = capacity
        self.entries: "OrderedDict[str, Dict]" = OrderedDict()
        self._lock = threading.RLock()

    # -- memory layer ----------------------------------------------------
    def get(self, key: str) -> Optional[Dict]:
        with self._lock:
            rec = self.entries.get(key)
            if rec is not None:
                self.entries.move_to_end(key)
            return rec

    def put(self, key: str, record: Dict) -> None:
        with self._lock:
            self.entries[key] = record
            self.entries.move_to_end(key)
            while len(self.entries) > self.capacity:
                self.entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self.entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self.entries)

    # -- disk layer ------------------------------------------------------
    def disk_dir(self) -> str:
        from repro.core.cache import COMPILE_CACHE

        return os.path.join(COMPILE_CACHE.disk_dir(), "autotune")

    def _disk_path(self, key: str) -> str:
        return os.path.join(self.disk_dir(), key + ".json")

    def disk_get(self, key: str) -> Optional[Dict]:
        try:
            with open(self._disk_path(key), "r", encoding="utf-8") as f:
                record = json.load(f)
        except (OSError, ValueError):
            return None
        if not isinstance(record, dict) or "format" not in record:
            return None
        return record

    def disk_put(self, key: str, record: Dict) -> None:
        d = self.disk_dir()
        try:
            os.makedirs(d, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=d, suffix=".tmp")
            try:
                with os.fdopen(fd, "w", encoding="utf-8") as f:
                    json.dump(record, f)
                os.replace(tmp, self._disk_path(key))
            finally:
                if os.path.exists(tmp):
                    os.unlink(tmp)
        except (OSError, TypeError, ValueError):
            # best-effort, exactly like the compile cache's disk layer
            INSTR.count("autotune.disk.save_errors")


#: the process-wide winner cache
WINNER_CACHE = WinnerCache(
    capacity=env_int("REPRO_AUTOTUNE_CACHE_SIZE", 512, minimum=1)
)


def clear_winner_cache(disk: bool = False) -> None:
    """Drop the in-memory winner cache (and the disk layer when
    ``disk=True``)."""
    WINNER_CACHE.clear()
    if disk:
        d = WINNER_CACHE.disk_dir()
        if os.path.isdir(d):
            for fn in os.listdir(d):
                if fn.endswith(".json"):
                    try:
                        os.unlink(os.path.join(d, fn))
                    except OSError:
                        pass


# ---------------------------------------------------------------------------
# Keys
# ---------------------------------------------------------------------------

def winner_key(program, signature: str, candidates: Sequence[str],
               backend: str, topk: int) -> str:
    """Canonical digest of everything a cached winner depends on: the
    program (deterministic printer text), the structure signature, the
    candidate set, the measuring backend, and how many candidates were in
    the running."""
    from repro.ir.printer import program_to_text

    blob = "\x1e".join([
        program_to_text(program),
        signature,
        repr(tuple(sorted(candidates))),
        backend,
        str(int(topk)),
    ])
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# Single-flight tuning
# ---------------------------------------------------------------------------

class _TuneFlight:
    """One in-progress tune of a winner key: followers wait on the event;
    the leader parks its record (or failure) before setting it."""

    __slots__ = ("event", "record", "error")

    def __init__(self):
        self.event = threading.Event()
        self.record: Optional[Dict] = None
        self.error: Optional[BaseException] = None


_FLIGHTS: Dict[str, _TuneFlight] = {}
_FLIGHTS_LOCK = threading.Lock()


def store(key: str, record: Dict, mode: str) -> None:
    """Publish a winner record into the cache layers for ``mode``."""
    if mode == "off":
        return
    WINNER_CACHE.put(key, record)
    if mode == "disk":
        WINNER_CACHE.disk_put(key, record)


def winner_for(
    key: str,
    mode: str,
    tune: Callable[[], Tuple[Dict, object]],
) -> Tuple[Dict, object, str]:
    """Serve the winner record for ``key``: from cache, from a concurrent
    leader's tune, or by running ``tune`` ourselves.

    ``tune()`` returns ``(record, payload)`` — the JSON-safe record that
    is cached and shared, plus an arbitrary payload (the leader's fully
    built selection result) that is returned only to the caller that
    actually tuned.  Returns ``(record, payload_or_None, origin)`` with
    origin one of ``"memory"`` / ``"disk"`` / ``"tuned"`` /
    ``"coalesced"``."""
    if mode != "off":
        INSTR.count("autotune.cache.lookups")
        rec = WINNER_CACHE.get(key)
        if rec is not None:
            INSTR.count("autotune.cache.hits.memory")
            return rec, None, "memory"
        if mode == "disk":
            rec = WINNER_CACHE.disk_get(key)
            if rec is not None:
                WINNER_CACHE.put(key, rec)       # promote for this process
                INSTR.count("autotune.cache.hits.disk")
                return rec, None, "disk"
        INSTR.count("autotune.cache.misses")

    while True:
        with _FLIGHTS_LOCK:
            flight = _FLIGHTS.get(key)
            leader = flight is None
            if leader:
                flight = _TuneFlight()
                _FLIGHTS[key] = flight

        if leader:
            try:
                record, payload = tune()
                flight.record = record
                store(key, record, mode)
            except BaseException as e:
                flight.error = e
                raise
            finally:
                flight.event.set()
                with _FLIGHTS_LOCK:
                    _FLIGHTS.pop(key, None)
            INSTR.count("autotune.tunes")
            return record, payload, "tuned"

        # follower: wait for the leader, then share its record
        INSTR.count("autotune.coalesced")
        flight.event.wait(timeout=_flight_timeout())
        if flight.record is not None:
            return flight.record, None, "coalesced"
        # leader failed or timed out: loop and try to become leader (its
        # flight entry is already retired), or hit the cache if a sibling
        # succeeded meanwhile
        if mode != "off":
            rec = WINNER_CACHE.get(key)
            if rec is not None:
                return rec, None, "memory"

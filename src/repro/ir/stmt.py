"""Statements of the dense-program IR: array references and assignments."""

from __future__ import annotations

from typing import Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.ir.expr import AffExpr, ValExpr, VRead


class ArrayRef:
    """A (possibly multi-dimensional) array reference used as an lvalue."""

    __slots__ = ("array", "indices")

    def __init__(self, array: str, indices: Sequence[AffExpr]):
        self.array = array
        self.indices = tuple(AffExpr(i) for i in indices)

    @property
    def ndim(self) -> int:
        return len(self.indices)

    def as_read(self) -> VRead:
        return VRead(self.array, self.indices)

    def rename_vars(self, mapping: Mapping[str, str]) -> "ArrayRef":
        return ArrayRef(self.array, tuple(i.rename(mapping) for i in self.indices))

    def __eq__(self, other):
        return (
            isinstance(other, ArrayRef)
            and self.array == other.array
            and self.indices == other.indices
        )

    def __hash__(self):
        return hash(("ArrayRef", self.array, self.indices))

    def __repr__(self):
        idx = "".join(f"[{i!r}]" for i in self.indices)
        return f"{self.array}{idx}"


class Statement:
    """An assignment statement ``lhs = rhs``.

    Reductions are written explicitly (``y[i] = y[i] + ...``); the dependence
    analysis sees the read of the old value, exactly as in the paper's
    examples (Figure 4 writes ``b[i] = b[i] - L[i][j]*b[j]``).

    ``name`` is assigned in syntactic order (S1, S2, ...) when the statement
    is installed into a :class:`~repro.ir.program.Program`.
    """

    __slots__ = ("lhs", "rhs", "name")

    def __init__(self, lhs: ArrayRef, rhs: ValExpr, name: Optional[str] = None):
        self.lhs = lhs
        self.rhs = rhs
        self.name = name

    # -- accesses ---------------------------------------------------------
    def reads(self) -> List[VRead]:
        return list(self.rhs.reads())

    def writes(self) -> List[ArrayRef]:
        return [self.lhs]

    def references(self, array: str) -> List[Tuple[str, Tuple[AffExpr, ...]]]:
        """All (kind, indices) references to ``array``; kind is 'R' or 'W'."""
        out: List[Tuple[str, Tuple[AffExpr, ...]]] = []
        if self.lhs.array == array:
            out.append(("W", self.lhs.indices))
        for r in self.reads():
            if r.array == array:
                out.append(("R", r.indices))
        return out

    def arrays(self) -> Tuple[str, ...]:
        names = [self.lhs.array] + [r.array for r in self.reads()]
        seen, out = set(), []
        for n in names:
            if n not in seen:
                seen.add(n)
                out.append(n)
        return tuple(out)

    def rename_vars(self, mapping: Mapping[str, str]) -> "Statement":
        return Statement(self.lhs.rename_vars(mapping), self.rhs.rename_vars(mapping), self.name)

    def __repr__(self):
        tag = f"{self.name}: " if self.name else ""
        return f"{tag}{self.lhs!r} = {self.rhs!r}"

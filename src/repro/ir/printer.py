"""Pretty-printer: IR back to the textual syntax of :mod:`repro.ir.parser`.

``parse_program(program_to_text(p))`` round-trips (statement names are
regenerated, but they are positional so they match).
"""

from __future__ import annotations

from fractions import Fraction
from typing import List

from repro.ir.expr import AffExpr, ValExpr, VBin, VConst, VNeg, VParam, VRead
from repro.ir.program import Loop, Program
from repro.ir.stmt import Statement


def aff_to_text(e: AffExpr) -> str:
    parts: List[str] = []
    for name in sorted(e.lin.coeffs):
        c = e.lin.coeffs[name]
        if c == 1:
            term = name
        elif c == -1:
            term = f"-{name}"
        else:
            term = f"{c}*{name}"
        if parts and not term.startswith("-"):
            parts.append(f"+ {term}")
        elif parts:
            parts.append(f"- {term[1:]}")
        else:
            parts.append(term)
    if e.const != 0 or not parts:
        c = e.const
        if parts:
            parts.append(f"+ {c}" if c > 0 else f"- {-c}")
        else:
            parts.append(str(c))
    return " ".join(parts)


_PREC = {"+": 1, "-": 1, "*": 2, "/": 2}


def val_to_text(e: ValExpr, parent_prec: int = 0) -> str:
    if isinstance(e, VConst):
        return str(e.value)
    if isinstance(e, VParam):
        return e.name
    if isinstance(e, VRead):
        if e.array == "__var__":
            return aff_to_text(e.indices[0])
        return e.array + "".join(f"[{aff_to_text(i)}]" for i in e.indices)
    if isinstance(e, VNeg):
        inner = val_to_text(e.operand, 3)
        return f"-{inner}"
    if isinstance(e, VBin):
        prec = _PREC[e.op]
        left = val_to_text(e.left, prec)
        # right side of - and / needs a tighter context to re-parenthesize
        right = val_to_text(e.right, prec + (1 if e.op in "-/" else 0))
        s = f"{left} {e.op} {right}"
        return f"({s})" if prec < parent_prec else s
    raise TypeError(f"unknown ValExpr {type(e).__name__}")


def program_to_text(p: Program) -> str:
    lines: List[str] = []
    params = ", ".join(p.params)
    decls = ", ".join(f"{n}: {d.kind}" for n, d in p.arrays.items())
    lines.append(f"{p.name}({params}; {decls}) {{")

    def emit(items, indent):
        pad = "    " * indent
        for item in items:
            if isinstance(item, Statement):
                lhs = item.lhs.array + "".join(f"[{aff_to_text(i)}]" for i in item.lhs.indices)
                lines.append(f"{pad}{lhs} = {val_to_text(item.rhs)};")
            elif isinstance(item, Loop):
                lines.append(f"{pad}for {item.var} = {aff_to_text(item.lower)} : {aff_to_text(item.upper)} {{")
                emit(item.body, indent + 1)
                lines.append(f"{pad}}}")

    emit(p.body, 1)
    lines.append("}")
    return "\n".join(lines)

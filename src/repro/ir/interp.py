"""Dense reference interpreter for IR programs.

Executes a program exactly as written, treating every array as a dense
NumPy array.  This is the *semantic oracle*: whatever the sparse compiler
produces must compute the same values (on the same input, densified).
"""

from __future__ import annotations

from typing import Dict, Mapping

import numpy as np

from repro.ir.expr import AffExpr, ValExpr, VBin, VConst, VNeg, VParam, VRead
from repro.ir.program import Loop, Program
from repro.ir.stmt import Statement


def _eval_val(e: ValExpr, env: Dict[str, int], arrays: Mapping[str, np.ndarray],
              params: Mapping[str, float]) -> float:
    if isinstance(e, VConst):
        return e.value
    if isinstance(e, VParam):
        return params[e.name]
    if isinstance(e, VRead):
        if e.array == "__var__":
            return e.indices[0].evaluate(env)
        idx = tuple(i.evaluate(env) for i in e.indices)
        a = arrays[e.array]
        return a[idx] if idx else a[()]
    if isinstance(e, VNeg):
        return -_eval_val(e.operand, env, arrays, params)
    if isinstance(e, VBin):
        l = _eval_val(e.left, env, arrays, params)
        r = _eval_val(e.right, env, arrays, params)
        if e.op == "+":
            return l + r
        if e.op == "-":
            return l - r
        if e.op == "*":
            return l * r
        return l / r
    raise TypeError(f"unknown ValExpr {type(e).__name__}")


def execute_dense(
    program: Program,
    arrays: Mapping[str, np.ndarray],
    params: Mapping[str, int],
) -> None:
    """Run ``program`` in place on the given arrays.

    ``params`` supplies integer values for the symbolic size parameters and
    any scalar value parameters.  Arrays are modified in place (matching the
    paper's convention, e.g. the TS result is stored back into ``b``).
    """
    for name in program.referenced_arrays():
        if name not in arrays:
            raise KeyError(f"program references array {name!r} not supplied")

    env: Dict[str, int] = {}
    # parameters are visible inside index expressions
    int_params = {k: int(v) for k, v in params.items() if float(v) == int(v)}

    def run(items):
        for item in items:
            if isinstance(item, Statement):
                idx_env = {**int_params, **env}
                idx = tuple(i.evaluate(idx_env) for i in item.lhs.indices)
                value = _eval_val(item.rhs, idx_env, arrays, params)
                a = arrays[item.lhs.array]
                if idx:
                    a[idx] = value
                else:
                    a[()] = value
            else:
                idx_env = {**int_params, **env}
                lo = item.lower.evaluate(idx_env)
                hi = item.upper.evaluate(idx_env)
                for v in range(lo, hi):
                    env[item.var] = v
                    run(item.body)
                    idx_env = {**int_params, **env}
                env.pop(item.var, None)

    run(program.body)

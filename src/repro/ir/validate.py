"""Static validation of IR programs.

Checks the assumptions the compiler relies on (paper Section 3):

- all memory accesses go through declared arrays with the right arity;
- all loop bounds and array indices are affine in surrounding loop
  variables and symbolic constants;
- loop variables are unique along any nesting path (shadowing would make
  qualified names ambiguous);
- no array aliasing is possible (array names are distinct by construction,
  so this amounts to the declaration check).
"""

from __future__ import annotations

from typing import List, Sequence, Set

from repro.ir.expr import AffExpr
from repro.ir.program import Loop, Program
from repro.ir.stmt import Statement


class ValidationError(ValueError):
    """Aggregates all problems found in a program."""

    def __init__(self, problems: Sequence[str]):
        super().__init__("; ".join(problems))
        self.problems = list(problems)


def validate_program(program: Program) -> None:
    """Raise :class:`ValidationError` if the program violates any compiler
    assumption; return silently otherwise."""
    problems: List[str] = []
    params = set(program.params)

    def check_affine(e: AffExpr, scope: Set[str], where: str) -> None:
        for v in e.variables():
            if v not in scope and v not in params:
                problems.append(f"{where}: unknown variable {v!r}")

    def walk(items, scope: Set[str], path: str):
        for item in items:
            if isinstance(item, Statement):
                where = f"{item.name or path}"
                decl = program.arrays.get(item.lhs.array)
                if decl is None:
                    problems.append(f"{where}: write to undeclared array {item.lhs.array!r}")
                elif len(item.lhs.indices) != decl.ndim:
                    problems.append(
                        f"{where}: {item.lhs.array!r} has {decl.ndim} dims, "
                        f"written with {len(item.lhs.indices)} indices"
                    )
                for i in item.lhs.indices:
                    check_affine(i, scope, where)
                for r in item.reads():
                    if r.array == "__var__":
                        check_affine(r.indices[0], scope, where)
                        continue
                    decl = program.arrays.get(r.array)
                    if decl is None:
                        problems.append(f"{where}: read of undeclared array {r.array!r}")
                    elif len(r.indices) != decl.ndim:
                        problems.append(
                            f"{where}: {r.array!r} has {decl.ndim} dims, "
                            f"read with {len(r.indices)} indices"
                        )
                    for i in r.indices:
                        check_affine(i, scope, where)
            elif isinstance(item, Loop):
                where = f"loop {item.var!r}"
                if item.var in scope:
                    problems.append(f"{where}: shadows an outer loop variable")
                if item.var in params:
                    problems.append(f"{where}: loop variable shadows parameter")
                check_affine(item.lower, scope, f"{where} lower bound")
                check_affine(item.upper, scope, f"{where} upper bound")
                walk(item.body, scope | {item.var}, where)

    walk(program.body, set(), program.name)
    if problems:
        raise ValidationError(problems)

"""Programs: imperfectly-nested affine loop nests over declared arrays.

A :class:`Program` is a sequence of statements nested within loops (paper
Section 3 assumption (i)).  Loop bounds are affine in surrounding loop
variables and symbolic parameters (assumption (iii)); loops use half-open
bounds ``lo <= v < hi`` matching the paper's C examples.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.ir.expr import AffExpr
from repro.ir.stmt import Statement
from repro.polyhedra.linexpr import LinExpr
from repro.polyhedra.system import Constraint, System, GE


class ArrayDecl:
    """Declaration of an array: number of dimensions and a role tag.

    ``kind`` is "matrix" (2-D), "dmat" (2-D, always dense), "vector" (1-D)
    or "scalar" (0-D); the sparse compiler only ever treats matrices as
    candidates for sparse storage.  A ``dmat`` is indexed like a matrix but
    is never a sparse-binding candidate — the dense block operands of SpMM
    (``Y = A X`` with ``X``, ``Y`` dense ``n×k`` panels) are the canonical
    use.
    """

    __slots__ = ("name", "ndim", "kind")

    KINDS = {"matrix": 2, "dmat": 2, "vector": 1, "scalar": 0}

    def __init__(self, name: str, kind: str):
        if kind not in self.KINDS:
            raise ValueError(f"unknown array kind {kind!r}")
        self.name = name
        self.kind = kind
        self.ndim = self.KINDS[kind]

    def __repr__(self):
        return f"{self.name}: {self.kind}"


class Loop:
    """``for var = lower ... upper-1 { body }``; body items are Loops or
    Statements."""

    __slots__ = ("var", "lower", "upper", "body")

    def __init__(self, var: str, lower, upper, body: Sequence[Union["Loop", Statement]]):
        self.var = var
        self.lower = AffExpr(lower)
        self.upper = AffExpr(upper)
        self.body = list(body)

    def __repr__(self):
        return f"for {self.var} = {self.lower!r} : {self.upper!r} ({len(self.body)} items)"


class StatementContext:
    """A statement together with its surrounding loops and syntactic
    position — everything the dependence analysis and the embedding
    machinery need to know about where the statement sits.
    """

    __slots__ = ("stmt", "loops", "position")

    def __init__(self, stmt: Statement, loops: Sequence[Loop], position: Sequence[int]):
        self.stmt = stmt
        self.loops = tuple(loops)
        # syntactic position: index within the body at each nesting depth,
        # including the top level; used for program-order comparisons.
        self.position = tuple(position)

    @property
    def name(self) -> str:
        assert self.stmt.name is not None
        return self.stmt.name

    @property
    def depth(self) -> int:
        return len(self.loops)

    @property
    def vars(self) -> Tuple[str, ...]:
        return tuple(l.var for l in self.loops)

    def qualified(self, var: str) -> str:
        """Qualified name of a local loop variable: 'S2.i'."""
        return f"{self.name}.{var}"

    def qualify_map(self) -> Dict[str, str]:
        return {v: self.qualified(v) for v in self.vars}

    def domain(self, params_in_scope: Sequence[str] = ()) -> System:
        """Iteration-domain polyhedron over qualified variable names.
        Parameters keep their unqualified names so two statements' domains
        share them."""
        qmap = self.qualify_map()
        cons: List[Constraint] = []
        for l in self.loops:
            v = LinExpr.variable(qmap[l.var])
            lo = l.lower.rename(qmap).lin
            hi = l.upper.rename(qmap).lin
            cons.append(Constraint(v - lo, GE))          # v >= lo
            cons.append(Constraint(hi - v - 1, GE))      # v <= hi - 1
        return System(cons)

    def common_depth(self, other: "StatementContext") -> int:
        """Number of loops shared (as syntax tree objects) with ``other``."""
        d = 0
        for a, b in zip(self.loops, other.loops):
            if a is b:
                d += 1
            else:
                break
        return d

    def precedes_syntactically(self, other: "StatementContext", at_depth: int) -> bool:
        """Does this statement come before ``other`` in program text, once
        the first ``at_depth`` loops' counters are all equal?  Compared via
        the syntactic position vectors below the common loops."""
        pa = self.position[at_depth:]
        pb = other.position[at_depth:]
        return pa < pb

    def __repr__(self):
        vs = ", ".join(self.vars)
        return f"<{self.name} in ({vs}) at {self.position}>"


class Program:
    """A named program: parameters (symbolic sizes), array declarations,
    and a body of loops/statements.  Statement names (S1, S2, ... in
    syntactic order) are assigned at construction, matching the paper's
    convention.
    """

    def __init__(
        self,
        name: str,
        params: Sequence[str],
        arrays: Mapping[str, ArrayDecl],
        body: Sequence[Union[Loop, Statement]],
        assumptions: Optional[System] = None,
    ):
        self.name = name
        self.params = tuple(params)
        self.arrays = dict(arrays)
        self.body = list(body)
        # default assumption: every parameter is non-negative
        if assumptions is None:
            assumptions = System(
                Constraint(LinExpr.variable(p), GE) for p in self.params
            )
        self.assumptions = assumptions
        self._name_statements()
        self._contexts = self._collect_contexts()

    # -- construction helpers --------------------------------------------
    def _name_statements(self) -> None:
        counter = [0]

        def walk(items):
            for item in items:
                if isinstance(item, Statement):
                    counter[0] += 1
                    item.name = f"S{counter[0]}"
                elif isinstance(item, Loop):
                    walk(item.body)
                else:
                    raise TypeError(f"program body items must be Loop/Statement, got {type(item).__name__}")

        walk(self.body)

    def _collect_contexts(self) -> List[StatementContext]:
        out: List[StatementContext] = []

        def walk(items, loops, pos_prefix):
            for idx, item in enumerate(items):
                if isinstance(item, Statement):
                    out.append(StatementContext(item, loops, pos_prefix + [idx]))
                else:
                    walk(item.body, loops + [item], pos_prefix + [idx])

        walk(self.body, [], [])
        return out

    # -- queries ------------------------------------------------------------
    def statements(self) -> List[StatementContext]:
        """Statement contexts in syntactic order."""
        return list(self._contexts)

    def statement(self, name: str) -> StatementContext:
        for ctx in self._contexts:
            if ctx.name == name:
                return ctx
        raise KeyError(f"no statement named {name!r}")

    def array(self, name: str) -> ArrayDecl:
        return self.arrays[name]

    def matrices(self) -> List[str]:
        return [n for n, d in self.arrays.items() if d.kind == "matrix"]

    def referenced_arrays(self) -> Tuple[str, ...]:
        seen, out = set(), []
        for ctx in self._contexts:
            for a in ctx.stmt.arrays():
                if a not in seen:
                    seen.add(a)
                    out.append(a)
        return tuple(out)

    def __repr__(self):
        return f"Program({self.name!r}, {len(self._contexts)} statements)"

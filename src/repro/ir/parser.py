"""A small C-like textual front-end for the dense-program IR.

Syntax (whitespace-insensitive)::

    ts(n; L: matrix, b: vector) {
        for j = 0 : n {
            b[j] = b[j] / L[j][j];
            for i = j+1 : n {
                b[i] = b[i] - L[i][j] * b[j];
            }
        }
    }

- Loop ranges are half-open: ``for v = lo : hi`` iterates ``lo <= v < hi``.
- Index expressions must be affine in loop variables and parameters
  (``2*i - j + n + 1`` is fine, ``i*j`` is rejected).
- Value expressions support ``+ - * /``, unary minus, parentheses, numeric
  literals, array reads, and scalar parameters.
"""

from __future__ import annotations

import re
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple, Union

from repro.ir.expr import AffExpr, ValExpr, VBin, VConst, VNeg, VParam, VRead
from repro.ir.program import ArrayDecl, Loop, Program
from repro.ir.stmt import ArrayRef, Statement

_TOKEN_RE = re.compile(
    r"""
    (?P<num>\d+(\.\d+)?([eE][-+]?\d+)?)
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<comment>\#[^\n]*|//[^\n]*)
  | (?P<sym>[()\[\]{};:,=+\-*/])
  | (?P<ws>\s+)
""",
    re.VERBOSE,
)


class ParseError(ValueError):
    """Raised on malformed program text, with position information."""

    def __init__(self, message: str, pos: int, text: str):
        line = text.count("\n", 0, pos) + 1
        col = pos - (text.rfind("\n", 0, pos) + 1) + 1
        super().__init__(f"{message} (line {line}, column {col})")
        self.pos = pos


class _Tokens:
    def __init__(self, text: str):
        self.text = text
        self.toks: List[Tuple[str, str, int]] = []
        pos = 0
        while pos < len(text):
            m = _TOKEN_RE.match(text, pos)
            if not m:
                raise ParseError(f"unexpected character {text[pos]!r}", pos, text)
            kind = m.lastgroup
            if kind not in ("ws", "comment"):
                self.toks.append((kind, m.group(), pos))
            pos = m.end()
        self.i = 0

    def peek(self) -> Tuple[str, str, int]:
        if self.i >= len(self.toks):
            return ("eof", "", len(self.text))
        return self.toks[self.i]

    def next(self) -> Tuple[str, str, int]:
        t = self.peek()
        self.i += 1
        return t

    def expect(self, value: str) -> None:
        kind, v, pos = self.next()
        if v != value:
            raise ParseError(f"expected {value!r}, found {v or 'end of input'!r}", pos, self.text)

    def accept(self, value: str) -> bool:
        kind, v, _ = self.peek()
        if v == value:
            self.i += 1
            return True
        return False

    def ident(self) -> str:
        kind, v, pos = self.next()
        if kind != "ident":
            raise ParseError(f"expected identifier, found {v!r}", pos, self.text)
        return v


class _Parser:
    def __init__(self, text: str):
        self.t = _Tokens(text)
        self.params: List[str] = []
        self.arrays: dict = {}
        self.loop_vars: List[str] = []

    # -- top level ---------------------------------------------------------
    def parse(self) -> Program:
        name = self.t.ident()
        self.t.expect("(")
        if not self.t.accept(";"):
            while True:
                self.params.append(self.t.ident())
                if self.t.accept(";"):
                    break
                self.t.expect(",")
        while True:
            an = self.t.ident()
            self.t.expect(":")
            kind = self.t.ident()
            if kind not in ArrayDecl.KINDS:
                raise ParseError(f"unknown array kind {kind!r}", self.t.peek()[2], self.t.text)
            self.arrays[an] = ArrayDecl(an, kind)
            if self.t.accept(")"):
                break
            self.t.expect(",")
        self.t.expect("{")
        body = self.items()
        kind, v, pos = self.t.peek()
        if kind != "eof":
            raise ParseError(f"trailing input {v!r}", pos, self.t.text)
        return Program(name, self.params, self.arrays, body)

    def items(self) -> List[Union[Loop, Statement]]:
        out: List[Union[Loop, Statement]] = []
        while not self.t.accept("}"):
            kind, v, pos = self.t.peek()
            if v == "for":
                out.append(self.forloop())
            elif kind == "ident":
                out.append(self.statement())
            else:
                raise ParseError(f"expected statement or 'for', found {v!r}", pos, self.t.text)
        return out

    def forloop(self) -> Loop:
        self.t.expect("for")
        var = self.t.ident()
        self.t.expect("=")
        lower = self.affexpr()
        self.t.expect(":")
        self.loop_vars.append(var)
        upper = self.affexpr()
        self.t.expect("{")
        body = self.items()
        self.loop_vars.pop()
        return Loop(var, lower, upper, body)

    def statement(self) -> Statement:
        array = self.t.ident()
        indices = self.index_list()
        if self.arrays.get(array) is None:
            raise ParseError(f"assignment to undeclared array {array!r}", self.t.peek()[2], self.t.text)
        self.t.expect("=")
        rhs = self.valexpr()
        self.t.expect(";")
        return Statement(ArrayRef(array, indices), rhs)

    def index_list(self) -> List[AffExpr]:
        out: List[AffExpr] = []
        while self.t.accept("["):
            out.append(self.affexpr())
            self.t.expect("]")
        return out

    # -- affine index expressions -------------------------------------------
    def affexpr(self) -> AffExpr:
        # parse with the value grammar, then fold to affine
        v = self.valexpr(affine_context=True)
        return _to_affine(v, self.t.text)

    # -- value expressions ----------------------------------------------------
    def valexpr(self, affine_context: bool = False) -> ValExpr:
        left = self.term(affine_context)
        while True:
            if self.t.accept("+"):
                left = VBin("+", left, self.term(affine_context))
            elif self.t.accept("-"):
                left = VBin("-", left, self.term(affine_context))
            else:
                return left

    def term(self, affine_context: bool) -> ValExpr:
        left = self.factor(affine_context)
        while True:
            if self.t.accept("*"):
                left = VBin("*", left, self.factor(affine_context))
            elif self.t.accept("/"):
                left = VBin("/", left, self.factor(affine_context))
            else:
                return left

    def factor(self, affine_context: bool) -> ValExpr:
        kind, v, pos = self.t.peek()
        if self.t.accept("-"):
            return VNeg(self.factor(affine_context))
        if self.t.accept("("):
            e = self.valexpr(affine_context)
            self.t.expect(")")
            return e
        if kind == "num":
            self.t.next()
            if "." in v or "e" in v or "E" in v:
                return VConst(float(v))
            return VConst(int(v))
        if kind == "ident":
            name = self.t.ident()
            if self.t.peek()[1] == "[":
                indices = self.index_list()
                if name not in self.arrays:
                    raise ParseError(f"read of undeclared array {name!r}", pos, self.t.text)
                return VRead(name, indices)
            if name in self.arrays and self.arrays[name].ndim == 0:
                return VRead(name, [])
            if affine_context:
                # loop var or parameter used as index
                return VRead("__var__", [AffExpr(name)])  # placeholder folded later
            if name in self.params:
                return VParam(name)
            if name in self.loop_vars:
                # a loop variable used as a scalar value
                return VRead("__var__", [AffExpr(name)])
            raise ParseError(f"unknown name {name!r} in expression", pos, self.t.text)
        raise ParseError(f"expected expression, found {v or 'end of input'!r}", pos, self.t.text)


def _to_affine(v: ValExpr, text: str) -> AffExpr:
    """Fold a value-expression tree (from affine context) into an AffExpr;
    rejects non-affine shapes like i*j."""

    def fold(e: ValExpr) -> AffExpr:
        if isinstance(e, VConst):
            if isinstance(e.value, float):
                if e.value != int(e.value):
                    raise ParseError("index expressions must be integral", 0, text)
                return AffExpr(int(e.value))
            return AffExpr(e.value)
        if isinstance(e, VRead) and e.array == "__var__":
            return e.indices[0]
        if isinstance(e, VNeg):
            return -fold(e.operand)
        if isinstance(e, VBin):
            if e.op == "+":
                return fold(e.left) + fold(e.right)
            if e.op == "-":
                return fold(e.left) - fold(e.right)
            if e.op == "*":
                l, r = fold(e.left), fold(e.right)
                if l.is_constant:
                    return r * int(l.const)
                if r.is_constant:
                    return l * int(r.const)
                raise ParseError("non-affine index expression (product of variables)", 0, text)
            raise ParseError("division is not allowed in index expressions", 0, text)
        raise ParseError("array reads are not allowed in index expressions", 0, text)

    return fold(v)


def parse_program(text: str) -> Program:
    """Parse program text into a :class:`~repro.ir.program.Program`."""
    return _Parser(text).parse()

"""Convenience constructors for building IR programs in Python.

Example (the paper's Figure 4, generic triangular solve)::

    ts = program(
        "ts", params=["n"],
        arrays={"L": matrix("L"), "b": vector("b")},
        body=[
            loop("j", 0, "n", [
                assign(ref("b", "j"), div(read("b", "j"), read("L", "j", "j"))),
                loop("i", aff("j") + 1, "n", [
                    assign(ref("b", "i"),
                           sub(read("b", "i"), mul(read("L", "i", "j"), read("b", "j")))),
                ]),
            ]),
        ],
    )
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence, Union

from repro.ir.expr import AffExpr, ValExpr, VBin, VConst, VNeg, VParam, VRead
from repro.ir.program import ArrayDecl, Loop, Program
from repro.ir.stmt import ArrayRef, Statement
from repro.polyhedra.system import System


def aff(x) -> AffExpr:
    """Affine index expression from an int, a variable name, or AffExpr."""
    return AffExpr(x)


def matrix(name: str = "") -> ArrayDecl:
    return ArrayDecl(name, "matrix")


def vector(name: str = "") -> ArrayDecl:
    return ArrayDecl(name, "vector")


def scalar(name: str = "") -> ArrayDecl:
    return ArrayDecl(name, "scalar")


def ref(array: str, *indices) -> ArrayRef:
    """An lvalue array reference: ``ref("b", "i")`` is ``b[i]``."""
    return ArrayRef(array, [AffExpr(i) for i in indices])


def read(array: str, *indices) -> VRead:
    """An rvalue array read: ``read("L", "i", "j")`` is ``L[i][j]``."""
    return VRead(array, [AffExpr(i) for i in indices])


def cnum(v: float) -> VConst:
    return VConst(v)


def param(name: str) -> VParam:
    return VParam(name)


def _val(x) -> ValExpr:
    if isinstance(x, ValExpr):
        return x
    if isinstance(x, (int, float)):
        return VConst(x)
    raise TypeError(f"cannot coerce {type(x).__name__} to ValExpr")


def add(a, b) -> VBin:
    return VBin("+", _val(a), _val(b))


def sub(a, b) -> VBin:
    return VBin("-", _val(a), _val(b))


def mul(a, b) -> VBin:
    return VBin("*", _val(a), _val(b))


def div(a, b) -> VBin:
    return VBin("/", _val(a), _val(b))


def neg(a) -> VNeg:
    return VNeg(_val(a))


def assign(lhs: ArrayRef, rhs) -> Statement:
    return Statement(lhs, _val(rhs))


def loop(var: str, lower, upper, body: Sequence) -> Loop:
    return Loop(var, lower, upper, body)


def program(
    name: str,
    params: Sequence[str],
    arrays: Mapping[str, ArrayDecl],
    body: Sequence,
    assumptions: Optional[System] = None,
) -> Program:
    # fill in declaration names from the mapping keys
    filled = {}
    for k, d in arrays.items():
        filled[k] = ArrayDecl(k, d.kind) if d.name != k else d
    return Program(name, params, filled, body, assumptions)

"""The high-level API: dense matrix programs as imperfectly-nested affine
loop nests.

This is the "dense matrix code" input of the paper (Section 1): the algorithm
designer writes as though every matrix were a random-access dense array; the
compiler (:mod:`repro.core`) restructures it to match the sparse formats the
matrices are actually stored in.

Submodules:

- :mod:`repro.ir.expr` — affine index expressions and scalar value
  expressions;
- :mod:`repro.ir.stmt` — array references and assignment statements;
- :mod:`repro.ir.program` — loops, programs, statement contexts;
- :mod:`repro.ir.builder` — convenience constructors;
- :mod:`repro.ir.parser` — a small C-like textual front-end;
- :mod:`repro.ir.printer` — pretty-printing back to that syntax;
- :mod:`repro.ir.interp` — a dense reference interpreter (the semantic
  oracle used by the test-suite);
- :mod:`repro.ir.validate` — static checks (affineness, declared arrays,
  loop-variable scoping).
"""

from repro.ir.expr import AffExpr, VConst, VParam, VRead, VBin, VNeg, ValExpr
from repro.ir.stmt import ArrayRef, Statement
from repro.ir.program import Loop, Program, StatementContext
from repro.ir.builder import (
    aff,
    assign,
    loop,
    matrix,
    mul,
    div,
    add,
    sub,
    neg,
    program,
    read,
    ref,
    vector,
    scalar,
    cnum,
)
from repro.ir.parser import parse_program
from repro.ir.printer import program_to_text
from repro.ir.interp import execute_dense
from repro.ir.validate import validate_program

__all__ = [
    "AffExpr",
    "ValExpr",
    "VConst",
    "VParam",
    "VRead",
    "VBin",
    "VNeg",
    "ArrayRef",
    "Statement",
    "Loop",
    "Program",
    "StatementContext",
    "aff",
    "assign",
    "loop",
    "matrix",
    "vector",
    "scalar",
    "mul",
    "div",
    "add",
    "sub",
    "neg",
    "cnum",
    "program",
    "read",
    "ref",
    "parse_program",
    "program_to_text",
    "execute_dense",
    "validate_program",
]

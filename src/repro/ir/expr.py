"""Expressions of the dense-program IR.

Two expression languages, deliberately separate:

- :class:`AffExpr` — *index* expressions.  These must be affine in the
  surrounding loop variables and symbolic constants (paper Section 3
  assumption (iii)); they index arrays and bound loops, and are the objects
  the polyhedral machinery manipulates.
- :class:`ValExpr` — *value* expressions.  Arbitrary arithmetic over array
  reads and literals; the compiler never reasons about their algebra, only
  about which array elements they read.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterator, Mapping, Sequence, Tuple, Union

from repro.polyhedra.linexpr import LinExpr


class AffExpr:
    """An affine index expression: rational-coefficient combination of loop
    variables and symbolic parameters, plus a constant.

    Wraps :class:`~repro.polyhedra.linexpr.LinExpr` with IR-level niceties
    (operator overloading against ints/strings, evaluation over integer
    environments).
    """

    __slots__ = ("lin",)

    def __init__(self, lin: Union[LinExpr, int, str, "AffExpr"]):
        if isinstance(lin, AffExpr):
            lin = lin.lin
        elif isinstance(lin, int):
            lin = LinExpr.constant(lin)
        elif isinstance(lin, str):
            lin = LinExpr.variable(lin)
        elif not isinstance(lin, LinExpr):
            raise TypeError(f"cannot build AffExpr from {type(lin).__name__}")
        object.__setattr__(self, "lin", lin)

    def __setattr__(self, *a):
        raise AttributeError("AffExpr is immutable")

    def __reduce__(self):
        # pickle via the constructor (slot protocol would setattr on load)
        return (AffExpr, (self.lin,))

    # -- queries --------------------------------------------------------
    def variables(self) -> Tuple[str, ...]:
        return self.lin.variables()

    def coeff(self, name: str) -> Fraction:
        return self.lin.coeff(name)

    @property
    def const(self) -> Fraction:
        return self.lin.const

    @property
    def is_constant(self) -> bool:
        return self.lin.is_constant

    def evaluate(self, env: Mapping[str, int]) -> int:
        v = self.lin.evaluate(env)
        if v.denominator != 1:
            raise ValueError(f"index expression evaluated to non-integer {v}")
        return int(v)

    def rename(self, mapping: Mapping[str, str]) -> "AffExpr":
        return AffExpr(self.lin.rename(mapping))

    def substitute(self, bindings: Mapping[str, "AffExpr"]) -> "AffExpr":
        return AffExpr(self.lin.substitute({k: v.lin for k, v in bindings.items()}))

    # -- algebra ----------------------------------------------------------
    def __add__(self, other) -> "AffExpr":
        return AffExpr(self.lin + AffExpr(other).lin)

    __radd__ = __add__

    def __sub__(self, other) -> "AffExpr":
        return AffExpr(self.lin - AffExpr(other).lin)

    def __rsub__(self, other) -> "AffExpr":
        return AffExpr(AffExpr(other).lin - self.lin)

    def __neg__(self) -> "AffExpr":
        return AffExpr(-self.lin)

    def __mul__(self, scalar: int) -> "AffExpr":
        return AffExpr(self.lin * scalar)

    __rmul__ = __mul__

    # -- protocol ----------------------------------------------------------
    def __eq__(self, other) -> bool:
        if isinstance(other, int):
            other = AffExpr(other)
        if not isinstance(other, AffExpr):
            return NotImplemented
        return self.lin == other.lin

    def __hash__(self) -> int:
        return hash(self.lin)

    def __repr__(self) -> str:
        return repr(self.lin)


# ---------------------------------------------------------------------------
# Value expressions
# ---------------------------------------------------------------------------

class ValExpr:
    """Base class of scalar value expressions."""

    __slots__ = ()

    def reads(self) -> Iterator["VRead"]:
        """All array reads in this expression, left-to-right."""
        raise NotImplementedError

    def rename_vars(self, mapping: Mapping[str, str]) -> "ValExpr":
        raise NotImplementedError


class VConst(ValExpr):
    """A numeric literal."""

    __slots__ = ("value",)

    def __init__(self, value: float):
        self.value = value

    def reads(self):
        return iter(())

    def rename_vars(self, mapping):
        return self

    def __eq__(self, other):
        return isinstance(other, VConst) and self.value == other.value

    def __hash__(self):
        return hash(("VConst", self.value))

    def __repr__(self):
        return repr(self.value)


class VParam(ValExpr):
    """A scalar symbolic parameter (e.g. alpha in alpha*A*x)."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def reads(self):
        return iter(())

    def rename_vars(self, mapping):
        return self

    def __eq__(self, other):
        return isinstance(other, VParam) and self.name == other.name

    def __hash__(self):
        return hash(("VParam", self.name))

    def __repr__(self):
        return self.name


class VRead(ValExpr):
    """A read of an array element; indices are affine expressions."""

    __slots__ = ("array", "indices")

    def __init__(self, array: str, indices: Sequence[AffExpr]):
        self.array = array
        self.indices = tuple(AffExpr(i) for i in indices)

    def reads(self):
        yield self

    def rename_vars(self, mapping):
        return VRead(self.array, tuple(i.rename(mapping) for i in self.indices))

    def __eq__(self, other):
        return (
            isinstance(other, VRead)
            and self.array == other.array
            and self.indices == other.indices
        )

    def __hash__(self):
        return hash(("VRead", self.array, self.indices))

    def __repr__(self):
        idx = "".join(f"[{i!r}]" for i in self.indices)
        return f"{self.array}{idx}"


class VBin(ValExpr):
    """Binary arithmetic: + - * /."""

    __slots__ = ("op", "left", "right")

    OPS = ("+", "-", "*", "/")

    def __init__(self, op: str, left: ValExpr, right: ValExpr):
        if op not in self.OPS:
            raise ValueError(f"unknown binary op {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def reads(self):
        yield from self.left.reads()
        yield from self.right.reads()

    def rename_vars(self, mapping):
        return VBin(self.op, self.left.rename_vars(mapping), self.right.rename_vars(mapping))

    def __eq__(self, other):
        return (
            isinstance(other, VBin)
            and self.op == other.op
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self):
        return hash(("VBin", self.op, self.left, self.right))

    def __repr__(self):
        return f"({self.left!r} {self.op} {self.right!r})"


class VNeg(ValExpr):
    """Unary negation."""

    __slots__ = ("operand",)

    def __init__(self, operand: ValExpr):
        self.operand = operand

    def reads(self):
        yield from self.operand.reads()

    def rename_vars(self, mapping):
        return VNeg(self.operand.rename_vars(mapping))

    def __eq__(self, other):
        return isinstance(other, VNeg) and self.operand == other.operand

    def __hash__(self):
        return hash(("VNeg", self.operand))

    def __repr__(self):
        return f"(-{self.operand!r})"

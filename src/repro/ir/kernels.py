"""Canonical dense-program kernels, written once in the high-level API.

These are the BLAS routines of paper Figure 3 (and the paper's running
examples), expressed exactly as an algorithm designer would write them for
dense matrices.  The sparse compiler instantiates them for any format.

Every function returns a *fresh* :class:`~repro.ir.program.Program` (programs
carry statement names and are cheap to rebuild).
"""

from __future__ import annotations

from repro.ir.parser import parse_program
from repro.ir.program import Program


def mvm() -> Program:
    """Matrix–vector multiplication ``y = A x`` (imperfectly nested: the
    initialization of ``y[i]`` sits outside the ``j`` loop)."""
    return parse_program(
        """
        mvm(m, n; A: matrix, x: vector, y: vector) {
            for i = 0 : m {
                y[i] = 0;
                for j = 0 : n {
                    y[i] = y[i] + A[i][j] * x[j];
                }
            }
        }
        """
    )


def mvm_acc() -> Program:
    """Accumulating MVM ``y += A x`` (perfectly nested, no init statement)."""
    return parse_program(
        """
        mvm_acc(m, n; A: matrix, x: vector, y: vector) {
            for i = 0 : m {
                for j = 0 : n {
                    y[i] = y[i] + A[i][j] * x[j];
                }
            }
        }
        """
    )


def mvm_t() -> Program:
    """Transposed MVM ``y = A^T x``."""
    return parse_program(
        """
        mvm_t(m, n; A: matrix, x: vector, y: vector) {
            for j = 0 : n {
                y[j] = 0;
                for i = 0 : m {
                    y[j] = y[j] + A[i][j] * x[i];
                }
            }
        }
        """
    )


def ts_lower() -> Program:
    """Lower triangular solve, the paper's Figure 4 running example:
    ``b := L^{-1} b``, column-oriented dense form."""
    return parse_program(
        """
        ts(n; L: matrix, b: vector) {
            for j = 0 : n {
                b[j] = b[j] / L[j][j];
                for i = j+1 : n {
                    b[i] = b[i] - L[i][j] * b[j];
                }
            }
        }
        """
    )


def ts_lower_row() -> Program:
    """Lower triangular solve, row-oriented (inner dot product) dense form.
    Semantically the same solve; included to show the compiler reaches the
    same data-centric codes from either starting point."""
    return parse_program(
        """
        ts_row(n; L: matrix, b: vector) {
            for i = 0 : n {
                for j = 0 : i {
                    b[i] = b[i] - L[i][j] * b[j];
                }
                b[i] = b[i] / L[i][i];
            }
        }
        """
    )


def ts_upper() -> Program:
    """Upper triangular solve ``b := U^{-1} b`` (backward substitution,
    column-oriented)."""
    return parse_program(
        """
        ts_upper(n; U: matrix, b: vector) {
            for jr = 0 : n {
                b[n-1-jr] = b[n-1-jr] / U[n-1-jr][n-1-jr];
                for ir = jr+1 : n {
                    b[n-1-ir] = b[n-1-ir] - U[n-1-ir][n-1-jr] * b[n-1-jr];
                }
            }
        }
        """
    )


def smvm_two() -> Program:
    """``y = (A + A) x`` with two separate references to A — exercises
    common enumeration (join) of two references to the same sparse matrix."""
    return parse_program(
        """
        smvm_two(m, n; A: matrix, x: vector, y: vector) {
            for i = 0 : m {
                y[i] = 0;
                for j = 0 : n {
                    y[i] = y[i] + A[i][j] * x[j] + A[i][j] * x[j];
                }
            }
        }
        """
    )


def scale() -> Program:
    """In-place scaling of every stored element: ``A[i][j] *= alpha``.
    A write to the sparse matrix without fill (updates stored entries only)."""
    return parse_program(
        """
        scale(m, n, alpha; A: matrix) {
            for i = 0 : m {
                for j = 0 : n {
                    A[i][j] = alpha * A[i][j];
                }
            }
        }
        """
    )


def frobenius() -> Program:
    """Sum of squares of all elements into a scalar accumulator."""
    return parse_program(
        """
        frob(m, n; A: matrix, acc: scalar) {
            for i = 0 : m {
                for j = 0 : n {
                    acc = acc + A[i][j] * A[i][j];
                }
            }
        }
        """
    )


def row_sums() -> Program:
    """Row sums ``s[i] = sum_j A[i][j]`` (imperfect nest with init)."""
    return parse_program(
        """
        row_sums(m, n; A: matrix, s: vector) {
            for i = 0 : m {
                s[i] = 0;
                for j = 0 : n {
                    s[i] = s[i] + A[i][j];
                }
            }
        }
        """
    )


def col_sums() -> Program:
    """Column sums ``s[j] = sum_i A[i][j]``."""
    return parse_program(
        """
        col_sums(m, n; A: matrix, s: vector) {
            for j = 0 : n {
                s[j] = 0;
                for i = 0 : m {
                    s[j] = s[j] + A[i][j];
                }
            }
        }
        """
    )


def diag_extract() -> Program:
    """Extract the diagonal: ``d[i] = A[i][i]``."""
    return parse_program(
        """
        diag(n; A: matrix, d: vector) {
            for i = 0 : n {
                d[i] = A[i][i];
            }
        }
        """
    )


def add_mvm() -> Program:
    """``y = (A + B) x`` with A and B independently sparse — each term is
    its own statement so each matrix gets its own enumeration (writing both
    products into one statement would wrongly intersect the structures)."""
    return parse_program(
        """
        add_mvm(m, n; A: matrix, B: matrix, x: vector, y: vector) {
            for i = 0 : m {
                y[i] = 0;
                for j = 0 : n {
                    y[i] = y[i] + A[i][j] * x[j];
                }
                for k = 0 : n {
                    y[i] = y[i] + B[i][k] * x[k];
                }
            }
        }
        """
    )


def spmm() -> Program:
    """Sparse-times-dense-block multiplication ``Y = A X`` with ``X`` an
    ``n × k`` dense panel and ``Y`` ``m × k`` (the multi-RHS workhorse).
    ``X`` and ``Y`` are declared ``dmat`` — 2-D but never sparse-binding
    candidates — and the imperfect nest keeps the per-row init inside the
    ``i`` loop so each row of ``Y`` accumulates in the same entry order as
    the matvec kernel (one column of the panel reproduces ``mvm``
    bitwise)."""
    return parse_program(
        """
        spmm(m, n, k; A: matrix, X: dmat, Y: dmat) {
            for i = 0 : m {
                for p = 0 : k {
                    Y[i][p] = 0;
                }
                for j = 0 : n {
                    for p2 = 0 : k {
                        Y[i][p2] = Y[i][p2] + A[i][j] * X[j][p2];
                    }
                }
            }
        }
        """
    )


def spmm_t() -> Program:
    """Transposed SpMM ``Y = A^T X`` (``X`` is ``m × k``, ``Y`` ``n × k``);
    column-of-panel order mirrors ``mvm_t``."""
    return parse_program(
        """
        spmm_t(m, n, k; A: matrix, X: dmat, Y: dmat) {
            for j = 0 : n {
                for p = 0 : k {
                    Y[j][p] = 0;
                }
                for i = 0 : m {
                    for p2 = 0 : k {
                        Y[j][p2] = Y[j][p2] + A[i][j] * X[i][p2];
                    }
                }
            }
        }
        """
    )


def spgemm() -> Program:
    """Sparse×sparse multiplication ``C = A B`` in its dense-output panel
    form: both ``A`` and ``B`` are sparse-binding candidates (the compiler
    realizes the cross-matrix join — enumerate ``A``, enumerate-or-search
    ``B``'s row), while ``C`` is a ``dmat`` because the IR declares output
    structure up front.  The *computed*-structure product (output pattern
    discovered by a symbolic pass) lives in :func:`repro.blas.api.spgemm`;
    this kernel is the workload-axis form the selection and serving
    surfaces compile and measure.  ``B`` may also be left unbound, in
    which case it is an addressable dense operand like ``X`` in ``spmm``.
    """
    return parse_program(
        """
        spgemm(m, n, k; A: matrix, B: matrix, C: dmat) {
            for i = 0 : m {
                for p = 0 : k {
                    C[i][p] = 0;
                }
                for j = 0 : n {
                    for p2 = 0 : k {
                        C[i][p2] = C[i][p2] + A[i][j] * B[j][p2];
                    }
                }
            }
        }
        """
    )


ALL_KERNELS = {
    "mvm": mvm,
    "mvm_acc": mvm_acc,
    "mvm_t": mvm_t,
    "ts_lower": ts_lower,
    "ts_lower_row": ts_lower_row,
    "ts_upper": ts_upper,
    "smvm_two": smvm_two,
    "scale": scale,
    "frobenius": frobenius,
    "row_sums": row_sums,
    "col_sums": col_sums,
    "diag_extract": diag_extract,
    "add_mvm": add_mvm,
    "spmm": spmm,
    "spmm_t": spmm_t,
    "spgemm": spgemm,
}

"""Cost-model constants.

The unit is "one enumeration step of a stored entry".  Constants are
deliberately coarse — the model only has to *rank* candidate plans
(paper Section 4.2), not predict wall-clock time.
"""

# per-visit cost of walking a stored enumeration
ENUM_VISIT = 1.0

# extra per-entry cost of gather-and-sort enumeration (the log factor is
# added separately)
SORT_GATHER = 1.0

# cost of one search, by axis search capability
SEARCH_DIRECT = 1.0
SEARCH_BINARY_PER_LOG = 1.0
SEARCH_LINEAR_PER_ENTRY = 1.0

# interval counting: cost of one counter step even when the search misses
INTERVAL_STEP = 0.5

# executing one statement instance / evaluating one guard
EXEC_COST = 1.0
GUARD_COST = 0.25

# binding/unification bookkeeping per loop iteration
BIND_COST = 0.25

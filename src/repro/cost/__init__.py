"""Cost model for enumeration plans (paper Figure 11)."""

from repro.cost.model import plan_cost, step_totals

__all__ = ["plan_cost", "step_totals"]

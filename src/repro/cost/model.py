"""Cost estimation for enumeration plans (paper Figure 11).

The grammar of costs mirrors the paper's:

    Cost(for iterator { S })          = EnumCost(iterator) * Cost(S)
    Cost(common enum of itr1, itr2)   = CommonEnumCost(itr1, itr2) * Cost(S)
    Cost(search + S)                  = SearchCost + Cost(S)
    Cost(guard)                       = 1
    Cost(S1; S2)                      = Cost(S1) + Cost(S2)

``EnumCost`` depends on whether the enumeration direction is supported by
the format (stored order), realized by interval counting + search, or by
gather-and-sort; ``SearchCost`` on the search capability of the axis
(direct / binary / linear); ``CommonEnumCost`` on how the member references
are combined (shared state is free, searches pay per value).

Because the compiler runs against a concrete matrix instance, trip counts
come from the instance itself (rows, nnz, diagonal count, ...), not from
symbolic guesses.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, List, Mapping, Optional, Tuple

from repro.core.plan import (
    DRIVER,
    ExecNode,
    IntervalEnum,
    LoopNode,
    Plan,
    PlanNode,
    SEARCH,
    SHARED,
    SearchEnum,
    SortedEnum,
    StoredEnum,
    VarLoopNode,
)
from repro.cost import params as P
from repro.formats.base import SparseFormat
from repro.formats.views import BINARY, DIRECT, LINEAR, NOSEARCH


#: guards creation of the per-instance memo dict and insertion into it
#: (same pattern as the FM/pair memos); lookups stay lock-free ``dict.get``
_STEP_TOTALS_LOCK = threading.Lock()


def step_totals(fmt: SparseFormat, path_id: str) -> List[float]:
    """Total number of (key, state) pairs produced at each step of a path,
    summed over all prefixes — e.g. CSR "rows": [m, nnz].

    Memoized per format *instance* (instances are immutable once built), so
    unknown formats pay the exact enumeration measurement once.  Insertion
    is locked: concurrent auto-mode selections share instances, and an
    unguarded ``__dict__.setdefault`` race could hand two threads two
    different memo dicts, losing one's entries.  First writer wins, so
    every caller converges on one shared list per path."""
    cache: Optional[Dict[str, List[float]]] = fmt.__dict__.get(
        "_step_totals_cache")
    if cache is not None:
        hit = cache.get(path_id)
        if hit is not None:
            return hit
    computed = _step_totals_uncached(fmt, path_id)
    with _STEP_TOTALS_LOCK:
        cache = fmt.__dict__.setdefault("_step_totals_cache", {})
        return cache.setdefault(path_id, computed)


def _step_totals_uncached(fmt: SparseFormat, path_id: str) -> List[float]:
    name = fmt.format_name
    m, n = fmt.nrows, fmt.ncols
    nnz = max(1, fmt.nnz)
    if name == "dense":
        return [m, m * n] if path_id == "rowmajor" else [n, m * n]
    if name == "csr":
        return [m, nnz]
    if name == "csc":
        return [n, nnz]
    if name == "coo":
        return [nnz]
    if name == "ell":
        return [m, nnz]
    if name == "dia":
        ndiags = max(1, len(getattr(fmt, "diags", [1])))
        return [ndiags, nnz]
    if name == "jad":
        if path_id == "flat":
            return [nnz]
        return [m, nnz]
    if name == "bsr":
        nblocks = max(1, getattr(fmt, "blockind").size)
        s = fmt.block_size
        return [fmt.block_rows, nblocks, nblocks * s, nblocks * s * s]
    if name == "msr":
        if path_id == "diag":
            return [fmt.ndiag]
        return [m, max(1, getattr(fmt, "values").size)]
    # unknown format: measure by enumerating (exact, possibly slow)
    return _measured_step_totals(fmt, path_id)


def _measured_step_totals(fmt: SparseFormat, path_id: str) -> List[float]:
    path = fmt.path(path_id)
    rt = fmt.runtime(path_id)
    totals = [0.0] * len(path.steps)

    def walk(step: int, prefix: Tuple):
        if step == len(path.steps):
            return
        for _keys, st in rt.enumerate(step, prefix):
            totals[step] += 1
            walk(step + 1, prefix + (st,))

    walk(0, ())
    return totals


def _search_cost(fmt: SparseFormat, path_id: str, step: int, avg_width: float) -> float:
    path = fmt.path(path_id)
    axes = path.steps[step].axes
    cost = 0.0
    for a in axes:
        if a.search == DIRECT or a.interval:
            cost += P.SEARCH_DIRECT
        elif a.search == BINARY:
            cost += P.SEARCH_BINARY_PER_LOG * max(1.0, math.log2(max(2.0, avg_width)))
        else:
            cost += P.SEARCH_LINEAR_PER_ENTRY * avg_width
    return cost


def plan_cost(plan: Plan, param_values: Optional[Mapping[str, int]] = None,
              fmts: Optional[Mapping[str, SparseFormat]] = None,
              guard_counts: Optional[Mapping[int, int]] = None) -> float:
    """Estimated execution cost of a plan on the bound matrix instances.

    ``fmts`` optionally overrides the format instance consulted for each
    array name (falling back to the instance baked into the plan's refs) —
    the compilation cache uses this to re-rank a structurally-identical
    cached plan against the statistics of a *new* matrix instance without
    rebuilding the plan.

    ``guard_counts`` optionally overrides the number of guards charged per
    :class:`ExecNode`, keyed by ``id(node)`` — the cache uses this to cost
    an already guard-simplified plan as if its pristine guards were still
    attached, without mutating the (possibly concurrently executing) plan."""
    param_values = dict(param_values or {})
    fmts = fmts or {}
    guard_counts = guard_counts or {}

    def fmt_of(ref):
        return fmts.get(ref.array, ref.fmt)

    def loop_stats(method) -> Tuple[float, float, float]:
        """(trips per visit, per-trip enumeration cost, fixed per-visit cost)."""
        fmt = fmt_of(method.driver)
        totals = step_totals(fmt, method.driver.path.path_id)
        step = method.step
        outer = totals[step - 1] if step > 0 else 1.0
        width = totals[step] / max(1.0, outer)
        if isinstance(method, StoredEnum):
            return width, P.ENUM_VISIT, 0.0
        if isinstance(method, SortedEnum):
            logw = max(1.0, math.log2(max(2.0, width)))
            return width, P.ENUM_VISIT + P.SORT_GATHER + logw, 0.0
        if isinstance(method, SearchEnum):
            # one search; at most one trip survives
            return 1.0, _search_cost(fmt, method.driver.path.path_id, step, width), 0.0
        if isinstance(method, IntervalEnum):
            # the counter walks the whole axis range; hits are `width`
            rng = None
            ar = None
            axes = method.driver.path.steps[step].names
            if axes:
                ar = fmt.axis_range(axes[0])
            span = float(ar[1] - ar[0]) if ar else width
            search = _search_cost(fmt, method.driver.path.path_id, step, width)
            # cost charged per *hit*: amortize counter steps over hits
            per_hit = search + P.INTERVAL_STEP * span / max(1.0, width)
            return width, per_hit, 0.0
        raise TypeError(f"unknown method {method!r}")

    def node_cost(node: PlanNode) -> float:
        if isinstance(node, ExecNode):
            nguards = guard_counts.get(id(node), len(node.guards))
            return P.EXEC_COST + P.GUARD_COST * nguards
        if isinstance(node, VarLoopNode):
            lo = _eval_guess(node.lo, param_values)
            hi = _eval_guess(node.hi, param_values)
            trips = max(0.0, hi - lo)
            body = sum(node_cost(c) for c in node.body)
            return trips * (P.BIND_COST * len(node.binds) + body)
        if isinstance(node, LoopNode):
            trips, per_trip, fixed = loop_stats(node.method)
            search = 0.0
            for role in node.roles:
                if role.role == SEARCH:
                    fmt = fmt_of(role.ref)
                    totals = step_totals(fmt, role.ref.path.path_id)
                    outer = totals[role.step - 1] if role.step > 0 else 1.0
                    width = totals[role.step] / max(1.0, outer)
                    search += _search_cost(fmt, role.ref.path.path_id, role.step, width)
            body = sum(node_cost(c) for c in node.body)
            before = sum(node_cost(c) for c in node.before)
            after = sum(node_cost(c) for c in node.after)
            per_iter = per_trip + search + P.BIND_COST * len(node.binds) + body
            return fixed + before + after + trips * per_iter
        raise TypeError(f"unknown node {node!r}")

    return sum(node_cost(n) for n in plan.nodes)


def _eval_guess(expr, param_values: Mapping[str, int]) -> float:
    """Evaluate a bound expression, treating unbound (inner) variables as 0
    — a crude but monotone estimate for data-dependent trip counts."""
    total = float(expr.const)
    for v in expr.variables():
        total += float(expr.coeff(v)) * float(param_values.get(v, 0))
    return total

"""repro — a reproduction of "A Framework for Sparse Matrix Code Synthesis
from High-level Specifications" (Ahmed, Mateev, Pingali, Stodghill, SC 2000):
the Bernoulli sparse compiler.

Quickstart::

    import numpy as np
    from repro import compile_kernel, kernels, as_format

    A = as_format(np.array([[2., 0.], [1., 3.]]), "csr")
    k = compile_kernel(kernels.mvm(), {"A": A})
    x = np.array([1., 1.]); y = np.zeros(2)
    k({"A": A, "x": x, "y": y}, {"m": 2, "n": 2})

Public surface:

- :func:`compile_kernel` / :class:`CompiledKernel` — the compiler;
- :func:`compile_many` / :class:`BatchResult` — the thread-pooled batch
  driver with per-item failure isolation;
- :class:`CompileServer` / :class:`ServiceClient` — the
  compilation-as-a-service daemon and its RPC client (one warm cache
  serving a fleet; ``python -m repro.core.daemon --socket ...``);
- :mod:`repro.ir` (and :mod:`repro.ir.kernels` as ``repro.kernels``) — the
  dense-program high-level API;
- :mod:`repro.formats` — formats, the view grammar, I/O, generators
  (``as_format`` / ``convert`` re-exported here);
- :mod:`repro.blas` — hand-written and generic baseline kernels;
- :mod:`repro.solvers` — format-independent iterative methods, plus
  :class:`~repro.solvers.context.SolverContext` (re-exported here): one-time
  kernel setup so every solver iteration runs through compiled (optionally
  native) kernels with reused workspaces.
"""

from repro.core.compiler import CompiledKernel, compile_kernel
from repro.core.service import BatchResult, CompileOutcome, compile_many
from repro.formats.convert import as_format, convert
from repro.ir import parse_program, program_to_text, execute_dense
from repro.ir import kernels
from repro.search.format_select import select_format
from repro.solvers.context import SolverContext

# lazy (PEP 562) so `python -m repro.core.daemon` doesn't re-execute an
# already-imported module and plain `import repro` stays socket-free
_LAZY = {
    "CompileServer": "repro.core.daemon",
    "ServiceClient": "repro.core.client",
}


def __getattr__(name):
    modname = _LAZY.get(name)
    if modname is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(modname), name)
    globals()[name] = value
    return value


__version__ = "1.0.0"

__all__ = [
    "CompiledKernel",
    "compile_kernel",
    "BatchResult",
    "CompileOutcome",
    "compile_many",
    "CompileServer",
    "ServiceClient",
    "as_format",
    "convert",
    "parse_program",
    "program_to_text",
    "execute_dense",
    "kernels",
    "select_format",
    "SolverContext",
    "__version__",
]

"""Per-format code emitters for the specialized Python backend.

Each emitter knows how to inline one format's raw-array operations — loops
over ``rowptr``/``colind``, binary searches, permutation lookups — exactly
the code a hand-written library kernel would contain (the point of paper
Section 5's "structurally equivalent to the NIST C library").

An emitter serves one *reference* (one matrix instance bound to one access
path) and provides:

- ``prologue(out)`` — unpack the instance's arrays into local names;
- ``loop(out, step, states, reverse)`` — open the stored enumeration of a
  step, returning (key names, new state names);  the caller closes the
  block by dedenting;
- ``interval(out, step, states)`` — (lo, hi) expressions for interval
  steps, or None;
- ``search(out, step, states, key_exprs)`` — emit a search, returning
  (state names, guard expression that is true when found);
- ``get(states)`` / ``set(states, value)`` — value access expressions.

``out`` is the :class:`SourceWriter`.  States are python variable names
accumulated per step.  The :class:`GenericEmitter` falls back to dynamic
calls through the abstract runtime for formats without a specialized
emitter (user-defined formats stay supported).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.spaces import SparseRef


class SourceWriter:
    """Indented line buffer with fresh-name generation."""

    def __init__(self):
        self.lines: List[str] = []
        self.indent = 0
        self._counter = 0

    def fresh(self, stem: str) -> str:
        self._counter += 1
        return f"{stem}{self._counter}"

    def emit(self, line: str = "") -> None:
        self.lines.append("    " * self.indent + line if line else "")

    def push(self) -> None:
        self.indent += 1

    def pop(self) -> None:
        self.indent -= 1

    def text(self) -> str:
        return "\n".join(self.lines)


class BaseEmitter:
    """Common bookkeeping: a unique prefix per reference group."""

    def __init__(self, ref: SparseRef, name: str):
        self.ref = ref
        self.fmt = ref.fmt
        self.name = name  # python-safe unique prefix, e.g. "A0"

    # default: no interval
    def interval(self, out: SourceWriter, step: int, states: Sequence[str]):
        return None

    def loop_reversed_supported(self) -> bool:
        return True


class CsrEmitter(BaseEmitter):
    def prologue(self, out: SourceWriter, src: str) -> None:
        out.emit(f"{self.name}_rowptr = {src}.rowptr")
        out.emit(f"{self.name}_colind = {src}.colind")
        out.emit(f"{self.name}_values = {src}.values")
        out.emit(f"{self.name}_m = {src}.nrows")

    def loop(self, out: SourceWriter, step: int, states: Sequence[str], reverse: bool):
        if step == 0:
            r = out.fresh(f"{self.name}_r")
            rng = (f"range({self.name}_m - 1, -1, -1)" if reverse
                   else f"range({self.name}_m)")
            out.emit(f"for {r} in {rng}:")
            out.push()
            return [r], [r]
        (r,) = states
        jj = out.fresh(f"{self.name}_jj")
        c = out.fresh(f"{self.name}_c")
        if reverse:
            out.emit(f"for {jj} in range({self.name}_rowptr[{r}+1] - 1, "
                     f"{self.name}_rowptr[{r}] - 1, -1):")
        else:
            out.emit(f"for {jj} in range({self.name}_rowptr[{r}], "
                     f"{self.name}_rowptr[{r}+1]):")
        out.push()
        out.emit(f"{c} = {self.name}_colind[{jj}]")
        return [c], [jj]

    def interval(self, out: SourceWriter, step: int, states: Sequence[str]):
        if step == 0:
            return ("0", f"{self.name}_m")
        return None

    def search(self, out: SourceWriter, step: int, states: Sequence[str],
               key_exprs: Sequence[str]):
        if step == 0:
            r = out.fresh(f"{self.name}_r")
            out.emit(f"{r} = {key_exprs[0]}")
            return [r], f"0 <= {r} < {self.name}_m"
        (r,) = states
        jj = out.fresh(f"{self.name}_jj")
        ok = out.fresh(f"{self.name}_ok")
        out.emit(f"{jj} = _bisect({self.name}_colind, {key_exprs[0]}, "
                 f"{self.name}_rowptr[{r}], {self.name}_rowptr[{r}+1])")
        out.emit(f"{ok} = {jj} >= 0")
        return [jj], ok

    def get(self, states: Sequence[str]) -> str:
        return f"{self.name}_values[{states[1]}]"

    def set(self, out: SourceWriter, states: Sequence[str], value: str) -> None:
        out.emit(f"{self.name}_values[{states[1]}] = {value}")


class CscEmitter(BaseEmitter):
    def prologue(self, out: SourceWriter, src: str) -> None:
        out.emit(f"{self.name}_colptr = {src}.colptr")
        out.emit(f"{self.name}_rowind = {src}.rowind")
        out.emit(f"{self.name}_values = {src}.values")
        out.emit(f"{self.name}_n = {src}.ncols")

    def loop(self, out: SourceWriter, step: int, states: Sequence[str], reverse: bool):
        if step == 0:
            c = out.fresh(f"{self.name}_c")
            rng = (f"range({self.name}_n - 1, -1, -1)" if reverse
                   else f"range({self.name}_n)")
            out.emit(f"for {c} in {rng}:")
            out.push()
            return [c], [c]
        (c,) = states
        jj = out.fresh(f"{self.name}_jj")
        r = out.fresh(f"{self.name}_r")
        if reverse:
            out.emit(f"for {jj} in range({self.name}_colptr[{c}+1] - 1, "
                     f"{self.name}_colptr[{c}] - 1, -1):")
        else:
            out.emit(f"for {jj} in range({self.name}_colptr[{c}], "
                     f"{self.name}_colptr[{c}+1]):")
        out.push()
        out.emit(f"{r} = {self.name}_rowind[{jj}]")
        return [r], [jj]

    def interval(self, out: SourceWriter, step: int, states: Sequence[str]):
        if step == 0:
            return ("0", f"{self.name}_n")
        return None

    def search(self, out: SourceWriter, step: int, states: Sequence[str],
               key_exprs: Sequence[str]):
        if step == 0:
            c = out.fresh(f"{self.name}_c")
            out.emit(f"{c} = {key_exprs[0]}")
            return [c], f"0 <= {c} < {self.name}_n"
        (c,) = states
        jj = out.fresh(f"{self.name}_jj")
        out.emit(f"{jj} = _bisect({self.name}_rowind, {key_exprs[0]}, "
                 f"{self.name}_colptr[{c}], {self.name}_colptr[{c}+1])")
        return [jj], f"{jj} >= 0"

    def get(self, states: Sequence[str]) -> str:
        return f"{self.name}_values[{states[1]}]"

    def set(self, out: SourceWriter, states: Sequence[str], value: str) -> None:
        out.emit(f"{self.name}_values[{states[1]}] = {value}")


class CooEmitter(BaseEmitter):
    def prologue(self, out: SourceWriter, src: str) -> None:
        out.emit(f"{self.name}_rows = {src}.rows")
        out.emit(f"{self.name}_cols = {src}.cols")
        out.emit(f"{self.name}_vals = {src}.vals")
        out.emit(f"{self.name}_nnz = {src}.nnz")

    def loop(self, out: SourceWriter, step: int, states: Sequence[str], reverse: bool):
        k = out.fresh(f"{self.name}_k")
        r = out.fresh(f"{self.name}_r")
        c = out.fresh(f"{self.name}_c")
        rng = (f"range({self.name}_nnz - 1, -1, -1)" if reverse
               else f"range({self.name}_nnz)")
        out.emit(f"for {k} in {rng}:")
        out.push()
        out.emit(f"{r} = {self.name}_rows[{k}]")
        out.emit(f"{c} = {self.name}_cols[{k}]")
        return [r, c], [k]

    def search(self, out: SourceWriter, step: int, states: Sequence[str],
               key_exprs: Sequence[str]):
        k = out.fresh(f"{self.name}_k")
        out.emit(f"{k} = _coo_find({self.name}_rows, {self.name}_cols, "
                 f"{key_exprs[0]}, {key_exprs[1]})")
        return [k], f"{k} >= 0"

    def get(self, states: Sequence[str]) -> str:
        return f"{self.name}_vals[{states[0]}]"

    def set(self, out: SourceWriter, states: Sequence[str], value: str) -> None:
        out.emit(f"{self.name}_vals[{states[0]}] = {value}")


class DenseEmitter(BaseEmitter):
    def __init__(self, ref, name):
        super().__init__(ref, name)
        self.axis_order = ("r", "c") if ref.path.path_id == "rowmajor" else ("c", "r")

    def prologue(self, out: SourceWriter, src: str) -> None:
        out.emit(f"{self.name}_data = {src}.data")
        out.emit(f"{self.name}_m = {src}.nrows")
        out.emit(f"{self.name}_n = {src}.ncols")

    def _extent(self, axis: str) -> str:
        return f"{self.name}_m" if axis == "r" else f"{self.name}_n"

    def loop(self, out: SourceWriter, step: int, states: Sequence[str], reverse: bool):
        axis = self.axis_order[step]
        v = out.fresh(f"{self.name}_{axis}")
        ext = self._extent(axis)
        rng = f"range({ext} - 1, -1, -1)" if reverse else f"range({ext})"
        out.emit(f"for {v} in {rng}:")
        out.push()
        return [v], [v]

    def interval(self, out: SourceWriter, step: int, states: Sequence[str]):
        return ("0", self._extent(self.axis_order[step]))

    def search(self, out: SourceWriter, step: int, states: Sequence[str],
               key_exprs: Sequence[str]):
        axis = self.axis_order[step]
        v = out.fresh(f"{self.name}_{axis}")
        out.emit(f"{v} = {key_exprs[0]}")
        return [v], f"0 <= {v} < {self._extent(axis)}"

    def _rc(self, states: Sequence[str]) -> Tuple[str, str]:
        d = dict(zip(self.axis_order, states))
        return d["r"], d["c"]

    def get(self, states: Sequence[str]) -> str:
        r, c = self._rc(states)
        return f"{self.name}_data[{r}, {c}]"

    def set(self, out: SourceWriter, states: Sequence[str], value: str) -> None:
        r, c = self._rc(states)
        out.emit(f"{self.name}_data[{r}, {c}] = {value}")


class EllEmitter(BaseEmitter):
    def prologue(self, out: SourceWriter, src: str) -> None:
        out.emit(f"{self.name}_colind = {src}.colind")
        out.emit(f"{self.name}_data = {src}.data")
        out.emit(f"{self.name}_rowlen = {src}.rowlen")
        out.emit(f"{self.name}_m = {src}.nrows")

    def loop(self, out: SourceWriter, step: int, states: Sequence[str], reverse: bool):
        if step == 0:
            r = out.fresh(f"{self.name}_r")
            rng = (f"range({self.name}_m - 1, -1, -1)" if reverse
                   else f"range({self.name}_m)")
            out.emit(f"for {r} in {rng}:")
            out.push()
            return [r], [r]
        (r,) = states
        kk = out.fresh(f"{self.name}_kk")
        c = out.fresh(f"{self.name}_c")
        if reverse:
            out.emit(f"for {kk} in range({self.name}_rowlen[{r}] - 1, -1, -1):")
        else:
            out.emit(f"for {kk} in range({self.name}_rowlen[{r}]):")
        out.push()
        out.emit(f"{c} = {self.name}_colind[{r}, {kk}]")
        return [c], [kk]

    def interval(self, out: SourceWriter, step: int, states: Sequence[str]):
        if step == 0:
            return ("0", f"{self.name}_m")
        return None

    def search(self, out: SourceWriter, step: int, states: Sequence[str],
               key_exprs: Sequence[str]):
        if step == 0:
            r = out.fresh(f"{self.name}_r")
            out.emit(f"{r} = {key_exprs[0]}")
            return [r], f"0 <= {r} < {self.name}_m"
        (r,) = states
        kk = out.fresh(f"{self.name}_kk")
        out.emit(f"{kk} = _ell_find({self.name}_colind, {self.name}_rowlen, "
                 f"{r}, {key_exprs[0]})")
        return [kk], f"{kk} >= 0"

    def get(self, states: Sequence[str]) -> str:
        return f"{self.name}_data[{states[0]}, {states[1]}]"

    def set(self, out: SourceWriter, states: Sequence[str], value: str) -> None:
        out.emit(f"{self.name}_data[{states[0]}, {states[1]}] = {value}")


class DiaEmitter(BaseEmitter):
    def prologue(self, out: SourceWriter, src: str) -> None:
        out.emit(f"{self.name}_diags = {src}.diags")
        out.emit(f"{self.name}_data = {src}.data")
        out.emit(f"{self.name}_m = {src}.nrows")
        out.emit(f"{self.name}_n = {src}.ncols")
        out.emit(f"{self.name}_nd = len({src}.diags)")

    def loop(self, out: SourceWriter, step: int, states: Sequence[str], reverse: bool):
        if step == 0:
            k = out.fresh(f"{self.name}_k")
            d = out.fresh(f"{self.name}_d")
            rng = (f"range({self.name}_nd - 1, -1, -1)" if reverse
                   else f"range({self.name}_nd)")
            out.emit(f"for {k} in {rng}:")
            out.push()
            out.emit(f"{d} = {self.name}_diags[{k}]")
            return [d], [k]
        (k,) = states
        o = out.fresh(f"{self.name}_o")
        d_expr = f"{self.name}_diags[{k}]"
        lo = f"max(0, -{d_expr})"
        hi = f"min({self.name}_n, {self.name}_m - {d_expr})"
        if reverse:
            out.emit(f"for {o} in range({hi} - 1, {lo} - 1, -1):")
        else:
            out.emit(f"for {o} in range({lo}, {hi}):")
        out.push()
        return [o], [o]

    def interval(self, out: SourceWriter, step: int, states: Sequence[str]):
        if step == 1:
            (k,) = states
            d_expr = f"{self.name}_diags[{k}]"
            return (f"max(0, -{d_expr})",
                    f"min({self.name}_n, {self.name}_m - {d_expr})")
        return None

    def search(self, out: SourceWriter, step: int, states: Sequence[str],
               key_exprs: Sequence[str]):
        if step == 0:
            k = out.fresh(f"{self.name}_k")
            out.emit(f"{k} = _bisect({self.name}_diags, {key_exprs[0]}, 0, "
                     f"{self.name}_nd)")
            return [k], f"{k} >= 0"
        (k,) = states
        o = out.fresh(f"{self.name}_o")
        d_expr = f"{self.name}_diags[{k}]"
        out.emit(f"{o} = {key_exprs[0]}")
        return [o], (f"max(0, -{d_expr}) <= {o} < "
                     f"min({self.name}_n, {self.name}_m - {d_expr})")

    def get(self, states: Sequence[str]) -> str:
        return f"{self.name}_data[{states[0]}, {states[1]}]"

    def set(self, out: SourceWriter, states: Sequence[str], value: str) -> None:
        out.emit(f"{self.name}_data[{states[0]}, {states[1]}] = {value}")


class JadEmitter(BaseEmitter):
    """Both JAD perspectives; the rows path mirrors the paper's Figure 9."""

    def prologue(self, out: SourceWriter, src: str) -> None:
        out.emit(f"{self.name}_iperm = {src}.iperm")
        out.emit(f"{self.name}_ipermi = {src}.ipermi")
        out.emit(f"{self.name}_dptr = {src}.dptr")
        out.emit(f"{self.name}_colind = {src}.colind")
        out.emit(f"{self.name}_values = {src}.values")
        out.emit(f"{self.name}_rowcnt = {src}.rowcnt")
        out.emit(f"{self.name}_m = {src}.nrows")
        out.emit(f"{self.name}_nnz = {src}.nnz")
        out.emit(f"{self.name}_nd = {src}.ndiags")

    # ---- flat path: one joint step ----
    def _flat_loop(self, out: SourceWriter, reverse: bool):
        d = out.fresh(f"{self.name}_d")
        jj = out.fresh(f"{self.name}_jj")
        r = out.fresh(f"{self.name}_r")
        c = out.fresh(f"{self.name}_c")
        # diagonal-major walk, tracking the current diagonal like the
        # paper's JadFlatIterator::frob_d
        out.emit(f"{d} = 0")
        out.emit(f"for {jj} in range({self.name}_nnz):")
        out.push()
        out.emit(f"while {jj} >= {self.name}_dptr[{d}+1]:")
        out.push()
        out.emit(f"{d} += 1")
        out.pop()
        out.emit(f"{r} = {self.name}_iperm[{jj} - {self.name}_dptr[{d}]]")
        out.emit(f"{c} = {self.name}_colind[{jj}]")
        return [r, c], [jj]

    def loop(self, out: SourceWriter, step: int, states: Sequence[str], reverse: bool):
        if self.ref.path.path_id == "flat":
            return self._flat_loop(out, reverse)
        if step == 0:
            rr = out.fresh(f"{self.name}_rr")
            r = out.fresh(f"{self.name}_r")
            rng = (f"range({self.name}_m - 1, -1, -1)" if reverse
                   else f"range({self.name}_m)")
            out.emit(f"for {rr} in {rng}:")
            out.push()
            out.emit(f"{r} = {self.name}_iperm[{rr}]")
            return [r], [rr]
        (rr,) = states
        dd = out.fresh(f"{self.name}_dd")
        jj = out.fresh(f"{self.name}_jj")
        c = out.fresh(f"{self.name}_c")
        if reverse:
            out.emit(f"for {dd} in range({self.name}_rowcnt[{rr}] - 1, -1, -1):")
        else:
            out.emit(f"for {dd} in range({self.name}_rowcnt[{rr}]):")
        out.push()
        out.emit(f"{jj} = {self.name}_dptr[{dd}] + {rr}")
        out.emit(f"{c} = {self.name}_colind[{jj}]")
        return [c], [jj]

    def interval(self, out: SourceWriter, step: int, states: Sequence[str]):
        if self.ref.path.path_id == "rows" and step == 0:
            return ("0", f"{self.name}_m")
        return None

    def search(self, out: SourceWriter, step: int, states: Sequence[str],
               key_exprs: Sequence[str]):
        if self.ref.path.path_id == "flat":
            jj = out.fresh(f"{self.name}_jj")
            out.emit(f"{jj} = _jad_find({self.name}_ipermi, {self.name}_dptr, "
                     f"{self.name}_colind, {self.name}_rowcnt, "
                     f"{key_exprs[0]}, {key_exprs[1]})")
            return [jj], f"{jj} >= 0"
        if step == 0:
            # the paper's Figure 9: search(LHier.begin(), ..., L.unmap(r))
            rr = out.fresh(f"{self.name}_rr")
            out.emit(f"{rr} = {self.name}_ipermi[{key_exprs[0]}] "
                     f"if 0 <= {key_exprs[0]} < {self.name}_m else -1")
            return [rr], f"{rr} >= 0"
        (rr,) = states
        jj = out.fresh(f"{self.name}_jj")
        out.emit(f"{jj} = _jad_row_find({self.name}_dptr, {self.name}_colind, "
                 f"{self.name}_rowcnt, {rr}, {key_exprs[0]})")
        return [jj], f"{jj} >= 0"

    def get(self, states: Sequence[str]) -> str:
        return f"{self.name}_values[{states[-1]}]"

    def set(self, out: SourceWriter, states: Sequence[str], value: str) -> None:
        out.emit(f"{self.name}_values[{states[-1]}] = {value}")


class BsrEmitter(BaseEmitter):
    def __init__(self, ref, name):
        super().__init__(ref, name)
        self.inner_order = (("ri", "ci") if ref.path.path_id == "rows_rc"
                            else ("ci", "ri"))

    def prologue(self, out: SourceWriter, src: str) -> None:
        out.emit(f"{self.name}_indptr = {src}.indptr")
        out.emit(f"{self.name}_blockind = {src}.blockind")
        out.emit(f"{self.name}_data = {src}.data")
        out.emit(f"{self.name}_brows = {src}.block_rows")
        out.emit(f"{self.name}_s = {src}.block_size")

    def loop(self, out: SourceWriter, step: int, states: Sequence[str], reverse: bool):
        if step == 0:
            rb = out.fresh(f"{self.name}_rb")
            rng = (f"range({self.name}_brows - 1, -1, -1)" if reverse
                   else f"range({self.name}_brows)")
            out.emit(f"for {rb} in {rng}:")
            out.push()
            return [rb], [rb]
        if step == 1:
            rb = states[0]
            kk = out.fresh(f"{self.name}_kk")
            cb = out.fresh(f"{self.name}_cb")
            if reverse:
                out.emit(f"for {kk} in range({self.name}_indptr[{rb}+1] - 1, "
                         f"{self.name}_indptr[{rb}] - 1, -1):")
            else:
                out.emit(f"for {kk} in range({self.name}_indptr[{rb}], "
                         f"{self.name}_indptr[{rb}+1]):")
            out.push()
            out.emit(f"{cb} = {self.name}_blockind[{kk}]")
            return [cb], [kk]
        axis = self.inner_order[step - 2]
        v = out.fresh(f"{self.name}_{axis}")
        rng = (f"range({self.name}_s - 1, -1, -1)" if reverse
               else f"range({self.name}_s)")
        out.emit(f"for {v} in {rng}:")
        out.push()
        return [v], [v]

    def interval(self, out: SourceWriter, step: int, states: Sequence[str]):
        if step == 0:
            return ("0", f"{self.name}_brows")
        if step >= 2:
            return ("0", f"{self.name}_s")
        return None

    def search(self, out: SourceWriter, step: int, states: Sequence[str],
               key_exprs: Sequence[str]):
        if step == 0:
            rb = out.fresh(f"{self.name}_rb")
            out.emit(f"{rb} = {key_exprs[0]}")
            return [rb], f"0 <= {rb} < {self.name}_brows"
        if step == 1:
            rb = states[0]
            kk = out.fresh(f"{self.name}_kk")
            out.emit(f"{kk} = _bisect({self.name}_blockind, {key_exprs[0]}, "
                     f"{self.name}_indptr[{rb}], {self.name}_indptr[{rb}+1])")
            return [kk], f"{kk} >= 0"
        v = out.fresh(f"{self.name}_v")
        out.emit(f"{v} = {key_exprs[0]}")
        return [v], f"0 <= {v} < {self.name}_s"

    def _block_xy(self, states: Sequence[str]) -> Tuple[str, str, str]:
        kk = states[1]
        inner = dict(zip(self.inner_order, states[2:]))
        return kk, inner["ri"], inner["ci"]

    def get(self, states: Sequence[str]) -> str:
        kk, ri, ci = self._block_xy(states)
        return f"{self.name}_data[{kk}, {ri}, {ci}]"

    def set(self, out: SourceWriter, states: Sequence[str], value: str) -> None:
        kk, ri, ci = self._block_xy(states)
        out.emit(f"{self.name}_data[{kk}, {ri}, {ci}] = {value}")


class MsrDiagEmitter(BaseEmitter):
    def prologue(self, out: SourceWriter, src: str) -> None:
        out.emit(f"{self.name}_dvals = {src}.dvals")
        out.emit(f"{self.name}_nd = {src}.ndiag")

    def loop(self, out: SourceWriter, step: int, states: Sequence[str], reverse: bool):
        i = out.fresh(f"{self.name}_i")
        rng = (f"range({self.name}_nd - 1, -1, -1)" if reverse
               else f"range({self.name}_nd)")
        out.emit(f"for {i} in {rng}:")
        out.push()
        return [i], [i]

    def interval(self, out: SourceWriter, step: int, states: Sequence[str]):
        return ("0", f"{self.name}_nd")

    def search(self, out: SourceWriter, step: int, states: Sequence[str],
               key_exprs: Sequence[str]):
        i = out.fresh(f"{self.name}_i")
        out.emit(f"{i} = {key_exprs[0]}")
        return [i], f"0 <= {i} < {self.name}_nd"

    def get(self, states: Sequence[str]) -> str:
        return f"{self.name}_dvals[{states[0]}]"

    def set(self, out: SourceWriter, states: Sequence[str], value: str) -> None:
        out.emit(f"{self.name}_dvals[{states[0]}] = {value}")


class MsrOffEmitter(BaseEmitter):
    def prologue(self, out: SourceWriter, src: str) -> None:
        out.emit(f"{self.name}_rowptr = {src}.rowptr")
        out.emit(f"{self.name}_colind = {src}.colind")
        out.emit(f"{self.name}_values = {src}.values")
        out.emit(f"{self.name}_m = {src}.nrows")

    loop = CsrEmitter.loop
    interval = CsrEmitter.interval
    search = CsrEmitter.search
    get = CsrEmitter.get
    set = CsrEmitter.set


class GenericEmitter(BaseEmitter):
    """Fallback: call the abstract runtime dynamically.  Keeps user-defined
    formats working with the compiled backend (slower than inlined code but
    still loop-specialized)."""

    def prologue(self, out: SourceWriter, src: str) -> None:
        out.emit(f"{self.name}_rt = {src}.runtime({self.ref.path.path_id!r})")

    def loop(self, out: SourceWriter, step: int, states: Sequence[str], reverse: bool):
        keys = out.fresh(f"{self.name}_keys")
        st = out.fresh(f"{self.name}_st")
        prefix = "(" + ", ".join(states) + ("," if states else "") + ")"
        it = f"{self.name}_rt.enumerate({step}, {prefix})"
        if reverse:
            it = f"reversed(list({it}))"
        out.emit(f"for {keys}, {st} in {it}:")
        out.push()
        axes = self.ref.path.steps[step].names
        names = [out.fresh(f"{self.name}_{a}") for a in axes]
        for i, nm in enumerate(names):
            out.emit(f"{nm} = {keys}[{i}]")
        return names, [st]

    def interval(self, out: SourceWriter, step: int, states: Sequence[str]):
        prefix = "(" + ", ".join(states) + ("," if states else "") + ")"
        iv = out.fresh(f"{self.name}_iv")
        out.emit(f"{iv} = {self.name}_rt.interval({step}, {prefix})")
        return (f"{iv}[0]", f"{iv}[1]")

    def search(self, out: SourceWriter, step: int, states: Sequence[str],
               key_exprs: Sequence[str]):
        st = out.fresh(f"{self.name}_st")
        prefix = "(" + ", ".join(states) + ("," if states else "") + ")"
        keys = "(" + ", ".join(key_exprs) + ("," if key_exprs else "") + ")"
        out.emit(f"{st} = {self.name}_rt.search({step}, {prefix}, {keys})")
        return [st], f"{st} is not None"

    def get(self, states: Sequence[str]) -> str:
        prefix = "(" + ", ".join(states) + ("," if states else "") + ")"
        return f"{self.name}_rt.get({prefix})"

    def set(self, out: SourceWriter, states: Sequence[str], value: str) -> None:
        prefix = "(" + ", ".join(states) + ("," if states else "") + ")"
        out.emit(f"{self.name}_rt.set({prefix}, {value})")


def make_emitter(ref: SparseRef, name: str) -> BaseEmitter:
    fmt_name = ref.fmt.format_name
    if fmt_name == "csr":
        return CsrEmitter(ref, name)
    if fmt_name == "csc":
        return CscEmitter(ref, name)
    if fmt_name == "coo":
        return CooEmitter(ref, name)
    if fmt_name == "dense":
        return DenseEmitter(ref, name)
    if fmt_name == "ell":
        return EllEmitter(ref, name)
    if fmt_name == "dia":
        return DiaEmitter(ref, name)
    if fmt_name == "jad":
        return JadEmitter(ref, name)
    if fmt_name == "bsr":
        return BsrEmitter(ref, name)
    if fmt_name == "msr":
        return (MsrDiagEmitter(ref, name) if ref.path.path_id == "diag"
                else MsrOffEmitter(ref, name))
    return GenericEmitter(ref, name)


RUNTIME_HELPERS = '''
def _bisect(arr, key, lo, hi):
    while lo < hi:
        mid = (lo + hi) // 2
        v = arr[mid]
        if v == key:
            return mid
        if v < key:
            lo = mid + 1
        else:
            hi = mid
    return -1

def _coo_find(rows, cols, r, c):
    for k in range(len(rows)):
        if rows[k] == r and cols[k] == c:
            return k
    return -1

def _ell_find(colind, rowlen, r, c):
    lo, hi = 0, rowlen[r]
    while lo < hi:
        mid = (lo + hi) // 2
        v = colind[r, mid]
        if v == c:
            return mid
        if v < c:
            lo = mid + 1
        else:
            hi = mid
    return -1

def _jad_row_find(dptr, colind, rowcnt, rr, c):
    lo, hi = 0, rowcnt[rr]
    while lo < hi:
        mid = (lo + hi) // 2
        jj = dptr[mid] + rr
        v = colind[jj]
        if v == c:
            return jj
        if v < c:
            lo = mid + 1
        else:
            hi = mid
    return -1

def _jad_find(ipermi, dptr, colind, rowcnt, r, c):
    if not (0 <= r < len(ipermi)):
        return -1
    return _jad_row_find(dptr, colind, rowcnt, ipermi[r], c)
'''

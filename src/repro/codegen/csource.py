"""C-like rendering of generated kernels, for inspection.

The specialized Python backend emits a small, loop-and-assignment subset of
Python; this module parses that subset with :mod:`ast` and pretty-prints it
as C-like source — the visual analog of the paper's Figure 9, useful in
examples and documentation to show what the compiler produced.  It is a
*renderer*, not a C compiler backend: the executable artifact remains the
Python kernel.
"""

from __future__ import annotations

import ast
from typing import List

from repro.core.plan import Plan


class _CRenderer(ast.NodeVisitor):
    def __init__(self):
        self.lines: List[str] = []
        self.indent = 0

    def emit(self, s: str) -> None:
        self.lines.append("    " * self.indent + s)

    # -- expressions ------------------------------------------------------
    def expr(self, node) -> str:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Constant):
            return repr(node.value) if not isinstance(node.value, str) else node.value
        if isinstance(node, ast.UnaryOp):
            op = {"USub": "-", "Not": "!"}[type(node.op).__name__]
            return f"{op}{self.expr(node.operand)}"
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, ast.FloorDiv):
                # Python // floors; C / truncates toward zero.  They
                # disagree for negative operands, so render an explicit
                # floor-division helper rather than a bare "/".
                return f"_fdiv({self.expr(node.left)}, {self.expr(node.right)})"
            op = {"Add": "+", "Sub": "-", "Mult": "*", "Div": "/",
                  "Mod": "%"}[type(node.op).__name__]
            return f"({self.expr(node.left)} {op} {self.expr(node.right)})"
        if isinstance(node, ast.Compare):
            parts = [self.expr(node.left)]
            cur = node.left
            out = []
            for op, comp in zip(node.ops, node.comparators):
                sym = {"Lt": "<", "LtE": "<=", "Gt": ">", "GtE": ">=",
                       "Eq": "==", "NotEq": "!=", "Is": "==", "IsNot": "!="}[
                           type(op).__name__]
                out.append(f"{self.expr(cur)} {sym} {self.expr(comp)}")
                cur = comp
            return " && ".join(out)
        if isinstance(node, ast.BoolOp):
            sym = " && " if isinstance(node.op, ast.And) else " || "
            return sym.join(self.expr(v) for v in node.values)
        if isinstance(node, ast.Subscript):
            base = self.expr(node.value)
            sl = node.slice
            if isinstance(sl, ast.Tuple):
                idx = "][".join(self.expr(e) for e in sl.elts)
            else:
                idx = self.expr(sl)
            return f"{base}[{idx}]"
        if isinstance(node, ast.Call):
            fn = self.expr(node.func)
            args = ", ".join(self.expr(a) for a in node.args)
            return f"{fn}({args})"
        if isinstance(node, ast.Attribute):
            return f"{self.expr(node.value)}.{node.attr}"
        if isinstance(node, ast.Tuple):
            return ", ".join(self.expr(e) for e in node.elts)
        if isinstance(node, ast.IfExp):
            return (f"({self.expr(node.test)} ? {self.expr(node.body)} : "
                    f"{self.expr(node.orelse)})")
        return f"/* {ast.dump(node)[:40]} */"

    # -- statements ----------------------------------------------------------
    def body(self, stmts) -> None:
        for s in stmts:
            self.stmt(s)

    def stmt(self, node) -> None:
        if isinstance(node, ast.Assign):
            tgt = self.expr(node.targets[0])
            self.emit(f"{tgt} = {self.expr(node.value)};")
        elif isinstance(node, ast.AugAssign):
            op = {"Add": "+=", "Sub": "-=", "Mult": "*="}[type(node.op).__name__]
            self.emit(f"{self.expr(node.target)} {op} {self.expr(node.value)};")
        elif isinstance(node, ast.For):
            var = self.expr(node.target)
            it = node.iter
            if (isinstance(it, ast.Call) and isinstance(it.func, ast.Name)
                    and it.func.id == "range"):
                args = [self.expr(a) for a in it.args]
                if len(args) == 1:
                    hdr = f"for (int {var} = 0; {var} < {args[0]}; {var}++)"
                elif len(args) == 2:
                    hdr = f"for (int {var} = {args[0]}; {var} < {args[1]}; {var}++)"
                else:
                    hdr = (f"for (int {var} = {args[0]}; {var} > {args[1]}; "
                           f"{var} += {args[2]})")
            else:
                hdr = f"for ({var} : {self.expr(it)})"
            self.emit(hdr + " {")
            self.indent += 1
            self.body(node.body)
            self.indent -= 1
            self.emit("}")
        elif isinstance(node, ast.While):
            self.emit(f"while ({self.expr(node.test)}) {{")
            self.indent += 1
            self.body(node.body)
            self.indent -= 1
            self.emit("}")
        elif isinstance(node, ast.If):
            self.emit(f"if ({self.expr(node.test)}) {{")
            self.indent += 1
            self.body(node.body)
            self.indent -= 1
            if node.orelse:
                self.emit("} else {")
                self.indent += 1
                self.body(node.orelse)
                self.indent -= 1
            self.emit("}")
        elif isinstance(node, ast.Return):
            self.emit("return;")
        elif isinstance(node, ast.Expr):
            self.emit(f"{self.expr(node.value)};")
        else:
            self.emit(f"/* {type(node).__name__} */")


def python_to_c_like(py_source: str) -> str:
    """Render the generated kernel function as C-like source (the kernel
    body only; the search helpers are summarized as declarations)."""
    tree = ast.parse(py_source)
    r = _CRenderer()
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and node.name == "kernel":
            r.emit("void kernel(...) {")
            r.indent += 1
            r.body(node.body)
            r.indent -= 1
            r.emit("}")
        elif isinstance(node, ast.FunctionDef):
            r.emit(f"static int {node.name}(...);   /* search helper */")
    out = "\n".join(r.lines)
    if "_fdiv(" in out:
        out = ("static long _fdiv(long a, long b);"
               "   /* floor division (Python //) */\n" + out)
    return out


def plan_to_c_like(plan: Plan) -> str:
    """Generate the specialized kernel and render it C-like."""
    from repro.codegen.pysource import generate_python_source

    return python_to_c_like(generate_python_source(plan))

"""Native C99 lowering of generated kernels.

The specialized Python backend (:mod:`repro.codegen.pysource`) emits a
small loop-and-assignment subset of Python; this module parses that subset
with :mod:`ast` and lowers it to standalone C99 — typed pointer arguments
for the numpy arrays (``int32_t``/``int64_t`` index arrays, ``double``
values), ``int64_t`` scalars, row-major stride arguments for
multi-dimensional arrays, and specialized static helper functions for the
inlined binary searches.  The result is the real compiled analog of the
paper's Figure 9 instantiation: the same raw index-array loops a
hand-written NIST library kernel contains, handed to the system C
compiler (:mod:`repro.core.backend`).

Floor division is lowered through ``_fdiv`` (floor-correct for negative
operands — C ``/`` truncates toward zero, Python ``//`` floors), and
``%`` appears only in ``== 0`` divisibility guards, where C and Python
agree on zero-ness.

Parallelism: :func:`lower_kernel` consults
:class:`repro.core.parallel.ParallelReport` and marks strict-DOALL loops
with ``#pragma omp parallel for``; under the ``atomic`` flavour,
reduction loops whose every store is a read-modify-write accumulation get
the pragma plus ``#pragma omp atomic`` on each accumulation.  Loops the
analysis cannot safely align with the emitted source stay sequential.

Optimization tiers (``opt``): ``"none"`` emits the loops exactly as the
Python kernel wrote them.  ``"tiled"`` applies three transforms that are
*byte-identical* to the naive emission — every floating-point value is
produced by the same operations in the same order, only integer control
flow and memory scheduling change:

- **strip-mine** — the outermost unit-step loop is cache-blocked into
  row blocks of ``tile_rows`` iterations (``REPRO_TILE_ROWS``).
- **guard_absorb** — an inner loop whose body is a single conjunctive
  guard of affine ``±1``-coefficient conditions on the loop variable has
  those conditions folded into hoisted ``_imax``/``_imin`` loop bounds
  (the iterations removed executed nothing), and the loop bounds are
  hoisted out of the per-iteration condition.  This is what lets the
  compiler vectorize DIA-style diagonal loops.
- **register_tile** — a sparse accumulation loop whose last statement is
  an inner DOALL panel accumulation (the SpMM shape) is column-blocked:
  the output panel is held in a fixed-width local accumulator across the
  sparse loop and written back once per block.  Per output element the
  accumulation order is unchanged.

``"tiled"`` additionally marks proven per-iteration-distinct store loops
with ``#pragma omp simd`` and qualifies pointer arguments ``restrict``
(array arguments must not alias — the BLAS/solver layers never pass
aliased operands).  Loops inside atomic regions and descending loops are
left untouched.  ``"fast"`` emits the same code but is compiled with
reassociation-permitting flags (see :mod:`repro.core.backend`), so it is
validated by tolerance, not byte-identity.

Constructs the C subset cannot express (gather-and-sort enumerations,
the generic dynamic-runtime emitter, unsupported dtypes) raise
:class:`NativeLoweringError`; the backend treats that as "fall back to
the Python kernel", never as a hard failure.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.plan import (
    LoopNode,
    Plan,
    PlanNode,
    SearchEnum,
    SortedEnum,
    VarLoopNode,
)


class NativeLoweringError(RuntimeError):
    """The generated kernel uses a construct the C backend cannot express."""


#: numpy dtype name -> C type of the element
_CTYPES = {
    "int32": "int32_t",
    "int64": "int64_t",
    "float32": "float",
    "float64": "double",
}

#: short dtype tags used to specialize helper functions
_TAGS = {"int32": "i32", "int64": "i64", "float32": "f32", "float64": "f64"}


class ArgSpec:
    """One C function argument: how to load its value from the Python-side
    ``(arrays, params)`` call and how it is typed in C.

    ``kind`` is ``"scalar"`` (an ``int64_t``) or ``"array"`` (a typed
    pointer, followed in the signature by ``ndim - 1`` row-major stride
    arguments and, when ``need_len`` is set, the length of dimension 0).
    """

    __slots__ = ("cname", "kind", "dtype", "ndim", "loader", "written",
                 "need_len")

    def __init__(self, cname: str, kind: str,
                 loader: Callable[[Mapping, Mapping], object],
                 dtype: Optional[str] = None, ndim: int = 1):
        self.cname = cname
        self.kind = kind
        self.loader = loader
        self.dtype = dtype
        self.ndim = ndim
        self.written = False
        self.need_len = False

    def __repr__(self):
        return (f"ArgSpec({self.cname}, {self.kind}, dtype={self.dtype}, "
                f"ndim={self.ndim}, written={self.written})")


class NativeSpec:
    """A lowered kernel: the C translation unit, the ordered argument
    specs, whether any OpenMP pragma was emitted, and which optimization
    tier produced it (``transforms`` lists the loop transforms that
    actually fired, e.g. ``["strip_mine", "guard_absorb"]``)."""

    __slots__ = ("c_source", "args", "uses_openmp", "flavour", "opt",
                 "transforms")

    def __init__(self, c_source: str, args: List[ArgSpec], uses_openmp: bool,
                 flavour: str, opt: str = "none",
                 transforms: Optional[List[str]] = None):
        self.c_source = c_source
        self.args = args
        self.uses_openmp = uses_openmp
        self.flavour = flavour
        self.opt = opt
        self.transforms = list(transforms or [])


# ---------------------------------------------------------------------------
# Helper-function templates, specialized per element type
# ---------------------------------------------------------------------------

def _helper_fdiv() -> str:
    return (
        "static inline int64_t _fdiv(int64_t a, int64_t b) {\n"
        "    int64_t q = a / b;\n"
        "    if ((a % b != 0) && ((a < 0) != (b < 0))) q -= 1;\n"
        "    return q;\n"
        "}\n"
    )


def _helper_minmax() -> str:
    return (
        "static inline int64_t _imax(int64_t a, int64_t b) "
        "{ return a > b ? a : b; }\n"
        "static inline int64_t _imin(int64_t a, int64_t b) "
        "{ return a < b ? a : b; }\n"
    )


def _helper_bisect(t: str) -> str:
    T = _CTYPES[t]
    return (
        f"static int64_t _bisect_{_TAGS[t]}(const {T} *arr, int64_t key, "
        "int64_t lo, int64_t hi) {\n"
        "    while (lo < hi) {\n"
        "        int64_t mid = (lo + hi) / 2;\n"
        f"        int64_t v = (int64_t)arr[mid];\n"
        "        if (v == key) return mid;\n"
        "        if (v < key) lo = mid + 1; else hi = mid;\n"
        "    }\n"
        "    return -1;\n"
        "}\n"
    )


def _helper_coo_find(tr: str, tc: str) -> str:
    return (
        f"static int64_t _coo_find_{_TAGS[tr]}_{_TAGS[tc]}("
        f"const {_CTYPES[tr]} *rows, int64_t n, const {_CTYPES[tc]} *cols, "
        "int64_t r, int64_t c) {\n"
        "    for (int64_t k = 0; k < n; k++)\n"
        "        if ((int64_t)rows[k] == r && (int64_t)cols[k] == c) return k;\n"
        "    return -1;\n"
        "}\n"
    )


def _helper_ell_find(tc: str, tl: str) -> str:
    return (
        f"static int64_t _ell_find_{_TAGS[tc]}_{_TAGS[tl]}("
        f"const {_CTYPES[tc]} *colind, int64_t s0, const {_CTYPES[tl]} *rowlen, "
        "int64_t r, int64_t c) {\n"
        "    int64_t lo = 0, hi = (int64_t)rowlen[r];\n"
        "    while (lo < hi) {\n"
        "        int64_t mid = (lo + hi) / 2;\n"
        "        int64_t v = (int64_t)colind[r * s0 + mid];\n"
        "        if (v == c) return mid;\n"
        "        if (v < c) lo = mid + 1; else hi = mid;\n"
        "    }\n"
        "    return -1;\n"
        "}\n"
    )


def _helper_jad_row_find(td: str, tc: str, tr: str) -> str:
    return (
        f"static int64_t _jad_row_find_{_TAGS[td]}_{_TAGS[tc]}_{_TAGS[tr]}("
        f"const {_CTYPES[td]} *dptr, const {_CTYPES[tc]} *colind, "
        f"const {_CTYPES[tr]} *rowcnt, int64_t rr, int64_t c) {{\n"
        "    int64_t lo = 0, hi = (int64_t)rowcnt[rr];\n"
        "    while (lo < hi) {\n"
        "        int64_t mid = (lo + hi) / 2;\n"
        "        int64_t jj = (int64_t)dptr[mid] + rr;\n"
        "        int64_t v = (int64_t)colind[jj];\n"
        "        if (v == c) return jj;\n"
        "        if (v < c) lo = mid + 1; else hi = mid;\n"
        "    }\n"
        "    return -1;\n"
        "}\n"
    )


def _helper_jad_find(ti: str, td: str, tc: str, tr: str) -> str:
    inner = f"_jad_row_find_{_TAGS[td]}_{_TAGS[tc]}_{_TAGS[tr]}"
    return (
        f"static int64_t _jad_find_{_TAGS[ti]}_{_TAGS[td]}_{_TAGS[tc]}_{_TAGS[tr]}("
        f"const {_CTYPES[ti]} *ipermi, int64_t n, const {_CTYPES[td]} *dptr, "
        f"const {_CTYPES[tc]} *colind, const {_CTYPES[tr]} *rowcnt, "
        "int64_t r, int64_t c) {\n"
        "    if (r < 0 || r >= n) return -1;\n"
        f"    return {inner}(dptr, colind, rowcnt, (int64_t)ipermi[r], c);\n"
        "}\n"
    )


# ---------------------------------------------------------------------------
# Lowering
# ---------------------------------------------------------------------------

class _Lowerer:
    def __init__(self, py_source: str, bindings: Mapping[str, object],
                 flavour: str, loop_flags: Optional[List[str]],
                 opt: str = "none", tile_rows: int = 512):
        self.bindings = dict(bindings)
        self.flavour = flavour
        self.loop_flags = loop_flags
        self.opt = opt
        self.tile_rows = tile_rows
        self.args: List[ArgSpec] = []
        self.arrays: Dict[str, ArgSpec] = {}
        self.scalars: Dict[str, ArgSpec] = {}
        self.helpers: Dict[str, str] = {}       # fn name -> definition text
        self.lines: List[str] = []
        self.indent = 1
        self.declared: set = set()
        self.for_index = 0
        self.parallel_depth = 0
        self.atomic_region = False
        self.uses_openmp = False
        self.transforms: List[str] = []
        self.rename: Dict[str, str] = {}        # loop-var substitutions
        self.emit_depth = 0                     # emitted source-loop nesting
        self._uid_counter = 0

        tree = ast.parse(py_source)
        fndef = next(
            (n for n in tree.body
             if isinstance(n, ast.FunctionDef) and n.name == "kernel"), None)
        if fndef is None:
            raise NativeLoweringError("no kernel function in generated source")
        self.body = self._parse_prologue(fndef.body)
        self._infer_dense_shapes(self.body)
        self.written_arrays = self._stored_arrays(self.body)
        n_fors = sum(1 for _ in ast.walk(ast.Module(body=self.body,
                                                    type_ignores=[]))
                     if isinstance(_, ast.For))
        if self.loop_flags is not None and len(self.loop_flags) != n_fors:
            # the plan's loop nodes don't align with the emitted loops
            # (auxiliary loops present); stay sequential rather than
            # mislabel a loop as parallel
            self.loop_flags = None

    # -- prologue ---------------------------------------------------------

    def _parse_prologue(self, stmts: Sequence[ast.stmt]) -> List[ast.stmt]:
        srcs: Dict[str, str] = {}
        i = 0
        for i, st in enumerate(stmts):
            if not (isinstance(st, ast.Assign) and len(st.targets) == 1
                    and isinstance(st.targets[0], ast.Name)):
                break
            target = st.targets[0].id
            v = st.value
            if (isinstance(v, ast.Subscript) and isinstance(v.value, ast.Name)
                    and v.value.id in ("params", "arrays")
                    and isinstance(v.slice, ast.Constant)):
                key = v.slice.value
                if v.value.id == "params":
                    self._add_scalar(target, _param_loader(key))
                elif target.startswith("_src_"):
                    srcs[target] = key
                else:
                    self._add_dense(target, key)
                continue
            if (isinstance(v, ast.Attribute) and isinstance(v.value, ast.Name)
                    and v.value.id in srcs):
                if v.attr == "runtime":
                    raise NativeLoweringError("generic runtime emitter")
                self._add_attr(target, srcs[v.value.id], v.attr)
                continue
            if (isinstance(v, ast.Call) and isinstance(v.func, ast.Name)
                    and v.func.id == "len" and len(v.args) == 1
                    and isinstance(v.args[0], ast.Attribute)
                    and isinstance(v.args[0].value, ast.Name)
                    and v.args[0].value.id in srcs):
                key, attr = srcs[v.args[0].value.id], v.args[0].attr
                self._add_scalar(target, _len_loader(key, attr))
                continue
            if (isinstance(v, ast.Call) and isinstance(v.func, ast.Attribute)
                    and isinstance(v.func.value, ast.Name)
                    and v.func.value.id in srcs):
                raise NativeLoweringError(
                    f"dynamic format call {v.func.attr!r} (generic emitter)")
            break
        else:
            i = len(stmts)
        return list(stmts[i:])

    def _add_scalar(self, name: str, loader) -> None:
        spec = ArgSpec(name, "scalar", loader)
        self.args.append(spec)
        self.scalars[name] = spec

    def _add_dense(self, name: str, key: str) -> None:
        # dtype/ndim resolved from usage later; dense data is float64
        spec = ArgSpec(name, "array", _array_loader(key), "float64", ndim=-1)
        self.args.append(spec)
        self.arrays[name] = spec

    def _add_attr(self, name: str, key: str, attr: str) -> None:
        inst = self.bindings.get(key)
        if inst is None:
            raise NativeLoweringError(f"no compile-time binding for {key!r}")
        val = getattr(inst, attr)
        if isinstance(val, np.ndarray):
            dt = val.dtype.name
            if dt not in _CTYPES:
                raise NativeLoweringError(f"unsupported dtype {dt} for {name}")
            spec = ArgSpec(name, "array", _attr_loader(key, attr), dt,
                           ndim=max(val.ndim, 1))
            self.args.append(spec)
            self.arrays[name] = spec
        elif isinstance(val, (int, np.integer)):
            self._add_scalar(name, _attr_loader(key, attr))
        else:
            raise NativeLoweringError(
                f"attribute {attr!r} of {key!r} is neither array nor int")

    def _infer_dense_shapes(self, body: Sequence[ast.stmt]) -> None:
        mod = ast.Module(body=list(body), type_ignores=[])
        for node in ast.walk(mod):
            if not (isinstance(node, ast.Subscript)
                    and isinstance(node.value, ast.Name)):
                continue
            spec = self.arrays.get(node.value.id)
            if spec is None or spec.ndim != -1:
                continue
            sl = node.slice
            if isinstance(sl, ast.Tuple):
                spec.ndim = len(sl.elts)
            elif isinstance(sl, ast.Constant) and sl.value == ():
                spec.ndim = 0
            else:
                spec.ndim = 1
        for spec in self.arrays.values():
            if spec.ndim == -1:
                spec.ndim = 1        # referenced but never subscripted

    def _stored_arrays(self, body: Sequence[ast.stmt]) -> set:
        mod = ast.Module(body=list(body), type_ignores=[])
        out = set()
        for node in ast.walk(mod):
            if isinstance(node, ast.Assign):
                tgt = node.targets[0]
                if (isinstance(tgt, ast.Subscript)
                        and isinstance(tgt.value, ast.Name)):
                    out.add(tgt.value.id)
        return out

    # -- static analysis for the tiled tier -------------------------------

    @staticmethod
    def _names_in(node: ast.AST) -> set:
        return {n.id for n in ast.walk(node) if isinstance(n, ast.Name)}

    def _mentions_arrays(self, node: ast.AST, names: set) -> bool:
        return bool(self._names_in(node) & names)

    @staticmethod
    def _assigned_names(stmts: Sequence[ast.stmt]) -> set:
        """Names assigned anywhere inside ``stmts`` (scalar assignment
        targets, augmented assignments, and for-loop variables)."""
        mod = ast.Module(body=list(stmts), type_ignores=[])
        out = set()
        for node in ast.walk(mod):
            if isinstance(node, ast.Assign):
                for t in node.targets:
                    if isinstance(t, ast.Name):
                        out.add(t.id)
            elif isinstance(node, ast.AugAssign):
                if isinstance(node.target, ast.Name):
                    out.add(node.target.id)
            elif isinstance(node, ast.For):
                if isinstance(node.target, ast.Name):
                    out.add(node.target.id)
        return out

    def _affine(self, node: ast.AST):
        """Decompose an integer expression into ``({name: coeff}, const)``,
        or None when it is not affine in plain scalar names."""
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool) or not isinstance(node.value, int):
                return None
            return {}, node.value
        if isinstance(node, ast.Name):
            if node.id in self.arrays:
                return None
            return {node.id: 1}, 0
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
            sub = self._affine(node.operand)
            if sub is None:
                return None
            coeffs, const = sub
            return {k: -v for k, v in coeffs.items()}, -const
        if isinstance(node, ast.BinOp):
            if isinstance(node.op, (ast.Add, ast.Sub)):
                l = self._affine(node.left)
                r = self._affine(node.right)
                if l is None or r is None:
                    return None
                sign = 1 if isinstance(node.op, ast.Add) else -1
                coeffs = dict(l[0])
                for k, v in r[0].items():
                    coeffs[k] = coeffs.get(k, 0) + sign * v
                coeffs = {k: v for k, v in coeffs.items() if v}
                return coeffs, l[1] + sign * r[1]
            if isinstance(node.op, ast.Mult):
                l = self._affine(node.left)
                r = self._affine(node.right)
                if l is None or r is None:
                    return None
                if not l[0]:
                    c = l[1]
                    return ({k: c * v for k, v in r[0].items() if c * v},
                            c * r[1])
                if not r[0]:
                    c = r[1]
                    return ({k: c * v for k, v in l[0].items() if c * v},
                            c * l[1])
                return None
        return None

    @staticmethod
    def _affine_c(coeffs: Dict[str, int], const: int) -> str:
        parts = []
        for name in sorted(coeffs):
            c = coeffs[name]
            if c == 1:
                parts.append(f"({name})")
            elif c == -1:
                parts.append(f"(-({name}))")
            else:
                parts.append(f"(({c}) * ({name}))")
        if const or not parts:
            parts.append(str(const))
        return "(" + " + ".join(parts) + ")"

    def _conjuncts(self, test: ast.AST):
        """Flatten an ``and`` tree into single-op comparisons, or None
        when the test is not a pure conjunction of such comparisons."""
        if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
            out = []
            for v in test.values:
                sub = self._conjuncts(v)
                if sub is None:
                    return None
                out.extend(sub)
            return out
        if isinstance(test, ast.Compare) and len(test.ops) == 1:
            return [test]
        return None

    def _absorb_one(self, cmp: ast.Compare, v: str, assigned: set):
        """Fold one affine conjunct into a loop bound: returns
        ``("lo", c_expr)`` meaning ``v >= c_expr``, ``("hi", c_expr)``
        meaning ``v < c_expr``, or None when not absorbable."""
        l = self._affine(cmp.left)
        r = self._affine(cmp.comparators[0])
        if l is None or r is None:
            return None
        op = type(cmp.ops[0]).__name__
        # normalize to  coeffs·names + const >= need
        if op in ("GtE", "Gt"):
            pos, neg, strict = l, r, op == "Gt"
        elif op in ("LtE", "Lt"):
            pos, neg, strict = r, l, op == "Lt"
        else:
            return None
        coeffs = dict(pos[0])
        for k, c in neg[0].items():
            coeffs[k] = coeffs.get(k, 0) - c
        coeffs = {k: c for k, c in coeffs.items() if c}
        const = pos[1] - neg[1]
        cv = coeffs.pop(v, 0)
        if cv not in (1, -1):
            return None
        for name in coeffs:
            if name in assigned or name in self.arrays:
                return None      # not invariant across the loop body
        need = 1 if strict else 0
        if cv == 1:
            # v >= need - const - rest
            return ("lo", self._affine_c({k: -c for k, c in coeffs.items()},
                                         need - const))
        # -v + rest + const >= need  =>  v < rest + const - need + 1
        return ("hi", self._affine_c(coeffs, const - need + 1))

    def _simd_safe(self, body: Sequence[ast.stmt], v: str) -> bool:
        """True when every iteration of the loop over ``v`` touches
        provably distinct store addresses and carries no scalar state, so
        ``#pragma omp simd`` preserves byte-identical results."""
        store_texts = set()
        for st in body:
            if not (isinstance(st, ast.Assign) and len(st.targets) == 1):
                return False
            tgt = st.targets[0]
            if isinstance(tgt, ast.Name):
                # fresh per-iteration local is privatizable; a name already
                # live outside the loop could carry state across iterations
                if tgt.id in self.declared:
                    return False
                continue
            if not (isinstance(tgt, ast.Subscript)
                    and isinstance(tgt.value, ast.Name)
                    and tgt.value.id in self.arrays):
                return False
            sl = tgt.slice
            idx = list(sl.elts) if isinstance(sl, ast.Tuple) else [sl]
            varying = 0
            for comp in idx:
                aff = self._affine(comp)
                if aff is None:
                    if v in self._names_in(comp):
                        return False
                    continue
                cv = aff[0].get(v, 0)
                if cv == 0:
                    continue
                if cv not in (1, -1):
                    return False
                varying += 1
            if varying != 1:
                return False
            text = ast.unparse(tgt)
            for other in store_texts:
                # two distinct addresses of one array could collide across
                # iterations (y[i] vs y[i+1]); one address per array only
                if (other != text
                        and other.split("[", 1)[0] == tgt.value.id):
                    return False
            store_texts.add(text)
        if not store_texts:
            return False
        # every reference to a stored array must be textually one of the
        # stores (same address as this iteration's own store)
        written = {t.split("[", 1)[0] for t in store_texts}
        for st in body:
            for node in ast.walk(st):
                if (isinstance(node, ast.Subscript)
                        and isinstance(node.value, ast.Name)
                        and node.value.id in written
                        and ast.unparse(node) not in store_texts):
                    return False
        return True

    def _uid(self) -> int:
        self._uid_counter += 1
        return self._uid_counter

    # -- emission helpers -------------------------------------------------

    def emit(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def _need_helper(self, name: str, text: str) -> None:
        self.helpers.setdefault(name, text)

    def _array_of(self, node: ast.AST, what: str) -> ArgSpec:
        if isinstance(node, ast.Name) and node.id in self.arrays:
            return self.arrays[node.id]
        raise NativeLoweringError(f"{what} must be a known array argument")

    # -- expressions ------------------------------------------------------

    def cexpr(self, node: ast.AST) -> str:
        if isinstance(node, ast.Name):
            if node.id in self.arrays:
                raise NativeLoweringError(
                    f"raw array reference {node.id!r} outside subscript")
            return self.rename.get(node.id, node.id)
        if isinstance(node, ast.Constant):
            return self._const(node.value)
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.USub):
                return f"(-({self.cexpr(node.operand)}))"
            if isinstance(node.op, ast.Not):
                return f"(!({self.cexpr(node.operand)}))"
            raise NativeLoweringError(f"unary op {type(node.op).__name__}")
        if isinstance(node, ast.BinOp):
            return self._binop(node)
        if isinstance(node, ast.Compare):
            parts = []
            cur = node.left
            for op, comp in zip(node.ops, node.comparators):
                sym = {"Lt": "<", "LtE": "<=", "Gt": ">", "GtE": ">=",
                       "Eq": "==", "NotEq": "!="}.get(type(op).__name__)
                if sym is None:
                    raise NativeLoweringError(
                        f"comparison {type(op).__name__}")
                parts.append(f"({self.cexpr(cur)}) {sym} ({self.cexpr(comp)})")
                cur = comp
            return "(" + " && ".join(parts) + ")"
        if isinstance(node, ast.BoolOp):
            sym = " && " if isinstance(node.op, ast.And) else " || "
            return "(" + sym.join(f"({self.cexpr(v)})" for v in node.values) + ")"
        if isinstance(node, ast.IfExp):
            return (f"(({self.cexpr(node.test)}) ? ({self.cexpr(node.body)}) "
                    f": ({self.cexpr(node.orelse)}))")
        if isinstance(node, ast.Subscript):
            return self._subscript(node)
        if isinstance(node, ast.Call):
            return self._call(node)
        raise NativeLoweringError(f"expression {type(node).__name__}")

    def _const(self, value) -> str:
        if isinstance(value, bool):
            return "1" if value else "0"
        if isinstance(value, int):
            return str(value)
        if isinstance(value, float):
            s = repr(value)
            if "." not in s and "e" not in s and "E" not in s:
                s += ".0"
            return s
        raise NativeLoweringError(f"constant {value!r}")

    def _binop(self, node: ast.BinOp) -> str:
        l, r = self.cexpr(node.left), self.cexpr(node.right)
        op = type(node.op).__name__
        if op == "Add":
            return f"(({l}) + ({r}))"
        if op == "Sub":
            return f"(({l}) - ({r}))"
        if op == "Mult":
            return f"(({l}) * ({r}))"
        if op == "Div":
            # Python true division; cast both sides so int/int cannot
            # truncate (double/double is unchanged)
            return f"((double)({l}) / (double)({r}))"
        if op == "FloorDiv":
            # C '/' truncates toward zero; Python '//' floors
            self._need_helper("_fdiv", _helper_fdiv())
            return f"_fdiv({l}, {r})"
        if op == "Mod":
            # only emitted in divisibility guards ('% q == 0'), where C
            # and Python agree on zero-ness regardless of sign
            return f"(({l}) % ({r}))"
        raise NativeLoweringError(f"binary op {op}")

    def _subscript(self, node: ast.Subscript) -> str:
        spec = self._array_of(node.value, "subscript base")
        sl = node.slice
        if isinstance(sl, ast.Tuple):
            idx = list(sl.elts)
        elif isinstance(sl, ast.Constant) and sl.value == ():
            idx = []
        else:
            idx = [sl]
        if spec.ndim == 0:
            if idx:
                raise NativeLoweringError(f"{spec.cname}: scalar array indexed")
            return f"{spec.cname}[0]"
        if len(idx) != spec.ndim:
            raise NativeLoweringError(
                f"{spec.cname}: {len(idx)} indices for ndim {spec.ndim}")
        expr = self.cexpr(idx[0])
        for k in range(1, spec.ndim):
            expr = f"({expr}) * {spec.cname}__s{k - 1} + ({self.cexpr(idx[k])})"
        return f"{spec.cname}[{expr}]"

    def _call(self, node: ast.Call) -> str:
        if not isinstance(node.func, ast.Name):
            raise NativeLoweringError("method call")
        fn = node.func.id
        a = node.args
        if fn in ("max", "min") and len(a) == 2:
            self._need_helper("_imax", _helper_minmax())
            c = "_imax" if fn == "max" else "_imin"
            return f"{c}({self.cexpr(a[0])}, {self.cexpr(a[1])})"
        if fn == "len" and len(a) == 1:
            spec = self._array_of(a[0], "len() argument")
            spec.need_len = True
            return f"{spec.cname}__len"
        if fn == "_bisect" and len(a) == 4:
            arr = self._array_of(a[0], "_bisect array")
            name = f"_bisect_{_TAGS[arr.dtype]}"
            self._need_helper(name, _helper_bisect(arr.dtype))
            rest = ", ".join(self.cexpr(x) for x in a[1:])
            return f"{name}({arr.cname}, {rest})"
        if fn == "_coo_find" and len(a) == 4:
            rows = self._array_of(a[0], "_coo_find rows")
            cols = self._array_of(a[1], "_coo_find cols")
            rows.need_len = True
            name = f"_coo_find_{_TAGS[rows.dtype]}_{_TAGS[cols.dtype]}"
            self._need_helper(name, _helper_coo_find(rows.dtype, cols.dtype))
            return (f"{name}({rows.cname}, {rows.cname}__len, {cols.cname}, "
                    f"{self.cexpr(a[2])}, {self.cexpr(a[3])})")
        if fn == "_ell_find" and len(a) == 4:
            colind = self._array_of(a[0], "_ell_find colind")
            rowlen = self._array_of(a[1], "_ell_find rowlen")
            if colind.ndim != 2:
                raise NativeLoweringError("_ell_find colind must be 2-D")
            name = f"_ell_find_{_TAGS[colind.dtype]}_{_TAGS[rowlen.dtype]}"
            self._need_helper(name, _helper_ell_find(colind.dtype, rowlen.dtype))
            return (f"{name}({colind.cname}, {colind.cname}__s0, "
                    f"{rowlen.cname}, {self.cexpr(a[2])}, {self.cexpr(a[3])})")
        if fn == "_jad_row_find" and len(a) == 5:
            dptr = self._array_of(a[0], "_jad_row_find dptr")
            colind = self._array_of(a[1], "_jad_row_find colind")
            rowcnt = self._array_of(a[2], "_jad_row_find rowcnt")
            tags = (dptr.dtype, colind.dtype, rowcnt.dtype)
            name = f"_jad_row_find_{_TAGS[tags[0]]}_{_TAGS[tags[1]]}_{_TAGS[tags[2]]}"
            self._need_helper(name, _helper_jad_row_find(*tags))
            return (f"{name}({dptr.cname}, {colind.cname}, {rowcnt.cname}, "
                    f"{self.cexpr(a[3])}, {self.cexpr(a[4])})")
        if fn == "_jad_find" and len(a) == 6:
            ipermi = self._array_of(a[0], "_jad_find ipermi")
            dptr = self._array_of(a[1], "_jad_find dptr")
            colind = self._array_of(a[2], "_jad_find colind")
            rowcnt = self._array_of(a[3], "_jad_find rowcnt")
            ipermi.need_len = True
            tags = (dptr.dtype, colind.dtype, rowcnt.dtype)
            inner = f"_jad_row_find_{_TAGS[tags[0]]}_{_TAGS[tags[1]]}_{_TAGS[tags[2]]}"
            self._need_helper(inner, _helper_jad_row_find(*tags))
            name = (f"_jad_find_{_TAGS[ipermi.dtype]}_{_TAGS[tags[0]]}_"
                    f"{_TAGS[tags[1]]}_{_TAGS[tags[2]]}")
            self._need_helper(name, _helper_jad_find(ipermi.dtype, *tags))
            return (f"{name}({ipermi.cname}, {ipermi.cname}__len, {dptr.cname}, "
                    f"{colind.cname}, {rowcnt.cname}, "
                    f"{self.cexpr(a[4])}, {self.cexpr(a[5])})")
        raise NativeLoweringError(f"call to {fn!r}")

    # -- statements -------------------------------------------------------

    def lower_body(self, stmts: Sequence[ast.stmt]) -> None:
        for st in stmts:
            self.lower_stmt(st)

    def lower_stmt(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Assign):
            self._assign(node)
        elif isinstance(node, ast.AugAssign):
            self._augassign(node)
        elif isinstance(node, ast.For):
            self._for(node)
        elif isinstance(node, ast.While):
            self.emit(f"while ({self.cexpr(node.test)}) {{")
            self.indent += 1
            self.lower_body(node.body)
            self.indent -= 1
            self.emit("}")
        elif isinstance(node, ast.If):
            self.emit(f"if ({self.cexpr(node.test)}) {{")
            self.indent += 1
            self.lower_body(node.body)
            self.indent -= 1
            if node.orelse:
                self.emit("} else {")
                self.indent += 1
                self.lower_body(node.orelse)
                self.indent -= 1
            self.emit("}")
        elif isinstance(node, ast.Return):
            pass                               # trailing 'return None'
        else:
            raise NativeLoweringError(f"statement {type(node).__name__}")

    def _assign(self, node: ast.Assign) -> None:
        if len(node.targets) != 1:
            raise NativeLoweringError("multiple assignment targets")
        tgt = node.targets[0]
        if isinstance(tgt, ast.Name):
            if isinstance(node.value, (ast.List, ast.ListComp)):
                raise NativeLoweringError("list value (sorted enumeration)")
            if tgt.id in self.arrays or tgt.id in self.scalars:
                raise NativeLoweringError(f"reassignment of argument {tgt.id}")
            rhs = self.cexpr(node.value)
            if tgt.id in self.declared:
                self.emit(f"{tgt.id} = {rhs};")
            else:
                self.declared.add(tgt.id)
                self.emit(f"int64_t {tgt.id} = {rhs};")
            return
        if isinstance(tgt, ast.Subscript):
            spec = self._array_of(tgt.value, "store target")
            spec.written = True
            lhs = self._subscript(tgt)
            rmw_op = _rmw_op(tgt, node.value)
            if self.atomic_region:
                if rmw_op is not None:
                    # OpenMP atomic update form: x = x op expr
                    self.emit("#pragma omp atomic")
                    self.emit(f"{lhs} = {lhs} {rmw_op} "
                              f"({self.cexpr(node.value.right)});")
                    return
                raise NativeLoweringError(
                    "non-accumulation store inside atomic parallel loop")
            self.emit(f"{lhs} = {self.cexpr(node.value)};")
            return
        raise NativeLoweringError(f"assignment target {type(tgt).__name__}")

    def _augassign(self, node: ast.AugAssign) -> None:
        op = {"Add": "+=", "Sub": "-=", "Mult": "*="}.get(
            type(node.op).__name__)
        if op is None or not isinstance(node.target, ast.Name):
            raise NativeLoweringError("augmented assignment form")
        if node.target.id not in self.declared:
            raise NativeLoweringError(
                f"augmented assignment to undeclared {node.target.id}")
        self.emit(f"{node.target.id} {op} {self.cexpr(node.value)};")

    def _range_parts(self, node: ast.For):
        """``(lo_ast, hi_ast, step)`` for a ``range(...)`` loop; ``lo_ast``
        is None for the one-argument form (lower bound 0)."""
        it = node.iter
        if not (isinstance(it, ast.Call) and isinstance(it.func, ast.Name)
                and it.func.id == "range"):
            raise NativeLoweringError("non-range for loop")
        args = it.args
        if len(args) == 1:
            return None, args[0], 1
        if len(args) == 2:
            return args[0], args[1], 1
        if len(args) == 3:
            step = args[2]
            if (isinstance(step, ast.UnaryOp) and isinstance(step.op, ast.USub)
                    and isinstance(step.operand, ast.Constant)
                    and step.operand.value == 1):
                sv = -1
            elif isinstance(step, ast.Constant) and step.value in (1, -1):
                sv = step.value
            else:
                raise NativeLoweringError("non-unit range step")
            return args[0], args[1], sv
        raise NativeLoweringError("range arity")

    def _lo_c(self, lo_ast: Optional[ast.AST]) -> str:
        return "0" if lo_ast is None else self.cexpr(lo_ast)

    def _for(self, node: ast.For) -> None:
        if not isinstance(node.target, ast.Name):
            raise NativeLoweringError("tuple for-loop target")
        lo_ast, hi_ast, step = self._range_parts(node)
        flag = "seq"
        if (self.loop_flags is not None and self.parallel_depth == 0
                and not self.atomic_region):
            flag = self.loop_flags[self.for_index]
        self.for_index += 1
        atomic_here = False
        if flag == "par_atomic":
            # every store in the body must be an atomic-able accumulation,
            # otherwise the loop stays sequential
            if _all_stores_rmw(node.body):
                atomic_here = True
            else:
                flag = "seq"
        v = node.target.id
        opt_on = (self.opt != "none" and step > 0 and not atomic_here
                  and not self.atomic_region)
        if opt_on and flag == "seq" and self._try_register_tile(node,
                                                               lo_ast, hi_ast):
            return
        body = node.body
        lo, hi = self._lo_c(lo_ast), self.cexpr(hi_ast)
        if opt_on:
            absorbed = self._try_absorb_guard(node, v, lo, hi)
            if absorbed is not None:
                lo, hi, body = absorbed
        strip = (opt_on and self.emit_depth == 0 and self.tile_rows > 0
                 and not self._mentions_arrays(node.iter,
                                               self.written_arrays))
        simd = (opt_on and flag == "seq"
                and self._simd_safe(body, v))
        if flag in ("par", "par_atomic"):
            self.emit("#pragma omp parallel for")
            self.uses_openmp = True
        if strip:
            # cache-block the outermost loop into row blocks; per-iteration
            # work and order are unchanged, so results stay byte-identical
            self.transforms.append("strip_mine")
            self._need_helper("_imax", _helper_minmax())
            blk, end = f"{v}__blk", f"{v}__end"
            self.emit(f"for (int64_t {blk} = {lo}; {blk} < {hi}; "
                      f"{blk} += {self.tile_rows}) {{")
            self.indent += 1
            self.emit(f"int64_t {end} = _imin(({blk}) + {self.tile_rows}, "
                      f"{hi});")
            lo, hi = blk, end
        if simd:
            # honored under -fopenmp-simd (always passed for this tier);
            # does not require the full OpenMP runtime
            self.transforms.append("simd")
            self.emit("#pragma omp simd")
        if step > 0:
            hdr = f"for (int64_t {v} = {lo}; {v} < {hi}; {v}++)"
        else:
            hdr = f"for (int64_t {v} = {lo}; {v} > {hi}; {v}--)"
        self.emit(hdr + " {")
        self.indent += 1
        entered_parallel = flag in ("par", "par_atomic")
        if entered_parallel:
            self.parallel_depth += 1
        if atomic_here:
            self.atomic_region = True
        self.emit_depth += 1
        self.lower_body(body)
        self.emit_depth -= 1
        if atomic_here:
            self.atomic_region = False
        if entered_parallel:
            self.parallel_depth -= 1
        self.indent -= 1
        self.emit("}")
        if strip:
            self.indent -= 1
            self.emit("}")

    # -- tiled-tier loop transforms ---------------------------------------

    def _try_absorb_guard(self, node: ast.For, v: str, lo: str, hi: str):
        """Guard absorption + bound hoisting: a unit-step loop whose body
        is a single conjunctive ``if`` has every affine ``±1``-coefficient
        condition on ``v`` folded into hoisted ``_imax``/``_imin`` bounds.
        The removed iterations executed nothing, so this is exactly
        byte-identical.  Returns ``(lo, hi, new_body)`` or None."""
        body = node.body
        if len(body) != 1 or not isinstance(body[0], ast.If) or body[0].orelse:
            return None
        conjs = self._conjuncts(body[0].test)
        if conjs is None:
            return None
        assigned = self._assigned_names(body)
        lows: List[str] = []
        highs: List[str] = []
        residual: List[ast.expr] = []
        for cmp in conjs:
            r = self._absorb_one(cmp, v, assigned)
            if r is None:
                residual.append(cmp)
            elif r[0] == "lo":
                lows.append(r[1])
            else:
                highs.append(r[1])
        if not lows and not highs:
            return None
        self.transforms.append("guard_absorb")
        self._need_helper("_imax", _helper_minmax())
        uid = self._uid()
        lov, hiv = f"_lo{uid}", f"_hi{uid}"
        self.emit(f"int64_t {lov} = {lo};")
        self.emit(f"int64_t {hiv} = {hi};")
        for b in lows:
            self.emit(f"{lov} = _imax({lov}, {b});")
        for b in highs:
            self.emit(f"{hiv} = _imin({hiv}, {b});")
        new_body: List[ast.stmt] = list(body[0].body)
        if residual:
            test = (residual[0] if len(residual) == 1
                    else ast.BoolOp(op=ast.And(), values=residual))
            new_body = [ast.If(test=test, body=new_body, orelse=[])]
        return lov, hiv, new_body

    def _try_register_tile(self, node: ast.For,
                           lo_ast: Optional[ast.AST],
                           hi_ast: ast.AST) -> bool:
        """Register-tile the SpMM accumulation shape: a sparse loop whose
        last statement is an inner DOALL panel accumulation is column-
        blocked, holding the output panel in a fixed-width accumulator
        across the sparse loop.  Per output element the accumulation order
        is unchanged, so results stay byte-identical."""
        body = node.body
        if len(body) < 1 or not isinstance(body[-1], ast.For):
            return False
        pre = body[:-1]
        if not all(isinstance(s, ast.Assign) and len(s.targets) == 1
                   and isinstance(s.targets[0], ast.Name) for s in pre):
            return False
        inner = body[-1]
        if not isinstance(inner.target, ast.Name):
            return False
        try:
            ilo, ihi, istep = self._range_parts(inner)
        except NativeLoweringError:
            return False
        if istep != 1:
            return False
        if len(inner.body) != 1 or not isinstance(inner.body[0], ast.Assign):
            return False
        st = inner.body[0]
        tgt = st.targets[0]
        if not (isinstance(tgt, ast.Subscript)
                and isinstance(tgt.value, ast.Name)
                and tgt.value.id in self.arrays):
            return False
        spec = self.arrays[tgt.value.id]
        if spec.dtype not in ("float32", "float64"):
            return False
        val = st.value
        if not (isinstance(val, ast.BinOp) and isinstance(val.op, ast.Add)
                and ast.unparse(val.left) == ast.unparse(tgt)):
            return False
        v = inner.target.id
        jv = node.target.id
        sl = tgt.slice
        idx = list(sl.elts) if isinstance(sl, ast.Tuple) else [sl]
        if len(idx) != max(spec.ndim, 1):
            return False
        last = idx[-1]
        if not (isinstance(last, ast.Name) and last.id == v):
            return False
        pre_names = {s.targets[0].id for s in pre}
        varying = pre_names | {jv, v}
        written = {tgt.value.id}
        for comp in idx[:-1]:
            # outer panel indices must be invariant across the sparse loop
            if self._names_in(comp) & varying:
                return False
        if self._mentions_arrays(val.right, written):
            return False
        for b in (ilo, ihi):
            if b is not None and (self._names_in(b) & varying
                                  or self._mentions_arrays(b, written)):
                return False
        for b in (lo_ast, hi_ast):
            # sparse-loop bounds are re-evaluated per panel
            if b is not None and self._mentions_arrays(b, written):
                return False
        for s in pre:
            if self._mentions_arrays(s.value, written):
                return False
        self._emit_register_tile(node, pre, spec, tgt, val.right, v, jv,
                                 ilo, ihi, lo_ast, hi_ast)
        return True

    def _emit_register_tile(self, node, pre, spec, tgt, acc_expr, v, jv,
                            ilo, ihi, jlo, jhi) -> None:
        self.transforms.append("register_tile")
        spec.written = True
        # the pattern match skipped the inner For: keep the plan-aligned
        # flag cursor in step for whatever loops follow this one
        self.for_index += sum(1 for n in ast.walk(node)
                              if isinstance(n, ast.For)) - 1
        B = 8
        uid = self._uid()
        p, q = f"_vp{uid}", f"_vq{uid}"
        acc, acc1 = f"_acc{uid}", f"_accr{uid}"
        T = _CTYPES[spec.dtype]
        lo_c, hi_c = self._lo_c(ilo), self.cexpr(ihi)
        jlo_c, jhi_c = self._lo_c(jlo), self.cexpr(jhi)
        saved_declared = set(self.declared)

        def emit_sparse_loop(update: str) -> None:
            self.emit(f"for (int64_t {jv} = {jlo_c}; {jv} < {jhi_c}; "
                      f"{jv}++) {{")
            self.indent += 1
            for s in pre:
                self._assign(s)
            self.emit(update)
            self.indent -= 1
            self.emit("}")
            self.declared.clear()
            self.declared.update(saved_declared)

        self.emit(f"int64_t {p} = {lo_c};")
        self.emit(f"for (; ({p}) + {B} <= {hi_c}; {p} += {B}) {{")
        self.indent += 1
        self.emit(f"{T} {acc}[{B}];")
        self.rename[v] = f"(({p}) + ({q}))"
        panel_slot = self._subscript(tgt)
        self.emit(f"for (int64_t {q} = 0; {q} < {B}; {q}++) "
                  f"{acc}[{q}] = {panel_slot};")
        update = (f"for (int64_t {q} = 0; {q} < {B}; {q}++) "
                  f"{acc}[{q}] = ({acc}[{q}]) + ({self.cexpr(acc_expr)});")
        emit_sparse_loop(update)
        self.emit(f"for (int64_t {q} = 0; {q} < {B}; {q}++) "
                  f"{panel_slot} = {acc}[{q}];")
        self.indent -= 1
        self.emit("}")
        # scalar remainder columns
        self.rename[v] = p
        self.emit(f"for (; {p} < {hi_c}; {p}++) {{")
        self.indent += 1
        self.emit(f"{T} {acc1} = {self._subscript(tgt)};")
        emit_sparse_loop(f"{acc1} = ({acc1}) + ({self.cexpr(acc_expr)});")
        self.emit(f"{self._subscript(tgt)} = {acc1};")
        self.indent -= 1
        self.emit("}")
        del self.rename[v]

    # -- assembly ---------------------------------------------------------

    def c_signature(self) -> str:
        qual = " restrict" if self.opt != "none" else ""
        parts: List[str] = []
        for spec in self.args:
            if spec.kind == "scalar":
                parts.append(f"int64_t {spec.cname}")
            else:
                parts.append(f"{_CTYPES[spec.dtype]} *{qual} {spec.cname}")
                for k in range(max(spec.ndim - 1, 0)):
                    parts.append(f"int64_t {spec.cname}__s{k}")
                if spec.need_len:
                    parts.append(f"int64_t {spec.cname}__len")
        return ", ".join(parts) if parts else "void"

    def translation_unit(self) -> str:
        head = ["#include <stdint.h>", ""]
        head.extend(self.helpers[k] for k in sorted(self.helpers))
        head.append(f"void kernel({self.c_signature()}) {{")
        return "\n".join(head + self.lines + ["}", ""])


def _rmw_op(target: ast.Subscript, value: ast.AST) -> Optional[str]:
    """'+', '-', '*', '/' when value is ``target op expr``, else None."""
    if not isinstance(value, ast.BinOp):
        return None
    op = {"Add": "+", "Sub": "-", "Mult": "*", "Div": "/"}.get(
        type(value.op).__name__)
    if op is None:
        return None
    if ast.unparse(value.left) != ast.unparse(target):
        return None
    # OpenMP atomic requires the update expression not to read the target
    if ast.unparse(target) in ast.unparse(value.right):
        return None
    return op


def _all_stores_rmw(body: Sequence[ast.stmt]) -> bool:
    for st in body:
        for node in ast.walk(st):
            if isinstance(node, ast.Assign):
                tgt = node.targets[0]
                if isinstance(tgt, ast.Subscript) and \
                        _rmw_op(tgt, node.value) is None:
                    return False
    return True


# ---------------------------------------------------------------------------
# Plan-aligned loop verdicts
# ---------------------------------------------------------------------------

def emitted_loop_flags(plan: Plan, report, flavour: str) -> List[str]:
    """Per emitted ``for`` loop (in source order), how it may run:
    ``"par"`` (strict DOALL), ``"par_atomic"`` (DOALL given atomic
    accumulation — only meaningful under the atomic flavour), or
    ``"seq"``.  Search-driven loop nodes emit no ``for`` and are skipped;
    sorted enumerations emit auxiliary loops and are rejected upstream by
    the lowering itself."""
    flags: List[str] = []

    def verdict(dims: Sequence[str]) -> str:
        if all(d in report.strict for d in dims):
            return "par"
        if flavour == "atomic" and all(d in report.atomic for d in dims):
            return "par_atomic"
        return "seq"

    def walk(nodes: Sequence[PlanNode]) -> None:
        for n in nodes:
            if isinstance(n, LoopNode):
                walk(n.before)
                if isinstance(n.method, SortedEnum):
                    flags.append("seq")
                    flags.append("seq")    # gather loop + replay loop
                elif not isinstance(n.method, SearchEnum):
                    flags.append(verdict(n.dim_names))
                walk(n.body)
                walk(n.after)
            elif isinstance(n, VarLoopNode):
                flags.append(verdict([n.dim_name]))
                walk(n.body)

    walk(plan.nodes)
    return flags


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

def lower_source(py_source: str, bindings: Mapping[str, object],
                 flavour: str = "none",
                 loop_flags: Optional[List[str]] = None,
                 opt: str = "none",
                 tile_rows: Optional[int] = None) -> NativeSpec:
    """Lower generated Python kernel source to a C99 translation unit.

    ``bindings`` supplies the compile-time format instances (dtype and
    rank resolution for the index/value arrays).  ``loop_flags`` is the
    per-``for`` parallelism verdict list from :func:`emitted_loop_flags`
    (None: fully sequential).  ``opt`` selects the optimization tier
    (``"none"``, ``"tiled"``, ``"fast"`` — see the module docstring);
    ``tile_rows`` overrides the ``REPRO_TILE_ROWS`` row-block size."""
    if opt not in ("none", "tiled", "fast"):
        raise ValueError(
            f"opt must be 'none', 'tiled' or 'fast', got {opt!r}")
    if tile_rows is None:
        from repro.util.env import env_int
        tile_rows = env_int("REPRO_TILE_ROWS", 512, minimum=1)
    low = _Lowerer(py_source, bindings, flavour, loop_flags, opt, tile_rows)
    low.lower_body(low.body)
    return NativeSpec(low.translation_unit(), low.args, low.uses_openmp,
                      flavour, opt, low.transforms)


def lower_kernel(kernel, parallel: str = "none", opt: str = "none",
                 tile_rows: Optional[int] = None) -> NativeSpec:
    """Lower a :class:`~repro.core.compiler.CompiledKernel`'s generated
    source to C, with OpenMP pragmas on the loops its
    :class:`~repro.core.parallel.ParallelReport` proves order-free."""
    from repro.instrument import INSTR

    with INSTR.phase("c_lower"):
        flags = None
        if parallel not in ("none", "strict", "atomic"):
            raise ValueError(
                f"parallel must be 'none', 'strict' or 'atomic', got {parallel!r}")
        if parallel != "none":
            from repro.analysis.dependence import dependences
            from repro.core.parallel import analyze_parallelism

            deps = dependences(kernel.program)
            report = analyze_parallelism(kernel.plan, deps)
            flags = emitted_loop_flags(kernel.plan, report, parallel)
        return lower_source(kernel.source, kernel.bindings, parallel, flags,
                            opt, tile_rows)


def _param_loader(key: str):
    return lambda arrays, params: int(params[key])


def _array_loader(key: str):
    return lambda arrays, params: arrays[key]


def _attr_loader(key: str, attr: str):
    return lambda arrays, params: getattr(arrays[key], attr)


def _len_loader(key: str, attr: str):
    return lambda arrays, params: len(getattr(arrays[key], attr))

"""Native C99 lowering of generated kernels.

The specialized Python backend (:mod:`repro.codegen.pysource`) emits a
small loop-and-assignment subset of Python; this module parses that subset
with :mod:`ast` and lowers it to standalone C99 — typed pointer arguments
for the numpy arrays (``int32_t``/``int64_t`` index arrays, ``double``
values), ``int64_t`` scalars, row-major stride arguments for
multi-dimensional arrays, and specialized static helper functions for the
inlined binary searches.  The result is the real compiled analog of the
paper's Figure 9 instantiation: the same raw index-array loops a
hand-written NIST library kernel contains, handed to the system C
compiler (:mod:`repro.core.backend`).

Floor division is lowered through ``_fdiv`` (floor-correct for negative
operands — C ``/`` truncates toward zero, Python ``//`` floors), and
``%`` appears only in ``== 0`` divisibility guards, where C and Python
agree on zero-ness.

Parallelism: :func:`lower_kernel` consults
:class:`repro.core.parallel.ParallelReport` and marks strict-DOALL loops
with ``#pragma omp parallel for``; under the ``atomic`` flavour,
reduction loops whose every store is a read-modify-write accumulation get
the pragma plus ``#pragma omp atomic`` on each accumulation.  Loops the
analysis cannot safely align with the emitted source stay sequential.

Constructs the C subset cannot express (gather-and-sort enumerations,
the generic dynamic-runtime emitter, unsupported dtypes) raise
:class:`NativeLoweringError`; the backend treats that as "fall back to
the Python kernel", never as a hard failure.
"""

from __future__ import annotations

import ast
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.plan import (
    LoopNode,
    Plan,
    PlanNode,
    SearchEnum,
    SortedEnum,
    VarLoopNode,
)


class NativeLoweringError(RuntimeError):
    """The generated kernel uses a construct the C backend cannot express."""


#: numpy dtype name -> C type of the element
_CTYPES = {
    "int32": "int32_t",
    "int64": "int64_t",
    "float32": "float",
    "float64": "double",
}

#: short dtype tags used to specialize helper functions
_TAGS = {"int32": "i32", "int64": "i64", "float32": "f32", "float64": "f64"}


class ArgSpec:
    """One C function argument: how to load its value from the Python-side
    ``(arrays, params)`` call and how it is typed in C.

    ``kind`` is ``"scalar"`` (an ``int64_t``) or ``"array"`` (a typed
    pointer, followed in the signature by ``ndim - 1`` row-major stride
    arguments and, when ``need_len`` is set, the length of dimension 0).
    """

    __slots__ = ("cname", "kind", "dtype", "ndim", "loader", "written",
                 "need_len")

    def __init__(self, cname: str, kind: str,
                 loader: Callable[[Mapping, Mapping], object],
                 dtype: Optional[str] = None, ndim: int = 1):
        self.cname = cname
        self.kind = kind
        self.loader = loader
        self.dtype = dtype
        self.ndim = ndim
        self.written = False
        self.need_len = False

    def __repr__(self):
        return (f"ArgSpec({self.cname}, {self.kind}, dtype={self.dtype}, "
                f"ndim={self.ndim}, written={self.written})")


class NativeSpec:
    """A lowered kernel: the C translation unit, the ordered argument
    specs, and whether any OpenMP pragma was emitted."""

    __slots__ = ("c_source", "args", "uses_openmp", "flavour")

    def __init__(self, c_source: str, args: List[ArgSpec], uses_openmp: bool,
                 flavour: str):
        self.c_source = c_source
        self.args = args
        self.uses_openmp = uses_openmp
        self.flavour = flavour


# ---------------------------------------------------------------------------
# Helper-function templates, specialized per element type
# ---------------------------------------------------------------------------

def _helper_fdiv() -> str:
    return (
        "static inline int64_t _fdiv(int64_t a, int64_t b) {\n"
        "    int64_t q = a / b;\n"
        "    if ((a % b != 0) && ((a < 0) != (b < 0))) q -= 1;\n"
        "    return q;\n"
        "}\n"
    )


def _helper_minmax() -> str:
    return (
        "static inline int64_t _imax(int64_t a, int64_t b) "
        "{ return a > b ? a : b; }\n"
        "static inline int64_t _imin(int64_t a, int64_t b) "
        "{ return a < b ? a : b; }\n"
    )


def _helper_bisect(t: str) -> str:
    T = _CTYPES[t]
    return (
        f"static int64_t _bisect_{_TAGS[t]}(const {T} *arr, int64_t key, "
        "int64_t lo, int64_t hi) {\n"
        "    while (lo < hi) {\n"
        "        int64_t mid = (lo + hi) / 2;\n"
        f"        int64_t v = (int64_t)arr[mid];\n"
        "        if (v == key) return mid;\n"
        "        if (v < key) lo = mid + 1; else hi = mid;\n"
        "    }\n"
        "    return -1;\n"
        "}\n"
    )


def _helper_coo_find(tr: str, tc: str) -> str:
    return (
        f"static int64_t _coo_find_{_TAGS[tr]}_{_TAGS[tc]}("
        f"const {_CTYPES[tr]} *rows, int64_t n, const {_CTYPES[tc]} *cols, "
        "int64_t r, int64_t c) {\n"
        "    for (int64_t k = 0; k < n; k++)\n"
        "        if ((int64_t)rows[k] == r && (int64_t)cols[k] == c) return k;\n"
        "    return -1;\n"
        "}\n"
    )


def _helper_ell_find(tc: str, tl: str) -> str:
    return (
        f"static int64_t _ell_find_{_TAGS[tc]}_{_TAGS[tl]}("
        f"const {_CTYPES[tc]} *colind, int64_t s0, const {_CTYPES[tl]} *rowlen, "
        "int64_t r, int64_t c) {\n"
        "    int64_t lo = 0, hi = (int64_t)rowlen[r];\n"
        "    while (lo < hi) {\n"
        "        int64_t mid = (lo + hi) / 2;\n"
        "        int64_t v = (int64_t)colind[r * s0 + mid];\n"
        "        if (v == c) return mid;\n"
        "        if (v < c) lo = mid + 1; else hi = mid;\n"
        "    }\n"
        "    return -1;\n"
        "}\n"
    )


def _helper_jad_row_find(td: str, tc: str, tr: str) -> str:
    return (
        f"static int64_t _jad_row_find_{_TAGS[td]}_{_TAGS[tc]}_{_TAGS[tr]}("
        f"const {_CTYPES[td]} *dptr, const {_CTYPES[tc]} *colind, "
        f"const {_CTYPES[tr]} *rowcnt, int64_t rr, int64_t c) {{\n"
        "    int64_t lo = 0, hi = (int64_t)rowcnt[rr];\n"
        "    while (lo < hi) {\n"
        "        int64_t mid = (lo + hi) / 2;\n"
        "        int64_t jj = (int64_t)dptr[mid] + rr;\n"
        "        int64_t v = (int64_t)colind[jj];\n"
        "        if (v == c) return jj;\n"
        "        if (v < c) lo = mid + 1; else hi = mid;\n"
        "    }\n"
        "    return -1;\n"
        "}\n"
    )


def _helper_jad_find(ti: str, td: str, tc: str, tr: str) -> str:
    inner = f"_jad_row_find_{_TAGS[td]}_{_TAGS[tc]}_{_TAGS[tr]}"
    return (
        f"static int64_t _jad_find_{_TAGS[ti]}_{_TAGS[td]}_{_TAGS[tc]}_{_TAGS[tr]}("
        f"const {_CTYPES[ti]} *ipermi, int64_t n, const {_CTYPES[td]} *dptr, "
        f"const {_CTYPES[tc]} *colind, const {_CTYPES[tr]} *rowcnt, "
        "int64_t r, int64_t c) {\n"
        "    if (r < 0 || r >= n) return -1;\n"
        f"    return {inner}(dptr, colind, rowcnt, (int64_t)ipermi[r], c);\n"
        "}\n"
    )


# ---------------------------------------------------------------------------
# Lowering
# ---------------------------------------------------------------------------

class _Lowerer:
    def __init__(self, py_source: str, bindings: Mapping[str, object],
                 flavour: str, loop_flags: Optional[List[str]]):
        self.bindings = dict(bindings)
        self.flavour = flavour
        self.loop_flags = loop_flags
        self.args: List[ArgSpec] = []
        self.arrays: Dict[str, ArgSpec] = {}
        self.scalars: Dict[str, ArgSpec] = {}
        self.helpers: Dict[str, str] = {}       # fn name -> definition text
        self.lines: List[str] = []
        self.indent = 1
        self.declared: set = set()
        self.for_index = 0
        self.parallel_depth = 0
        self.atomic_region = False
        self.uses_openmp = False

        tree = ast.parse(py_source)
        fndef = next(
            (n for n in tree.body
             if isinstance(n, ast.FunctionDef) and n.name == "kernel"), None)
        if fndef is None:
            raise NativeLoweringError("no kernel function in generated source")
        self.body = self._parse_prologue(fndef.body)
        self._infer_dense_shapes(self.body)
        n_fors = sum(1 for _ in ast.walk(ast.Module(body=self.body,
                                                    type_ignores=[]))
                     if isinstance(_, ast.For))
        if self.loop_flags is not None and len(self.loop_flags) != n_fors:
            # the plan's loop nodes don't align with the emitted loops
            # (auxiliary loops present); stay sequential rather than
            # mislabel a loop as parallel
            self.loop_flags = None

    # -- prologue ---------------------------------------------------------

    def _parse_prologue(self, stmts: Sequence[ast.stmt]) -> List[ast.stmt]:
        srcs: Dict[str, str] = {}
        i = 0
        for i, st in enumerate(stmts):
            if not (isinstance(st, ast.Assign) and len(st.targets) == 1
                    and isinstance(st.targets[0], ast.Name)):
                break
            target = st.targets[0].id
            v = st.value
            if (isinstance(v, ast.Subscript) and isinstance(v.value, ast.Name)
                    and v.value.id in ("params", "arrays")
                    and isinstance(v.slice, ast.Constant)):
                key = v.slice.value
                if v.value.id == "params":
                    self._add_scalar(target, _param_loader(key))
                elif target.startswith("_src_"):
                    srcs[target] = key
                else:
                    self._add_dense(target, key)
                continue
            if (isinstance(v, ast.Attribute) and isinstance(v.value, ast.Name)
                    and v.value.id in srcs):
                if v.attr == "runtime":
                    raise NativeLoweringError("generic runtime emitter")
                self._add_attr(target, srcs[v.value.id], v.attr)
                continue
            if (isinstance(v, ast.Call) and isinstance(v.func, ast.Name)
                    and v.func.id == "len" and len(v.args) == 1
                    and isinstance(v.args[0], ast.Attribute)
                    and isinstance(v.args[0].value, ast.Name)
                    and v.args[0].value.id in srcs):
                key, attr = srcs[v.args[0].value.id], v.args[0].attr
                self._add_scalar(target, _len_loader(key, attr))
                continue
            if (isinstance(v, ast.Call) and isinstance(v.func, ast.Attribute)
                    and isinstance(v.func.value, ast.Name)
                    and v.func.value.id in srcs):
                raise NativeLoweringError(
                    f"dynamic format call {v.func.attr!r} (generic emitter)")
            break
        else:
            i = len(stmts)
        return list(stmts[i:])

    def _add_scalar(self, name: str, loader) -> None:
        spec = ArgSpec(name, "scalar", loader)
        self.args.append(spec)
        self.scalars[name] = spec

    def _add_dense(self, name: str, key: str) -> None:
        # dtype/ndim resolved from usage later; dense data is float64
        spec = ArgSpec(name, "array", _array_loader(key), "float64", ndim=-1)
        self.args.append(spec)
        self.arrays[name] = spec

    def _add_attr(self, name: str, key: str, attr: str) -> None:
        inst = self.bindings.get(key)
        if inst is None:
            raise NativeLoweringError(f"no compile-time binding for {key!r}")
        val = getattr(inst, attr)
        if isinstance(val, np.ndarray):
            dt = val.dtype.name
            if dt not in _CTYPES:
                raise NativeLoweringError(f"unsupported dtype {dt} for {name}")
            spec = ArgSpec(name, "array", _attr_loader(key, attr), dt,
                           ndim=max(val.ndim, 1))
            self.args.append(spec)
            self.arrays[name] = spec
        elif isinstance(val, (int, np.integer)):
            self._add_scalar(name, _attr_loader(key, attr))
        else:
            raise NativeLoweringError(
                f"attribute {attr!r} of {key!r} is neither array nor int")

    def _infer_dense_shapes(self, body: Sequence[ast.stmt]) -> None:
        mod = ast.Module(body=list(body), type_ignores=[])
        for node in ast.walk(mod):
            if not (isinstance(node, ast.Subscript)
                    and isinstance(node.value, ast.Name)):
                continue
            spec = self.arrays.get(node.value.id)
            if spec is None or spec.ndim != -1:
                continue
            sl = node.slice
            if isinstance(sl, ast.Tuple):
                spec.ndim = len(sl.elts)
            elif isinstance(sl, ast.Constant) and sl.value == ():
                spec.ndim = 0
            else:
                spec.ndim = 1
        for spec in self.arrays.values():
            if spec.ndim == -1:
                spec.ndim = 1        # referenced but never subscripted

    # -- emission helpers -------------------------------------------------

    def emit(self, line: str) -> None:
        self.lines.append("    " * self.indent + line)

    def _need_helper(self, name: str, text: str) -> None:
        self.helpers.setdefault(name, text)

    def _array_of(self, node: ast.AST, what: str) -> ArgSpec:
        if isinstance(node, ast.Name) and node.id in self.arrays:
            return self.arrays[node.id]
        raise NativeLoweringError(f"{what} must be a known array argument")

    # -- expressions ------------------------------------------------------

    def cexpr(self, node: ast.AST) -> str:
        if isinstance(node, ast.Name):
            if node.id in self.arrays:
                raise NativeLoweringError(
                    f"raw array reference {node.id!r} outside subscript")
            return node.id
        if isinstance(node, ast.Constant):
            return self._const(node.value)
        if isinstance(node, ast.UnaryOp):
            if isinstance(node.op, ast.USub):
                return f"(-({self.cexpr(node.operand)}))"
            if isinstance(node.op, ast.Not):
                return f"(!({self.cexpr(node.operand)}))"
            raise NativeLoweringError(f"unary op {type(node.op).__name__}")
        if isinstance(node, ast.BinOp):
            return self._binop(node)
        if isinstance(node, ast.Compare):
            parts = []
            cur = node.left
            for op, comp in zip(node.ops, node.comparators):
                sym = {"Lt": "<", "LtE": "<=", "Gt": ">", "GtE": ">=",
                       "Eq": "==", "NotEq": "!="}.get(type(op).__name__)
                if sym is None:
                    raise NativeLoweringError(
                        f"comparison {type(op).__name__}")
                parts.append(f"({self.cexpr(cur)}) {sym} ({self.cexpr(comp)})")
                cur = comp
            return "(" + " && ".join(parts) + ")"
        if isinstance(node, ast.BoolOp):
            sym = " && " if isinstance(node.op, ast.And) else " || "
            return "(" + sym.join(f"({self.cexpr(v)})" for v in node.values) + ")"
        if isinstance(node, ast.IfExp):
            return (f"(({self.cexpr(node.test)}) ? ({self.cexpr(node.body)}) "
                    f": ({self.cexpr(node.orelse)}))")
        if isinstance(node, ast.Subscript):
            return self._subscript(node)
        if isinstance(node, ast.Call):
            return self._call(node)
        raise NativeLoweringError(f"expression {type(node).__name__}")

    def _const(self, value) -> str:
        if isinstance(value, bool):
            return "1" if value else "0"
        if isinstance(value, int):
            return str(value)
        if isinstance(value, float):
            s = repr(value)
            if "." not in s and "e" not in s and "E" not in s:
                s += ".0"
            return s
        raise NativeLoweringError(f"constant {value!r}")

    def _binop(self, node: ast.BinOp) -> str:
        l, r = self.cexpr(node.left), self.cexpr(node.right)
        op = type(node.op).__name__
        if op == "Add":
            return f"(({l}) + ({r}))"
        if op == "Sub":
            return f"(({l}) - ({r}))"
        if op == "Mult":
            return f"(({l}) * ({r}))"
        if op == "Div":
            # Python true division; cast both sides so int/int cannot
            # truncate (double/double is unchanged)
            return f"((double)({l}) / (double)({r}))"
        if op == "FloorDiv":
            # C '/' truncates toward zero; Python '//' floors
            self._need_helper("_fdiv", _helper_fdiv())
            return f"_fdiv({l}, {r})"
        if op == "Mod":
            # only emitted in divisibility guards ('% q == 0'), where C
            # and Python agree on zero-ness regardless of sign
            return f"(({l}) % ({r}))"
        raise NativeLoweringError(f"binary op {op}")

    def _subscript(self, node: ast.Subscript) -> str:
        spec = self._array_of(node.value, "subscript base")
        sl = node.slice
        if isinstance(sl, ast.Tuple):
            idx = list(sl.elts)
        elif isinstance(sl, ast.Constant) and sl.value == ():
            idx = []
        else:
            idx = [sl]
        if spec.ndim == 0:
            if idx:
                raise NativeLoweringError(f"{spec.cname}: scalar array indexed")
            return f"{spec.cname}[0]"
        if len(idx) != spec.ndim:
            raise NativeLoweringError(
                f"{spec.cname}: {len(idx)} indices for ndim {spec.ndim}")
        expr = self.cexpr(idx[0])
        for k in range(1, spec.ndim):
            expr = f"({expr}) * {spec.cname}__s{k - 1} + ({self.cexpr(idx[k])})"
        return f"{spec.cname}[{expr}]"

    def _call(self, node: ast.Call) -> str:
        if not isinstance(node.func, ast.Name):
            raise NativeLoweringError("method call")
        fn = node.func.id
        a = node.args
        if fn in ("max", "min") and len(a) == 2:
            self._need_helper("_imax", _helper_minmax())
            c = "_imax" if fn == "max" else "_imin"
            return f"{c}({self.cexpr(a[0])}, {self.cexpr(a[1])})"
        if fn == "len" and len(a) == 1:
            spec = self._array_of(a[0], "len() argument")
            spec.need_len = True
            return f"{spec.cname}__len"
        if fn == "_bisect" and len(a) == 4:
            arr = self._array_of(a[0], "_bisect array")
            name = f"_bisect_{_TAGS[arr.dtype]}"
            self._need_helper(name, _helper_bisect(arr.dtype))
            rest = ", ".join(self.cexpr(x) for x in a[1:])
            return f"{name}({arr.cname}, {rest})"
        if fn == "_coo_find" and len(a) == 4:
            rows = self._array_of(a[0], "_coo_find rows")
            cols = self._array_of(a[1], "_coo_find cols")
            rows.need_len = True
            name = f"_coo_find_{_TAGS[rows.dtype]}_{_TAGS[cols.dtype]}"
            self._need_helper(name, _helper_coo_find(rows.dtype, cols.dtype))
            return (f"{name}({rows.cname}, {rows.cname}__len, {cols.cname}, "
                    f"{self.cexpr(a[2])}, {self.cexpr(a[3])})")
        if fn == "_ell_find" and len(a) == 4:
            colind = self._array_of(a[0], "_ell_find colind")
            rowlen = self._array_of(a[1], "_ell_find rowlen")
            if colind.ndim != 2:
                raise NativeLoweringError("_ell_find colind must be 2-D")
            name = f"_ell_find_{_TAGS[colind.dtype]}_{_TAGS[rowlen.dtype]}"
            self._need_helper(name, _helper_ell_find(colind.dtype, rowlen.dtype))
            return (f"{name}({colind.cname}, {colind.cname}__s0, "
                    f"{rowlen.cname}, {self.cexpr(a[2])}, {self.cexpr(a[3])})")
        if fn == "_jad_row_find" and len(a) == 5:
            dptr = self._array_of(a[0], "_jad_row_find dptr")
            colind = self._array_of(a[1], "_jad_row_find colind")
            rowcnt = self._array_of(a[2], "_jad_row_find rowcnt")
            tags = (dptr.dtype, colind.dtype, rowcnt.dtype)
            name = f"_jad_row_find_{_TAGS[tags[0]]}_{_TAGS[tags[1]]}_{_TAGS[tags[2]]}"
            self._need_helper(name, _helper_jad_row_find(*tags))
            return (f"{name}({dptr.cname}, {colind.cname}, {rowcnt.cname}, "
                    f"{self.cexpr(a[3])}, {self.cexpr(a[4])})")
        if fn == "_jad_find" and len(a) == 6:
            ipermi = self._array_of(a[0], "_jad_find ipermi")
            dptr = self._array_of(a[1], "_jad_find dptr")
            colind = self._array_of(a[2], "_jad_find colind")
            rowcnt = self._array_of(a[3], "_jad_find rowcnt")
            ipermi.need_len = True
            tags = (dptr.dtype, colind.dtype, rowcnt.dtype)
            inner = f"_jad_row_find_{_TAGS[tags[0]]}_{_TAGS[tags[1]]}_{_TAGS[tags[2]]}"
            self._need_helper(inner, _helper_jad_row_find(*tags))
            name = (f"_jad_find_{_TAGS[ipermi.dtype]}_{_TAGS[tags[0]]}_"
                    f"{_TAGS[tags[1]]}_{_TAGS[tags[2]]}")
            self._need_helper(name, _helper_jad_find(ipermi.dtype, *tags))
            return (f"{name}({ipermi.cname}, {ipermi.cname}__len, {dptr.cname}, "
                    f"{colind.cname}, {rowcnt.cname}, "
                    f"{self.cexpr(a[4])}, {self.cexpr(a[5])})")
        raise NativeLoweringError(f"call to {fn!r}")

    # -- statements -------------------------------------------------------

    def lower_body(self, stmts: Sequence[ast.stmt]) -> None:
        for st in stmts:
            self.lower_stmt(st)

    def lower_stmt(self, node: ast.stmt) -> None:
        if isinstance(node, ast.Assign):
            self._assign(node)
        elif isinstance(node, ast.AugAssign):
            self._augassign(node)
        elif isinstance(node, ast.For):
            self._for(node)
        elif isinstance(node, ast.While):
            self.emit(f"while ({self.cexpr(node.test)}) {{")
            self.indent += 1
            self.lower_body(node.body)
            self.indent -= 1
            self.emit("}")
        elif isinstance(node, ast.If):
            self.emit(f"if ({self.cexpr(node.test)}) {{")
            self.indent += 1
            self.lower_body(node.body)
            self.indent -= 1
            if node.orelse:
                self.emit("} else {")
                self.indent += 1
                self.lower_body(node.orelse)
                self.indent -= 1
            self.emit("}")
        elif isinstance(node, ast.Return):
            pass                               # trailing 'return None'
        else:
            raise NativeLoweringError(f"statement {type(node).__name__}")

    def _assign(self, node: ast.Assign) -> None:
        if len(node.targets) != 1:
            raise NativeLoweringError("multiple assignment targets")
        tgt = node.targets[0]
        if isinstance(tgt, ast.Name):
            if isinstance(node.value, (ast.List, ast.ListComp)):
                raise NativeLoweringError("list value (sorted enumeration)")
            if tgt.id in self.arrays or tgt.id in self.scalars:
                raise NativeLoweringError(f"reassignment of argument {tgt.id}")
            rhs = self.cexpr(node.value)
            if tgt.id in self.declared:
                self.emit(f"{tgt.id} = {rhs};")
            else:
                self.declared.add(tgt.id)
                self.emit(f"int64_t {tgt.id} = {rhs};")
            return
        if isinstance(tgt, ast.Subscript):
            spec = self._array_of(tgt.value, "store target")
            spec.written = True
            lhs = self._subscript(tgt)
            rmw_op = _rmw_op(tgt, node.value)
            if self.atomic_region:
                if rmw_op is not None:
                    # OpenMP atomic update form: x = x op expr
                    self.emit("#pragma omp atomic")
                    self.emit(f"{lhs} = {lhs} {rmw_op} "
                              f"({self.cexpr(node.value.right)});")
                    return
                raise NativeLoweringError(
                    "non-accumulation store inside atomic parallel loop")
            self.emit(f"{lhs} = {self.cexpr(node.value)};")
            return
        raise NativeLoweringError(f"assignment target {type(tgt).__name__}")

    def _augassign(self, node: ast.AugAssign) -> None:
        op = {"Add": "+=", "Sub": "-=", "Mult": "*="}.get(
            type(node.op).__name__)
        if op is None or not isinstance(node.target, ast.Name):
            raise NativeLoweringError("augmented assignment form")
        if node.target.id not in self.declared:
            raise NativeLoweringError(
                f"augmented assignment to undeclared {node.target.id}")
        self.emit(f"{node.target.id} {op} {self.cexpr(node.value)};")

    def _range_parts(self, node: ast.For):
        it = node.iter
        if not (isinstance(it, ast.Call) and isinstance(it.func, ast.Name)
                and it.func.id == "range"):
            raise NativeLoweringError("non-range for loop")
        args = it.args
        if len(args) == 1:
            return "0", self.cexpr(args[0]), 1
        if len(args) == 2:
            return self.cexpr(args[0]), self.cexpr(args[1]), 1
        if len(args) == 3:
            step = args[2]
            if (isinstance(step, ast.UnaryOp) and isinstance(step.op, ast.USub)
                    and isinstance(step.operand, ast.Constant)
                    and step.operand.value == 1):
                sv = -1
            elif isinstance(step, ast.Constant) and step.value in (1, -1):
                sv = step.value
            else:
                raise NativeLoweringError("non-unit range step")
            return self.cexpr(args[0]), self.cexpr(args[1]), sv
        raise NativeLoweringError("range arity")

    def _for(self, node: ast.For) -> None:
        if not isinstance(node.target, ast.Name):
            raise NativeLoweringError("tuple for-loop target")
        lo, hi, step = self._range_parts(node)
        flag = "seq"
        if (self.loop_flags is not None and self.parallel_depth == 0
                and not self.atomic_region):
            flag = self.loop_flags[self.for_index]
        self.for_index += 1
        atomic_here = False
        if flag == "par_atomic":
            # every store in the body must be an atomic-able accumulation,
            # otherwise the loop stays sequential
            if _all_stores_rmw(node.body):
                atomic_here = True
            else:
                flag = "seq"
        if flag in ("par", "par_atomic"):
            self.emit("#pragma omp parallel for")
            self.uses_openmp = True
        v = node.target.id
        if step > 0:
            hdr = f"for (int64_t {v} = {lo}; {v} < {hi}; {v}++)"
        else:
            hdr = f"for (int64_t {v} = {lo}; {v} > {hi}; {v}--)"
        self.emit(hdr + " {")
        self.indent += 1
        entered_parallel = flag in ("par", "par_atomic")
        if entered_parallel:
            self.parallel_depth += 1
        if atomic_here:
            self.atomic_region = True
        self.lower_body(node.body)
        if atomic_here:
            self.atomic_region = False
        if entered_parallel:
            self.parallel_depth -= 1
        self.indent -= 1
        self.emit("}")

    # -- assembly ---------------------------------------------------------

    def c_signature(self) -> str:
        parts: List[str] = []
        for spec in self.args:
            if spec.kind == "scalar":
                parts.append(f"int64_t {spec.cname}")
            else:
                parts.append(f"{_CTYPES[spec.dtype]} *{spec.cname}")
                for k in range(max(spec.ndim - 1, 0)):
                    parts.append(f"int64_t {spec.cname}__s{k}")
                if spec.need_len:
                    parts.append(f"int64_t {spec.cname}__len")
        return ", ".join(parts) if parts else "void"

    def translation_unit(self) -> str:
        head = ["#include <stdint.h>", ""]
        head.extend(self.helpers[k] for k in sorted(self.helpers))
        head.append(f"void kernel({self.c_signature()}) {{")
        return "\n".join(head + self.lines + ["}", ""])


def _rmw_op(target: ast.Subscript, value: ast.AST) -> Optional[str]:
    """'+', '-', '*', '/' when value is ``target op expr``, else None."""
    if not isinstance(value, ast.BinOp):
        return None
    op = {"Add": "+", "Sub": "-", "Mult": "*", "Div": "/"}.get(
        type(value.op).__name__)
    if op is None:
        return None
    if ast.unparse(value.left) != ast.unparse(target):
        return None
    # OpenMP atomic requires the update expression not to read the target
    if ast.unparse(target) in ast.unparse(value.right):
        return None
    return op


def _all_stores_rmw(body: Sequence[ast.stmt]) -> bool:
    for st in body:
        for node in ast.walk(st):
            if isinstance(node, ast.Assign):
                tgt = node.targets[0]
                if isinstance(tgt, ast.Subscript) and \
                        _rmw_op(tgt, node.value) is None:
                    return False
    return True


# ---------------------------------------------------------------------------
# Plan-aligned loop verdicts
# ---------------------------------------------------------------------------

def emitted_loop_flags(plan: Plan, report, flavour: str) -> List[str]:
    """Per emitted ``for`` loop (in source order), how it may run:
    ``"par"`` (strict DOALL), ``"par_atomic"`` (DOALL given atomic
    accumulation — only meaningful under the atomic flavour), or
    ``"seq"``.  Search-driven loop nodes emit no ``for`` and are skipped;
    sorted enumerations emit auxiliary loops and are rejected upstream by
    the lowering itself."""
    flags: List[str] = []

    def verdict(dims: Sequence[str]) -> str:
        if all(d in report.strict for d in dims):
            return "par"
        if flavour == "atomic" and all(d in report.atomic for d in dims):
            return "par_atomic"
        return "seq"

    def walk(nodes: Sequence[PlanNode]) -> None:
        for n in nodes:
            if isinstance(n, LoopNode):
                walk(n.before)
                if isinstance(n.method, SortedEnum):
                    flags.append("seq")
                    flags.append("seq")    # gather loop + replay loop
                elif not isinstance(n.method, SearchEnum):
                    flags.append(verdict(n.dim_names))
                walk(n.body)
                walk(n.after)
            elif isinstance(n, VarLoopNode):
                flags.append(verdict([n.dim_name]))
                walk(n.body)

    walk(plan.nodes)
    return flags


# ---------------------------------------------------------------------------
# Entry points
# ---------------------------------------------------------------------------

def lower_source(py_source: str, bindings: Mapping[str, object],
                 flavour: str = "none",
                 loop_flags: Optional[List[str]] = None) -> NativeSpec:
    """Lower generated Python kernel source to a C99 translation unit.

    ``bindings`` supplies the compile-time format instances (dtype and
    rank resolution for the index/value arrays).  ``loop_flags`` is the
    per-``for`` parallelism verdict list from :func:`emitted_loop_flags`
    (None: fully sequential)."""
    low = _Lowerer(py_source, bindings, flavour, loop_flags)
    low.lower_body(low.body)
    return NativeSpec(low.translation_unit(), low.args, low.uses_openmp,
                      flavour)


def lower_kernel(kernel, parallel: str = "none") -> NativeSpec:
    """Lower a :class:`~repro.core.compiler.CompiledKernel`'s generated
    source to C, with OpenMP pragmas on the loops its
    :class:`~repro.core.parallel.ParallelReport` proves order-free."""
    from repro.instrument import INSTR

    with INSTR.phase("c_lower"):
        flags = None
        if parallel not in ("none", "strict", "atomic"):
            raise ValueError(
                f"parallel must be 'none', 'strict' or 'atomic', got {parallel!r}")
        if parallel != "none":
            from repro.analysis.dependence import dependences
            from repro.core.parallel import analyze_parallelism

            deps = dependences(kernel.program)
            report = analyze_parallelism(kernel.plan, deps)
            flags = emitted_loop_flags(kernel.plan, report, parallel)
        return lower_source(kernel.source, kernel.bindings, parallel, flags)


def _param_loader(key: str):
    return lambda arrays, params: int(params[key])


def _array_loader(key: str):
    return lambda arrays, params: arrays[key]


def _attr_loader(key: str, attr: str):
    return lambda arrays, params: getattr(arrays[key], attr)


def _len_loader(key: str, attr: str):
    return lambda arrays, params: len(getattr(arrays[key], attr))

"""Specialized Python source generation from enumeration plans.

The emitted function has the structure a hand-written library kernel would
have — raw index-array loops, inlined binary searches, permutation lookups —
because every abstract operation of the plan is inlined through the bound
format's emitter (:mod:`repro.codegen.emitters`).  This is the analog of
the paper's Figure 9 C++ instantiation, and the vehicle for the Section 5
claim that generated code is structurally equivalent to the NIST library.

The generator is a *symbolic twin* of the reference interpreter
(:mod:`repro.codegen.interp`): instead of integer values it manipulates
affine expressions over emitted Python variables, performing the same
unification and relation propagation at compile time and emitting
assignments and guards where the interpreter would bind and check.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.codegen.emitters import RUNTIME_HELPERS, SourceWriter, make_emitter
from repro.core.plan import (
    Bind,
    DRIVER,
    ExecNode,
    IntervalEnum,
    LoopNode,
    Plan,
    PlanNode,
    SEARCH,
    SHARED,
    SearchEnum,
    SortedEnum,
    StoredEnum,
    VarLoopNode,
)
from repro.core.spaces import SparseRef, StmtCopy
from repro.instrument import INSTR
from repro.ir.expr import ValExpr, VBin, VConst, VNeg, VParam, VRead
from repro.polyhedra.linexpr import LinExpr


class CodegenError(RuntimeError):
    pass


def _lcm(a: int, b: int) -> int:
    g, x = a, b
    while x:
        g, x = x, g % x
    return a // g * b


def render_pv(pv: LinExpr) -> str:
    """Render an affine expression over Python symbols as integer Python.
    Fractional coefficients become an exact scaled floor-division (callers
    add divisibility guards where integrality is not already guaranteed)."""
    q = 1
    for c in list(pv.coeffs.values()) + [pv.const]:
        q = _lcm(q, c.denominator)
    if q != 1:
        return f"({render_pv(pv * q)}) // {q}"
    parts: List[str] = []
    for v in sorted(pv.coeffs):
        c = pv.coeffs[v]
        ci = int(c)
        if ci == 1:
            term = v
        elif ci == -1:
            term = f"-{v}"
        else:
            term = f"{ci}*{v}"
        if parts and not term.startswith("-"):
            parts.append(f"+ {term}")
        elif parts:
            parts.append(f"- {term[1:]}")
        else:
            parts.append(term)
    ci = int(pv.const)
    if ci != 0 or not parts:
        if parts:
            parts.append(f"+ {ci}" if ci > 0 else f"- {-ci}")
        else:
            parts.append(str(ci))
    s = " ".join(parts)
    return s


def guard_str(pv: LinExpr, op: str) -> str:
    """Render ``pv op 0`` with fractions cleared (op is '>=' or '==')."""
    q = 1
    for c in list(pv.coeffs.values()) + [pv.const]:
        q = _lcm(q, c.denominator)
    scaled = pv * q
    return f"{render_pv(scaled)} {op} 0"


class _State:
    """Snapshot-able generation state."""

    __slots__ = ("env", "guards", "refstates", "pruned")

    def __init__(self):
        self.env: Dict[str, LinExpr] = {}        # qualified var -> PyVal
        self.guards: Dict[str, List[str]] = {}   # copy label -> conditions
        self.refstates: Dict[Tuple[str, int], Tuple[str, ...]] = {}
        self.pruned: Set[str] = set()

    def fork(self) -> "_State":
        s = _State()
        s.env = dict(self.env)
        s.guards = {k: list(v) for k, v in self.guards.items()}
        s.refstates = dict(self.refstates)
        s.pruned = set(self.pruned)
        return s


class PySourceGenerator:
    def __init__(self, plan: Plan):
        self.plan = plan
        self.out = SourceWriter()
        self.copies: Dict[str, StmtCopy] = {c.label: c for c in plan.space.copies}
        self.relations: Dict[str, List[LinExpr]] = {
            c.label: [con.expr for con in c.relation().equalities()]
            for c in plan.space.copies
        }
        self.copy_vars: Dict[str, List[str]] = {
            c.label: c.all_vars() for c in plan.space.copies
        }
        # one emitter per (matrix instance, path); refs sharing both share it
        self.emitters: Dict[Tuple[str, int], object] = {}
        self._emitter_pool: Dict[Tuple[int, str], object] = {}
        idx = 0
        self.array_of_emitter: Dict[str, str] = {}
        for copy in plan.space.copies:
            for ref in copy.refs:
                key = (id(ref.fmt), ref.path.path_id)
                if key not in self._emitter_pool:
                    name = f"M{idx}"
                    idx += 1
                    self._emitter_pool[key] = make_emitter(ref, name)
                    self.array_of_emitter[name] = ref.array
                self.emitters[ref.key] = self._emitter_pool[key]
        # parameters: unqualified variables mentioned anywhere
        self.params: List[str] = sorted(self._collect_params())
        self.dense_arrays: List[str] = sorted(self._collect_dense_arrays())

    # -- collection ------------------------------------------------------
    def _collect_params(self) -> Set[str]:
        names: Set[str] = set()

        def scan_lin(e: LinExpr):
            for v in e.variables():
                if "." not in v:
                    names.add(v)

        for eqs in self.relations.values():
            for e in eqs:
                scan_lin(e)

        def scan_nodes(nodes):
            for n in nodes:
                if isinstance(n, LoopNode):
                    for b in n.binds:
                        scan_lin(b.expr)
                    if isinstance(n.method, SearchEnum):
                        for e in n.method.key_exprs:
                            scan_lin(e)
                    scan_nodes(n.before)
                    scan_nodes(n.body)
                    scan_nodes(n.after)
                elif isinstance(n, VarLoopNode):
                    scan_lin(n.lo)
                    scan_lin(n.hi)
                    for b in n.binds:
                        scan_lin(b.expr)
                    scan_nodes(n.body)
                elif isinstance(n, ExecNode):
                    for g in n.guards:
                        scan_lin(g)
                    # statement index expressions use *local* loop-variable
                    # names; qualify them first so only true parameters
                    # (unqualified after renaming) are collected
                    qmap = n.copy.qual_map()
                    for i in n.copy.ctx.stmt.lhs.indices:
                        scan_lin(i.rename(qmap).lin)
                    for r in n.copy.ctx.stmt.reads():
                        for i in r.indices:
                            scan_lin(i.rename(qmap).lin)
                    _scan_vparams(n.copy.ctx.stmt.rhs, names)

        scan_nodes(self.plan.nodes)
        return names

    def _collect_dense_arrays(self) -> Set[str]:
        sparse = {ref.array for c in self.plan.space.copies for ref in c.refs}
        out: Set[str] = set()
        for copy in self.plan.space.copies:
            stmt = copy.ctx.stmt
            if stmt.lhs.array not in sparse:
                out.add(stmt.lhs.array)
            for r in stmt.reads():
                if r.array != "__var__" and r.array not in sparse:
                    out.add(r.array)
        return out

    # -- symbolic unification ---------------------------------------------
    def _resolve(self, expr: LinExpr, st: _State) -> Tuple[LinExpr, List[Tuple[str, Fraction]]]:
        """Split an expression over qualified vars/params into a PyVal over
        emitted symbols plus the list of unresolved variables."""
        pv = LinExpr.constant(expr.const)
        unbound: List[Tuple[str, Fraction]] = []
        for v in expr.variables():
            c = expr.coeff(v)
            if v in st.env:
                pv = pv + st.env[v] * c
            elif "." not in v:
                pv = pv + LinExpr.variable(f"p_{v}") * c
            else:
                unbound.append((v, c))
        return pv, unbound

    def _unify(self, label: str, expr: LinExpr, value: LinExpr, st: _State) -> None:
        """Symbolically enforce ``expr == value`` for one copy: bind a
        variable or append a guard, then propagate relations."""
        pv, unbound = self._resolve(expr, st)
        residual = value - pv
        if not unbound:
            cond = guard_str(residual, "==")
            if cond != "0 == 0":
                st.guards.setdefault(label, []).append(cond)
            return
        if len(unbound) > 1:
            raise CodegenError(f"cannot unify {expr!r}: several unbound variables")
        v, c = unbound[0]
        sol = residual * (Fraction(1) / c)
        q = 1
        for coeff in list(sol.coeffs.values()) + [sol.const]:
            q = _lcm(q, coeff.denominator)
        if q != 1:
            st.guards.setdefault(label, []).append(
                f"({render_pv(sol * q)}) % {q} == 0"
            )
        st.env[v] = sol
        self._propagate(label, st)

    def _propagate(self, label: str, st: _State) -> None:
        """Symbolic twin of the interpreter's relation propagation."""
        changed = True
        while changed:
            changed = False
            for eq in self.relations[label]:
                pv, unbound = self._resolve(eq, st)
                if not unbound:
                    cond = guard_str(pv, "==")
                    if cond != "0 == 0":
                        gl = st.guards.setdefault(label, [])
                        if cond not in gl:
                            gl.append(cond)
                elif len(unbound) == 1:
                    v, c = unbound[0]
                    sol = pv * (Fraction(-1) / c)
                    q = 1
                    for coeff in list(sol.coeffs.values()) + [sol.const]:
                        q = _lcm(q, coeff.denominator)
                    if q != 1:
                        st.guards.setdefault(label, []).append(
                            f"({render_pv(sol * q)}) % {q} == 0"
                        )
                    st.env[v] = sol
                    changed = True
        if all(v in st.env for v in self.copy_vars[label]):
            return
        self._propagate_full(label, st)

    def _propagate_full(self, label: str, st: _State) -> None:
        """Exact symbolic Gaussian elimination: variable columns over
        rationals, the constant column over PyVals."""
        vars_ = [v for v in self.copy_vars[label] if v not in st.env]
        if not vars_:
            return
        index = {v: i for i, v in enumerate(vars_)}
        rows: List[Tuple[List[Fraction], LinExpr]] = []
        for eq in self.relations[label]:
            pv, unbound = self._resolve(eq, st)
            if not unbound:
                continue
            coeffs = [Fraction(0)] * len(vars_)
            skip = False
            for v, c in unbound:
                if v not in index:
                    skip = True
                    break
                coeffs[index[v]] = c
            if skip:
                continue
            rows.append((coeffs, pv))
        # eliminate
        pivot_rows: List[Tuple[List[Fraction], LinExpr, int]] = []
        for coeffs, pv in rows:
            coeffs = list(coeffs)
            for pcoeffs, ppv, pcol in pivot_rows:
                f = coeffs[pcol]
                if f != 0:
                    coeffs = [a - f * b for a, b in zip(coeffs, pcoeffs)]
                    pv = pv - ppv * f
            lead = next((j for j, x in enumerate(coeffs) if x != 0), None)
            if lead is None:
                continue
            inv = Fraction(1) / coeffs[lead]
            coeffs = [x * inv for x in coeffs]
            pv = pv * inv
            pivot_rows.append((coeffs, pv, lead))
        # back-substitute to find fully determined variables
        for coeffs, pv, lead in pivot_rows:
            work_c = list(coeffs)
            work_pv = pv
            for c2, pv2, l2 in pivot_rows:
                if l2 != lead and work_c[l2] != 0:
                    f = work_c[l2]
                    work_c = [a - f * b for a, b in zip(work_c, c2)]
                    work_pv = work_pv - pv2 * f
            if all(x == 0 for j, x in enumerate(work_c) if j != lead):
                v = vars_[lead]
                sol = work_pv * Fraction(-1)
                q = 1
                for coeff in list(sol.coeffs.values()) + [sol.const]:
                    q = _lcm(q, coeff.denominator)
                if q != 1:
                    st.guards.setdefault(label, []).append(
                        f"({render_pv(sol * q)}) % {q} == 0"
                    )
                if v not in st.env:
                    st.env[v] = sol

    # -- generation ----------------------------------------------------------
    def generate(self) -> str:
        out = self.out
        out.emit("import numpy as _np")
        out.emit(RUNTIME_HELPERS)
        out.emit("def kernel(arrays, params):")
        out.push()
        for p in self.params:
            out.emit(f"p_{p} = params[{p!r}]")
        for a in self.dense_arrays:
            out.emit(f"arr_{a} = arrays[{a!r}]")
        for (fmt_id, path_id), em in self._emitter_pool.items():
            array = self.array_of_emitter[em.name]
            out.emit(f"_src_{em.name} = arrays[{array!r}]")
            em.prologue(out, f"_src_{em.name}")
        st = _State()
        for label in self.copies:
            self._propagate(label, st)
            # statically inconsistent copies never execute
            for g in st.guards.get(label, []):
                if g.replace(" ", "") in ("1==0", "-1==0"):
                    st.pruned.add(label)
        self._gen_nodes(self.plan.nodes, st)
        out.emit("return None")
        out.pop()
        return out.text()

    def _gen_nodes(self, nodes: Sequence[PlanNode], st: _State) -> None:
        for n in nodes:
            if isinstance(n, LoopNode):
                self._gen_loop(n, st.fork())
            elif isinstance(n, VarLoopNode):
                self._gen_varloop(n, st.fork())
            elif isinstance(n, ExecNode):
                self._gen_exec(n, st.fork())
            else:
                raise CodegenError(f"unknown node {n!r}")

    def _active_roles(self, node: LoopNode, st: _State):
        return [r for r in node.roles if r.ref.owner_label not in st.pruned]

    def _gen_loop(self, node: LoopNode, st: _State) -> None:
        out = self.out
        self._gen_nodes(node.before, st.fork())
        method = node.method
        driver = method.driver
        em = self.emitters[driver.key]
        dstates = list(st.refstates.get(driver.key, ()))
        base_indent = out.indent
        inner = st.fork()

        if isinstance(method, StoredEnum):
            keys, new_states = em.loop(out, method.step, dstates, method.reverse)
        elif isinstance(method, SortedEnum):
            gather = out.fresh("_gather")
            out.emit(f"{gather} = []")
            keys0, new0 = em.loop(out, method.step, dstates, False)
            tup = ", ".join(list(keys0) + list(new0))
            out.emit(f"{gather}.append(({tup}))")
            while out.indent > base_indent:
                out.pop()
            signs = method.signs or tuple(1 for _ in keys0)
            sort_key = ", ".join(
                (f"_t[{i}]" if s > 0 else f"-_t[{i}]") for i, s in enumerate(signs)
            )
            out.emit(f"{gather}.sort(key=lambda _t: ({sort_key},))")
            names = [out.fresh("_sk") for _ in keys0] + [out.fresh("_ss") for _ in new0]
            out.emit(f"for {', '.join(names)} in {gather}:")
            out.push()
            keys = names[:len(keys0)]
            new_states = names[len(keys0):]
        elif isinstance(method, IntervalEnum):
            iv = em.interval(out, method.step, dstates)
            if iv is None:
                raise CodegenError("interval enumeration without interval bounds")
            lo, hi = iv
            v = out.fresh("_iv")
            if method.reverse:
                out.emit(f"for {v} in range(({hi}) - 1, ({lo}) - 1, -1):")
            else:
                out.emit(f"for {v} in range({lo}, {hi}):")
            out.push()
            new_states, found = em.search(out, method.step, dstates, [v])
            out.emit(f"if {found}:")
            out.push()
            keys = [v]
        elif isinstance(method, SearchEnum):
            # resolve key expressions through the driver copy's environment
            key_strs = []
            for e in method.key_exprs:
                pv, unbound = self._resolve(e, inner)
                if unbound:
                    raise CodegenError(f"search key {e!r} not determined")
                key_strs.append(render_pv(pv))
            new_states, found = em.search(out, method.step, dstates, key_strs)
            out.emit(f"if {found}:")
            out.push()
            keys = key_strs
        else:
            raise CodegenError(f"unknown method {method!r}")

        # record driver/shared states & bind axis variables
        key_pvs = [LinExpr.variable(k) if k.isidentifier() else None for k in keys]

        def key_pv(i: int) -> LinExpr:
            if key_pvs[i] is None:
                # non-identifier key (SearchEnum rendered expr): name it
                nm = out.fresh("_kv")
                out.emit(f"{nm} = {keys[i]}")
                key_pvs[i] = LinExpr.variable(nm)
            return key_pvs[i]

        for role in self._active_roles(node, inner):
            ref = role.ref
            if role.role in (DRIVER, SHARED):
                # shared refs use the same emitter, hence the same states
                inner.refstates[ref.key] = tuple(dstates) + tuple(new_states)
            else:  # SEARCH
                rem = self.emitters[ref.key]
                rstates = list(inner.refstates.get(ref.key, ()))
                key_strs = [render_pv(key_pv(i)) for i in range(len(keys))]
                sstates, found = rem.search(out, role.step, rstates, key_strs)
                inner.guards.setdefault(ref.owner_label, []).append(found)
                inner.refstates[ref.key] = tuple(rstates) + tuple(sstates)
            step_axes = ref.path.steps[role.step].names
            for i, axis in enumerate(step_axes):
                var = ref.axis_var(axis)
                if var not in inner.env:
                    self._unify(ref.owner_label, LinExpr.variable(var),
                                key_pv(i), inner)

        # value bindings
        for b in node.binds:
            if b.copy_label in inner.pruned:
                continue
            self._unify(b.copy_label, b.expr, key_pv(b.axis_pos), inner)

        self._gen_nodes(node.body, inner)
        while out.indent > base_indent:
            out.pop()
        self._gen_nodes(node.after, st.fork())

    def _gen_varloop(self, node: VarLoopNode, st: _State) -> None:
        out = self.out
        lo_pv, u1 = self._resolve(node.lo, st)
        hi_pv, u2 = self._resolve(node.hi, st)
        if u1 or u2:
            raise CodegenError("loop bounds not determined at emission point")
        v = out.fresh("_v")
        lo_s, hi_s = render_pv(lo_pv), render_pv(hi_pv)
        if node.reverse:
            out.emit(f"for {v} in range(({hi_s}) - 1, ({lo_s}) - 1, -1):")
        else:
            out.emit(f"for {v} in range({lo_s}, {hi_s}):")
        out.push()
        inner = st.fork()
        for b in node.binds:
            if b.copy_label in inner.pruned:
                continue
            self._unify(b.copy_label, b.expr, LinExpr.variable(v), inner)
        self._gen_nodes(node.body, inner)
        out.pop()

    # -- statement emission -------------------------------------------------
    def _gen_exec(self, node: ExecNode, st: _State) -> None:
        out = self.out
        copy = node.copy
        if copy.label in st.pruned:
            return
        conds = list(st.guards.get(copy.label, []))
        for g in node.guards:
            pv, unbound = self._resolve(g, st)
            if unbound:
                # an unbound guard variable means this execution point can
                # never be reached with a complete instance
                return
            cond = guard_str(pv, ">=")
            if cond not in conds and not _trivially_true(cond):
                conds.append(cond)
        # all iteration vars must resolve
        local: Dict[str, LinExpr] = {}
        for v in copy.ctx.vars:
            q = copy.qual(v)
            pv, unbound = self._resolve(LinExpr.variable(q), st)
            if unbound:
                raise CodegenError(f"iteration variable {q} unbound at execution")
            local[v] = pv
        if conds:
            out.emit(f"if {' and '.join(conds)}:")
            out.push()
        value = self._render_val(copy.ctx.stmt.rhs, copy, local, st)
        lhs_ref = copy.ref_by_ordinal(0)
        if lhs_ref is not None:
            em = self.emitters[lhs_ref.key]
            em.set(out, list(st.refstates.get(lhs_ref.key, ())), value)
        else:
            lhs = copy.ctx.stmt.lhs
            idx = ", ".join(
                render_pv(self._resolve(i.rename(copy.qual_map()).lin, st)[0])
                for i in lhs.indices
            )
            if lhs.indices:
                out.emit(f"arr_{lhs.array}[{idx}] = {value}")
            else:
                out.emit(f"arr_{lhs.array}[()] = {value}")
        if conds:
            out.pop()

    def _render_val(self, e: ValExpr, copy: StmtCopy, local: Dict[str, LinExpr],
                    st: _State, prec: int = 0) -> str:
        if isinstance(e, VConst):
            return repr(e.value)
        if isinstance(e, VParam):
            return f"p_{e.name}"
        if isinstance(e, VNeg):
            return f"(-{self._render_val(e.operand, copy, local, st, 3)})"
        if isinstance(e, VBin):
            p = {"+": 1, "-": 1, "*": 2, "/": 2}[e.op]
            l = self._render_val(e.left, copy, local, st, p)
            r = self._render_val(e.right, copy, local, st, p + 1)
            s = f"{l} {e.op} {r}"
            return f"({s})" if p < prec else s
        if isinstance(e, VRead):
            if e.array == "__var__":
                pv, _ = self._resolve(e.indices[0].rename(copy.qual_map()).lin, st)
                return f"({render_pv(pv)})"
            ordinal = self._ordinal_of_read(copy, e)
            if ordinal is not None:
                ref = copy.ref_by_ordinal(ordinal)
                if ref is not None:
                    em = self.emitters[ref.key]
                    return em.get(list(st.refstates.get(ref.key, ())))
            idx = ", ".join(
                render_pv(self._resolve(i.rename(copy.qual_map()).lin, st)[0])
                for i in e.indices
            )
            if e.indices:
                return f"arr_{e.array}[{idx}]"
            return f"arr_{e.array}[()]"
        raise CodegenError(f"unknown ValExpr {type(e).__name__}")

    def _ordinal_of_read(self, copy: StmtCopy, target: VRead) -> Optional[int]:
        ordinal = 0
        for r in copy.ctx.stmt.reads():
            if r.array == "__var__":
                continue
            ordinal += 1
            if r is target:
                return ordinal
        return None


def _scan_vparams(e: ValExpr, names: Set[str]) -> None:
    if isinstance(e, VParam):
        names.add(e.name)
    elif isinstance(e, VNeg):
        _scan_vparams(e.operand, names)
    elif isinstance(e, VBin):
        _scan_vparams(e.left, names)
        _scan_vparams(e.right, names)


def _trivially_true(cond: str) -> bool:
    c = cond.replace(" ", "")
    if c.endswith(">=0"):
        head = c[:-3]
        try:
            return int(head) >= 0
        except ValueError:
            return False
    return False


def generate_python_source(plan: Plan) -> str:
    return PySourceGenerator(plan).generate()


def compile_plan_to_python(plan: Plan):
    """(source, callable) for a plan; the callable has the signature
    ``kernel(arrays, params)`` and mutates the arrays in place."""
    with INSTR.phase("codegen.total"):
        INSTR.count("codegen.compiles")
        src = generate_python_source(plan)
        fn = source_to_callable(src)
    return src, fn


def source_to_callable(src: str):
    """Exec generated kernel source and return its ``kernel`` callable
    (shared by fresh codegen and the compilation cache's source replay)."""
    namespace: Dict[str, object] = {}
    exec(compile(src, "<bernoulli-generated>", "exec"), namespace)
    return namespace["kernel"]

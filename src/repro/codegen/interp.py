"""Reference interpreter for enumeration plans.

Executes a plan directly against the abstract path runtimes — the exact
operational semantics of the data-centric pseudocode (paper Figures 5/8).
It is deliberately simple (per-iteration context forks, generic unification
of affine bindings with relation propagation) and serves as the correctness
oracle for the specialized Python source emitted by
:mod:`repro.codegen.pysource`.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.plan import (
    Bind,
    DRIVER,
    ExecNode,
    IntervalEnum,
    LoopNode,
    Plan,
    PlanNode,
    RefRole,
    SEARCH,
    SHARED,
    SearchEnum,
    SortedEnum,
    StoredEnum,
    VarLoopNode,
)
from repro.core.spaces import SparseRef, StmtCopy
from repro.formats.base import PathRuntime, SparseFormat
from repro.ir.expr import ValExpr, VBin, VConst, VNeg, VParam, VRead
from repro.polyhedra.linexpr import LinExpr


class ExecutionError(RuntimeError):
    """The plan hit a state the compiler should have prevented."""


class _Ctx:
    """Mutable interpreter context: one dictionary of bound (qualified)
    variables, per-reference state stacks, and the set of pruned copies."""

    __slots__ = ("env", "refstates", "pruned")

    def __init__(self, env: Dict[str, int], refstates: Dict[Tuple[str, int], Tuple],
                 pruned: Set[str]):
        self.env = env
        self.refstates = refstates
        self.pruned = pruned

    def fork(self) -> "_Ctx":
        return _Ctx(dict(self.env), dict(self.refstates), set(self.pruned))


class PlanInterpreter:
    """Executes one plan for one set of inputs."""

    def __init__(self, plan: Plan, arrays: Mapping[str, object],
                 params: Mapping[str, int]):
        self.plan = plan
        self.arrays = dict(arrays)
        self.params = {k: int(v) for k, v in params.items()}
        self.copies: Dict[str, StmtCopy] = {c.label: c for c in plan.space.copies}
        # runtimes and relation equalities per copy, built once
        self.runtimes: Dict[Tuple[str, int], PathRuntime] = {}
        self.fmt_of_ref: Dict[Tuple[str, int], SparseFormat] = {}
        self.relations: Dict[str, List[LinExpr]] = {}
        self.copy_vars: Dict[str, List[str]] = {}
        for copy in plan.space.copies:
            eqs = [c.expr for c in copy.relation().equalities()]
            self.relations[copy.label] = eqs
            self.copy_vars[copy.label] = copy.all_vars()
            for ref in copy.refs:
                fmt = self.arrays.get(ref.array)
                if not isinstance(fmt, SparseFormat):
                    raise ExecutionError(
                        f"array {ref.array!r} must be given as a {ref.fmt.format_name} "
                        f"instance"
                    )
                self.runtimes[ref.key] = fmt.runtime(ref.path.path_id)
                self.fmt_of_ref[ref.key] = fmt

    # -- variable unification ---------------------------------------------
    def _value_of(self, name: str, env: Dict[str, int]) -> Optional[int]:
        if name in env:
            return env[name]
        if name in self.params:
            return self.params[name]
        return None

    def _unify(self, copy_label: str, expr: LinExpr, value: int,
               ctx: _Ctx) -> bool:
        """Bind/check ``expr == value``; propagate relation equalities.
        Returns False when the copy's instance set is empty here."""
        residual = Fraction(value) - expr.const
        unbound: List[Tuple[str, Fraction]] = []
        for v in expr.variables():
            val = self._value_of(v, ctx.env)
            if val is None:
                unbound.append((v, expr.coeff(v)))
            else:
                residual -= expr.coeff(v) * val
        if not unbound:
            return residual == 0
        if len(unbound) > 1:
            raise ExecutionError(f"cannot unify {expr!r}: several unbound variables")
        name, coeff = unbound[0]
        sol = residual / coeff
        if sol.denominator != 1:
            return False
        ctx.env[name] = int(sol)
        return self._propagate(copy_label, ctx)

    def _propagate(self, copy_label: str, ctx: _Ctx) -> bool:
        """Solve the copy's relation equalities against the bound values.

        Fast path: repeatedly solve equalities with a single unknown.  When
        that stalls, fall back to exact Gaussian elimination over the whole
        equality system — needed when a variable is only determined by a
        *combination* of equalities (e.g. DIA's ``d + o == i`` and
        ``o == i`` force ``d == 0`` before any axis is enumerated)."""
        changed = True
        while changed:
            changed = False
            for eq in self.relations[copy_label]:
                residual = -eq.const
                unbound: List[Tuple[str, Fraction]] = []
                for v in eq.variables():
                    val = self._value_of(v, ctx.env)
                    if val is None:
                        unbound.append((v, eq.coeff(v)))
                    else:
                        residual -= eq.coeff(v) * val
                if not unbound:
                    if residual != 0:
                        return False
                elif len(unbound) == 1:
                    name, coeff = unbound[0]
                    sol = residual / coeff
                    if sol.denominator != 1:
                        return False
                    ctx.env[name] = int(sol)
                    changed = True
        if all(v in ctx.env for v in self.copy_vars[copy_label]):
            return True
        return self._propagate_full(copy_label, ctx)

    def _propagate_full(self, copy_label: str, ctx: _Ctx) -> bool:
        """Exact Gaussian elimination over (relations + bound values)."""
        from repro.util.fractions_linalg import FractionMatrix, row_reduce

        vars_ = self.copy_vars[copy_label]
        index = {v: i for i, v in enumerate(vars_)}
        ncols = len(vars_) + 1
        rows: List[List[Fraction]] = []
        for eq in self.relations[copy_label]:
            row = [Fraction(0)] * ncols
            row[-1] = eq.const
            for v in eq.variables():
                if v in index:
                    row[index[v]] = eq.coeff(v)
                else:
                    val = self._value_of(v, ctx.env)
                    if val is None:
                        raise ExecutionError(f"unknown variable {v!r} in relation")
                    row[-1] += eq.coeff(v) * val
            rows.append(row)
        for v in vars_:
            val = self._value_of(v, ctx.env)
            if val is not None:
                row = [Fraction(0)] * ncols
                row[index[v]] = Fraction(1)
                row[-1] = Fraction(-val)
                rows.append(row)
        red, pivots = row_reduce(FractionMatrix(rows))
        if pivots and pivots[-1] == ncols - 1:
            return False  # inconsistent: 0 == nonzero
        for r, pc in enumerate(pivots):
            if pc >= len(vars_):
                continue
            row = red.rows[r]
            if all(row[j] == 0 for j in range(len(vars_)) if j != pc):
                sol = -row[-1]
                if sol.denominator != 1:
                    return False
                name = vars_[pc]
                if name not in ctx.env:
                    ctx.env[name] = int(sol)
        return True

    # -- enumeration ----------------------------------------------------------
    def _entries(self, method, ctx: _Ctx):
        rt = self.runtimes[method.driver.key]
        prefix = ctx.refstates.get(method.driver.key, ())
        if isinstance(method, StoredEnum):
            it = rt.enumerate(method.step, prefix)
            if method.reverse:
                return reversed(list(it))
            return it
        if isinstance(method, SortedEnum):
            entries = list(rt.enumerate(method.step, prefix))
            signs = method.signs or (1,) * (len(entries[0][0]) if entries else 1)
            entries.sort(key=lambda e: tuple(s * k for s, k in zip(signs, e[0])))
            return entries
        if isinstance(method, IntervalEnum):
            iv = rt.interval(method.step, prefix)
            if iv is None:
                raise ExecutionError("interval enumeration on a non-interval step")
            lo, hi = iv
            rng = range(hi - 1, lo - 1, -1) if method.reverse else range(lo, hi)

            def gen():
                for v in rng:
                    st = rt.search(method.step, prefix, (v,))
                    if st is not None:
                        yield (v,), st

            return gen()
        if isinstance(method, SearchEnum):
            keys = tuple(self._eval_lin(e, ctx.env) for e in method.key_exprs)
            try:
                st = rt.search(method.step, prefix, keys)
            except NotImplementedError:
                # only formats without a search capability fall back to the
                # linear scan; real runtime bugs propagate
                st = self._linear_search(rt, method.step, prefix, keys)
            return [(keys, st)] if st is not None else []
        raise ExecutionError(f"unknown method {method!r}")

    def _linear_search(self, rt: PathRuntime, step: int, prefix: Tuple,
                       keys: Tuple[int, ...]):
        for k, st in rt.enumerate(step, prefix):
            if tuple(k) == tuple(keys):
                return st
        return None

    # -- node execution ----------------------------------------------------
    def run(self) -> None:
        ctx = _Ctx({}, {}, set())
        # initial propagation: relations may pin variables outright (DIA's
        # d == 0 for a diagonal access) before anything is enumerated
        for label in self.copies:
            if not self._propagate(label, ctx):
                ctx.pruned.add(label)  # statically empty instance set
        self._run_nodes(self.plan.nodes, ctx)

    def _run_nodes(self, nodes: Sequence[PlanNode], ctx: _Ctx) -> None:
        for node in nodes:
            if isinstance(node, LoopNode):
                self._run_loop(node, ctx)
            elif isinstance(node, VarLoopNode):
                self._run_varloop(node, ctx)
            elif isinstance(node, ExecNode):
                self._run_exec(node, ctx)
            else:
                raise ExecutionError(f"unknown node {node!r}")

    def _eval_lin(self, e: LinExpr, env: Dict[str, int]) -> int:
        total = e.const
        for v in e.variables():
            val = self._value_of(v, env)
            if val is None:
                raise ExecutionError(f"unbound variable {v!r} in {e!r}")
            total += e.coeff(v) * val
        if total.denominator != 1:
            raise ExecutionError(f"non-integer value for {e!r}")
        return int(total)

    def _run_loop(self, node: LoopNode, ctx: _Ctx) -> None:
        self._run_nodes(node.before, ctx.fork())
        for keys, state in self._entries(node.method, ctx):
            it = ctx.fork()
            ok = True
            # reference states + axis-variable bindings
            for role in node.roles:
                if role.ref.owner_label in it.pruned:
                    continue
                if role.role in (DRIVER, SHARED):
                    st = state
                else:  # SEARCH
                    rt = self.runtimes[role.ref.key]
                    prefix = it.refstates.get(role.ref.key, ())
                    try:
                        st = rt.search(role.step, prefix, tuple(keys))
                    except NotImplementedError:
                        st = self._linear_search(rt, role.step, prefix, tuple(keys))
                    if st is None:
                        it.pruned.add(role.ref.owner_label)
                        continue
                it.refstates[role.ref.key] = it.refstates.get(role.ref.key, ()) + (st,)
                step_axes = role.ref.path.steps[role.step].names
                for axis, k in zip(step_axes, keys):
                    if not self._unify(role.ref.owner_label,
                                       LinExpr.variable(role.ref.axis_var(axis)),
                                       int(k), it):
                        it.pruned.add(role.ref.owner_label)
                        break
            # value bindings
            for b in node.binds:
                if b.copy_label in it.pruned:
                    continue
                if not self._unify(b.copy_label, b.expr, int(keys[b.axis_pos]), it):
                    it.pruned.add(b.copy_label)
            self._run_nodes(node.body, it)
        self._run_nodes(node.after, ctx.fork())

    def _run_varloop(self, node: VarLoopNode, ctx: _Ctx) -> None:
        lo = self._eval_lin(node.lo, ctx.env)
        hi = self._eval_lin(node.hi, ctx.env)
        rng = range(hi - 1, lo - 1, -1) if node.reverse else range(lo, hi)
        for v in rng:
            it = ctx.fork()
            for b in node.binds:
                if b.copy_label in it.pruned:
                    continue
                if not self._unify(b.copy_label, b.expr, v, it):
                    it.pruned.add(b.copy_label)
            self._run_nodes(node.body, it)

    # -- statement execution -------------------------------------------------
    def _run_exec(self, node: ExecNode, ctx: _Ctx) -> None:
        copy = node.copy
        if copy.label in ctx.pruned:
            return
        env = ctx.env
        # all iteration variables must be bound
        local: Dict[str, int] = {}
        for v in copy.ctx.vars:
            val = self._value_of(copy.qual(v), env)
            if val is None:
                raise ExecutionError(
                    f"iteration variable {v} of {copy.label} unbound at execution"
                )
            local[v] = val
        for g in node.guards:
            total = g.const
            for var in g.variables():
                val = self._value_of(var, env)
                if val is None:
                    raise ExecutionError(
                        f"guard variable {var!r} unbound when executing "
                        f"{copy.label} (missing parameter?)"
                    )
                total += g.coeff(var) * val
            if total < 0:
                return
        self._execute_statement(copy, local, ctx)

    def _execute_statement(self, copy: StmtCopy, local: Dict[str, int],
                           ctx: _Ctx) -> None:
        stmt = copy.ctx.stmt
        value = self._eval_val(stmt.rhs, copy, local, ctx)
        lhs_ref = copy.ref_by_ordinal(0)
        if lhs_ref is not None:
            rt = self.runtimes[lhs_ref.key]
            state = ctx.refstates.get(lhs_ref.key, ())
            rt.set(state, value)
            return
        a = self.arrays[stmt.lhs.array]
        idx = tuple(i.evaluate({**self.params, **local}) for i in stmt.lhs.indices)
        if idx:
            a[idx] = value
        else:
            a[()] = value

    def _eval_val(self, e: ValExpr, copy: StmtCopy, local: Dict[str, int],
                  ctx: _Ctx) -> float:
        if isinstance(e, VConst):
            return e.value
        if isinstance(e, VParam):
            return self.params[e.name]
        if isinstance(e, VNeg):
            return -self._eval_val(e.operand, copy, local, ctx)
        if isinstance(e, VBin):
            l = self._eval_val(e.left, copy, local, ctx)
            r = self._eval_val(e.right, copy, local, ctx)
            if e.op == "+":
                return l + r
            if e.op == "-":
                return l - r
            if e.op == "*":
                return l * r
            return l / r
        if isinstance(e, VRead):
            if e.array == "__var__":
                return e.indices[0].evaluate({**self.params, **local})
            ordinal = self._ordinal_of_read(copy, e)
            if ordinal is not None:
                ref = copy.ref_by_ordinal(ordinal)
                if ref is not None:
                    rt = self.runtimes[ref.key]
                    return rt.get(ctx.refstates.get(ref.key, ()))
            a = self.arrays[e.array]
            idx = tuple(i.evaluate({**self.params, **local}) for i in e.indices)
            return a[idx] if idx else a[()]
        raise ExecutionError(f"unknown ValExpr {type(e).__name__}")

    def _ordinal_of_read(self, copy: StmtCopy, target: VRead) -> Optional[int]:
        ordinal = 0
        for r in copy.ctx.stmt.reads():
            if r.array == "__var__":
                continue
            ordinal += 1
            if r is target:
                return ordinal
        return None


def run_plan(plan: Plan, arrays: Mapping[str, object],
             params: Mapping[str, int]) -> None:
    """Execute a plan in place on the given arrays/format instances."""
    PlanInterpreter(plan, arrays, params).run()

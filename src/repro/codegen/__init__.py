"""Code generation from enumeration plans: the reference interpreter, the
specialized Python source emitter, and a C-like pretty-printer."""

from repro.codegen.interp import PlanInterpreter, run_plan

__all__ = ["PlanInterpreter", "run_plan"]
